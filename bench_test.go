package fqms

import (
	"io"
	"testing"

	"repro/internal/addrmap"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/exp"
	"repro/internal/memctrl"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The benchmarks below regenerate the paper's tables and figures at
// reduced measurement windows (fast enough for -bench=.); the
// cmd/experiments binary runs the same drivers at full windows. Each
// benchmark reports the figure's headline quantity via ReportMetric so
// `go test -bench` output doubles as a miniature results table.

func benchRunner() *exp.Runner {
	return exp.NewRunner(exp.Config{Warmup: 10_000, Window: 60_000})
}

// BenchmarkFigure1 regenerates Figure 1: vpr alone / with crafty / with
// art under FR-FCFS.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		f1, err := r.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f1.Rows[2].RelIPC, "vpr-relIPC-with-art")
		b.ReportMetric(f1.Rows[2].ReadLat/f1.Rows[0].ReadLat, "vpr-latency-blowup")
	}
}

// BenchmarkFigure4 regenerates Figure 4: solo data bus utilization of
// the twenty benchmarks.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		f4, err := r.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f4.Rows[0].BusUtil, "art-solo-util")
		b.ReportMetric(f4.Rows[len(f4.Rows)-1].BusUtil, "crafty-solo-util")
	}
}

// BenchmarkFigure5 regenerates Figures 5-7's underlying 2-core runs (19
// subjects x 3 schedulers against the art background) and reports the
// Figure 5 QoS statistics.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tc, err := r.TwoCore()
		if err != nil {
			b.Fatal(err)
		}
		met, total := tc.QoSCount("FQ-VFTF", 0.95)
		b.ReportMetric(float64(met), "fq-qos-met")
		b.ReportMetric(float64(total), "subjects")
		a, _ := tc.MeanNormIPC("FR-FCFS")
		b.ReportMetric(a, "frfcfs-mean-normIPC")
	}
}

// BenchmarkFigure6 reports the background (art) thread's mean
// normalized IPC from the same runs as Figure 5.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tc, err := r.TwoCore()
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		rows := tc.ByPolicy("FQ-VFTF")
		for _, row := range rows {
			sum += row.BgNormIPC
		}
		b.ReportMetric(sum/float64(len(rows)), "fq-bg-mean-normIPC")
	}
}

// BenchmarkFigure7 reports the aggregate performance improvement and
// utilizations (Figure 7).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		tc, err := r.TwoCore()
		if err != nil {
			b.Fatal(err)
		}
		mean, max := tc.Improvement("FQ-VFTF", "FR-FCFS")
		b.ReportMetric(mean*100, "fq-avg-improvement-%")
		b.ReportMetric(max*100, "fq-max-improvement-%")
		b.ReportMetric(tc.MeanAggBusUtil("FQ-VFTF")*100, "fq-bus-util-%")
		b.ReportMetric(tc.MeanAggBankUtil("FQ-VFTF")*100, "fq-bank-util-%")
	}
}

// BenchmarkFigure8 regenerates the four-core workloads (Figure 8).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		f8, err := r.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		_, mean, max := f8.Improvements("FQ-VFTF", "FR-FCFS")
		met, total := f8.QoSCount("FQ-VFTF", 0.95)
		b.ReportMetric(mean*100, "fq-avg-improvement-%")
		b.ReportMetric(max*100, "fq-max-improvement-%")
		b.ReportMetric(float64(met), "fq-qos-met")
		b.ReportMetric(float64(total), "threads")
	}
}

// BenchmarkFigure9 regenerates the fairness scatter (Figure 9) and its
// variance headline (paper: 0.20 -> 0.0058).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		f8, err := r.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		f9, err := r.Figure9(f8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f9.Variance("FR-FCFS"), "frfcfs-variance")
		b.ReportMetric(f9.Variance("FQ-VFTF"), "fq-variance")
	}
}

// BenchmarkTable6Timing exercises the Table 6 DDR2 model: the cost of
// legality checks and command issue on the device state machines.
func BenchmarkTable6Timing(b *testing.B) {
	ch, err := dram.NewChannel(dram.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	now := int64(0)
	bank, row := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, open := ch.BankOpen(bank); !open {
			now = maxI64(now, ch.EarliestIssue(dram.KindActivate, bank))
			ch.Issue(dram.KindActivate, bank, row, now)
			now++
			continue
		}
		now = maxI64(now, ch.EarliestIssue(dram.KindRead, bank))
		ch.Issue(dram.KindRead, bank, row, now)
		now = maxI64(now+1, ch.EarliestIssue(dram.KindPrecharge, bank))
		ch.Issue(dram.KindPrecharge, bank, 0, now)
		now++
		bank = (bank + 1) % 8
		row = (row + 1) % 1024
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md section 5)
// ---------------------------------------------------------------------

// runVprArt runs the vpr+art pair under the given policy factory and
// returns vpr's IPC plus the aggregate bus utilization.
func runVprArt(b *testing.B, factory sim.PolicyFactory, mem memctrl.Config) (float64, float64) {
	b.Helper()
	vpr, _ := trace.ByName("vpr")
	art, _ := trace.ByName("art")
	res, err := sim.Run(sim.Config{
		Workload: []trace.Profile{vpr, art},
		Policy:   factory,
		Mem:      mem,
	}, 10_000, 60_000)
	if err != nil {
		b.Fatal(err)
	}
	return res.Threads[0].IPC, res.DataBusUtil
}

// BenchmarkAblationInversionBound sweeps the FQ bank scheduler's
// priority-inversion bound x (the paper fixes x = tRAS = 18).
func BenchmarkAblationInversionBound(b *testing.B) {
	for _, x := range []int64{0, 9, 18, 36, 72, 1 << 20} {
		name := "x=" + itoa(x)
		if x == 1<<20 {
			name = "x=inf(FR-VFTF-like)"
		}
		b.Run(name, func(b *testing.B) {
			factory := func(s []core.Share, n int, t dram.Timing) core.Policy {
				return core.NewFQVFTFBound(s, n, t, x)
			}
			for i := 0; i < b.N; i++ {
				ipc, util := runVprArt(b, factory, memctrl.Config{})
				b.ReportMetric(ipc, "vpr-IPC")
				b.ReportMetric(util, "bus-util")
			}
		})
	}
}

// BenchmarkAblationRowPolicy compares the closed-row default against an
// open-row policy under FQ-VFTF.
func BenchmarkAblationRowPolicy(b *testing.B) {
	for _, rp := range []memctrl.RowPolicy{memctrl.ClosedRow, memctrl.OpenRow} {
		b.Run(rp.String(), func(b *testing.B) {
			mem := memctrl.DefaultConfig(2)
			mem.RowPolicy = rp
			for i := 0; i < b.N; i++ {
				ipc, util := runVprArt(b, sim.FQVFTF, mem)
				b.ReportMetric(ipc, "vpr-IPC")
				b.ReportMetric(util, "bus-util")
			}
		})
	}
}

// BenchmarkAblationArrivalVFT compares the paper's deferred
// virtual-finish-time computation (used by FR-VFTF/FQ-VFTF) against the
// rejected arrival-time average-service estimate.
func BenchmarkAblationArrivalVFT(b *testing.B) {
	variants := []struct {
		name    string
		factory sim.PolicyFactory
	}{
		{"deferred", sim.FRVFTF},
		{"arrival-estimate", func(s []core.Share, n int, t dram.Timing) core.Policy {
			return core.NewFRVFTFArrival(s, n, t)
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ipc, util := runVprArt(b, v.factory, memctrl.Config{})
				b.ReportMetric(ipc, "vpr-IPC")
				b.ReportMetric(util, "bus-util")
			}
		})
	}
}

// BenchmarkAblationStartTimeFirst compares finish-time-first against
// the start-time-first alternative mentioned in Section 2.3.
func BenchmarkAblationStartTimeFirst(b *testing.B) {
	for _, v := range []struct {
		name    string
		factory sim.PolicyFactory
	}{{"VFTF", sim.FRVFTF}, {"VSTF", sim.FRVSTF}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ipc, util := runVprArt(b, v.factory, memctrl.Config{})
				b.ReportMetric(ipc, "vpr-IPC")
				b.ReportMetric(util, "bus-util")
			}
		})
	}
}

// BenchmarkSchedulers measures raw simulator throughput (cycles/sec)
// under each policy on a 4-core workload.
func BenchmarkSchedulers(b *testing.B) {
	wl := trace.FourCoreWorkloads()[0]
	profiles := make([]trace.Profile, len(wl))
	for i, n := range wl {
		profiles[i], _ = trace.ByName(n)
	}
	for _, v := range []struct {
		name    string
		factory sim.PolicyFactory
	}{
		{"FCFS", sim.FCFS}, {"FR-FCFS", sim.FRFCFS},
		{"FR-VFTF", sim.FRVFTF}, {"FQ-VFTF", sim.FQVFTF},
	} {
		b.Run(v.name, func(b *testing.B) {
			s, err := sim.New(sim.Config{Workload: profiles, Policy: v.factory})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step(1000)
			}
			b.ReportMetric(float64(s.Cycle())*1000/float64(b.Elapsed().Microseconds()+1), "kcycles/s")
		})
	}
}

// BenchmarkSimThroughput is the perf-trajectory benchmark: raw simulator
// throughput (simulated cycles/sec and completed memory requests/sec) on
// 4-core FQ-VFTF configurations spanning the workload intensity range,
// each swept across channel counts in serial and intra-run parallel
// mode (results are bit-identical; only wall-clock differs).
// cmd/benchjson runs the same configurations and emits JSON so future
// PRs can compare against the recorded trajectory in BENCH_baseline.json.
func BenchmarkSimThroughput(b *testing.B) {
	for _, v := range []struct {
		name    string
		benches []string
	}{
		{"light-4xcrafty", []string{"crafty", "crafty", "crafty", "crafty"}},
		{"mixed", trace.FourCoreWorkloads()[0]},
		{"heavy-4xart", []string{"art", "art", "art", "art"}},
	} {
		for _, nch := range []int{1, 2, 4} {
			for _, workers := range []int{0, 8} {
				mode := "serial"
				if workers > 1 {
					mode = "par"
				}
				b.Run(v.name+"/ch="+itoa(int64(nch))+"/"+mode, func(b *testing.B) {
					profiles := make([]trace.Profile, len(v.benches))
					for i, n := range v.benches {
						profiles[i], _ = trace.ByName(n)
					}
					cfg := sim.Config{Workload: profiles, Policy: sim.FQVFTF, Workers: workers}
					cfg.Mem.Channels = nch
					s, err := sim.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					defer s.Close()
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						s.Step(10_000)
					}
					elapsed := b.Elapsed().Seconds()
					if elapsed == 0 {
						elapsed = 1e-9
					}
					var reqs int64
					for t := 0; t < len(profiles); t++ {
						st := s.Controller().Stats(t)
						reqs += st.ReadsDone + st.WritesDone
					}
					b.ReportMetric(float64(s.Cycle())/elapsed/1e6, "Msimcycles/s")
					b.ReportMetric(float64(reqs)/elapsed/1e3, "kreqs/s")
				})
			}
		}
	}
}

// BenchmarkSimThroughputMetrics reruns the perf-trajectory
// configurations with the observability layer fully enabled (metrics
// registry plus a Chrome trace streamed to a discarding writer), so the
// instrumentation overhead can be read directly against
// BenchmarkSimThroughput (the budget is <5%).
func BenchmarkSimThroughputMetrics(b *testing.B) {
	for _, v := range []struct {
		name    string
		benches []string
	}{
		{"light-4xcrafty", []string{"crafty", "crafty", "crafty", "crafty"}},
		{"mixed", trace.FourCoreWorkloads()[0]},
		{"heavy-4xart", []string{"art", "art", "art", "art"}},
	} {
		b.Run(v.name, func(b *testing.B) {
			profiles := make([]trace.Profile, len(v.benches))
			for i, n := range v.benches {
				profiles[i], _ = trace.ByName(n)
			}
			tw := metrics.NewTraceWriter(io.Discard)
			s, err := sim.New(sim.Config{
				Workload: profiles,
				Policy:   sim.FQVFTF,
				Metrics:  metrics.New(),
				Trace:    tw,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step(10_000)
			}
			elapsed := b.Elapsed().Seconds()
			if elapsed == 0 {
				elapsed = 1e-9
			}
			b.StopTimer()
			if err := tw.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(s.Cycle())/elapsed/1e6, "Msimcycles/s")
		})
	}
}

// BenchmarkSimThroughputSampled reruns the perf-trajectory
// configurations with epoch sampling at the default interval (registry
// snapshot plus fairness scoring every 10k cycles), so the time-series
// telemetry's overhead can be read directly against
// BenchmarkSimThroughput (the budget is <5%).
func BenchmarkSimThroughputSampled(b *testing.B) {
	for _, v := range []struct {
		name    string
		benches []string
	}{
		{"light-4xcrafty", []string{"crafty", "crafty", "crafty", "crafty"}},
		{"mixed", trace.FourCoreWorkloads()[0]},
		{"heavy-4xart", []string{"art", "art", "art", "art"}},
	} {
		b.Run(v.name, func(b *testing.B) {
			profiles := make([]trace.Profile, len(v.benches))
			for i, n := range v.benches {
				profiles[i], _ = trace.ByName(n)
			}
			s, err := sim.New(sim.Config{
				Workload:       profiles,
				Policy:         sim.FQVFTF,
				SampleInterval: metrics.DefaultSampleInterval,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step(10_000)
			}
			elapsed := b.Elapsed().Seconds()
			if elapsed == 0 {
				elapsed = 1e-9
			}
			b.ReportMetric(float64(s.Cycle())/elapsed/1e6, "Msimcycles/s")
			b.ReportMetric(float64(s.Sampler().Epochs()), "epochs")
		})
	}
}

// BenchmarkSimThroughputInterference reruns the perf-trajectory
// configurations with per-request delay attribution on, so the
// interference-accounting overhead can be read directly against
// BenchmarkSimThroughput. Expected overhead: near-parity on light
// workloads, ~1.15-1.3x under heavy contention — the per-cycle policy
// attribution does O(ready requests) work per cycle, so its cost
// scales with how many requests sit issuable-but-skipped each cycle
// (see the protocol comment in internal/memctrl/interference.go).
func BenchmarkSimThroughputInterference(b *testing.B) {
	for _, v := range []struct {
		name    string
		benches []string
	}{
		{"light-4xcrafty", []string{"crafty", "crafty", "crafty", "crafty"}},
		{"mixed", trace.FourCoreWorkloads()[0]},
		{"heavy-4xart", []string{"art", "art", "art", "art"}},
	} {
		b.Run(v.name, func(b *testing.B) {
			profiles := make([]trace.Profile, len(v.benches))
			for i, n := range v.benches {
				profiles[i], _ = trace.ByName(n)
			}
			s, err := sim.New(sim.Config{
				Workload:     profiles,
				Policy:       sim.FQVFTF,
				Interference: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step(10_000)
			}
			elapsed := b.Elapsed().Seconds()
			if elapsed == 0 {
				elapsed = 1e-9
			}
			b.ReportMetric(float64(s.Cycle())/elapsed/1e6, "Msimcycles/s")
			if snap, ok := s.Controller().InterferenceSnapshot(false); ok {
				b.ReportMetric(float64(snap.Cross)/float64(s.Cycle()), "cross-cycles/cycle")
			}
		})
	}
}

func itoa(x int64) string {
	if x == 0 {
		return "0"
	}
	var buf [24]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationSharedBuffers compares the paper's static per-thread
// buffer partitioning against a pooled buffer (the paper defers
// "more flexible partitioning" to future research): pooling lets the
// hog monopolize controller entries and erodes the victim's QoS.
func BenchmarkAblationSharedBuffers(b *testing.B) {
	for _, shared := range []bool{false, true} {
		name := "partitioned"
		if shared {
			name = "pooled"
		}
		b.Run(name, func(b *testing.B) {
			mem := memctrl.DefaultConfig(2)
			mem.SharedBuffers = shared
			for i := 0; i < b.N; i++ {
				ipc, util := runVprArt(b, sim.FQVFTF, mem)
				b.ReportMetric(ipc, "vpr-IPC")
				b.ReportMetric(util, "bus-util")
			}
		})
	}
}

// BenchmarkAblationAddressMap compares the XOR bank permutation (Lin et
// al., the paper's choice) against a plain linear map.
func BenchmarkAblationAddressMap(b *testing.B) {
	for _, name := range []string{"xor", "linear"} {
		b.Run(name, func(b *testing.B) {
			mem := memctrl.DefaultConfig(2)
			if name == "linear" {
				g := addrmap.Geometry{
					Channels:     1,
					Ranks:        mem.DRAM.Ranks,
					BanksPerRank: mem.DRAM.BanksPerRank,
					RowsPerBank:  mem.DRAM.RowsPerBank,
					ColsPerRow:   mem.DRAM.ColsPerRow,
				}
				m, err := addrmap.NewLinear(g)
				if err != nil {
					b.Fatal(err)
				}
				mem.Mapper = m
			}
			for i := 0; i < b.N; i++ {
				ipc, util := runVprArt(b, sim.FQVFTF, mem)
				b.ReportMetric(ipc, "vpr-IPC")
				b.ReportMetric(util, "bus-util")
			}
		})
	}
}

// BenchmarkExtensionMultiChannel scales the channel count (the paper's
// future-work direction) on a bandwidth-bound 4-core workload.
func BenchmarkExtensionMultiChannel(b *testing.B) {
	wl := trace.FourCoreWorkloads()[0]
	profiles := make([]trace.Profile, len(wl))
	for i, n := range wl {
		profiles[i], _ = trace.ByName(n)
	}
	for _, nch := range []int{1, 2, 4} {
		b.Run("channels="+itoa(int64(nch)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.Config{Workload: profiles, Policy: sim.FQVFTF}
				cfg.Mem.Channels = nch
				res, err := sim.Run(cfg, 10_000, 60_000)
				if err != nil {
					b.Fatal(err)
				}
				var ipc float64
				for _, t := range res.Threads {
					ipc += t.IPC
				}
				b.ReportMetric(ipc, "aggregate-IPC")
				b.ReportMetric(res.DataBusUtil, "bus-util")
			}
		})
	}
}

// BenchmarkExtensionShareSweep regenerates the share-sweep QoS
// validation (proportional bandwidth delivery under FQ-VFTF).
func BenchmarkExtensionShareSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		sw, err := r.ShareSweep("")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sw.Rows[len(sw.Rows)-1].UtilRatio, "7to1-split-delivered-ratio")
		b.ReportMetric(sw.Rows[3].UtilRatio, "equal-split-delivered-ratio")
	}
}
