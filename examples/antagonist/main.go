// Antagonist demonstrates the adversarial isolation property: vpr (a
// latency-sensitive thread) shares the memory system with each of the
// antagonist agents — a streaming accelerator-style core, a row-buffer
// thrasher, a bank-conflict attacker, a bus hog, and a diurnal bursty
// agent — under equal bandwidth shares. Against the paper's private-φ
// baseline (vpr alone on memory time scaled by two), FQ-VFTF holds the
// victim's slowdown at or under 1.0 no matter the attacker, while
// FR-FCFS hands the attacker a 1.1x–2.1x victim slowdown. The delay
// attribution matrix shows where the stolen cycles went.
package main

import (
	"fmt"
	"log"

	fqms "repro"
)

func main() {
	// Private-φ baseline: the victim alone on its half of the memory
	// system (DDR2 timing scaled by two).
	base, err := fqms.Run(fqms.SystemConfig{
		Workload:    []string{"vpr"},
		MemoryScale: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	baseIPC := base.Threads[0].IPC
	fmt.Printf("victim vpr on the private-φ baseline: IPC %.3f\n\n", baseIPC)
	fmt.Printf("%-11s %14s %14s\n", "attacker", "FQ-VFTF slow", "FR-FCFS slow")

	type cell struct {
		attacker string
		stolen   [3]int64 // victim wait cycles charged to [self, attacker, none] under FR-FCFS
	}
	var cells []cell
	for _, attacker := range fqms.AntagonistNames() {
		var slow [2]float64
		var stolen [3]int64
		for i, sched := range []fqms.Scheduler{fqms.FQVFTF, fqms.FRFCFS} {
			sys, err := fqms.NewSystem(fqms.SystemConfig{
				Workload:     []string{"vpr", attacker},
				Scheduler:    sched,
				Interference: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			sys.Step(50_000)
			sys.BeginMeasurement()
			sys.Step(400_000)
			slow[i] = baseIPC / sys.Results().Threads[0].IPC
			if sched == fqms.FRFCFS {
				snap, ok := sys.Interference()
				if !ok {
					log.Fatal("interference attribution not enabled")
				}
				copy(stolen[:], snap.Matrix[0])
			}
		}
		fmt.Printf("%-11s %13.2fx %13.2fx\n", attacker, slow[0], slow[1])
		cells = append(cells, cell{attacker, stolen})
	}

	fmt.Printf("\nwho delayed the victim under FR-FCFS (wait cycles by aggressor):\n")
	fmt.Printf("%-11s %12s %12s %12s %10s\n", "attacker", "self", "attacker", "no-aggr", "stolen")
	for _, c := range cells {
		total := c.stolen[0] + c.stolen[1] + c.stolen[2]
		fmt.Printf("%-11s %12d %12d %12d %9.0f%%\n",
			c.attacker, c.stolen[0], c.stolen[1], c.stolen[2],
			100*float64(c.stolen[1])/float64(total))
	}
	fmt.Printf("\nFQ-VFTF keeps the victim at or above its private-φ performance\n")
	fmt.Printf("(slowdown <= 1.0); FR-FCFS lets every attacker through.\n")
}
