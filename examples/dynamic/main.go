// Dynamic demonstrates run-time bandwidth reallocation: the paper notes
// that shares "could be assigned flexibly by either an OS or a virtual
// machine monitor". Here a simulated OS watches two competing memory
// hogs and, mid-run, boosts one thread's share from 1/2 to 3/4 --
// bandwidth follows within a few thousand cycles, with no scheduler
// reset and no disturbance to the DRAM protocol.
package main

import (
	"fmt"
	"log"

	fqms "repro"
)

func main() {
	sys, err := fqms.NewSystem(fqms.SystemConfig{
		Workload:  []string{"art", "art"},
		Scheduler: fqms.FQVFTF,
	})
	if err != nil {
		log.Fatal(err)
	}

	measure := func(label string) {
		sys.BeginMeasurement()
		sys.Step(150_000)
		res := sys.Results()
		fmt.Printf("%-28s thread0 %.3f, thread1 %.3f of peak bandwidth\n",
			label, res.Threads[0].BusUtil, res.Threads[1].BusUtil)
	}

	sys.Step(30_000) // warm caches and row buffers
	measure("equal shares (1/2 : 1/2):")

	// The "OS" decides thread 0 is latency critical.
	sys.SetShare(0, fqms.Share{Num: 3, Den: 4})
	sys.SetShare(1, fqms.Share{Num: 1, Den: 4})
	sys.Step(20_000) // let the virtual clocks settle
	measure("after boost (3/4 : 1/4):")

	// And later reverses the decision.
	sys.SetShare(0, fqms.Share{Num: 1, Den: 4})
	sys.SetShare(1, fqms.Share{Num: 3, Den: 4})
	sys.Step(20_000)
	measure("after reversal (1/4 : 3/4):")

	fmt.Println("\nBandwidth follows the allocation each time: the VTMS")
	fmt.Println("registers keep history, only the accrual rate changes.")
}
