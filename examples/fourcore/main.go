// Fourcore runs the paper's most demanding four-processor workload
// (art, lucas, apsi, ammp -- Figure 8's leftmost group) under each
// scheduler and prints per-thread normalized IPC against the paper's
// QoS baseline: the same benchmark alone on a private memory system
// time scaled by four.
package main

import (
	"fmt"
	"log"

	fqms "repro"
)

func main() {
	workload := fqms.FourCoreWorkloads()[0]
	fmt.Printf("workload: %v (every thread allocated phi = 1/4)\n\n", workload)

	// Per-thread QoS baselines: solo on a 4x time-scaled memory system.
	base := make(map[string]float64)
	for _, b := range workload {
		res, err := fqms.Run(fqms.SystemConfig{
			Workload:    []string{b},
			MemoryScale: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		base[b] = res.Threads[0].IPC
	}

	for _, sched := range []fqms.Scheduler{fqms.FRFCFS, fqms.FRVFTF, fqms.FQVFTF} {
		res, err := fqms.Run(fqms.SystemConfig{
			Workload:  workload,
			Scheduler: sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (aggregate bus utilization %.2f):\n", sched, res.DataBusUtil)
		for _, t := range res.Threads {
			norm := t.IPC / base[t.Benchmark]
			qos := "meets QoS"
			if norm < 1 {
				qos = "BELOW QoS"
			}
			fmt.Printf("  %-6s normalized IPC %.2f (%s), bus share %.2f\n",
				t.Benchmark, norm, qos, t.BusUtil)
		}
		fmt.Println()
	}
	fmt.Println("Under FR-FCFS the most aggressive thread wins and the meek")
	fmt.Println("fall below the QoS line; FQ-VFTF flips the picture and")
	fmt.Println("spreads bandwidth nearly uniformly -- the paper's Figure 8.")
}
