// Isolation reproduces the paper's Figure 1 motivation: benchmark vpr
// running alone, with a polite neighbor (crafty), and with an
// aggressive one (art) on a two-core CMP whose only shared resource is
// the SDRAM memory system, all under FR-FCFS. The aggressive neighbor
// multiplies vpr's memory latency and destroys its IPC -- the
// destructive interference the FQ scheduler exists to prevent.
package main

import (
	"fmt"
	"log"

	fqms "repro"
)

func main() {
	solo, err := fqms.Run(fqms.SystemConfig{
		Workload:  []string{"vpr"},
		Scheduler: fqms.FRFCFS,
	})
	if err != nil {
		log.Fatal(err)
	}
	v := solo.Threads[0]
	fmt.Printf("%-12s IPC %.2f (1.00x), read latency %4.0f cycles\n",
		"vpr alone:", v.IPC, v.AvgReadLatency)

	for _, neighbor := range []string{"crafty", "art"} {
		res, err := fqms.Run(fqms.SystemConfig{
			Workload:  []string{"vpr", neighbor},
			Scheduler: fqms.FRFCFS,
		})
		if err != nil {
			log.Fatal(err)
		}
		t := res.Threads[0]
		fmt.Printf("%-12s IPC %.2f (%.2fx), read latency %4.0f cycles\n",
			"with "+neighbor+":", t.IPC, t.IPC/v.IPC, t.AvgReadLatency)
	}

	fmt.Println("\ncrafty (compute-bound) is harmless; art (memory-streaming)")
	fmt.Println("captures the FR-FCFS scheduler and starves vpr -- Figure 1.")
}
