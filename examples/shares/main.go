// Shares demonstrates the FQ scheduler's ability to steer memory
// bandwidth with arbitrary per-thread allocations -- the knob the paper
// exposes to the OS or hypervisor ("this allocation ... could be
// assigned flexibly by either an OS or a virtual machine monitor").
// Two identical copies of the bandwidth-hungry art benchmark compete;
// only the allocated shares differ between runs.
package main

import (
	"fmt"
	"log"

	fqms "repro"
)

func main() {
	fmt.Println("two art threads under FQ-VFTF with different share splits:")
	fmt.Printf("%-12s %12s %12s %14s\n", "split", "thread0 util", "thread1 util", "util ratio")
	for _, split := range []struct {
		name   string
		shares []fqms.Share
	}{
		{"1/2 : 1/2", []fqms.Share{{Num: 1, Den: 2}, {Num: 1, Den: 2}}},
		{"2/3 : 1/3", []fqms.Share{{Num: 2, Den: 3}, {Num: 1, Den: 3}}},
		{"3/4 : 1/4", []fqms.Share{{Num: 3, Den: 4}, {Num: 1, Den: 4}}},
		{"7/8 : 1/8", []fqms.Share{{Num: 7, Den: 8}, {Num: 1, Den: 8}}},
	} {
		res, err := fqms.Run(fqms.SystemConfig{
			Workload:  []string{"art", "art"},
			Scheduler: fqms.FQVFTF,
			Shares:    split.shares,
		})
		if err != nil {
			log.Fatal(err)
		}
		u0, u1 := res.Threads[0].BusUtil, res.Threads[1].BusUtil
		fmt.Printf("%-12s %12.3f %12.3f %14.2f\n", split.name, u0, u1, u0/u1)
	}
	fmt.Println("\nThe bandwidth ratio tracks the allocated share ratio: the")
	fmt.Println("virtual-time framework turns shares into proportional service.")
}
