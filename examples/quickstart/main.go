// Quickstart: co-schedule a latency-sensitive thread (vpr) with a
// memory hog (art) under the FR-FCFS baseline and under the paper's
// Fair Queuing scheduler, and watch the scheduler restore the victim's
// performance without giving up bus utilization.
package main

import (
	"fmt"
	"log"

	fqms "repro"
)

func main() {
	for _, sched := range []fqms.Scheduler{fqms.FRFCFS, fqms.FQVFTF} {
		res, err := fqms.Run(fqms.SystemConfig{
			Workload:  []string{"vpr", "art"},
			Scheduler: sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", sched)
		for _, t := range res.Threads {
			fmt.Printf("  %-6s IPC %.2f, read latency %4.0f cycles, bus share %.2f\n",
				t.Benchmark, t.IPC, t.AvgReadLatency, t.BusUtil)
		}
		fmt.Printf("  aggregate data bus utilization %.2f\n\n", res.DataBusUtil)
	}
	fmt.Println("FQ-VFTF protects vpr (lower latency, higher IPC) while art")
	fmt.Println("keeps the leftover bandwidth -- the paper's QoS objective.")
}
