// Command experiments regenerates every table and figure of the paper's
// evaluation and prints a paper-versus-measured headline summary.
//
// Usage:
//
//	experiments [-fig 1|4|5|6|7|8|9|all] [-warmup N] [-window N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: 1, 4, 5, 6, 7, 8, 9, sweep, headline, or all")
		warmup = flag.Int64("warmup", 50_000, "warmup cycles per run")
		window = flag.Int64("window", 400_000, "measurement cycles per run")
		seed   = flag.Uint64("seed", 0, "trace generator seed")
		par    = flag.Int("parallel", 8, "concurrent simulations")
	)
	flag.Parse()

	r := exp.NewRunner(exp.Config{Warmup: *warmup, Window: *window, Seed: *seed, Parallel: *par})
	w := os.Stdout

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	switch *fig {
	case "1":
		res, err := r.Figure1()
		if err != nil {
			fail(err)
		}
		res.Render(w)
	case "4":
		res, err := r.Figure4()
		if err != nil {
			fail(err)
		}
		res.Render(w)
	case "5", "6", "7":
		res, err := r.TwoCore()
		if err != nil {
			fail(err)
		}
		switch *fig {
		case "5":
			res.RenderFigure5(w)
		case "6":
			res.RenderFigure6(w)
		default:
			res.RenderFigure7(w)
		}
	case "8":
		res, err := r.Figure8()
		if err != nil {
			fail(err)
		}
		res.Render(w)
	case "9":
		f8, err := r.Figure8()
		if err != nil {
			fail(err)
		}
		res, err := r.Figure9(f8)
		if err != nil {
			fail(err)
		}
		res.Render(w)
	case "sweep":
		res, err := r.ShareSweep("")
		if err != nil {
			fail(err)
		}
		res.Render(w)
	case "headline":
		rep, err := r.All()
		if err != nil {
			fail(err)
		}
		rep.Headline().Render(w)
	case "all":
		rep, err := r.All()
		if err != nil {
			fail(err)
		}
		rep.Render(w)
	default:
		fail(fmt.Errorf("unknown figure %q", *fig))
	}
}
