// Command experiments regenerates every table and figure of the paper's
// evaluation and prints a paper-versus-measured headline summary. After
// each figure it reports the wall-clock time and the simulator
// throughput (simulated cycles per second) that produced it.
//
// Usage:
//
//	experiments [-fig 1|4|5|6|7|8|9|sweep|arena|headline|all] [-warmup N] [-window N] [-seed N]
//	            [-workers N] [-intra-workers N]
//	            [-serve addr] [-series-dir dir] [-sample-interval N]
//	            [-checkpoint-dir dir] [-checkpoint-every N] [-resume]
//	            [-arena] [-arena-out dir]
//	            [-arena-mixes M] [-arena-shares S] [-arena-channels C]
//	            [-worker url] [-worker-dir dir] [-worker-poll D]
//
// -arena (or -fig arena) races the post-2006 scheduler lineage —
// FR-FCFS, FR-VFTF, FQ-VFTF, BLISS, SLOW-FAIR, BANK-BW — across
// workload mixes, share splits, and channel counts and prints the
// fairness-vs-throughput table with each cell's Pareto frontier
// starred; -arena-out additionally writes arena.csv and arena.json.
// -arena-mixes/-arena-shares/-arena-channels narrow the swept matrix
// (e.g. -arena-mixes vpr+art -arena-shares eq,3-4 -arena-channels 1).
//
// -worker turns the process into a sweep-fabric worker: it leases
// chunks from the sweepd coordinator at the given URL, executes them
// with checkpoint-epoch heartbeats, uploads artifacts, and exits when
// the coordinator reports the sweep done. All figure flags are ignored
// in worker mode; the coordinator's job spec governs every run.
//
// -workers caps the sweep's total worker goroutines; -intra-workers
// parallelizes each simulation internally (bit-identical results), and
// the run-level fan-out shrinks to workers/intra-workers so the two
// never oversubscribe the machine together.
//
// -serve exposes sweep progress (figures done, simulated cycles per
// second) and, once runs sample, the usual telemetry endpoints over
// HTTP while the sweep executes. -series-dir makes every simulation
// leave a .series.json and .fairness.csv time-series artifact.
//
// -checkpoint-dir makes every simulation periodically checkpoint its
// full state (and persist its result on completion) into the named
// directory; if the sweep is killed, rerunning it with -resume picks
// each run up from its last checkpoint — or recalls it outright if it
// had finished — and produces bit-identical tables and artifacts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// runWorker joins a sweepd coordinator as a fabric worker until the
// sweep completes (or fails, or the process is interrupted).
func runWorker(url, dir string, poll time.Duration) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "fqms-worker-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	host, _ := os.Hostname()
	name := fmt.Sprintf("%s-%d", host, os.Getpid())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := &fabric.Worker{Coordinator: url, Dir: dir, Name: name, Poll: poll}
	fmt.Fprintf(os.Stderr, "experiments: worker %s leasing from %s\n", name, url)
	if err := w.Run(ctx); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "experiments: worker %s done\n", name)
	return nil
}

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 1, 4, 5, 6, 7, 8, 9, sweep, arena, headline, or all")
		warmup    = flag.Int64("warmup", 50_000, "warmup cycles per run")
		window    = flag.Int64("window", 400_000, "measurement cycles per run")
		seed      = flag.Uint64("seed", 0, "trace generator seed")
		par       = flag.Int("parallel", 8, "concurrent simulations (superseded by -workers when set)")
		workers   = flag.Int("workers", 0, "total worker-goroutine budget shared between concurrent runs and intra-run workers (0 = use -parallel)")
		intra     = flag.Int("intra-workers", 0, "intra-run workers per simulation; results stay bit-identical (0 = serial runs)")
		serveAddr = flag.String("serve", "", "serve sweep progress over HTTP on this address (e.g. 127.0.0.1:9300)")
		seriesDir = flag.String("series-dir", "", "write per-run time-series artifacts into this directory")
		sampleInt = flag.Int64("sample-interval", 0, "epoch sampling interval in cycles (0 = auto: 10000 when -series-dir is set, else off)")
		ckptDir   = flag.String("checkpoint-dir", "", "checkpoint every run's state into this directory")
		ckptEvery = flag.Int64("checkpoint-every", 0, "cycles between checkpoints (0 = default when -checkpoint-dir is set)")
		resume    = flag.Bool("resume", false, "resume each run from its checkpoint (or recall its persisted result) in -checkpoint-dir")
		arena     = flag.Bool("arena", false, "run the policy arena (shorthand for -fig arena)")
		arenaOut  = flag.String("arena-out", "", "directory receiving the arena's arena.csv and arena.json artifacts")
		arenaMix  = flag.String("arena-mixes", "", "arena workload mixes, e.g. \"vpr+art,swim+mcf+vpr+art\" (empty = default)")
		arenaShr  = flag.String("arena-shares", "", "arena thread-0 share splits, e.g. \"eq,3-4\" (empty = default)")
		arenaCh   = flag.String("arena-channels", "", "arena channel counts, e.g. \"1,2\" (empty = default)")
		intfOn    = flag.Bool("interference", false, "run every simulation with delay attribution on (adds .interference.json artifacts and the arena interference_index column; results stay bit-identical)")
		workerURL = flag.String("worker", "", "run as a sweep-fabric worker against this coordinator URL")
		workerDir = flag.String("worker-dir", "", "worker scratch directory (empty = a fresh temp dir)")
		workerPol = flag.Duration("worker-poll", 100*time.Millisecond, "worker idle re-lease interval")
	)
	flag.Parse()
	if *arena {
		*fig = "arena"
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *workerURL != "" {
		if err := runWorker(*workerURL, *workerDir, *workerPol); err != nil {
			fail(err)
		}
		return
	}

	cfg := exp.Config{Warmup: *warmup, Window: *window, Seed: *seed, Parallel: *par,
		Workers: *workers, IntraWorkers: *intra, Interference: *intfOn}
	cfg.SampleInterval = *sampleInt
	if cfg.SampleInterval == 0 && *seriesDir != "" {
		cfg.SampleInterval = metrics.DefaultSampleInterval
	}
	if *seriesDir != "" {
		if err := os.MkdirAll(*seriesDir, 0o755); err != nil {
			fail(err)
		}
		cfg.SeriesDir = *seriesDir
	}
	if *resume && *ckptDir == "" {
		fail(fmt.Errorf("-resume needs -checkpoint-dir"))
	}
	if *ckptEvery != 0 && *ckptDir == "" {
		fail(fmt.Errorf("-checkpoint-every needs -checkpoint-dir"))
	}
	cfg.CheckpointDir = *ckptDir
	cfg.CheckpointEvery = *ckptEvery
	cfg.Resume = *resume
	var prog *telemetry.Progress
	if *serveAddr != "" {
		prog = telemetry.NewProgress(1)
		cfg.Progress = prog
		srv, err := telemetry.Start(telemetry.Config{Addr: *serveAddr, Progress: prog})
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "experiments: status server on %s\n", srv.URL())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
	}

	r := exp.NewRunner(cfg)
	w := os.Stdout

	// timed runs one figure's driver and appends a wall-clock /
	// simulated-throughput line. Memoized runs shared between figures are
	// only counted (and only cost time) once, under whichever figure
	// simulated them first.
	timed := func(name string, fn func() error) {
		start := time.Now()
		before := r.SimulatedCycles()
		if prog != nil {
			prog.Start(name)
		}
		if err := fn(); err != nil {
			fail(err)
		}
		if prog != nil {
			prog.Finish(name)
		}
		elapsed := time.Since(start)
		cycles := r.SimulatedCycles() - before
		secs := elapsed.Seconds()
		if secs <= 0 {
			secs = 1e-9
		}
		fmt.Fprintf(w, "[%s] wall %.2fs, %d simulated cycles, %.2f Msimcycles/s\n\n",
			name, elapsed.Seconds(), cycles, float64(cycles)/secs/1e6)
	}

	switch *fig {
	case "1":
		timed("figure 1", func() error {
			res, err := r.Figure1()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		})
	case "4":
		timed("figure 4", func() error {
			res, err := r.Figure4()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		})
	case "5", "6", "7":
		timed("figure "+*fig, func() error {
			res, err := r.TwoCore()
			if err != nil {
				return err
			}
			switch *fig {
			case "5":
				res.RenderFigure5(w)
			case "6":
				res.RenderFigure6(w)
			default:
				res.RenderFigure7(w)
			}
			return nil
		})
	case "8":
		timed("figure 8", func() error {
			res, err := r.Figure8()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		})
	case "9":
		timed("figure 9", func() error {
			f8, err := r.Figure8()
			if err != nil {
				return err
			}
			res, err := r.Figure9(f8)
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		})
	case "arena":
		timed("policy arena", func() error {
			spec, err := exp.ParseArenaSpec(*arenaMix, *arenaShr, *arenaCh)
			if err != nil {
				return err
			}
			res, err := r.Arena(spec)
			if err != nil {
				return err
			}
			res.Render(w)
			if *arenaOut == "" {
				return nil
			}
			if err := os.MkdirAll(*arenaOut, 0o755); err != nil {
				return err
			}
			// The fabric merge writes arena artifacts through the same
			// encoders, so a sharded sweep's files can be cmp'd against
			// this path's byte for byte.
			csvB, err := res.ArtifactCSV()
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(*arenaOut, "arena.csv"), csvB, 0o644); err != nil {
				return err
			}
			jsonB, err := res.ArtifactJSON()
			if err != nil {
				return err
			}
			return os.WriteFile(filepath.Join(*arenaOut, "arena.json"), jsonB, 0o644)
		})
	case "sweep":
		timed("share sweep", func() error {
			res, err := r.ShareSweep("")
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		})
	case "headline":
		timed("headline", func() error {
			rep, err := r.All()
			if err != nil {
				return err
			}
			rep.Headline().Render(w)
			return nil
		})
	case "all":
		timed("all figures", func() error {
			rep, err := r.All()
			if err != nil {
				return err
			}
			rep.Render(w)
			return nil
		})
	default:
		fail(fmt.Errorf("unknown figure %q", *fig))
	}
}
