// Command benchjson measures raw simulator throughput on the same
// configurations as BenchmarkSimThroughput (bench_test.go) and emits a
// machine-readable JSON report, so successive revisions can be compared
// against a recorded performance trajectory without parsing `go test
// -bench` output.
//
// Usage:
//
//	benchjson [-warmup N] [-cycles N] [-strict] [-metrics] [-sample] [-seed N]
//
// With -strict each configuration is additionally run with the
// event-driven fast path disabled (the per-cycle oracle), and the
// report includes the fast/strict speedup ratio. With -metrics each
// configuration is additionally run with the observability layer
// (metrics registry) enabled, and the report includes the
// metrics-enabled overhead ratio (the budget is <5%). With -sample
// each configuration is additionally run with epoch sampling at the
// default interval (registry snapshots plus the fairness monitor on
// every boundary), and the report includes the sampling overhead
// ratio (same <5% budget).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// run is one measured simulation.
type run struct {
	Name            string   `json:"name"`
	Workload        []string `json:"workload"`
	Policy          string   `json:"policy"`
	Strict          bool     `json:"strict"`
	Metrics         bool     `json:"metrics,omitempty"`
	Sampled         bool     `json:"sampled,omitempty"`
	SimulatedCycles int64    `json:"simulated_cycles"`
	RequestsDone    int64    `json:"requests_done"`
	WallSeconds     float64  `json:"wall_seconds"`
	MSimCyclesPerS  float64  `json:"msimcycles_per_sec"`
	KReqsPerS       float64  `json:"kreqs_per_sec"`
}

// report is the emitted JSON document.
type report struct {
	Timestamp string  `json:"timestamp"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	NumCPU    int     `json:"num_cpu"`
	Warmup    int64   `json:"warmup_cycles"`
	Cycles    int64   `json:"measured_cycles"`
	Seed      uint64  `json:"seed"`
	Runs            []run   `json:"runs"`
	Speedups        []ratio `json:"speedups,omitempty"`
	Overheads       []ratio `json:"metrics_overheads,omitempty"`
	SampleOverheads []ratio `json:"sample_overheads,omitempty"`
}

// ratio records a throughput ratio between two runs of one
// configuration: the event-driven speedup over the strict oracle
// (-strict), or the plain-over-instrumented metrics overhead (-metrics).
type ratio struct {
	Name    string  `json:"name"`
	Speedup float64 `json:"ratio"`
}

// configs mirrors BenchmarkSimThroughput: workload intensities spanning
// memory-light to memory-bound.
var configs = []struct {
	name    string
	benches []string
}{
	{"light-4xcrafty", []string{"crafty", "crafty", "crafty", "crafty"}},
	{"mixed", nil}, // filled from trace.FourCoreWorkloads()[0] in main
	{"heavy-4xart", []string{"art", "art", "art", "art"}},
}

func measure(benches []string, warmup, cycles int64, seed uint64, strict, instrumented, sampled bool) (run, error) {
	profiles := make([]trace.Profile, len(benches))
	for i, n := range benches {
		p, err := trace.ByName(n)
		if err != nil {
			return run{}, err
		}
		profiles[i] = p
	}
	cfg := sim.Config{
		Workload: profiles,
		Policy:   sim.FQVFTF,
		Seed:     seed,
		Strict:   strict,
	}
	var tw *metrics.TraceWriter
	if instrumented {
		// Metrics plus a trace streamed to a discarding writer: the
		// worst-case fully-instrumented configuration.
		cfg.Metrics = metrics.New()
		tw = metrics.NewTraceWriter(io.Discard)
		cfg.Trace = tw
	}
	if sampled {
		cfg.SampleInterval = metrics.DefaultSampleInterval
	}
	s, err := sim.New(cfg)
	if err != nil {
		return run{}, err
	}
	s.Step(warmup)
	countReqs := func() int64 {
		var n int64
		for t := range profiles {
			st := s.Controller().Stats(t)
			n += st.ReadsDone + st.WritesDone
		}
		return n
	}
	base := countReqs()
	start := time.Now()
	s.Step(cycles)
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	reqs := countReqs() - base
	if tw != nil {
		if err := tw.Close(); err != nil {
			return run{}, err
		}
	}
	return run{
		Workload:        benches,
		Policy:          "FQ-VFTF",
		Strict:          strict,
		Metrics:         instrumented,
		Sampled:         sampled,
		SimulatedCycles: cycles,
		RequestsDone:    reqs,
		WallSeconds:     elapsed,
		MSimCyclesPerS:  float64(cycles) / elapsed / 1e6,
		KReqsPerS:       float64(reqs) / elapsed / 1e3,
	}, nil
}

func main() {
	var (
		warmup = flag.Int64("warmup", 50_000, "unmeasured warmup cycles per configuration")
		cycles = flag.Int64("cycles", 2_000_000, "measured simulated cycles per configuration")
		seed     = flag.Uint64("seed", 0, "trace generator seed")
		strict   = flag.Bool("strict", false, "also measure the per-cycle oracle and report speedups")
		withMet  = flag.Bool("metrics", false, "also measure with metrics+trace enabled and report overheads")
		withSamp = flag.Bool("sample", false, "also measure with epoch sampling enabled and report overheads")
	)
	flag.Parse()

	rep := report{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Warmup:    *warmup,
		Cycles:    *cycles,
		Seed:      *seed,
	}

	for _, c := range configs {
		benches := c.benches
		if benches == nil {
			benches = trace.FourCoreWorkloads()[0]
		}
		fast, err := measure(benches, *warmup, *cycles, *seed, false, false, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fast.Name = c.name
		rep.Runs = append(rep.Runs, fast)
		if *strict {
			slow, err := measure(benches, *warmup, *cycles, *seed, true, false, false)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			slow.Name = c.name + "-strict"
			rep.Runs = append(rep.Runs, slow)
			rep.Speedups = append(rep.Speedups, ratio{
				Name:    c.name,
				Speedup: fast.MSimCyclesPerS / slow.MSimCyclesPerS,
			})
		}
		if *withMet {
			inst, err := measure(benches, *warmup, *cycles, *seed, false, true, false)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			inst.Name = c.name + "-metrics"
			rep.Runs = append(rep.Runs, inst)
			rep.Overheads = append(rep.Overheads, ratio{
				Name:    c.name,
				Speedup: fast.MSimCyclesPerS / inst.MSimCyclesPerS,
			})
		}
		if *withSamp {
			samp, err := measure(benches, *warmup, *cycles, *seed, false, false, true)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			samp.Name = c.name + "-sampled"
			rep.Runs = append(rep.Runs, samp)
			rep.SampleOverheads = append(rep.SampleOverheads, ratio{
				Name:    c.name,
				Speedup: fast.MSimCyclesPerS / samp.MSimCyclesPerS,
			})
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
