// Command benchjson measures raw simulator throughput on the same
// configurations as BenchmarkSimThroughput (bench_test.go) and emits a
// machine-readable JSON report, so successive revisions can be compared
// against a recorded performance trajectory without parsing `go test
// -bench` output.
//
// Usage:
//
//	benchjson [-warmup N] [-cycles N] [-channels 1,2,4] [-workers N]
//	          [-strict] [-metrics] [-sample] [-seed N]
//	          [-check baseline.json] [-tol 0.05] [-bless out.json]
//
// Each workload is measured across every channel count in -channels,
// serially and (when -workers > 1) with intra-run parallelism; results
// are bit-identical between the two, so the report records only the
// wall-clock difference, plus the heap allocations per simulated
// kilocycle (the steady-state budget is zero).
//
// -check compares this run's throughput against a previously recorded
// report and exits nonzero if any configuration regressed by more than
// -tol (relative); CI runs this against the committed
// BENCH_baseline.json. Every run records the GOMAXPROCS/CPU count it
// was measured under, and -check refuses outright to compare runs
// recorded at different parallelism (with instructions to re-bless)
// instead of reporting meaningless regressions. -bless writes the
// fresh report to the named file, atomically, for intentional
// re-baselining.
//
// With -strict each configuration is additionally run with the
// event-driven fast path disabled (the per-cycle oracle), and the
// report includes the fast/strict speedup ratio. With -metrics each
// configuration is additionally run with the observability layer
// (metrics registry) enabled, and the report includes the
// metrics-enabled overhead ratio (the budget is <5%). With -sample
// each configuration is additionally run with epoch sampling at the
// default interval (registry snapshots plus the fairness monitor on
// every boundary), and the report includes the sampling overhead
// ratio (same <5% budget). With -interference each configuration is
// additionally run with per-request delay attribution on, and the
// report includes the attribution overhead ratio (expect near-parity
// on light workloads and ~1.15-1.3x under heavy contention: policy
// attribution does O(ready requests) work per cycle).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// run is one measured simulation. GOMAXPROCS and NumCPU are recorded
// per run (not just in the report header) because throughput is only
// comparable between runs measured at the same parallelism: -check
// refuses to gate a run against a baseline recorded on a machine with
// a different CPU budget instead of reporting bogus regressions.
type run struct {
	Name            string   `json:"name"`
	Workload        []string `json:"workload"`
	Policy          string   `json:"policy"`
	Channels        int      `json:"channels"`
	Workers         int      `json:"workers"`
	GOMAXPROCS      int      `json:"gomaxprocs"`
	NumCPU          int      `json:"num_cpu"`
	Strict          bool     `json:"strict"`
	Metrics         bool     `json:"metrics,omitempty"`
	Sampled         bool     `json:"sampled,omitempty"`
	Interference    bool     `json:"interference,omitempty"`
	SimulatedCycles int64    `json:"simulated_cycles"`
	RequestsDone    int64    `json:"requests_done"`
	WallSeconds     float64  `json:"wall_seconds"`
	MSimCyclesPerS  float64  `json:"msimcycles_per_sec"`
	KReqsPerS       float64  `json:"kreqs_per_sec"`
	AllocsPerKCycle float64  `json:"allocs_per_kcycle"`
}

// report is the emitted JSON document.
type report struct {
	Timestamp       string  `json:"timestamp"`
	GoVersion       string  `json:"go_version"`
	GOOS            string  `json:"goos"`
	GOARCH          string  `json:"goarch"`
	NumCPU          int     `json:"num_cpu"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Warmup          int64   `json:"warmup_cycles"`
	Cycles          int64   `json:"measured_cycles"`
	Seed            uint64  `json:"seed"`
	Runs            []run   `json:"runs"`
	Speedups        []ratio `json:"speedups,omitempty"`
	Overheads       []ratio `json:"metrics_overheads,omitempty"`
	SampleOverheads []ratio `json:"sample_overheads,omitempty"`
	IntfOverheads   []ratio `json:"interference_overheads,omitempty"`
	ParSpeedups     []ratio `json:"parallel_speedups,omitempty"`
}

// ratio records a throughput ratio between two runs of one
// configuration: the event-driven speedup over the strict oracle
// (-strict), the plain-over-instrumented metrics overhead (-metrics),
// or the parallel-over-serial speedup (-workers).
type ratio struct {
	Name    string  `json:"name"`
	Speedup float64 `json:"ratio"`
}

// configs mirrors BenchmarkSimThroughput: workload intensities spanning
// memory-light to memory-bound.
var configs = []struct {
	name    string
	benches []string
}{
	{"light-4xcrafty", []string{"crafty", "crafty", "crafty", "crafty"}},
	{"mixed", nil}, // filled from trace.FourCoreWorkloads()[0] in main
	{"heavy-4xart", []string{"art", "art", "art", "art"}},
}

type measureOpts struct {
	channels     int
	workers      int
	strict       bool
	instrumented bool
	sampled      bool
	interference bool
}

// measureBest runs measure repeat times and keeps the fastest run:
// throughput is noise-floored (scheduling, frequency scaling, shared
// CI machines all slow a run down, nothing speeds it up), so best-of-N
// is the stable estimator a regression gate needs.
func measureBest(benches []string, warmup, cycles int64, seed uint64, repeat int, o measureOpts) (run, error) {
	best, err := measure(benches, warmup, cycles, seed, o)
	if err != nil {
		return run{}, err
	}
	for i := 1; i < repeat; i++ {
		r, err := measure(benches, warmup, cycles, seed, o)
		if err != nil {
			return run{}, err
		}
		if r.MSimCyclesPerS > best.MSimCyclesPerS {
			best = r
		}
	}
	return best, nil
}

func measure(benches []string, warmup, cycles int64, seed uint64, o measureOpts) (run, error) {
	profiles := make([]trace.Profile, len(benches))
	for i, n := range benches {
		p, err := trace.ByName(n)
		if err != nil {
			return run{}, err
		}
		profiles[i] = p
	}
	cfg := sim.Config{
		Workload: profiles,
		Policy:   sim.FQVFTF,
		Seed:     seed,
		Strict:   o.strict,
		Workers:  o.workers,
	}
	cfg.Mem.Channels = o.channels
	var tw *metrics.TraceWriter
	if o.instrumented {
		// Metrics plus a trace streamed to a discarding writer: the
		// worst-case fully-instrumented configuration.
		cfg.Metrics = metrics.New()
		tw = metrics.NewTraceWriter(io.Discard)
		cfg.Trace = tw
	}
	if o.sampled {
		cfg.SampleInterval = metrics.DefaultSampleInterval
	}
	cfg.Interference = o.interference
	s, err := sim.New(cfg)
	if err != nil {
		return run{}, err
	}
	defer s.Close()
	s.Step(warmup)
	countReqs := func() int64 {
		var n int64
		for t := range profiles {
			st := s.Controller().Stats(t)
			n += st.ReadsDone + st.WritesDone
		}
		return n
	}
	base := countReqs()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	s.Step(cycles)
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	reqs := countReqs() - base
	if tw != nil {
		if err := tw.Close(); err != nil {
			return run{}, err
		}
	}
	return run{
		Workload:        benches,
		Policy:          "FQ-VFTF",
		Channels:        o.channels,
		Workers:         o.workers,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Strict:          o.strict,
		Metrics:         o.instrumented,
		Sampled:         o.sampled,
		Interference:    o.interference,
		SimulatedCycles: cycles,
		RequestsDone:    reqs,
		WallSeconds:     elapsed,
		MSimCyclesPerS:  float64(cycles) / elapsed / 1e6,
		KReqsPerS:       float64(reqs) / elapsed / 1e3,
		AllocsPerKCycle: float64(ms1.Mallocs-ms0.Mallocs) / (float64(cycles) / 1e3),
	}, nil
}

// check compares the fresh report against a recorded baseline and
// returns the configurations whose throughput regressed beyond tol.
// Runs missing from either side are reported but never fail the gate,
// so adding or retiring configurations does not require a lockstep
// baseline update.
func check(fresh report, baselinePath string, tol float64, out io.Writer) (regressions []string, err error) {
	b, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	var base report
	if err := json.Unmarshal(b, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", baselinePath, err)
	}
	baseByName := make(map[string]run, len(base.Runs))
	for _, r := range base.Runs {
		baseByName[r.Name] = r
	}
	for _, r := range fresh.Runs {
		br, ok := baseByName[r.Name]
		if !ok {
			fmt.Fprintf(out, "  %-40s %8.3f Msimcycles/s  (new, no baseline)\n", r.Name, r.MSimCyclesPerS)
			continue
		}
		delete(baseByName, r.Name)
		// Refuse cross-parallelism comparisons outright: a baseline
		// measured with a different CPU budget says nothing about this
		// run, and a "regression" verdict either way would be noise.
		if br.GOMAXPROCS != r.GOMAXPROCS || br.NumCPU != r.NumCPU {
			return nil, fmt.Errorf(
				"%s: parallelism mismatch: baseline measured at GOMAXPROCS=%d NumCPU=%d, this run at GOMAXPROCS=%d NumCPU=%d; "+
					"throughput is not comparable across parallelism — re-record the baseline on this machine with -bless %s",
				r.Name, br.GOMAXPROCS, br.NumCPU, r.GOMAXPROCS, r.NumCPU, baselinePath)
		}
		rel := r.MSimCyclesPerS/br.MSimCyclesPerS - 1
		verdict := "ok"
		if rel < -tol {
			verdict = "REGRESSED"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.3f -> %.3f Msimcycles/s (%+.1f%%, tolerance %.1f%%)",
					r.Name, br.MSimCyclesPerS, r.MSimCyclesPerS, rel*100, tol*100))
		}
		fmt.Fprintf(out, "  %-40s %8.3f vs %8.3f Msimcycles/s  %+6.1f%%  %s\n",
			r.Name, r.MSimCyclesPerS, br.MSimCyclesPerS, rel*100, verdict)
	}
	for name := range baseByName {
		fmt.Fprintf(out, "  %-40s (in baseline only, not measured this run)\n", name)
	}
	return regressions, nil
}

func parseChannels(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad channel count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	var (
		warmup   = flag.Int64("warmup", 50_000, "unmeasured warmup cycles per configuration")
		cycles   = flag.Int64("cycles", 2_000_000, "measured simulated cycles per configuration")
		seed     = flag.Uint64("seed", 0, "trace generator seed")
		channels = flag.String("channels", "1,2,4", "comma-separated channel counts to sweep")
		workers  = flag.Int("workers", 8, "intra-run workers for the parallel runs (<=1 disables them)")
		strict   = flag.Bool("strict", false, "also measure the per-cycle oracle and report speedups")
		withMet  = flag.Bool("metrics", false, "also measure with metrics+trace enabled and report overheads")
		withSamp = flag.Bool("sample", false, "also measure with epoch sampling enabled and report overheads")
		withIntf = flag.Bool("interference", false, "also measure with delay attribution enabled and report overheads")
		repeat   = flag.Int("repeat", 1, "measure each configuration this many times and keep the fastest (noise floor for the gate)")
		checkOpt = flag.String("check", "", "compare against this baseline report; exit 1 on any regression beyond -tol")
		tol      = flag.Float64("tol", 0.05, "relative throughput regression tolerance for -check")
		bless    = flag.String("bless", "", "write the fresh report to this file (atomic), recording a new baseline")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	chans, err := parseChannels(*channels)
	if err != nil {
		fail(err)
	}

	rep := report{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Warmup:     *warmup,
		Cycles:     *cycles,
		Seed:       *seed,
	}

	for _, c := range configs {
		benches := c.benches
		if benches == nil {
			benches = trace.FourCoreWorkloads()[0]
		}
		for _, nch := range chans {
			base := fmt.Sprintf("%s/ch=%d", c.name, nch)
			serial, err := measureBest(benches, *warmup, *cycles, *seed, *repeat, measureOpts{channels: nch})
			if err != nil {
				fail(err)
			}
			serial.Name = base + "/serial"
			rep.Runs = append(rep.Runs, serial)
			if *workers > 1 {
				par, err := measureBest(benches, *warmup, *cycles, *seed, *repeat, measureOpts{channels: nch, workers: *workers})
				if err != nil {
					fail(err)
				}
				par.Name = base + "/par"
				rep.Runs = append(rep.Runs, par)
				rep.ParSpeedups = append(rep.ParSpeedups, ratio{
					Name:    base,
					Speedup: par.MSimCyclesPerS / serial.MSimCyclesPerS,
				})
			}
		}
		// The strict/metrics/sampling comparison runs stay on the default
		// channel configuration, preserving the recorded trajectory's
		// original shape.
		if *strict || *withMet || *withSamp || *withIntf {
			fast, err := measureBest(benches, *warmup, *cycles, *seed, *repeat, measureOpts{})
			if err != nil {
				fail(err)
			}
			fast.Name = c.name
			rep.Runs = append(rep.Runs, fast)
			if *strict {
				slow, err := measureBest(benches, *warmup, *cycles, *seed, *repeat, measureOpts{strict: true})
				if err != nil {
					fail(err)
				}
				slow.Name = c.name + "-strict"
				rep.Runs = append(rep.Runs, slow)
				rep.Speedups = append(rep.Speedups, ratio{
					Name:    c.name,
					Speedup: fast.MSimCyclesPerS / slow.MSimCyclesPerS,
				})
			}
			if *withMet {
				inst, err := measureBest(benches, *warmup, *cycles, *seed, *repeat, measureOpts{instrumented: true})
				if err != nil {
					fail(err)
				}
				inst.Name = c.name + "-metrics"
				rep.Runs = append(rep.Runs, inst)
				rep.Overheads = append(rep.Overheads, ratio{
					Name:    c.name,
					Speedup: fast.MSimCyclesPerS / inst.MSimCyclesPerS,
				})
			}
			if *withSamp {
				samp, err := measureBest(benches, *warmup, *cycles, *seed, *repeat, measureOpts{sampled: true})
				if err != nil {
					fail(err)
				}
				samp.Name = c.name + "-sampled"
				rep.Runs = append(rep.Runs, samp)
				rep.SampleOverheads = append(rep.SampleOverheads, ratio{
					Name:    c.name,
					Speedup: fast.MSimCyclesPerS / samp.MSimCyclesPerS,
				})
			}
			if *withIntf {
				intf, err := measureBest(benches, *warmup, *cycles, *seed, *repeat, measureOpts{interference: true})
				if err != nil {
					fail(err)
				}
				intf.Name = c.name + "-interference"
				rep.Runs = append(rep.Runs, intf)
				rep.IntfOverheads = append(rep.IntfOverheads, ratio{
					Name:    c.name,
					Speedup: fast.MSimCyclesPerS / intf.MSimCyclesPerS,
				})
			}
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	out = append(out, '\n')
	os.Stdout.Write(out)

	if *bless != "" {
		tmp := *bless + ".tmp"
		if err := os.WriteFile(tmp, out, 0o644); err != nil {
			fail(err)
		}
		if err := os.Rename(tmp, *bless); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: baseline written to %s\n", *bless)
	}
	if *checkOpt != "" {
		fmt.Fprintf(os.Stderr, "benchjson: checking against %s (tolerance %.1f%%)\n", *checkOpt, *tol*100)
		regs, err := check(rep, *checkOpt, *tol, os.Stderr)
		if err != nil {
			fail(err)
		}
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "benchjson: regression:", r)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchjson: no regressions beyond tolerance")
	}
}
