// Command tracegen records a synthetic benchmark's instruction stream
// to a trace file (the reproduction's analogue of the paper's "sampled
// traces"), and can summarize or verify existing trace files.
//
// Usage:
//
//	tracegen -bench art -n 1000000 -o art.trc [-thread 0] [-seed 0]
//	tracegen -info art.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		bench  = flag.String("bench", "", "benchmark to record (see fqsim -list)")
		n      = flag.Uint64("n", 1_000_000, "instructions to record")
		out    = flag.String("o", "", "output trace file")
		thread = flag.Int("thread", 0, "thread id (selects the address region)")
		seed   = flag.Uint64("seed", 0, "generator seed")
		info   = flag.String("info", "", "summarize an existing trace file and exit")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	if *info != "" {
		f, err := os.Open(*info)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r, err := trace.ReadTrace(f)
		if err != nil {
			fail(err)
		}
		var counts [5]int
		var ins trace.Instr
		for i := 0; i < r.Len(); i++ {
			r.Next(&ins)
			counts[ins.Kind]++
		}
		total := float64(r.Len())
		fmt.Printf("trace %s: %d instructions\n", r.Name(), r.Len())
		fmt.Printf("  int %.1f%%  fp %.1f%%  load %.1f%%  store %.1f%%  branch %.1f%%\n",
			100*float64(counts[trace.KindInt])/total,
			100*float64(counts[trace.KindFp])/total,
			100*float64(counts[trace.KindLoad])/total,
			100*float64(counts[trace.KindStore])/total,
			100*float64(counts[trace.KindBranch])/total)
		return
	}

	if *bench == "" || *out == "" {
		fail(fmt.Errorf("need -bench and -o (or -info)"))
	}
	p, err := trace.ByName(*bench)
	if err != nil {
		fail(err)
	}
	g, err := trace.NewGenerator(p, *thread, *seed)
	if err != nil {
		fail(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	if err := trace.WriteTrace(f, g, *n); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d instructions of %s to %s\n", *n, *bench, *out)
}
