// Command tracegen records a synthetic benchmark's instruction stream
// to a trace file (the reproduction's analogue of the paper's "sampled
// traces"), converts external text/CSV traces to the binary format,
// and can summarize or verify existing trace files.
//
// Usage:
//
//	tracegen -bench art -n 1000000 -o art.trc [-thread 0] [-seed 0]
//	tracegen -convert captured.txt -o captured.trc [-n 500000]
//	tracegen -info art.trc
//
// -bench accepts antagonist profiles (stream, rowthrash, bankhammer,
// bushog, diurnal) as well as the SPEC suite; -convert reads the text
// format documented in internal/trace/external.go.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		bench   = flag.String("bench", "", "benchmark to record (see fqsim -list)")
		n       = flag.Uint64("n", 1_000_000, "instructions to record")
		out     = flag.String("o", "", "output trace file")
		thread  = flag.Int("thread", 0, "thread id (selects the address region)")
		seed    = flag.Uint64("seed", 0, "generator seed")
		info    = flag.String("info", "", "summarize an existing trace file and exit")
		convert = flag.String("convert", "", "external text/CSV trace to convert to the binary format")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	flagSet := func(name string) bool {
		set := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == name {
				set = true
			}
		})
		return set
	}

	if *info != "" {
		f, err := os.Open(*info)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r, err := trace.ReadTrace(f)
		if err != nil {
			fail(err)
		}
		var counts [5]int
		var ins trace.Instr
		for i := 0; i < r.Len(); i++ {
			r.Next(&ins)
			counts[ins.Kind]++
		}
		total := float64(r.Len())
		fmt.Printf("trace %s: %d instructions\n", r.Name(), r.Len())
		fmt.Printf("  int %.1f%%  fp %.1f%%  load %.1f%%  store %.1f%%  branch %.1f%%\n",
			100*float64(counts[trace.KindInt])/total,
			100*float64(counts[trace.KindFp])/total,
			100*float64(counts[trace.KindLoad])/total,
			100*float64(counts[trace.KindStore])/total,
			100*float64(counts[trace.KindBranch])/total)
		return
	}

	if *convert != "" {
		if *out == "" {
			fail(fmt.Errorf("-convert needs -o"))
		}
		in, err := os.Open(*convert)
		if err != nil {
			fail(err)
		}
		r, err := trace.ReadExternal(in)
		in.Close()
		if err != nil {
			fail(err)
		}
		// Default to one full pass; -n can shorten or (looping) extend it.
		count := uint64(r.Len())
		if flagSet("n") {
			count = *n
		}
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := trace.WriteTrace(f, r, count); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("converted %d instructions of %s to %s\n", count, r.Name(), *out)
		return
	}

	if *bench == "" || *out == "" {
		fail(fmt.Errorf("need -bench and -o (or -info, -convert)"))
	}
	p, err := trace.ByName(*bench)
	if err != nil {
		fail(err)
	}
	g, err := trace.NewGenerator(p, *thread, *seed)
	if err != nil {
		fail(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	if err := trace.WriteTrace(f, g, *n); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d instructions of %s to %s\n", *n, *bench, *out)
}
