package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestParseShare(t *testing.T) {
	cases := []struct {
		in        string
		num, den  int
		wantError bool
	}{
		{"1/2", 1, 2, false},
		{"3/4", 3, 4, false},
		{"25", 25, 100, false},
		{"100", 100, 100, false},
		{"0/4", 0, 0, true},
		{"5/4", 0, 0, true},
		{"x/y", 0, 0, true},
		{"0", 0, 0, true},
		{"101", 0, 0, true},
		{"", 0, 0, true},
	}
	for _, c := range cases {
		s, err := parseShare(c.in)
		if c.wantError {
			if err == nil {
				t.Errorf("parseShare(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseShare(%q): %v", c.in, err)
			continue
		}
		if s.Num != c.num || s.Den != c.den {
			t.Errorf("parseShare(%q) = %v", c.in, s)
		}
	}
}

// TestWriteSeriesFile drives the -series-out path against a real
// sampled run and checks the document round-trips with the expected
// epoch count.
func TestWriteSeriesFile(t *testing.T) {
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := sim.RunSystem(sim.Config{
		Workload:       []trace.Profile{art, art},
		Seed:           1,
		SampleInterval: 10_000,
	}, 10_000, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.series.json")
	if err := writeSeriesFile(path, s); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Interval int64 `json:"interval"`
		Samples  []struct {
			Cycle int64 `json:"cycle"`
		} `json:"samples"`
		Fairness struct {
			Summary struct {
				Threads int `json:"threads"`
			} `json:"summary"`
		} `json:"fairness"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("series file invalid JSON: %v", err)
	}
	if doc.Interval != 10_000 || len(doc.Samples) != 5 || doc.Fairness.Summary.Threads != 2 {
		t.Errorf("series doc interval=%d samples=%d threads=%d, want 10000/5/2",
			doc.Interval, len(doc.Samples), doc.Fairness.Summary.Threads)
	}
}
