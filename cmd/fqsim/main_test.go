package main

import "testing"

func TestParseShare(t *testing.T) {
	cases := []struct {
		in        string
		num, den  int
		wantError bool
	}{
		{"1/2", 1, 2, false},
		{"3/4", 3, 4, false},
		{"25", 25, 100, false},
		{"100", 100, 100, false},
		{"0/4", 0, 0, true},
		{"5/4", 0, 0, true},
		{"x/y", 0, 0, true},
		{"0", 0, 0, true},
		{"101", 0, 0, true},
		{"", 0, 0, true},
	}
	for _, c := range cases {
		s, err := parseShare(c.in)
		if c.wantError {
			if err == nil {
				t.Errorf("parseShare(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseShare(%q): %v", c.in, err)
			continue
		}
		if s.Num != c.num || s.Den != c.den {
			t.Errorf("parseShare(%q) = %v", c.in, s)
		}
	}
}
