// Command fqsim runs one memory-system simulation: a set of benchmarks
// sharing a DDR2 memory system under a chosen scheduling policy, with
// optional non-uniform bandwidth shares.
//
// Usage:
//
//	fqsim -workload art,vpr -policy FQ-VFTF [-shares 3/4,1/4]
//	      [-warmup N] [-window N] [-scale K] [-seed N] [-list]
//	      [-trace out.json] [-metrics out.json]
//
// -trace streams a Chrome trace-event timeline (open in about://tracing
// or Perfetto) of every SDRAM command and request lifetime; -metrics
// dumps the full metrics registry (counters, gauges, latency histograms
// with p50/p95/p99) as JSON. Both are purely observational: simulation
// results are bit-identical with or without them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "art,vpr", "comma-separated benchmark names (one per core)")
		policy   = flag.String("policy", "FQ-VFTF", "scheduler: FCFS, FR-FCFS, FR-VFTF, FQ-VFTF, FR-VSTF")
		shares   = flag.String("shares", "", "comma-separated per-thread shares like 1/2,1/2 (default: equal)")
		warmup   = flag.Int64("warmup", 50_000, "warmup cycles")
		window   = flag.Int64("window", 400_000, "measurement cycles")
		scale    = flag.Int("scale", 1, "time scale the DRAM (private virtual-time baseline)")
		seed     = flag.Uint64("seed", 0, "trace generator seed")
		list     = flag.Bool("list", false, "list available benchmarks and exit")
		asJSON   = flag.Bool("json", false, "emit results as JSON")
		auditOn  = flag.Bool("audit", false, "run the invariant auditor (panic on any violation)")
		traceOut = flag.String("trace", "", "write a Chrome trace-event timeline to this file")
		metaOut  = flag.String("metrics", "", "write a JSON metrics dump to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks (most memory-aggressive first):")
		for _, p := range trace.Suite() {
			fmt.Printf("  %-10s target solo bus utilization %.2f\n", p.Name, p.SoloUtilTarget)
		}
		return
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fqsim:", err)
		os.Exit(1)
	}

	names := strings.Split(*workload, ",")
	profiles := make([]trace.Profile, len(names))
	for i, n := range names {
		p, err := trace.ByName(strings.TrimSpace(n))
		if err != nil {
			fail(err)
		}
		profiles[i] = p
	}

	factory, err := sim.PolicyByName(*policy)
	if err != nil {
		fail(err)
	}

	cfg := sim.Config{Workload: profiles, Policy: factory, Seed: *seed, Audit: *auditOn}
	if *scale != 1 {
		cfg.Mem.DRAM = dram.DefaultConfig()
		cfg.Mem.DRAM.Timing = dram.DDR2800().Scale(*scale)
	}
	if *shares != "" {
		parts := strings.Split(*shares, ",")
		if len(parts) != len(names) {
			fail(fmt.Errorf("%d shares for %d cores", len(parts), len(names)))
		}
		cfg.Shares = make([]core.Share, len(parts))
		for i, p := range parts {
			s, err := parseShare(strings.TrimSpace(p))
			if err != nil {
				fail(err)
			}
			cfg.Shares[i] = s
		}
	}

	var reg *metrics.Registry
	if *metaOut != "" {
		reg = metrics.New()
		cfg.Metrics = reg
	}
	var tw *metrics.TraceWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		tw = metrics.NewTraceWriter(f)
		if reg == nil {
			// The trace's request lifetimes are most useful alongside the
			// histograms, and the controller hooks are registered once at
			// construction; keep a registry even if it is never dumped.
			reg = metrics.New()
			cfg.Metrics = reg
		}
		cfg.Trace = tw
	}

	res, err := sim.Run(cfg, *warmup, *window)
	if err != nil {
		fail(err)
	}

	if tw != nil {
		if err := tw.Close(); err != nil {
			fail(fmt.Errorf("trace: %w", err))
		}
		fmt.Fprintf(os.Stderr, "fqsim: wrote %d trace events to %s\n", tw.Events(), *traceOut)
	}
	if *metaOut != "" {
		f, err := os.Create(*metaOut)
		if err != nil {
			fail(err)
		}
		if err := reg.WriteJSON(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fail(fmt.Errorf("metrics: %w", err))
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fail(err)
		}
		return
	}

	fmt.Printf("policy %s, %d cores, %d measured cycles\n", res.PolicyName, len(res.Threads), res.Cycles)
	fmt.Printf("%-10s %8s %8s %10s %10s %10s %10s %8s\n", "thread", "IPC", "busUtil", "readLat", "latP95", "latP99", "reads", "rowHit")
	for _, t := range res.Threads {
		fmt.Printf("%-10s %8.3f %8.3f %10.0f %10.0f %10.0f %10d %8.2f\n",
			t.Benchmark, t.IPC, t.BusUtil, t.AvgReadLatency, t.ReadLatP95, t.ReadLatP99, t.ReadsDone, t.RowHitRate)
	}
	fmt.Printf("aggregate: data bus utilization %.3f, bank utilization %.3f\n",
		res.DataBusUtil, res.BankUtil)
}

// parseShare parses "num/den" or a bare integer percentage like "25".
func parseShare(s string) (core.Share, error) {
	if num, den, ok := strings.Cut(s, "/"); ok {
		n, err1 := strconv.Atoi(num)
		d, err2 := strconv.Atoi(den)
		if err1 != nil || err2 != nil {
			return core.Share{}, fmt.Errorf("bad share %q", s)
		}
		sh := core.Share{Num: n, Den: d}
		if !sh.Valid() {
			return core.Share{}, fmt.Errorf("invalid share %q", s)
		}
		return sh, nil
	}
	pct, err := strconv.Atoi(s)
	if err != nil || pct < 1 || pct > 100 {
		return core.Share{}, fmt.Errorf("bad share %q (want num/den or percent)", s)
	}
	return core.Share{Num: pct, Den: 100}, nil
}
