// Command fqsim runs one memory-system simulation: a set of benchmarks
// sharing a DDR2 memory system under a chosen scheduling policy, with
// optional non-uniform bandwidth shares.
//
// Usage:
//
//	fqsim -workload art,vpr -policy FQ-VFTF [-shares 3/4,1/4]
//	      [-warmup N] [-window N] [-scale K] [-seed N] [-workers N] [-list]
//	      [-interference] [-trace out.json] [-metrics-out out.json]
//	      [-sample-interval N] [-series-out out.json]
//	      [-serve addr] [-serve-for dur]
//	      [-checkpoint file] [-checkpoint-every N] [-restore file]
//
// -trace streams a Chrome trace-event timeline (open in about://tracing
// or Perfetto) of every SDRAM command and request lifetime; -metrics-out
// dumps the full metrics registry (counters, gauges, latency histograms
// with p50/p95/p99) as JSON. -sample-interval snapshots the registry on
// epoch boundaries; -series-out writes that time series (plus the
// per-thread fairness series) as JSON, and -serve exposes it live over
// HTTP (Prometheus /metrics, JSON /series and /fairness, /progress,
// pprof) while the simulation runs. All of it is purely observational:
// simulation results are bit-identical with or without it.
//
// -checkpoint names a snapshot file for the complete simulator state;
// -checkpoint-every writes it periodically, and with -serve a POST to
// /checkpoint writes it on demand. -restore resumes a run from such a
// file (with the same flags otherwise) and continues bit-identically to
// the run that was interrupted.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "art,vpr", "comma-separated benchmark names (one per core)")
		policy    = flag.String("policy", "FQ-VFTF", "scheduler: FCFS, FR-FCFS, FR-VFTF, FQ-VFTF, FR-VSTF")
		shares    = flag.String("shares", "", "comma-separated per-thread shares like 1/2,1/2 (default: equal)")
		warmup    = flag.Int64("warmup", 50_000, "warmup cycles")
		window    = flag.Int64("window", 400_000, "measurement cycles")
		scale     = flag.Int("scale", 1, "time scale the DRAM (private virtual-time baseline)")
		seed      = flag.Uint64("seed", 0, "trace generator seed")
		workers   = flag.Int("workers", 0, "intra-run worker goroutines (sharded channel scheduling + core stepping; 0/1 = serial, results bit-identical)")
		list      = flag.Bool("list", false, "list available benchmarks and exit")
		asJSON    = flag.Bool("json", false, "emit results as JSON")
		auditOn   = flag.Bool("audit", false, "run the invariant auditor (panic on any violation)")
		intfOn    = flag.Bool("interference", false, "attribute every wait cycle to a cause and aggressor thread (observation-only; adds the /interference endpoint under -serve)")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event timeline to this file")
		metaOut   = flag.String("metrics", "", "alias of -metrics-out (kept for compatibility)")
		metaOut2  = flag.String("metrics-out", "", "write a JSON metrics dump to this file")
		sampleInt = flag.Int64("sample-interval", 0, "epoch sampling interval in cycles (0 = auto: 10000 when -serve or -series-out is used, else off)")
		seriesOut = flag.String("series-out", "", "write the epoch time series (metrics + fairness) as JSON to this file")
		serveAddr = flag.String("serve", "", "serve live status over HTTP on this address while the simulation runs (e.g. 127.0.0.1:9300)")
		serveFor  = flag.Duration("serve-for", 0, "keep the status server up this long after the run finishes")
		ckptPath  = flag.String("checkpoint", "", "write checkpoints of the full simulator state to this file")
		ckptEvery = flag.Int64("checkpoint-every", 0, "write a checkpoint every N cycles (0 = only on POST /checkpoint via -serve)")
		restore   = flag.String("restore", "", "resume from a checkpoint file written by -checkpoint (config must match)")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks (most memory-aggressive first):")
		for _, p := range trace.Suite() {
			fmt.Printf("  %-10s target solo bus utilization %.2f\n", p.Name, p.SoloUtilTarget)
		}
		fmt.Println("antagonists (adversarial/heterogeneous agents):")
		for _, p := range trace.Antagonists() {
			kind := p.Attack.String()
			if p.Attack == trace.AttackNone {
				kind = p.Agent.String()
			}
			fmt.Printf("  %-10s %-12s target solo bus utilization %.2f\n", p.Name, kind, p.SoloUtilTarget)
		}
		return
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fqsim:", err)
		os.Exit(1)
	}

	if *metaOut != "" && *metaOut2 != "" && *metaOut != *metaOut2 {
		fail(fmt.Errorf("-metrics and -metrics-out name different files"))
	}
	if (*ckptPath != "" || *restore != "") && *traceOut != "" {
		// A Chrome trace is an append-only log of everything since cycle
		// zero; a restored run cannot recreate the events it missed, so
		// the combination is refused rather than silently truncated.
		fail(fmt.Errorf("-checkpoint/-restore cannot be combined with -trace"))
	}
	if *ckptEvery > 0 && *ckptPath == "" {
		fail(fmt.Errorf("-checkpoint-every needs -checkpoint"))
	}
	if *metaOut2 != "" {
		*metaOut = *metaOut2
	}

	names := strings.Split(*workload, ",")
	profiles := make([]trace.Profile, len(names))
	for i, n := range names {
		p, err := trace.ByName(strings.TrimSpace(n))
		if err != nil {
			fail(err)
		}
		profiles[i] = p
	}

	factory, err := sim.PolicyByName(*policy)
	if err != nil {
		fail(err)
	}

	cfg := sim.Config{Workload: profiles, Policy: factory, Seed: *seed, Audit: *auditOn,
		Interference: *intfOn, Workers: *workers}
	if *scale != 1 {
		cfg.Mem.DRAM = dram.DefaultConfig()
		cfg.Mem.DRAM.Timing = dram.DDR2800().Scale(*scale)
	}
	if *shares != "" {
		parts := strings.Split(*shares, ",")
		if len(parts) != len(names) {
			fail(fmt.Errorf("%d shares for %d cores", len(parts), len(names)))
		}
		cfg.Shares = make([]core.Share, len(parts))
		for i, p := range parts {
			s, err := parseShare(strings.TrimSpace(p))
			if err != nil {
				fail(err)
			}
			cfg.Shares[i] = s
		}
	}

	cfg.SampleInterval = *sampleInt
	if cfg.SampleInterval == 0 && (*serveAddr != "" || *seriesOut != "") {
		cfg.SampleInterval = metrics.DefaultSampleInterval
	}

	var reg *metrics.Registry
	if *metaOut != "" {
		reg = metrics.New()
		cfg.Metrics = reg
	}
	var tw *metrics.TraceWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		tw = metrics.NewTraceWriter(f)
		if reg == nil {
			// The trace's request lifetimes are most useful alongside the
			// histograms, and the controller hooks are registered once at
			// construction; keep a registry even if it is never dumped.
			reg = metrics.New()
			cfg.Metrics = reg
		}
		cfg.Trace = tw
	}

	var s *sim.System
	if *restore != "" {
		s, err = sim.RestoreFile(cfg, *restore)
		if err != nil {
			fail(fmt.Errorf("restore: %w", err))
		}
		fmt.Fprintf(os.Stderr, "fqsim: restored %s at cycle %d\n", *restore, s.Cycle())
	} else {
		s, err = sim.New(cfg)
		if err != nil {
			fail(err)
		}
	}
	var prog *telemetry.Progress
	var srv *telemetry.Server
	var trig *telemetry.CheckpointTrigger
	if *serveAddr != "" {
		prog = telemetry.NewProgress(1)
		prog.Start(*workload)
		if *ckptPath != "" {
			trig = telemetry.NewCheckpointTrigger()
		}
		srv, err = telemetry.Start(telemetry.Config{
			Addr:         *serveAddr,
			Sampler:      s.Sampler(),
			Fairness:     s.Fairness(),
			Interference: s.Controller(),
			Progress:     prog,
			Checkpoint:   trig,
		})
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "fqsim: status server on %s\n", srv.URL())
	}

	// The run is one chunked loop over absolute cycles so that a
	// restored run (which starts mid-flight) and a fresh run share the
	// same path. Chunking keeps the progress endpoint live and bounds
	// how long an on-demand checkpoint request waits; it cannot change
	// results (Step(n) twice is Step(2n)). Chunks are clamped to the
	// measurement boundary so BeginMeasurement always lands exactly at
	// the warmup cycle — and therefore at the same cycle in any run of
	// this configuration, checkpointed or not.
	total := *warmup + *window
	nextCkpt := int64(-1)
	if *ckptPath != "" && *ckptEvery > 0 {
		nextCkpt = s.Cycle() + *ckptEvery
	}
	writeCkpt := func() error {
		if err := s.CheckpointFile(*ckptPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fqsim: checkpoint at cycle %d -> %s\n", s.Cycle(), *ckptPath)
		return nil
	}
	for s.Cycle() < total {
		const chunk = 100_000
		next := s.Cycle() + chunk
		if !s.MeasurementStarted() && next > *warmup {
			next = *warmup
		}
		if nextCkpt > 0 && next > nextCkpt {
			next = nextCkpt
		}
		if next > total {
			next = total
		}
		if n := next - s.Cycle(); n > 0 {
			s.Step(n)
			if prog != nil {
				prog.AddCycles(n)
			}
		}
		if !s.MeasurementStarted() && s.Cycle() >= *warmup {
			s.BeginMeasurement()
		}
		if nextCkpt > 0 && s.Cycle() >= nextCkpt {
			if err := writeCkpt(); err != nil {
				fail(fmt.Errorf("checkpoint: %w", err))
			}
			nextCkpt = s.Cycle() + *ckptEvery
		}
		if trig != nil {
			trig.Poll(writeCkpt)
		}
	}
	s.FinishAudit()
	res := s.Results()
	if prog != nil {
		prog.Finish(*workload)
	}

	if tw != nil {
		if err := tw.Close(); err != nil {
			fail(fmt.Errorf("trace: %w", err))
		}
		fmt.Fprintf(os.Stderr, "fqsim: wrote %d trace events to %s\n", tw.Events(), *traceOut)
	}
	if *metaOut != "" {
		f, err := os.Create(*metaOut)
		if err != nil {
			fail(err)
		}
		if err := reg.WriteJSON(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fail(fmt.Errorf("metrics: %w", err))
		}
	}
	if *seriesOut != "" {
		if err := writeSeriesFile(*seriesOut, s); err != nil {
			fail(fmt.Errorf("series: %w", err))
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fail(err)
		}
	} else {
		fmt.Printf("policy %s, %d cores, %d measured cycles\n", res.PolicyName, len(res.Threads), res.Cycles)
		fmt.Printf("%-10s %8s %8s %10s %10s %10s %10s %8s\n", "thread", "IPC", "busUtil", "readLat", "latP95", "latP99", "reads", "rowHit")
		for _, t := range res.Threads {
			fmt.Printf("%-10s %8.3f %8.3f %10.0f %10.0f %10.0f %10d %8.2f\n",
				t.Benchmark, t.IPC, t.BusUtil, t.AvgReadLatency, t.ReadLatP95, t.ReadLatP99, t.ReadsDone, t.RowHitRate)
		}
		fmt.Printf("aggregate: data bus utilization %.3f, bank utilization %.3f\n",
			res.DataBusUtil, res.BankUtil)
		if isnap, ok := s.Interference(); ok && isnap.Total > 0 {
			fmt.Printf("interference: %d attributed wait cycles, %.1f%% charged cross-thread\n",
				isnap.Total, 100*float64(isnap.Cross)/float64(isnap.Total))
			for v, row := range isnap.Matrix {
				top, cycles := -1, int64(0)
				for a := 0; a < isnap.Threads; a++ {
					if a != v && row[a] > cycles {
						top, cycles = a, row[a]
					}
				}
				if top >= 0 {
					fmt.Printf("  thread %d (%s): top aggressor thread %d (%s), %d cycles\n",
						v, res.Threads[v].Benchmark, top, res.Threads[top].Benchmark, cycles)
				}
			}
		}
	}

	if srv != nil {
		if *serveFor > 0 {
			fmt.Fprintf(os.Stderr, "fqsim: serving final state for %s\n", *serveFor)
			time.Sleep(*serveFor)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fail(fmt.Errorf("server shutdown: %w", err))
		}
	}
}

// writeSeriesFile dumps the run's epoch time series — per-interval
// metric deltas plus the fairness series — as one self-describing JSON
// document.
func writeSeriesFile(path string, s *sim.System) error {
	var doc struct {
		Interval int64            `json:"interval"`
		Epochs   int64            `json:"epochs"`
		Samples  []metrics.Sample `json:"samples"`
		Fairness struct {
			Summary memctrl.FairnessSummary  `json:"summary"`
			Samples []memctrl.FairnessSample `json:"samples"`
		} `json:"fairness"`
	}
	doc.Interval = s.Sampler().Interval()
	doc.Epochs = s.Sampler().Epochs()
	doc.Samples = s.Sampler().Samples(-1)
	doc.Fairness.Summary = s.Fairness().Summary()
	doc.Fairness.Samples = s.Fairness().Samples(-1)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseShare parses "num/den" or a bare integer percentage like "25".
func parseShare(s string) (core.Share, error) {
	if num, den, ok := strings.Cut(s, "/"); ok {
		n, err1 := strconv.Atoi(num)
		d, err2 := strconv.Atoi(den)
		if err1 != nil || err2 != nil {
			return core.Share{}, fmt.Errorf("bad share %q", s)
		}
		sh := core.Share{Num: n, Den: d}
		if !sh.Valid() {
			return core.Share{}, fmt.Errorf("invalid share %q", s)
		}
		return sh, nil
	}
	pct, err := strconv.Atoi(s)
	if err != nil || pct < 1 || pct > 100 {
		return core.Share{}, fmt.Errorf("bad share %q (want num/den or percent)", s)
	}
	return core.Share{Num: pct, Den: 100}, nil
}
