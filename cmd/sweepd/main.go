// Command sweepd is the sweep coordinator daemon: it shards an arena
// sweep matrix (policies x workloads x shares x channels) into chunks,
// serves them to workers over an HTTP/JSON work queue, collects each
// chunk's artifacts into a content-addressed store, reassigns chunks
// whose workers stop heartbeating (resuming from their last uploaded
// checkpoint), and — once every chunk completes — merges the artifacts
// into exactly the files a single-process sweep emits.
//
// Usage:
//
//	sweepd -out dir [-addr host:port]
//	       [-mixes vpr+art,...] [-shares eq,3-4] [-channels 1,2]
//	       [-warmup N] [-window N] [-seed N] [-sample-interval N]
//	       [-checkpoint-every N] [-lease-expiry D] [-retries N]
//
// Workers are `experiments -worker http://host:port` processes; any
// number may join or die at any time. The merged output directory is
// byte-identical to
//
//	experiments -fig arena -arena-mixes ... -checkpoint-dir out \
//	            -series-dir out -arena-out out
//
// on the same spec — the determinism the fabric test battery pins.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/fabric"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9400", "listen address for the work queue")
		out       = flag.String("out", "sweep-out", "directory receiving the merged artifacts")
		mixes     = flag.String("mixes", "", "workload mixes, e.g. \"vpr+art,swim+mcf+vpr+art\" (empty = default arena)")
		shares    = flag.String("shares", "", "thread-0 share splits, e.g. \"eq,3-4\" (empty = default arena)")
		channels  = flag.String("channels", "", "channel counts, e.g. \"1,2\" (empty = default arena)")
		warmup    = flag.Int64("warmup", 50_000, "warmup cycles per run")
		window    = flag.Int64("window", 400_000, "measurement cycles per run")
		seed      = flag.Uint64("seed", 0, "trace generator seed")
		sampleInt = flag.Int64("sample-interval", 0, "epoch sampling interval in cycles (0 = no series artifacts)")
		intfOn    = flag.Bool("interference", false, "run every chunk with delay attribution on (adds .interference.json artifacts and the arena interference_index column)")
		ckptEvery = flag.Int64("checkpoint-every", 0, "chunk epoch: cycles between worker checkpoints/heartbeats (0 = default)")
		expiry    = flag.Duration("lease-expiry", fabric.DefaultLeaseExpiry, "heartbeat deadline before a chunk is reassigned")
		retries   = flag.Int("retries", fabric.DefaultRetryBudget, "lease grants per chunk before the job fails")
		linger    = flag.Duration("linger", 5*time.Second, "keep serving after completion so polling workers observe \"done\" and exit cleanly")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}

	spec, err := exp.ParseArenaSpec(*mixes, *shares, *channels)
	if err != nil {
		fail(err)
	}
	coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Job: fabric.JobSpec{
			Spec:            spec,
			Warmup:          *warmup,
			Window:          *window,
			Seed:            *seed,
			SampleInterval:  *sampleInt,
			Interference:    *intfOn,
			CheckpointEvery: *ckptEvery,
		},
		LeaseExpiry: *expiry,
		RetryBudget: *retries,
	})
	if err != nil {
		fail(err)
	}
	srv, err := coord.Serve(*addr)
	if err != nil {
		fail(err)
	}
	st := coord.Status()
	fmt.Fprintf(os.Stderr, "sweepd: serving %d chunks on %s\n", st.Total, srv.URL())
	fmt.Fprintf(os.Stderr, "sweepd: join workers with: experiments -worker %s\n", srv.URL())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := coord.Wait(ctx); err != nil {
		fail(err)
	}
	if err := coord.WriteMerged(*out); err != nil {
		fail(err)
	}
	blobs, bytes, dedup := coord.Store().Stats()
	fmt.Fprintf(os.Stderr, "sweepd: merged %d chunks into %s (store: %d blobs, %d bytes, %d deduplicated puts)\n",
		st.Total, *out, blobs, bytes, dedup)

	arena, err := coord.Arena()
	if err != nil {
		fail(err)
	}
	arena.Render(os.Stdout)

	// Leave the queue up long enough for every worker's next poll to
	// see "done"; killing the listener first would strand them on a
	// connection error instead of a clean exit.
	select {
	case <-time.After(*linger):
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shCtx)
}
