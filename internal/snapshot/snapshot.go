// Package snapshot implements the versioned binary encoding beneath
// the simulator's checkpoint/restore feature (sim.Checkpoint /
// sim.Restore). The format is a flat little-endian stream:
//
//	magic "FQMSSNAP" | u32 version | sections...
//
// Each section opens with its name as a length-prefixed string; every
// component writes its own section marker, so a reader that drifts out
// of alignment fails immediately with a section-name mismatch instead
// of silently decoding garbage. The stream is self-describing down to
// the section level, but field layout within a section is fixed per
// version: a snapshot restores only into the same simulator version
// and an equivalent configuration (sim.Restore verifies a full
// configuration fingerprint before touching any component state).
//
// Hostile input is a first-class concern — snapshots cross process and
// machine boundaries. The Reader therefore never trusts a decoded
// length: every slice/string read takes an explicit cap and fails when
// the header exceeds it (the same defense trace.ReadTrace applies to
// its instruction-count header), so a bit-flipped count costs a
// bounded allocation, not an OOM. Both Writer and Reader carry a
// sticky error: the first failure wins and every later call is a
// cheap no-op, letting component serializers stay linear and check
// Err once.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Magic opens every snapshot stream.
const Magic = "FQMSSNAP"

// Version is the current format version. Any change to a section's
// field layout must bump it; Restore refuses other versions.
//
// History: v2 added the policy-name frame to the memctrl policy-state
// block (guarding against cross-policy restores) and the audit layer's
// interval-policy tracking state. v3 added the DRAM occupant-identity
// fields, the interference-attribution tracker state in memctrl, the
// fairness monitor's per-epoch top-aggressor columns, and the
// Interference bit in the configuration fingerprint. v4 added the
// trace generator's attack-pattern cursor (the antagonist workloads).
const Version = 4

// MaxSlice is the default element cap for variable-length sections
// whose natural bound is configuration-dependent but small (queues,
// rings, histories). 1<<22 elements bounds a hostile length header to
// tens of MB for the widest element types while being far above any
// real configuration.
const MaxSlice = 1 << 22

// MaxString caps decoded string lengths (section names, metric names,
// benchmark names are all short).
const MaxString = 1 << 10

// Writer serializes primitives to an io.Writer with a sticky error.
type Writer struct {
	w   *bufio.Writer
	err error
	buf [8]byte
}

// NewWriter returns a Writer that has already emitted the stream
// header (magic and version).
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{w: bufio.NewWriter(w)}
	sw.write([]byte(Magic))
	sw.U32(Version)
	return sw
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
}

// Fail records err (the first failure sticks) — for component
// serializers that detect an unserializable state mid-stream.
func (w *Writer) Fail(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) {
	w.buf[0] = v
	w.write(w.buf[:1])
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// I64 writes an int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 writes a float64 by bit pattern (exact round trip, NaN included).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	if len(s) > math.MaxUint32 {
		w.Fail("string of %d bytes", len(s))
		return
	}
	w.U32(uint32(len(s)))
	w.write([]byte(s))
}

// Section writes a section marker that Reader.Section verifies.
func (w *Writer) Section(name string) { w.String(name) }

// Len writes a u32 count header, the counterpart of Reader.Len. Use it
// for every explicit element count a reader will consume via Len.
func (w *Writer) Len(n int) {
	if n < 0 {
		w.Fail("negative length %d", n)
		return
	}
	w.U32(uint32(n))
}

// I64s writes a length-prefixed []int64.
func (w *Writer) I64s(v []int64) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.I64(x)
	}
}

// U64s writes a length-prefixed []uint64.
func (w *Writer) U64s(v []uint64) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.U64(x)
	}
}

// Ints writes a length-prefixed []int (as int64s).
func (w *Writer) Ints(v []int) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.Int(x)
	}
}

// Bools writes a length-prefixed []bool.
func (w *Writer) Bools(v []bool) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.Bool(x)
	}
}

// F64s writes a length-prefixed []float64.
func (w *Writer) F64s(v []float64) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.F64(x)
	}
}

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// Flush drains the buffer and returns the first error encountered.
func (w *Writer) Flush() error {
	if w.err == nil {
		w.err = w.w.Flush()
	}
	return w.err
}

// Reader decodes a stream produced by Writer, with a sticky error and
// caller-supplied caps on every variable-length read.
type Reader struct {
	r   *bufio.Reader
	err error
	buf [8]byte
}

// NewReader verifies the stream header and returns a Reader. A magic
// or version mismatch is an immediate error.
func NewReader(r io.Reader) (*Reader, error) {
	sr := &Reader{r: bufio.NewReader(r)}
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(sr.r, magic[:]); err != nil {
		return nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if string(magic[:]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", magic)
	}
	if v := sr.U32(); v != Version {
		if sr.err != nil {
			return nil, sr.err
		}
		return nil, fmt.Errorf("snapshot: version %d, this build reads %d", v, Version)
	}
	return sr, nil
}

func (r *Reader) read(p []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		r.err = fmt.Errorf("snapshot: truncated stream: %w", err)
	}
}

// Fail records err (the first failure sticks) — for component loaders
// that detect an invalid decoded value.
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	r.read(r.buf[:1])
	if r.err != nil {
		return 0
	}
	return r.buf[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	r.read(r.buf[:4])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[:4])
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	r.read(r.buf[:8])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 into an int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a bool; any byte other than 0 or 1 is an error.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail("invalid bool byte")
		return false
	}
}

// F64 reads a float64 by bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Len reads a u32 length header and fails if it exceeds max — the cap
// is enforced before any allocation.
func (r *Reader) Len(max int) int {
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if int64(n) > int64(max) {
		r.Fail("length %d exceeds cap %d", n, max)
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string of at most max bytes.
func (r *Reader) String(max int) string {
	n := r.Len(max)
	if r.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	r.read(b)
	if r.err != nil {
		return ""
	}
	return string(b)
}

// Section reads a section marker and fails unless it matches name.
func (r *Reader) Section(name string) {
	got := r.String(MaxString)
	if r.err == nil && got != name {
		r.Fail("expected section %q, found %q", name, got)
	}
}

// I64s reads a length-prefixed []int64 of at most max elements.
func (r *Reader) I64s(max int) []int64 {
	n := r.Len(max)
	if r.err != nil {
		return nil
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = r.I64()
	}
	if r.err != nil {
		return nil
	}
	return v
}

// U64s reads a length-prefixed []uint64 of at most max elements.
func (r *Reader) U64s(max int) []uint64 {
	n := r.Len(max)
	if r.err != nil {
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = r.U64()
	}
	if r.err != nil {
		return nil
	}
	return v
}

// Ints reads a length-prefixed []int of at most max elements.
func (r *Reader) Ints(max int) []int {
	n := r.Len(max)
	if r.err != nil {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = r.Int()
	}
	if r.err != nil {
		return nil
	}
	return v
}

// Bools reads a length-prefixed []bool of at most max elements.
func (r *Reader) Bools(max int) []bool {
	n := r.Len(max)
	if r.err != nil {
		return nil
	}
	v := make([]bool, n)
	for i := range v {
		v[i] = r.Bool()
	}
	if r.err != nil {
		return nil
	}
	return v
}

// F64s reads a length-prefixed []float64 of at most max elements.
func (r *Reader) F64s(max int) []float64 {
	n := r.Len(max)
	if r.err != nil {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = r.F64()
	}
	if r.err != nil {
		return nil
	}
	return v
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }
