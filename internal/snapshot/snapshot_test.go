package snapshot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("test.section")
	w.U8(0xab)
	w.U32(0xdeadbeef)
	w.U64(1 << 60)
	w.I64(-42)
	w.Int(-7)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.String("hello")
	w.String("")
	w.I64s([]int64{1, -2, 3})
	w.U64s([]uint64{9, 8})
	w.Ints([]int{-1, 0, 1})
	w.Bools([]bool{true, false, true})
	w.F64s([]float64{0.5, -0.25})
	w.Len(3)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.Section("test.section")
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 inf = %v", got)
	}
	if got := r.String(16); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(16); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if got := r.I64s(8); len(got) != 3 || got[1] != -2 {
		t.Errorf("I64s = %v", got)
	}
	if got := r.U64s(8); len(got) != 2 || got[0] != 9 {
		t.Errorf("U64s = %v", got)
	}
	if got := r.Ints(8); len(got) != 3 || got[0] != -1 {
		t.Errorf("Ints = %v", got)
	}
	if got := r.Bools(8); len(got) != 3 || !got[2] {
		t.Errorf("Bools = %v", got)
	}
	if got := r.F64s(8); len(got) != 2 || got[1] != -0.25 {
		t.Errorf("F64s = %v", got)
	}
	if got := r.Len(8); got != 3 {
		t.Errorf("Len = %d", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := NewReader(strings.NewReader("NOTASNAP\x01\x00\x00\x00")); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Flush()
	b := buf.Bytes()
	// Corrupt the version field.
	b[len(Magic)] = 0xEE
	if _, err := NewReader(bytes.NewReader(b)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestLenCap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Len(100)
	w.Flush()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Len(10); n != 0 {
		t.Errorf("over-cap Len returned %d", n)
	}
	if r.Err() == nil {
		t.Error("over-cap Len did not error")
	}
}

func TestStringCap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.String(strings.Repeat("x", 64))
	w.Flush()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s := r.String(8); s != "" {
		t.Errorf("over-cap String returned %q", s)
	}
	if r.Err() == nil {
		t.Error("over-cap String did not error")
	}
}

func TestSectionMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("alpha")
	w.Flush()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.Section("beta")
	if r.Err() == nil {
		t.Error("section mismatch accepted")
	}
}

func TestTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("s")
	w.I64s([]int64{1, 2, 3, 4})
	w.Flush()
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue
		}
		r.Section("s")
		r.I64s(8)
		if r.Err() == nil {
			t.Fatalf("truncation at %d/%d went unnoticed", cut, len(full))
		}
	}
}

func TestStickyError(t *testing.T) {
	r, err := NewReader(bytes.NewReader(mustHeaderOnly(t)))
	if err != nil {
		t.Fatal(err)
	}
	r.U64() // past EOF
	first := r.Err()
	if first == nil {
		t.Fatal("read past EOF did not error")
	}
	r.U64()
	r.String(8)
	if r.Err() != first {
		t.Error("error was not sticky")
	}
}

func TestWriterFail(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Fail("deliberate: %d", 7)
	if w.Err() == nil {
		t.Fatal("Fail did not set the error")
	}
	if err := w.Flush(); err == nil {
		t.Error("Flush ignored the failure")
	}
}

func TestNegativeLen(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Len(-1)
	if w.Err() == nil {
		t.Error("negative Len accepted")
	}
}

func mustHeaderOnly(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
