package memctrl

import (
	"testing"

	"repro/internal/addrmap"
	"repro/internal/core"
	"repro/internal/dram"
)

// linearConfig returns a 2-thread controller with a linear address map
// (so tests can place requests on exact banks/rows) and refresh off.
func linearConfig(t *testing.T, threads int) Config {
	t.Helper()
	cfg := DefaultConfig(threads)
	cfg.DisableRefresh = true
	g := addrmap.Geometry{Ranks: 1, BanksPerRank: 8, RowsPerBank: 16384, ColsPerRow: 128}
	m, err := addrmap.NewLinear(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mapper = m
	return cfg
}

// addr builds a line address with the given bank, row, and column under
// the linear map.
func addr(bank, row, col int) uint64 {
	return uint64(row)<<10 | uint64(bank)<<7 | uint64(col)
}

func newCtrl(t *testing.T, threads int, p core.Policy) *Controller {
	t.Helper()
	c, err := New(linearConfig(t, threads), p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runUntil ticks the controller until pred or the cycle bound.
func runUntil(c *Controller, from, bound int64, pred func() bool) int64 {
	for now := from; now < bound; now++ {
		c.Tick(now)
		if pred() {
			return now
		}
	}
	return -1
}

func TestSingleReadLifecycle(t *testing.T) {
	c := newCtrl(t, 1, core.NewFRFCFS())
	tt := dram.DDR2800()

	var doneAt int64 = -1
	c.OnReadDone = func(r *core.Request, now int64) { doneAt = now }

	if !c.Accept(0, addr(2, 5, 0), false, 0) {
		t.Fatal("accept failed")
	}
	if c.PendingRequests() != 1 {
		t.Fatal("request not pending")
	}
	end := runUntil(c, 0, 200, func() bool { return doneAt >= 0 })
	if end < 0 {
		t.Fatal("read never completed")
	}
	// Closed bank: ACT at cycle 0 (accepted before the first tick), RD
	// at +tRCD, data end at +tCL+BL2. Allow tick alignment slack.
	want := int64(tt.TRCD + tt.TCL + tt.BL2)
	if doneAt < want || doneAt > want+2 {
		t.Errorf("read done at %d, want about %d", doneAt, want)
	}
	st := c.Stats(0)
	if st.ReadsDone != 1 || st.ReadsAccepted != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.RowClosed != 1 || st.RowHits != 0 || st.RowConflicts != 0 {
		t.Errorf("bank state counts = %+v", st)
	}
	if c.CommandCount(dram.KindActivate) != 1 || c.CommandCount(dram.KindRead) != 1 {
		t.Error("wrong command counts")
	}
}

func TestRowHitSecondRequest(t *testing.T) {
	c := newCtrl(t, 1, core.NewFRFCFS())
	done := 0
	c.OnReadDone = func(r *core.Request, now int64) { done++ }
	c.Accept(0, addr(2, 5, 0), false, 0)
	c.Accept(0, addr(2, 5, 1), false, 0)
	if runUntil(c, 0, 300, func() bool { return done == 2 }) < 0 {
		t.Fatal("reads never completed")
	}
	st := c.Stats(0)
	if st.RowHits != 1 || st.RowClosed != 1 {
		t.Errorf("expected one closed + one hit, got %+v", st)
	}
	// Closed-row policy then closes the idle row.
	if runUntil(c, 300, 400, func() bool { return c.CommandCount(dram.KindPrecharge) == 1 }) < 0 {
		t.Error("idle open row was not closed under the closed-row policy")
	}
}

func TestOpenRowPolicyKeepsRowOpen(t *testing.T) {
	cfg := linearConfig(t, 1)
	cfg.RowPolicy = OpenRow
	c, err := New(cfg, core.NewFRFCFS())
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	c.OnReadDone = func(r *core.Request, now int64) { done++ }
	c.Accept(0, addr(2, 5, 0), false, 0)
	for now := int64(0); now < 400; now++ {
		c.Tick(now)
	}
	if done != 1 {
		t.Fatal("read did not complete")
	}
	if c.CommandCount(dram.KindPrecharge) != 0 {
		t.Error("open-row policy precharged an idle row")
	}
	// A conflicting request must now pay the precharge.
	c.Accept(0, addr(2, 9, 0), false, 400)
	for now := int64(400); now < 600; now++ {
		c.Tick(now)
	}
	if c.Stats(0).RowConflicts != 1 {
		t.Errorf("conflict not recorded: %+v", c.Stats(0))
	}
}

func TestBankConflictPrechargePath(t *testing.T) {
	c := newCtrl(t, 1, core.NewFRFCFS())
	done := 0
	c.OnReadDone = func(r *core.Request, now int64) { done++ }
	c.Accept(0, addr(1, 5, 0), false, 0)
	c.Accept(0, addr(1, 6, 0), false, 0) // same bank, different row
	if runUntil(c, 0, 500, func() bool { return done == 2 }) < 0 {
		t.Fatal("reads never completed")
	}
	st := c.Stats(0)
	if st.RowConflicts != 1 {
		t.Errorf("conflicts = %d, want 1 (closed-row idle close may race)", st.RowConflicts)
	}
}

func TestNACKBackpressurePerThread(t *testing.T) {
	c := newCtrl(t, 2, core.NewFRFCFS())
	// Fill thread 0's 16-entry read partition without ticking.
	for i := 0; i < 16; i++ {
		if !c.Accept(0, addr(i%8, i, 0), false, 0) {
			t.Fatalf("accept %d failed early", i)
		}
	}
	if c.Accept(0, addr(0, 99, 0), false, 0) {
		t.Fatal("17th read accepted; partition should be full")
	}
	if c.Stats(0).ReadNACKs != 1 {
		t.Errorf("read NACKs = %d", c.Stats(0).ReadNACKs)
	}
	// Thread 1 is unaffected (independent back pressure).
	if !c.Accept(1, addr(0, 500, 0), false, 0) {
		t.Fatal("thread 1 NACKed by thread 0's backlog")
	}
	// Write partition is separate: 8 writes fit, the 9th NACKs.
	for i := 0; i < 8; i++ {
		if !c.Accept(0, addr(i%8, 200+i, 0), true, 0) {
			t.Fatalf("write %d NACKed early", i)
		}
	}
	if c.Accept(0, addr(0, 300, 0), true, 0) {
		t.Fatal("9th write accepted")
	}
	if c.Stats(0).WriteNACKs != 1 {
		t.Errorf("write NACKs = %d", c.Stats(0).WriteNACKs)
	}
}

func TestWriteLifecycle(t *testing.T) {
	c := newCtrl(t, 1, core.NewFRFCFS())
	c.Accept(0, addr(3, 7, 0), true, 0)
	if runUntil(c, 0, 300, func() bool { return c.Stats(0).WritesDone == 1 }) < 0 {
		t.Fatal("write never completed")
	}
	if c.CommandCount(dram.KindWrite) != 1 {
		t.Error("no write command issued")
	}
	if c.Stats(0).DataBusCycles != int64(dram.DDR2800().BL2) {
		t.Errorf("bus cycles = %d", c.Stats(0).DataBusCycles)
	}
}

func TestFCFSArrivalOrderAcrossBanks(t *testing.T) {
	// Under strict FCFS, a later request to a free bank must still wait
	// for the earlier request (no first-ready reordering).
	c := newCtrl(t, 2, core.NewFCFS())
	var order []int
	c.OnReadDone = func(r *core.Request, now int64) { order = append(order, r.Thread) }
	c.Accept(0, addr(0, 1, 0), false, 0)
	c.Tick(0) // ACT for request 0
	c.Accept(1, addr(1, 1, 0), false, 1)
	for now := int64(1); now < 300 && len(order) < 2; now++ {
		c.Tick(now)
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("completion order = %v, want [0 1]", order)
	}
}

func TestFRFCFSRowHitsOvertakeOlderConflicts(t *testing.T) {
	// First-ready: a younger row hit is served before an older request
	// to a different row of the same bank (the priority-chaining
	// ingredient).
	c := newCtrl(t, 2, core.NewFRFCFS())
	var order []uint64
	c.OnReadDone = func(r *core.Request, now int64) { order = append(order, r.ID) }
	// Open row 5 of bank 0 via thread 0.
	c.Accept(0, addr(0, 5, 0), false, 0)
	ttt := dram.DDR2800()
	warm := int64(2 + ttt.TRCD) // ACT issued, RD issued
	for now := int64(0); now < warm; now++ {
		c.Tick(now)
	}
	// Now, while row 5 is open: an older conflict (row 6) from thread 1
	// and a younger hit (row 5) from thread 0.
	c.Accept(1, addr(0, 6, 0), false, warm)   // older, conflict
	c.Accept(0, addr(0, 5, 1), false, warm+1) // younger, hit
	for now := warm; now < 500 && len(order) < 3; now++ {
		c.Tick(now)
	}
	if len(order) != 3 {
		t.Fatal("requests did not complete")
	}
	// IDs: 1 = row opener, 2 = conflict, 3 = hit. The hit (3) must
	// finish before the conflict (2).
	if !(order[1] == 3 && order[2] == 2) {
		t.Fatalf("completion order = %v, want hit (3) before conflict (2)", order)
	}
}

func TestFQVFTFBoundsPriorityInversion(t *testing.T) {
	// Same scenario as above but with the FQ scheduler and a thread-0
	// stream that keeps the row busy: thread 1's older conflict must be
	// served within a bounded time, not starved behind the stream.
	shares := []core.Share{{Num: 1, Den: 2}, {Num: 1, Den: 2}}
	tt := dram.DDR2800()
	c := newCtrl(t, 2, core.NewFQVFTF(shares, 8, tt))
	var conflictDone int64 = -1
	c.OnReadDone = func(r *core.Request, now int64) {
		if r.Thread == 1 {
			conflictDone = now
		}
	}
	// Thread 0 continuously streams row 5 hits at bank 0.
	next := 0
	feed := func(now int64) {
		for c.Stats(0).ReadsAccepted-c.Stats(0).ReadsDone < 8 {
			if !c.Accept(0, addr(0, 5, next%128), false, now) {
				break
			}
			next++
		}
	}
	feed(0)
	var arrival int64 = -1
	for now := int64(0); now < 2000 && conflictDone < 0; now++ {
		c.Tick(now)
		feed(now)
		if now == 40 {
			c.Accept(1, addr(0, 6, 0), false, now)
			arrival = now
		}
	}
	if conflictDone < 0 {
		t.Fatal("conflicting request starved under FQ-VFTF")
	}
	// The FQ bank rule bounds inversion to about x = tRAS plus the
	// service itself; allow generous slack for channel contention.
	if wait := conflictDone - arrival; wait > 4*int64(tt.TRAS) {
		t.Errorf("conflict waited %d cycles, want bounded near tRAS=%d", wait, tt.TRAS)
	}
}

func TestRefreshPausesVClock(t *testing.T) {
	cfg := linearConfig(t, 1)
	cfg.DisableRefresh = false
	cfg.DRAM.Timing.TREF = 1000 // refresh early so the test is short
	c, err := New(cfg, core.NewFRFCFS())
	if err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < 5000; now++ {
		c.Tick(now)
	}
	if c.CommandCount(dram.KindRefresh) < 3 {
		t.Fatalf("refreshes = %d, want >= 3", c.CommandCount(dram.KindRefresh))
	}
	// The virtual clock excludes tRFC periods: vclock = cycles - refreshes*tRFC.
	expected := 5000 - c.CommandCount(dram.KindRefresh)*int64(cfg.DRAM.Timing.TRFC)
	got := c.VClock()
	if got < expected-20 || got > expected+20 {
		t.Errorf("vclock = %d, want about %d", got, expected)
	}
}

func TestRefreshDrainsOpenBanks(t *testing.T) {
	cfg := linearConfig(t, 1)
	cfg.DisableRefresh = false
	cfg.DRAM.Timing.TREF = 200
	cfg.RowPolicy = OpenRow // rows stay open; refresh must force-close
	c, err := New(cfg, core.NewFRFCFS())
	if err != nil {
		t.Fatal(err)
	}
	c.Accept(0, addr(0, 1, 0), false, 0)
	for now := int64(0); now < 2000; now++ {
		c.Tick(now)
	}
	if c.CommandCount(dram.KindRefresh) == 0 {
		t.Fatal("refresh never issued with an open row")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(0)
	if _, err := New(bad, core.NewFRFCFS()); err == nil {
		t.Error("accepted 0 threads")
	}
	bad = DefaultConfig(1)
	bad.ReadEntriesPerThread = 0
	if _, err := New(bad, core.NewFRFCFS()); err == nil {
		t.Error("accepted 0 read entries")
	}
	bad = DefaultConfig(1)
	bad.WriteEntriesPerThread = 0
	if _, err := New(bad, core.NewFRFCFS()); err == nil {
		t.Error("accepted 0 write entries")
	}
	bad = DefaultConfig(1)
	bad.DRAM.Timing.TCL = 0
	if _, err := New(bad, core.NewFRFCFS()); err == nil {
		t.Error("accepted invalid DRAM timing")
	}
}

func TestRowPolicyString(t *testing.T) {
	if ClosedRow.String() != "closed" || OpenRow.String() != "open" {
		t.Error("RowPolicy strings")
	}
}

func TestReadLatencyAccounting(t *testing.T) {
	c := newCtrl(t, 1, core.NewFRFCFS())
	c.OnReadDone = func(r *core.Request, now int64) {}
	c.Accept(0, addr(0, 1, 0), false, 0)
	for now := int64(0); now < 100; now++ {
		c.Tick(now)
	}
	st := c.Stats(0)
	if st.ReadsDone != 1 {
		t.Fatal("read incomplete")
	}
	tt := dram.DDR2800()
	min := float64(tt.TRCD + tt.TCL + tt.BL2)
	if got := st.AvgReadLatency(); got < min || got > min+4 {
		t.Errorf("latency = %v, want about %v", got, min)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		shares := []core.Share{{Num: 1, Den: 2}, {Num: 1, Den: 2}}
		c := newCtrl(t, 2, core.NewFQVFTF(shares, 8, dram.DDR2800()))
		seed := uint64(12345)
		for now := int64(0); now < 3000; now++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			th := int(seed >> 62 & 1)
			if seed%3 == 0 {
				c.Accept(th, uint64(seed>>16)%100000, seed%5 == 0, now)
			}
			c.Tick(now)
		}
		return c.Stats(0).ReadsDone + c.Stats(1).ReadsDone, c.Channel().DataBusBusyCycles()
	}
	r1, b1 := run()
	r2, b2 := run()
	if r1 != r2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", r1, b1, r2, b2)
	}
}
