package memctrl

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/metrics"
)

// memMetrics holds the controller's metric handles. A nil *memMetrics
// means the observability layer is off; every hot-path update site
// guards on that single pointer test, so a disabled run costs one
// predicted branch per site and is bit-identical to an uninstrumented
// controller (no metric ever feeds back into scheduling).
type memMetrics struct {
	// Service-start classification per flat bank (the per-bank
	// counterpart of ThreadStats.RowHits/RowConflicts/RowClosed).
	bankRowHit    []*metrics.Counter
	bankRowConf   []*metrics.Counter
	bankRowClosed []*metrics.Counter

	// Transaction/write buffer occupancy per thread, sampled at every
	// successful Accept (after the entry is taken).
	readOcc  []*metrics.Histogram
	writeOcc []*metrics.Histogram

	// VTMS bookkeeping: the real-vs-virtual clock lag (cycles the
	// virtual clock has paused for refresh), as a gauge refreshed on
	// every full tick and a histogram sampled at each refresh issue.
	vclockLag  *metrics.Gauge
	refreshLag *metrics.Histogram

	// FQ priority-inversion accounting: a CAS that overtakes a pending
	// same-bank request with a smaller policy key is an inversion; the
	// window is how long the bank's open row has been favored.
	inversions      *metrics.Counter
	inversionWindow *metrics.Histogram
}

// newMemMetrics registers the controller's metrics. Everything the
// controller already tracks for its simulation results (ThreadStats,
// command counts, DRAM device counters) is exported through Func views
// that read only at snapshot time; only genuinely new measurements get
// hot-path handles.
func newMemMetrics(reg *metrics.Registry, c *Controller) *memMetrics {
	m := &memMetrics{
		bankRowHit:      make([]*metrics.Counter, len(c.pending)),
		bankRowConf:     make([]*metrics.Counter, len(c.pending)),
		bankRowClosed:   make([]*metrics.Counter, len(c.pending)),
		readOcc:         make([]*metrics.Histogram, c.cfg.Threads),
		writeOcc:        make([]*metrics.Histogram, c.cfg.Threads),
		vclockLag:       reg.Gauge("memctrl.vclock_lag"),
		refreshLag:      reg.Histogram("memctrl.refresh_lag"),
		inversions:      reg.Counter("memctrl.fq.inversions"),
		inversionWindow: reg.Histogram("memctrl.fq.inversion_window"),
	}
	for b := range c.pending {
		m.bankRowHit[b] = reg.Counter(fmt.Sprintf("memctrl.bank%d.row_hits", b))
		m.bankRowConf[b] = reg.Counter(fmt.Sprintf("memctrl.bank%d.row_conflicts", b))
		m.bankRowClosed[b] = reg.Counter(fmt.Sprintf("memctrl.bank%d.row_closed", b))
	}
	for t := 0; t < c.cfg.Threads; t++ {
		m.readOcc[t] = reg.Histogram(fmt.Sprintf("memctrl.thread%d.read_occupancy", t))
		m.writeOcc[t] = reg.Histogram(fmt.Sprintf("memctrl.thread%d.write_occupancy", t))
		st := &c.stats[t]
		reg.Func(fmt.Sprintf("memctrl.thread%d.reads_done", t), func() int64 { return st.ReadsDone })
		reg.Func(fmt.Sprintf("memctrl.thread%d.writes_done", t), func() int64 { return st.WritesDone })
		reg.Func(fmt.Sprintf("memctrl.thread%d.read_nacks", t), func() int64 { return st.ReadNACKs })
		reg.Func(fmt.Sprintf("memctrl.thread%d.write_nacks", t), func() int64 { return st.WriteNACKs })
		reg.Func(fmt.Sprintf("memctrl.thread%d.data_bus_cycles", t), func() int64 { return st.DataBusCycles })
	}
	for k := dram.KindActivate; k <= dram.KindRefresh; k++ {
		k := k
		reg.Func("memctrl.cmd."+k.String(), func() int64 { return c.cmdCount[k] })
	}
	reg.Func("memctrl.vclock", func() int64 { return c.vclock })
	reg.Func("memctrl.pending_requests", func() int64 { return int64(c.pendingTotal) })
	for chIdx, ch := range c.chans {
		ch := ch
		prefix := fmt.Sprintf("dram.chan%d.", chIdx)
		reg.Func(prefix+"data_bus_busy_cycles", ch.DataBusBusyCycles)
		reg.Func(prefix+"refreshes", ch.Refreshes)
		for b := 0; b < c.banksPerChan; b++ {
			b := b
			bp := fmt.Sprintf("%sbank%d.", prefix, b)
			reg.Func(bp+"activates", func() int64 { act, _, _, _ := ch.BankCommandCounts(b); return act })
			reg.Func(bp+"precharges", func() int64 { _, pre, _, _ := ch.BankCommandCounts(b); return pre })
			reg.Func(bp+"reads", func() int64 { _, _, rd, _ := ch.BankCommandCounts(b); return rd })
			reg.Func(bp+"writes", func() int64 { _, _, _, wr := ch.BankCommandCounts(b); return wr })
		}
	}
	return m
}

// Trace-event process ids: one process row per channel (banks are its
// thread rows, plus one refresh row), one per hardware thread (request
// lifetimes).
const (
	tracePidChannel = 10  // + channel index
	tracePidThread  = 100 // + thread index
)

// initTrace emits the metadata events naming the trace's rows.
func (c *Controller) initTrace() {
	tw := c.tw
	for chIdx := range c.chans {
		pid := tracePidChannel + chIdx
		tw.ProcessName(pid, fmt.Sprintf("SDRAM channel %d", chIdx))
		for b := 0; b < c.banksPerChan; b++ {
			tw.ThreadName(pid, b, fmt.Sprintf("bank %d", b))
		}
		tw.ThreadName(pid, c.banksPerChan, "refresh")
	}
	for t := 0; t < c.cfg.Threads; t++ {
		pid := tracePidThread + t
		tw.ProcessName(pid, fmt.Sprintf("thread %d requests", t))
		tw.ThreadName(pid, 0, "reads")
		tw.ThreadName(pid, 1, "writes")
	}
}

// cmdDuration returns the display duration of an SDRAM command: the
// window until the command's effect completes (tRCD for an activate,
// CAS latency plus burst for data transfers, tRP for a precharge, tRFC
// for a refresh).
func (c *Controller) cmdDuration(kind dram.Kind) int64 {
	t := &c.cfg.DRAM.Timing
	switch kind {
	case dram.KindActivate:
		return int64(t.TRCD)
	case dram.KindRead:
		return int64(t.TCL) + int64(t.BL2)
	case dram.KindWrite:
		return int64(t.TWL) + int64(t.BL2)
	case dram.KindPrecharge:
		return int64(t.TRP)
	case dram.KindRefresh:
		return int64(t.TRFC)
	}
	return 1
}

// Static key sets for trace events, kept package-level (and the value
// scratch on the Controller) so event emission does not allocate.
var (
	traceCmdKeys  = []string{"thread", "row"}
	traceLifeKeys = []string{"bank", "row", "latency"}
	// With interference attribution on, lifetime slices also carry the
	// other thread charged the most of this request's wait and that
	// charge (-1/0 when nothing was attributed to another thread).
	traceLifeIntfKeys = []string{"bank", "row", "latency", "top_aggressor", "stolen_cycles"}
)

// traceCmd emits one SDRAM command event on the owning bank's row.
// thread < 0 marks a request-less command (idle-close precharge).
func (c *Controller) traceCmd(kind dram.Kind, flatBank, thread, row int, now int64) {
	pid := tracePidChannel + flatBank/c.banksPerChan
	tid := flatBank % c.banksPerChan
	if thread < 0 {
		c.tw.Complete(kind.String(), pid, tid, now, c.cmdDuration(kind))
		return
	}
	c.traceVals[0] = int64(thread)
	c.traceVals[1] = int64(row)
	c.tw.CompleteArgs(kind.String(), pid, tid, now, c.cmdDuration(kind),
		traceCmdKeys, c.traceVals[:2])
}

// traceLifetime emits one request-lifetime event on the owning thread's
// row (tid 0 = reads, 1 = writes), spanning arrival to data burst end.
// slot is the request's arena slot, used to pull its interference
// attribution when the tracker is on.
func (c *Controller) traceLifetime(name string, slot int32, thread, flatBank, row int, arrival, done int64) {
	c.traceVals[0] = int64(flatBank)
	c.traceVals[1] = int64(row)
	c.traceVals[2] = done - arrival
	tid := 0
	if name == "write" {
		tid = 1
	}
	keys, vals := traceLifeKeys, c.traceVals[:3]
	if c.intf != nil {
		top, stolen := c.intf.topAggressor(slot, thread)
		c.traceVals[3] = int64(top)
		c.traceVals[4] = stolen
		keys, vals = traceLifeIntfKeys, c.traceVals[:5]
	}
	c.tw.CompleteArgs(name, tracePidThread+thread, tid, arrival, done-arrival,
		keys, vals)
}
