package memctrl

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/snapshot"
)

// saveCtrl runs a controller briefly so its policy state is non-trivial,
// then serializes it.
func saveCtrl(t *testing.T, c *Controller) []byte {
	t.Helper()
	c.Accept(0, addr(2, 5, 0), false, 0)
	c.Accept(1, addr(3, 9, 0), false, 0)
	for now := int64(0); now < 200; now++ {
		c.Tick(now)
	}
	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	c.SaveState(w)
	if err := w.Flush(); err != nil {
		t.Fatalf("save: %v", err)
	}
	return buf.Bytes()
}

func loadCtrl(t *testing.T, c *Controller, snap []byte) error {
	t.Helper()
	r, err := snapshot.NewReader(bytes.NewReader(snap))
	if err != nil {
		return err
	}
	return c.LoadState(r)
}

// TestSnapshotCrossPolicyRestoreFails pins the policy-name frame:
// FR-VFTF and FR-VSTF share the vftBase state section with identical
// geometry, so without the frame a snapshot of one would restore
// silently into the other and resume a different experiment. The
// restore must instead fail with an error naming both policies.
func TestSnapshotCrossPolicyRestoreFails(t *testing.T) {
	shares := []core.Share{{Num: 1, Den: 2}, {Num: 1, Den: 2}}
	tt := dram.DDR2800()
	mk := func(name string) *Controller {
		var p core.Policy
		switch name {
		case "FR-VFTF":
			p = core.NewFRVFTF(shares, 8, tt)
		case "FR-VSTF":
			p = core.NewFRVSTF(shares, 8, tt)
		}
		return newCtrl(t, 2, p)
	}
	for _, tc := range []struct{ save, load string }{
		{"FR-VFTF", "FR-VSTF"},
		{"FR-VSTF", "FR-VFTF"},
	} {
		snap := saveCtrl(t, mk(tc.save))
		err := loadCtrl(t, mk(tc.load), snap)
		if err == nil {
			t.Fatalf("%s snapshot restored into %s controller; want error", tc.save, tc.load)
		}
		if !strings.Contains(err.Error(), tc.save) || !strings.Contains(err.Error(), tc.load) {
			t.Fatalf("cross-policy error %q does not name both policies %q and %q", err, tc.save, tc.load)
		}
		// The same snapshot restores cleanly under its own policy.
		if err := loadCtrl(t, mk(tc.save), snap); err != nil {
			t.Fatalf("same-policy restore of %s failed: %v", tc.save, err)
		}
	}
}

// TestSnapshotPolicyCapabilityMismatch: a snapshot whose policy carried
// no serialized state (FR-FCFS) must not restore into a controller
// whose policy expects a state section, and vice versa — either way is
// a clean error, not a silent skip or a section-name panic deeper in
// the stream.
func TestSnapshotPolicyCapabilityMismatch(t *testing.T) {
	shares := []core.Share{{Num: 1, Den: 2}, {Num: 1, Den: 2}}
	tt := dram.DDR2800()

	stateless := saveCtrl(t, newCtrl(t, 2, core.NewFRFCFS()))
	err := loadCtrl(t, newCtrl(t, 2, core.NewFRVFTF(shares, 8, tt)), stateless)
	if err == nil || !strings.Contains(err.Error(), "policy-state flag") {
		t.Fatalf("stateless snapshot into stateful policy: err = %v, want policy-state flag mismatch", err)
	}

	stateful := saveCtrl(t, newCtrl(t, 2, core.NewFRVFTF(shares, 8, tt)))
	err = loadCtrl(t, newCtrl(t, 2, core.NewFRFCFS()), stateful)
	if err == nil || !strings.Contains(err.Error(), "policy-state flag") {
		t.Fatalf("stateful snapshot into stateless policy: err = %v, want policy-state flag mismatch", err)
	}
}

// TestSnapshotArenaPolicyRoundTrip: each interval policy's serialized
// state survives a save/load/re-save cycle byte-identically at the
// controller layer.
func TestSnapshotArenaPolicyRoundTrip(t *testing.T) {
	tt := dram.DDR2800()
	for _, tc := range []struct {
		name string
		mk   func() core.Policy
	}{
		{"BLISS", func() core.Policy { return core.NewBLISS(2) }},
		{"SLOW-FAIR", func() core.Policy { return core.NewSlowFair(2, tt) }},
		{"BANK-BW", func() core.Policy { return core.NewBankBW(2, 8) }},
	} {
		snap := saveCtrl(t, newCtrl(t, 2, tc.mk()))
		c2 := newCtrl(t, 2, tc.mk())
		if err := loadCtrl(t, c2, snap); err != nil {
			t.Fatalf("%s: restore failed: %v", tc.name, err)
		}
		var buf bytes.Buffer
		w := snapshot.NewWriter(&buf)
		c2.SaveState(w)
		if err := w.Flush(); err != nil {
			t.Fatalf("%s: re-save: %v", tc.name, err)
		}
		if !bytes.Equal(snap, buf.Bytes()) {
			t.Fatalf("%s: re-serialized state differs (%d vs %d bytes)", tc.name, len(snap), len(buf.Bytes()))
		}
	}
}
