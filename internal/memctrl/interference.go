package memctrl

import (
	"fmt"
	"sync"

	"repro/internal/dram"
	"repro/internal/metrics"
	"repro/internal/snapshot"
)

// Interference attribution (DESIGN §15): every cycle a request spends
// waiting in the controller is charged to exactly one exclusive cause
// and at most one aggressor thread, folding into a per-thread-pair
// matrix cycles[victim][aggressor] plus per-cause totals. The layer is
// observation-only — it reads the same DDR2 state the scheduler reads
// and never feeds back into a decision, so enabling it leaves every
// simulated result bit-identical — and it is conservative by
// construction: a request's attributed cycles always sum to exactly its
// measured queueing delay (arrival to CAS issue), an invariant the
// audit layer re-checks at every service start.
//
// The accounting protocol piggybacks on the bank scheduler's existing
// per-request examination loop (zero allocations in steady state):
//
//   - attrFrom[slot] is the cycle up to which the request's wait has
//     been attributed (exclusive). Accept sets it to the arrival cycle.
//   - While a request's next command cannot legally issue, examinations
//     do no accounting work at all: the wait accumulates silently. At
//     the ready transition (the first examination with the command
//     issuable) the whole span [attrFrom, now) is charged in one step —
//     the blocked prefix to the binding DDR2 constraint
//     (dram.BlockingCause names the resource that released last and the
//     thread whose earlier command set it), any ready remainder to the
//     scheduling policy — and attrFrom advances to now. Deferring to
//     the transition keeps the hot path O(ready requests) per cycle
//     instead of O(pending), and the charge is still well-defined after
//     release because BlockingCause is a pure max over device
//     timestamps, not a function of the probe cycle.
//   - Requests that were ready at now but were not issued are charged
//     one more cycle at tick end, to the thread whose command the
//     channel issued instead (or to refresh, or — when the bank is
//     holding for a not-yet-ready request under a strict key rule — to
//     the thread the bank is held for). attrFrom advances to now+1.
//   - The request that wins its CAS at cycle now was examined this very
//     cycle, so attrFrom == now and the charges already cover
//     [arrival, now) exactly: conservation is structural, not tuned.
//
// Examination writes touch only per-slot and per-channel state, so the
// parallel per-channel schedule phase stays race-free; the global
// matrix is folded in TickEnd's canonical serial channel order, which
// keeps parallel runs bit-identical to serial ones.

// Attribution causes. Exclusive: each waited cycle lands in exactly one.
const (
	causeBankOther = iota // bank busy on another thread's request
	causeBankSelf         // bank busy on this request's own service
	causeBus              // shared data bus occupied
	causeTiming           // channel/rank spacing (tCCD, tWTR, tRRD)
	causeRefresh          // refresh window or pre-refresh drain
	causePolicy           // ready but scheduled behind someone else
	numCauses
)

var causeNames = [numCauses]string{
	"bank_other", "bank_self", "bus", "timing", "refresh", "policy",
}

// InterferenceCauses returns the cause column labels in matrix order.
func InterferenceCauses() []string { return append([]string(nil), causeNames[:]...) }

// InterferenceSnapshot is a point-in-time copy of the attribution
// state, in integers so downstream aggregation (fabric merge, arena
// reduction) is exact. Matrix[v][a] is the cycles victim thread v
// waited that were attributed to aggressor a; column Threads is the
// "no aggressor" bucket (refresh, cold timing constraints). Cube[v][a]
// breaks each cell down by cause, in Causes order.
type InterferenceSnapshot struct {
	Threads     int         `json:"threads"`
	Causes      []string    `json:"causes"`
	Matrix      [][]int64   `json:"matrix"`
	Cube        [][][]int64 `json:"cube"`
	CauseTotals []int64     `json:"cause_totals"`

	// Total is all attributed cycles; Cross the subset charged to a
	// real thread other than the victim (the interference proper).
	Total int64 `json:"total"`
	Cross int64 `json:"cross"`
}

// Per-channel charges are staged in a channel-local copy of the cube
// plus the list of touched cells, so a tick's many one-cycle charges to
// the same (victim, aggressor, cause) coalesce into one fold and one
// registry-counter bump at tick end.

// intfReady is a request that was ready at the current cycle; whether
// and to whom its current cycle is charged depends on the channel's
// decision, so the charge is resolved at tick end.
type intfReady struct {
	slot   int32
	victim int32
}

// intfHold records that the ready entries staged at index base and
// beyond belong to a bank the scheduler is holding for the given
// thread; drain consults it only on ticks where no command issued.
type intfHold struct {
	base   int32
	thread int32
}

// attrState packs a slot's two hot accounting fields on one cache
// line: the cycle up to which its wait is attributed (exclusive) and
// the cycles attributed so far.
type attrState struct {
	from  int64
	total int64
}

// intfTracker is the per-controller attribution state. Nil when the
// feature is off; every hot-path site guards on that single test.
type intfTracker struct {
	threads int
	aggrs   int // threads + 1 ("none" bucket)

	// Per-slot accounting, indexed like the request arena. attrBy rows
	// survive until the slot is recycled so the trace writer can name a
	// completed request's top aggressor.
	attr   []attrState
	attrBy []int64 // nslots x aggrs

	// cube[victim][aggressor][cause], flattened. Mutated only in the
	// serial TickEnd fold; baseline is the copy taken when measurement
	// begins, so windowed results exclude warmup.
	cube     []int64
	baseline []int64

	// Per-channel staging, written only by that channel's schedule
	// phase. stage[ch] is cube-shaped; touched[ch] lists its nonzero
	// cells. polCnt is drain's per-victim scratch.
	stage   [][]int64
	touched [][]int32
	ready   [][]intfReady
	holds   [][]intfHold
	polCnt  []int64

	// Registry mirrors (nil without a registry): real counters bumped
	// at the TickEnd fold so the epoch sampler sees counter deltas.
	pairCtr  []*metrics.Counter // threads x aggrs
	causeCtr [numCauses]*metrics.Counter

	// published is the snapshot served to concurrent readers (the
	// telemetry server); refreshed from the cube on the simulation
	// goroutine via publish().
	mu        sync.Mutex
	published InterferenceSnapshot
	hasPub    bool
}

func newIntfTracker(c *Controller, reg *metrics.Registry) *intfTracker {
	threads := c.cfg.Threads
	aggrs := threads + 1
	nslots := len(c.arena)
	nch := len(c.chans)
	t := &intfTracker{
		threads:  threads,
		aggrs:    aggrs,
		attr:     make([]attrState, nslots),
		attrBy:   make([]int64, nslots*aggrs),
		cube:     make([]int64, threads*aggrs*numCauses),
		baseline: make([]int64, threads*aggrs*numCauses),
		stage:    make([][]int64, nch),
		touched:  make([][]int32, nch),
		ready:    make([][]intfReady, nch),
		holds:    make([][]intfHold, nch),
		polCnt:   make([]int64, threads),
	}
	cells := threads * aggrs * numCauses
	for i := range t.stage {
		// Sized to the worst case so the steady state is allocation-free.
		t.stage[i] = make([]int64, cells)
		t.touched[i] = make([]int32, 0, cells)
		t.ready[i] = make([]intfReady, 0, nslots+4)
		t.holds[i] = make([]intfHold, 0, c.cfg.DRAM.Ranks*c.cfg.DRAM.BanksPerRank+1)
	}
	if reg != nil {
		t.pairCtr = make([]*metrics.Counter, threads*aggrs)
		for v := 0; v < threads; v++ {
			for a := 0; a < aggrs; a++ {
				name := fmt.Sprintf("interference.pair.v%d.a%d", v, a)
				if a == threads {
					name = fmt.Sprintf("interference.pair.v%d.anone", v)
				}
				t.pairCtr[v*aggrs+a] = reg.Counter(name)
			}
		}
		for i := range t.causeCtr {
			t.causeCtr[i] = reg.Counter("interference.cause." + causeNames[i])
		}
	}
	return t
}

func (t *intfTracker) cubeIdx(victim, aggr, cause int) int {
	return (victim*t.aggrs+aggr)*numCauses + cause
}

// onAccept initializes a slot's accounting at its arrival cycle.
func (t *intfTracker) onAccept(slot int32, now int64) {
	t.attr[slot] = attrState{from: now}
	row := t.attrBy[int(slot)*t.aggrs : (int(slot)+1)*t.aggrs]
	for i := range row {
		row[i] = 0
	}
}

// classify maps a binding DDR2 constraint to an attribution cause and
// aggressor column.
func (t *intfTracker) classify(victim int, bc dram.BlockCause, th int) (cause, aggr int) {
	none := t.threads
	switch bc {
	case dram.BlockRefresh:
		return causeRefresh, none
	case dram.BlockBank:
		switch {
		case th == victim:
			return causeBankSelf, victim
		case th >= 0:
			return causeBankOther, th
		default:
			return causeBankOther, none
		}
	case dram.BlockBus:
		if th >= 0 {
			return causeBus, th
		}
		return causeBus, none
	default: // BlockChan, BlockRank, BlockNone
		return causeTiming, none
	}
}

// charge attributes cycles to (victim, aggr, cause) for a slot: the
// per-slot totals are updated immediately (slots belong to exactly one
// channel, so this is safe from the parallel schedule phase); the
// global matrix contribution is staged in the channel-local cube.
func (t *intfTracker) charge(chIdx int, slot int32, victim, aggr, cause int, cycles int64) {
	t.attr[slot].total += cycles
	t.attrBy[int(slot)*t.aggrs+aggr] += cycles
	t.stageAdd(chIdx, (victim*t.aggrs+aggr)*numCauses+cause, cycles)
}

// stageAdd adds cycles to one staged-cube cell, tracking first touches.
func (t *intfTracker) stageAdd(chIdx, idx int, cycles int64) {
	st := t.stage[chIdx]
	if st[idx] == 0 {
		t.touched[chIdx] = append(t.touched[chIdx], int32(idx))
	}
	st[idx] += cycles
}

// exam attributes a request's wait and stages the request for the
// tick-end charge. bankSchedule calls it only for requests whose next
// command is issuable (early <= now): still-blocked requests cost a
// single comparison at the call site — their accumulating wait is
// charged in one step at the ready transition (see the protocol
// comment above).
func (t *intfTracker) exam(ch *dram.Channel, chIdx int, slot int32, victim int, kind dram.Kind, lb int, early, now int64) {
	f := t.attr[slot].from
	if f < now {
		blockedEnd := early
		if blockedEnd < f {
			blockedEnd = f
		}
		if blockedEnd > f {
			_, bc, th := ch.BlockingCause(kind, lb)
			cause, aggr := t.classify(victim, bc, th)
			t.charge(chIdx, slot, victim, aggr, cause, blockedEnd-f)
		}
		if now > blockedEnd {
			// Ready cycles no examination charged (the span since the
			// command became issuable, plus any invalidation gap).
			// Structural conservation: charge them to the policy with no
			// aggressor rather than lose them.
			t.charge(chIdx, slot, victim, t.threads, causePolicy, now-blockedEnd)
		}
		t.attr[slot].from = now
	}
	t.ready[chIdx] = append(t.ready[chIdx], intfReady{
		slot: slot, victim: int32(victim),
	})
}

// patchFallback records the hold-for thread of the ready entries a
// bank appended this cycle, once the bank's key-selected request is
// known (entries [base:] belong to the bank just scheduled).
func (t *intfTracker) patchFallback(chIdx, base, thread int) {
	if base < len(t.ready[chIdx]) {
		t.holds[chIdx] = append(t.holds[chIdx], intfHold{
			base: int32(base), thread: int32(thread),
		})
	}
}

// readyBase returns the staging mark patchFallback records against.
func (t *intfTracker) readyBase(chIdx int) int { return len(t.ready[chIdx]) }

// drain resolves the current-cycle charge for a channel's ready
// requests against the channel's decision and folds the channel's
// staged cube into the global matrix and its registry mirrors. Called
// from TickEnd in canonical channel order, after the decision is
// applied and before it is cleared.
func (t *intfTracker) drain(c *Controller, chIdx int, d *decision, now int64) {
	ready := t.ready[chIdx]
	if len(ready) > 0 {
		switch {
		case d.kind == decCmd:
			// Skipped cycles charged to the thread the channel served
			// instead; the winner's own cycle is its service start (CAS)
			// or progress (ACT/PRE), not a wait. One (victim, winner,
			// policy) cell per victim: count, then fold once.
			issued := d.cand.slot
			winner := t.threads // "none": an idle-close precharge won
			if issued != noSlot {
				winner = c.arena[issued].Thread
			}
			for i := range ready {
				e := &ready[i]
				if e.slot == issued {
					continue
				}
				a := &t.attr[e.slot]
				a.total++
				a.from = now + 1
				t.attrBy[int(e.slot)*t.aggrs+winner]++
				t.polCnt[e.victim]++
			}
			for v, n := range t.polCnt {
				if n != 0 {
					t.polCnt[v] = 0
					t.stageAdd(chIdx, (v*t.aggrs+winner)*numCauses+causePolicy, n)
				}
			}
		case d.kind == decRefresh || c.refreshWanted[chIdx]:
			for i := range ready {
				e := &ready[i]
				t.charge(chIdx, e.slot, int(e.victim), t.threads, causeRefresh, 1)
				t.attr[e.slot].from = now + 1
			}
		default:
			// No command issued: a strict key rule is holding every
			// offering bank for a not-yet-ready request; charge the
			// thread the victim's bank is held for (recorded per bank in
			// the hold ranges).
			holds := t.holds[chIdx]
			aggr := t.threads
			for i, h := 0, 0; i < len(ready); i++ {
				for h < len(holds) && int(holds[h].base) <= i {
					aggr = int(holds[h].thread)
					h++
				}
				e := &ready[i]
				t.charge(chIdx, e.slot, int(e.victim), aggr, causePolicy, 1)
				t.attr[e.slot].from = now + 1
			}
		}
		t.ready[chIdx] = ready[:0]
	}
	t.holds[chIdx] = t.holds[chIdx][:0]

	touched := t.touched[chIdx]
	if len(touched) == 0 {
		return
	}
	st := t.stage[chIdx]
	for _, idx := range touched {
		cycles := st[idx]
		st[idx] = 0
		t.cube[idx] += cycles
		if t.pairCtr != nil {
			t.pairCtr[int(idx)/numCauses].Add(cycles)
			t.causeCtr[int(idx)%numCauses].Add(cycles)
		}
	}
	t.touched[chIdx] = touched[:0]
}

// onServiceStart finalizes a request's attribution at its CAS issue:
// by construction attrFrom == now and attrTotal covers [arrival, now)
// exactly; the audit layer re-checks that conservation invariant.
func (c *Controller) intfServiceStart(slot int32, now int64) {
	t := c.intf
	if c.aud != nil {
		c.aud.OnAttributed(&c.arena[slot], t.attr[slot].total, now)
	}
}

// topAggressor returns the other thread charged the most of the slot's
// wait and that charge (-1, 0 when nothing was attributed to another
// thread). The "none" bucket and the victim's own column are excluded.
func (t *intfTracker) topAggressor(slot int32, victim int) (int, int64) {
	row := t.attrBy[int(slot)*t.aggrs : (int(slot)+1)*t.aggrs]
	top, best := -1, int64(0)
	for a := 0; a < t.threads; a++ {
		if a != victim && row[a] > best {
			top, best = a, row[a]
		}
	}
	return top, best
}

// snapshotLocked builds a snapshot from the cube; sinceBaseline
// subtracts the measurement-start baseline. Simulation goroutine only
// (reads the live cube).
func (t *intfTracker) buildSnapshot(sinceBaseline bool) InterferenceSnapshot {
	s := InterferenceSnapshot{
		Threads:     t.threads,
		Causes:      InterferenceCauses(),
		Matrix:      make([][]int64, t.threads),
		Cube:        make([][][]int64, t.threads),
		CauseTotals: make([]int64, numCauses),
	}
	for v := 0; v < t.threads; v++ {
		row := make([]int64, t.aggrs)
		crow := make([][]int64, t.aggrs)
		for a := 0; a < t.aggrs; a++ {
			cells := make([]int64, numCauses)
			var sum int64
			for cs := 0; cs < numCauses; cs++ {
				d := t.cube[t.cubeIdx(v, a, cs)]
				if sinceBaseline {
					d -= t.baseline[t.cubeIdx(v, a, cs)]
				}
				cells[cs] = d
				sum += d
				s.CauseTotals[cs] += d
			}
			row[a] = sum
			crow[a] = cells
			s.Total += sum
			if a < t.threads && a != v {
				s.Cross += sum
			}
		}
		s.Matrix[v] = row
		s.Cube[v] = crow
	}
	return s
}

// pairTotals writes the cause-summed matrix (threads x aggrs,
// flattened) into dst; the fairness monitor diffs successive calls to
// find each epoch's top aggressor. Simulation goroutine only.
func (t *intfTracker) pairTotals(dst []int64) {
	for v := 0; v < t.threads; v++ {
		for a := 0; a < t.aggrs; a++ {
			var sum int64
			for cs := 0; cs < numCauses; cs++ {
				sum += t.cube[t.cubeIdx(v, a, cs)]
			}
			dst[v*t.aggrs+a] = sum
		}
	}
}

// InterferenceEnabled reports whether delay attribution is on.
func (c *Controller) InterferenceEnabled() bool { return c.intf != nil }

// InterferenceSnapshot returns the attribution matrix, cumulative or
// relative to the measurement baseline. Simulation goroutine only; the
// second result is false when attribution is off.
func (c *Controller) InterferenceSnapshot(sinceBaseline bool) (InterferenceSnapshot, bool) {
	if c.intf == nil {
		return InterferenceSnapshot{}, false
	}
	return c.intf.buildSnapshot(sinceBaseline), true
}

// MarkInterferenceBaseline records the current matrix as the
// measurement baseline (called when warmup ends), so windowed results
// cover only the measured interval. Simulation goroutine only.
func (c *Controller) MarkInterferenceBaseline() {
	if c.intf != nil {
		copy(c.intf.baseline, c.intf.cube)
	}
}

// PublishInterference refreshes the snapshot concurrent readers see.
// Simulation goroutine only (the sampler calls it at epoch
// boundaries).
func (c *Controller) PublishInterference() {
	if c.intf == nil {
		return
	}
	s := c.intf.buildSnapshot(false)
	c.intf.mu.Lock()
	c.intf.published = s
	c.intf.hasPub = true
	c.intf.mu.Unlock()
}

// PublishedInterference returns the most recently published snapshot.
// Safe from any goroutine; false before the first publish or when
// attribution is off.
func (c *Controller) PublishedInterference() (InterferenceSnapshot, bool) {
	if c.intf == nil {
		return InterferenceSnapshot{}, false
	}
	c.intf.mu.Lock()
	defer c.intf.mu.Unlock()
	return c.intf.published, c.intf.hasPub
}

// saveState serializes the tracker: the matrix, its baseline, and each
// live request's accounting in the controller's request-serialization
// order (pending queues bank by bank, then in-flight reads channel by
// channel) — the same order LoadState reassigns arena slots in, so the
// per-slot state rejoins its request bit-identically.
func (t *intfTracker) saveState(w *snapshot.Writer, c *Controller) {
	w.Section("memctrl.Interference")
	w.I64s(t.cube)
	w.I64s(t.baseline)
	slotState := func(slot int32) {
		w.I64(t.attr[slot].from)
		w.I64(t.attr[slot].total)
		w.I64s(t.attrBy[int(slot)*t.aggrs : (int(slot)+1)*t.aggrs])
	}
	for _, q := range c.pending {
		for _, slot := range q {
			slotState(slot)
		}
	}
	for ch := range c.inflight {
		for _, f := range c.inflight[ch][c.inflightHead[ch]:] {
			slotState(f.slot)
		}
	}
}

// loadState restores a tracker saved by saveState. Called after the
// controller's arena has been rebuilt, so the pending/inflight slot
// assignments it walks match the serialization order.
func (t *intfTracker) loadState(r *snapshot.Reader, c *Controller) error {
	r.Section("memctrl.Interference")
	cube := r.I64s(len(t.cube))
	baseline := r.I64s(len(t.baseline))
	if r.Err() == nil && (len(cube) != len(t.cube) || len(baseline) != len(t.baseline)) {
		r.Fail("memctrl.Interference: matrix sized %d/%d, tracker has %d", len(cube), len(baseline), len(t.cube))
	}
	if err := r.Err(); err != nil {
		return err
	}
	slotState := func(slot int32) {
		t.attr[slot].from = r.I64()
		t.attr[slot].total = r.I64()
		row := r.I64s(t.aggrs)
		if r.Err() == nil && len(row) != t.aggrs {
			r.Fail("memctrl.Interference: slot row sized %d, tracker has %d", len(row), t.aggrs)
			return
		}
		copy(t.attrBy[int(slot)*t.aggrs:(int(slot)+1)*t.aggrs], row)
	}
	for _, q := range c.pending {
		for _, slot := range q {
			slotState(slot)
		}
	}
	for ch := range c.inflight {
		for _, f := range c.inflight[ch][c.inflightHead[ch]:] {
			slotState(f.slot)
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	copy(t.cube, cube)
	copy(t.baseline, baseline)
	return nil
}
