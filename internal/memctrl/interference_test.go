package memctrl

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/dram"
)

// intfCtrl builds a controller with delay attribution (and the audit
// layer, so every test doubles as a conservation check) on the linear
// two-thread harness.
func intfCtrl(t *testing.T, threads int, p core.Policy) *Controller {
	t.Helper()
	cfg := linearConfig(t, threads)
	cfg.Interference = true
	cfg.Audit = true
	c, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestInterferenceSoloZeroCross: a thread running alone suffers no
// cross-thread interference — every attributed cycle lands in its own
// column or the "none" bucket, and the other thread's row stays zero.
func TestInterferenceSoloZeroCross(t *testing.T) {
	c := intfCtrl(t, 2, core.NewFRFCFS())
	done := 0
	c.OnReadDone = func(r *core.Request, now int64) { done++ }
	c.Accept(0, addr(2, 5, 0), false, 0)
	c.Accept(0, addr(2, 6, 0), false, 0) // same bank, different row: conflict
	if runUntil(c, 0, 500, func() bool { return done == 2 }) < 0 {
		t.Fatal("reads never completed")
	}
	snap, ok := c.InterferenceSnapshot(false)
	if !ok {
		t.Fatal("attribution off despite cfg.Interference")
	}
	if snap.Cross != 0 {
		t.Errorf("solo run attributed %d cross-thread cycles, want 0\nmatrix: %v", snap.Cross, snap.Matrix)
	}
	if snap.Total <= 0 {
		t.Error("solo run attributed no cycles at all; the second (conflicting) read must have waited")
	}
	for a, cells := range snap.Matrix[1] {
		if cells != 0 {
			t.Errorf("idle thread 1 charged %d cycles to aggressor %d, want 0", cells, a)
		}
	}
	c.FinishAudit(500)
}

// TestInterferenceTwoThreadExact: two threads, one request each, same
// bank and same row, both arriving at cycle 0 under FR-FCFS. The DDR2
// timing makes the schedule exact: thread 0's ACT issues at 0 and its
// RD at tRCD; thread 1's RD is then data-bus bound and issues at
// tRCD+BL2 (BL2 > tCCD). Every waited cycle of thread 1 is thread 0's
// fault, so the pair matrix is fully determined.
func TestInterferenceTwoThreadExact(t *testing.T) {
	c := intfCtrl(t, 2, core.NewFRFCFS())
	tt := dram.DDR2800()
	done := 0
	c.OnReadDone = func(r *core.Request, now int64) { done++ }
	c.Accept(0, addr(2, 5, 0), false, 0)
	c.Accept(1, addr(2, 5, 1), false, 0)
	if runUntil(c, 0, 500, func() bool { return done == 2 }) < 0 {
		t.Fatal("reads never completed")
	}
	snap, _ := c.InterferenceSnapshot(false)

	wantSelf := int64(tt.TRCD)           // thread 0 waits out its own ACT->RD
	wantCross := int64(tt.TRCD + tt.BL2) // thread 1: bank busy, then bus busy
	if got := snap.Matrix[0][0]; got != wantSelf {
		t.Errorf("Matrix[0][0] = %d, want %d (own tRCD wait)", got, wantSelf)
	}
	if got := snap.Matrix[1][0]; got != wantCross {
		t.Errorf("Matrix[1][0] = %d, want %d (tRCD + BL2 behind thread 0)", got, wantCross)
	}
	if got := snap.Matrix[0][1]; got != 0 {
		t.Errorf("Matrix[0][1] = %d, want 0: thread 0 never waited on thread 1", got)
	}
	if got := snap.Matrix[1][1]; got != 0 {
		t.Errorf("Matrix[1][1] = %d, want 0: thread 1 had no prior request of its own", got)
	}
	none := snap.Threads
	if got := snap.Matrix[0][none] + snap.Matrix[1][none]; got != 0 {
		t.Errorf("no-aggressor bucket holds %d cycles, want 0 (refresh is off)", got)
	}
	if snap.Cross != wantCross {
		t.Errorf("Cross = %d, want %d", snap.Cross, wantCross)
	}
	if want := wantSelf + wantCross; snap.Total != want {
		t.Errorf("Total = %d, want %d (sum of both queueing delays)", snap.Total, want)
	}

	// Cause-level consistency: thread 0's wait is all bank_self; thread
	// 1's wait splits between bank busy, bus busy, and bank-ready
	// cycles the channel spent serving thread 0 (the split depends on
	// examination granularity, the sum does not) — never the
	// no-aggressor timing or refresh buckets.
	if got := snap.Cube[0][0][causeBankSelf]; got != wantSelf {
		t.Errorf("Cube[0][0][bank_self] = %d, want %d", got, wantSelf)
	}
	row := snap.Cube[1][0]
	if got := row[causeBankOther] + row[causeBus] + row[causePolicy]; got != wantCross {
		t.Errorf("Cube[1][0] sums to %d, want %d (cube: %v)", got, wantCross, row)
	}
	if row[causeBankOther] == 0 || row[causeBus] == 0 {
		t.Errorf("thread 1's wait should include both bank-busy and bus-busy cycles, got %v", row)
	}
	if row[causeTiming] != 0 || row[causeRefresh] != 0 {
		t.Errorf("timing/refresh cycles charged to a thread column: %v", row)
	}
	var causeSum int64
	for _, n := range snap.CauseTotals {
		causeSum += n
	}
	if causeSum != snap.Total {
		t.Errorf("cause totals sum to %d, total is %d", causeSum, snap.Total)
	}
	c.FinishAudit(500)
}

// TestInterferenceFQInversionPolicyCause: under FQ-VFTF with unequal
// shares, the prioritized (high-share) thread's requests overtake the
// low-share thread's ready requests — and those scheduling decisions
// must be charged to the beneficiary under the policy cause, not
// hidden in the timing buckets.
func TestInterferenceFQInversionPolicyCause(t *testing.T) {
	tt := dram.DDR2800()
	shares := []core.Share{{Num: 3, Den: 4}, {Num: 1, Den: 4}}
	c := intfCtrl(t, 2, core.NewFQVFTF(shares, 8, tt))

	// Both threads hammer bank 2 with row conflicts, queues kept
	// stocked so the scheduler always has an inversion to exploit.
	next := [2]int{}
	for now := int64(0); now < 20_000; now++ {
		for th := 0; th < 2; th++ {
			if c.Accept(th, addr(2, th*1000+next[th]%500, 0), false, now) {
				next[th]++
			}
		}
		c.Tick(now)
	}
	snap, _ := c.InterferenceSnapshot(false)
	lowOnHigh := snap.Cube[1][0][causePolicy]
	highOnLow := snap.Cube[0][1][causePolicy]
	if lowOnHigh == 0 {
		t.Fatalf("no policy-cause cycles charged to the prioritized thread\ncube[1][0]: %v", snap.Cube[1][0])
	}
	if lowOnHigh <= highOnLow {
		t.Errorf("policy cycles: low-share victim charged %d to thread 0, high-share victim charged %d to thread 1; want the low-share thread to suffer more",
			lowOnHigh, highOnLow)
	}
}

// TestInterferenceConservationAuditFires plants a fault: tampering
// with the per-slot attributed totals mid-wait must trip the audit
// conservation invariant (attributed cycles == arrival-to-CAS wait) at
// the next service start. This proves the clean FinishAudit runs in
// the other tests are checking something real.
func TestInterferenceConservationAuditFires(t *testing.T) {
	c := intfCtrl(t, 2, core.NewFRFCFS())
	c.Accept(0, addr(2, 5, 0), false, 0)
	c.Accept(1, addr(2, 5, 1), false, 0)
	// Let the waits accumulate but stop before the first CAS (tRCD).
	c.Tick(0)
	c.Tick(1)
	for i := range c.intf.attr {
		c.intf.attr[i].total++ // double-count one cycle on every slot
	}
	defer func() {
		v, ok := recover().(*audit.Violation)
		if !ok {
			t.Fatal("tampered attribution totals did not trip the audit conservation check")
		}
		if v.Cycle <= 1 {
			t.Errorf("violation at cycle %d, want it at the first CAS issue", v.Cycle)
		}
	}()
	for now := int64(2); now < 500; now++ {
		c.Tick(now)
	}
	t.Fatal("ran to completion despite tampered attribution totals")
}
