package memctrl

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
)

// twoChannelConfig uses the default XOR mapper over a two-channel
// geometry (channels are line-interleaved).
func twoChannelConfig(threads int) Config {
	cfg := DefaultConfig(threads)
	cfg.Channels = 2
	cfg.DisableRefresh = true
	return cfg
}

func TestMultiChannelDecodeRouting(t *testing.T) {
	c, err := New(twoChannelConfig(1), core.NewFRFCFS())
	if err != nil {
		t.Fatal(err)
	}
	if c.Channels() != 2 {
		t.Fatalf("channels = %d", c.Channels())
	}
	// Line-interleaving: even line addresses on channel 0, odd on 1.
	done := make(map[uint64]bool)
	c.OnReadDone = func(r *core.Request, now int64) {
		done[r.Addr] = true
		if int(r.Addr&1) != r.Channel {
			t.Errorf("addr %d routed to channel %d", r.Addr, r.Channel)
		}
	}
	c.Accept(0, 0, false, 0)
	c.Accept(0, 1, false, 0)
	for now := int64(0); now < 200 && len(done) < 2; now++ {
		c.Tick(now)
	}
	if len(done) != 2 {
		t.Fatal("reads did not complete")
	}
}

// TestMultiChannelParallelism: two channels must service two
// independent request streams concurrently, roughly doubling throughput
// over one channel.
func TestMultiChannelParallelism(t *testing.T) {
	run := func(channels int) int64 {
		cfg := DefaultConfig(1)
		cfg.Channels = channels
		cfg.DisableRefresh = true
		cfg.ReadEntriesPerThread = 32
		c, err := New(cfg, core.NewFRFCFS())
		if err != nil {
			t.Fatal(err)
		}
		c.OnReadDone = func(r *core.Request, now int64) {}
		addr := uint64(0)
		for now := int64(0); now < 20_000; now++ {
			for c.Stats(0).ReadsAccepted-c.Stats(0).ReadsDone < 24 {
				if !c.Accept(0, addr, false, now) {
					break
				}
				addr += 17 // stride across channels, banks, rows
			}
			c.Tick(now)
		}
		return c.Stats(0).ReadsDone
	}
	one := run(1)
	two := run(2)
	if float64(two) < 1.5*float64(one) {
		t.Errorf("2-channel throughput %d not well above 1-channel %d", two, one)
	}
}

// TestMultiChannelVTMSIsolation: the FQ policy must keep independent
// channel registers; saturating channel 0 must not delay a request on
// channel 1 via the VTMS bookkeeping.
func TestMultiChannelVTMS(t *testing.T) {
	shares := []core.Share{{Num: 1, Den: 2}, {Num: 1, Den: 2}}
	cfg := twoChannelConfig(2)
	p := core.NewFQVFTF(shares, cfg.TotalBanks(), dram.DDR2800())
	c, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	c.OnReadDone = func(r *core.Request, now int64) { done++ }
	// Thread 0 hammers channel 0 (even addresses), thread 1 sends one
	// request to channel 1.
	addr := uint64(0)
	sentOdd := false
	var oddDone int64 = -1
	c.OnReadDone = func(r *core.Request, now int64) {
		done++
		if r.Thread == 1 {
			oddDone = now
		}
	}
	for now := int64(0); now < 3000; now++ {
		for c.Stats(0).ReadsAccepted-c.Stats(0).ReadsDone < 16 {
			if !c.Accept(0, addr, false, now) {
				break
			}
			addr += 2
		}
		if now == 100 && !sentOdd {
			c.Accept(1, 1, false, now)
			sentOdd = true
		}
		c.Tick(now)
	}
	if oddDone < 0 {
		t.Fatal("channel-1 request starved")
	}
	if wait := oddDone - 100; wait > 60 {
		t.Errorf("channel-1 request waited %d cycles behind channel-0 traffic", wait)
	}
}

func TestSharedBuffersPooling(t *testing.T) {
	cfg := linearConfig(t, 2)
	cfg.SharedBuffers = true
	c, err := New(cfg, core.NewFRFCFS())
	if err != nil {
		t.Fatal(err)
	}
	// With pooling, one thread may consume the whole 2x16 read pool...
	for i := 0; i < 32; i++ {
		if !c.Accept(0, addr(i%8, i, 0), false, 0) {
			t.Fatalf("pooled accept %d failed", i)
		}
	}
	if c.Accept(0, addr(0, 99, 0), false, 0) {
		t.Fatal("accept beyond pool capacity")
	}
	// ...and the other thread is now locked out (the isolation loss the
	// paper's static partitioning exists to prevent).
	if c.Accept(1, addr(0, 500, 0), false, 0) {
		t.Fatal("thread 1 accepted with pool exhausted by thread 0")
	}
	if c.Stats(1).ReadNACKs != 1 {
		t.Errorf("thread 1 NACKs = %d", c.Stats(1).ReadNACKs)
	}
}

func TestChannelsValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Channels = 3
	if _, err := New(cfg, core.NewFRFCFS()); err == nil {
		t.Error("accepted non-power-of-two channel count")
	}
}
