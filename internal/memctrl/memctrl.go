// Package memctrl implements the high-performance memory controller of
// the paper's Section 2.2 (Figure 2): per-thread partitioned transaction
// and write buffers with NACK back-pressure, a logical bank scheduler per
// DRAM bank, and a channel scheduler that issues at most one SDRAM
// command per channel per cycle. The scheduling algorithm itself is
// pluggable (core.Policy): FR-FCFS, FR-VFTF, FQ-VFTF, and friends.
//
// The paper evaluates a single memory channel and defers multi-channel
// systems to future work; this controller implements that extension
// (Config.Channels > 1): channels are line-interleaved, each has its own
// command/data buses and bank schedulers, and the VTMS policies keep one
// channel finish-time register per channel.
package memctrl

import (
	"fmt"

	"repro/internal/addrmap"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// RowPolicy selects what the controller does with a row buffer after all
// pending accesses to the row complete.
type RowPolicy uint8

const (
	// ClosedRow precharges the bank as soon as no pending request
	// targets the open row (the paper's default, after Natarajan et
	// al.'s multiprocessor result).
	ClosedRow RowPolicy = iota
	// OpenRow leaves rows open until a conflicting request arrives.
	OpenRow
)

func (p RowPolicy) String() string {
	if p == ClosedRow {
		return "closed"
	}
	return "open"
}

// Config configures a memory controller.
type Config struct {
	// DRAM describes one memory channel.
	DRAM dram.Config

	// Channels is the number of line-interleaved memory channels
	// (0 or 1 = the paper's single-channel system).
	Channels int

	// Threads is the number of hardware threads sharing the controller.
	Threads int

	// ReadEntriesPerThread is the per-thread transaction buffer
	// partition (Table 5: 16).
	ReadEntriesPerThread int

	// WriteEntriesPerThread is the per-thread write buffer partition
	// (Table 5: 8).
	WriteEntriesPerThread int

	// SharedBuffers disables the paper's static per-thread partitioning
	// and pools the transaction and write buffers across threads
	// (capacity Threads x entries). The paper leaves flexible buffer
	// partitioning to future research; pooling is the simplest such
	// policy and the ablation benchmark shows it erodes QoS isolation.
	SharedBuffers bool

	// RowPolicy is the row buffer management policy.
	RowPolicy RowPolicy

	// Mapper decodes line addresses; nil selects the XOR mapping over
	// the DRAM geometry.
	Mapper addrmap.Mapper

	// DisableRefresh turns off periodic refresh (useful in unit tests
	// that need exact cycle counts).
	DisableRefresh bool

	// Audit attaches the runtime invariant auditor (package audit): every
	// issued SDRAM command and completed request is re-validated against
	// independently recomputed DDR2 timing, conservation, VTMS, and FQ
	// bank-scheduling invariants. A violation panics with the recent
	// command history. Simulation results are identical with or without.
	Audit bool

	// AuditConfig tunes the auditor's thresholds when Audit is set.
	AuditConfig audit.Config

	// Metrics, when non-nil, registers the controller's observability
	// metrics (per-bank command mix, per-thread occupancy, VTMS lag,
	// FQ priority-inversion windows) with the registry. Metrics never
	// feed back into scheduling: results are bit-identical with or
	// without.
	Metrics *metrics.Registry

	// Trace, when non-nil, streams a Chrome trace-event timeline of
	// every SDRAM command and request lifetime. Like Metrics, it is
	// purely observational.
	Trace *metrics.TraceWriter

	// Interference enables the per-request delay-attribution layer:
	// every cycle a request waits is charged to an exclusive cause and
	// aggressor thread, folding into a cycles[victim][aggressor] matrix
	// (DESIGN §15). Observation-only: results are bit-identical with or
	// without, and with Audit set the conservation invariant (attributed
	// cycles == queueing delay) is enforced per request.
	Interference bool
}

// DefaultConfig returns the paper's Table 5 controller configuration for
// the given thread count.
func DefaultConfig(threads int) Config {
	return Config{
		DRAM:                  dram.DefaultConfig(),
		Channels:              1,
		Threads:               threads,
		ReadEntriesPerThread:  16,
		WriteEntriesPerThread: 8,
		RowPolicy:             ClosedRow,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	switch {
	case c.Channels < 0 || c.Channels&(c.Channels-1) != 0 && c.Channels != 0:
		return fmt.Errorf("memctrl: channels must be a power of two, got %d", c.Channels)
	case c.Threads < 1:
		return fmt.Errorf("memctrl: threads must be >= 1, got %d", c.Threads)
	case c.ReadEntriesPerThread < 1:
		return fmt.Errorf("memctrl: read entries per thread must be >= 1, got %d", c.ReadEntriesPerThread)
	case c.WriteEntriesPerThread < 1:
		return fmt.Errorf("memctrl: write entries per thread must be >= 1, got %d", c.WriteEntriesPerThread)
	}
	return nil
}

// channels returns the effective channel count.
func (c Config) channels() int {
	if c.Channels < 1 {
		return 1
	}
	return c.Channels
}

// TotalBanks returns the flat bank count across all channels.
func (c Config) TotalBanks() int { return c.channels() * c.DRAM.Banks() }

// ThreadStats accumulates per-thread controller statistics.
type ThreadStats struct {
	ReadsAccepted  int64
	WritesAccepted int64
	ReadsDone      int64
	WritesDone     int64
	ReadLatencySum int64 // real cycles, arrival to data burst end
	DataBusCycles  int64 // data bus cycles consumed by this thread
	ReadNACKs      int64
	WriteNACKs     int64
	RowHits        int64 // requests that began service as row hits
	RowConflicts   int64 // requests whose service began with a precharge
	RowClosed      int64 // requests that began service on a closed bank

	// LatHist is the read-latency distribution (8-cycle buckets); the
	// priority-inversion analysis cares about the tail, not the mean.
	LatHist *stats.Histogram
}

// ReadLatencyQuantile returns an upper bound on the q-quantile of the
// thread's read latency (0 when no reads completed).
func (s *ThreadStats) ReadLatencyQuantile(q float64) float64 {
	if s.LatHist == nil {
		return 0
	}
	return s.LatHist.Quantile(q)
}

// AvgReadLatency returns the mean read latency in cycles, or 0 if no
// reads completed.
func (s *ThreadStats) AvgReadLatency() float64 {
	if s.ReadsDone == 0 {
		return 0
	}
	return float64(s.ReadLatencySum) / float64(s.ReadsDone)
}

// inflightRead is a read whose data burst is in progress. Within one
// channel completions are FIFO (data-bus occupancy is monotone); across
// channels the controller keeps one queue per channel.
type inflightRead struct {
	slot   int32 // arena slot of the request
	doneAt int64
}

// noSlot marks a candidate that belongs to no request (idle-close
// precharges).
const noSlot = int32(-1)

// candidate is one bank scheduler's offer to the channel scheduler.
type candidate struct {
	slot  int32 // arena slot; noSlot for idle-close precharges
	kind  dram.Kind
	bank  int // flat bank index
	row   int
	key   int64
	arr   int64
	id    uint64
	isCAS bool
	// inverted marks a CAS selected while a same-bank request with a
	// strictly smaller policy key waits (metrics only; computed from
	// the keys the selection loop evaluates anyway, never re-derived).
	inverted bool
}

// Channel decision kinds for the schedule/apply split of Tick.
const (
	decNone uint8 = iota
	decRefresh
	decCmd
)

// decision is one channel's scheduling outcome for the current cycle,
// computed read-mostly by ScheduleChannel and applied by TickEnd.
type decision struct {
	kind uint8
	cand candidate
}

// Controller is the shared memory controller.
type Controller struct {
	cfg    Config
	policy core.Policy
	chans  []*dram.Channel
	mapper addrmap.Mapper

	banksPerChan int

	// Request storage is a preallocated arena sized to the aggregate
	// buffer capacity (threads x (read + write entries)), recycled
	// through a free list: the steady state allocates nothing. Queues
	// hold arena slot indices; pointers into the arena stay valid for a
	// request's whole lifetime because the arena never grows.
	arena     []core.Request
	freeSlots []int32

	// keys/keyEpoch cache each slot's policy key; a cached key is valid
	// while keyEpoch[slot] == chanEpoch[channel]. Key is pure in the
	// request's immutable fields, same-channel policy state, and the
	// bank state (see the core.Policy contract), all of which are
	// constant between command issues on the channel, so chanEpoch is
	// bumped on every command issue (and on InvalidateScheduling) and
	// nowhere else. keyEpoch[slot] = 0 marks "never computed"; channel
	// epochs start at 1.
	keys      []int64
	keyEpoch  []uint64
	chanEpoch []uint64

	pending      [][]int32 // per flat bank, arena slots in arrival order
	pendingTotal int

	readOcc                     []int
	writeOcc                    []int
	readOccTotal, writeOccTotal int

	inflight     [][]inflightRead // per channel, FIFO
	inflightHead []int

	// OnReadDone is invoked when a read's data burst completes; set by
	// the memory-side client (the cache hierarchy) before simulation.
	OnReadDone func(req *core.Request, now int64)

	nextID uint64
	vclock int64 // paper Section 3.1: real clock, paused during refresh

	refreshWanted []bool
	nextRefreshAt []int64

	stats    []ThreadStats
	cmdCount [6]int64 // by dram.Kind

	// Per-channel scheduling scratch and decisions. ScheduleChannel for
	// channel c writes only dec[c], chanCands[c], and c's partition of
	// the wake lists / key cache / refresh flags, so distinct channels
	// can be scheduled concurrently; TickEnd applies the decisions
	// serially in canonical channel order.
	dec       []decision
	chanCands [][]candidate

	// Event-driven scheduling state. bankWake[b] is a conservative lower
	// bound on the next cycle bankSchedule(b) could offer a candidate;
	// banks with a future wake are skipped. nextEvent is a conservative
	// lower bound on the next cycle the controller can do anything at all
	// (complete a read, flip or issue a refresh, or issue a command), so
	// Tick degenerates to a vclock increment before it. Both are
	// invalidated (lowered) only by readiness-changing events: a request
	// acceptance, a command issue on the same channel, a refresh state
	// change, or a policy share change. Strict mode clears eventDriven
	// and restores the seed's exhaustive per-cycle scan as an oracle.
	eventDriven bool
	bankWake    []int64
	nextEvent   int64

	// ticker is the policy's interval entry point (nil for policies
	// without window-based state). TickBegin fires it on boundary
	// cycles; computeNextEvent clamps to its next boundary so the
	// event-driven path never skips one.
	ticker core.PolicyTicker

	// aud is the optional runtime invariant auditor (nil when off).
	aud *audit.Auditor

	// met/tw are the optional observability sinks (nil when off); see
	// Config.Metrics and Config.Trace. traceVals is the event arg
	// scratch buffer.
	met       *memMetrics
	tw        *metrics.TraceWriter
	traceVals [5]int64

	// intf is the optional interference-attribution tracker (nil when
	// off); see Config.Interference and interference.go.
	intf *intfTracker
}

// Forever is the "no event scheduled" sentinel for wake times.
const Forever = int64(1) << 62

// New returns a controller using the given scheduling policy.
func New(cfg Config, policy core.Policy) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nch := cfg.channels()
	chans := make([]*dram.Channel, nch)
	for i := range chans {
		ch, err := dram.NewChannel(cfg.DRAM)
		if err != nil {
			return nil, err
		}
		chans[i] = ch
	}
	if cs, ok := policy.(core.ChannelSetter); ok && nch > 1 {
		cs.SetChannels(nch)
	}
	mapper := cfg.Mapper
	if mapper == nil {
		g := addrmap.Geometry{
			Channels:     nch,
			Ranks:        cfg.DRAM.Ranks,
			BanksPerRank: cfg.DRAM.BanksPerRank,
			RowsPerBank:  cfg.DRAM.RowsPerBank,
			ColsPerRow:   cfg.DRAM.ColsPerRow,
		}
		m, err := addrmap.NewXOR(g)
		if err != nil {
			return nil, err
		}
		mapper = m
	}
	nslots := cfg.Threads * (cfg.ReadEntriesPerThread + cfg.WriteEntriesPerThread)
	c := &Controller{
		cfg:           cfg,
		policy:        policy,
		chans:         chans,
		mapper:        mapper,
		banksPerChan:  cfg.DRAM.Banks(),
		arena:         make([]core.Request, nslots),
		freeSlots:     make([]int32, nslots),
		keys:          make([]int64, nslots),
		keyEpoch:      make([]uint64, nslots),
		chanEpoch:     make([]uint64, nch),
		pending:       make([][]int32, nch*cfg.DRAM.Banks()),
		readOcc:       make([]int, cfg.Threads),
		writeOcc:      make([]int, cfg.Threads),
		inflight:      make([][]inflightRead, nch),
		inflightHead:  make([]int, nch),
		refreshWanted: make([]bool, nch),
		nextRefreshAt: make([]int64, nch),
		stats:         make([]ThreadStats, cfg.Threads),
		dec:           make([]decision, nch),
		chanCands:     make([][]candidate, nch),
		eventDriven:   true,
		bankWake:      make([]int64, nch*cfg.DRAM.Banks()),
	}
	c.ticker, _ = policy.(core.PolicyTicker)
	for i := range c.freeSlots {
		c.freeSlots[i] = int32(i)
	}
	for i := range c.chanEpoch {
		c.chanEpoch[i] = 1
	}
	for i := range c.chanCands {
		c.chanCands[i] = make([]candidate, 0, cfg.DRAM.Banks())
	}
	for i := range c.inflight {
		c.inflight[i] = make([]inflightRead, 0, nslots)
	}
	for i := range c.pending {
		c.pending[i] = make([]int32, 0, 16)
	}
	for i := range c.stats {
		c.stats[i].LatHist = stats.NewHistogram(8, 512) // up to 4096 cycles
	}
	for i := range c.nextRefreshAt {
		c.nextRefreshAt[i] = int64(cfg.DRAM.Timing.TREF)
		if cfg.DisableRefresh {
			c.nextRefreshAt[i] = 1 << 60
		}
	}
	if cfg.Audit {
		c.aud = audit.New(cfg.AuditConfig, audit.Target{
			Timing:          cfg.DRAM.Timing,
			Channels:        nch,
			Ranks:           cfg.DRAM.Ranks,
			BanksPerRank:    cfg.DRAM.BanksPerRank,
			Threads:         cfg.Threads,
			ReadEntries:     cfg.ReadEntriesPerThread,
			WriteEntries:    cfg.WriteEntriesPerThread,
			SharedBuffers:   cfg.SharedBuffers,
			RefreshDisabled: cfg.DisableRefresh,
			Policy:          policy,
			Chans:           chans,
			Totals: func(t int) audit.Totals {
				st := &c.stats[t]
				return audit.Totals{
					ReadsAccepted:  st.ReadsAccepted,
					ReadsDone:      st.ReadsDone,
					WritesAccepted: st.WritesAccepted,
					WritesDone:     st.WritesDone,
					ReadOcc:        c.readOcc[t],
					WriteOcc:       c.writeOcc[t],
				}
			},
		})
	}
	if cfg.Metrics != nil {
		c.met = newMemMetrics(cfg.Metrics, c)
	}
	if cfg.Trace != nil {
		c.tw = cfg.Trace
		c.initTrace()
	}
	if cfg.Interference {
		c.intf = newIntfTracker(c, cfg.Metrics)
	}
	return c, nil
}

// Auditor returns the runtime invariant auditor, or nil when auditing is
// off.
func (c *Controller) Auditor() *audit.Auditor { return c.aud }

// FinishAudit runs the auditor's end-of-run conservation and starvation
// checks (a no-op without Config.Audit).
func (c *Controller) FinishAudit(now int64) {
	if c.aud != nil {
		c.aud.Finish(now)
	}
}

// Policy returns the active scheduling policy.
func (c *Controller) Policy() core.Policy { return c.policy }

// Channel exposes channel 0's DRAM device model (single-channel tests).
func (c *Controller) Channel() *dram.Channel { return c.chans[0] }

// Channels returns the channel count.
func (c *Controller) Channels() int { return len(c.chans) }

// DataBusBusyCycles returns the data-bus occupancy summed over channels.
func (c *Controller) DataBusBusyCycles() int64 {
	var sum int64
	for _, ch := range c.chans {
		sum += ch.DataBusBusyCycles()
	}
	return sum
}

// BankBusyCycles returns the busy cycles summed over every bank of every
// channel as of cycle now.
func (c *Controller) BankBusyCycles(now int64) int64 {
	var sum int64
	for _, ch := range c.chans {
		sum += ch.BankBusyCycles(now)
	}
	return sum
}

// Stats returns the accumulated statistics for a thread.
func (c *Controller) Stats(thread int) *ThreadStats { return &c.stats[thread] }

// Threads returns the number of hardware threads sharing the controller.
func (c *Controller) Threads() int { return c.cfg.Threads }

// Occupancy returns a thread's current transaction- and write-buffer
// occupancy (its backlog at the controller).
func (c *Controller) Occupancy(thread int) (reads, writes int) {
	return c.readOcc[thread], c.writeOcc[thread]
}

// CommandCount returns how many commands of the given kind were issued.
func (c *Controller) CommandCount(kind dram.Kind) int64 { return c.cmdCount[kind] }

// VClock returns the controller's virtual clock (real cycles excluding
// refresh periods).
func (c *Controller) VClock() int64 { return c.vclock }

// PendingRequests returns the number of requests awaiting service.
func (c *Controller) PendingRequests() int { return c.pendingTotal }

// SetEventDriven toggles the event-driven fast path. Disabling it
// restores the seed's exhaustive per-cycle scan (the strict-mode
// cross-check oracle); simulated results are identical either way.
func (c *Controller) SetEventDriven(on bool) {
	c.eventDriven = on
	c.InvalidateScheduling()
}

// NextEventAt returns a conservative lower bound on the next cycle at
// which the controller can complete a read, change refresh state, or
// issue a command. Ticks strictly before it are no-ops (apart from the
// virtual clock), which System.Step exploits to skip ahead.
func (c *Controller) NextEventAt() int64 { return c.nextEvent }

// InvalidateScheduling discards every cached wake time, forcing the
// next Tick to re-examine all banks. Callers must invoke it after any
// out-of-band change that can affect scheduling decisions, e.g. a
// runtime share reassignment (core.ShareSetter), which rewrites policy
// keys without a command issue.
func (c *Controller) InvalidateScheduling() {
	for i := range c.bankWake {
		c.bankWake[i] = 0
	}
	c.nextEvent = 0
	// Out-of-band changes (share reassignment) rewrite policy keys on
	// every channel, so every cached key is stale too.
	for i := range c.chanEpoch {
		c.chanEpoch[i]++
	}
}

// allocSlot pops a free arena slot. Occupancy admission in Accept
// guarantees one exists: the arena is sized to the aggregate buffer
// capacity.
func (c *Controller) allocSlot() int32 {
	n := len(c.freeSlots) - 1
	if n < 0 {
		panic("memctrl: request arena exhausted (occupancy accounting bug)")
	}
	s := c.freeSlots[n]
	c.freeSlots = c.freeSlots[:n]
	return s
}

// freeSlot recycles an arena slot once nothing can dereference the
// request anymore: after the completion hooks for reads, after
// AfterIssue for writes.
func (c *Controller) freeSlot(s int32) {
	c.freeSlots = append(c.freeSlots, s)
}

// CanAccept reports whether Accept would succeed for the thread right
// now (buffer occupancy only; it never NACK-counts). Occupancy changes
// only at controller event cycles — reads free their entry when the
// data burst completes, writes when the write command issues — so a
// false result stays false until NextEventAt.
func (c *Controller) CanAccept(thread int, isWrite bool) bool {
	if isWrite {
		if c.cfg.SharedBuffers {
			return c.writeOccTotal < c.cfg.WriteEntriesPerThread*c.cfg.Threads
		}
		return c.writeOcc[thread] < c.cfg.WriteEntriesPerThread
	}
	if c.cfg.SharedBuffers {
		return c.readOccTotal < c.cfg.ReadEntriesPerThread*c.cfg.Threads
	}
	return c.readOcc[thread] < c.cfg.ReadEntriesPerThread
}

// SkipTo credits the virtual clock for the skipped cycles [from, to),
// exactly as if Tick had run for each: vclock advances on every cycle
// channel 0 is not refreshing. Callers guarantee the span contains no
// controller event (to <= NextEventAt), so the refresh window active at
// from is the only one overlapping the span.
func (c *Controller) SkipTo(from, to int64) {
	n := to - from
	if ru := c.chans[0].RefreshEndsAt(); ru > from {
		end := ru
		if to < end {
			end = to
		}
		n -= end - from
	}
	c.vclock += n
}

// Accept offers a request to the controller at cycle now. It returns
// false (NACK) when the thread's transaction or write buffer partition
// is full (or, with SharedBuffers, when the pooled buffer is full),
// applying back-pressure to that thread.
func (c *Controller) Accept(thread int, lineAddr uint64, isWrite bool, now int64) bool {
	st := &c.stats[thread]
	if isWrite {
		full := c.writeOcc[thread] >= c.cfg.WriteEntriesPerThread
		if c.cfg.SharedBuffers {
			full = c.writeOccTotal >= c.cfg.WriteEntriesPerThread*c.cfg.Threads
		}
		if full {
			st.WriteNACKs++
			return false
		}
		c.writeOcc[thread]++
		c.writeOccTotal++
		st.WritesAccepted++
	} else {
		full := c.readOcc[thread] >= c.cfg.ReadEntriesPerThread
		if c.cfg.SharedBuffers {
			full = c.readOccTotal >= c.cfg.ReadEntriesPerThread*c.cfg.Threads
		}
		if full {
			st.ReadNACKs++
			return false
		}
		c.readOcc[thread]++
		c.readOccTotal++
		st.ReadsAccepted++
	}
	coord := c.mapper.Decode(lineAddr)
	gb := (coord.Channel*c.cfg.DRAM.Ranks+coord.Rank)*c.cfg.DRAM.BanksPerRank + coord.Bank
	c.nextID++
	slot := c.allocSlot()
	c.arena[slot] = core.Request{
		ID:          c.nextID,
		Thread:      thread,
		Addr:        lineAddr,
		IsWrite:     isWrite,
		Arrival:     c.vclock,
		ArrivalReal: now,
		Rank:        coord.Rank,
		Bank:        coord.Bank,
		Row:         coord.Row,
		Col:         coord.Col,
		Channel:     coord.Channel,
		GlobalBank:  gb,
	}
	c.keyEpoch[slot] = 0 // recycled slots carry a stale cached key
	c.pending[gb] = append(c.pending[gb], slot)
	c.pendingTotal++
	// A new request can make its bank schedulable immediately. Wake the
	// bank at now (not now+1): callers may Accept before Tick within the
	// same cycle, and a same-cycle Tick must still see the request.
	if c.bankWake[gb] > now {
		c.bankWake[gb] = now
	}
	if c.nextEvent > now {
		c.nextEvent = now
	}
	if c.aud != nil {
		c.aud.OnAccept(&c.arena[slot], now)
	}
	if c.intf != nil {
		c.intf.onAccept(slot, now)
	}
	if c.met != nil {
		if isWrite {
			c.met.writeOcc[thread].Observe(int64(c.writeOcc[thread]))
		} else {
			c.met.readOcc[thread].Observe(int64(c.readOcc[thread]))
		}
	}
	return true
}

// chanOf returns the dram channel owning a flat bank.
func (c *Controller) chanOf(flatBank int) (*dram.Channel, int) {
	return c.chans[flatBank/c.banksPerChan], flatBank % c.banksPerChan
}

// bankStateFor returns the Table 3 bank state a request would see if it
// began service now.
func (c *Controller) bankStateFor(r *core.Request) core.BankState {
	ch, lb := c.chanOf(r.GlobalBank)
	row, open := ch.BankOpen(lb)
	switch {
	case !open:
		return core.BankClosed
	case row == r.Row:
		return core.BankHit
	default:
		return core.BankConflict
	}
}

// nextCmdFor returns the next SDRAM command required to service r.
func nextCmdFor(r *core.Request, state core.BankState) dram.Kind {
	switch state {
	case core.BankConflict:
		return dram.KindPrecharge
	case core.BankClosed:
		return dram.KindActivate
	default:
		if r.IsWrite {
			return dram.KindWrite
		}
		return dram.KindRead
	}
}

// better reports whether candidate a beats candidate b under the shared
// priority levels: CAS over RAS, then the policy key, then arrival, then
// ID. (Both candidates are already known to be ready.)
func better(a, b *candidate) bool {
	if a.isCAS != b.isCAS {
		return a.isCAS
	}
	if a.key != b.key {
		return a.key < b.key
	}
	if a.arr != b.arr {
		return a.arr < b.arr
	}
	return a.id < b.id
}

// Tick advances the controller one cycle: completes finished reads,
// manages refresh, and issues at most one SDRAM command per channel,
// chosen by the bank and channel schedulers. It is the serial
// composition of the three phases below; a parallel driver may instead
// call TickBegin, then ScheduleChannel for every channel (concurrently
// across channels), then TickEnd, with bit-identical results.
func (c *Controller) Tick(now int64) {
	if !c.TickBegin(now) {
		return
	}
	for chIdx := range c.chans {
		c.ScheduleChannel(chIdx, now)
	}
	c.TickEnd(now)
}

// TickBegin runs the serial head of a tick: the event-driven fast
// path, read-completion delivery, and the virtual-clock update. It
// reports whether the scheduling phases (ScheduleChannel + TickEnd)
// must run; false means the tick is already complete.
func (c *Controller) TickBegin(now int64) bool {
	// Event-driven fast path: nothing can happen before nextEvent, so
	// the whole tick reduces to the virtual-clock update.
	if c.eventDriven && now < c.nextEvent {
		if !c.chans[0].InRefresh(now) {
			c.vclock++
		}
		return false
	}

	// 1. Deliver reads whose data burst has completed.
	for chIdx := range c.chans {
		q := c.inflight[chIdx]
		head := c.inflightHead[chIdx]
		for head < len(q) && q[head].doneAt <= now {
			f := q[head]
			head++
			r := &c.arena[f.slot]
			st := &c.stats[r.Thread]
			st.ReadsDone++
			st.ReadLatencySum += f.doneAt - r.ArrivalReal
			st.LatHist.Add(float64(f.doneAt - r.ArrivalReal))
			c.readOcc[r.Thread]--
			c.readOccTotal--
			if c.OnReadDone != nil {
				c.OnReadDone(r, now)
			}
			if c.aud != nil {
				c.aud.OnReadDone(r, f.doneAt, now)
			}
			if c.tw != nil {
				c.traceLifetime("read", f.slot, r.Thread, r.GlobalBank, r.Row, r.ArrivalReal, f.doneAt)
			}
			// Every completion hook has run; the slot can be recycled.
			c.freeSlot(f.slot)
		}
		if head == len(q) {
			// Fully drained: reset in place so long runs reuse the
			// buffer from index 0 instead of crawling rightward and
			// holding peak-sized backing arrays.
			q = q[:0]
			head = 0
		} else if head > 64 && head*2 > len(q) {
			q = append(q[:0], q[head:]...)
			head = 0
		}
		c.inflight[chIdx] = q
		c.inflightHead[chIdx] = head
	}

	// 2. The virtual clock pauses during channel 0's refresh period
	// (the paper's single-channel rule; channels refresh on the same
	// schedule so the approximation is exact for Channels = 1).
	if !c.chans[0].InRefresh(now) {
		c.vclock++
	}
	if c.met != nil {
		// Cycles [0, now] minus vclock = cycles the virtual clock has
		// paused for refresh so far.
		c.met.vclockLag.Set(now + 1 - c.vclock)
	}

	// 3. Interval-based policies run their window-boundary work. The
	// next-event bound is clamped to NextTickAt, so boundary cycles are
	// always full ticks and this fires at exactly the boundary in fast
	// and strict mode alike. A Key-feeding change invalidates every
	// cached scheduling decision before this cycle's schedule phase.
	if c.ticker != nil && now >= c.ticker.NextTickAt() {
		if c.ticker.Tick(now) {
			c.InvalidateScheduling()
		}
	}

	if c.aud != nil {
		c.aud.OnTick(now)
	}
	return true
}

// ScheduleChannel runs one channel's refresh management and bank
// schedulers for cycle now and records the outcome in the channel's
// decision without applying it. It writes only channel-partitioned
// state — the channel's decision, candidate scratch, bank wake times,
// refresh-wanted flag, and its requests' cached keys — and reads only
// state no other channel's schedule phase writes, so distinct channels
// may be scheduled concurrently. The policy's Key purity contract
// (core.Policy) is what makes the candidate ranking safe here: Key
// depends only on request-immutable fields and same-channel policy
// state, both constant until TickEnd applies the decisions.
func (c *Controller) ScheduleChannel(chIdx int, now int64) {
	ch := c.chans[chIdx]
	d := &c.dec[chIdx]
	d.kind = decNone
	if now >= c.nextRefreshAt[chIdx] && !c.refreshWanted[chIdx] {
		c.refreshWanted[chIdx] = true
		// Pending refresh changes bank scheduling (idle open rows
		// must drain, activates are suppressed): re-examine the
		// channel's banks. nextEvent is not lowered here — TickEnd
		// recomputes it from the wake lists after every decision.
		lo := chIdx * c.banksPerChan
		for b := lo; b < lo+c.banksPerChan; b++ {
			if c.bankWake[b] > now {
				c.bankWake[b] = now
			}
		}
	}
	inRefresh := ch.InRefresh(now)
	if c.refreshWanted[chIdx] && !inRefresh && ch.AllBanksClosed() && ch.Ready(dram.KindRefresh, 0, now) {
		d.kind = decRefresh
		return
	}
	if inRefresh {
		return
	}

	// Bank schedulers: each bank offers at most one ready command.
	// Dormant banks (wake time in the future) are skipped: nothing
	// that changes their readiness has happened since the wake was
	// computed, or the wake would have been invalidated.
	cands := c.chanCands[chIdx][:0]
	lo := chIdx * c.banksPerChan
	for b := lo; b < lo+c.banksPerChan; b++ {
		if c.eventDriven && c.bankWake[b] > now {
			continue
		}
		cand, ok, wake := c.bankSchedule(chIdx, b, now)
		if ok {
			c.bankWake[b] = now
			cands = append(cands, cand)
		} else {
			c.bankWake[b] = wake
		}
	}
	c.chanCands[chIdx] = cands
	if len(cands) == 0 {
		return
	}

	// Channel scheduler: select the best ready command.
	best := &cands[0]
	for i := 1; i < len(cands); i++ {
		if better(&cands[i], best) {
			best = &cands[i]
		}
	}
	d.kind = decCmd
	d.cand = *best
}

// TickEnd applies every channel's decision in canonical channel order
// — the single-threaded merge that keeps parallel scheduling
// bit-identical to the serial loop — and recomputes the next-event
// bound.
func (c *Controller) TickEnd(now int64) {
	for chIdx, ch := range c.chans {
		d := &c.dec[chIdx]
		switch d.kind {
		case decRefresh:
			if c.aud != nil {
				c.aud.OnRefresh(chIdx, now)
			}
			ch.Issue(dram.KindRefresh, 0, 0, now)
			c.cmdCount[dram.KindRefresh]++
			if c.met != nil {
				c.met.refreshLag.Observe(now + 1 - c.vclock)
			}
			if c.tw != nil {
				c.tw.Complete("REF", tracePidChannel+chIdx, c.banksPerChan, now, c.cmdDuration(dram.KindRefresh))
			}
			c.refreshWanted[chIdx] = false
			c.nextRefreshAt[chIdx] += int64(c.cfg.DRAM.Timing.TREF)
			// The channel sleeps until the refresh completes. Raising
			// wakes is safe here (and only here): refreshUntil lower-
			// bounds EarliestIssue of every command on the channel.
			lo := chIdx * c.banksPerChan
			for b := lo; b < lo+c.banksPerChan; b++ {
				c.bankWake[b] = ch.RefreshEndsAt()
			}
		case decCmd:
			c.issue(&d.cand, now)
		}
		if c.intf != nil {
			c.intf.drain(c, chIdx, d, now)
		}
		d.kind = decNone
	}
	if c.eventDriven {
		c.nextEvent = c.computeNextEvent(now)
	}
}

// wakeChannel forces every bank of a channel to be re-examined at cycle
// at (lowering only — a bank already due stays due).
func (c *Controller) wakeChannel(chIdx int, at int64) {
	lo := chIdx * c.banksPerChan
	for b := lo; b < lo+c.banksPerChan; b++ {
		if c.bankWake[b] > at {
			c.bankWake[b] = at
		}
	}
	if c.nextEvent > at {
		c.nextEvent = at
	}
}

// computeNextEvent derives the controller's next interesting cycle from
// the per-bank wake times, in-flight data bursts, and refresh state. It
// is called at the end of every full Tick; the result is always at
// least now+1 (the controller never needs to revisit the current
// cycle).
func (c *Controller) computeNextEvent(now int64) int64 {
	next := Forever
	for chIdx, ch := range c.chans {
		// In-flight read completions.
		q := c.inflight[chIdx]
		if head := c.inflightHead[chIdx]; head < len(q) && q[head].doneAt < next {
			next = q[head].doneAt
		}
		// Refresh: the end of the current window, the earliest legal
		// issue of a wanted refresh, or the next deadline.
		switch {
		case ch.InRefresh(now):
			if e := ch.RefreshEndsAt(); e < next {
				next = e
			}
		case c.refreshWanted[chIdx]:
			// EarliestIssue(Refresh) is Forever while a bank is open;
			// the draining precharges are covered by the bank wakes.
			if e := ch.EarliestIssue(dram.KindRefresh, 0); e < next {
				next = e
			}
		default:
			if e := c.nextRefreshAt[chIdx]; e < next {
				next = e
			}
		}
		// Bank scheduler wakes.
		lo := chIdx * c.banksPerChan
		for b := lo; b < lo+c.banksPerChan; b++ {
			if w := c.bankWake[b]; w < next {
				next = w
			}
		}
	}
	// Interval-based policies must run their boundary work on a full
	// tick: never skip past the policy's next window boundary.
	if c.ticker != nil {
		if t := c.ticker.NextTickAt(); t < next {
			next = t
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// bankSchedule runs one bank's scheduler and returns its ready command
// offer, if any. When no command is ready it also returns a
// conservative wake time: the earliest cycle at which it could offer
// one, assuming no intervening readiness-changing event (those lower
// the bank's wake through the invalidation hooks). Forever means "only
// an invalidation can revive this bank".
func (c *Controller) bankSchedule(chIdx, b int, now int64) (candidate, bool, int64) {
	ch := c.chans[chIdx]
	lb := b % c.banksPerChan
	slots := c.pending[b]
	// Bank state is a function of (open, openRow, r.Row): hoist the
	// channel query out of the per-request loop.
	openRow, open := ch.BankOpen(lb)
	if len(slots) == 0 {
		// Closed-row policy: close an idle open row. While a refresh is
		// pending this also drains the bank.
		if open && (c.cfg.RowPolicy == ClosedRow || c.refreshWanted[chIdx]) {
			if e := ch.EarliestIssue(dram.KindPrecharge, lb); e <= now {
				return candidate{
					slot: noSlot,
					kind: dram.KindPrecharge,
					bank: b,
					key:  int64(1) << 62, // lowest priority
					arr:  int64(1) << 62,
					id:   ^uint64(0),
				}, true, now
			} else {
				return candidate{}, false, e
			}
		}
		// Idle and closed (or open-row policy): nothing to do until a
		// request arrives or a refresh falls due.
		return candidate{}, false, Forever
	}

	rule, x := c.policy.BankRule()
	strict := rule == core.RuleStrict
	if rule == core.RuleFQ {
		// Strict earliest-key selection once the bank has been active
		// for x cycles; first-ready while closed or freshly activated.
		if open && now-ch.LastActivate(lb) >= x {
			strict = true
		}
	}

	epoch := c.chanEpoch[chIdx]
	var (
		bestSlot  = noSlot
		bestReq   *core.Request
		bestKind  dram.Kind
		bestKey   int64
		bestReady bool
		bestCAS   bool
		minEarly  = Forever          // non-strict: min EarliestIssue over requests
		minKey    = int64(1)<<62 - 1 // min key over all requests (metrics only)
		// EarliestIssue depends only on (kind, bank): memoize per kind
		// across the request loop. -1 = not yet computed.
		earlyMemo = [6]int64{-1, -1, -1, -1, -1, -1}
		intfBase  int // tracker's ready-staging mark for this bank
	)
	if c.intf != nil {
		intfBase = c.intf.readyBase(chIdx)
	}
	for _, slot := range slots {
		r := &c.arena[slot]
		var state core.BankState
		switch {
		case !open:
			state = core.BankClosed
		case openRow == r.Row:
			state = core.BankHit
		default:
			state = core.BankConflict
		}
		kind := nextCmdFor(r, state)
		// Cached policy key: valid while the channel epoch is unchanged
		// (no command issued on the channel, no share reassignment),
		// because Key is pure in exactly the state those events mutate.
		var key int64
		if c.keyEpoch[slot] == epoch {
			key = c.keys[slot]
		} else {
			key = c.policy.Key(r, state)
			c.keys[slot] = key
			c.keyEpoch[slot] = epoch
		}
		if key < minKey {
			minKey = key
		}
		if strict {
			// Select purely by key order; readiness is not a priority
			// level. (The bank waits for the selected request.)
			if bestReq == nil || key < bestKey ||
				(key == bestKey && (r.Arrival < bestReq.Arrival ||
					(r.Arrival == bestReq.Arrival && r.ID < bestReq.ID))) {
				bestSlot, bestReq, bestKind, bestKey = slot, r, kind, key
			}
			if c.intf != nil {
				early := earlyMemo[kind]
				if early < 0 {
					early = ch.EarliestIssue(kind, lb)
					earlyMemo[kind] = early
				}
				if early <= now {
					c.intf.exam(ch, chIdx, slot, r.Thread, kind, lb, early, now)
				}
			}
			continue
		}
		early := earlyMemo[kind]
		if early < 0 {
			early = ch.EarliestIssue(kind, lb)
			earlyMemo[kind] = early
		}
		if early < minEarly {
			minEarly = early
		}
		if c.intf != nil && early <= now {
			c.intf.exam(ch, chIdx, slot, r.Thread, kind, lb, early, now)
		}
		ready := early <= now
		isCAS := kind == dram.KindRead || kind == dram.KindWrite
		if bestReq == nil {
			bestSlot, bestReq, bestKind, bestKey, bestReady, bestCAS = slot, r, kind, key, ready, isCAS
			continue
		}
		// (ready, CAS, key, arrival, id) ordering.
		switch {
		case ready != bestReady:
			if !ready {
				continue
			}
		case isCAS != bestCAS:
			if !isCAS {
				continue
			}
		case key != bestKey:
			if key > bestKey {
				continue
			}
		case r.Arrival != bestReq.Arrival:
			if r.Arrival > bestReq.Arrival {
				continue
			}
		default:
			if r.ID > bestReq.ID {
				continue
			}
		}
		bestSlot, bestReq, bestKind, bestKey, bestReady, bestCAS = slot, r, kind, key, ready, isCAS
	}
	if strict {
		// The bank waits for the key-selected request alone, so its
		// earliest legal issue is the bank's wake time. (The selection
		// itself only changes on invalidation events: keys move on
		// command issue or SetShare, the request set on accept, and the
		// FQ strict/first-ready flip on this bank's own activates.)
		early := ch.EarliestIssue(bestKind, lb)
		minEarly = early
		bestReady = early <= now
		bestCAS = bestKind == dram.KindRead || bestKind == dram.KindWrite
	}
	if c.intf != nil {
		// Ready requests not issued this cycle may be charged to the
		// thread the bank scheduler is holding for (see drain).
		c.intf.patchFallback(chIdx, intfBase, bestReq.Thread)
	}
	// A refresh is pending: finish closing the bank but start nothing
	// new. Activates are only selected when the bank is closed, in which
	// case every pending request needs one, so the bank is dormant until
	// the refresh completes (which resets the channel's wakes).
	if c.refreshWanted[chIdx] && bestKind == dram.KindActivate {
		return candidate{}, false, Forever
	}
	if !bestReady {
		return candidate{}, false, minEarly
	}
	return candidate{
		slot:     bestSlot,
		kind:     bestKind,
		bank:     b,
		row:      bestReq.Row,
		key:      bestKey,
		arr:      bestReq.Arrival,
		id:       bestReq.ID,
		isCAS:    bestCAS,
		inverted: bestCAS && minKey < bestKey,
	}, true, now
}

// issue applies the winning candidate to the DRAM and updates request
// and policy state.
func (c *Controller) issue(cand *candidate, now int64) {
	c.cmdCount[cand.kind]++
	ch, lb := c.chanOf(cand.bank)
	chIdx := cand.bank / c.banksPerChan
	var acmd audit.Cmd
	if c.aud != nil {
		var areq *core.Request
		if cand.slot != noSlot {
			areq = &c.arena[cand.slot]
		}
		acmd = audit.Cmd{Kind: cand.kind, FlatBank: cand.bank, Row: cand.row, Key: cand.key, Req: areq}
		c.aud.BeforeIssue(acmd, now)
	}
	if c.met != nil && cand.inverted {
		// FQ priority-inversion accounting: this CAS wins while a
		// same-bank request with a strictly smaller policy key waits
		// (the first-ready window of RuleFQ). The window length is how
		// long the bank's current row has been favored.
		c.met.inversions.Inc()
		c.met.inversionWindow.Observe(now - ch.LastActivate(lb))
	}
	// Issuing any command moves the channel-global constraints (tCCD,
	// tWTR, data-bus occupancy), and issuing a request command rewrites
	// the policy's same-channel keys (see the core.Policy contract), so
	// every bank wake on this channel is stale — and so is every cached
	// key on the channel.
	c.chanEpoch[chIdx]++
	c.wakeChannel(chIdx, now)
	if cand.slot == noSlot {
		// Idle-close precharge: device state only; no request, and no
		// VTMS charge (no thread is waiting on it).
		ch.Issue(dram.KindPrecharge, lb, 0, now)
		if c.tw != nil {
			c.traceCmd(dram.KindPrecharge, cand.bank, -1, 0, now)
		}
		if c.aud != nil {
			c.aud.AfterIssue(acmd, now)
		}
		return
	}
	r := &c.arena[cand.slot]
	if r.Issued == 0 {
		// Record the bank state the request began service in.
		st := &c.stats[r.Thread]
		switch c.bankStateFor(r) {
		case core.BankHit:
			st.RowHits++
			if c.met != nil {
				c.met.bankRowHit[cand.bank].Inc()
			}
		case core.BankConflict:
			st.RowConflicts++
			if c.met != nil {
				c.met.bankRowConf[cand.bank].Inc()
			}
		default:
			st.RowClosed++
			if c.met != nil {
				c.met.bankRowClosed[cand.bank].Inc()
			}
		}
	}
	dataEnd := ch.IssueFrom(cand.kind, lb, r.Row, now, r.Thread)
	if c.tw != nil {
		c.traceCmd(cand.kind, cand.bank, r.Thread, r.Row, now)
	}
	c.policy.OnIssue(r, core.CmdKind(cand.kind))
	r.Issued++
	writeDone := false
	if cand.kind == dram.KindRead || cand.kind == dram.KindWrite {
		if c.intf != nil {
			c.intfServiceStart(cand.slot, now)
		}
		c.removePending(cand.bank, cand.slot)
		st := &c.stats[r.Thread]
		st.DataBusCycles += int64(c.cfg.DRAM.Timing.BL2)
		if cand.kind == dram.KindRead {
			c.inflight[r.Channel] = append(c.inflight[r.Channel], inflightRead{slot: cand.slot, doneAt: dataEnd})
		} else {
			st.WritesDone++
			c.writeOcc[r.Thread]--
			c.writeOccTotal--
			if c.tw != nil {
				c.traceLifetime("write", cand.slot, r.Thread, cand.bank, r.Row, r.ArrivalReal, dataEnd)
			}
			writeDone = true
		}
	}
	if c.aud != nil {
		c.aud.AfterIssue(acmd, now)
	}
	if writeDone {
		// A write retires at its CAS; every hook above has seen the
		// request, so the slot can be recycled.
		c.freeSlot(cand.slot)
	}
}

// removePending deletes a request from its bank queue, preserving order.
func (c *Controller) removePending(bank int, slot int32) {
	q := c.pending[bank]
	for i, x := range q {
		if x == slot {
			copy(q[i:], q[i+1:])
			c.pending[bank] = q[:len(q)-1]
			c.pendingTotal--
			return
		}
	}
	panic(fmt.Sprintf("memctrl: request %d (slot %d) not found in bank %d queue", c.arena[slot].ID, slot, bank))
}
