package memctrl

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
)

// The fairness-over-time monitor makes the paper's central claim
// observable as a time series rather than an end-of-run average:
// FQ-VFTF bounds how far each thread's received service can drift from
// its allocated share phi_i at every point in time, while FR-FCFS lets
// a bandwidth hog starve its neighbors for arbitrarily long stretches
// (Section 3, Figures 5/6). On each epoch boundary the monitor reads
// the controller's per-thread data-bus service counters, differences
// them against the previous boundary, and scores the epoch:
//
//   - share_i   = service_i / total service delivered this epoch
//   - excess_i  = service_i - phi_i * total: the signed drift of the
//     thread's service from its entitlement of what was delivered
//   - shortfall = max(0, -excess_i) accumulated only while the thread
//     is backlogged (has requests queued at the controller): service
//     a demanding thread was entitled to but did not receive
//
// Cumulative backlogged shortfall is the monitor's QoS headline: under
// FQ-VFTF it stays bounded (the scheduler repays any lag), under
// FR-FCFS it grows without bound for a starved thread.
//
// Like the metrics registry, the monitor is write-only from the
// simulation's point of view: Sample is called on the simulation
// goroutine at epoch boundaries (sim.Step clamps its skip-ahead), and
// everything concurrent readers touch is mutex-guarded.

// FairnessSample is one epoch of per-thread service accounting. All
// slices are indexed by hardware thread.
type FairnessSample struct {
	// Epoch is the 0-based sample index; Cycle the boundary it was
	// taken at (the sample covers (prevCycle, Cycle]).
	Epoch int64 `json:"epoch"`
	Cycle int64 `json:"cycle"`

	// Service is the data-bus cycles each thread consumed this epoch;
	// Total is their sum.
	Service []int64 `json:"service"`
	Total   int64   `json:"total"`

	// Share is Service/Total (0 when the epoch delivered nothing);
	// Phi the allocated share at the boundary.
	Share []float64 `json:"share"`
	Phi   []float64 `json:"phi"`

	// Excess is Service - Phi*Total: positive when the thread consumed
	// beyond its entitlement of the delivered service (using slack),
	// negative when it fell short.
	Excess []float64 `json:"excess"`

	// Backlogged reports whether the thread had requests queued at the
	// controller at the boundary — a shortfall only counts against the
	// scheduler when the thread actually demanded service.
	Backlogged []bool `json:"backlogged"`

	// CumShortfall is the running sum of backlogged shortfalls up to
	// and including this epoch, in data-bus cycles.
	CumShortfall []float64 `json:"cum_shortfall"`

	// TopAggressor names the other thread charged the most of this
	// thread's wait cycles during the epoch by the interference
	// attribution layer, and StolenCycles that charge. -1/0 when no
	// other thread was charged or attribution is off.
	TopAggressor []int   `json:"top_aggressor"`
	StolenCycles []int64 `json:"stolen_cycles"`
}

// FairnessSummary is the monitor's end-of-run digest.
type FairnessSummary struct {
	Epochs   int64 `json:"epochs"`
	Interval int64 `json:"interval"`
	Threads  int   `json:"threads"`

	// CumShortfall is each thread's total backlogged shortfall;
	// MaxEpochShortfall the worst single backlogged epoch. Both in
	// data-bus cycles.
	CumShortfall      []float64 `json:"cum_shortfall"`
	MaxEpochShortfall []float64 `json:"max_epoch_shortfall"`

	// MaxAbsExcess is the largest single-epoch |excess| per thread,
	// backlogged or not.
	MaxAbsExcess []float64 `json:"max_abs_excess"`
}

// FairnessMonitor tracks per-thread service share against phi over
// epoch windows. Construct with NewFairnessMonitor, drive with Sample.
type FairnessMonitor struct {
	ctrl     *Controller
	interval int64
	nextAt   int64

	prevService []int64

	// Running per-thread aggregates, owned by the sampling goroutine
	// but read (under mu) by Summary.
	cumShort     []float64
	maxEpochShrt []float64
	maxAbsExcess []float64

	// lastExcess/lastShort are int64-rounded views of the most recent
	// epoch for Func gauges registered in a metrics registry.
	lastExcess []int64

	// prevMatrix/curMatrix are the previous epoch boundary's cumulative
	// interference pair totals (threads x threads+1, flattened) and the
	// differencing scratch; all zeros when attribution is off.
	prevMatrix []int64
	curMatrix  []int64

	mu     sync.Mutex
	ring   []FairnessSample
	start  int
	count  int
	epochs int64
}

// NewFairnessMonitor returns a monitor over the controller's threads.
// interval <= 0 selects metrics.DefaultSampleInterval, capacity <= 0
// metrics.DefaultSampleCapacity.
func NewFairnessMonitor(c *Controller, interval int64, capacity int) *FairnessMonitor {
	if interval <= 0 {
		interval = metrics.DefaultSampleInterval
	}
	if capacity <= 0 {
		capacity = metrics.DefaultSampleCapacity
	}
	n := c.Threads()
	return &FairnessMonitor{
		ctrl:         c,
		interval:     interval,
		nextAt:       interval,
		prevService:  make([]int64, n),
		cumShort:     make([]float64, n),
		maxEpochShrt: make([]float64, n),
		maxAbsExcess: make([]float64, n),
		lastExcess:   make([]int64, n),
		prevMatrix:   make([]int64, n*(n+1)),
		curMatrix:    make([]int64, n*(n+1)),
		ring:         make([]FairnessSample, 0, capacity),
	}
}

// Interval returns the epoch length in cycles.
func (m *FairnessMonitor) Interval() int64 { return m.interval }

// NextSampleAt returns the next epoch boundary.
func (m *FairnessMonitor) NextSampleAt() int64 { return m.nextAt }

// phi returns thread t's allocated share: live from the policy when it
// exposes shares (so runtime SetShare reassignments are tracked), else
// the static equal allocation.
func (m *FairnessMonitor) phi(t int) float64 {
	if sg, ok := m.ctrl.Policy().(core.ShareGetter); ok {
		return sg.ThreadShare(t).Float()
	}
	return 1 / float64(m.ctrl.Threads())
}

// Sample scores the epoch ending at cycle now. Call on the simulation
// goroutine only.
func (m *FairnessMonitor) Sample(now int64) {
	n := m.ctrl.Threads()
	sm := FairnessSample{
		Cycle:        now,
		Service:      make([]int64, n),
		Share:        make([]float64, n),
		Phi:          make([]float64, n),
		Excess:       make([]float64, n),
		Backlogged:   make([]bool, n),
		CumShortfall: make([]float64, n),
		TopAggressor: make([]int, n),
		StolenCycles: make([]int64, n),
	}
	intf := m.ctrl.intf != nil
	if intf {
		m.ctrl.intf.pairTotals(m.curMatrix)
	}
	for t := 0; t < n; t++ {
		svc := m.ctrl.Stats(t).DataBusCycles
		sm.Service[t] = svc - m.prevService[t]
		m.prevService[t] = svc
		sm.Total += sm.Service[t]
		sm.Phi[t] = m.phi(t)
		r, w := m.ctrl.Occupancy(t)
		sm.Backlogged[t] = r+w > 0
		sm.TopAggressor[t] = -1
		if intf {
			var best int64
			for a := 0; a < n; a++ {
				if a == t {
					continue
				}
				if d := m.curMatrix[t*(n+1)+a] - m.prevMatrix[t*(n+1)+a]; d > best {
					best, sm.TopAggressor[t] = d, a
				}
			}
			sm.StolenCycles[t] = best
		}
	}
	if intf {
		copy(m.prevMatrix, m.curMatrix)
	}
	for m.nextAt <= now {
		m.nextAt += m.interval
	}

	// Scoring mutates the running aggregates Summary reads, so it
	// happens under the lock.
	m.mu.Lock()
	for t := 0; t < n; t++ {
		if sm.Total > 0 {
			sm.Share[t] = float64(sm.Service[t]) / float64(sm.Total)
		}
		sm.Excess[t] = float64(sm.Service[t]) - sm.Phi[t]*float64(sm.Total)
		m.lastExcess[t] = int64(sm.Excess[t])
		if ae := sm.Excess[t]; ae < 0 {
			ae = -ae
			if ae > m.maxAbsExcess[t] {
				m.maxAbsExcess[t] = ae
			}
		} else if ae > m.maxAbsExcess[t] {
			m.maxAbsExcess[t] = ae
		}
		if sm.Backlogged[t] && sm.Excess[t] < 0 {
			short := -sm.Excess[t]
			m.cumShort[t] += short
			if short > m.maxEpochShrt[t] {
				m.maxEpochShrt[t] = short
			}
		}
		sm.CumShortfall[t] = m.cumShort[t]
	}
	sm.Epoch = m.epochs
	m.epochs++
	if len(m.ring) < cap(m.ring) {
		m.ring = append(m.ring, sm)
	} else {
		m.ring[m.start] = sm
		m.start = (m.start + 1) % len(m.ring)
	}
	m.count = len(m.ring)
	m.mu.Unlock()
}

// Samples returns the retained epochs at boundary cycles strictly
// greater than sinceCycle, oldest first (negative = all). The result
// is a copy, safe to use while sampling continues.
func (m *FairnessMonitor) Samples(sinceCycle int64) []FairnessSample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]FairnessSample, 0, m.count)
	for i := 0; i < m.count; i++ {
		sm := m.ring[(m.start+i)%len(m.ring)]
		if sm.Cycle > sinceCycle {
			out = append(out, sm)
		}
	}
	return out
}

// Summary returns the end-of-run digest. Safe to call concurrently
// with sampling: the aggregates are mutated and read under the lock.
func (m *FairnessMonitor) Summary() FairnessSummary {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.cumShort)
	s := FairnessSummary{
		Epochs:            m.epochs,
		Interval:          m.interval,
		Threads:           n,
		CumShortfall:      append([]float64(nil), m.cumShort...),
		MaxEpochShortfall: append([]float64(nil), m.maxEpochShrt...),
		MaxAbsExcess:      append([]float64(nil), m.maxAbsExcess...),
	}
	return s
}

// RegisterMetrics mirrors the monitor's running aggregates into a
// metrics registry as Func gauges, so the Prometheus exposition and
// the epoch sampler carry the fairness series alongside everything
// else. The Funcs read state owned by the sampling goroutine and are
// evaluated only at snapshot time on that same goroutine (the
// sampler's contract).
func (m *FairnessMonitor) RegisterMetrics(reg *metrics.Registry) {
	for t := 0; t < len(m.cumShort); t++ {
		t := t
		reg.Func(fmt.Sprintf("fairness.thread%d.cum_shortfall", t),
			func() int64 { return int64(m.cumShort[t]) })
		reg.Func(fmt.Sprintf("fairness.thread%d.last_excess", t),
			func() int64 { return m.lastExcess[t] })
	}
}
