package memctrl

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
)

// TestStressInvariants drives the controller with random traffic under
// every policy and checks conservation invariants after draining:
//
//   - no request is lost: accepted == done for reads and writes,
//   - buffer occupancy returns to zero,
//   - every DDR2 timing rule held (the dram model panics otherwise),
//   - data-bus accounting equals BL/2 per CAS.
func TestStressInvariants(t *testing.T) {
	shares := []core.Share{{Num: 1, Den: 4}, {Num: 1, Den: 4}, {Num: 1, Den: 2}}
	tt := dram.DDR2800()
	mkPolicies := func(totalBanks int) map[string]core.Policy {
		return map[string]core.Policy{
			"FCFS":            core.NewFCFS(),
			"FR-FCFS":         core.NewFRFCFS(),
			"FR-VFTF":         core.NewFRVFTF(shares, totalBanks, tt),
			"FQ-VFTF":         core.NewFQVFTF(shares, totalBanks, tt),
			"FR-VSTF":         core.NewFRVSTF(shares, totalBanks, tt),
			"FR-VFTF-arrival": core.NewFRVFTFArrival(shares, totalBanks, tt),
		}
	}
	for _, channels := range []int{1, 2} {
		cfg := DefaultConfig(3)
		cfg.Channels = channels
		cfg.DisableRefresh = false
		cfg.DRAM.Timing.TREF = 3000 // exercise refresh frequently
		for name, policy := range mkPolicies(cfg.TotalBanks()) {
			c, err := New(cfg, policy)
			if err != nil {
				t.Fatal(err)
			}
			c.OnReadDone = func(r *core.Request, now int64) {}

			seed := uint64(42)
			next := func() uint64 {
				seed = seed*6364136223846793005 + 1442695040888963407
				return seed
			}
			for now := int64(0); now < 30_000; now++ {
				if x := next(); x%3 != 0 {
					th := int(x >> 20 % 3)
					addr := (x >> 8) % 500_000
					c.Accept(th, addr, x%5 == 0, now)
				}
				c.Tick(now)
			}
			// Drain: run well past the last pending request so in-flight
			// data bursts deliver.
			end := int64(30_000)
			quiet := 0
			for now := end; now < end+200_000; now++ {
				c.Tick(now)
				if c.PendingRequests() == 0 {
					quiet++
					if quiet > 2000 {
						break
					}
				} else {
					quiet = 0
				}
			}
			var reads, readsDone, writes, writesDone, cas int64
			for i := 0; i < 3; i++ {
				st := c.Stats(i)
				reads += st.ReadsAccepted
				readsDone += st.ReadsDone
				writes += st.WritesAccepted
				writesDone += st.WritesDone
			}
			cas = c.CommandCount(dram.KindRead) + c.CommandCount(dram.KindWrite)
			if c.PendingRequests() != 0 {
				t.Errorf("%s/%dch: %d requests stuck", name, channels, c.PendingRequests())
				continue
			}
			if reads != readsDone {
				t.Errorf("%s/%dch: %d reads accepted, %d done", name, channels, reads, readsDone)
			}
			if writes != writesDone {
				t.Errorf("%s/%dch: %d writes accepted, %d done", name, channels, writes, writesDone)
			}
			if reads == 0 || writes == 0 {
				t.Errorf("%s/%dch: degenerate workload (%d reads, %d writes)", name, channels, reads, writes)
			}
			if got, want := c.DataBusBusyCycles(), cas*int64(tt.BL2); got != want {
				t.Errorf("%s/%dch: bus busy %d, want %d (= CAS x BL/2)", name, channels, got, want)
			}
			if c.CommandCount(dram.KindRefresh) == 0 {
				t.Errorf("%s/%dch: refresh never ran", name, channels)
			}
		}
	}
}

// TestStressLatencyHistogramConsistency: the histogram must account for
// every completed read.
func TestStressLatencyHistogram(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.DisableRefresh = true
	c, err := New(cfg, core.NewFRFCFS())
	if err != nil {
		t.Fatal(err)
	}
	c.OnReadDone = func(r *core.Request, now int64) {}
	seed := uint64(7)
	for now := int64(0); now < 20_000; now++ {
		seed = seed*2862933555777941757 + 3037000493
		if seed%4 == 0 {
			c.Accept(0, (seed>>10)%100_000, false, now)
		}
		c.Tick(now)
	}
	st := c.Stats(0)
	if st.LatHist.N != st.ReadsDone {
		t.Fatalf("histogram has %d samples, %d reads done", st.LatHist.N, st.ReadsDone)
	}
	p50 := st.ReadLatencyQuantile(0.50)
	p95 := st.ReadLatencyQuantile(0.95)
	if p50 <= 0 || p95 < p50 {
		t.Fatalf("quantiles p50=%v p95=%v", p50, p95)
	}
}
