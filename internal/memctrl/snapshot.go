package memctrl

import (
	"repro/internal/core"
	"repro/internal/snapshot"
)

func saveRequest(w *snapshot.Writer, q *core.Request) {
	w.U64(q.ID)
	w.Int(q.Thread)
	w.U64(q.Addr)
	w.Bool(q.IsWrite)
	w.I64(q.Arrival)
	w.I64(q.ArrivalReal)
	w.Int(q.Rank)
	w.Int(q.Bank)
	w.Int(q.Row)
	w.Int(q.Col)
	w.Int(q.Channel)
	w.Int(q.GlobalBank)
	w.I64(int64(q.Key))
	w.Bool(q.KeyFrozen)
	w.Int(q.Issued)
}

func loadRequest(r *snapshot.Reader) core.Request {
	q := core.Request{
		ID:          r.U64(),
		Thread:      r.Int(),
		Addr:        r.U64(),
		IsWrite:     r.Bool(),
		Arrival:     r.I64(),
		ArrivalReal: r.I64(),
		Rank:        r.Int(),
		Bank:        r.Int(),
		Row:         r.Int(),
		Col:         r.Int(),
		Channel:     r.Int(),
		GlobalBank:  r.Int(),
	}
	q.Key = core.VTime(r.I64())
	q.KeyFrozen = r.Bool()
	q.Issued = r.Int()
	return q
}

// SaveState serializes the controller: DRAM channel timing, the
// per-bank transaction queues (with full request state, including
// frozen policy keys), in-flight reads awaiting data-burst completion,
// occupancy and refresh bookkeeping, per-thread statistics, the policy's
// virtual-time registers when the policy carries state, the event-driven
// wake lists, and the optional auditor. The wake lists are serialized
// rather than invalidated on restore: rebuilding them conservatively
// would be results-safe but would lose refresh-raised wake times and so
// break process-state identity with the uninterrupted run.
func (c *Controller) SaveState(w *snapshot.Writer) {
	w.Section("memctrl.Controller")
	w.Int(len(c.chans))
	for _, ch := range c.chans {
		ch.SaveState(w)
	}
	w.Int(len(c.pending))
	for _, q := range c.pending {
		w.Len(len(q))
		for _, slot := range q {
			saveRequest(w, &c.arena[slot])
		}
	}
	w.Ints(c.readOcc)
	w.Ints(c.writeOcc)
	w.Int(len(c.inflight))
	for ch := range c.inflight {
		live := c.inflight[ch][c.inflightHead[ch]:]
		w.Len(len(live))
		for _, f := range live {
			saveRequest(w, &c.arena[f.slot])
			w.I64(f.doneAt)
		}
	}
	w.U64(c.nextID)
	w.I64(c.vclock)
	w.Bools(c.refreshWanted)
	w.I64s(c.nextRefreshAt)
	w.Int(len(c.stats))
	for i := range c.stats {
		st := &c.stats[i]
		w.I64(st.ReadsAccepted)
		w.I64(st.WritesAccepted)
		w.I64(st.ReadsDone)
		w.I64(st.WritesDone)
		w.I64(st.ReadLatencySum)
		w.I64(st.DataBusCycles)
		w.I64(st.ReadNACKs)
		w.I64(st.WriteNACKs)
		w.I64(st.RowHits)
		w.I64(st.RowConflicts)
		w.I64(st.RowClosed)
		st.LatHist.SaveState(w)
	}
	for _, n := range c.cmdCount {
		w.I64(n)
	}
	w.I64s(c.bankWake)
	w.I64(c.nextEvent)
	ps, hasPolicy := c.policy.(core.PolicyState)
	w.Bool(hasPolicy)
	if hasPolicy {
		// The policy name guards against cross-policy restores: two
		// policies can share a state section with identical geometry
		// (the vftBase family does), so the section marker alone cannot
		// tell a FR-VFTF snapshot from a FR-VSTF one.
		w.String(c.policy.Name())
		ps.SaveState(w)
	}
	w.Bool(c.aud != nil)
	if c.aud != nil {
		c.aud.SaveState(w)
	}
	w.Bool(c.intf != nil)
	if c.intf != nil {
		c.intf.saveState(w, c)
	}
}

// LoadState restores a controller saved by SaveState into one
// constructed with the same configuration and policy. Derived totals
// (pendingTotal, occupancy sums) are recomputed; the auditor's pending
// mirror is re-linked to the restored live request pointers.
func (c *Controller) LoadState(r *snapshot.Reader) error {
	r.Section("memctrl.Controller")
	nch := r.Int()
	if r.Err() == nil && nch != len(c.chans) {
		r.Fail("memctrl.Controller: %d channels, controller has %d", nch, len(c.chans))
	}
	if err := r.Err(); err != nil {
		return err
	}
	for _, ch := range c.chans {
		if err := ch.LoadState(r); err != nil {
			return err
		}
	}
	nb := r.Int()
	if r.Err() == nil && nb != len(c.pending) {
		r.Fail("memctrl.Controller: %d banks, controller has %d", nb, len(c.pending))
	}
	if err := r.Err(); err != nil {
		return err
	}
	threads := len(c.stats)
	idSeen := make(map[uint64]bool)
	pending := make([][]core.Request, nb)
	total := 0
	for b := 0; b < nb; b++ {
		n := r.Len(snapshot.MaxSlice)
		q := make([]core.Request, 0, n)
		for i := 0; i < n; i++ {
			req := loadRequest(r)
			if r.Err() != nil {
				return r.Err()
			}
			if req.GlobalBank != b {
				r.Fail("memctrl.Controller: request %d queued on bank %d but maps to bank %d", req.ID, b, req.GlobalBank)
				return r.Err()
			}
			if req.Thread < 0 || req.Thread >= threads {
				r.Fail("memctrl.Controller: request %d thread %d out of range [0,%d)", req.ID, req.Thread, threads)
				return r.Err()
			}
			if req.Channel < 0 || req.Channel >= nch {
				r.Fail("memctrl.Controller: request %d channel %d out of range [0,%d)", req.ID, req.Channel, nch)
				return r.Err()
			}
			if idSeen[req.ID] {
				r.Fail("memctrl.Controller: duplicate request id %d", req.ID)
				return r.Err()
			}
			idSeen[req.ID] = true
			q = append(q, req)
		}
		pending[b] = q
		total += len(q)
	}
	live := total
	readOcc := r.Ints(len(c.readOcc))
	writeOcc := r.Ints(len(c.writeOcc))
	if r.Err() == nil && (len(readOcc) != len(c.readOcc) || len(writeOcc) != len(c.writeOcc)) {
		r.Fail("memctrl.Controller: occupancy arrays sized %d/%d, controller has %d/%d",
			len(readOcc), len(writeOcc), len(c.readOcc), len(c.writeOcc))
	}
	nic := r.Int()
	if r.Err() == nil && nic != len(c.inflight) {
		r.Fail("memctrl.Controller: %d inflight channels, controller has %d", nic, len(c.inflight))
	}
	if err := r.Err(); err != nil {
		return err
	}
	type stagedInflight struct {
		req    core.Request
		doneAt int64
	}
	inflight := make([][]stagedInflight, nic)
	for ch := 0; ch < nic; ch++ {
		n := r.Len(snapshot.MaxSlice)
		q := make([]stagedInflight, 0, n)
		for i := 0; i < n; i++ {
			req := loadRequest(r)
			doneAt := r.I64()
			if r.Err() != nil {
				return r.Err()
			}
			if req.Thread < 0 || req.Thread >= threads {
				r.Fail("memctrl.Controller: inflight request %d thread %d out of range [0,%d)", req.ID, req.Thread, threads)
				return r.Err()
			}
			if idSeen[req.ID] {
				r.Fail("memctrl.Controller: duplicate request id %d", req.ID)
				return r.Err()
			}
			idSeen[req.ID] = true
			q = append(q, stagedInflight{req: req, doneAt: doneAt})
		}
		inflight[ch] = q
		live += len(q)
	}
	if live > len(c.arena) {
		r.Fail("memctrl.Controller: %d live requests exceed arena capacity %d", live, len(c.arena))
		return r.Err()
	}
	nextID := r.U64()
	vclock := r.I64()
	refreshWanted := r.Bools(len(c.refreshWanted))
	nextRefreshAt := r.I64s(len(c.nextRefreshAt))
	if r.Err() == nil && (len(refreshWanted) != len(c.refreshWanted) || len(nextRefreshAt) != len(c.nextRefreshAt)) {
		r.Fail("memctrl.Controller: refresh arrays sized %d/%d, controller has %d/%d",
			len(refreshWanted), len(nextRefreshAt), len(c.refreshWanted), len(c.nextRefreshAt))
	}
	nst := r.Int()
	if r.Err() == nil && nst != len(c.stats) {
		r.Fail("memctrl.Controller: %d thread stats, controller has %d", nst, len(c.stats))
	}
	if err := r.Err(); err != nil {
		return err
	}
	stats := make([]ThreadStats, nst)
	for i := range stats {
		st := &stats[i]
		st.ReadsAccepted = r.I64()
		st.WritesAccepted = r.I64()
		st.ReadsDone = r.I64()
		st.WritesDone = r.I64()
		st.ReadLatencySum = r.I64()
		st.DataBusCycles = r.I64()
		st.ReadNACKs = r.I64()
		st.WriteNACKs = r.I64()
		st.RowHits = r.I64()
		st.RowConflicts = r.I64()
		st.RowClosed = r.I64()
		st.LatHist = c.stats[i].LatHist
		if err := st.LatHist.LoadState(r); err != nil {
			return err
		}
	}
	var cmdCount [6]int64
	for i := range cmdCount {
		cmdCount[i] = r.I64()
	}
	bankWake := r.I64s(len(c.bankWake))
	nextEvent := r.I64()
	if r.Err() == nil && len(bankWake) != len(c.bankWake) {
		r.Fail("memctrl.Controller: %d bank wakes, controller has %d", len(bankWake), len(c.bankWake))
	}
	hasPolicy := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	ps, want := c.policy.(core.PolicyState)
	if hasPolicy != want {
		r.Fail("memctrl.Controller: snapshot policy-state flag %v, policy capability %v", hasPolicy, want)
		return r.Err()
	}
	if hasPolicy {
		name := r.String(snapshot.MaxString)
		if r.Err() == nil && name != c.policy.Name() {
			r.Fail("memctrl.Controller: snapshot carries %q policy state, controller runs %q", name, c.policy.Name())
		}
		if err := r.Err(); err != nil {
			return err
		}
		if err := ps.LoadState(r); err != nil {
			return err
		}
	}
	hasAud := r.Bool()
	if r.Err() == nil && hasAud != (c.aud != nil) {
		r.Fail("memctrl.Controller: snapshot auditor flag %v, controller auditor %v", hasAud, c.aud != nil)
	}
	if err := r.Err(); err != nil {
		return err
	}
	// Commit. The arena is rebuilt from scratch: every decoded request
	// gets a fresh slot in decode order. Slot numbers are unobservable —
	// queues keep their serialized order, ties break on request IDs, and
	// snapshots are content-based — so the assignment need not match the
	// saving process's. The key cache is dropped wholesale (keyEpoch 0 is
	// never a valid channel epoch).
	c.freeSlots = c.freeSlots[:0]
	for i := len(c.arena) - 1; i >= 0; i-- {
		c.freeSlots = append(c.freeSlots, int32(i))
	}
	for i := range c.keyEpoch {
		c.keyEpoch[i] = 0
	}
	reqByID := make(map[uint64]*core.Request, live)
	audPending := make([][]*core.Request, len(pending))
	for b, q := range pending {
		c.pending[b] = c.pending[b][:0]
		audPending[b] = make([]*core.Request, 0, len(q))
		for i := range q {
			slot := c.allocSlot()
			c.arena[slot] = q[i]
			c.pending[b] = append(c.pending[b], slot)
			reqByID[q[i].ID] = &c.arena[slot]
			audPending[b] = append(audPending[b], &c.arena[slot])
		}
	}
	c.pendingTotal = total
	copy(c.readOcc, readOcc)
	copy(c.writeOcc, writeOcc)
	c.readOccTotal, c.writeOccTotal = 0, 0
	for _, n := range readOcc {
		c.readOccTotal += n
	}
	for _, n := range writeOcc {
		c.writeOccTotal += n
	}
	for ch, q := range inflight {
		c.inflight[ch] = c.inflight[ch][:0]
		for i := range q {
			slot := c.allocSlot()
			c.arena[slot] = q[i].req
			c.inflight[ch] = append(c.inflight[ch], inflightRead{slot: slot, doneAt: q[i].doneAt})
			reqByID[q[i].req.ID] = &c.arena[slot]
		}
	}
	for ch := range c.inflightHead {
		c.inflightHead[ch] = 0
	}
	c.nextID = nextID
	c.vclock = vclock
	copy(c.refreshWanted, refreshWanted)
	copy(c.nextRefreshAt, nextRefreshAt)
	copy(c.stats, stats)
	c.cmdCount = cmdCount
	copy(c.bankWake, bankWake)
	c.nextEvent = nextEvent
	if c.aud != nil {
		if err := c.aud.LoadState(r, reqByID, audPending); err != nil {
			return err
		}
	}
	hasIntf := r.Bool()
	if r.Err() == nil && hasIntf != (c.intf != nil) {
		r.Fail("memctrl.Controller: snapshot interference flag %v, controller tracker %v", hasIntf, c.intf != nil)
	}
	if err := r.Err(); err != nil {
		return err
	}
	if c.intf != nil {
		// The arena was rebuilt above in the serialization order the
		// tracker's per-slot state was written in, so the walk matches.
		if err := c.intf.loadState(r, c); err != nil {
			return err
		}
	}
	return nil
}

// SaveState serializes the fairness monitor: the previous-boundary
// cumulative service the next epoch differences against, the running
// shortfall aggregates, and the retained sample ring oldest-first.
func (m *FairnessMonitor) SaveState(w *snapshot.Writer) {
	w.Section("memctrl.FairnessMonitor")
	w.I64(m.interval)
	w.I64(m.nextAt)
	w.I64s(m.prevService)
	w.F64s(m.cumShort)
	w.F64s(m.maxEpochShrt)
	w.F64s(m.maxAbsExcess)
	w.I64s(m.lastExcess)
	w.I64s(m.prevMatrix)
	m.mu.Lock()
	defer m.mu.Unlock()
	w.Int(cap(m.ring))
	w.Len(m.count)
	for i := 0; i < m.count; i++ {
		sm := &m.ring[(m.start+i)%len(m.ring)]
		w.I64(sm.Epoch)
		w.I64(sm.Cycle)
		w.I64s(sm.Service)
		w.I64(sm.Total)
		w.F64s(sm.Share)
		w.F64s(sm.Phi)
		w.F64s(sm.Excess)
		w.Bools(sm.Backlogged)
		w.F64s(sm.CumShortfall)
		w.Ints(sm.TopAggressor)
		w.I64s(sm.StolenCycles)
	}
	w.I64(m.epochs)
}

// LoadState restores a fairness monitor saved by SaveState into one
// constructed over the same controller with the same interval and
// capacity.
func (m *FairnessMonitor) LoadState(r *snapshot.Reader) error {
	r.Section("memctrl.FairnessMonitor")
	interval := r.I64()
	nextAt := r.I64()
	n := len(m.prevService)
	prevService := r.I64s(n)
	cumShort := r.F64s(n)
	maxEpochShrt := r.F64s(n)
	maxAbsExcess := r.F64s(n)
	lastExcess := r.I64s(n)
	prevMatrix := r.I64s(n * (n + 1))
	capacity := r.Int()
	count := r.Len(snapshot.MaxSlice)
	if r.Err() == nil && interval != m.interval {
		r.Fail("memctrl.FairnessMonitor: interval %d, monitor has %d", interval, m.interval)
	}
	if r.Err() == nil && (len(prevService) != n || len(cumShort) != n || len(maxEpochShrt) != n ||
		len(maxAbsExcess) != n || len(lastExcess) != n || len(prevMatrix) != n*(n+1)) {
		r.Fail("memctrl.FairnessMonitor: per-thread arrays do not match %d threads", n)
	}
	if r.Err() == nil && capacity != cap(m.ring) {
		r.Fail("memctrl.FairnessMonitor: ring capacity %d, monitor has %d", capacity, cap(m.ring))
	}
	if r.Err() == nil && count > capacity {
		r.Fail("memctrl.FairnessMonitor: %d retained samples exceed capacity %d", count, capacity)
	}
	if err := r.Err(); err != nil {
		return err
	}
	ring := make([]FairnessSample, 0, cap(m.ring))
	for i := 0; i < count; i++ {
		sm := FairnessSample{Epoch: r.I64(), Cycle: r.I64()}
		sm.Service = r.I64s(n)
		sm.Total = r.I64()
		sm.Share = r.F64s(n)
		sm.Phi = r.F64s(n)
		sm.Excess = r.F64s(n)
		sm.Backlogged = r.Bools(n)
		sm.CumShortfall = r.F64s(n)
		sm.TopAggressor = r.Ints(n)
		sm.StolenCycles = r.I64s(n)
		if r.Err() != nil {
			return r.Err()
		}
		ring = append(ring, sm)
	}
	epochs := r.I64()
	if err := r.Err(); err != nil {
		return err
	}
	m.nextAt = nextAt
	copy(m.prevService, prevService)
	copy(m.cumShort, cumShort)
	copy(m.maxEpochShrt, maxEpochShrt)
	copy(m.maxAbsExcess, maxAbsExcess)
	copy(m.lastExcess, lastExcess)
	copy(m.prevMatrix, prevMatrix)
	m.mu.Lock()
	m.ring = ring
	m.start = 0
	m.count = len(ring)
	m.epochs = epochs
	m.mu.Unlock()
	return nil
}
