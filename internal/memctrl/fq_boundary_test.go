package memctrl

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
)

// TestFQInversionBoundBoundary pins the Section 3.3 FQ bank-scheduler
// boundary at exactly x cycles after an activate. Thread 0 (share 1/8,
// so its virtual finish-times grow eight cycles per service cycle)
// streams 13 row hits at bank 0; thread 1 (share 7/8) files one
// conflicting request whose key is far smaller from the moment it
// arrives. While the bank has been open for strictly less than x
// cycles, first-ready scheduling lets the hits bypass the smaller-key
// conflict (priority inversion); from cycle x on, the bank must switch
// to smallest-key selection and wait for the conflict's precharge.
//
// Row hits issue at cycles 5, 9, 13, 17, ... — tRCD for the first, then
// the data bus (BL2 = 4, tighter than tCCD here) paces the rest — so
// the number of reads issued before the first precharge measures the
// flip cycle exactly. x = 0 is the ablation where FQ-VFTF degenerates
// to strict smallest-key selection as soon as the bank opens: the very
// first request's own column access is blocked for the whole tRAS wait.
//
// For x beyond tRAS the read count stops growing: first-ready order
// prefers a ready command over an unready one, so the conflict's
// precharge slips into the data-bus gap between hits (at cycle 20, once
// tRTP from the last read passes) no matter how large x is — the
// readiness level naturally bounds chaining on bus-limited streams, and
// x only matters while the hit stream keeps a command ready.
func TestFQInversionBoundBoundary(t *testing.T) {
	cases := []struct {
		x          int64
		wantReads  int64 // reads issued before the conflict's precharge
		wantMaxInv int64 // largest legal bypass age observed by the audit
		wantPreAt  int64 // cycle the conflict's precharge issues
	}{
		{x: 0, wantReads: 0, wantMaxInv: 0, wantPreAt: 18},
		{x: 6, wantReads: 1, wantMaxInv: 5, wantPreAt: 18},
		{x: 10, wantReads: 2, wantMaxInv: 9, wantPreAt: 18},
		{x: 18, wantReads: 4, wantMaxInv: 17, wantPreAt: 20}, // the paper's x = tRAS
		{x: 40, wantReads: 4, wantMaxInv: 17, wantPreAt: 20},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("x=%d", tc.x), func(t *testing.T) {
			shares := []core.Share{{Num: 1, Den: 8}, {Num: 7, Den: 8}}
			cfg := linearConfig(t, 2)
			cfg.Audit = true
			pol := core.NewFQVFTFBound(shares, cfg.TotalBanks(), cfg.DRAM.Timing, tc.x)
			c, err := New(cfg, pol)
			if err != nil {
				t.Fatal(err)
			}
			// 13 reads to bank 0 row 5: one head request plus 12 hits.
			for col := 0; col < 13; col++ {
				if !c.Accept(0, addr(0, 5, col), false, 0) {
					t.Fatal("accept failed")
				}
			}
			c.Tick(0) // activate for the head request opens row 5
			if c.CommandCount(dram.KindActivate) != 1 {
				t.Fatal("no activate at cycle 0")
			}
			// The small-key conflict request arrives just after the row
			// opened.
			if !c.Accept(1, addr(0, 9, 0), false, 1) {
				t.Fatal("accept failed")
			}
			readsAtPre, preAt := int64(-1), int64(-1)
			for now := int64(1); now < 2_000; now++ {
				c.Tick(now)
				if readsAtPre < 0 && c.CommandCount(dram.KindPrecharge) > 0 {
					readsAtPre = c.CommandCount(dram.KindRead)
					preAt = now
				}
			}
			if readsAtPre != tc.wantReads {
				t.Errorf("reads before the conflict precharge = %d, want %d", readsAtPre, tc.wantReads)
			}
			if preAt != tc.wantPreAt {
				t.Errorf("conflict precharge at cycle %d, want %d", preAt, tc.wantPreAt)
			}
			aud := c.Auditor()
			if aud == nil || aud.Commands() == 0 {
				t.Fatal("auditor not engaged")
			}
			if got := aud.MaxInversionWindow(); got != tc.wantMaxInv {
				t.Errorf("max inversion window = %d, want %d", got, tc.wantMaxInv)
			}
			if tc.x > 0 && aud.MaxInversionWindow() >= tc.x {
				t.Errorf("inversion window %d reached the bound %d", aud.MaxInversionWindow(), tc.x)
			}
		})
	}
}
