package cache

import "repro/internal/snapshot"

// SaveState serializes one cache level: the LRU clock, hit/miss
// counters, and every line's tag/valid/dirty/lastUse. Geometry (sets,
// ways) is written for verification only — it comes from the
// configuration, which the restored cache was constructed with.
func (c *Cache) SaveState(w *snapshot.Writer) {
	w.Section("cache.Cache")
	w.I64(c.useTick)
	w.I64(c.Hits)
	w.I64(c.Misses)
	w.Int(len(c.sets))
	w.Int(c.cfg.Ways)
	for _, set := range c.sets {
		for i := range set {
			l := &set[i]
			w.U64(l.tag)
			w.Bool(l.valid)
			w.Bool(l.dirty)
			w.I64(l.lastUse)
		}
	}
}

// LoadState restores a cache level saved by SaveState.
func (c *Cache) LoadState(r *snapshot.Reader) error {
	r.Section("cache.Cache")
	useTick := r.I64()
	hits := r.I64()
	misses := r.I64()
	sets := r.Int()
	ways := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if sets != len(c.sets) || ways != c.cfg.Ways {
		r.Fail("cache.Cache: %dx%d geometry, cache is %dx%d", sets, ways, len(c.sets), c.cfg.Ways)
		return r.Err()
	}
	for _, set := range c.sets {
		for i := range set {
			l := &set[i]
			l.tag = r.U64()
			l.valid = r.Bool()
			l.dirty = r.Bool()
			l.lastUse = r.I64()
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	c.useTick = useTick
	c.Hits = hits
	c.Misses = misses
	return nil
}

// SaveState serializes the hierarchy: all three levels, the MSHR file,
// the outgoing fetch/writeback queues, and the statistics. The
// byAddr index is not written — it is a pure function of the valid
// MSHR entries and is rebuilt on load.
func (h *Hierarchy) SaveState(w *snapshot.Writer) {
	w.Section("cache.Hierarchy")
	h.l1i.SaveState(w)
	h.l1d.SaveState(w)
	h.l2.SaveState(w)
	w.Int(len(h.mshrs))
	for i := range h.mshrs {
		m := &h.mshrs[i]
		w.U64(m.lineAddr)
		w.Bool(m.valid)
		w.Bool(m.sent)
		w.Bool(m.store)
		w.Bool(m.ifetch)
	}
	// Only the live (unconsumed) regions are written, so the head
	// indices need not be serialized and checkpoint bytes are identical
	// regardless of how far each queue has been consumed in place.
	w.Ints(h.sendQ[h.sendHead:])
	w.U64s(h.wbQ[h.wbHead:])
	w.I64(h.L2MissCount)
	w.I64(h.Writebacks)
	w.I64(h.MSHRFullNACK)
}

// LoadState restores a hierarchy saved by SaveState, rebuilding the
// byAddr index and the free count from the valid entries.
func (h *Hierarchy) LoadState(r *snapshot.Reader) error {
	r.Section("cache.Hierarchy")
	if err := h.l1i.LoadState(r); err != nil {
		return err
	}
	if err := h.l1d.LoadState(r); err != nil {
		return err
	}
	if err := h.l2.LoadState(r); err != nil {
		return err
	}
	n := r.Int()
	if r.Err() == nil && n != len(h.mshrs) {
		r.Fail("cache.Hierarchy: %d MSHRs, hierarchy has %d", n, len(h.mshrs))
	}
	if err := r.Err(); err != nil {
		return err
	}
	mshrs := make([]mshr, n)
	for i := range mshrs {
		m := &mshrs[i]
		m.lineAddr = r.U64()
		m.valid = r.Bool()
		m.sent = r.Bool()
		m.store = r.Bool()
		m.ifetch = r.Bool()
	}
	sendQ := r.Ints(len(h.mshrs))
	wbQ := r.U64s(snapshot.MaxSlice)
	l2Miss := r.I64()
	wbs := r.I64()
	nacks := r.I64()
	if err := r.Err(); err != nil {
		return err
	}
	byAddr := make(map[uint64]int)
	free := 0
	for i := range mshrs {
		m := &mshrs[i]
		if !m.valid {
			free++
			continue
		}
		if _, dup := byAddr[m.lineAddr]; dup {
			r.Fail("cache.Hierarchy: two valid MSHRs for line %#x", m.lineAddr)
			return r.Err()
		}
		byAddr[m.lineAddr] = i
	}
	for _, tok := range sendQ {
		if tok < 0 || tok >= len(mshrs) || !mshrs[tok].valid {
			r.Fail("cache.Hierarchy: sendQ token %d invalid", tok)
			return r.Err()
		}
	}
	copy(h.mshrs, mshrs)
	h.byAddr = byAddr
	h.free = free
	h.sendQ = sendQ
	h.sendHead = 0
	h.wbQ = wbQ
	h.wbHead = 0
	h.L2MissCount = l2Miss
	h.Writebacks = wbs
	h.MSHRFullNACK = nacks
	return nil
}
