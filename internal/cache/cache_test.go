package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache(t *testing.T) *Cache {
	t.Helper()
	// 4 sets x 2 ways of 64B lines = 512B.
	c, err := New(Config{SizeKB: 1, Ways: 4, LineBytes: 64, Latency: 2})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigSetsAndValidate(t *testing.T) {
	c := Config{SizeKB: 32, Ways: 4, LineBytes: 64, Latency: 2}
	if c.Sets() != 128 {
		t.Errorf("sets = %d, want 128", c.Sets())
	}
	if err := c.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeKB: 0, Ways: 4, LineBytes: 64},
		{SizeKB: 32, Ways: 0, LineBytes: 64},
		{SizeKB: 32, Ways: 4, LineBytes: 64, Latency: -1},
		{SizeKB: 33, Ways: 4, LineBytes: 64}, // 132 sets, not a power of two
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: accepted %+v", i, b)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := smallCache(t)
	if c.Access(100, false) {
		t.Fatal("hit in empty cache")
	}
	c.Fill(100, false)
	if !c.Access(100, false) {
		t.Fatal("miss after fill")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache(t) // 4 sets, 4 ways
	// Fill one set (set 0) with 4 lines: addresses 0, 4, 8, 12.
	for i := uint64(0); i < 4; i++ {
		c.Fill(i*4, false)
	}
	// Touch lines 0, 8, 12 so line 4 is LRU.
	c.Access(0, false)
	c.Access(8, false)
	c.Access(12, false)
	victim, dirty, evicted := c.Fill(16, false)
	if !evicted || victim != 4 || dirty {
		t.Fatalf("evicted %d (dirty=%v, evicted=%v), want clean 4", victim, dirty, evicted)
	}
	if c.Lookup(4) {
		t.Fatal("victim still present")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := smallCache(t)
	c.Fill(0, false)
	c.Access(0, true) // dirty it
	for i := uint64(1); i <= 4; i++ {
		victim, dirty, evicted := c.Fill(i*4, false)
		if evicted && victim == 0 {
			if !dirty {
				t.Fatal("dirty line evicted clean")
			}
			return
		}
	}
	t.Fatal("line 0 never evicted")
}

func TestCacheFillIdempotent(t *testing.T) {
	c := smallCache(t)
	c.Fill(0, false)
	_, _, evicted := c.Fill(0, true)
	if evicted {
		t.Fatal("refill evicted something")
	}
	// The refill's dirty flag sticks.
	for i := uint64(1); i <= 4; i++ {
		victim, dirty, ev := c.Fill(i*4, false)
		if ev && victim == 0 && !dirty {
			t.Fatal("merged dirty bit lost")
		}
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := smallCache(t)
	c.Fill(0, true)
	dirty, present := c.Invalidate(0)
	if !present || !dirty {
		t.Fatalf("invalidate = (%v, %v)", dirty, present)
	}
	if _, present := c.Invalidate(0); present {
		t.Fatal("double invalidate")
	}
}

// TestCacheNeverExceedsCapacity: property — after any access pattern,
// the number of resident lines is at most ways*sets.
func TestCacheNeverExceedsCapacity(t *testing.T) {
	f := func(addrs []uint16) bool {
		c, _ := New(Config{SizeKB: 1, Ways: 2, LineBytes: 64, Latency: 1})
		for _, a := range addrs {
			if !c.Access(uint64(a), a%3 == 0) {
				c.Fill(uint64(a), false)
			}
		}
		resident := 0
		for a := uint64(0); a < 1<<16; a++ {
			if c.Lookup(a) {
				resident++
			}
		}
		return resident <= 2*c.cfg.Sets()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyHitLevels(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Cold miss allocates an MSHR.
	res := h.Access(ClassLoad, 1000)
	if res.Hit || res.NACK {
		t.Fatalf("cold access = %+v", res)
	}
	if h.OutstandingMisses() != 1 {
		t.Fatal("MSHR not allocated")
	}
	// Same line: merged.
	res2 := h.Access(ClassLoad, 1000)
	if !res2.Merged || res2.Token != res.Token {
		t.Fatalf("merge = %+v", res2)
	}
	// Fill: now an L1 hit at L1 latency.
	h.Fill(res.Token)
	if h.OutstandingMisses() != 0 {
		t.Fatal("MSHR not freed")
	}
	res3 := h.Access(ClassLoad, 1000)
	if !res3.Hit || res3.Latency != 2 {
		t.Fatalf("after fill = %+v", res3)
	}
}

func TestHierarchyL2HitLatency(t *testing.T) {
	h, _ := NewHierarchy(DefaultHierarchyConfig())
	res := h.Access(ClassLoad, 5)
	h.Fill(res.Token)
	// Evict line 5 from L1 only: fill conflicting L1 lines (L1D has 128
	// sets, so addresses 5 + k*128 conflict in L1; L2 has 1024 sets so
	// they conflict there only after 8 ways).
	for k := 1; k <= 4; k++ {
		r := h.Access(ClassLoad, uint64(5+k*128))
		if !r.Hit && !r.NACK {
			h.Fill(r.Token)
		}
	}
	res = h.Access(ClassLoad, 5)
	if !res.Hit {
		t.Fatal("expected L2 hit")
	}
	if res.Latency != 2+12 {
		t.Fatalf("L2 hit latency = %d, want 14", res.Latency)
	}
}

func TestHierarchyMSHRFullNACK(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.MSHRs = 2
	h, _ := NewHierarchy(cfg)
	h.Access(ClassLoad, 1)
	h.Access(ClassLoad, 2)
	res := h.Access(ClassLoad, 3)
	if !res.NACK {
		t.Fatal("expected NACK with MSHRs full")
	}
	if h.MSHRFullNACK != 1 {
		t.Errorf("NACK count = %d", h.MSHRFullNACK)
	}
}

func TestHierarchyStoreMissFillsDirty(t *testing.T) {
	h, _ := NewHierarchy(DefaultHierarchyConfig())
	res := h.Access(ClassStore, 42)
	if res.Hit || res.NACK {
		t.Fatalf("store miss = %+v", res)
	}
	h.Fill(res.Token)
	// Thrash line 42 out of both L1 and L2; its dirtiness must surface
	// as exactly one writeback.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		a := uint64(rng.Intn(1 << 15))
		if a == 42 {
			continue
		}
		r := h.Access(ClassLoad, a)
		if !r.Hit && !r.NACK {
			h.Fill(r.Token)
		}
	}
	if h.Writebacks == 0 {
		t.Fatal("dirty store line never written back")
	}
	// All writebacks drain through the queue.
	n := 0
	for {
		_, ok := h.NextWriteback()
		if !ok {
			break
		}
		h.WritebackAccepted()
		n++
	}
	if int64(n) != h.Writebacks {
		t.Errorf("drained %d writebacks, counted %d", n, h.Writebacks)
	}
}

func TestHierarchyFetchQueue(t *testing.T) {
	h, _ := NewHierarchy(DefaultHierarchyConfig())
	r1 := h.Access(ClassLoad, 7)
	r2 := h.Access(ClassLoad, 8)
	a, tok, ok := h.NextFetch()
	if !ok || a != 7 || tok != r1.Token {
		t.Fatalf("first fetch = (%d, %d, %v)", a, tok, ok)
	}
	h.FetchAccepted()
	a, tok, ok = h.NextFetch()
	if !ok || a != 8 || tok != r2.Token {
		t.Fatalf("second fetch = (%d, %d, %v)", a, tok, ok)
	}
	h.FetchAccepted()
	if _, _, ok := h.NextFetch(); ok {
		t.Fatal("queue should be empty")
	}
	if got, want := h.TokenAddr(r1.Token), uint64(7); got != want {
		t.Errorf("TokenAddr = %d", got)
	}
	if tok, ok := h.TokenFor(8); !ok || tok != r2.Token {
		t.Errorf("TokenFor(8) = (%d, %v)", tok, ok)
	}
}

func TestHierarchyIFetchFillsL1I(t *testing.T) {
	h, _ := NewHierarchy(DefaultHierarchyConfig())
	res := h.Access(ClassIFetch, 77)
	if res.Hit {
		t.Fatal("cold ifetch hit")
	}
	h.Fill(res.Token)
	if !h.L1I().Lookup(77) {
		t.Fatal("ifetch fill missed L1I")
	}
	if h.L1D().Lookup(77) {
		t.Fatal("ifetch fill polluted L1D")
	}
}

func TestHierarchyConfigValidation(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.MSHRs = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("accepted 0 MSHRs")
	}
	cfg = DefaultHierarchyConfig()
	cfg.L2.Ways = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("accepted invalid L2")
	}
}

// TestHierarchyInclusionInvariant: after random traffic, every line in
// an L1 is also in L2 (the hierarchy maintains inclusion on L2 evicts).
func TestHierarchyInclusionInvariant(t *testing.T) {
	h, _ := NewHierarchy(HierarchyConfig{
		L1I:        Config{SizeKB: 1, Ways: 2, LineBytes: 64, Latency: 1},
		L1D:        Config{SizeKB: 1, Ways: 2, LineBytes: 64, Latency: 1},
		L2:         Config{SizeKB: 4, Ways: 2, LineBytes: 64, Latency: 4},
		MSHRs:      4,
		WBQueueCap: 64,
	})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		a := uint64(rng.Intn(256))
		class := []AccessClass{ClassLoad, ClassStore, ClassIFetch}[rng.Intn(3)]
		r := h.Access(class, a)
		if !r.Hit && !r.NACK && !r.Merged {
			h.Fill(r.Token)
		}
		for {
			if _, ok := h.NextWriteback(); !ok {
				break
			}
			h.WritebackAccepted()
		}
	}
	for a := uint64(0); a < 256; a++ {
		inL1 := h.L1D().Lookup(a) || h.L1I().Lookup(a)
		if inL1 && !h.L2().Lookup(a) {
			// Lines fetched while an MSHR is pending are exempt.
			if _, pending := h.TokenFor(a); !pending {
				t.Fatalf("line %d in L1 but not L2 (inclusion violated)", a)
			}
		}
	}
}
