// Package cache implements the private per-core cache hierarchy of the
// paper's Table 5: 32KB 4-way L1 instruction and data caches (2-cycle),
// a 512KB 8-way unified L2 (12-cycle), write-back write-allocate with
// LRU replacement, a 16-entry MSHR file with miss merging at the memory
// boundary, and a dirty-writeback stream toward the memory controller.
//
// The package is purely functional with respect to time: it classifies
// accesses and tracks outstanding misses; the core model and system
// simulator attach latencies and drain the outgoing request queues.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	SizeKB    int
	Ways      int
	LineBytes int
	Latency   int // access latency in cycles
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeKB * 1024 / (c.Ways * c.LineBytes) }

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.SizeKB < 1 || c.Ways < 1 || c.LineBytes < 1 || c.Latency < 0:
		return fmt.Errorf("cache: invalid config %+v", c)
	case c.SizeKB*1024%(c.Ways*c.LineBytes) != 0:
		return fmt.Errorf("cache: size %dKB not divisible into %d ways of %dB lines", c.SizeKB, c.Ways, c.LineBytes)
	default:
		s := c.Sets()
		if s&(s-1) != 0 {
			return fmt.Errorf("cache: set count %d is not a power of two", s)
		}
	}
	return nil
}

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse int64
}

// Cache is one set-associative write-back cache level. Addresses are
// line addresses (byte address / line size); the cache never sees byte
// offsets.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	tagShift uint
	useTick  int64

	Hits, Misses int64
}

// New returns an empty cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Sets()
	c := &Cache{cfg: cfg, setMask: uint64(n - 1), tagShift: uint(popshift(uint64(n - 1)))}
	c.sets = make([][]line, n)
	backing := make([]line, n*cfg.Ways)
	for i := range c.sets {
		c.sets[i], backing = backing[:cfg.Ways:cfg.Ways], backing[cfg.Ways:]
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) set(lineAddr uint64) []line { return c.sets[lineAddr&c.setMask] }

func (c *Cache) tag(lineAddr uint64) uint64 { return lineAddr >> c.tagShift }

func popshift(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// Lookup probes the cache without modifying replacement state.
func (c *Cache) Lookup(lineAddr uint64) bool {
	tag := c.tag(lineAddr)
	for i := range c.set(lineAddr) {
		l := &c.set(lineAddr)[i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Access probes the cache, updating LRU state and hit/miss counters; on
// a hit with write=true the line is marked dirty.
func (c *Cache) Access(lineAddr uint64, write bool) bool {
	c.useTick++
	tag := c.tag(lineAddr)
	s := c.set(lineAddr)
	for i := range s {
		l := &s[i]
		if l.valid && l.tag == tag {
			l.lastUse = c.useTick
			if write {
				l.dirty = true
			}
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Fill installs a line, evicting the LRU victim. It reports the evicted
// line's address and whether it was dirty (and valid).
func (c *Cache) Fill(lineAddr uint64, dirty bool) (victim uint64, victimDirty, evicted bool) {
	c.useTick++
	tag := c.tag(lineAddr)
	s := c.set(lineAddr)
	vi := 0
	for i := range s {
		l := &s[i]
		if l.valid && l.tag == tag {
			// Already present (e.g. racing fill); just update.
			l.lastUse = c.useTick
			l.dirty = l.dirty || dirty
			return 0, false, false
		}
		if !l.valid {
			vi = i
			break
		}
		if s[i].lastUse < s[vi].lastUse {
			vi = i
		}
	}
	v := &s[vi]
	if v.valid {
		victim = v.tag<<c.tagShift | (lineAddr & c.setMask)
		victimDirty = v.dirty
		evicted = true
	}
	*v = line{tag: tag, valid: true, dirty: dirty, lastUse: c.useTick}
	return victim, victimDirty, evicted
}

// Invalidate removes a line if present, returning whether it was dirty.
func (c *Cache) Invalidate(lineAddr uint64) (wasDirty, wasPresent bool) {
	tag := c.tag(lineAddr)
	s := c.set(lineAddr)
	for i := range s {
		l := &s[i]
		if l.valid && l.tag == tag {
			l.valid = false
			return l.dirty, true
		}
	}
	return false, false
}
