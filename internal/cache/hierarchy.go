package cache

import "fmt"

// HierarchyConfig configures one core's private cache hierarchy
// (Table 5 defaults via DefaultHierarchyConfig).
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	MSHRs        int // outstanding line fetches toward memory
	WBQueueCap   int // buffered dirty writebacks toward memory
}

// DefaultHierarchyConfig returns the paper's Table 5 cache hierarchy.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:        Config{SizeKB: 32, Ways: 4, LineBytes: 64, Latency: 2},
		L1D:        Config{SizeKB: 32, Ways: 4, LineBytes: 64, Latency: 2},
		L2:         Config{SizeKB: 512, Ways: 8, LineBytes: 64, Latency: 12},
		MSHRs:      16,
		WBQueueCap: 16,
	}
}

// StreamHierarchyConfig returns the accelerator-style streaming
// agent's hierarchy: the Table 5 caches with a deeper MSHR file and
// writeback queue, so the deep-queue core (cpu.StreamConfig) can keep
// more line fetches in flight. Hit latencies are unchanged.
func StreamHierarchyConfig() HierarchyConfig {
	c := DefaultHierarchyConfig()
	c.MSHRs = 64
	c.WBQueueCap = 64
	return c
}

// AccessClass distinguishes the three request sources.
type AccessClass uint8

const (
	// ClassLoad is a data load.
	ClassLoad AccessClass = iota
	// ClassStore is a data store (write-allocate).
	ClassStore
	// ClassIFetch is an instruction fetch.
	ClassIFetch
)

// mshr is one outstanding line fetch toward memory.
type mshr struct {
	lineAddr uint64
	valid    bool
	sent     bool
	store    bool // fill dirty (a store merged into the miss)
	ifetch   bool // fill L1I instead of L1D
}

// Result classifies one hierarchy access.
type Result struct {
	// Hit is true when the access was satisfied on chip; Latency then
	// holds the load-to-use latency in cycles.
	Hit     bool
	Latency int

	// Token identifies the MSHR for a miss; the caller is woken via the
	// same token when the fill arrives. Merged is true when the miss
	// was folded into an existing MSHR.
	Token  int
	Merged bool

	// NACK is true when the MSHR file is full; the caller must retry.
	NACK bool
}

// Hierarchy is one core's private L1I/L1D/L2 with MSHRs and a dirty
// writeback queue.
type Hierarchy struct {
	cfg HierarchyConfig
	l1i *Cache
	l1d *Cache
	l2  *Cache

	// Hit latencies, precomputed so the per-access hot path avoids
	// copying whole Config structs out of the cache levels.
	l1iLat, l1dLat, l2Lat int

	mshrs  []mshr
	byAddr map[uint64]int
	free   int

	// sendQ holds MSHR tokens whose fetch has not yet been accepted by
	// the memory controller; consumed from sendHead so the backing
	// array is reused once drained (no steady-state allocation).
	sendQ    []int
	sendHead int
	// wbQ holds dirty line addresses to be written to memory, consumed
	// from wbHead likewise.
	wbQ    []uint64
	wbHead int

	// Statistics.
	L2MissCount  int64
	Writebacks   int64
	MSHRFullNACK int64
}

// NewHierarchy returns an empty hierarchy.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if cfg.MSHRs < 1 {
		return nil, fmt.Errorf("cache: MSHRs must be >= 1, got %d", cfg.MSHRs)
	}
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, fmt.Errorf("L1I: %w", err)
	}
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, fmt.Errorf("L1D: %w", err)
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	return &Hierarchy{
		cfg:    cfg,
		l1i:    l1i,
		l1d:    l1d,
		l2:     l2,
		l1iLat: cfg.L1I.Latency,
		l1dLat: cfg.L1D.Latency,
		l2Lat:  cfg.L2.Latency,
		mshrs:  make([]mshr, cfg.MSHRs),
		byAddr: make(map[uint64]int, cfg.MSHRs),
		free:   cfg.MSHRs,
	}, nil
}

// L1I, L1D, and L2 expose the individual levels for statistics.
func (h *Hierarchy) L1I() *Cache { return h.l1i }

// L1D returns the L1 data cache.
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L2 returns the unified second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// OutstandingMisses returns the number of allocated MSHRs.
func (h *Hierarchy) OutstandingMisses() int { return h.cfg.MSHRs - h.free }

// Access performs one load, store, or instruction fetch to the given
// line address.
func (h *Hierarchy) Access(class AccessClass, lineAddr uint64) Result {
	l1, l1Lat := h.l1d, h.l1dLat
	if class == ClassIFetch {
		l1, l1Lat = h.l1i, h.l1iLat
	}
	if l1.Access(lineAddr, class == ClassStore) {
		return Result{Hit: true, Latency: l1Lat}
	}
	if h.l2.Access(lineAddr, false) {
		// Fill L1 from L2; an evicted dirty L1 line is merged back into
		// L2 (both on chip, no memory traffic unless L2 must evict,
		// which cannot happen here since the line is already in L2).
		victim, dirty, evicted := l1.Fill(lineAddr, class == ClassStore)
		if evicted && dirty {
			h.mergeDirtyIntoL2(victim)
		}
		return Result{Hit: true, Latency: l1Lat + h.l2Lat}
	}
	// L2 miss: allocate or merge an MSHR.
	if idx, ok := h.byAddr[lineAddr]; ok {
		m := &h.mshrs[idx]
		if class == ClassStore {
			m.store = true
		}
		return Result{Token: idx, Merged: true}
	}
	if h.free == 0 {
		h.MSHRFullNACK++
		return Result{NACK: true}
	}
	idx := h.allocMSHR(lineAddr, class)
	h.L2MissCount++
	return Result{Token: idx}
}

func (h *Hierarchy) allocMSHR(lineAddr uint64, class AccessClass) int {
	for i := range h.mshrs {
		if !h.mshrs[i].valid {
			h.mshrs[i] = mshr{
				lineAddr: lineAddr,
				valid:    true,
				store:    class == ClassStore,
				ifetch:   class == ClassIFetch,
			}
			h.byAddr[lineAddr] = i
			h.free--
			h.sendQ = append(h.sendQ, i)
			return i
		}
	}
	panic("cache: allocMSHR with no free entry")
}

// mergeDirtyIntoL2 writes a dirty L1 victim into L2, marking it dirty;
// if L2 no longer holds the line (rare), the data goes to memory.
func (h *Hierarchy) mergeDirtyIntoL2(lineAddr uint64) {
	if h.l2.Access(lineAddr, true) {
		return
	}
	// L2 victimized the line after the L1 copy was made: write through
	// to memory.
	h.l2.Misses-- // do not count bookkeeping probes as demand misses
	h.pushWriteback(lineAddr)
}

func (h *Hierarchy) pushWriteback(lineAddr uint64) {
	h.wbQ = append(h.wbQ, lineAddr)
	h.Writebacks++
}

// NextFetch returns the next MSHR fetch awaiting acceptance by the
// memory controller, without consuming it.
func (h *Hierarchy) NextFetch() (lineAddr uint64, token int, ok bool) {
	if h.sendHead >= len(h.sendQ) {
		return 0, 0, false
	}
	idx := h.sendQ[h.sendHead]
	return h.mshrs[idx].lineAddr, idx, true
}

// FetchAccepted consumes the head of the fetch queue after the memory
// controller accepted it.
func (h *Hierarchy) FetchAccepted() {
	idx := h.sendQ[h.sendHead]
	h.mshrs[idx].sent = true
	h.sendHead++
	if h.sendHead == len(h.sendQ) {
		h.sendQ = h.sendQ[:0]
		h.sendHead = 0
	}
}

// NextWriteback returns the next dirty writeback awaiting acceptance.
func (h *Hierarchy) NextWriteback() (lineAddr uint64, ok bool) {
	if h.wbHead >= len(h.wbQ) {
		return 0, false
	}
	return h.wbQ[h.wbHead], true
}

// WritebackAccepted consumes the head of the writeback queue.
func (h *Hierarchy) WritebackAccepted() {
	h.wbHead++
	if h.wbHead == len(h.wbQ) {
		h.wbQ = h.wbQ[:0]
		h.wbHead = 0
	}
}

// WritebackQueueFull reports whether the writeback queue is at capacity;
// fills must stall until it drains.
func (h *Hierarchy) WritebackQueueFull() bool {
	return h.cfg.WBQueueCap > 0 && len(h.wbQ)-h.wbHead >= h.cfg.WBQueueCap
}

// Fill delivers the memory response for the MSHR token: the line is
// installed in L2 and the requesting L1, dirty victims are queued for
// writeback, and the token is freed. The caller wakes any instructions
// it registered against the token.
func (h *Hierarchy) Fill(token int) {
	m := &h.mshrs[token]
	if !m.valid {
		panic(fmt.Sprintf("cache: Fill of free MSHR %d", token))
	}
	victim, dirty, evicted := h.l2.Fill(m.lineAddr, false)
	if evicted {
		// The L1s are maintained inclusive: drop any L1 copy of the L2
		// victim, folding its dirtiness into the writeback.
		d1, _ := h.l1d.Invalidate(victim)
		h.l1i.Invalidate(victim)
		if dirty || d1 {
			h.pushWriteback(victim)
		}
	}
	l1 := h.l1d
	if m.ifetch {
		l1 = h.l1i
	}
	v1, d1, ev1 := l1.Fill(m.lineAddr, m.store)
	if ev1 && d1 {
		h.mergeDirtyIntoL2(v1)
	}
	delete(h.byAddr, m.lineAddr)
	m.valid = false
	h.free++
}

// TokenAddr returns the line address an MSHR token is fetching.
func (h *Hierarchy) TokenAddr(token int) uint64 { return h.mshrs[token].lineAddr }

// TokenFor returns the MSHR token outstanding for a line address.
func (h *Hierarchy) TokenFor(lineAddr uint64) (int, bool) {
	idx, ok := h.byAddr[lineAddr]
	return idx, ok
}
