package sim

import (
	"testing"

	"repro/internal/trace"
)

// TestStepZeroSteadyStateAllocs asserts the arena/ring refactor's
// contract: once warmed past its peak occupancy, Step allocates
// nothing — request slots recycle through the controller's free list,
// transit queues reuse their backing arrays, and the parallel
// dispatch path reuses one persistent closure. Both serial and
// parallel modes are held to the same bar.
func TestStepZeroSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow")
	}
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		policy  PolicyFactory
		workers int
	}{
		{"serial", FQVFTF, 0},
		{"parallel", FQVFTF, 4},
		// The interval policies' Tick paths (blacklist promotion, boost
		// retarget, budget refill) are held to the same zero-alloc bar.
		{"bliss", BLISS, 0},
		{"slowfair", SLOWFAIR, 0},
		{"bankbw", BANKBW, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Workload: []trace.Profile{art, vpr, art, vpr},
				Policy:   tc.policy,
				Seed:     37,
				Workers:  tc.workers,
			}
			cfg.Mem.Channels = 2
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if tc.workers > 1 && s.pool == nil {
				t.Fatal("parallel path not engaged: pool degraded to serial")
			}
			// Warm far past peak queue/arena occupancy so every buffer
			// has reached its high-water capacity.
			s.Step(200_000)
			avg := testing.AllocsPerRun(10, func() {
				s.Step(5_000)
			})
			if avg != 0 {
				t.Errorf("%s Step allocates %.1f objects per 5k cycles in steady state, want 0", tc.name, avg)
			}
		})
	}
}
