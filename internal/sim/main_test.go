package sim

import (
	"os"
	"runtime"
	"testing"
)

// TestMain raises GOMAXPROCS so the intra-run worker pool is real even
// on single-CPU machines (par.New caps at GOMAXPROCS and degrades to a
// nil pool below 2). Without this, every Workers > 1 configuration in
// this package would silently fall back to the serial path and the
// parallel equivalence suite would compare serial against serial.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}
