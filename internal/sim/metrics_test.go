package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/dram"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// TestMetricsEquivalence is the observability layer's acceptance test:
// enabling the metrics registry and the Chrome trace writer must leave
// the simulation bit-identical — same Result, same virtual clock, same
// per-kind command counts — in both the event-driven and strict modes,
// and the instrumented run's artifacts must be internally consistent
// with the simulation's own statistics.
func TestMetricsEquivalence(t *testing.T) {
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	const warmup, window = 20_000, 80_000
	type outcome struct {
		res Result
		fp  controllerFingerprint
	}
	const sampleInterval = 10_000
	run := func(strict, instrumented, sampled bool) (outcome, *metrics.Registry, *bytes.Buffer, int64, *System) {
		cfg := Config{
			Workload: []trace.Profile{art, vpr},
			Policy:   FQVFTF,
			Seed:     23,
			Strict:   strict,
		}
		var reg *metrics.Registry
		var buf *bytes.Buffer
		var tw *metrics.TraceWriter
		if instrumented {
			reg = metrics.New()
			buf = &bytes.Buffer{}
			tw = metrics.NewTraceWriter(buf)
			cfg.Metrics = reg
			cfg.Trace = tw
		}
		if sampled {
			cfg.SampleInterval = sampleInterval
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Step(warmup)
		s.BeginMeasurement()
		s.Step(window)
		ctrl := s.Controller()
		fp := controllerFingerprint{VClock: ctrl.VClock()}
		for k := dram.KindActivate; k <= dram.KindRefresh; k++ {
			fp.Commands[k] = ctrl.CommandCount(k)
		}
		var readsDone int64
		for i := 0; i < 2; i++ {
			readsDone += ctrl.Stats(i).ReadsDone
		}
		if tw != nil {
			if err := tw.Close(); err != nil {
				t.Fatalf("trace close: %v", err)
			}
		}
		return outcome{res: s.Results(), fp: fp}, reg, buf, readsDone, s
	}

	base, _, _, _, _ := run(false, false, false)
	inst, reg, buf, readsDone, _ := run(false, true, false)
	strictInst, _, _, _, _ := run(true, true, false)
	sampledOut, _, _, _, sampledSys := run(false, true, true)

	if !reflect.DeepEqual(base.res, inst.res) {
		t.Errorf("metrics+trace changed the Result:\n off: %+v\n on:  %+v", base.res, inst.res)
	}
	if base.fp != inst.fp {
		t.Errorf("metrics+trace changed controller state:\n off: %+v\n on:  %+v", base.fp, inst.fp)
	}
	if !reflect.DeepEqual(base.res, strictInst.res) || base.fp != strictInst.fp {
		t.Errorf("instrumented strict run diverges:\n off:    %+v %+v\n strict: %+v %+v",
			base.res, base.fp, strictInst.res, strictInst.fp)
	}
	if !reflect.DeepEqual(base.res, sampledOut.res) || base.fp != sampledOut.fp {
		t.Errorf("epoch-sampled run diverges:\n off:     %+v %+v\n sampled: %+v %+v",
			base.res, base.fp, sampledOut.res, sampledOut.fp)
	}

	// The sampled run's time series must be internally consistent:
	// every sample on an exact epoch boundary, one sample per boundary
	// plus the cycle-0 baseline, and counter deltas summing to the
	// cumulative totals.
	samples := sampledSys.Sampler().Samples(-1)
	wantSamples := int((warmup+window)/sampleInterval) + 1
	if len(samples) != wantSamples {
		t.Fatalf("sampler retained %d samples, want %d", len(samples), wantSamples)
	}
	var invSum int64
	for i, sm := range samples {
		if sm.Cycle%sampleInterval != 0 {
			t.Errorf("sample %d at cycle %d: not an epoch boundary", i, sm.Cycle)
		}
		if sm.Cycle != int64(i)*sampleInterval {
			t.Errorf("sample %d at cycle %d, want %d", i, sm.Cycle, int64(i)*sampleInterval)
		}
		invSum += sm.Counters["memctrl.fq.inversions"]
	}
	last := samples[len(samples)-1]
	if got := last.Gauges["sim.cycle"]; got != warmup+window {
		t.Errorf("last sample sim.cycle = %d, want %d", got, warmup+window)
	}
	snapSampled, ok := sampledSys.Sampler().Latest()
	if !ok {
		t.Fatal("sampler has no published snapshot")
	}
	if invSum != snapSampled.Counters["memctrl.fq.inversions"] {
		t.Errorf("inversion deltas sum to %d, cumulative is %d",
			invSum, snapSampled.Counters["memctrl.fq.inversions"])
	}
	// The fairness series rides the same epoch clock and conserves
	// service: per-epoch service deltas sum to each thread's total
	// data-bus cycles.
	fair := sampledSys.Fairness().Samples(-1)
	if len(fair) != wantSamples {
		t.Fatalf("fairness monitor retained %d samples, want %d", len(fair), wantSamples)
	}
	var svc [2]int64
	for _, fs := range fair {
		for tdx := 0; tdx < 2; tdx++ {
			svc[tdx] += fs.Service[tdx]
		}
	}
	for tdx := 0; tdx < 2; tdx++ {
		if got := sampledSys.Controller().Stats(tdx).DataBusCycles; svc[tdx] != got {
			t.Errorf("thread %d fairness service sums to %d, controller charged %d", tdx, svc[tdx], got)
		}
	}

	// The instrumented run's registry must agree with the simulation's
	// own bookkeeping.
	snap := reg.Snapshot()
	if got := snap.Gauges["sim.cycle"]; got != warmup+window {
		t.Errorf("sim.cycle = %d, want %d", got, warmup+window)
	}
	if got := snap.Gauges["memctrl.cmd.ACT"]; got != inst.fp.Commands[dram.KindActivate] {
		t.Errorf("memctrl.cmd.ACT = %d, want %d", got, inst.fp.Commands[dram.KindActivate])
	}
	var histReads int64
	for i := 0; i < 2; i++ {
		h := snap.Histograms["sim.thread"+string(rune('0'+i))+".read_latency"]
		if h.Count == 0 || h.P50 <= 0 || h.P99 < h.P50 {
			t.Errorf("thread %d latency histogram implausible: %+v", i, h)
		}
		histReads += h.Count
	}
	if histReads != readsDone {
		t.Errorf("latency histogram holds %d reads, controller completed %d", histReads, readsDone)
	}
	// Per-bank command counters must sum to the controller's totals.
	var actSum int64
	for name, v := range snap.Gauges {
		if matched, _ := pathMatch(name, "dram.chan", ".activates"); matched {
			actSum += v
		}
	}
	if actSum != inst.fp.Commands[dram.KindActivate] {
		t.Errorf("per-bank activates sum to %d, controller issued %d", actSum, inst.fp.Commands[dram.KindActivate])
	}

	// The trace must be valid Chrome trace-event JSON with events.
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var acts, reads int
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Name {
		case "ACT":
			acts++
		case "read":
			reads++
		}
	}
	if int64(acts) != inst.fp.Commands[dram.KindActivate] {
		t.Errorf("trace has %d ACT events, controller issued %d", acts, inst.fp.Commands[dram.KindActivate])
	}
	if int64(reads) != readsDone {
		t.Errorf("trace has %d read lifetimes, controller completed %d", reads, readsDone)
	}
}

// pathMatch reports whether s has the given prefix and suffix.
func pathMatch(s, prefix, suffix string) (bool, string) {
	if len(s) < len(prefix)+len(suffix) || s[:len(prefix)] != prefix || s[len(s)-len(suffix):] != suffix {
		return false, ""
	}
	return true, s[len(prefix) : len(s)-len(suffix)]
}

// TestStallCyclesAccounting sanity-checks the ROB-stall measure: a
// memory-bound thread sharing the bus must stall a nonzero but bounded
// number of cycles, and the fast/strict equivalence (asserted above via
// Result.StallCycles) ensures the skip-credit path agrees with the
// per-cycle count.
func TestStallCyclesAccounting(t *testing.T) {
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workload: []trace.Profile{art, art}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.Step(50_000)
	res := s.Results()
	for i, tr := range res.Threads {
		if tr.StallCycles <= 0 {
			t.Errorf("thread %d: no ROB stalls in a memory-bound co-run", i)
		}
		if tr.StallCycles > res.Cycles {
			t.Errorf("thread %d: %d stall cycles exceed the %d-cycle window", i, tr.StallCycles, res.Cycles)
		}
	}
}
