package sim

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/snapshot"
)

// maxTransitQueue caps decoded transit-queue lengths. Real queues hold
// at most a few dozen entries (bounded by MSHR and write-buffer
// capacity); the cap only guards hostile snapshots.
const maxTransitQueue = 1 << 16

// saveFingerprint writes the configuration identity a snapshot belongs
// to. Restore verifies it against the freshly constructed system before
// reading any component state, so a snapshot restored under the wrong
// policy, workload, geometry, or mode fails with a clear error instead
// of a confusing component mismatch deep in the stream.
func (s *System) saveFingerprint(w *snapshot.Writer) {
	w.Section("sim.Config")
	w.Int(len(s.cores))
	for _, p := range s.cfg.Workload {
		w.String(p.Name)
	}
	for _, sh := range s.cfg.Shares {
		w.Int(sh.Num)
		w.Int(sh.Den)
	}
	w.String(s.ctrl.Policy().Name())
	w.U64(s.cfg.Seed)
	w.Bool(s.cfg.Strict)
	w.Bool(s.cfg.Audit)
	w.Bool(s.cfg.Interference)
	w.I64(s.cfg.SampleInterval)
	w.Int(s.cfg.SampleCapacity)
	w.Int(s.cfg.ReqTransit)
	w.Int(s.cfg.RespTransit)
	w.Int(s.ctrl.Channels())
	w.Int(s.cfg.Mem.TotalBanks())
}

// checkFingerprint reads a fingerprint written by saveFingerprint and
// verifies it against this system's configuration.
func (s *System) checkFingerprint(r *snapshot.Reader) error {
	r.Section("sim.Config")
	n := r.Int()
	if r.Err() == nil && n != len(s.cores) {
		r.Fail("sim.Config: snapshot has %d cores, config has %d", n, len(s.cores))
	}
	if err := r.Err(); err != nil {
		return err
	}
	for i, p := range s.cfg.Workload {
		name := r.String(snapshot.MaxString)
		if r.Err() == nil && name != p.Name {
			r.Fail("sim.Config: core %d workload %q, config has %q", i, name, p.Name)
		}
	}
	for i, sh := range s.cfg.Shares {
		num, den := r.Int(), r.Int()
		if r.Err() == nil && (num != sh.Num || den != sh.Den) {
			r.Fail("sim.Config: core %d share %d/%d, config has %d/%d", i, num, den, sh.Num, sh.Den)
		}
	}
	policy := r.String(snapshot.MaxString)
	if r.Err() == nil && policy != s.ctrl.Policy().Name() {
		r.Fail("sim.Config: snapshot policy %q, config has %q", policy, s.ctrl.Policy().Name())
	}
	seed := r.U64()
	if r.Err() == nil && seed != s.cfg.Seed {
		r.Fail("sim.Config: snapshot seed %d, config has %d", seed, s.cfg.Seed)
	}
	strict, auditOn, intf := r.Bool(), r.Bool(), r.Bool()
	if r.Err() == nil && (strict != s.cfg.Strict || auditOn != s.cfg.Audit || intf != s.cfg.Interference) {
		r.Fail("sim.Config: snapshot strict=%v audit=%v interference=%v, config has strict=%v audit=%v interference=%v",
			strict, auditOn, intf, s.cfg.Strict, s.cfg.Audit, s.cfg.Interference)
	}
	si, sc := r.I64(), r.Int()
	if r.Err() == nil && (si != s.cfg.SampleInterval || sc != s.cfg.SampleCapacity) {
		r.Fail("sim.Config: snapshot sampling %d/%d, config has %d/%d",
			si, sc, s.cfg.SampleInterval, s.cfg.SampleCapacity)
	}
	rq, rp := r.Int(), r.Int()
	if r.Err() == nil && (rq != s.cfg.ReqTransit || rp != s.cfg.RespTransit) {
		r.Fail("sim.Config: snapshot transits %d/%d, config has %d/%d",
			rq, rp, s.cfg.ReqTransit, s.cfg.RespTransit)
	}
	nch, nbk := r.Int(), r.Int()
	if r.Err() == nil && (nch != s.ctrl.Channels() || nbk != s.cfg.Mem.TotalBanks()) {
		r.Fail("sim.Config: snapshot geometry %d channels x %d banks, config has %d x %d",
			nch, nbk, s.ctrl.Channels(), s.cfg.Mem.TotalBanks())
	}
	return r.Err()
}

// saveTimedQueue writes the live (unconsumed) region only, so the
// serialized form is independent of the queue's internal head position
// and identical to what an uninterrupted run would hold.
func saveTimedQueue(w *snapshot.Writer, q *timedQueue) {
	live := q.buf[q.head:]
	w.Len(len(live))
	for _, e := range live {
		w.U64(e.addr)
		w.I64(e.at)
	}
}

func loadTimedQueue(r *snapshot.Reader) timedQueue {
	n := r.Len(maxTransitQueue)
	if n == 0 {
		return timedQueue{}
	}
	q := make([]timedAddr, n)
	for i := range q {
		q[i].addr = r.U64()
		q[i].at = r.I64()
	}
	return timedQueue{buf: q}
}

// MeasurementStarted reports whether BeginMeasurement has been called —
// i.e. whether this system is inside its measurement window. A restored
// system resumes on the same side of the boundary as the original.
func (s *System) MeasurementStarted() bool { return s.snap.retired != nil }

// Checkpoint serializes the complete simulator state to w: cycle
// counters, every core (ROB, LSQ, MSHRs, caches, trace cursor), the
// transit queues, the memory controller (queues, DRAM timing, policy
// virtual clocks, wake lists, auditor), the metrics registry, and the
// epoch samplers. The format is versioned and self-describing; Restore
// with the same Config resumes bit-identically — cycle-for-cycle and
// byte-for-byte in every artifact — with an uninterrupted run.
//
// Systems with a streaming trace sink (Config.Trace) refuse to
// checkpoint: the events already written cannot be replayed into the
// resumed process's sink, so a resumed timeline would be silently
// truncated.
func (s *System) Checkpoint(w io.Writer) error {
	if s.cfg.Trace != nil {
		return fmt.Errorf("sim: cannot checkpoint with a streaming trace sink attached")
	}
	sw := snapshot.NewWriter(w)
	s.saveFingerprint(sw)
	sw.Section("sim.System")
	sw.I64(s.cycle)
	sw.I64(s.epochNext)
	for i := range s.cores {
		saveTimedQueue(sw, &s.fetchQ[i])
		saveTimedQueue(sw, &s.wbQ[i])
		saveTimedQueue(sw, &s.respQ[i])
	}
	sw.Bool(s.snap.retired != nil)
	if s.snap.retired != nil {
		sw.I64(s.snap.cycle)
		sw.I64s(s.snap.retired)
		sw.I64s(s.snap.stalls)
		sw.I64s(s.snap.readsDone)
		sw.I64s(s.snap.readLatSum)
		sw.I64s(s.snap.busCycles)
		sw.I64(s.snap.dataBusBusy)
		sw.I64(s.snap.bankBusy)
		sw.I64s(s.snap.rowHits)
		sw.I64s(s.snap.rowConf)
		sw.I64s(s.snap.rowClosed)
	}
	for _, c := range s.cores {
		c.SaveState(sw)
	}
	s.ctrl.SaveState(sw)
	sw.Bool(s.cfg.Metrics != nil)
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.SaveState(sw)
	}
	sw.Bool(s.sampler != nil)
	if s.sampler != nil {
		s.sampler.SaveState(sw)
		s.fair.SaveState(sw)
	}
	return sw.Flush()
}

// Restore constructs a fresh system from cfg and loads a snapshot
// written by Checkpoint into it. The snapshot's configuration
// fingerprint must match cfg; component geometry is additionally
// verified section by section. On any error the returned system is
// invalid and must be discarded.
//
// Restore never panics on hostile or corrupted input: all lengths are
// capped before allocation, all indices are validated before use, and a
// recover backstop converts anything residual into an error.
func Restore(cfg Config, rd io.Reader) (s *System, err error) {
	defer func() {
		if p := recover(); p != nil {
			s, err = nil, fmt.Errorf("sim: restore: corrupt snapshot: %v", p)
		}
	}()
	s, err = New(cfg)
	if err != nil {
		return nil, err
	}
	r, err := snapshot.NewReader(bufio.NewReader(rd))
	if err != nil {
		return nil, err
	}
	if err := s.checkFingerprint(r); err != nil {
		return nil, err
	}
	r.Section("sim.System")
	cycle := r.I64()
	epochNext := r.I64()
	fetchQ := make([]timedQueue, len(s.cores))
	wbQ := make([]timedQueue, len(s.cores))
	respQ := make([]timedQueue, len(s.cores))
	for i := range s.cores {
		fetchQ[i] = loadTimedQueue(r)
		wbQ[i] = loadTimedQueue(r)
		respQ[i] = loadTimedQueue(r)
	}
	measuring := r.Bool()
	var snap baselineState
	if measuring {
		n := len(s.cores)
		snap.cycle = r.I64()
		snap.retired = r.I64s(n)
		snap.stalls = r.I64s(n)
		snap.readsDone = r.I64s(n)
		snap.readLatSum = r.I64s(n)
		snap.busCycles = r.I64s(n)
		snap.dataBusBusy = r.I64()
		snap.bankBusy = r.I64()
		snap.rowHits = r.I64s(n)
		snap.rowConf = r.I64s(n)
		snap.rowClosed = r.I64s(n)
		if r.Err() == nil && (len(snap.retired) != n || len(snap.stalls) != n ||
			len(snap.readsDone) != n || len(snap.readLatSum) != n || len(snap.busCycles) != n ||
			len(snap.rowHits) != n || len(snap.rowConf) != n || len(snap.rowClosed) != n) {
			r.Fail("sim.System: measurement baseline does not cover %d cores", n)
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	for _, c := range s.cores {
		if err := c.LoadState(r); err != nil {
			return nil, err
		}
	}
	if err := s.ctrl.LoadState(r); err != nil {
		return nil, err
	}
	hasMetrics := r.Bool()
	if r.Err() == nil && hasMetrics != (s.cfg.Metrics != nil) {
		r.Fail("sim.System: snapshot metrics flag %v, config registry %v", hasMetrics, s.cfg.Metrics != nil)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if hasMetrics {
		if err := s.cfg.Metrics.LoadState(r); err != nil {
			return nil, err
		}
	}
	hasSampler := r.Bool()
	if r.Err() == nil && hasSampler != (s.sampler != nil) {
		r.Fail("sim.System: snapshot sampler flag %v, config sampling %v", hasSampler, s.sampler != nil)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if hasSampler {
		if err := s.sampler.LoadState(r); err != nil {
			return nil, err
		}
		if err := s.fair.LoadState(r); err != nil {
			return nil, err
		}
	}
	s.cycle = cycle
	s.epochNext = epochNext
	copy(s.fetchQ, fetchQ)
	copy(s.wbQ, wbQ)
	copy(s.respQ, respQ)
	if measuring {
		s.snap = baseline(snap)
	}
	return s, nil
}

// baselineState mirrors baseline so Restore can stage the decoded
// measurement baseline before committing it.
type baselineState baseline

// CheckpointFile writes a checkpoint atomically: to a temporary file in
// the same directory, then renamed over path, so a crash mid-write never
// leaves a truncated snapshot where a resumable one is expected.
func (s *System) CheckpointFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := s.Checkpoint(bw); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// RestoreFile restores a system from a checkpoint file written by
// CheckpointFile.
func RestoreFile(cfg Config, path string) (*System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Restore(cfg, f)
}
