package sim

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

// fuzzConfig is the fixed configuration hostile snapshots are restored
// under. Sampling and audit are enabled so the fuzzer reaches every
// decode path, including the auditor's pointer re-linking.
func fuzzConfig(t testing.TB) Config {
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Workload:       []trace.Profile{art, vpr},
		Policy:         FQVFTF,
		Seed:           5,
		Audit:          true,
		SampleInterval: 1_000,
	}
}

// validSnapshot produces a well-formed checkpoint for seeding.
func validSnapshot(t testing.TB) []byte {
	cfg := fuzzConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(3_000)
	s.BeginMeasurement()
	s.Step(2_001)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzRestoreSnapshot feeds Restore hostile bytes: truncations,
// bit flips, and arbitrary garbage. The contract is that Restore
// returns an error for anything that is not a faithful snapshot — it
// must never panic, hang, or allocate unboundedly. Length caps bound
// every allocation before it happens, every index is validated before
// use, and the recover backstop converts anything residual into an
// error.
func FuzzRestoreSnapshot(f *testing.F) {
	valid := validSnapshot(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("FQMSSNAP"))
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:16])
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// A few deterministic bit flips through the header, fingerprint,
	// and body regions.
	for _, off := range []int{0, 8, 12, 40, 100, len(valid) / 2, len(valid) - 1} {
		if off >= 0 && off < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 0x40
			f.Add(mut)
		}
	}
	cfg := fuzzConfig(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Restore(cfg, bytes.NewReader(data))
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("nil system with nil error")
		}
		// A mutation can corrupt merely-stored values (counters,
		// timestamps) without tripping a structural check; Restore
		// accepting those is fine. Stepping such a system may trip the
		// runtime auditor, which panics with a diagnostic dump by
		// design — that is the corruption being *caught*, so it is
		// tolerated here. Only Restore itself must never panic.
		func() {
			defer func() { recover() }()
			s.Step(10)
		}()
	})
}

// TestRestoreHostileInputs runs the fuzz corpus shapes as a plain test
// so the guarantees hold in ordinary `go test` runs too.
func TestRestoreHostileInputs(t *testing.T) {
	valid := validSnapshot(t)
	cfg := fuzzConfig(t)
	cases := [][]byte{
		{},
		[]byte("not a snapshot at all"),
		[]byte("FQMSSNAP"),
		bytes.Repeat([]byte{0x00}, 256),
		bytes.Repeat([]byte{0xff}, 256),
	}
	for i := 1; i < len(valid); i += len(valid)/97 + 1 {
		cases = append(cases, valid[:i])
	}
	for off := 0; off < len(valid); off += len(valid)/211 + 1 {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x04
		cases = append(cases, mut)
	}
	for i, data := range cases {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("case %d: Restore panicked: %v", i, p)
				}
			}()
			s, err := Restore(cfg, bytes.NewReader(data))
			if err == nil && s != nil {
				// Stepping may trip the runtime auditor on corrupted
				// counters — a deliberate diagnostic panic, tolerated
				// (see FuzzRestoreSnapshot).
				func() {
					defer func() { recover() }()
					s.Step(10)
				}()
			}
		}()
	}
}
