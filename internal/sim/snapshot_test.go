package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// runState is everything observable about a finished run: the Result,
// the controller fingerprint, the epoch series, and the complete
// process state (the final checkpoint bytes). Two runs are equivalent
// exactly when their runStates are equal.
type runState struct {
	Result  Result
	Ctrl    controllerFingerprint
	Epochs  []metrics.Sample
	Fair    []memctrl.FairnessSample
	ckpt    []byte // excluded from JSON artifacts
	ckptLen int
}

func captureRun(t *testing.T, s *System) runState {
	t.Helper()
	st := runState{
		Result: s.Results(),
		Ctrl: controllerFingerprint{
			VClock: s.Controller().VClock(),
		},
	}
	for k := 0; k < 6; k++ {
		st.Ctrl.Commands[k] = s.Controller().CommandCount(dram.Kind(k))
	}
	if s.Sampler() != nil {
		st.Epochs = s.Sampler().Samples(-1)
		st.Fair = s.Fairness().Samples(-1)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	st.ckpt = buf.Bytes()
	st.ckptLen = buf.Len()
	return st
}

// dumpArtifact writes got/want JSON next to the test data so a CI
// failure leaves something inspectable to download.
func dumpArtifact(t *testing.T, name string, got, want runState) {
	t.Helper()
	dir := filepath.Join("testdata")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	for _, f := range []struct {
		suffix string
		v      runState
	}{{"got", got}, {"want", want}} {
		b, err := json.MarshalIndent(f.v, "", "  ")
		if err != nil {
			t.Logf("artifact marshal: %v", err)
			return
		}
		p := filepath.Join(dir, fmt.Sprintf("%s.%s.json", name, f.suffix))
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Logf("artifact write: %v", err)
		} else {
			t.Logf("wrote %s", p)
		}
	}
}

func compareRuns(t *testing.T, name string, got, want runState) {
	t.Helper()
	bad := false
	if !reflect.DeepEqual(got.Result, want.Result) {
		t.Errorf("Result diverged\n got: %+v\nwant: %+v", got.Result, want.Result)
		bad = true
	}
	if got.Ctrl != want.Ctrl {
		t.Errorf("controller fingerprint diverged\n got: %+v\nwant: %+v", got.Ctrl, want.Ctrl)
		bad = true
	}
	if !reflect.DeepEqual(got.Epochs, want.Epochs) {
		t.Errorf("epoch sample series diverged (%d vs %d samples)", len(got.Epochs), len(want.Epochs))
		bad = true
	}
	if !reflect.DeepEqual(got.Fair, want.Fair) {
		t.Errorf("fairness series diverged (%d vs %d samples)", len(got.Fair), len(want.Fair))
		bad = true
	}
	if !bytes.Equal(got.ckpt, want.ckpt) {
		i := 0
		for i < len(got.ckpt) && i < len(want.ckpt) && got.ckpt[i] == want.ckpt[i] {
			i++
		}
		t.Errorf("final process state diverged: checkpoint bytes differ at offset %d (%d vs %d bytes)",
			i, len(got.ckpt), len(want.ckpt))
		bad = true
	}
	if bad {
		dumpArtifact(t, name, got, want)
	}
}

// TestCheckpointRestoreBitIdentical is the tentpole's contract: run
// N+M cycles straight, versus run N, checkpoint, restore into a fresh
// system (standing in for a fresh process), and run M — across the full
// {policy} x {fast, strict} x {audit} x {sampler} matrix. Every
// observable — Result, virtual clock, command counts, epoch and
// fairness series, and the complete final process state — must be
// bit-identical. The checkpoint lands at an odd cycle inside the
// measurement window, so it cuts skip-ahead spans and a live
// measurement baseline, not just quiescent boundaries.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	policies := []struct {
		name    string
		factory PolicyFactory
	}{
		{"FCFS", FCFS},
		{"FR-FCFS", FRFCFS},
		{"FR-VFTF", FRVFTF},
		{"FQ-VFTF", FQVFTF},
		{"FR-VSTF", FRVSTF},
		{"BLISS", BLISS},
		{"SLOW-FAIR", SLOWFAIR},
		{"BANK-BW", BANKBW},
	}
	const warmup, preCk, postCk = 2_000, 3_001, 4_999
	for _, p := range policies {
		for _, strict := range []bool{false, true} {
			for _, auditOn := range []bool{false, true} {
				for _, sample := range []int64{0, 1_000} {
					p, strict, auditOn, sample := p, strict, auditOn, sample
					name := fmt.Sprintf("%s/strict=%v/audit=%v/sample=%d", p.name, strict, auditOn, sample)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						if testing.Short() && (strict || !auditOn || sample == 0) {
							t.Skip("full matrix is slow; -short runs fast+audit+sampler cells only")
						}
						cfg := Config{
							Workload:       []trace.Profile{art, vpr},
							Policy:         p.factory,
							Seed:           23,
							Strict:         strict,
							Audit:          auditOn,
							SampleInterval: sample,
						}

						// Uninterrupted reference run.
						ref, err := New(cfg)
						if err != nil {
							t.Fatal(err)
						}
						ref.Step(warmup)
						ref.BeginMeasurement()
						ref.Step(preCk + postCk)
						ref.FinishAudit()
						want := captureRun(t, ref)

						// Interrupted run: checkpoint mid-window, restore
						// into a fresh system, finish there.
						first, err := New(cfg)
						if err != nil {
							t.Fatal(err)
						}
						first.Step(warmup)
						first.BeginMeasurement()
						first.Step(preCk)
						var buf bytes.Buffer
						if err := first.Checkpoint(&buf); err != nil {
							t.Fatalf("checkpoint: %v", err)
						}
						saved := buf.Bytes()

						resumed, err := Restore(cfg, bytes.NewReader(saved))
						if err != nil {
							t.Fatalf("restore: %v", err)
						}
						if !resumed.MeasurementStarted() {
							t.Fatal("restored system lost its measurement baseline")
						}
						if resumed.Cycle() != warmup+preCk {
							t.Fatalf("restored at cycle %d, want %d", resumed.Cycle(), warmup+preCk)
						}

						// Re-checkpointing the restored system must
						// reproduce the snapshot byte for byte: restore
						// loses nothing.
						var buf2 bytes.Buffer
						if err := resumed.Checkpoint(&buf2); err != nil {
							t.Fatalf("re-checkpoint: %v", err)
						}
						if !bytes.Equal(saved, buf2.Bytes()) {
							i := 0
							b2 := buf2.Bytes()
							for i < len(saved) && i < len(b2) && saved[i] == b2[i] {
								i++
							}
							t.Fatalf("re-checkpoint of restored system differs at offset %d (%d vs %d bytes)",
								i, len(saved), len(b2))
						}

						resumed.Step(postCk)
						resumed.FinishAudit()
						got := captureRun(t, resumed)
						compareRuns(t, "snapshot-"+p.name+sanitize(name), got, want)
					})
				}
			}
		}
	}
}

func sanitize(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch c {
		case '/', '=', ' ':
			b[i] = '_'
		}
	}
	return string(b)
}

// TestCheckpointInsideRefreshWindow checkpoints while channel 0 is mid
// refresh — the one span where the virtual clock is paused and the
// controller's wake state points at the refresh end — and requires the
// resumed run to remain bit-identical.
func TestCheckpointInsideRefreshWindow(t *testing.T) {
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workload:       []trace.Profile{art, vpr},
		Policy:         FQVFTF,
		Seed:           17,
		Audit:          true,
		SampleInterval: 1_000,
	}
	cfg.Mem.DRAM = dram.DefaultConfig()
	cfg.Mem.DRAM.Timing.TREF = 7_000

	stepIntoRefresh := func(s *System) {
		t.Helper()
		for i := 0; i < 30_000; i++ {
			s.Step(1)
			if s.Controller().Channel().InRefresh(s.Cycle()) {
				return
			}
		}
		t.Fatal("no refresh window reached")
	}

	const tail = 9_000

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Step(2_000)
	ref.BeginMeasurement()
	stepIntoRefresh(ref)
	ckCycle := ref.Cycle()
	ref.Step(tail)
	ref.FinishAudit()
	want := captureRun(t, ref)

	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first.Step(2_000)
	first.BeginMeasurement()
	stepIntoRefresh(first)
	if first.Cycle() != ckCycle {
		t.Fatalf("refresh reached at cycle %d, reference at %d", first.Cycle(), ckCycle)
	}
	if !first.Controller().Channel().InRefresh(first.Cycle()) {
		t.Fatal("not in refresh at checkpoint cycle")
	}
	var buf bytes.Buffer
	if err := first.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := Restore(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Controller().Channel().InRefresh(resumed.Cycle()) {
		t.Fatal("restored system is not mid-refresh")
	}
	resumed.Step(tail)
	resumed.FinishAudit()
	got := captureRun(t, resumed)
	compareRuns(t, "snapshot-refresh-window", got, want)
}

// TestCheckpointFileRoundTrip exercises the atomic file helpers.
func TestCheckpointFileRoundTrip(t *testing.T) {
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workload: []trace.Profile{art, art}, Policy: FQVFTF, Seed: 3}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(5_000)
	path := filepath.Join(t.TempDir(), "sim.ckpt")
	if err := s.CheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreFile(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycle() != s.Cycle() {
		t.Fatalf("restored cycle %d, want %d", r.Cycle(), s.Cycle())
	}
	var a, b bytes.Buffer
	if err := s.Checkpoint(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkpoint(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("file round trip lost state")
	}
}

// TestRestoreConfigMismatch: a snapshot restored under any different
// configuration must fail with an error, not silently resume a
// different experiment.
func TestRestoreConfigMismatch(t *testing.T) {
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Workload:       []trace.Profile{art, vpr},
		Policy:         FQVFTF,
		Seed:           11,
		SampleInterval: 1_000,
	}
	s, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(4_000)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	mutations := map[string]func(*Config){
		"policy":   func(c *Config) { c.Policy = FRFCFS },
		"seed":     func(c *Config) { c.Seed = 12 },
		"strict":   func(c *Config) { c.Strict = true },
		"audit":    func(c *Config) { c.Audit = true },
		"sampling": func(c *Config) { c.SampleInterval = 0 },
		"interval": func(c *Config) { c.SampleInterval = 2_000 },
		"workload": func(c *Config) { c.Workload = []trace.Profile{vpr, art} },
		"cores":    func(c *Config) { c.Workload = []trace.Profile{art, vpr, art} },
		"transit":  func(c *Config) { c.ReqTransit = 20 },
		"geometry": func(c *Config) { c.Mem = memctrl.DefaultConfig(2); c.Mem.Channels = 2 },
	}
	for name, mutate := range mutations {
		name, mutate := name, mutate
		t.Run(name, func(t *testing.T) {
			cfg := base
			mutate(&cfg)
			if _, err := Restore(cfg, bytes.NewReader(snap)); err == nil {
				t.Fatalf("restore under mutated config %q succeeded; want error", name)
			}
		})
	}

	// The unmutated config still restores.
	if _, err := Restore(base, bytes.NewReader(snap)); err != nil {
		t.Fatalf("restore under original config failed: %v", err)
	}
}

// TestCheckpointRefusesTraceSink: a streaming trace sink cannot be
// resumed, so Checkpoint must refuse rather than write a snapshot that
// silently truncates the timeline.
func TestCheckpointRefusesTraceSink(t *testing.T) {
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	tw := metrics.NewTraceWriter(&sink)
	cfg := Config{Workload: []trace.Profile{art}, Trace: tw}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(1_000)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err == nil {
		t.Fatal("checkpoint with a trace sink succeeded; want error")
	}
}
