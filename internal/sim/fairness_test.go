package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/memctrl"
	"repro/internal/trace"
)

// TestFairnessSeriesBoundedVsDrift is the fairness-over-time acceptance
// test: on the paper's headline co-run (vpr sharing the memory system
// with the bandwidth hog art, equal shares), the epoch time series must
// show FQ-VFTF holding vpr's service share near its entitlement while
// FR-FCFS lets art starve it progressively harder.
//
// The simulator is deterministic for a fixed seed, so the margins below
// are derived from measured values with generous slack rather than
// guessed: at seed 5 over the QuickConfig window, vpr's cumulative
// backlogged shortfall is ~39.2k data-bus cycles under FR-FCFS versus
// ~26.0k under FQ-VFTF (1.51x), its worst single epoch 4190 vs 3028,
// and its mean service share over the last five epochs 0.058 vs 0.158.
func TestFairnessSeriesBoundedVsDrift(t *testing.T) {
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	const (
		warmup   = 20_000
		window   = 120_000
		interval = 10_000
		vprT     = 0 // thread index of the subject
	)
	run := func(policy PolicyFactory) (memctrl.FairnessSummary, []memctrl.FairnessSample) {
		s, _, err := RunSystem(Config{
			Workload:       []trace.Profile{vpr, art},
			Policy:         policy,
			Seed:           5,
			SampleInterval: interval,
		}, warmup, window)
		if err != nil {
			t.Fatal(err)
		}
		return s.Fairness().Summary(), s.Fairness().Samples(-1)
	}
	fqSum, fqSamples := run(FQVFTF)
	frSum, frSamples := run(FRFCFS)

	wantEpochs := (warmup+window)/interval + 1
	if len(fqSamples) != wantEpochs || len(frSamples) != wantEpochs {
		t.Fatalf("epoch counts %d/%d, want %d", len(fqSamples), len(frSamples), wantEpochs)
	}

	// The hog is never shortchanged under either policy.
	if frSum.CumShortfall[1] != 0 || fqSum.CumShortfall[1] != 0 {
		t.Errorf("the bandwidth hog accumulated shortfall: FR-FCFS %.0f, FQ-VFTF %.0f",
			frSum.CumShortfall[1], fqSum.CumShortfall[1])
	}

	// Headline: FR-FCFS drifts — vpr's cumulative backlogged shortfall
	// substantially exceeds FQ-VFTF's over the same window.
	fq, fr := fqSum.CumShortfall[vprT], frSum.CumShortfall[vprT]
	if fq <= 0 || fr <= 0 {
		t.Fatalf("expected nonzero shortfall for the subject thread, got FQ=%.0f FR=%.0f", fq, fr)
	}
	if fr < 1.25*fq {
		t.Errorf("FR-FCFS shortfall %.0f not clearly above FQ-VFTF's %.0f (want >= 1.25x)", fr, fq)
	}

	// FQ also bounds the worst single epoch below FR-FCFS's.
	if fqSum.MaxEpochShortfall[vprT] >= frSum.MaxEpochShortfall[vprT] {
		t.Errorf("FQ-VFTF worst epoch shortfall %.0f not below FR-FCFS's %.0f",
			fqSum.MaxEpochShortfall[vprT], frSum.MaxEpochShortfall[vprT])
	}

	// End-of-window service share: by the last five epochs FR-FCFS has
	// starved vpr well below the share FQ-VFTF still delivers.
	tail := func(samples []memctrl.FairnessSample) float64 {
		var sum float64
		for _, sm := range samples[len(samples)-5:] {
			sum += sm.Share[vprT]
		}
		return sum / 5
	}
	if got := tail(frSamples); got >= 0.10 {
		t.Errorf("FR-FCFS tail share %.3f for vpr, expected starvation below 0.10", got)
	}
	if got := tail(fqSamples); got <= 0.12 {
		t.Errorf("FQ-VFTF tail share %.3f for vpr, expected sustained service above 0.12", got)
	}

	// The series itself is well-formed: cumulative shortfall is
	// monotone and matches the summary's total.
	for name, samples := range map[string][]memctrl.FairnessSample{"FQ-VFTF": fqSamples, "FR-FCFS": frSamples} {
		var prev float64
		for i, sm := range samples {
			if sm.CumShortfall[vprT] < prev {
				t.Errorf("%s: cumulative shortfall decreased at epoch %d", name, i)
			}
			prev = sm.CumShortfall[vprT]
		}
	}
	if last := fqSamples[len(fqSamples)-1].CumShortfall[vprT]; last != fq {
		t.Errorf("FQ-VFTF last sample cum shortfall %.0f != summary %.0f", last, fq)
	}
}

// TestFairnessPhiFallbackPerEpoch pins the monitor's phi sourcing: it
// must re-resolve the allocated share at every epoch boundary, not
// cache it at construction. For a shareless policy (BLISS) that means
// the 1/N fallback on every sample and SetShare reporting unsupported;
// for a share-carrying policy a mid-run SetShare must show up in every
// later sample's Phi while earlier samples keep the old value.
func TestFairnessPhiFallbackPerEpoch(t *testing.T) {
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	const interval = 5_000

	// Shareless policy: phi falls back to 1/N on every epoch.
	s, err := New(Config{
		Workload:       []trace.Profile{art, vpr},
		Policy:         BLISS,
		Seed:           3,
		SampleInterval: interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.SetShare(0, core.Share{Num: 3, Den: 4}) {
		t.Fatal("SetShare on a shareless policy reported support")
	}
	s.Step(4 * interval)
	samples := s.Fairness().Samples(-1)
	if len(samples) == 0 {
		t.Fatal("no fairness samples taken")
	}
	for _, sm := range samples {
		for th, phi := range sm.Phi {
			if phi != 0.5 {
				t.Fatalf("epoch %d thread %d phi = %v, want the 1/N fallback 0.5", sm.Epoch, th, phi)
			}
		}
	}

	// Share-carrying policy: a mid-run reassignment moves phi in every
	// later epoch.
	s, err = New(Config{
		Workload:       []trace.Profile{art, vpr},
		Policy:         FQVFTF,
		Seed:           3,
		SampleInterval: interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Step(2 * interval)
	reassignedAt := s.Cycle()
	if !s.SetShare(0, core.Share{Num: 3, Den: 4}) || !s.SetShare(1, core.Share{Num: 1, Den: 4}) {
		t.Fatal("SetShare on FQ-VFTF reported unsupported")
	}
	s.Step(3 * interval)
	for _, sm := range s.Fairness().Samples(-1) {
		want := 0.5
		if sm.Cycle > reassignedAt {
			want = 0.75
		}
		if math.Abs(sm.Phi[0]-want) > 1e-12 {
			t.Fatalf("epoch %d (cycle %d) thread 0 phi = %v, want %v", sm.Epoch, sm.Cycle, sm.Phi[0], want)
		}
	}
}
