package sim

import (
	"testing"

	"repro/internal/trace"
)

// TestCalibrationReport prints the solo data-bus utilization and IPC of
// every suite benchmark under FR-FCFS (the paper's Figure 4 input). Run
// with -v to see the table; the test itself only checks the ordering is
// monotone enough to reproduce the figure (each benchmark within a
// tolerance band of the profile's documented target).
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	prev := 2.0
	for _, p := range trace.Suite() {
		res, err := Run(Config{
			Workload: []trace.Profile{p},
			Policy:   FRFCFS,
		}, 50_000, 400_000)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		tr := res.Threads[0]
		t.Logf("%-9s util=%.3f (target %.3f) ipc=%.3f readLat=%.0f rowHit=%.2f reads=%d",
			p.Name, tr.BusUtil, p.SoloUtilTarget, tr.IPC, tr.AvgReadLatency, tr.RowHitRate, tr.ReadsDone)
		if tr.BusUtil > prev+0.06 {
			t.Errorf("%s: solo utilization %.3f breaks Figure 4 ordering (previous %.3f)", p.Name, tr.BusUtil, prev)
		}
		prev = tr.BusUtil
	}
}
