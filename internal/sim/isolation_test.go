package sim

import (
	"sync"
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/trace"
)

// The adversarial isolation property suite. For every antagonist
// profile, a latency-sensitive victim (vpr) shares the memory system
// with the attacker under equal φ-shares. The paper's §5 bound says a
// thread that stays within its share is isolated: under FQ-VFTF its
// slowdown relative to the private-φ system (the same victim alone on
// memory scaled to its share, dram Scale(2)) must not exceed 1. The
// same mix under FR-FCFS must degrade by at least a pinned factor —
// otherwise the antagonist is not actually antagonistic and the
// property is vacuous — and BLISS must land strictly between the two.
// PR 9's interference cube closes the loop: the stolen cycles must be
// attributed to the attacker, for the causes the attack targets.

const (
	isoWarmup = 20_000
	isoWindow = 120_000
)

// isoDrift pins, per attacker, the minimum FR-FCFS vs FQ-VFTF slowdown
// ratio. Measured drifts are {rowthrash 1.53, bankhammer 2.65, bushog
// 1.86, stream 2.47, diurnal 2.28}; the pins leave headroom for timing
// refinements while still failing if isolation quietly erodes.
var isoDrift = map[string]float64{
	"rowthrash":  1.3,
	"bankhammer": 2.0,
	"bushog":     1.5,
	"stream":     2.0,
	"diurnal":    1.8,
}

// privateBaselineIPC runs the victim alone on the private-φ memory
// system (half-speed DRAM = its 1/2 share of the shared system), once,
// shared across all isolation subtests.
var privateBaselineIPC = sync.OnceValue(func() float64 {
	vpr, err := trace.ByName("vpr")
	if err != nil {
		panic(err)
	}
	cfg := Config{Workload: []trace.Profile{vpr}}
	cfg.Mem.DRAM = dram.DefaultConfig()
	cfg.Mem.DRAM.Timing = dram.DDR2800().Scale(2)
	res, err := Run(cfg, isoWarmup, isoWindow)
	if err != nil {
		panic(err)
	}
	return res.Threads[0].IPC
})

// isoRun simulates victim+attacker under the named policy with
// attribution on and returns the victim slowdown vs the private-φ
// baseline plus the interference snapshot.
func isoRun(t *testing.T, attacker, policy string) (float64, memctrl.InterferenceSnapshot) {
	t.Helper()
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	atk, err := trace.ByName(attacker)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := PolicyByName(policy)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workload:     []trace.Profile{vpr, atk},
		Policy:       pol,
		Interference: true,
	}
	s, res, err := RunSystem(cfg, isoWarmup, isoWindow)
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := s.Interference()
	if !ok {
		t.Fatal("interference attribution not enabled")
	}
	if res.Threads[0].IPC <= 0 {
		t.Fatalf("victim IPC %.4f under %s vs %s", res.Threads[0].IPC, policy, attacker)
	}
	return privateBaselineIPC() / res.Threads[0].IPC, snap
}

func causeIndex(t *testing.T, name string) int {
	t.Helper()
	for i, c := range memctrl.InterferenceCauses() {
		if c == name {
			return i
		}
	}
	t.Fatalf("no interference cause %q", name)
	return -1
}

func sum(row []int64) int64 {
	var s int64
	for _, v := range row {
		s += v
	}
	return s
}

// TestIsolationBound is the headline property: per antagonist, FQ-VFTF
// holds the victim at or under its private-φ performance while FR-FCFS
// hands the attacker a pinned slowdown factor and BLISS sits between.
func TestIsolationBound(t *testing.T) {
	if testing.Short() {
		t.Skip("isolation sweep is slow")
	}
	for _, attacker := range trace.AntagonistNames() {
		attacker := attacker
		t.Run(attacker, func(t *testing.T) {
			t.Parallel()
			sdFQ, _ := isoRun(t, attacker, "FQ-VFTF")
			sdFR, _ := isoRun(t, attacker, "FR-FCFS")
			sdBL, _ := isoRun(t, attacker, "BLISS")

			// The §5 bound: a within-share victim never runs slower than
			// its private-φ system. (Measured FQ slowdowns are 0.72–0.85:
			// the shared system's excess capacity is a bonus, the bound
			// is the contract.)
			if sdFQ > 1.0 {
				t.Errorf("FQ-VFTF victim slowdown %.3f exceeds the private-φ bound 1.0", sdFQ)
			}
			// FR-FCFS must actually be hurt by the attack, by the pinned
			// drift factor relative to FQ-VFTF.
			drift := sdFR / sdFQ
			if min := isoDrift[attacker]; drift < min {
				t.Errorf("FR-FCFS/FQ-VFTF slowdown drift %.2f below pinned %.2f (FR %.3f, FQ %.3f): the antagonist is not antagonistic",
					drift, min, sdFR, sdFQ)
			}
			// BLISS mitigates relative to FR-FCFS but does not reach the
			// fair-queuing bound.
			if sdBL >= sdFR {
				t.Errorf("BLISS slowdown %.3f not better than FR-FCFS %.3f", sdBL, sdFR)
			}
		})
	}
}

// TestIsolationAttribution closes the loop with the interference cube:
// under FR-FCFS the victim's stolen cycles must be charged to the
// attacker — more than to itself, more than to the no-aggressor
// bucket, and several times what FQ-VFTF lets the attacker steal — and
// the cause breakdown must match each attack's mechanism.
func TestIsolationAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("isolation sweep is slow")
	}
	bankOther := causeIndex(t, "bank_other")
	bus := causeIndex(t, "bus")
	for _, attacker := range trace.AntagonistNames() {
		attacker := attacker
		t.Run(attacker, func(t *testing.T) {
			t.Parallel()
			_, fq := isoRun(t, attacker, "FQ-VFTF")
			_, fr := isoRun(t, attacker, "FR-FCFS")

			const victim, agg, none = 0, 1, 2
			stolen := fr.Matrix[victim][agg]
			if stolen <= fr.Matrix[victim][victim] {
				t.Errorf("FR-FCFS charged the victim to itself (%d) more than to the attacker (%d)",
					fr.Matrix[victim][victim], stolen)
			}
			if stolen <= fr.Matrix[victim][none] {
				t.Errorf("FR-FCFS charged no-aggressor (%d) more than the attacker (%d)",
					fr.Matrix[victim][none], stolen)
			}
			// FQ-VFTF caps what the attacker can steal; measured ratios
			// are 4.3x–14x, pinned at 3x.
			if fqStolen := fq.Matrix[victim][agg]; stolen < 3*fqStolen {
				t.Errorf("FR-FCFS attacker-attributed cycles %d not >= 3x FQ-VFTF's %d", stolen, fqStolen)
			}
			// Cause shape: every antagonist works through bank conflicts
			// and bus occupancy (measured together >= 82%% of the cell).
			cell := fr.Cube[victim][agg]
			if total := sum(cell); total > 0 {
				if share := float64(cell[bankOther]+cell[bus]) / float64(total); share < 0.70 {
					t.Errorf("bank_other+bus are %.0f%% of the attacker's cell, want >= 70%% (cube %v, causes %v)",
						100*share, cell, fr.Causes)
				}
			} else {
				t.Error("empty attacker attribution cell under FR-FCFS")
			}
			if attacker == "bankhammer" {
				// The bank attack specifically: conflicts on the victim's
				// banks dominate (measured 89%).
				if share := float64(cell[bankOther]) / float64(sum(cell)); share < 0.60 {
					t.Errorf("bankhammer bank_other share %.0f%%, want >= 60%%", 100*share)
				}
			}
		})
	}
}
