package sim

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/trace"
)

// TestParallelEquivalence is the parallel tentpole's oracle: intra-run
// parallel mode (sharded per-channel scheduling plus concurrent core
// stepping, merged deterministically) must reproduce serial mode bit
// for bit. Each of the five policies runs a 2-channel art+vpr mix with
// the invariant auditor and epoch sampling enabled, through dozens of
// short refresh windows, checkpointing once mid-refresh and once at the
// end: Results, controller fingerprints, and both checkpoints' raw
// bytes must match exactly.
func TestParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is slow")
	}
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	policies := []struct {
		name    string
		factory PolicyFactory
	}{
		{"FCFS", FCFS},
		{"FR-FCFS", FRFCFS},
		{"FR-VFTF", FRVFTF},
		{"FQ-VFTF", FQVFTF},
		{"FR-VSTF", FRVSTF},
		{"BLISS", BLISS},
		{"SLOW-FAIR", SLOWFAIR},
		{"BANK-BW", BANKBW},
	}
	for _, p := range policies {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			run := func(workers int) (Result, controllerFingerprint, []byte, []byte) {
				cfg := Config{
					Workload:       []trace.Profile{art, vpr},
					Policy:         p.factory,
					Seed:           23,
					Audit:          true,
					SampleInterval: 5_000,
					Workers:        workers,
				}
				cfg.Mem.Channels = 2
				cfg.Mem.DRAM = dram.DefaultConfig()
				cfg.Mem.DRAM.Timing.TREF = 7_000
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				if workers > 1 && s.pool == nil {
					t.Fatal("parallel path not engaged: pool degraded to serial")
				}
				s.Step(20_000)
				// Hunt for a cycle with a refresh actually in progress so
				// the mid-run checkpoint covers paused-vclock state.
				inRefresh := false
				for i := 0; i < 30_000; i++ {
					s.Step(1)
					if s.Controller().Channel().InRefresh(s.Cycle()) {
						inRefresh = true
						break
					}
				}
				if !inRefresh {
					t.Fatal("no refresh window reached")
				}
				var mid bytes.Buffer
				if err := s.Checkpoint(&mid); err != nil {
					t.Fatal(err)
				}
				s.BeginMeasurement()
				s.Step(80_000)
				s.FinishAudit()
				var end bytes.Buffer
				if err := s.Checkpoint(&end); err != nil {
					t.Fatal(err)
				}
				ctrl := s.Controller()
				fp := controllerFingerprint{VClock: ctrl.VClock()}
				for k := dram.KindActivate; k <= dram.KindRefresh; k++ {
					fp.Commands[k] = ctrl.CommandCount(k)
				}
				return s.Results(), fp, mid.Bytes(), end.Bytes()
			}
			serRes, serFP, serMid, serEnd := run(0)
			parRes, parFP, parMid, parEnd := run(4)
			if !reflect.DeepEqual(serRes, parRes) {
				t.Errorf("Result diverges:\n serial:   %+v\n parallel: %+v", serRes, parRes)
			}
			if serFP != parFP {
				t.Errorf("controller state diverges:\n serial:   %+v\n parallel: %+v", serFP, parFP)
			}
			if !bytes.Equal(serMid, parMid) {
				t.Errorf("mid-refresh checkpoint bytes diverge (%d vs %d bytes)", len(serMid), len(parMid))
			}
			if !bytes.Equal(serEnd, parEnd) {
				t.Errorf("final checkpoint bytes diverge (%d vs %d bytes)", len(serEnd), len(parEnd))
			}
			if serFP.Commands[dram.KindRefresh] < 10 {
				t.Errorf("run crossed only %d refresh windows, want many", serFP.Commands[dram.KindRefresh])
			}
		})
	}
}

// TestParallelEquivalenceChannels sweeps channel counts (including the
// single-channel degenerate case, where the parallel path's merge has
// nothing to reorder) and a mid-run share reassignment under the full
// FQ scheduler, checking Results and virtual clocks against serial.
func TestParallelEquivalenceChannels(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is slow")
	}
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	for _, channels := range []int{1, 2, 4} {
		run := func(workers int) (Result, int64) {
			cfg := Config{
				Workload: []trace.Profile{art, vpr},
				Policy:   FQVFTF,
				Seed:     29,
				Workers:  workers,
			}
			cfg.Mem.Channels = channels
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if workers > 1 && s.pool == nil {
				t.Fatal("parallel path not engaged: pool degraded to serial")
			}
			s.Step(30_000)
			s.SetShare(0, core.Share{Num: 3, Den: 4})
			s.SetShare(1, core.Share{Num: 1, Den: 4})
			s.BeginMeasurement()
			s.Step(100_000)
			return s.Results(), s.Controller().VClock()
		}
		serRes, serV := run(0)
		parRes, parV := run(4)
		if !reflect.DeepEqual(serRes, parRes) {
			t.Errorf("channels=%d: Result diverges:\n serial:   %+v\n parallel: %+v", channels, serRes, parRes)
		}
		if serV != parV {
			t.Errorf("channels=%d: vclock diverges: serial %d parallel %d", channels, serV, parV)
		}
	}
}

// TestParallelRestoreFromSerialCheckpoint proves serial and parallel
// systems are checkpoint-interchangeable: a checkpoint taken by a
// serial run restores into a parallel system (and vice versa), and both
// resumed runs finish bit-identically.
func TestParallelRestoreFromSerialCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is slow")
	}
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workload: []trace.Profile{art, vpr},
		Policy:   FQVFTF,
		Seed:     31,
	}
	cfg.Mem.Channels = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Step(60_000)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	finish := func(sys *System) (Result, int64) {
		defer sys.Close()
		sys.BeginMeasurement()
		sys.Step(60_000)
		return sys.Results(), sys.Controller().VClock()
	}
	serCfg := cfg
	parCfg := cfg
	parCfg.Workers = 4
	serSys, err := Restore(serCfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	parSys, err := Restore(parCfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if parSys.pool == nil {
		t.Fatal("parallel path not engaged: pool degraded to serial")
	}
	serRes, serV := finish(serSys)
	parRes, parV := finish(parSys)
	if !reflect.DeepEqual(serRes, parRes) {
		t.Errorf("Result diverges:\n serial:   %+v\n parallel: %+v", serRes, parRes)
	}
	if serV != parV {
		t.Errorf("vclock diverges: serial %d parallel %d", serV, parV)
	}
}
