package sim

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/trace"
)

// intfRowSums collapses the attribution matrix to each victim's total
// attributed wait. For every request serviced inside the window that
// total is its measured queueing latency (the audited conservation
// invariant), so fast and strict runs — whose schedules are identical
// — can differ only by the attributed-so-far prefix of the handful of
// requests in flight at the window edges: the event-driven path
// charges a wait at the request's next examination, the strict oracle
// every cycle.
func intfRowSums(s memctrl.InterferenceSnapshot) []int64 {
	sums := make([]int64, s.Threads)
	for v, row := range s.Matrix {
		for _, n := range row {
			sums[v] += n
		}
	}
	return sums
}

// TestInterferenceObservationOnly is the tentpole's safety contract:
// enabling delay attribution must not change a single simulated
// outcome. Across the post-2006 arena lineage, in fast, strict, and
// parallel modes, the Result and controller fingerprint with
// attribution on must equal the run with it off bit for bit. Every run
// carries the invariant auditor, so the attribution conservation check
// (charged cycles == queueing delay, at every CAS issue) rides along
// on all policies and modes for free.
func TestInterferenceObservationOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is slow")
	}
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	policies := []struct {
		name    string
		factory PolicyFactory
	}{
		{"FR-FCFS", FRFCFS},
		{"FR-VFTF", FRVFTF},
		{"FQ-VFTF", FQVFTF},
		{"BLISS", BLISS},
		{"SLOW-FAIR", SLOWFAIR},
		{"BANK-BW", BANKBW},
	}
	modes := []struct {
		name    string
		strict  bool
		workers int
	}{
		{"fast", false, 0},
		{"strict", true, 0},
		{"parallel", false, 4},
	}
	const warmup, window = 20_000, 80_000
	for _, p := range policies {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			run := func(strict bool, workers int, intf bool) (Result, controllerFingerprint, memctrl.InterferenceSnapshot) {
				cfg := Config{
					Workload:     []trace.Profile{art, vpr},
					Policy:       p.factory,
					Seed:         13,
					Strict:       strict,
					Workers:      workers,
					Audit:        true,
					Interference: intf,
				}
				cfg.Mem.Channels = 2
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				s.Step(warmup)
				s.BeginMeasurement()
				s.Step(window)
				s.FinishAudit()
				ctrl := s.Controller()
				fp := controllerFingerprint{VClock: ctrl.VClock()}
				for k := dram.KindActivate; k <= dram.KindRefresh; k++ {
					fp.Commands[k] = ctrl.CommandCount(k)
				}
				snap, _ := s.Interference()
				return s.Results(), fp, snap
			}
			snaps := make(map[string]memctrl.InterferenceSnapshot)
			for _, m := range modes {
				off, offFP, _ := run(m.strict, m.workers, false)
				on, onFP, snap := run(m.strict, m.workers, true)
				if !reflect.DeepEqual(off, on) {
					t.Errorf("%s: attribution changed the Result:\n off: %+v\n on:  %+v", m.name, off, on)
				}
				if offFP != onFP {
					t.Errorf("%s: attribution changed the controller state:\n off: %+v\n on:  %+v", m.name, offFP, onFP)
				}
				if snap.Total <= 0 {
					t.Errorf("%s: a contended 2-thread run attributed no wait cycles", m.name)
				}
				snaps[m.name] = snap
			}
			// Parallel folds the same spans in canonical channel order:
			// cell-identical to serial. The strict oracle examines at
			// every cycle, so only the per-victim totals must agree.
			if !reflect.DeepEqual(snaps["fast"], snaps["parallel"]) {
				t.Error("parallel attribution matrix diverges from serial")
			}
			fastSums, strictSums := intfRowSums(snaps["fast"]), intfRowSums(snaps["strict"])
			for v := range fastSums {
				diff := fastSums[v] - strictSums[v]
				if diff < 0 {
					diff = -diff
				}
				// Slack covers only the in-flight window-edge tails; any
				// real double-count or leak inside the window is orders of
				// magnitude larger (and the audit would already have fired).
				if slack := strictSums[v]/1_000 + 64; diff > slack {
					t.Errorf("victim %d attributed totals diverge beyond edge laziness: fast %d strict %d",
						v, fastSums[v], strictSums[v])
				}
			}
		})
	}
}

// TestInterferenceCheckpointRestore runs the checkpoint/restore
// contract with attribution on: an interrupted run must rejoin the
// uninterrupted one on every observable, including the final
// checkpoint bytes (which now carry the attribution section) and the
// measurement-window attribution matrix itself.
func TestInterferenceCheckpointRestore(t *testing.T) {
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workload:       []trace.Profile{art, vpr},
		Policy:         FQVFTF,
		Seed:           29,
		Audit:          true,
		Interference:   true,
		SampleInterval: 1_000,
	}
	const warmup, preCk, postCk = 2_000, 3_001, 4_999

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Step(warmup)
	ref.BeginMeasurement()
	ref.Step(preCk + postCk)
	ref.FinishAudit()
	want := captureRun(t, ref)
	wantIntf, _ := ref.Interference()

	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first.Step(warmup)
	first.BeginMeasurement()
	first.Step(preCk)
	var buf bytes.Buffer
	if err := first.Checkpoint(&buf); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	resumed, err := Restore(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	resumed.Step(postCk)
	resumed.FinishAudit()
	got := captureRun(t, resumed)
	gotIntf, ok := resumed.Interference()
	if !ok {
		t.Fatal("restored system lost its attribution state")
	}
	compareRuns(t, "interference-restore", got, want)
	if !reflect.DeepEqual(gotIntf, wantIntf) {
		t.Errorf("attribution matrix diverged after restore\n got: %+v\nwant: %+v", gotIntf, wantIntf)
	}
	if wantIntf.Cross <= 0 {
		t.Error("measurement window recorded no cross-thread interference on a contended mix")
	}
}

// TestInterferenceRestoreConfigMismatch: a checkpoint taken with
// attribution on must refuse to restore into a config with it off —
// the tracker's per-slot state would silently desync mid-request.
func TestInterferenceRestoreConfigMismatch(t *testing.T) {
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workload:     []trace.Profile{art, art},
		Policy:       FRFCFS,
		Seed:         3,
		Interference: true,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(5_000)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	off := cfg
	off.Interference = false
	if _, err := Restore(off, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("restore accepted a checkpoint whose interference setting mismatches the config")
	}
}

// TestStepZeroSteadyStateAllocsInterference holds the attribution
// layer to the controller's zero-alloc bar: the per-slot accounting
// and per-channel span staging must recycle their buffers once warm.
func TestStepZeroSteadyStateAllocsInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow")
	}
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"serial", 0},
		{"parallel", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Workload:     []trace.Profile{art, vpr, art, vpr},
				Policy:       FQVFTF,
				Seed:         37,
				Workers:      tc.workers,
				Interference: true,
			}
			cfg.Mem.Channels = 2
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			s.Step(200_000)
			avg := testing.AllocsPerRun(10, func() {
				s.Step(5_000)
			})
			if avg != 0 {
				t.Errorf("Step allocates %.1f objects per 5k cycles with attribution on, want 0", avg)
			}
		})
	}
}
