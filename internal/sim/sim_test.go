package sim

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/trace"
)

func profile(t *testing.T, name string) trace.Profile {
	t.Helper()
	p, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Workload: []trace.Profile{profile(t, "vpr"), profile(t, "art")}}
	got, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Shares) != 2 || got.Shares[0] != core.EqualShare(2) {
		t.Errorf("shares = %v", got.Shares)
	}
	if got.Mem.Threads != 2 || got.Mem.ReadEntriesPerThread != 16 || got.Mem.WriteEntriesPerThread != 8 {
		t.Errorf("mem config = %+v", got.Mem)
	}
	if got.CPU.ROB != 128 {
		t.Errorf("cpu config = %+v", got.CPU)
	}
	if got.Cache.L2.SizeKB != 512 {
		t.Errorf("cache config = %+v", got.Cache)
	}
	if got.ReqTransit == 0 || got.RespTransit == 0 {
		t.Error("transits not defaulted")
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("accepted empty workload")
	}
	if _, err := New(Config{
		Workload: []trace.Profile{profile(t, "vpr")},
		Shares:   []core.Share{{Num: 1, Den: 2}, {Num: 1, Den: 2}},
	}); err == nil {
		t.Error("accepted share/core mismatch")
	}
	if _, err := New(Config{
		Workload: []trace.Profile{profile(t, "vpr")},
		Shares:   []core.Share{{Num: 0, Den: 1}},
	}); err == nil {
		t.Error("accepted invalid share")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"FCFS", "FR-FCFS", "FR-VFTF", "FQ-VFTF", "FR-VSTF", "frfcfs", "fqvftf"} {
		if _, err := PolicyByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := PolicyByName("nonesuch"); err == nil {
		t.Error("accepted unknown policy")
	}
}

func TestRunProducesConsistentResults(t *testing.T) {
	res, err := Run(Config{Workload: []trace.Profile{profile(t, "ammp")}}, 10_000, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 60_000 {
		t.Errorf("window = %d", res.Cycles)
	}
	tr := res.Threads[0]
	if tr.Benchmark != "ammp" || tr.Instructions <= 0 || tr.IPC <= 0 {
		t.Errorf("thread result = %+v", tr)
	}
	if tr.BusUtil <= 0 || tr.BusUtil > 1 {
		t.Errorf("bus util = %v", tr.BusUtil)
	}
	if res.DataBusUtil < tr.BusUtil-1e-9 {
		t.Errorf("aggregate util %v below thread util %v", res.DataBusUtil, tr.BusUtil)
	}
	if tr.AvgReadLatency <= 0 {
		t.Errorf("latency = %v", tr.AvgReadLatency)
	}
	if res.PolicyName != "FR-FCFS" {
		t.Errorf("default policy = %q", res.PolicyName)
	}
	if res.BankUtil <= 0 || res.BankUtil > 1 {
		t.Errorf("bank util = %v", res.BankUtil)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	cfg := Config{
		Workload: []trace.Profile{profile(t, "vpr"), profile(t, "art")},
		Policy:   FQVFTF,
	}
	r1, err := Run(cfg, 5_000, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, 5_000, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Threads {
		if r1.Threads[i] != r2.Threads[i] {
			t.Fatalf("thread %d differs: %+v vs %+v", i, r1.Threads[i], r2.Threads[i])
		}
	}
	if r1.DataBusUtil != r2.DataBusUtil {
		t.Fatal("aggregate util differs")
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := Config{Workload: []trace.Profile{profile(t, "ammp")}}
	r1, _ := Run(cfg, 5_000, 40_000)
	cfg.Seed = 99
	r2, _ := Run(cfg, 5_000, 40_000)
	if r1.Threads[0].Instructions == r2.Threads[0].Instructions {
		t.Error("different seeds gave identical instruction counts (suspicious)")
	}
}

// TestSharesSteerBandwidth: giving one thread 3/4 of the memory system
// must give it more bandwidth than its 1/4 partner when both are
// bandwidth hungry.
func TestSharesSteerBandwidth(t *testing.T) {
	art := profile(t, "art")
	res, err := Run(Config{
		Workload: []trace.Profile{art, art},
		Shares:   []core.Share{{Num: 3, Den: 4}, {Num: 1, Den: 4}},
		Policy:   FQVFTF,
	}, 20_000, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	big, small := res.Threads[0].BusUtil, res.Threads[1].BusUtil
	if big <= small*1.5 {
		t.Fatalf("3/4-share thread got %.3f vs 1/4-share %.3f; shares not honored", big, small)
	}
}

// TestQoSShape is the paper's headline mechanism at test scale: under
// FR-FCFS an art background crushes vpr; under FQ-VFTF vpr stays near
// its 1/2-share baseline.
func TestQoSShape(t *testing.T) {
	vpr, art := profile(t, "vpr"), profile(t, "art")
	base := Config{Workload: []trace.Profile{vpr}}
	base.Mem.DRAM = dram.DefaultConfig()
	base.Mem.DRAM.Timing = dram.DDR2800().Scale(2)
	bres, err := Run(base, 20_000, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	bIPC := bres.Threads[0].IPC

	frfcfs, err := Run(Config{Workload: []trace.Profile{vpr, art}, Policy: FRFCFS}, 20_000, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	fq, err := Run(Config{Workload: []trace.Profile{vpr, art}, Policy: FQVFTF}, 20_000, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	normFR := frfcfs.Threads[0].IPC / bIPC
	normFQ := fq.Threads[0].IPC / bIPC
	if normFR > 0.7 {
		t.Errorf("FR-FCFS vpr normalized IPC %.2f; expected severe interference (< 0.7)", normFR)
	}
	if normFQ < 0.85 {
		t.Errorf("FQ-VFTF vpr normalized IPC %.2f; expected QoS (>= 0.85)", normFQ)
	}
	if normFQ < normFR {
		t.Error("FQ-VFTF did not improve on FR-FCFS")
	}
	// Latency ordering mirrors IPC.
	if fq.Threads[0].AvgReadLatency >= frfcfs.Threads[0].AvgReadLatency {
		t.Error("FQ-VFTF did not reduce the victim's read latency")
	}
}

func TestRefreshRunsInLongSimulations(t *testing.T) {
	cfg := Config{Workload: []trace.Profile{profile(t, "ammp")}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(600_000) // beyond tREF = 280,000
	if s.Controller().CommandCount(5 /* refresh */) < 2 {
		t.Errorf("refreshes = %d, want >= 2", s.Controller().CommandCount(5))
	}
}

func TestBeginMeasurementExcludesWarmup(t *testing.T) {
	cfg := Config{Workload: []trace.Profile{profile(t, "crafty")}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(10_000)
	s.BeginMeasurement()
	s.Step(30_000)
	res := s.Results()
	if res.Cycles != 30_000 {
		t.Errorf("window = %d, want 30000", res.Cycles)
	}
	retiredAll := s.Core(0).Retired
	if res.Threads[0].Instructions >= retiredAll {
		t.Error("measurement window included warmup instructions")
	}
}

func TestResultsWithoutBeginMeasurement(t *testing.T) {
	cfg := Config{Workload: []trace.Profile{profile(t, "crafty")}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(20_000)
	res := s.Results()
	if res.Cycles != 20_000 {
		t.Errorf("cycles = %d, want full 20000", res.Cycles)
	}
	if res.Threads[0].Instructions != s.Core(0).Retired {
		t.Error("zero-snapshot results should cover everything")
	}
}

// TestMultiChannelThroughput: a second memory channel must raise a
// bandwidth-bound thread's throughput while keeping utilization a
// fraction of the doubled peak.
func TestMultiChannelThroughput(t *testing.T) {
	art := profile(t, "art")
	one, err := Run(Config{Workload: []trace.Profile{art, art}}, 10_000, 80_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workload: []trace.Profile{art, art}}
	cfg.Mem.Channels = 2
	two, err := Run(cfg, 10_000, 80_000)
	if err != nil {
		t.Fatal(err)
	}
	ipc1 := one.Threads[0].IPC + one.Threads[1].IPC
	ipc2 := two.Threads[0].IPC + two.Threads[1].IPC
	if ipc2 < ipc1*1.2 {
		t.Errorf("2-channel aggregate IPC %.2f not well above 1-channel %.2f", ipc2, ipc1)
	}
	if two.DataBusUtil > 1 || two.DataBusUtil <= 0 {
		t.Errorf("2-channel utilization %v out of range", two.DataBusUtil)
	}
}

// TestDynamicShareReassignment: moving a thread's share mid-run must
// move its measured bandwidth.
func TestDynamicShareReassignment(t *testing.T) {
	art := profile(t, "art")
	s, err := New(Config{
		Workload: []trace.Profile{art, art},
		Shares:   []core.Share{{Num: 1, Den: 2}, {Num: 1, Den: 2}},
		Policy:   FQVFTF,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Step(20_000)
	s.BeginMeasurement()
	s.Step(80_000)
	before := s.Results()

	if !s.SetShare(0, core.Share{Num: 7, Den: 8}) || !s.SetShare(1, core.Share{Num: 1, Den: 8}) {
		t.Fatal("FQ-VFTF should support share reassignment")
	}
	s.Step(20_000) // settle
	s.BeginMeasurement()
	s.Step(80_000)
	after := s.Results()

	ratioBefore := before.Threads[0].BusUtil / before.Threads[1].BusUtil
	ratioAfter := after.Threads[0].BusUtil / after.Threads[1].BusUtil
	if ratioBefore > 1.3 || ratioBefore < 0.7 {
		t.Errorf("equal shares gave ratio %.2f", ratioBefore)
	}
	if ratioAfter < 2 {
		t.Errorf("7/8 vs 1/8 shares gave ratio %.2f, want >= 2", ratioAfter)
	}
	// FR-FCFS has no shares to set.
	s2, _ := New(Config{Workload: []trace.Profile{art}})
	if s2.SetShare(0, core.Share{Num: 1, Den: 2}) {
		t.Error("FR-FCFS accepted a share reassignment")
	}
}

// TestReplaySources: a simulation driven by recorded traces must match
// one driven by live generators with the same seed.
func TestReplaySources(t *testing.T) {
	p := profile(t, "ammp")
	live, err := Run(Config{Workload: []trace.Profile{p}, Seed: 3}, 5_000, 40_000)
	if err != nil {
		t.Fatal(err)
	}

	g, err := trace.NewGenerator(p, 0, 3+1) // sim.New adds 1 to the seed
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteTrace(&buf, g, 400_000); err != nil {
		t.Fatal(err)
	}
	r, err := trace.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := Run(Config{Sources: []trace.Source{r}}, 5_000, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Threads[0].Benchmark != "ammp" {
		t.Errorf("replay benchmark = %q", replay.Threads[0].Benchmark)
	}
	if live.Threads[0].Instructions != replay.Threads[0].Instructions {
		t.Errorf("live retired %d, replay retired %d",
			live.Threads[0].Instructions, replay.Threads[0].Instructions)
	}
	if live.Threads[0].ReadsDone != replay.Threads[0].ReadsDone {
		t.Errorf("live reads %d, replay reads %d",
			live.Threads[0].ReadsDone, replay.Threads[0].ReadsDone)
	}
}

// TestSourcesLengthMismatch rejects inconsistent replay configuration.
func TestSourcesLengthMismatch(t *testing.T) {
	p := profile(t, "ammp")
	g, _ := trace.NewGenerator(p, 0, 1)
	_, err := New(Config{
		Workload: []trace.Profile{p, p},
		Sources:  []trace.Source{g},
	})
	if err == nil {
		t.Fatal("accepted 1 source for 2 cores")
	}
}
