package sim

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/trace"
)

// controllerFingerprint captures every observable controller outcome
// beyond the Result struct: the virtual clock and the per-kind SDRAM
// command counts.
type controllerFingerprint struct {
	VClock   int64
	Commands [6]int64
}

// TestEventDrivenEquivalence is the tentpole's oracle: the event-driven
// skip-ahead path must reproduce the strict per-cycle path bit for bit.
// A 2-core art+vpr mix (one bandwidth hog, one latency-sensitive
// thread) runs for over 200k cycles — through multiple refresh windows
// (tREF = 280k with warmup plus window) — under every policy, including
// the interval-based arena lineage whose tick boundaries the fast path
// must never skip, and the Result structs, virtual clocks, and command
// counts must match exactly.
func TestEventDrivenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is slow")
	}
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	policies := []struct {
		name    string
		factory PolicyFactory
	}{
		{"FCFS", FCFS},
		{"FR-FCFS", FRFCFS},
		{"FR-VFTF", FRVFTF},
		{"FQ-VFTF", FQVFTF},
		{"FR-VSTF", FRVSTF},
		{"BLISS", BLISS},
		{"SLOW-FAIR", SLOWFAIR},
		{"BANK-BW", BANKBW},
	}
	const warmup, window = 50_000, 200_000
	for _, p := range policies {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			run := func(strict bool) (Result, controllerFingerprint) {
				s, err := New(Config{
					Workload: []trace.Profile{art, vpr},
					Policy:   p.factory,
					Seed:     7,
					Strict:   strict,
				})
				if err != nil {
					t.Fatal(err)
				}
				s.Step(warmup)
				s.BeginMeasurement()
				s.Step(window)
				ctrl := s.Controller()
				fp := controllerFingerprint{VClock: ctrl.VClock()}
				for k := dram.KindActivate; k <= dram.KindRefresh; k++ {
					fp.Commands[k] = ctrl.CommandCount(k)
				}
				return s.Results(), fp
			}
			fast, fastFP := run(false)
			strict, strictFP := run(true)
			if !reflect.DeepEqual(fast, strict) {
				t.Errorf("Result diverges:\n fast:   %+v\n strict: %+v", fast, strict)
			}
			if fastFP != strictFP {
				t.Errorf("controller state diverges:\n fast:   %+v\n strict: %+v", fastFP, strictFP)
			}
		})
	}
}

// TestEquivalenceWithSharesAndRefresh exercises the invalidation paths
// the main sweep does not: a mid-run share reassignment (which rewrites
// policy keys with no command issued) and a multi-channel
// configuration, again demanding bit-identical outcomes.
func TestEquivalenceWithSharesAndRefresh(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is slow")
	}
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	run := func(strict bool, channels int) (Result, int64) {
		cfg := Config{
			Workload: []trace.Profile{art, vpr},
			Policy:   FQVFTF,
			Seed:     11,
			Strict:   strict,
		}
		cfg.Mem.Channels = channels
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Step(30_000)
		s.SetShare(0, core.Share{Num: 3, Den: 4})
		s.SetShare(1, core.Share{Num: 1, Den: 4})
		s.BeginMeasurement()
		s.Step(120_000)
		return s.Results(), s.Controller().VClock()
	}
	for _, channels := range []int{1, 2} {
		fast, fastV := run(false, channels)
		strict, strictV := run(true, channels)
		if !reflect.DeepEqual(fast, strict) {
			t.Errorf("channels=%d: Result diverges:\n fast:   %+v\n strict: %+v", channels, fast, strict)
		}
		if fastV != strictV {
			t.Errorf("channels=%d: vclock diverges: fast %d strict %d", channels, fastV, strictV)
		}
	}
}

// TestEquivalenceSetShareInsideRefresh reassigns shares at a cycle where
// a refresh is actually in progress — the virtual clock is paused and
// the fast path's next-event estimate was computed under the old keys —
// and demands the skip-ahead path still match the strict oracle bit for
// bit. tREF is shrunk to 7k cycles so the run crosses dozens of refresh
// windows, and both runs carry the invariant auditor. The SetShare
// cycles themselves are part of the fingerprint: each run hunts for its
// own refresh window, so agreement there proves the histories were
// identical up to the reassignment too.
func TestEquivalenceSetShareInsideRefresh(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is slow")
	}
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	run := func(strict bool) (Result, controllerFingerprint, [2]int64) {
		cfg := Config{
			Workload: []trace.Profile{art, vpr},
			Policy:   FQVFTF,
			Seed:     17,
			Strict:   strict,
			Audit:    true,
		}
		cfg.Mem.DRAM = dram.DefaultConfig()
		cfg.Mem.DRAM.Timing.TREF = 7_000
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stepIntoRefresh := func() int64 {
			for i := 0; i < 30_000; i++ {
				s.Step(1)
				if s.Controller().Channel().InRefresh(s.Cycle()) {
					return s.Cycle()
				}
			}
			t.Fatal("no refresh window reached")
			return 0
		}
		var shareAt [2]int64
		s.Step(10_000)
		shareAt[0] = stepIntoRefresh()
		s.SetShare(0, core.Share{Num: 3, Den: 4})
		s.SetShare(1, core.Share{Num: 1, Den: 4})
		s.BeginMeasurement()
		s.Step(40_000)
		shareAt[1] = stepIntoRefresh()
		s.SetShare(0, core.Share{Num: 1, Den: 4})
		s.SetShare(1, core.Share{Num: 3, Den: 4})
		s.Step(40_000)
		s.FinishAudit()
		ctrl := s.Controller()
		fp := controllerFingerprint{VClock: ctrl.VClock()}
		for k := dram.KindActivate; k <= dram.KindRefresh; k++ {
			fp.Commands[k] = ctrl.CommandCount(k)
		}
		return s.Results(), fp, shareAt
	}
	fast, fastFP, fastAt := run(false)
	strict, strictFP, strictAt := run(true)
	if fastAt != strictAt {
		t.Errorf("SetShare cycles diverge: fast %v strict %v", fastAt, strictAt)
	}
	if !reflect.DeepEqual(fast, strict) {
		t.Errorf("Result diverges:\n fast:   %+v\n strict: %+v", fast, strict)
	}
	if fastFP != strictFP {
		t.Errorf("controller state diverges:\n fast:   %+v\n strict: %+v", fastFP, strictFP)
	}
	if fastFP.Commands[dram.KindRefresh] < 10 {
		t.Errorf("run crossed only %d refresh windows, want many", fastFP.Commands[dram.KindRefresh])
	}
}

// TestEquivalenceMultiChannelBankWake targets the event-driven path's
// multi-channel approximation: bank wake times are tracked per flat
// bank, but the virtual clock only pauses for channel 0's refresh, so
// wake estimates on the other channels are conservative lower bounds.
// At 2 and 4 channels, through many short refresh windows and a mid-run
// share reassignment, the skip-ahead path must still reproduce the
// strict oracle exactly — the approximation may cost wake-ups, never
// correctness. Both runs carry the invariant auditor.
func TestEquivalenceMultiChannelBankWake(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is slow")
	}
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	for _, channels := range []int{2, 4} {
		channels := channels
		run := func(strict bool) (Result, controllerFingerprint) {
			cfg := Config{
				Workload: []trace.Profile{art, vpr},
				Policy:   FQVFTF,
				Seed:     19,
				Strict:   strict,
				Audit:    true,
			}
			cfg.Mem.Channels = channels
			cfg.Mem.DRAM = dram.DefaultConfig()
			cfg.Mem.DRAM.Timing.TREF = 7_000
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.Step(30_000)
			s.SetShare(0, core.Share{Num: 3, Den: 4})
			s.SetShare(1, core.Share{Num: 1, Den: 4})
			s.BeginMeasurement()
			s.Step(100_000)
			s.FinishAudit()
			ctrl := s.Controller()
			fp := controllerFingerprint{VClock: ctrl.VClock()}
			for k := dram.KindActivate; k <= dram.KindRefresh; k++ {
				fp.Commands[k] = ctrl.CommandCount(k)
			}
			return s.Results(), fp
		}
		fast, fastFP := run(false)
		strict, strictFP := run(true)
		if !reflect.DeepEqual(fast, strict) {
			t.Errorf("channels=%d: Result diverges:\n fast:   %+v\n strict: %+v", channels, fast, strict)
		}
		if fastFP != strictFP {
			t.Errorf("channels=%d: controller state diverges:\n fast:   %+v\n strict: %+v", channels, fastFP, strictFP)
		}
		if fastFP.Commands[dram.KindRefresh] == 0 {
			t.Errorf("channels=%d: run crossed no refresh window", channels)
		}
	}
}
