package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dram"
	"repro/internal/trace"
)

// The antagonist profiles join every systemwide determinism suite the
// SPEC profiles are held to: fast/strict equivalence, serial/parallel
// equivalence, checkpoint-resume bit-identity, and the zero-alloc
// steady state. The attack-address generators and the stream agent's
// deep-queue core/cache configs all sit on the hot path, so each suite
// would catch a nondeterministic or allocating regression there.

func antagonistMixes(t *testing.T) [][]trace.Profile {
	t.Helper()
	mix := func(names ...string) []trace.Profile {
		ps := make([]trace.Profile, len(names))
		for i, n := range names {
			p, err := trace.ByName(n)
			if err != nil {
				t.Fatal(err)
			}
			ps[i] = p
		}
		return ps
	}
	return [][]trace.Profile{
		mix("vpr", "bushog"),
		mix("vpr", "rowthrash", "stream"),
		mix("diurnal", "bankhammer"),
	}
}

// TestAntagonistEquivalence holds every antagonist mix to the two
// oracles at once: the event-driven fast path against the strict
// per-cycle path (Result + controller fingerprint), and serial against
// parallel dispatch (those plus the final checkpoint's raw bytes).
func TestAntagonistEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is slow")
	}
	for mi, mix := range antagonistMixes(t) {
		for _, pol := range []struct {
			name    string
			factory PolicyFactory
		}{{"FQ-VFTF", FQVFTF}, {"FR-FCFS", FRFCFS}} {
			mix, pol := mix, pol
			t.Run(fmt.Sprintf("mix%d/%s", mi, pol.name), func(t *testing.T) {
				t.Parallel()
				run := func(strict bool, workers int) (Result, controllerFingerprint, []byte) {
					cfg := Config{
						Workload: mix,
						Policy:   pol.factory,
						Seed:     29,
						Strict:   strict,
						Workers:  workers,
						Audit:    true,
					}
					cfg.Mem.Channels = 2
					s, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					defer s.Close()
					s.Step(20_000)
					s.BeginMeasurement()
					s.Step(60_000)
					s.FinishAudit()
					fp := controllerFingerprint{VClock: s.Controller().VClock()}
					for k := dram.KindActivate; k <= dram.KindRefresh; k++ {
						fp.Commands[k] = s.Controller().CommandCount(k)
					}
					var ck bytes.Buffer
					if err := s.Checkpoint(&ck); err != nil {
						t.Fatal(err)
					}
					return s.Results(), fp, ck.Bytes()
				}
				fast, fastFP, fastCk := run(false, 0)
				strict, strictFP, _ := run(true, 0)
				parl, parlFP, parlCk := run(false, 4)
				if !reflect.DeepEqual(fast, strict) {
					t.Errorf("fast/strict Result diverges:\n fast:   %+v\n strict: %+v", fast, strict)
				}
				if fastFP != strictFP {
					t.Errorf("fast/strict controller state diverges:\n fast:   %+v\n strict: %+v", fastFP, strictFP)
				}
				if !reflect.DeepEqual(fast, parl) {
					t.Errorf("serial/parallel Result diverges:\n serial:   %+v\n parallel: %+v", fast, parl)
				}
				if fastFP != parlFP {
					t.Errorf("serial/parallel controller state diverges")
				}
				if !bytes.Equal(fastCk, parlCk) {
					t.Errorf("serial/parallel final checkpoints differ (%d vs %d bytes)", len(fastCk), len(parlCk))
				}
			})
		}
	}
}

// TestAntagonistCheckpointResume interrupts antagonist mixes at an odd
// cycle inside the measurement window — with the auditor and epoch
// sampler live, so the diurnal generator's envelope phase and the
// attack cursors are cut mid-flight — and requires the resumed run to
// match the uninterrupted one on every observable, final process state
// included.
func TestAntagonistCheckpointResume(t *testing.T) {
	cells := []struct {
		names   []string
		factory PolicyFactory
		policy  string
	}{
		{[]string{"vpr", "diurnal"}, FQVFTF, "FQ-VFTF"},
		{[]string{"stream", "bankhammer"}, FRFCFS, "FR-FCFS"},
	}
	const warmup, preCk, postCk = 2_000, 3_001, 4_999
	for _, cell := range cells {
		cell := cell
		t.Run(fmt.Sprintf("%v/%s", cell.names, cell.policy), func(t *testing.T) {
			t.Parallel()
			ps := make([]trace.Profile, len(cell.names))
			for i, n := range cell.names {
				p, err := trace.ByName(n)
				if err != nil {
					t.Fatal(err)
				}
				ps[i] = p
			}
			cfg := Config{
				Workload:       ps,
				Policy:         cell.factory,
				Seed:           31,
				Audit:          true,
				SampleInterval: 1_000,
			}

			ref, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref.Step(warmup)
			ref.BeginMeasurement()
			ref.Step(preCk + postCk)
			ref.FinishAudit()
			want := captureRun(t, ref)

			first, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			first.Step(warmup)
			first.BeginMeasurement()
			first.Step(preCk)
			var buf bytes.Buffer
			if err := first.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			resumed, err := Restore(cfg, bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			resumed.Step(postCk)
			resumed.FinishAudit()
			got := captureRun(t, resumed)
			compareRuns(t, "antagonist-resume-"+cell.policy, got, want)
		})
	}
}

// TestAntagonistSteadyStateAllocs holds a mixed agent-kind, all-
// antagonist system — stream agents with their deeper queues included —
// to the same zero-allocation steady state as the SPEC mixes, in both
// serial and parallel dispatch.
func TestAntagonistSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow")
	}
	names := []string{"stream", "bushog", "rowthrash", "diurnal"}
	ps := make([]trace.Profile, len(names))
	for i, n := range names {
		p, err := trace.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		ps[i] = p
	}
	for _, workers := range []int{0, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := Config{
				Workload: ps,
				Policy:   FQVFTF,
				Seed:     41,
				Workers:  workers,
			}
			cfg.Mem.Channels = 2
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			s.Step(200_000)
			avg := testing.AllocsPerRun(10, func() {
				s.Step(5_000)
			})
			if avg != 0 {
				t.Errorf("Step allocates %.1f objects per 5k cycles in steady state, want 0", avg)
			}
		})
	}
}

// TestAntagonistCalibration pins each antagonist's solo signature under
// FR-FCFS: the attacks must actually produce the memory behavior they
// claim (that is what makes the isolation properties non-vacuous).
func TestAntagonistCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	type band struct {
		minUtil, maxUtil     float64
		minRowHit, maxRowHit float64
	}
	// Measured solo (50k/400k): stream util .89 rowhit .79; rowthrash
	// .64/.75; bankhammer .17/.00; bushog .80/.88; diurnal .83/.79.
	bands := map[string]band{
		// The streaming agent saturates the bus with row-friendly traffic.
		"stream": {minUtil: 0.85, maxUtil: 1.0, minRowHit: 0.70, maxRowHit: 1.0},
		// Row thrashing still moves data, but alternating rows cap locality.
		"rowthrash": {minUtil: 0.50, maxUtil: 0.80, minRowHit: 0.50, maxRowHit: 0.90},
		// Every bankhammer access opens a fresh row in one bank: tRC-bound
		// trickle bandwidth and no row hits at all.
		"bankhammer": {minUtil: 0.05, maxUtil: 0.35, minRowHit: 0, maxRowHit: 0.05},
		// The bus hog streams sequentially at near-peak utilization.
		"bushog": {minUtil: 0.75, maxUtil: 1.0, minRowHit: 0.80, maxRowHit: 1.0},
		// Diurnal bursts average out high but below a pure streamer.
		"diurnal": {minUtil: 0.75, maxUtil: 0.95, minRowHit: 0.70, maxRowHit: 1.0},
	}
	for _, name := range trace.AntagonistNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := trace.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{
				Workload: []trace.Profile{p},
				Policy:   FRFCFS,
			}, 50_000, 400_000)
			if err != nil {
				t.Fatal(err)
			}
			tr := res.Threads[0]
			b, ok := bands[name]
			if !ok {
				t.Fatalf("no calibration band for antagonist %q; add one", name)
			}
			t.Logf("%-10s util=%.3f rowhit=%.2f ipc=%.3f", name, tr.BusUtil, tr.RowHitRate, tr.IPC)
			if tr.BusUtil < b.minUtil || tr.BusUtil > b.maxUtil {
				t.Errorf("solo bus utilization %.3f outside [%.2f, %.2f]", tr.BusUtil, b.minUtil, b.maxUtil)
			}
			if tr.RowHitRate < b.minRowHit || tr.RowHitRate > b.maxRowHit {
				t.Errorf("solo row-hit rate %.3f outside [%.2f, %.2f]", tr.RowHitRate, b.minRowHit, b.maxRowHit)
			}
		})
	}
}

// TestDiurnalSamplerEnvelope checks that the epoch telemetry actually
// resolves the diurnal burst structure. The low phase barely touches
// memory, so the core rushes through it at high IPC and the idle span
// compresses to well under one 10k-cycle epoch of wall-clock time; the
// visible signature is a periodic dip in per-epoch retired loads — one
// per ~60k-instruction period — not a square wave. The pins: at least
// a 2x contrast between the deepest dip and the tallest burst, and the
// dip recurring across the run.
func TestDiurnalSamplerEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("envelope run is slow")
	}
	p, err := trace.ByName("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workload:       []trace.Profile{p},
		Policy:         FQVFTF,
		SampleInterval: 10_000,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(600_000)
	samples := s.Sampler().Samples(-1)
	if len(samples) < 30 {
		t.Fatalf("only %d epochs sampled", len(samples))
	}
	var prev int64
	var deltas []int64
	for i, sm := range samples {
		v, ok := sm.Gauges["cpu.thread0.loads_retired"]
		if !ok {
			t.Fatal("sampler is missing cpu.thread0.loads_retired")
		}
		if i > 0 { // samples[0] is the cycle-0 baseline
			deltas = append(deltas, v-prev)
		}
		prev = v
	}
	min, max := deltas[0], deltas[0]
	var total int64
	for _, d := range deltas {
		if d < 0 {
			t.Fatalf("negative per-epoch load delta %d", d)
		}
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		total += d
	}
	if min < 1 {
		min = 1
	}
	if max < 2*min {
		t.Errorf("per-epoch load deltas span [%d, %d]; want a >= 2x burst/idle contrast", min, max)
	}
	// The dip must recur — roughly once per period, so several times
	// over ~9 periods — and the burst level must dominate the run.
	mean := total / int64(len(deltas))
	dips, bursts := 0, 0
	for _, d := range deltas {
		if d <= mean*3/4 {
			dips++
		}
		if d >= mean*7/8 {
			bursts++
		}
	}
	if dips < 4 {
		t.Errorf("idle dip recurred only %d times over the run, want >= 4 (deltas %v)", dips, deltas)
	}
	if bursts < len(deltas)/2 {
		t.Errorf("only %d of %d epochs at burst level; the duty phase should dominate wall-clock time", bursts, len(deltas))
	}
}
