package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/trace"
)

// TestAuditAllPolicies runs every policy under the runtime invariant
// auditor through refresh windows and (for the share-aware policies) a
// mid-run share reassignment. Any violated invariant — timing,
// conservation, VTMS arithmetic, frozen keys, FQ inversion bound —
// panics; the assertions below additionally prove the auditor actually
// engaged and that FQ-VFTF's measured priority-inversion window stayed
// under the Section 3.3 bound.
// TestAuditEnvVar proves the FQMS_AUDIT environment variable — the
// hook CI's audited job relies on — actually attaches the auditor.
func TestAuditEnvVar(t *testing.T) {
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("FQMS_AUDIT", "1")
	s, err := New(Config{Workload: []trace.Profile{art}, Policy: FRFCFS})
	if err != nil {
		t.Fatal(err)
	}
	s.Step(2_000)
	s.FinishAudit()
	aud := s.Controller().Auditor()
	if aud == nil {
		t.Fatal("FQMS_AUDIT did not attach an auditor")
	}
	if aud.Commands() == 0 {
		t.Fatal("auditor validated no commands")
	}
}

func TestAuditAllPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("audit sweep is slow")
	}
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	policies := []struct {
		name    string
		factory PolicyFactory
	}{
		{"FCFS", FCFS},
		{"FR-FCFS", FRFCFS},
		{"FR-VFTF", FRVFTF},
		{"FQ-VFTF", FQVFTF},
		{"FR-VSTF", FRVSTF},
		{"BLISS", BLISS},
		{"SLOW-FAIR", SLOWFAIR},
		{"BANK-BW", BANKBW},
	}
	for _, p := range policies {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			s, err := New(Config{
				Workload: []trace.Profile{art, vpr},
				Policy:   p.factory,
				Seed:     13,
				Audit:    true,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Cross the first refresh window (tREF = 280k), reassigning
			// shares mid-run where the policy supports it.
			s.Step(150_000)
			s.SetShare(0, core.Share{Num: 3, Den: 4})
			s.SetShare(1, core.Share{Num: 1, Den: 4})
			s.Step(200_000)
			s.FinishAudit()

			aud := s.Controller().Auditor()
			if aud == nil {
				t.Fatal("Config.Audit did not attach an auditor")
			}
			if aud.Commands() == 0 {
				t.Fatal("auditor validated no commands")
			}
			if s.Controller().CommandCount(dram.KindRefresh) == 0 {
				t.Fatal("run crossed no refresh window")
			}
			if p.name == "FQ-VFTF" {
				x := int64(dram.DDR2800().TRAS)
				if w := aud.MaxInversionWindow(); w >= x {
					t.Fatalf("FQ inversion window %d >= bound %d", w, x)
				}
			}
		})
	}
}
