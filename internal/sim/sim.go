// Package sim wires the substrates into a whole-system simulator: N
// out-of-order cores with private cache hierarchies sharing one DDR2
// memory controller, matching the paper's Section 4.1 methodology ("the
// SDRAM memory system is the only shared resource"). A global cycle
// loop drives everything; request and response transit latencies model
// the on-chip interconnect between the L2s and the memory controller.
package sim

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/trace"
)

// PolicyFactory constructs a scheduling policy for a system with the
// given per-thread shares, bank count, and DRAM timing.
type PolicyFactory func(shares []core.Share, nbanks int, t dram.Timing) core.Policy

// Standard policy factories.
var (
	FCFS PolicyFactory = func([]core.Share, int, dram.Timing) core.Policy {
		return core.NewFCFS()
	}
	FRFCFS PolicyFactory = func([]core.Share, int, dram.Timing) core.Policy {
		return core.NewFRFCFS()
	}
	FRVFTF PolicyFactory = func(s []core.Share, n int, t dram.Timing) core.Policy {
		return core.NewFRVFTF(s, n, t)
	}
	FQVFTF PolicyFactory = func(s []core.Share, n int, t dram.Timing) core.Policy {
		return core.NewFQVFTF(s, n, t)
	}
	FRVSTF PolicyFactory = func(s []core.Share, n int, t dram.Timing) core.Policy {
		return core.NewFRVSTF(s, n, t)
	}
	// The post-2006 arena lineage (see internal/core/policy_arena.go).
	BLISS PolicyFactory = func(s []core.Share, _ int, _ dram.Timing) core.Policy {
		return core.NewBLISS(len(s))
	}
	SLOWFAIR PolicyFactory = func(s []core.Share, _ int, t dram.Timing) core.Policy {
		return core.NewSlowFair(len(s), t)
	}
	BANKBW PolicyFactory = func(s []core.Share, n int, _ dram.Timing) core.Policy {
		return core.NewBankBW(len(s), n)
	}
)

// PolicyByName resolves a policy name to its factory.
func PolicyByName(name string) (PolicyFactory, error) {
	switch name {
	case "FCFS", "fcfs":
		return FCFS, nil
	case "FR-FCFS", "frfcfs":
		return FRFCFS, nil
	case "FR-VFTF", "frvftf":
		return FRVFTF, nil
	case "FQ-VFTF", "fqvftf", "FQ":
		return FQVFTF, nil
	case "FR-VSTF", "frvstf":
		return FRVSTF, nil
	case "BLISS", "bliss":
		return BLISS, nil
	case "SLOW-FAIR", "slowfair":
		return SLOWFAIR, nil
	case "BANK-BW", "bankbw":
		return BANKBW, nil
	}
	return nil, fmt.Errorf("sim: unknown policy %q", name)
}

// Config describes one simulated system.
type Config struct {
	// Workload holds one benchmark profile per core.
	Workload []trace.Profile

	// Sources, when non-nil, overrides Workload with explicit
	// instruction sources (e.g. replayed trace files); one per core.
	Sources []trace.Source

	// Shares holds each thread's allocated fraction of the memory
	// system; nil means the paper's static equal allocation 1/N.
	Shares []core.Share

	// Policy selects the memory scheduler; nil means FR-FCFS.
	Policy PolicyFactory

	// CPU, Cache, and Mem configure the substrates; zero values select
	// the paper's Table 5 configuration.
	CPU   cpu.Config
	Cache cache.HierarchyConfig
	Mem   memctrl.Config

	// ReqTransit and RespTransit are the on-chip latencies between an
	// L2 miss and the memory controller, and between the end of the
	// data burst and the fill at the core.
	ReqTransit, RespTransit int

	// Seed perturbs the trace generators deterministically.
	Seed uint64

	// Strict disables the event-driven fast path and runs the seed's
	// exhaustive cycle-by-cycle loop. Simulated results are identical
	// either way (the equivalence tests assert it); strict mode exists
	// as a cross-check oracle and a debugging aid. The FQMS_STRICT
	// environment variable (any non-empty value) forces it globally.
	Strict bool

	// Audit attaches the runtime invariant auditor (package audit) to the
	// memory controller; every issued SDRAM command and completed request
	// is re-validated against independently recomputed timing,
	// conservation, VTMS, and FQ bank-scheduling invariants, and any
	// violation panics with the recent command history. Results are
	// identical with or without. The FQMS_AUDIT environment variable (any
	// non-empty value) forces it globally.
	Audit bool

	// Interference enables the controller's per-request delay
	// attribution: every cycle a request waits is charged to an
	// exclusive cause and aggressor thread, exposed as a
	// cycles[victim][aggressor] matrix (memctrl.InterferenceSnapshot,
	// the /interference telemetry endpoint, and the per-run
	// .interference.json artifact). Observation-only: results, series,
	// and checkpoint-restored continuations are bit-identical with or
	// without. The FQMS_INTERFERENCE environment variable (any
	// non-empty value) forces it globally.
	Interference bool

	// Metrics, when non-nil, registers the whole stack's observability
	// metrics with the registry: the controller's per-bank command mix
	// and VTMS bookkeeping (see memctrl.Config.Metrics) plus per-thread
	// end-to-end read-latency histograms, retired-instruction counts,
	// and ROB-stall cycles. Metrics are write-only from the simulation's
	// point of view: results are bit-identical with or without.
	Metrics *metrics.Registry

	// Trace, when non-nil, streams a Chrome trace-event (about://tracing)
	// timeline of SDRAM commands and request lifetimes. Purely
	// observational, like Metrics.
	Trace *metrics.TraceWriter

	// SampleInterval > 0 enables epoch telemetry: a metrics.Sampler
	// snapshots the registry every SampleInterval cycles (per-epoch
	// counter and histogram deltas in a bounded ring) and a
	// memctrl.FairnessMonitor scores each thread's service share
	// against its phi. Samples land on exact interval multiples: the
	// event-driven skip-ahead clamps to the next boundary instead of
	// re-running per-cycle work. A registry is created automatically
	// when Metrics is nil. Purely observational: results are
	// bit-identical with sampling on or off.
	SampleInterval int64

	// SampleCapacity bounds the retained epochs per series (0 selects
	// metrics.DefaultSampleCapacity).
	SampleCapacity int

	// Workers > 1 enables intra-run parallelism: each cycle, per-channel
	// bank scheduling and per-core work fan out across a fork/join pool
	// of that total size (capped at GOMAXPROCS and at the useful width
	// channels+cores), and a single-threaded merge then applies the
	// cross-channel decisions in canonical channel order. Results,
	// telemetry series, and checkpoint bytes are bit-identical to serial
	// mode (the equivalence suite asserts it). 0 and 1 mean serial.
	// Strict mode always runs serially. Systems with Workers > 1 own
	// pool goroutines: call Close when done. The FQMS_WORKERS
	// environment variable, when set to an integer, overrides this
	// field globally.
	Workers int
}

// withDefaults fills zero-valued fields with Table 5 defaults.
func (c Config) withDefaults() (Config, error) {
	if len(c.Sources) > 0 && len(c.Workload) == 0 {
		// Replay mode: synthesize placeholder profiles so the rest of
		// the configuration sees a consistent core count.
		c.Workload = make([]trace.Profile, len(c.Sources))
		for i, s := range c.Sources {
			c.Workload[i] = trace.Profile{Name: s.Name()}
		}
	}
	if len(c.Workload) == 0 {
		return c, fmt.Errorf("sim: empty workload")
	}
	if len(c.Sources) > 0 && len(c.Sources) != len(c.Workload) {
		return c, fmt.Errorf("sim: %d sources for %d cores", len(c.Sources), len(c.Workload))
	}
	n := len(c.Workload)
	if c.Shares == nil {
		c.Shares = make([]core.Share, n)
		for i := range c.Shares {
			c.Shares[i] = core.EqualShare(n)
		}
	}
	if len(c.Shares) != n {
		return c, fmt.Errorf("sim: %d shares for %d cores", len(c.Shares), n)
	}
	for i, s := range c.Shares {
		if !s.Valid() {
			return c, fmt.Errorf("sim: invalid share %v for core %d", s, i)
		}
	}
	if c.Policy == nil {
		c.Policy = FRFCFS
	}
	if c.CPU == (cpu.Config{}) {
		c.CPU = cpu.DefaultConfig()
	}
	if c.Cache == (cache.HierarchyConfig{}) {
		c.Cache = cache.DefaultHierarchyConfig()
	}
	if c.Mem.Threads == 0 {
		def := memctrl.DefaultConfig(n)
		def.DRAM = c.Mem.DRAM
		if def.DRAM.Banks() == 0 {
			def.DRAM = dram.DefaultConfig()
		}
		if c.Mem.Channels > 1 {
			def.Channels = c.Mem.Channels
		}
		def.SharedBuffers = c.Mem.SharedBuffers
		def.RowPolicy = c.Mem.RowPolicy
		def.DisableRefresh = c.Mem.DisableRefresh
		c.Mem = def
	}
	c.Mem.Threads = n
	// The transit defaults are a calibration choice: with a short
	// L2-to-controller round trip, a 16-MSHR thread can keep the DDR2
	// data bus saturated, which the paper's aggressive benchmarks
	// evidently do ("the first six subject threads demand more than
	// half of the memory system bandwidth"). Longer transits starve the
	// MSHR pipeline and cap every thread near 45% utilization.
	if c.ReqTransit == 0 {
		c.ReqTransit = 10
	}
	if c.RespTransit == 0 {
		c.RespTransit = 10
	}
	if os.Getenv("FQMS_STRICT") != "" {
		c.Strict = true
	}
	if v := os.Getenv("FQMS_WORKERS"); v != "" {
		if w, err := strconv.Atoi(v); err == nil {
			c.Workers = w
		}
	}
	if os.Getenv("FQMS_AUDIT") != "" {
		c.Audit = true
	}
	if c.Audit {
		c.Mem.Audit = true
	}
	if os.Getenv("FQMS_INTERFERENCE") != "" {
		c.Interference = true
	}
	if c.Interference {
		c.Mem.Interference = true
	}
	if c.SampleInterval > 0 && c.Metrics == nil {
		c.Metrics = metrics.New()
	}
	c.Mem.Metrics = c.Metrics
	c.Mem.Trace = c.Trace
	return c, nil
}

// timedAddr is an address in transit at a given delivery time.
type timedAddr struct {
	addr uint64
	at   int64
}

// timedQueue is a FIFO of in-transit addresses, consumed by head index
// instead of reslicing so the backing array is reused once the queue
// drains: the steady state pushes and pops without allocating.
type timedQueue struct {
	buf  []timedAddr
	head int
}

func (q *timedQueue) push(e timedAddr) { q.buf = append(q.buf, e) }

func (q *timedQueue) peek() (timedAddr, bool) {
	if q.head >= len(q.buf) {
		return timedAddr{}, false
	}
	return q.buf[q.head], true
}

func (q *timedQueue) pop() {
	q.head++
	if q.head == len(q.buf) {
		// Fully drained: restart from index 0 in the same backing array.
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 > len(q.buf) {
		// Mostly consumed but never empty: compact so the buffer cannot
		// crawl rightward unboundedly.
		q.buf = append(q.buf[:0], q.buf[q.head:]...)
		q.head = 0
	}
}

// System is one simulated CMP.
type System struct {
	cfg   Config
	cores []*cpu.Core
	ctrl  *memctrl.Controller
	cycle int64

	fetchQ []timedQueue // per core, toward the controller (reads)
	wbQ    []timedQueue // per core, toward the controller (writes)
	respQ  []timedQueue // per core, fills returning

	// latHist holds the per-thread end-to-end read-latency histograms
	// (nil when Config.Metrics is unset).
	latHist []*metrics.Histogram

	// Epoch telemetry (nil/noEpoch when Config.SampleInterval is 0):
	// sampler and fair are sampled when the cycle counter crosses
	// epochNext, and nextWake clamps skip-ahead jumps to that boundary
	// so samples land on exact interval multiples.
	sampler   *metrics.Sampler
	fair      *memctrl.FairnessMonitor
	epochNext int64

	// Intra-run parallelism (nil pool = serial). parTask is a persistent
	// closure over the par* fields so the hot loop dispatches work with
	// zero allocations: task indices [0, parNch) schedule one channel
	// each (skipped when parSched is false), the rest advance one core
	// each. See Step for the phase layout and why it is race-free.
	pool     *par.Pool
	parTask  func(int)
	parNow   int64
	parNch   int
	parSched bool

	snap baseline
}

// noEpoch is epochNext's "sampling disabled" sentinel; a cycle counter
// never reaches it.
const noEpoch = int64(1) << 62

// New constructs a system.
func New(cfg Config) (*System, error) {
	// An explicitly configured CPU or cache applies to every core;
	// otherwise each core's configuration follows its profile's agent
	// kind (the Table 5 OoO core, or the deep-queue streaming agent).
	cpuExplicit := cfg.CPU != (cpu.Config{})
	cacheExplicit := cfg.Cache != (cache.HierarchyConfig{})
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := len(cfg.Workload)
	policy := cfg.Policy(cfg.Shares, cfg.Mem.TotalBanks(), cfg.Mem.DRAM.Timing)
	ctrl, err := memctrl.New(cfg.Mem, policy)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:    cfg,
		ctrl:   ctrl,
		cores:  make([]*cpu.Core, n),
		fetchQ: make([]timedQueue, n),
		wbQ:    make([]timedQueue, n),
		respQ:  make([]timedQueue, n),
	}
	// Attack-pattern generators target the system's actual address
	// geometry, so bank aim survives channel-count changes.
	geom := trace.Geom{
		Channels: cfg.Mem.Channels,
		Ranks:    cfg.Mem.DRAM.Ranks,
		Banks:    cfg.Mem.DRAM.BanksPerRank,
		Rows:     cfg.Mem.DRAM.RowsPerBank,
		Cols:     cfg.Mem.DRAM.ColsPerRow,
	}
	if geom.Channels < 1 {
		geom.Channels = 1
	}
	for i := 0; i < n; i++ {
		cpuCfg, cacheCfg := cfg.CPU, cfg.Cache
		if cfg.Workload[i].Agent == trace.AgentStream {
			if !cpuExplicit {
				cpuCfg = cpu.StreamConfig()
			}
			if !cacheExplicit {
				cacheCfg = cache.StreamHierarchyConfig()
			}
		}
		hier, err := cache.NewHierarchy(cacheCfg)
		if err != nil {
			return nil, err
		}
		var src trace.Source
		if cfg.Sources != nil {
			src = cfg.Sources[i]
		} else {
			gen, err := trace.NewGeneratorGeom(cfg.Workload[i], i, cfg.Seed+1, geom)
			if err != nil {
				return nil, err
			}
			src = gen
		}
		c, err := cpu.New(i, cpuCfg, src, hier)
		if err != nil {
			return nil, err
		}
		s.cores[i] = c
	}
	ctrl.OnReadDone = func(req *core.Request, now int64) {
		t := req.Thread
		s.respQ[t].push(timedAddr{addr: req.Addr, at: now + int64(s.cfg.RespTransit)})
	}
	if cfg.Metrics != nil {
		s.initMetrics(cfg.Metrics)
	}
	s.epochNext = noEpoch
	if cfg.SampleInterval > 0 {
		s.fair = memctrl.NewFairnessMonitor(ctrl, cfg.SampleInterval, cfg.SampleCapacity)
		s.fair.RegisterMetrics(cfg.Metrics)
		s.sampler = metrics.NewSampler(cfg.Metrics, metrics.SamplerConfig{
			Interval: cfg.SampleInterval,
			Capacity: cfg.SampleCapacity,
		})
		// Baseline sample at cycle 0: a live scrape has a full
		// exposition before the first boundary, and epoch deltas sum to
		// the cumulative totals.
		s.fair.Sample(0)
		s.sampler.Sample(0)
		s.epochNext = cfg.SampleInterval
	}
	ctrl.SetEventDriven(!cfg.Strict)
	if !cfg.Strict && cfg.Workers > 1 {
		s.parNch = ctrl.Channels()
		width := s.parNch + n
		w := cfg.Workers
		if w > width {
			w = width
		}
		s.pool = par.New(w)
		s.parTask = func(i int) {
			if s.parSched {
				if i < s.parNch {
					s.ctrl.ScheduleChannel(i, s.parNow)
					return
				}
				i -= s.parNch
			}
			s.coreStep(i, s.parNow)
		}
	}
	return s, nil
}

// Close releases the intra-run worker pool's goroutines; a no-op for
// serial systems. The System must not be stepped afterwards.
func (s *System) Close() { s.pool.Close() }

// Sampler returns the epoch sampler (nil unless Config.SampleInterval
// is set).
func (s *System) Sampler() *metrics.Sampler { return s.sampler }

// Fairness returns the fairness-over-time monitor (nil unless
// Config.SampleInterval is set).
func (s *System) Fairness() *memctrl.FairnessMonitor { return s.fair }

// takeSamples drives every due epoch series at the current cycle and
// recomputes the next boundary.
func (s *System) takeSamples() {
	now := s.cycle
	// The fairness monitor samples first so the registry Funcs it
	// mirrors (cumulative shortfall, last excess) are fresh when the
	// sampler snapshots them.
	if now >= s.fair.NextSampleAt() {
		s.fair.Sample(now)
	}
	if now >= s.sampler.NextSampleAt() {
		s.sampler.Sample(now)
	}
	// Refresh the snapshot concurrent readers (the telemetry server's
	// /interference endpoint) see; a no-op when attribution is off.
	s.ctrl.PublishInterference()
	s.epochNext = s.fair.NextSampleAt()
	if next := s.sampler.NextSampleAt(); next < s.epochNext {
		s.epochNext = next
	}
}

// fixedReadLatency is the deterministic part of an end-to-end read: L1
// and L2 lookups plus both transit legs.
func (s *System) fixedReadLatency() int64 {
	return int64(s.cfg.Cache.L1D.Latency + s.cfg.Cache.L2.Latency +
		s.cfg.ReqTransit + s.cfg.RespTransit)
}

// initMetrics registers the system-level metrics and chains an
// end-to-end latency observation onto the controller's read-completion
// callback. Observation order and content never influence simulation
// state, preserving bit-identical results.
func (s *System) initMetrics(reg *metrics.Registry) {
	s.latHist = make([]*metrics.Histogram, len(s.cores))
	fixed := s.fixedReadLatency()
	for i, c := range s.cores {
		c := c
		s.latHist[i] = reg.Histogram(fmt.Sprintf("sim.thread%d.read_latency", i))
		reg.Func(fmt.Sprintf("cpu.thread%d.retired", i), func() int64 { return c.Retired })
		reg.Func(fmt.Sprintf("cpu.thread%d.loads_retired", i), func() int64 { return c.LoadsRetired })
		reg.Func(fmt.Sprintf("cpu.thread%d.stall_cycles", i), func() int64 { return c.StallCycles })
	}
	reg.Func("sim.cycle", func() int64 { return s.cycle })
	inner := s.ctrl.OnReadDone
	s.ctrl.OnReadDone = func(req *core.Request, now int64) {
		s.latHist[req.Thread].Observe(now - req.ArrivalReal + fixed)
		inner(req, now)
	}
}

// Controller exposes the memory controller (for statistics and tests).
func (s *System) Controller() *memctrl.Controller { return s.ctrl }

// FinishAudit runs the auditor's end-of-run conservation and starvation
// checks (a no-op unless auditing is enabled). Run calls it after the
// measurement window; long-lived callers of Step should call it once at
// the end of the simulation.
func (s *System) FinishAudit() { s.ctrl.FinishAudit(s.cycle) }

// Core returns core i.
func (s *System) Core(i int) *cpu.Core { return s.cores[i] }

// SetShare reassigns thread i's bandwidth share at run time. It reports
// whether the active policy supports share reassignment (the VFTF
// family does; FR-FCFS has no shares).
func (s *System) SetShare(thread int, share core.Share) bool {
	ss, ok := s.ctrl.Policy().(core.ShareSetter)
	if ok {
		ss.SetThreadShare(thread, share)
		// Share reassignment rewrites policy keys without a command
		// issue, so every cached scheduling decision is stale.
		s.ctrl.InvalidateScheduling()
	}
	return ok
}

// Cycle returns the current cycle.
func (s *System) Cycle() int64 { return s.cycle }

// Step advances the system by n cycles. Unless Config.Strict is set it
// uses an event-driven fast path: after fully simulating a cycle, it
// computes the earliest future cycle at which any component can act —
// a transit-queue delivery, a core with issuable work (cpu.NextWork),
// or a controller event (memctrl.NextEventAt) — and jumps the clock
// there, batch-crediting the skipped cycles to the virtual clock.
// Simulated results are bit-identical to the strict per-cycle loop.
func (s *System) Step(n int64) {
	end := s.cycle + n
	for s.cycle < end {
		now := s.cycle
		if s.pool != nil {
			// Parallel cycle. Phase 1 (serial): read completions and the
			// virtual clock (TickBegin), which append response fills —
			// never due this cycle, RespTransit >= 1. Phase 2 (one
			// fork/join): every channel's bank scheduling and every
			// core's cycle, concurrently — channels write only
			// channel-partitioned controller state, cores only their own
			// state, and neither reads what the other writes. Phase 3
			// (serial): TickEnd applies the channel decisions in
			// canonical channel order, then the acceptance attempts run
			// in core order. The serial path below interleaves these
			// phases per core/channel; the phases commute (cores never
			// read controller state, accepts are the cores' only
			// controller writes and stay in core order), so both paths
			// are bit-identical.
			s.parNow = now
			s.parSched = s.ctrl.TickBegin(now)
			ntasks := len(s.cores)
			if s.parSched {
				ntasks += s.parNch
			}
			s.pool.Run(ntasks, s.parTask)
			if s.parSched {
				s.ctrl.TickEnd(now)
			}
		} else {
			s.ctrl.Tick(now)
			for i := range s.cores {
				s.coreStep(i, now)
			}
		}
		for i := range s.cores {
			// Offer due requests to the controller (one read and one
			// write acceptance attempt per core per cycle; NACKs retry).
			if e, ok := s.fetchQ[i].peek(); ok && e.at <= now {
				if s.ctrl.Accept(i, e.addr, false, now) {
					s.fetchQ[i].pop()
				}
			}
			if e, ok := s.wbQ[i].peek(); ok && e.at <= now {
				if s.ctrl.Accept(i, e.addr, true, now) {
					s.wbQ[i].pop()
				}
			}
		}

		if !s.cfg.Strict {
			if wake := s.nextWake(now, end); wake > now+1 {
				// No component can act before wake: credit the virtual
				// clock for the skipped span and jump. Skipped cycles
				// retire nothing by construction, so they are ROB stalls
				// for any core holding instructions (matching the strict
				// per-cycle accounting).
				s.ctrl.SkipTo(now+1, wake)
				for _, c := range s.cores {
					c.CreditStall(wake - now - 1)
				}
				s.cycle = wake
				if s.cycle >= s.epochNext {
					s.takeSamples()
				}
				continue
			}
		}
		s.cycle++
		if s.cycle >= s.epochNext {
			s.takeSamples()
		}
	}
}

// coreStep advances core i through cycle now: deliver due fills, tick
// the pipeline, and drain new misses and writebacks into the transit
// queues. It touches only core i's state (core, hierarchy, and the
// core's three queues), so distinct cores may step concurrently; the
// acceptance attempts, which do mutate the controller, stay in Step's
// serial tail.
func (s *System) coreStep(i int, now int64) {
	c := s.cores[i]
	// Deliver due fills.
	for {
		e, ok := s.respQ[i].peek()
		if !ok || e.at > now {
			break
		}
		if tok, ok := c.Hierarchy().TokenFor(e.addr); ok {
			c.Hierarchy().Fill(tok)
			c.OnFill(tok, now)
		}
		s.respQ[i].pop()
	}

	c.Tick(now)

	// Move new misses and writebacks into the transit queues.
	h := c.Hierarchy()
	for {
		addr, _, ok := h.NextFetch()
		if !ok {
			break
		}
		h.FetchAccepted()
		s.fetchQ[i].push(timedAddr{addr: addr, at: now + int64(s.cfg.ReqTransit)})
	}
	for {
		addr, ok := h.NextWriteback()
		if !ok {
			break
		}
		h.WritebackAccepted()
		s.wbQ[i].push(timedAddr{addr: addr, at: now + int64(s.cfg.ReqTransit)})
	}
}

// nextWake returns the earliest cycle in (now, end] at which any core or
// the controller can make progress, given that cycle now has been fully
// simulated. It is conservative: returning now+1 is always safe (no
// skip), and any later value must be provably dormant in between.
func (s *System) nextWake(now, end int64) int64 {
	wake := end
	for i, c := range s.cores {
		// Pending fills: delivery times are monotone, so the head bounds
		// the queue.
		if e, ok := s.respQ[i].peek(); ok {
			if e.at <= now+1 {
				return now + 1
			}
			if e.at < wake {
				wake = e.at
			}
		}
		// Pending requests toward the controller. A due head that the
		// controller would NACK is ignored here: buffer occupancy only
		// changes at controller event cycles, which NextEventAt covers.
		if e, ok := s.fetchQ[i].peek(); ok && s.ctrl.CanAccept(i, false) {
			if e.at <= now+1 {
				return now + 1
			}
			if e.at < wake {
				wake = e.at
			}
		}
		if e, ok := s.wbQ[i].peek(); ok && s.ctrl.CanAccept(i, true) {
			if e.at <= now+1 {
				return now + 1
			}
			if e.at < wake {
				wake = e.at
			}
		}
		// The core itself: retirement, load issue, store drain, dispatch.
		if w := c.NextWork(now + 1); w <= now+1 {
			return now + 1
		} else if w < wake {
			wake = w
		}
	}
	if w := s.ctrl.NextEventAt(); w < wake {
		wake = w
	}
	// Telemetry epoch boundary: stop the jump there so samples land on
	// exact interval multiples. Waking early is always safe; sampling
	// reads state without changing it.
	if s.epochNext < wake {
		wake = s.epochNext
	}
	if wake < now+1 {
		return now + 1
	}
	return wake
}

// snapshot captures cumulative counters at the start of a measurement
// window so Results can report deltas.
type baseline struct {
	cycle                       int64
	retired                     []int64
	stalls                      []int64
	readsDone                   []int64
	readLatSum                  []int64
	busCycles                   []int64
	dataBusBusy                 int64
	bankBusy                    int64
	rowHits, rowConf, rowClosed []int64
}

// BeginMeasurement marks the end of warmup: statistics reported by
// Results cover everything after this call.
func (s *System) BeginMeasurement() {
	n := len(s.cores)
	s.snap = baseline{
		cycle:      s.cycle,
		retired:    make([]int64, n),
		stalls:     make([]int64, n),
		readsDone:  make([]int64, n),
		readLatSum: make([]int64, n),
		busCycles:  make([]int64, n),
		rowHits:    make([]int64, n),
		rowConf:    make([]int64, n),
		rowClosed:  make([]int64, n),
	}
	for i, c := range s.cores {
		st := s.ctrl.Stats(i)
		s.snap.retired[i] = c.Retired
		s.snap.stalls[i] = c.StallCycles
		s.snap.readsDone[i] = st.ReadsDone
		s.snap.readLatSum[i] = st.ReadLatencySum
		s.snap.busCycles[i] = st.DataBusCycles
		s.snap.rowHits[i] = st.RowHits
		s.snap.rowConf[i] = st.RowConflicts
		s.snap.rowClosed[i] = st.RowClosed
	}
	s.snap.dataBusBusy = s.ctrl.DataBusBusyCycles()
	s.snap.bankBusy = s.ctrl.BankBusyCycles(s.cycle)
	// The interference matrix windows the same way: attribution
	// accumulated during warmup is excluded from Interference().
	s.ctrl.MarkInterferenceBaseline()
}

// Interference returns the delay-attribution matrix accumulated since
// BeginMeasurement (false when Config.Interference is off). Call on
// the simulation goroutine, like Results.
func (s *System) Interference() (memctrl.InterferenceSnapshot, bool) {
	return s.ctrl.InterferenceSnapshot(true)
}

// ThreadResult is one thread's measured behavior over the window.
type ThreadResult struct {
	Benchmark      string
	Instructions   int64
	IPC            float64
	ReadsDone      int64
	AvgReadLatency float64 // end to end: L2 path + transits + controller
	ReadLatP50     float64 // median end-to-end read latency
	ReadLatP95     float64 // 95th-percentile end-to-end read latency
	ReadLatP99     float64 // 99th-percentile end-to-end read latency
	StallCycles    int64   // cycles the ROB held instructions but retired none
	BusUtil        float64 // fraction of peak data bus bandwidth
	RowHitRate     float64
}

// Result is the outcome of one measured window.
type Result struct {
	Cycles      int64
	Threads     []ThreadResult
	DataBusUtil float64 // aggregate
	BankUtil    float64 // aggregate, averaged over banks
	PolicyName  string
}

// Results reports the statistics accumulated since BeginMeasurement.
func (s *System) Results() Result {
	if s.snap.retired == nil {
		s.BeginMeasurementAtZero()
	}
	window := s.cycle - s.snap.cycle
	res := Result{
		Cycles:     window,
		Threads:    make([]ThreadResult, len(s.cores)),
		PolicyName: s.ctrl.Policy().Name(),
	}
	// The fixed latency between a core's L2 miss and the controller,
	// plus the return path: L1 + L2 lookup and both transits.
	fixedLat := float64(s.cfg.Cache.L1D.Latency + s.cfg.Cache.L2.Latency +
		s.cfg.ReqTransit + s.cfg.RespTransit)
	for i, c := range s.cores {
		st := s.ctrl.Stats(i)
		tr := &res.Threads[i]
		tr.Benchmark = s.cfg.Workload[i].Name
		tr.Instructions = c.Retired - s.snap.retired[i]
		if window > 0 {
			tr.IPC = float64(tr.Instructions) / float64(window)
			tr.BusUtil = float64(st.DataBusCycles-s.snap.busCycles[i]) /
				float64(window*int64(s.ctrl.Channels()))
		}
		tr.ReadsDone = st.ReadsDone - s.snap.readsDone[i]
		tr.StallCycles = c.StallCycles - s.snap.stalls[i]
		if tr.ReadsDone > 0 {
			tr.AvgReadLatency = float64(st.ReadLatencySum-s.snap.readLatSum[i])/float64(tr.ReadsDone) + fixedLat
			// The histogram is cumulative (not windowed); with standard
			// warmup/window proportions the tail estimate is dominated
			// by the window.
			tr.ReadLatP50 = st.ReadLatencyQuantile(0.50) + fixedLat
			tr.ReadLatP95 = st.ReadLatencyQuantile(0.95) + fixedLat
			tr.ReadLatP99 = st.ReadLatencyQuantile(0.99) + fixedLat
		}
		hits := st.RowHits - s.snap.rowHits[i]
		tot := hits + (st.RowConflicts - s.snap.rowConf[i]) + (st.RowClosed - s.snap.rowClosed[i])
		if tot > 0 {
			tr.RowHitRate = float64(hits) / float64(tot)
		}
	}
	if window > 0 {
		nch := int64(s.ctrl.Channels())
		res.DataBusUtil = float64(s.ctrl.DataBusBusyCycles()-s.snap.dataBusBusy) / float64(window*nch)
		res.BankUtil = float64(s.ctrl.BankBusyCycles(s.cycle)-s.snap.bankBusy) /
			float64(window*nch*int64(s.cfg.Mem.DRAM.Banks()))
	}
	return res
}

// BeginMeasurementAtZero initializes an empty snapshot (measure from
// cycle zero); Results calls it implicitly when BeginMeasurement was
// never invoked.
func (s *System) BeginMeasurementAtZero() {
	saved := s.cycle
	s.cycle = 0
	s.BeginMeasurement()
	s.cycle = saved
	s.snap.cycle = 0
	for i := range s.snap.retired {
		s.snap.retired[i] = 0
		s.snap.stalls[i] = 0
		s.snap.readsDone[i] = 0
		s.snap.readLatSum[i] = 0
		s.snap.busCycles[i] = 0
		s.snap.rowHits[i] = 0
		s.snap.rowConf[i] = 0
		s.snap.rowClosed[i] = 0
	}
	s.snap.dataBusBusy = 0
	s.snap.bankBusy = 0
}

// Run is the convenience entry point: simulate warmup cycles, then
// measure for window cycles and return the results.
func Run(cfg Config, warmup, window int64) (Result, error) {
	_, res, err := RunSystem(cfg, warmup, window)
	return res, err
}

// RunSystem is Run returning the simulated System as well, for callers
// that need post-run access to its telemetry (epoch samples, the
// fairness monitor, the metrics registry).
func RunSystem(cfg Config, warmup, window int64) (*System, Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, Result{}, err
	}
	s.Step(warmup)
	s.BeginMeasurement()
	s.Step(window)
	s.FinishAudit()
	return s, s.Results(), nil
}
