package core

import (
	"testing"

	"repro/internal/dram"
)

// propRng is a tiny deterministic generator (splitmix64) so the
// property tests replay identically everywhere, including under -race.
type propRng struct{ s uint64 }

func (r *propRng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *propRng) intn(n int) int { return int(r.next() % uint64(n)) }

var propKinds = [...]CmdKind{CmdPrecharge, CmdActivate, CmdRead, CmdWrite}

// TestVTMSRegistersMonotone: the Table 4 updates only ever move the
// virtual clocks forward. B_j.R = max{a, B_j.R} + L/phi with L > 0 and
// C.R = max{B_j.R, C.R} + C.L/phi are both strictly greater than the
// old register value, for every command kind, bank, share, and arrival
// order — including arrivals far in the past (a << B_j.R) and far in
// the future (a >> B_j.R).
func TestVTMSRegistersMonotone(t *testing.T) {
	const nbanks, nchans, events = 8, 2, 20_000
	timing := dram.DefaultConfig().Timing
	shares := []Share{{1, 2}, {1, 7}, {9, 10}, {1, 64}}
	rng := &propRng{s: 41}
	for si, share := range shares {
		v := NewVTMS(si, share, nbanks, timing)
		v.SetChannels(nchans)
		var clock int64
		for i := 0; i < events; i++ {
			// Arrivals wander around the register values: sometimes
			// stale, sometimes ahead of everything seen so far.
			clock += int64(rng.intn(200))
			arrival := clock - int64(rng.intn(400)) + 100
			if arrival < 0 {
				arrival = 0
			}
			bank := rng.intn(nbanks)
			ch := rng.intn(nchans)
			kind := propKinds[rng.intn(len(propKinds))]
			isWrite := kind == CmdWrite

			prevBank := v.BankR(bank)
			prevChan := v.ChanRAt(ch)
			v.OnCommandIssue(kind, arrival, bank, ch, isWrite)

			if v.BankR(bank) <= prevBank {
				t.Fatalf("share %v event %d: bank %d register moved %d -> %d (kind %v, arrival %d)",
					share, i, bank, prevBank, v.BankR(bank), kind, arrival)
			}
			if kind.IsCAS() {
				if v.ChanRAt(ch) <= prevChan {
					t.Fatalf("share %v event %d: channel %d register moved %d -> %d on CAS",
						share, i, ch, prevChan, v.ChanRAt(ch))
				}
			} else if v.ChanRAt(ch) != prevChan {
				t.Fatalf("share %v event %d: channel register changed on non-CAS %v", share, i, kind)
			}
		}
	}
}

// TestVTMSFinishTimeBounds: Equation 7's output is bounded below by
// every term it maxes over — the arrival, the bank register, and the
// channel register — plus the strictly positive service times, and it
// never mutates the registers it reads.
func TestVTMSFinishTimeBounds(t *testing.T) {
	const nbanks = 4
	timing := dram.DefaultConfig().Timing
	v := NewVTMS(0, Share{1, 3}, nbanks, timing)
	rng := &propRng{s: 97}
	for i := 0; i < 10_000; i++ {
		arrival := int64(rng.intn(1 << 20))
		bank := rng.intn(nbanks)
		state := BankState(rng.intn(3))
		isWrite := rng.intn(2) == 1

		beforeBank := v.BankR(bank)
		beforeChan := v.ChanR()
		ft := v.FinishTime(arrival, bank, 0, isWrite, state)
		if v.BankR(bank) != beforeBank || v.ChanR() != beforeChan {
			t.Fatalf("event %d: FinishTime mutated registers", i)
		}
		if ft <= maxVT(maxVT(FromCycles(arrival), beforeBank), beforeChan) {
			t.Fatalf("event %d: finish time %d not beyond max(arrival, B.R, C.R)", i, ft)
		}

		// Occasionally consume service so the registers advance.
		if rng.intn(4) == 0 {
			v.OnCommandIssue(propKinds[rng.intn(len(propKinds))], arrival, bank, 0, isWrite)
		}
	}
}

// TestFrozenKeyNeverMutates: once a request's first command issues, its
// key is frozen and nothing — later commands of the same request, other
// requests' service, register churn, even share reassignment — may
// change it. This is the scheduling-stability contract the audit layer
// enforces at run time; here it is exercised directly against the
// policy, with the bank state pinned per request so the pre-freeze
// provisional key is evaluated consistently.
func TestFrozenKeyNeverMutates(t *testing.T) {
	const nbanks, threads, rounds = 8, 4, 5_000
	timing := dram.DefaultConfig().Timing
	shares := make([]Share, threads)
	for i := range shares {
		shares[i] = EqualShare(threads)
	}
	for _, pol := range []interface {
		Policy
		ShareSetter
	}{
		NewFRVFTF(shares, nbanks, timing),
		NewFQVFTF(shares, nbanks, timing),
		NewFRVSTF(shares, nbanks, timing),
	} {
		rng := &propRng{s: 7}
		frozen := map[*Request]int64{}
		var live []*Request
		var nextID uint64
		var clock int64
		for i := 0; i < rounds; i++ {
			clock += int64(rng.intn(50))
			switch rng.intn(3) {
			case 0: // new request
				nextID++
				live = append(live, &Request{
					ID:         nextID,
					Thread:     rng.intn(threads),
					Arrival:    clock,
					GlobalBank: rng.intn(nbanks),
					IsWrite:    rng.intn(4) == 0,
				})
			case 1: // issue a command for a random live request
				if len(live) == 0 {
					continue
				}
				r := live[rng.intn(len(live))]
				var kind CmdKind
				if _, isFrozen := frozen[r]; !isFrozen {
					kind = propKinds[rng.intn(len(propKinds))]
					if r.IsWrite && kind == CmdRead {
						kind = CmdWrite
					}
					pol.OnIssue(r, kind)
					if !r.KeyFrozen {
						t.Fatalf("%s: first issue did not freeze the key", pol.Name())
					}
					frozen[r] = int64(r.Key)
				} else {
					kind = CmdRead
					if r.IsWrite {
						kind = CmdWrite
					}
					pol.OnIssue(r, kind)
				}
			case 2: // share reassignment: rewrites future keys only
				pol.SetThreadShare(rng.intn(threads), Share{1 + rng.intn(3), 4})
			}
			// Every frozen key must still read back unchanged, both on
			// the request and through the policy.
			for r, want := range frozen {
				if int64(r.Key) != want {
					t.Fatalf("%s: frozen key of request %d mutated %d -> %d", pol.Name(), r.ID, want, r.Key)
				}
				if got := pol.Key(r, BankState(rng.intn(3))); got != want {
					t.Fatalf("%s: policy re-keyed frozen request %d: %d -> %d", pol.Name(), r.ID, want, got)
				}
			}
		}
		if len(frozen) < rounds/10 {
			t.Fatalf("%s: only %d requests froze; generator is broken", pol.Name(), len(frozen))
		}
	}
}
