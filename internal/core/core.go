// Package core implements the paper's primary contribution: the Fair
// Queuing (FQ) memory scheduler of Nesbit, Aggarwal, Laudon, and Smith,
// "Fair Queuing Memory Systems" (MICRO 2006).
//
// The package provides:
//
//   - Virtual Time Memory System (VTMS) bookkeeping: per-thread virtual
//     finish-time registers for every bank and for the channel, together
//     with the finish-time function (Eq. 7) and the per-command update
//     functions (Eqs. 8 and 9, Table 4).
//   - Scheduling policies that plug into the memory controller: FCFS,
//     FR-FCFS (the baseline), FR-VFTF (virtual finish-time priority
//     without the FQ bank rule), and FQ-VFTF (the full FQ memory
//     scheduler with the Section 3.3 priority-inversion bound).
//
// Virtual times are kept in 48.16 fixed point (type VTime) so that share
// reciprocals (1/phi) are exact for every rational share and arithmetic
// is deterministic across platforms.
package core

import "fmt"

// VTShift is the number of fractional bits in a VTime.
const VTShift = 16

// VTime is a virtual time in fixed point: the high 48 bits are whole
// memory cycles, the low VTShift bits are fractional cycles.
type VTime int64

// FromCycles converts a whole cycle count into a VTime.
func FromCycles(c int64) VTime { return VTime(c << VTShift) }

// Cycles returns the whole-cycle part of a VTime, rounding down.
func (v VTime) Cycles() int64 { return int64(v) >> VTShift }

// Float returns the virtual time in cycles as a float64 (for reporting).
func (v VTime) Float() float64 { return float64(v) / float64(int64(1)<<VTShift) }

// Share is a thread's allocated fraction phi of the memory system,
// expressed as the rational Num/Den. A thread allocated Share{1, 4} is
// modeled as owning a private memory system running at one quarter of
// the physical memory frequency.
type Share struct {
	Num, Den int
}

// EqualShare returns the share 1/n, the static equal allocation the
// paper evaluates for an n-processor CMP.
func EqualShare(n int) Share { return Share{1, n} }

// Valid reports whether the share is a proper fraction 0 < Num/Den <= 1.
func (s Share) Valid() bool {
	return s.Num > 0 && s.Den > 0 && s.Num <= s.Den
}

// Reciprocal returns 1/phi in fixed point, i.e. the factor by which a
// request's physical service time is scaled into virtual service time.
func (s Share) Reciprocal() int64 {
	return (int64(s.Den) << VTShift) / int64(s.Num)
}

// Float returns phi as a float64.
func (s Share) Float() float64 { return float64(s.Num) / float64(s.Den) }

func (s Share) String() string { return fmt.Sprintf("%d/%d", s.Num, s.Den) }

// CmdKind identifies an SDRAM command. The paper calls activate and
// precharge "RAS commands" and read and write "CAS commands".
type CmdKind uint8

const (
	CmdNone CmdKind = iota
	CmdActivate
	CmdRead
	CmdWrite
	CmdPrecharge
	CmdRefresh
)

// IsCAS reports whether the command is a column access (read or write).
func (k CmdKind) IsCAS() bool { return k == CmdRead || k == CmdWrite }

func (k CmdKind) String() string {
	switch k {
	case CmdNone:
		return "none"
	case CmdActivate:
		return "activate"
	case CmdRead:
		return "read"
	case CmdWrite:
		return "write"
	case CmdPrecharge:
		return "precharge"
	case CmdRefresh:
		return "refresh"
	}
	return fmt.Sprintf("cmd(%d)", uint8(k))
}

// BankState describes the state of a DRAM bank relative to one request,
// which determines the request's bank service requirement (Table 3).
type BankState uint8

const (
	// BankConflict: the bank has a different row open; service requires
	// precharge + activate + column access.
	BankConflict BankState = iota
	// BankClosed: the bank is precharged; service requires activate +
	// column access.
	BankClosed
	// BankHit: the request's row is already open; service is just the
	// column access.
	BankHit
)

func (b BankState) String() string {
	switch b {
	case BankConflict:
		return "conflict"
	case BankClosed:
		return "closed"
	case BankHit:
		return "hit"
	}
	return fmt.Sprintf("bankstate(%d)", uint8(b))
}

// Request is one memory request inside the memory controller. The
// scheduler-facing state (arrival time, frozen virtual finish-time) lives
// here; the controller owns the lifecycle.
type Request struct {
	// ID is a controller-unique, monotonically increasing identifier.
	// It is the final FCFS tiebreak for every policy.
	ID uint64

	// Thread is the hardware thread index that issued the request.
	Thread int

	// Addr is the physical line address.
	Addr uint64

	// IsWrite distinguishes write-buffer entries from reads.
	IsWrite bool

	// Arrival is the virtual-clock cycle the request arrived at the
	// memory controller (the paper's a_i^k; the virtual clock is the
	// real clock paused during refresh).
	Arrival int64

	// ArrivalReal is the real cycle of arrival, used for latency
	// statistics (identical to Arrival except across refresh periods).
	ArrivalReal int64

	// Decoded address components.
	Rank, Bank, Row, Col int

	// Channel is the memory channel index (0 on single-channel
	// systems, which is all the paper evaluates; multi-channel support
	// is this implementation's future-work extension).
	Channel int

	// GlobalBank is the flat bank index across channels and ranks:
	// (channel*ranks + rank)*banksPerRank + bank.
	GlobalBank int

	// Key is the request's policy priority key in virtual-time fixed
	// point: the virtual finish-time under the VFTF-family policies
	// (FR-VFTF, FQ-VFTF, FR-VFTF-arrival) and the virtual *start*-time
	// under FR-VSTF. Before service begins it is recomputed on demand
	// from the thread's VTMS registers and the current bank state (the
	// stored value is write-only observability); once the first SDRAM
	// command for the request issues, it is frozen (KeyFrozen) and must
	// never change again — the audit layer enforces this contract.
	Key       VTime
	KeyFrozen bool

	// Issued counts SDRAM commands already issued for this request.
	Issued int
}
