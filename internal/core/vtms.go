package core

import (
	"fmt"

	"repro/internal/dram"
)

// VTMS is one thread's Virtual Time Memory System state (Section 3.1,
// Tables 1 and 2): a last-virtual-finish-time register per bank
// (B_j.R_i), one for the channel (C.R_i), and the thread's service share
// phi. A thread allocated share phi is modeled as owning a private
// memory system whose timing characteristics are time scaled by 1/phi;
// the registers track when each resource of that private system would
// become free.
type VTMS struct {
	thread int
	share  Share
	invPhi int64 // 1/phi in fixed point (VTShift fractional bits)

	bankR []VTime // B_j.R_i, one per (flat) bank
	chanR []VTime // C.R_i, one per memory channel

	timing dram.Timing
}

// NewVTMS returns the VTMS registers for one thread over nbanks banks.
func NewVTMS(thread int, share Share, nbanks int, t dram.Timing) *VTMS {
	if !share.Valid() {
		panic(fmt.Sprintf("core: invalid share %v for thread %d", share, thread))
	}
	return &VTMS{
		thread: thread,
		share:  share,
		invPhi: share.Reciprocal(),
		bankR:  make([]VTime, nbanks),
		chanR:  make([]VTime, 1),
		timing: t,
	}
}

// SetChannels resizes the per-channel finish-time registers for a
// multi-channel memory system (an extension beyond the paper, which
// evaluates a single channel and defers multi-channel to future work).
// It must be called before any scheduling activity.
func (v *VTMS) SetChannels(n int) {
	if n < 1 {
		panic(fmt.Sprintf("core: invalid channel count %d", n))
	}
	v.chanR = make([]VTime, n)
}

// Share returns the thread's allocated service share.
func (v *VTMS) Share() Share { return v.share }

// SetShare changes the thread's allocated share at run time -- the knob
// the paper hands to the OS or VMM ("this allocation ... could be
// assigned flexibly by either an OS or a virtual machine monitor").
// Existing register values are preserved: past service remains charged
// at the old rate, future service accrues at the new one.
func (v *VTMS) SetShare(s Share) {
	if !s.Valid() {
		panic(fmt.Sprintf("core: invalid share %v for thread %d", s, v.thread))
	}
	v.share = s
	v.invPhi = s.Reciprocal()
}

// BankR returns the bank j last-virtual-finish-time register (for tests
// and reports).
func (v *VTMS) BankR(bank int) VTime { return v.bankR[bank] }

// ChanR returns the channel-0 last-virtual-finish-time register.
func (v *VTMS) ChanR() VTime { return v.chanR[0] }

// ChanRAt returns channel c's last-virtual-finish-time register.
func (v *VTMS) ChanRAt(c int) VTime { return v.chanR[c] }

// scale converts a physical service time into the thread's virtual
// service time: L / phi.
func (v *VTMS) scale(l int) VTime { return VTime(int64(l) * v.invPhi) }

// bankService returns the request's Table 3 bank service requirement
// given the state of its bank at (prospective) service start.
func (v *VTMS) bankService(isWrite bool, state BankState) int {
	if isWrite {
		return v.timing.BankServiceWrite(int(state))
	}
	return v.timing.BankServiceRead(int(state))
}

// FinishTime evaluates Equation 7: the virtual finish-time of a request
// with the given arrival cycle, to the given bank, were it to begin
// service now with the bank in the given state:
//
//	C.F = max{ max{a, B_j.R} + B.L/phi, C.R } + C.L/phi
//
// It does not modify the registers; the memory scheduler calls it every
// cycle to (re)compute priorities of requests that have not yet begun
// service, which is the paper's "calculate the virtual finish-times of
// memory requests just before they are scheduled to begin service"
// implementation choice.
func (v *VTMS) FinishTime(arrival int64, bank, channel int, isWrite bool, state BankState) VTime {
	bs := maxVT(FromCycles(arrival), v.bankR[bank]) + v.scale(v.bankService(isWrite, state))
	return maxVT(bs, v.chanR[channel]) + v.scale(v.timing.ChannelService())
}

// OnCommandIssue applies the Table 4 / Equations 8-9 register updates
// for one issued SDRAM command belonging to a request of this thread:
//
//	B_j.R = max{a, B_j.R} + Bcmd.L/phi            (Eq. 8, every command)
//	C.R   = max{B_j.R, C.R} + Ccmd.L/phi          (Eq. 9, CAS only)
//
// arrival is the request's virtual arrival time a_i^k, bank its bank,
// and kind the issued command.
func (v *VTMS) OnCommandIssue(kind CmdKind, arrival int64, bank, channel int, isWrite bool) {
	pre, act, cas := v.timing.CmdBankService(isWrite)
	var bankL int
	switch kind {
	case CmdPrecharge:
		bankL = pre
	case CmdActivate:
		bankL = act
	case CmdRead, CmdWrite:
		bankL = cas
	default:
		panic(fmt.Sprintf("core: VTMS update for %v", kind))
	}
	v.bankR[bank] = maxVT(FromCycles(arrival), v.bankR[bank]) + v.scale(bankL)
	if kind.IsCAS() {
		v.chanR[channel] = maxVT(v.bankR[bank], v.chanR[channel]) + v.scale(v.timing.ChannelService())
	}
}

func maxVT(a, b VTime) VTime {
	if a > b {
		return a
	}
	return b
}
