package core

import (
	"testing"

	"repro/internal/dram"
)

func twoShares() []Share { return []Share{{1, 2}, {1, 2}} }

func req(id uint64, thread int, arrival int64, bank int) *Request {
	return &Request{ID: id, Thread: thread, Arrival: arrival, GlobalBank: bank}
}

func TestFRFCFSKeyIsArrival(t *testing.T) {
	p := NewFRFCFS()
	if p.Name() != "FR-FCFS" {
		t.Errorf("name = %q", p.Name())
	}
	a, b := req(1, 0, 100, 0), req(2, 1, 50, 0)
	if p.Key(a, BankHit) <= p.Key(b, BankHit) {
		t.Error("later arrival should have larger key")
	}
	if rule, _ := p.BankRule(); rule != RuleFirstReady {
		t.Errorf("rule = %v", rule)
	}
	p.OnIssue(a, CmdRead) // must not panic, stateless
}

func TestFCFSIsStrict(t *testing.T) {
	p := NewFCFS()
	if rule, _ := p.BankRule(); rule != RuleStrict {
		t.Errorf("rule = %v", rule)
	}
}

func TestFRVFTFKeyUsesVTMS(t *testing.T) {
	tt := dram.DDR2800()
	p := NewFRVFTF(twoShares(), 8, tt)
	if p.Name() != "FR-VFTF" {
		t.Errorf("name = %q", p.Name())
	}
	// Same arrival, same bank state: both threads idle, keys equal.
	a, b := req(1, 0, 10, 0), req(2, 1, 10, 0)
	if p.Key(a, BankClosed) != p.Key(b, BankClosed) {
		t.Error("identical idle threads should have equal keys")
	}
	// Thread 0 consumes service; its next request's key must exceed
	// thread 1's (fairness: past consumption pushes virtual time ahead).
	for i := 0; i < 5; i++ {
		r := req(uint64(10+i), 0, 10, 0)
		p.OnIssue(r, CmdActivate)
		p.OnIssue(r, CmdRead)
	}
	a2, b2 := req(20, 0, 50, 0), req(21, 1, 50, 0)
	if p.Key(a2, BankClosed) <= p.Key(b2, BankClosed) {
		t.Error("thread with more past service should have later finish time")
	}
}

func TestVFTFreezeOnFirstCommand(t *testing.T) {
	tt := dram.DDR2800()
	p := NewFRVFTF(twoShares(), 8, tt)
	r := req(1, 0, 10, 3)
	k1 := p.Key(r, BankClosed)
	if r.KeyFrozen {
		t.Fatal("key computation must not freeze the VFT")
	}
	p.OnIssue(r, CmdActivate)
	if !r.KeyFrozen {
		t.Fatal("first command issue must freeze the VFT")
	}
	frozen := int64(r.Key)
	if frozen != k1 {
		t.Fatalf("frozen VFT %d != provisional closed-bank key %d", frozen, k1)
	}
	// Subsequent keys return the frozen value even as registers move.
	p.OnIssue(req(9, 0, 11, 3), CmdRead)
	if got := p.Key(r, BankConflict); got != frozen {
		t.Fatalf("frozen key changed: %d != %d", got, frozen)
	}
}

func TestFQVFTFBankRule(t *testing.T) {
	tt := dram.DDR2800()
	p := NewFQVFTF(twoShares(), 8, tt)
	rule, x := p.BankRule()
	if rule != RuleFQ {
		t.Errorf("rule = %v, want RuleFQ", rule)
	}
	if x != int64(tt.TRAS) {
		t.Errorf("inversion bound = %d, want tRAS = %d", x, tt.TRAS)
	}
	p2 := NewFQVFTFBound(twoShares(), 8, tt, 7)
	if _, x := p2.BankRule(); x != 7 {
		t.Errorf("explicit bound = %d, want 7", x)
	}
}

func TestFQVFTFBoundPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewFQVFTFBound(twoShares(), 8, dram.DDR2800(), -1)
}

func TestFRVSTFKeyIsStartTime(t *testing.T) {
	tt := dram.DDR2800()
	p := NewFRVSTF(twoShares(), 8, tt)
	if p.Name() != "FR-VSTF" {
		t.Errorf("name = %q", p.Name())
	}
	// Start time for an idle thread is just the arrival.
	r := req(1, 0, 25, 0)
	if got, want := p.Key(r, BankClosed), int64(FromCycles(25)); got != want {
		t.Fatalf("start-time key = %d, want %d", got, want)
	}
	// Bank state must not affect a start-time key.
	if p.Key(r, BankConflict) != p.Key(r, BankHit) {
		t.Error("start-time key depends on bank state")
	}
	p.OnIssue(r, CmdActivate)
	if !r.KeyFrozen {
		t.Error("VSTF must freeze its key on first command")
	}
}

func TestStateFromFirstCmd(t *testing.T) {
	if stateFromFirstCmd(CmdPrecharge) != BankConflict {
		t.Error("precharge implies conflict")
	}
	if stateFromFirstCmd(CmdActivate) != BankClosed {
		t.Error("activate implies closed")
	}
	if stateFromFirstCmd(CmdRead) != BankHit || stateFromFirstCmd(CmdWrite) != BankHit {
		t.Error("CAS implies hit")
	}
}

// TestVFTFFairnessOrdering: after thread 0 monopolizes the memory for a
// while, a fresh request from thread 1 must beat thread 0's next request
// under VFTF (the paper's fairness policy: excess bandwidth goes to the
// thread that consumed least).
func TestVFTFFairnessOrdering(t *testing.T) {
	tt := dram.DDR2800()
	p := NewFRVFTF(twoShares(), 8, tt)
	now := int64(0)
	for i := 0; i < 50; i++ {
		r := req(uint64(i), 0, now, i%8)
		p.OnIssue(r, CmdActivate)
		p.OnIssue(r, CmdRead)
		now += 6
	}
	hog := req(100, 0, now, 0)
	newcomer := req(101, 1, now, 0)
	if p.Key(newcomer, BankClosed) >= p.Key(hog, BankClosed) {
		t.Fatal("newcomer should have earlier virtual finish time than the hog")
	}
}

// TestBankStateString covers the Stringers.
func TestBankStateString(t *testing.T) {
	if BankConflict.String() != "conflict" || BankClosed.String() != "closed" || BankHit.String() != "hit" {
		t.Error("BankState strings wrong")
	}
}

func TestPolicyShareSetter(t *testing.T) {
	tt := dram.DDR2800()
	p := NewFQVFTF(twoShares(), 8, tt)
	var _ ShareSetter = p
	var _ ChannelSetter = p
	p.SetThreadShare(1, Share{1, 8})
	if p.ThreadVTMS(1).Share() != (Share{1, 8}) {
		t.Fatal("share not propagated")
	}
	// FR-FCFS has no shares and must not satisfy the interfaces.
	var any interface{} = NewFRFCFS()
	if _, ok := any.(ShareSetter); ok {
		t.Fatal("FR-FCFS claims share support")
	}
}
