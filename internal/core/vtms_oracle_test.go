package core

import (
	"math/big"
	"testing"

	"repro/internal/dram"
)

// This file is a differential test: refVTMS re-derives the paper's
// Equations 7-9 from scratch — exact arbitrary-precision arithmetic,
// service times recomputed from Tables 3 and 4 directly off the timing
// parameters, no code shared with the production fixed-point
// implementation — and 10k random share/arrival/command sequences must
// produce identical register trajectories and finish times. A bug in
// the production fixed-point evaluation order, a silent overflow, or a
// mis-transcribed table entry diverges here.

// refVTMS mirrors one thread's VTMS registers in big.Int fixed point
// (VTShift fractional bits, like the production code, so floor
// divisions land identically by construction of the definitions).
type refVTMS struct {
	inv   *big.Int // floor(Den * 2^VTShift / Num)
	bankR []*big.Int
	chanR []*big.Int
	t     dram.Timing
}

func newRefVTMS(share Share, nbanks, nchans int, t dram.Timing) *refVTMS {
	r := &refVTMS{
		bankR: make([]*big.Int, nbanks),
		chanR: make([]*big.Int, nchans),
		t:     t,
	}
	for i := range r.bankR {
		r.bankR[i] = new(big.Int)
	}
	for i := range r.chanR {
		r.chanR[i] = new(big.Int)
	}
	r.setShare(share)
	return r
}

// setShare recomputes 1/phi: floor(Den << VTShift / Num), per the
// Share.Reciprocal definition.
func (r *refVTMS) setShare(s Share) {
	num := big.NewInt(int64(s.Den))
	num.Lsh(num, VTShift)
	r.inv = num.Div(num, big.NewInt(int64(s.Num)))
}

// scale is L/phi: the physical service time stretched by the inverse
// share, in fixed point.
func (r *refVTMS) scale(l int) *big.Int {
	return new(big.Int).Mul(big.NewInt(int64(l)), r.inv)
}

func fxCycles(c int64) *big.Int {
	return new(big.Int).Lsh(big.NewInt(c), VTShift)
}

func bigMax(a, b *big.Int) *big.Int {
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

// bankService is Table 3, re-derived: the bank time a request needs
// given the state of its bank — precharge + activate + column access
// for a conflict, activate + column access on a closed bank, column
// access alone on a row hit. Writes use tWL for the column phase.
func (r *refVTMS) bankService(isWrite bool, state BankState) int {
	col := r.t.TCL
	if isWrite {
		col = r.t.TWL
	}
	switch state {
	case BankConflict:
		return r.t.TRP + r.t.TRCD + col
	case BankClosed:
		return r.t.TRCD + col
	default:
		return col
	}
}

// cmdService is Table 4, re-derived: per-command bank service. The
// precharge entry also carries the residual bank occupancy tRAS demands
// beyond activate + column access, so a full conflict cycle sums to
// max(tRAS, tRCD+tCL) + tRP worth of bank time.
func (r *refVTMS) cmdService(kind CmdKind, isWrite bool) int {
	switch kind {
	case CmdPrecharge:
		return r.t.TRP + r.t.TRAS - r.t.TRCD - r.t.TCL
	case CmdActivate:
		return r.t.TRCD
	default: // CAS
		if isWrite {
			return r.t.TWL
		}
		return r.t.TCL
	}
}

// finishTime is Equation 7:
//
//	C.F = max{ max{a, B_j.R} + B.L/phi, C.R } + C.L/phi
func (r *refVTMS) finishTime(arrival int64, bank, ch int, isWrite bool, state BankState) *big.Int {
	bs := new(big.Int).Add(bigMax(fxCycles(arrival), r.bankR[bank]), r.scale(r.bankService(isWrite, state)))
	return bs.Add(bigMax(bs, r.chanR[ch]), r.scale(r.t.BL2))
}

// onIssue applies Equations 8 and 9:
//
//	B_j.R = max{a, B_j.R} + Bcmd.L/phi     (every command)
//	C.R   = max{B_j.R, C.R} + C.L/phi      (CAS only)
func (r *refVTMS) onIssue(kind CmdKind, arrival int64, bank, ch int, isWrite bool) {
	r.bankR[bank] = new(big.Int).Add(bigMax(fxCycles(arrival), r.bankR[bank]), r.scale(r.cmdService(kind, isWrite)))
	if kind == CmdRead || kind == CmdWrite {
		r.chanR[ch] = new(big.Int).Add(bigMax(r.bankR[bank], r.chanR[ch]), r.scale(r.t.BL2))
	}
}

// eqBig asserts a production int64 fixed-point value equals the exact
// reference — which also proves the production value never overflowed.
func eqBig(t *testing.T, what string, event int, got VTime, want *big.Int) {
	t.Helper()
	if !want.IsInt64() || want.Int64() != int64(got) {
		t.Fatalf("event %d: %s diverged: production %d, reference %s", event, what, got, want.String())
	}
}

// TestVTMSDifferentialOracle drives the production VTMS and the
// reference through 10k random events — command issues across banks and
// channels with wandering arrivals, interleaved share reassignments,
// and a finish-time probe per event — asserting exact agreement
// throughout. Shares stress the fixed point from phi=1 down to phi=1/64.
func TestVTMSDifferentialOracle(t *testing.T) {
	const nbanks, nchans, events = 16, 2, 10_000
	timing := dram.DefaultConfig().Timing
	shareChoices := []Share{{1, 1}, {1, 2}, {2, 3}, {1, 7}, {5, 8}, {1, 64}, {63, 64}}
	rng := &propRng{s: 2026}

	start := shareChoices[rng.intn(len(shareChoices))]
	v := NewVTMS(0, start, nbanks, timing)
	v.SetChannels(nchans)
	ref := newRefVTMS(start, nbanks, nchans, timing)

	var clock int64
	for i := 0; i < events; i++ {
		clock += int64(rng.intn(300))
		arrival := clock - int64(rng.intn(600)) + 150
		if arrival < 0 {
			arrival = 0
		}
		bank := rng.intn(nbanks)
		ch := rng.intn(nchans)
		state := BankState(rng.intn(3))
		isWrite := rng.intn(3) == 0

		// Probe Equation 7 before any mutation.
		got := v.FinishTime(arrival, bank, ch, isWrite, state)
		eqBig(t, "finish time", i, got, ref.finishTime(arrival, bank, ch, isWrite, state))

		switch rng.intn(8) {
		case 0: // share reassignment
			s := shareChoices[rng.intn(len(shareChoices))]
			v.SetShare(s)
			ref.setShare(s)
		default: // command issue
			kind := propKinds[rng.intn(len(propKinds))]
			if isWrite && kind == CmdRead {
				kind = CmdWrite
			}
			if !isWrite && kind == CmdWrite {
				kind = CmdRead
			}
			v.OnCommandIssue(kind, arrival, bank, ch, isWrite)
			ref.onIssue(kind, arrival, bank, ch, isWrite)
		}

		// Full register sweep: every bank and channel, every event.
		for b := 0; b < nbanks; b++ {
			eqBig(t, "bank register", i, v.BankR(b), ref.bankR[b])
		}
		for c := 0; c < nchans; c++ {
			eqBig(t, "channel register", i, v.ChanRAt(c), ref.chanR[c])
		}
	}
}

// TestVTMSOracleMultiThread runs the differential check through the
// policy layer: four threads with unequal shares sharing one refVTMS
// mirror each, driven via vftBase.OnIssue so the freeze-then-update
// path is covered too.
func TestVTMSOracleMultiThread(t *testing.T) {
	const nbanks, events = 8, 10_000
	timing := dram.DefaultConfig().Timing
	shares := []Share{{1, 2}, {1, 4}, {1, 8}, {1, 8}}
	pol := NewFQVFTF(shares, nbanks, timing)
	refs := make([]*refVTMS, len(shares))
	for i, s := range shares {
		refs[i] = newRefVTMS(s, nbanks, 1, timing)
	}
	rng := &propRng{s: 77}
	var clock int64
	var nextID uint64
	for i := 0; i < events; i++ {
		clock += int64(rng.intn(100))
		thread := rng.intn(len(shares))
		nextID++
		r := &Request{
			ID:         nextID,
			Thread:     thread,
			Arrival:    clock,
			GlobalBank: rng.intn(nbanks),
			IsWrite:    rng.intn(4) == 0,
		}
		kind := propKinds[rng.intn(len(propKinds))]
		if r.IsWrite && kind == CmdRead {
			kind = CmdWrite
		}
		if !r.IsWrite && kind == CmdWrite {
			kind = CmdRead
		}
		pol.OnIssue(r, kind)
		refs[thread].onIssue(kind, r.Arrival, r.GlobalBank, 0, r.IsWrite)
		for b := 0; b < nbanks; b++ {
			eqBig(t, "bank register", i, pol.ThreadVTMS(thread).BankR(b), refs[thread].bankR[b])
		}
		eqBig(t, "channel register", i, pol.ThreadVTMS(thread).ChanR(), refs[thread].chanR[0])
	}
}
