package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
)

func TestShareBasics(t *testing.T) {
	s := EqualShare(4)
	if s != (Share{1, 4}) {
		t.Fatalf("EqualShare(4) = %v", s)
	}
	if !s.Valid() {
		t.Fatal("1/4 invalid")
	}
	if got := s.Reciprocal(); got != 4<<VTShift {
		t.Fatalf("1/4 reciprocal = %d, want %d", got, 4<<VTShift)
	}
	if s.Float() != 0.25 {
		t.Fatalf("1/4 float = %v", s.Float())
	}
	for _, bad := range []Share{{0, 1}, {1, 0}, {-1, 2}, {3, 2}} {
		if bad.Valid() {
			t.Errorf("share %v should be invalid", bad)
		}
	}
	if (Share{1, 2}).String() != "1/2" {
		t.Errorf("String = %q", (Share{1, 2}).String())
	}
}

func TestVTimeConversions(t *testing.T) {
	v := FromCycles(100)
	if v.Cycles() != 100 {
		t.Fatalf("Cycles = %d", v.Cycles())
	}
	if v.Float() != 100.0 {
		t.Fatalf("Float = %v", v.Float())
	}
}

func TestCmdKind(t *testing.T) {
	if !CmdRead.IsCAS() || !CmdWrite.IsCAS() {
		t.Error("read/write should be CAS")
	}
	if CmdActivate.IsCAS() || CmdPrecharge.IsCAS() {
		t.Error("activate/precharge are RAS commands")
	}
	for k, want := range map[CmdKind]string{
		CmdActivate: "activate", CmdRead: "read", CmdWrite: "write",
		CmdPrecharge: "precharge", CmdRefresh: "refresh", CmdNone: "none",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// TestFinishTimeEquation7 checks Eq. 7 by hand for a phi = 1/2 thread:
//
//	C.F = max{max{a, B.R} + B.L/phi, C.R} + C.L/phi
func TestFinishTimeEquation7(t *testing.T) {
	tt := dram.DDR2800()
	v := NewVTMS(0, Share{1, 2}, 8, tt)

	// Fresh registers, arrival at cycle 10, bank 3 closed:
	// B.L = tRCD + tCL = 10, C.L = BL/2 = 4.
	// C.F = max{max{10, 0} + 10*2, 0} + 4*2 = 30 + 8 = 38.
	got := v.FinishTime(10, 3, 0, false, BankClosed)
	if want := FromCycles(38); got != want {
		t.Fatalf("FinishTime = %v cycles, want 38", got.Float())
	}

	// A row hit only pays tCL: C.F = 10 + 5*2 + 8 = 28.
	got = v.FinishTime(10, 3, 0, false, BankHit)
	if want := FromCycles(28); got != want {
		t.Fatalf("hit FinishTime = %v cycles, want 28", got.Float())
	}

	// A conflict pays tRP + tRCD + tCL = 15: C.F = 10 + 30 + 8 = 48.
	got = v.FinishTime(10, 3, 0, false, BankConflict)
	if want := FromCycles(48); got != want {
		t.Fatalf("conflict FinishTime = %v cycles, want 48", got.Float())
	}

	// A write hit pays tWL = 4: C.F = 10 + 8 + 8 = 26.
	got = v.FinishTime(10, 3, 0, true, BankHit)
	if want := FromCycles(26); got != want {
		t.Fatalf("write hit FinishTime = %v cycles, want 26", got.Float())
	}
}

// TestUpdateEquations8And9 checks the Table 4 register updates for a
// full precharge-activate-read sequence of one request.
func TestUpdateEquations8And9(t *testing.T) {
	tt := dram.DDR2800()
	v := NewVTMS(0, Share{1, 2}, 8, tt)

	// Precharge: B.R = max{20, 0} + (tRP + tRAS - tRCD - tCL)/phi
	//                = 20 + (5+8)*2 = 46.
	v.OnCommandIssue(CmdPrecharge, 20, 1, 0, false)
	if got, want := v.BankR(1), FromCycles(46); got != want {
		t.Fatalf("after precharge B.R = %v, want 46", got.Float())
	}
	// Activate: B.R = max{20, 46} + tRCD*2 = 46 + 10 = 56.
	v.OnCommandIssue(CmdActivate, 20, 1, 0, false)
	if got, want := v.BankR(1), FromCycles(56); got != want {
		t.Fatalf("after activate B.R = %v, want 56", got.Float())
	}
	// Read: B.R = 56 + tCL*2 = 66; C.R = max{66, 0} + 4*2 = 74.
	v.OnCommandIssue(CmdRead, 20, 1, 0, false)
	if got, want := v.BankR(1), FromCycles(66); got != want {
		t.Fatalf("after read B.R = %v, want 66", got.Float())
	}
	if got, want := v.ChanR(), FromCycles(74); got != want {
		t.Fatalf("after read C.R = %v, want 74", got.Float())
	}
	// Other banks are untouched.
	if v.BankR(0) != 0 || v.BankR(7) != 0 {
		t.Fatal("unrelated bank registers modified")
	}
}

// TestVTMSShareScaling: a thread with half the share accumulates virtual
// time twice as fast (the definition of the time-scaled private memory
// system).
func TestVTMSShareScaling(t *testing.T) {
	tt := dram.DDR2800()
	full := NewVTMS(0, Share{1, 1}, 8, tt)
	half := NewVTMS(1, Share{1, 2}, 8, tt)
	for i := 0; i < 10; i++ {
		full.OnCommandIssue(CmdRead, 0, 2, 0, false)
		half.OnCommandIssue(CmdRead, 0, 2, 0, false)
	}
	if half.BankR(2) != 2*full.BankR(2) {
		t.Fatalf("half-share bank register %v != 2 x full-share %v",
			half.BankR(2).Float(), full.BankR(2).Float())
	}
	if half.ChanR() <= full.ChanR() {
		t.Fatal("half-share channel register should exceed full-share")
	}
}

// TestVTMSMonotonicity: per-resource finish-time registers never
// decrease, for random command sequences (a core fairness invariant:
// virtual time only advances).
func TestVTMSMonotonicity(t *testing.T) {
	tt := dram.DDR2800()
	f := func(cmds []uint8, arrivals []uint16) bool {
		v := NewVTMS(0, Share{1, 3}, 4, tt)
		lastBank := make([]VTime, 4)
		lastChan := VTime(0)
		for i, c := range cmds {
			if i >= len(arrivals) {
				break
			}
			kind := []CmdKind{CmdPrecharge, CmdActivate, CmdRead, CmdWrite}[c%4]
			bank := int(c/4) % 4
			v.OnCommandIssue(kind, int64(arrivals[i]), bank, 0, kind == CmdWrite)
			if v.BankR(bank) < lastBank[bank] || v.ChanR() < lastChan {
				return false
			}
			lastBank[bank] = v.BankR(bank)
			lastChan = v.ChanR()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVTMSFinishTimeRespectsArrival: for an idle VTMS the finish time
// grows linearly with arrival time (the request is limited by its own
// arrival, not by past service).
func TestVTMSFinishTimeRespectsArrival(t *testing.T) {
	tt := dram.DDR2800()
	v := NewVTMS(0, Share{1, 2}, 8, tt)
	f1 := v.FinishTime(100, 0, 0, false, BankClosed)
	f2 := v.FinishTime(200, 0, 0, false, BankClosed)
	if f2-f1 != FromCycles(100) {
		t.Fatalf("finish-time delta = %v cycles, want 100", (f2 - f1).Float())
	}
}

func TestNewVTMSPanicsOnInvalidShare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid share")
		}
	}()
	NewVTMS(0, Share{0, 1}, 8, dram.DDR2800())
}

func TestVTMSSetShare(t *testing.T) {
	tt := dram.DDR2800()
	v := NewVTMS(0, Share{1, 2}, 8, tt)
	v.OnCommandIssue(CmdRead, 0, 0, 0, false)
	before := v.BankR(0)
	v.SetShare(Share{1, 4})
	if v.BankR(0) != before {
		t.Fatal("SetShare rewrote history")
	}
	v.OnCommandIssue(CmdRead, 0, 1, 0, false)
	// New rate: tCL * 4 = 20 cycles of virtual service on bank 1.
	if got, want := v.BankR(1), FromCycles(20); got != want {
		t.Fatalf("post-reassignment service = %v, want 20", got.Float())
	}
	if v.Share() != (Share{1, 4}) {
		t.Fatal("share not updated")
	}
}

func TestVTMSSetSharePanicsOnInvalid(t *testing.T) {
	v := NewVTMS(0, Share{1, 2}, 8, dram.DDR2800())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	v.SetShare(Share{0, 1})
}

func TestVTMSSetChannels(t *testing.T) {
	tt := dram.DDR2800()
	v := NewVTMS(0, Share{1, 2}, 16, tt)
	v.SetChannels(2)
	// Channel registers are independent.
	v.OnCommandIssue(CmdRead, 0, 0, 0, false)
	if v.ChanRAt(0) == 0 || v.ChanRAt(1) != 0 {
		t.Fatalf("channel registers: %v, %v", v.ChanRAt(0).Float(), v.ChanRAt(1).Float())
	}
	// Finish times on the idle channel ignore channel 0's backlog.
	f0 := v.FinishTime(0, 1, 0, false, BankHit)
	f1 := v.FinishTime(0, 1, 1, false, BankHit)
	if f1 >= f0 {
		t.Fatalf("idle channel finish %v not earlier than busy channel %v", f1.Float(), f0.Float())
	}
}

func TestVTMSSetChannelsPanicsOnZero(t *testing.T) {
	v := NewVTMS(0, Share{1, 2}, 8, dram.DDR2800())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	v.SetChannels(0)
}
