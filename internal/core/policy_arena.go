package core

import (
	"fmt"

	"repro/internal/dram"
)

// Post-2006 scheduler lineage: the paper's FQ-VFTF is one point in a
// long line of fairness-oriented memory schedulers. This file implements
// three successors the arena harness (internal/exp) races against it:
//
//   - BLISS (Subramanian et al.): interval-based blacklisting of
//     threads that stream consecutive requests.
//   - SLOW-FAIR (after the slowdown-fairness controllers of Mutlu &
//     Moscibroda and the MemGuard lineage): estimate each thread's
//     slowdown as shared-time / alone-time and boost the most slowed
//     thread, using the VTMS private-system service model with phi = 1
//     as the alone-time estimator.
//   - BANK-BW (Yun et al.): per-thread per-bank bandwidth budgets with
//     periodic window refill.
//
// All three are interval-based: their Key-feeding state changes only on
// window boundaries. Mutating that state from OnIssue would break the
// key purity contract (OnIssue on channel c may only move keys on
// channel c, and a frozen key may never move at all), so the periodic
// work runs through an explicit tick entry point, PolicyTicker, that the
// controller drives and follows with a full scheduling invalidation.

// PolicyTicker is implemented by policies with interval-based state
// (blacklists, budgets, boost targets). The controller calls Tick on
// every cycle boundary at which now >= NextTickAt() — its event-driven
// fast path clamps the next-event estimate to NextTickAt(), so tick
// boundaries are never skipped — and invalidates all cached scheduling
// decisions when Tick reports that Key-feeding state changed. Tick-side
// mutation plus invalidation is the only sanctioned way for a policy to
// move not-yet-frozen keys outside OnIssue and the reassignment entry
// points (see the key purity contract in Policy).
type PolicyTicker interface {
	// NextTickAt returns the cycle of the next window boundary. It must
	// be strictly greater than the cycle of the last Tick call.
	NextTickAt() int64

	// Tick runs the window-boundary work and reports whether any state
	// feeding Key changed (true makes the controller invalidate every
	// cached scheduling decision).
	Tick(now int64) bool
}

// ticker is the shared window bookkeeping. lastTick/nextTick are
// serialized with each policy's state; the audit layer cross-checks
// next == last + interval on every controller tick.
type ticker struct {
	interval int64
	lastTick int64
	nextTick int64
}

func newTicker(interval int64) ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("core: invalid tick interval %d", interval))
	}
	return ticker{interval: interval, nextTick: interval}
}

// advance records a tick at now and moves the next boundary past it.
// The loop is defensive: boundaries are never skipped by the
// controller, so it executes exactly once.
func (tk *ticker) advance(now int64) {
	tk.lastTick = now
	for tk.nextTick <= now {
		tk.nextTick += tk.interval
	}
}

// NextTickAt implements PolicyTicker.
func (tk *ticker) NextTickAt() int64 { return tk.nextTick }

// LastTickAt returns the cycle of the most recent tick (0 before the
// first); the audit layer uses it to pin state changes to boundaries.
func (tk *ticker) LastTickAt() int64 { return tk.lastTick }

// TickInterval returns the window length in cycles.
func (tk *ticker) TickInterval() int64 { return tk.interval }

// arenaPenalty separates deprioritized requests from normal ones by
// more than any plausible arrival-time span, while leaving int64
// headroom for arrival + penalty arithmetic.
const arenaPenalty = int64(1) << 40

// freezeKey caches k on the request at first-command issue; afterwards
// Key returns the frozen value unconditionally, satisfying the frozen
// keys-never-move contract the audit layer enforces.
func freezeKey(r *Request, k int64) {
	if !r.KeyFrozen {
		r.Key = VTime(k)
		r.KeyFrozen = true
	}
}

// ---------------------------------------------------------------------
// BLISS: blacklisting of streak-y threads
// ---------------------------------------------------------------------

// BLISS implements the Blacklisting memory scheduler: a thread that
// completes streakCap consecutive column accesses is marked, marks are
// promoted to the blacklist on the next window boundary, and every
// clearEvery-th boundary wipes the blacklist so no thread is penalized
// forever. Blacklisted threads' requests are deprioritized by a fixed
// penalty; within a priority class ordering stays FR-FCFS. BLISS is
// shareless: it implements neither ShareGetter nor ShareSetter, so the
// fairness monitor falls back to phi = 1/N.
type BLISS struct {
	ticker
	streakCap  int64
	clearEvery int64

	// blacklisted feeds Key and changes only inside Tick.
	blacklisted []bool
	// pendingMark stages OnIssue-side marks until the next boundary.
	pendingMark []bool

	lastThread int
	streak     int64
	ticks      int64
}

// Default BLISS parameters: a 1k-cycle marking window with the
// blacklist cleared every 10 windows, streak threshold 4 (the paper's
// "blacklisting threshold").
const (
	blissInterval   = 1_000
	blissClearEvery = 10
	blissStreakCap  = 4
)

// NewBLISS returns a BLISS scheduler for n threads.
func NewBLISS(n int) *BLISS {
	return &BLISS{
		ticker:      newTicker(blissInterval),
		streakCap:   blissStreakCap,
		clearEvery:  blissClearEvery,
		blacklisted: make([]bool, n),
		pendingMark: make([]bool, n),
		lastThread:  -1,
	}
}

// Name implements Policy.
func (*BLISS) Name() string { return "BLISS" }

// Key implements Policy: arrival order, pushed back by the blacklist
// penalty for marked threads.
func (p *BLISS) Key(r *Request, _ BankState) int64 {
	if r.KeyFrozen {
		return int64(r.Key)
	}
	k := r.Arrival
	if p.blacklisted[r.Thread] {
		k += arenaPenalty
	}
	return k
}

// OnIssue implements Policy: freeze the key at first command, then
// update the consecutive-service streak on column accesses. Streak
// state and pending marks do not feed Key, so mutating them here is
// channel-pure; the blacklist itself moves only in Tick.
func (p *BLISS) OnIssue(r *Request, kind CmdKind) {
	k := r.Arrival
	if p.blacklisted[r.Thread] {
		k += arenaPenalty
	}
	freezeKey(r, k)
	if !kind.IsCAS() {
		return
	}
	if r.Thread == p.lastThread {
		p.streak++
	} else {
		p.lastThread = r.Thread
		p.streak = 1
	}
	if p.streak >= p.streakCap {
		p.pendingMark[r.Thread] = true
	}
}

// BankRule implements Policy.
func (*BLISS) BankRule() (BankRule, int64) { return RuleFirstReady, 0 }

// Tick implements PolicyTicker: promote pending marks to the
// blacklist, and wipe everything on each clearEvery-th boundary.
func (p *BLISS) Tick(now int64) bool {
	p.advance(now)
	p.ticks++
	changed := false
	if p.ticks%p.clearEvery == 0 {
		for t := range p.blacklisted {
			if p.blacklisted[t] {
				changed = true
			}
			p.blacklisted[t] = false
			p.pendingMark[t] = false
		}
		return changed
	}
	for t, mark := range p.pendingMark {
		if mark && !p.blacklisted[t] {
			p.blacklisted[t] = true
			changed = true
		}
		p.pendingMark[t] = false
	}
	return changed
}

// Blacklisted reports whether a thread is currently blacklisted (for
// the audit layer and tests).
func (p *BLISS) Blacklisted(thread int) bool { return p.blacklisted[thread] }

// ---------------------------------------------------------------------
// SLOW-FAIR: slowdown-based fairness
// ---------------------------------------------------------------------

// SlowFair implements slowdown-based fairness: each thread's slowdown
// is shared_time / alone_time, where alone_time is estimated as the
// service its requests would need on a private memory system (the VTMS
// Table 3/4 service model at phi = 1). All threads share the same
// wall-clock window, so within one window the most slowed thread is the
// one that accumulated the least alone-service while still making
// progress; SlowFair boosts that thread for the next window when the
// imbalance exceeds 2x. Threads that accumulated nothing at all are
// not considered — an idle (non-memory-bound) thread is indistinguishable
// from a fully starved one by this estimator, a known limitation.
type SlowFair struct {
	ticker
	timing dram.Timing

	// boosted feeds Key and changes only inside Tick (-1 = none).
	boosted int

	// aloneServ accumulates each thread's unscaled private service in
	// OnIssue; prevAlone is the previous boundary's snapshot.
	aloneServ []int64
	prevAlone []int64
}

// slowFairInterval is the slowdown evaluation window.
const slowFairInterval = 10_000

// NewSlowFair returns a SLOW-FAIR scheduler for n threads over a
// memory system with timing t.
func NewSlowFair(n int, t dram.Timing) *SlowFair {
	return &SlowFair{
		ticker:    newTicker(slowFairInterval),
		timing:    t,
		boosted:   -1,
		aloneServ: make([]int64, n),
		prevAlone: make([]int64, n),
	}
}

// Name implements Policy.
func (*SlowFair) Name() string { return "SLOW-FAIR" }

// Key implements Policy: arrival order, pulled forward by the boost
// bonus for the max-slowdown thread.
func (p *SlowFair) Key(r *Request, _ BankState) int64 {
	if r.KeyFrozen {
		return int64(r.Key)
	}
	k := r.Arrival
	if r.Thread == p.boosted {
		k -= arenaPenalty
	}
	return k
}

// OnIssue implements Policy: freeze the key at first command, then
// charge the command's private-system service time (Table 4 at phi = 1)
// to the thread's alone-time account. The accounts do not feed Key, so
// accumulating here is channel-pure; the boost target moves only in
// Tick.
func (p *SlowFair) OnIssue(r *Request, kind CmdKind) {
	k := r.Arrival
	if r.Thread == p.boosted {
		k -= arenaPenalty
	}
	freezeKey(r, k)
	pre, act, cas := p.timing.CmdBankService(r.IsWrite)
	switch kind {
	case CmdPrecharge:
		p.aloneServ[r.Thread] += int64(pre)
	case CmdActivate:
		p.aloneServ[r.Thread] += int64(act)
	case CmdRead, CmdWrite:
		p.aloneServ[r.Thread] += int64(cas) + int64(p.timing.ChannelService())
	}
}

// BankRule implements Policy.
func (*SlowFair) BankRule() (BankRule, int64) { return RuleFirstReady, 0 }

// Tick implements PolicyTicker: snapshot the window's per-thread
// alone-service deltas and retarget the boost. Ties break to the lowest
// thread index, deterministically.
func (p *SlowFair) Tick(now int64) bool {
	p.advance(now)
	minT := -1
	var minD, maxD int64
	for t := range p.aloneServ {
		d := p.aloneServ[t] - p.prevAlone[t]
		p.prevAlone[t] = p.aloneServ[t]
		if d > 0 && (minT < 0 || d < minD) {
			minT, minD = t, d
		}
		if d > maxD {
			maxD = d
		}
	}
	boost := -1
	if minT >= 0 && maxD > 2*minD {
		boost = minT
	}
	if boost == p.boosted {
		return false
	}
	p.boosted = boost
	return true
}

// BoostedThread returns the currently boosted thread, -1 for none (for
// the audit layer and tests).
func (p *SlowFair) BoostedThread() int { return p.boosted }

// ---------------------------------------------------------------------
// BANK-BW: per-bank bandwidth regulation
// ---------------------------------------------------------------------

// BankBW implements per-thread per-bank bandwidth regulation: every
// thread holds a budget of column accesses per bank per window,
// decremented as its CAS commands issue and refilled to the quota on
// every boundary. A thread whose budget for a bank is exhausted has its
// requests to that bank deprioritized by a fixed penalty — regulation,
// not starvation: the scheduler stays work conserving, so an overdrawn
// thread still issues when nothing else is ready (the budget then goes
// negative, which the audit layer's accounting tolerates and tracks
// exactly).
type BankBW struct {
	ticker
	nbanks int
	quota  int64

	// budget[t*nbanks+b] feeds Key for thread t's requests on flat bank
	// b. OnIssue decrements it for the issuing request's own bank —
	// which only carries requests of the issuing channel, keeping the
	// mutation channel-pure — and Tick refills all of it.
	budget []int64
}

// Default BANK-BW parameters: 8 column accesses per (thread, bank) per
// 5k-cycle window.
const (
	bankBWQuota    = 8
	bankBWInterval = 5_000
)

// NewBankBW returns a BANK-BW scheduler for n threads over nbanks flat
// banks.
func NewBankBW(n, nbanks int) *BankBW {
	p := &BankBW{
		ticker: newTicker(bankBWInterval),
		nbanks: nbanks,
		quota:  bankBWQuota,
		budget: make([]int64, n*nbanks),
	}
	for i := range p.budget {
		p.budget[i] = p.quota
	}
	return p
}

// Name implements Policy.
func (*BankBW) Name() string { return "BANK-BW" }

// Key implements Policy: arrival order, pushed back by the overdraft
// penalty when the thread's budget for the request's bank is spent.
func (p *BankBW) Key(r *Request, _ BankState) int64 {
	if r.KeyFrozen {
		return int64(r.Key)
	}
	k := r.Arrival
	if p.budget[r.Thread*p.nbanks+r.GlobalBank] <= 0 {
		k += arenaPenalty
	}
	return k
}

// OnIssue implements Policy: freeze the key at first command (before
// the decrement, matching what the scheduler just compared), then spend
// budget on column accesses.
func (p *BankBW) OnIssue(r *Request, kind CmdKind) {
	slot := r.Thread*p.nbanks + r.GlobalBank
	k := r.Arrival
	if p.budget[slot] <= 0 {
		k += arenaPenalty
	}
	freezeKey(r, k)
	if kind.IsCAS() {
		p.budget[slot]--
	}
}

// BankRule implements Policy.
func (*BankBW) BankRule() (BankRule, int64) { return RuleFirstReady, 0 }

// Tick implements PolicyTicker: refill every budget to the quota. Key
// only reads the budget through the <= 0 threshold, so the refill moved
// keys exactly when some budget was spent to zero or below.
func (p *BankBW) Tick(now int64) bool {
	p.advance(now)
	changed := false
	for i := range p.budget {
		if p.budget[i] <= 0 {
			changed = true
		}
		p.budget[i] = p.quota
	}
	return changed
}

// BankBudget returns thread's remaining budget on flat bank b (for the
// audit layer and tests).
func (p *BankBW) BankBudget(thread, b int) int64 { return p.budget[thread*p.nbanks+b] }

// BudgetQuota returns the per-window budget quota (for the audit layer
// and tests).
func (p *BankBW) BudgetQuota() int64 { return p.quota }
