package core

import "repro/internal/snapshot"

// PolicyState is implemented by policies with mutable internal state
// (the VTMS-register family). Checkpointing asserts the capability at
// run time: stateless policies (FCFS, FR-FCFS) simply do not implement
// it and have nothing to save.
type PolicyState interface {
	SaveState(w *snapshot.Writer)
	LoadState(r *snapshot.Reader) error
}

var (
	_ PolicyState = (*FRVFTF)(nil)
	_ PolicyState = (*FQVFTF)(nil)
	_ PolicyState = (*FRVSTF)(nil)
)

// SaveState serializes the thread's virtual-time registers and its
// current share (shares can be reassigned at run time, so the
// construction-time value is not enough).
func (v *VTMS) SaveState(w *snapshot.Writer) {
	w.Section("core.VTMS")
	w.Int(v.share.Num)
	w.Int(v.share.Den)
	w.U32(uint32(len(v.bankR)))
	for _, t := range v.bankR {
		w.I64(int64(t))
	}
	w.U32(uint32(len(v.chanR)))
	for _, t := range v.chanR {
		w.I64(int64(t))
	}
}

// LoadState restores registers saved by SaveState into a VTMS
// constructed over the same bank/channel geometry. invPhi is
// recomputed from the restored share rather than trusted from the
// stream.
func (v *VTMS) LoadState(r *snapshot.Reader) error {
	r.Section("core.VTMS")
	share := Share{Num: r.Int(), Den: r.Int()}
	nb := r.Len(len(v.bankR))
	bankR := make([]VTime, nb)
	for i := range bankR {
		bankR[i] = VTime(r.I64())
	}
	nc := r.Len(len(v.chanR))
	chanR := make([]VTime, nc)
	for i := range chanR {
		chanR[i] = VTime(r.I64())
	}
	if err := r.Err(); err != nil {
		return err
	}
	if nb != len(v.bankR) || nc != len(v.chanR) {
		r.Fail("core.VTMS: %d banks / %d channels, VTMS has %d/%d", nb, nc, len(v.bankR), len(v.chanR))
		return r.Err()
	}
	if !share.Valid() {
		r.Fail("core.VTMS: invalid share %d/%d", share.Num, share.Den)
		return r.Err()
	}
	v.share = share
	v.invPhi = share.Reciprocal()
	copy(v.bankR, bankR)
	copy(v.chanR, chanR)
	return nil
}

// SaveState serializes every thread's VTMS registers. The FQ inversion
// bound x is construction state, not mutable state, so it is not
// written.
func (b *vftBase) SaveState(w *snapshot.Writer) {
	w.Section("core.vftBase")
	w.Int(len(b.vtms))
	for _, v := range b.vtms {
		v.SaveState(w)
	}
}

// LoadState restores registers saved by SaveState into a policy
// constructed for the same thread count.
func (b *vftBase) LoadState(r *snapshot.Reader) error {
	r.Section("core.vftBase")
	n := r.Int()
	if r.Err() == nil && n != len(b.vtms) {
		r.Fail("core.vftBase: %d threads, policy has %d", n, len(b.vtms))
	}
	if err := r.Err(); err != nil {
		return err
	}
	for _, v := range b.vtms {
		if err := v.LoadState(r); err != nil {
			return err
		}
	}
	return nil
}
