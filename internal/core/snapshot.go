package core

import "repro/internal/snapshot"

// PolicyState is implemented by policies with mutable internal state
// (the VTMS-register family). Checkpointing asserts the capability at
// run time: stateless policies (FCFS, FR-FCFS) simply do not implement
// it and have nothing to save.
type PolicyState interface {
	SaveState(w *snapshot.Writer)
	LoadState(r *snapshot.Reader) error
}

var (
	_ PolicyState = (*FRVFTF)(nil)
	_ PolicyState = (*FQVFTF)(nil)
	_ PolicyState = (*FRVSTF)(nil)
	_ PolicyState = (*BLISS)(nil)
	_ PolicyState = (*SlowFair)(nil)
	_ PolicyState = (*BankBW)(nil)
)

// SaveState serializes the thread's virtual-time registers and its
// current share (shares can be reassigned at run time, so the
// construction-time value is not enough).
func (v *VTMS) SaveState(w *snapshot.Writer) {
	w.Section("core.VTMS")
	w.Int(v.share.Num)
	w.Int(v.share.Den)
	w.U32(uint32(len(v.bankR)))
	for _, t := range v.bankR {
		w.I64(int64(t))
	}
	w.U32(uint32(len(v.chanR)))
	for _, t := range v.chanR {
		w.I64(int64(t))
	}
}

// LoadState restores registers saved by SaveState into a VTMS
// constructed over the same bank/channel geometry. invPhi is
// recomputed from the restored share rather than trusted from the
// stream.
func (v *VTMS) LoadState(r *snapshot.Reader) error {
	r.Section("core.VTMS")
	share := Share{Num: r.Int(), Den: r.Int()}
	nb := r.Len(len(v.bankR))
	bankR := make([]VTime, nb)
	for i := range bankR {
		bankR[i] = VTime(r.I64())
	}
	nc := r.Len(len(v.chanR))
	chanR := make([]VTime, nc)
	for i := range chanR {
		chanR[i] = VTime(r.I64())
	}
	if err := r.Err(); err != nil {
		return err
	}
	if nb != len(v.bankR) || nc != len(v.chanR) {
		r.Fail("core.VTMS: %d banks / %d channels, VTMS has %d/%d", nb, nc, len(v.bankR), len(v.chanR))
		return r.Err()
	}
	if !share.Valid() {
		r.Fail("core.VTMS: invalid share %d/%d", share.Num, share.Den)
		return r.Err()
	}
	v.share = share
	v.invPhi = share.Reciprocal()
	copy(v.bankR, bankR)
	copy(v.chanR, chanR)
	return nil
}

// saveTicker / loadTicker serialize the shared window bookkeeping of
// the interval-based arena policies. The interval itself is
// construction state and only cross-checked.
func (tk *ticker) saveTicker(w *snapshot.Writer) {
	w.I64(tk.interval)
	w.I64(tk.lastTick)
	w.I64(tk.nextTick)
}

func (tk *ticker) loadTicker(r *snapshot.Reader, section string) {
	interval := r.I64()
	last := r.I64()
	next := r.I64()
	if r.Err() != nil {
		return
	}
	if interval != tk.interval {
		r.Fail("%s: tick interval %d, policy has %d", section, interval, tk.interval)
		return
	}
	if next <= last || next-last > interval {
		r.Fail("%s: inconsistent tick window [%d, %d] for interval %d", section, last, next, interval)
		return
	}
	tk.lastTick = last
	tk.nextTick = next
}

// SaveState serializes the blacklist, the staged marks, and the streak
// tracker. The thresholds are construction state.
func (p *BLISS) SaveState(w *snapshot.Writer) {
	w.Section("core.BLISS")
	p.saveTicker(w)
	w.I64(p.ticks)
	w.Int(p.lastThread)
	w.I64(p.streak)
	w.Bools(p.blacklisted)
	w.Bools(p.pendingMark)
}

// LoadState restores state saved by SaveState into a BLISS policy
// constructed for the same thread count.
func (p *BLISS) LoadState(r *snapshot.Reader) error {
	r.Section("core.BLISS")
	p.loadTicker(r, "core.BLISS")
	ticks := r.I64()
	lastThread := r.Int()
	streak := r.I64()
	black := r.Bools(snapshot.MaxSlice)
	pending := r.Bools(snapshot.MaxSlice)
	if err := r.Err(); err != nil {
		return err
	}
	if len(black) != len(p.blacklisted) || len(pending) != len(p.pendingMark) {
		r.Fail("core.BLISS: %d/%d threads, policy has %d", len(black), len(pending), len(p.blacklisted))
		return r.Err()
	}
	p.ticks = ticks
	p.lastThread = lastThread
	p.streak = streak
	copy(p.blacklisted, black)
	copy(p.pendingMark, pending)
	return nil
}

// SaveState serializes the boost target and the per-thread alone-time
// accounts.
func (p *SlowFair) SaveState(w *snapshot.Writer) {
	w.Section("core.SlowFair")
	p.saveTicker(w)
	w.Int(p.boosted)
	w.I64s(p.aloneServ)
	w.I64s(p.prevAlone)
}

// LoadState restores state saved by SaveState into a SLOW-FAIR policy
// constructed for the same thread count.
func (p *SlowFair) LoadState(r *snapshot.Reader) error {
	r.Section("core.SlowFair")
	p.loadTicker(r, "core.SlowFair")
	boosted := r.Int()
	alone := r.I64s(snapshot.MaxSlice)
	prev := r.I64s(snapshot.MaxSlice)
	if err := r.Err(); err != nil {
		return err
	}
	if len(alone) != len(p.aloneServ) || len(prev) != len(p.prevAlone) {
		r.Fail("core.SlowFair: %d/%d threads, policy has %d", len(alone), len(prev), len(p.aloneServ))
		return r.Err()
	}
	if boosted < -1 || boosted >= len(alone) {
		r.Fail("core.SlowFair: boosted thread %d out of range", boosted)
		return r.Err()
	}
	p.boosted = boosted
	copy(p.aloneServ, alone)
	copy(p.prevAlone, prev)
	return nil
}

// SaveState serializes the per-(thread, bank) budgets. The quota and
// geometry are construction state.
func (p *BankBW) SaveState(w *snapshot.Writer) {
	w.Section("core.BankBW")
	p.saveTicker(w)
	w.I64(p.quota)
	w.I64s(p.budget)
}

// LoadState restores state saved by SaveState into a BANK-BW policy
// constructed for the same thread count and bank geometry.
func (p *BankBW) LoadState(r *snapshot.Reader) error {
	r.Section("core.BankBW")
	p.loadTicker(r, "core.BankBW")
	quota := r.I64()
	budget := r.I64s(snapshot.MaxSlice)
	if err := r.Err(); err != nil {
		return err
	}
	if quota != p.quota {
		r.Fail("core.BankBW: quota %d, policy has %d", quota, p.quota)
		return r.Err()
	}
	if len(budget) != len(p.budget) {
		r.Fail("core.BankBW: %d budget slots, policy has %d", len(budget), len(p.budget))
		return r.Err()
	}
	copy(p.budget, budget)
	return nil
}

// SaveState serializes every thread's VTMS registers. The FQ inversion
// bound x is construction state, not mutable state, so it is not
// written.
func (b *vftBase) SaveState(w *snapshot.Writer) {
	w.Section("core.vftBase")
	w.Int(len(b.vtms))
	for _, v := range b.vtms {
		v.SaveState(w)
	}
}

// LoadState restores registers saved by SaveState into a policy
// constructed for the same thread count.
func (b *vftBase) LoadState(r *snapshot.Reader) error {
	r.Section("core.vftBase")
	n := r.Int()
	if r.Err() == nil && n != len(b.vtms) {
		r.Fail("core.vftBase: %d threads, policy has %d", n, len(b.vtms))
	}
	if err := r.Err(); err != nil {
		return err
	}
	for _, v := range b.vtms {
		if err := v.LoadState(r); err != nil {
			return err
		}
	}
	return nil
}
