package core

import "repro/internal/dram"

// FRVFTFArrival is the paper's *first* (rejected) option for resolving
// the bank-service discrepancy (Section 3.2): assume an average bank
// service requirement at arrival time, compute the virtual finish-time
// immediately, and never revise it. The paper argues this penalizes
// threads with many row-buffer hits; the deferred implementation
// (FRVFTF/FQVFTF) is what the evaluation uses. This policy exists for
// the ablation benchmark.
type FRVFTFArrival struct {
	vftBase
	avgBankL int // average of the Table 3 service times
}

// NewFRVFTFArrival returns the arrival-time-estimate ablation policy.
func NewFRVFTFArrival(shares []Share, nbanks int, t dram.Timing) *FRVFTFArrival {
	avg := (t.BankServiceRead(0) + t.BankServiceRead(1) + t.BankServiceRead(2)) / 3
	return &FRVFTFArrival{vftBase: newVFTBase(shares, nbanks, t), avgBankL: avg}
}

// Name implements Policy.
func (*FRVFTFArrival) Name() string { return "FR-VFTF-arrival" }

// Key implements Policy: the finish time is computed once, with the
// average service estimate, the first time the request is examined, and
// frozen immediately (arrival-time semantics).
func (p *FRVFTFArrival) Key(r *Request, _ BankState) int64 {
	if !r.KeyFrozen {
		v := p.vtms[r.Thread]
		bs := maxVT(FromCycles(r.Arrival), v.BankR(r.GlobalBank)) + v.scale(p.avgBankL)
		r.Key = maxVT(bs, v.ChanRAt(r.Channel)) + v.scale(v.timing.ChannelService())
		r.KeyFrozen = true
	}
	return int64(r.Key)
}

// OnIssue implements Policy: registers still update per issued command
// (the estimate only affects priorities, not accounting).
func (p *FRVFTFArrival) OnIssue(r *Request, kind CmdKind) {
	p.Key(r, BankClosed) // ensure frozen
	p.vtms[r.Thread].OnCommandIssue(kind, r.Arrival, r.GlobalBank, r.Channel, r.IsWrite)
}

// BankRule implements Policy.
func (*FRVFTFArrival) BankRule() (BankRule, int64) { return RuleFirstReady, 0 }
