package core

import (
	"fmt"

	"repro/internal/dram"
)

// BankRule selects how a per-bank scheduler picks the request whose next
// SDRAM command it offers to the channel scheduler.
type BankRule uint8

const (
	// RuleFirstReady: order candidates (ready, CAS, key); classic
	// first-ready scheduling. Used by FR-FCFS and FR-VFTF.
	RuleFirstReady BankRule = iota
	// RuleFQ: first-ready ordering while the bank is closed or within
	// the first x cycles after an activate; afterwards the bank
	// scheduler selects the request with the smallest key and waits for
	// its first command to become ready (Section 3.3). Used by FQ-VFTF.
	RuleFQ
	// RuleStrict: always select the request with the smallest key and
	// wait for it; pure in-order service (FCFS / pure EDF).
	RuleStrict
)

// Policy is a memory scheduling algorithm: it supplies the priority key
// used by the bank and channel schedulers (after the shared "ready
// commands first, CAS commands first" levels) and observes issued
// commands to maintain any internal state (VTMS registers).
//
// Smaller keys are higher priority. The controller breaks key ties by
// arrival time and then request ID.
//
// # Key purity contract
//
// The event-driven controller caches per-bank scheduling decisions and
// re-evaluates a bank only when something that can change its decision
// happens. For that to be sound, Key must be a pure function of
//
//   - the request's own immutable fields (thread, address, arrival,
//     bank coordinates, frozen key), and
//   - policy state that changes only inside OnIssue or through an
//     explicit reassignment entry point (core.ShareSetter /
//     core.ChannelSetter).
//
// Key must not read clocks, counters, or any state mutated outside
// those two paths, and calling it must not change the value a later
// call would return (the key caching on the request is write-only
// observability, never read back before freezing). Additionally,
// OnIssue for a request on channel c may only mutate state that feeds
// Key for requests on the same channel c — the VTMS policies satisfy
// this because their registers are per (thread, bank) and per (thread,
// channel) — so the controller invalidates exactly the issuing
// channel's cached decisions. A future policy that couples channels
// through shared mutable state would need a controller-wide
// invalidation (memctrl.Controller.InvalidateScheduling) instead.
// Share reassignment already takes that path: sim.System.SetShare
// invalidates all banks after SetThreadShare, and interval-based
// policies (PolicyTicker) get the same treatment: the controller runs
// their window-boundary work through Tick and invalidates everything
// when it reports a Key-feeding change.
type Policy interface {
	// Name identifies the policy in reports ("FR-FCFS", "FQ-VFTF", ...).
	Name() string

	// Key returns the request's priority key given the state its bank
	// would present if the request began service now.
	Key(r *Request, state BankState) int64

	// OnIssue informs the policy that one SDRAM command of request r was
	// issued (kind is never CmdNone or CmdRefresh).
	OnIssue(r *Request, kind CmdKind)

	// BankRule returns the bank scheduler selection rule and, for
	// RuleFQ, the priority-inversion bound x in cycles.
	BankRule() (rule BankRule, x int64)
}

// stateFromFirstCmd infers the bank state a request saw when its first
// command issued: a precharge means the bank held a different row
// (conflict), an activate means it was closed, a CAS means a row hit.
func stateFromFirstCmd(kind CmdKind) BankState {
	switch kind {
	case CmdPrecharge:
		return BankConflict
	case CmdActivate:
		return BankClosed
	default:
		return BankHit
	}
}

// ---------------------------------------------------------------------
// FR-FCFS (baseline) and FCFS
// ---------------------------------------------------------------------

// FRFCFS is the first-ready first-come-first-serve baseline: ready
// commands first, CAS commands first, then earliest arrival time.
type FRFCFS struct{}

// NewFRFCFS returns the FR-FCFS baseline policy.
func NewFRFCFS() *FRFCFS { return &FRFCFS{} }

// Name implements Policy.
func (*FRFCFS) Name() string { return "FR-FCFS" }

// Key implements Policy: earliest arrival time first.
func (*FRFCFS) Key(r *Request, _ BankState) int64 { return r.Arrival }

// OnIssue implements Policy (no internal state).
func (*FRFCFS) OnIssue(_ *Request, _ CmdKind) {}

// BankRule implements Policy.
func (*FRFCFS) BankRule() (BankRule, int64) { return RuleFirstReady, 0 }

// FCFS services requests strictly in arrival order with no first-ready
// reordering; it is the in-order lower bound occasionally used as a
// sanity reference.
type FCFS struct{}

// NewFCFS returns the strict in-order policy.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements Policy.
func (*FCFS) Name() string { return "FCFS" }

// Key implements Policy.
func (*FCFS) Key(r *Request, _ BankState) int64 { return r.Arrival }

// OnIssue implements Policy.
func (*FCFS) OnIssue(_ *Request, _ CmdKind) {}

// BankRule implements Policy.
func (*FCFS) BankRule() (BankRule, int64) { return RuleStrict, 0 }

// ---------------------------------------------------------------------
// Virtual finish-time policies
// ---------------------------------------------------------------------

// vftBase holds the per-thread VTMS registers shared by the VFTF-family
// policies and implements key computation and register updates.
type vftBase struct {
	vtms []*VTMS
}

func newVFTBase(shares []Share, nbanks int, t dram.Timing) vftBase {
	v := vftBase{vtms: make([]*VTMS, len(shares))}
	for i, s := range shares {
		v.vtms[i] = NewVTMS(i, s, nbanks, t)
	}
	return v
}

// ThreadVTMS exposes a thread's VTMS registers (for tests and reports).
func (b *vftBase) ThreadVTMS(thread int) *VTMS { return b.vtms[thread] }

// SetChannels resizes every thread's per-channel registers; the
// controller calls it when configured with more than one memory
// channel (a beyond-the-paper extension).
func (b *vftBase) SetChannels(n int) {
	for _, v := range b.vtms {
		v.SetChannels(n)
	}
}

// ChannelSetter is implemented by policies whose bookkeeping has a
// per-channel dimension.
type ChannelSetter interface {
	SetChannels(n int)
}

// SetThreadShare reassigns one thread's bandwidth share at run time.
func (b *vftBase) SetThreadShare(thread int, s Share) {
	b.vtms[thread].SetShare(s)
}

// ShareSetter is implemented by policies whose shares can be reassigned
// at run time (the VFTF family; FR-FCFS has no shares).
type ShareSetter interface {
	SetThreadShare(thread int, s Share)
}

// ThreadShare returns a thread's currently allocated share.
func (b *vftBase) ThreadShare(thread int) Share { return b.vtms[thread].Share() }

// ShareGetter is implemented by policies that know each thread's
// allocated share phi (the VFTF family). Observers — the fairness
// monitor — read shares through it; shareless policies like FR-FCFS
// fall back to the paper's static equal allocation 1/N.
type ShareGetter interface {
	ThreadShare(thread int) Share
}

// Key returns the request's virtual finish-time: the frozen value once
// service has begun, otherwise Equation 7 evaluated against the current
// registers and bank state. The provisional value is cached on the
// request purely for observability.
func (b *vftBase) Key(r *Request, state BankState) int64 {
	if r.KeyFrozen {
		return int64(r.Key)
	}
	vft := b.vtms[r.Thread].FinishTime(r.Arrival, r.GlobalBank, r.Channel, r.IsWrite, state)
	r.Key = vft
	return int64(vft)
}

// OnIssue freezes the request's virtual finish-time when its first
// command issues (computed against the pre-update registers, with the
// bank state implied by the command), then applies the Table 4 /
// Equations 8-9 register updates.
func (b *vftBase) OnIssue(r *Request, kind CmdKind) {
	v := b.vtms[r.Thread]
	if !r.KeyFrozen {
		r.Key = v.FinishTime(r.Arrival, r.GlobalBank, r.Channel, r.IsWrite, stateFromFirstCmd(kind))
		r.KeyFrozen = true
	}
	v.OnCommandIssue(kind, r.Arrival, r.GlobalBank, r.Channel, r.IsWrite)
}

// FRVFTF prioritizes requests earliest-virtual-finish-time first with
// plain first-ready bank scheduling (no protection against bank priority
// chaining); the paper's intermediate design point.
type FRVFTF struct {
	vftBase
}

// NewFRVFTF returns an FR-VFTF policy for threads with the given shares
// over nbanks banks of a memory system with timing t.
func NewFRVFTF(shares []Share, nbanks int, t dram.Timing) *FRVFTF {
	return &FRVFTF{vftBase: newVFTBase(shares, nbanks, t)}
}

// Name implements Policy.
func (*FRVFTF) Name() string { return "FR-VFTF" }

// BankRule implements Policy.
func (*FRVFTF) BankRule() (BankRule, int64) { return RuleFirstReady, 0 }

// FQVFTF is the full FQ memory scheduler: virtual-finish-time-first
// priority plus the Section 3.3 FQ bank scheduling algorithm that bounds
// priority inversion blocking time at x cycles (the paper uses x = tRAS).
type FQVFTF struct {
	vftBase
	x int64
}

// NewFQVFTF returns the FQ memory scheduler with the paper's bound
// x = tRAS.
func NewFQVFTF(shares []Share, nbanks int, t dram.Timing) *FQVFTF {
	return NewFQVFTFBound(shares, nbanks, t, int64(t.TRAS))
}

// NewFQVFTFBound returns the FQ memory scheduler with an explicit
// priority-inversion bound x (for the ablation sweep).
func NewFQVFTFBound(shares []Share, nbanks int, t dram.Timing, x int64) *FQVFTF {
	if x < 0 {
		panic(fmt.Sprintf("core: negative FQ inversion bound %d", x))
	}
	return &FQVFTF{vftBase: newVFTBase(shares, nbanks, t), x: x}
}

// Name implements Policy.
func (*FQVFTF) Name() string { return "FQ-VFTF" }

// BankRule implements Policy.
func (p *FQVFTF) BankRule() (BankRule, int64) { return RuleFQ, p.x }

// ---------------------------------------------------------------------
// Virtual start-time ablation
// ---------------------------------------------------------------------

// FRVSTF prioritizes by earliest virtual *start*-time (the Section 2.3
// alternative ordering); implemented as an ablation of the finish-time
// choice.
type FRVSTF struct {
	vftBase
}

// NewFRVSTF returns the start-time-first ablation policy.
func NewFRVSTF(shares []Share, nbanks int, t dram.Timing) *FRVSTF {
	return &FRVSTF{vftBase: newVFTBase(shares, nbanks, t)}
}

// Name implements Policy.
func (*FRVSTF) Name() string { return "FR-VSTF" }

// Key implements Policy: the bank service virtual start-time
// max{a, B_j.R} (Equation 3 in register form).
func (p *FRVSTF) Key(r *Request, _ BankState) int64 {
	if r.KeyFrozen {
		return int64(r.Key)
	}
	v := p.vtms[r.Thread]
	st := maxVT(FromCycles(r.Arrival), v.BankR(r.GlobalBank))
	r.Key = st
	return int64(st)
}

// OnIssue implements Policy: freeze the start-time key, then apply the
// standard register updates.
func (p *FRVSTF) OnIssue(r *Request, kind CmdKind) {
	v := p.vtms[r.Thread]
	if !r.KeyFrozen {
		r.Key = maxVT(FromCycles(r.Arrival), v.BankR(r.GlobalBank))
		r.KeyFrozen = true
	}
	v.OnCommandIssue(kind, r.Arrival, r.GlobalBank, r.Channel, r.IsWrite)
}

// BankRule implements Policy.
func (*FRVSTF) BankRule() (BankRule, int64) { return RuleFirstReady, 0 }
