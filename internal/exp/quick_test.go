package exp

import (
	"errors"
	"reflect"
	"testing"
)

// TestQuick is the CI race-detector smoke test: it drives parallelDo
// and the Runner's concurrent memoization (shared memo map, cycle
// accounting, and the limit semaphore) with overlapping keys, which is
// exactly the state `go test -race` needs to see under contention. It
// is deliberately small enough to finish in seconds under -race.
func TestQuick(t *testing.T) {
	r := NewRunner(Config{Warmup: 5_000, Window: 20_000, Parallel: 4})
	jobs := []func() error{
		func() error { _, err := r.Solo("crafty", 1); return err },
		func() error { _, err := r.Solo("crafty", 1); return err }, // memo collision
		func() error { _, err := r.Solo("art", 1); return err },
		func() error { _, err := r.CoRun([]string{"vpr", "art"}, "FQ-VFTF"); return err },
		func() error { _, err := r.CoRun([]string{"vpr", "art"}, "FQ-VFTF"); return err },
		func() error { _, err := r.CoRun([]string{"vpr", "art"}, "FR-FCFS"); return err },
	}
	if err := r.parallelDo(len(jobs), func(i int) error { return jobs[i]() }); err != nil {
		t.Fatal(err)
	}

	keys := r.sortedKeys()
	if len(keys) != 4 {
		t.Errorf("memo keys = %v, want 4 distinct runs", keys)
	}
	// Duplicate keys may race past the memo double-check and simulate
	// twice; the accounting must cover at least the distinct runs.
	if got := r.SimulatedCycles(); got < 4*25_000 {
		t.Errorf("SimulatedCycles = %d, want >= %d", got, 4*25_000)
	}

	// Memoized recall returns identical results without re-simulating.
	before := r.SimulatedCycles()
	a, err := r.Solo("crafty", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Solo("crafty", 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("memoized recall diverged: %+v vs %+v", a, b)
	}
	if got := r.SimulatedCycles(); got != before {
		t.Errorf("memoized recall simulated %d extra cycles", got-before)
	}

	// parallelDo surfaces a worker's error.
	boom := errors.New("boom")
	if err := parallelDo(3, 8, func(i int) error {
		if i == 5 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Errorf("parallelDo error = %v, want boom", err)
	}
}

// TestParallelDoJoinsAllErrors injects two independent failures and
// demands both survive to the caller — the old first-error-wins
// collection silently dropped every failure after the lowest index.
func TestParallelDoJoinsAllErrors(t *testing.T) {
	errA := errors.New("worker 2: bad workload")
	errB := errors.New("worker 6: bad policy")
	err := parallelDo(0, 8, func(i int) error {
		switch i {
		case 2:
			return errA
		case 6:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Errorf("joined error %v lost the first failure", err)
	}
	if !errors.Is(err, errB) {
		t.Errorf("joined error %v lost the second failure", err)
	}
	if err := parallelDo(2, 4, func(int) error { return nil }); err != nil {
		t.Errorf("all-success parallelDo = %v, want nil", err)
	}
}

// TestWorkerBudget checks that the sweep-wide worker budget is divided
// between run-level fan-out and intra-run parallelism — and that a
// sweep run with intra-run workers reproduces a serial sweep exactly.
func TestWorkerBudget(t *testing.T) {
	for _, tc := range []struct {
		workers, intra, want int
	}{
		{8, 4, 2},
		{8, 0, 8},
		{3, 8, 1},
		{0, 4, 8}, // Workers unset: legacy Parallel default
	} {
		r := NewRunner(Config{Warmup: 1, Window: 1, Workers: tc.workers, IntraWorkers: tc.intra})
		if r.runWorkers != tc.want {
			t.Errorf("Workers=%d IntraWorkers=%d: runWorkers = %d, want %d",
				tc.workers, tc.intra, r.runWorkers, tc.want)
		}
	}

	serial := NewRunner(Config{Warmup: 5_000, Window: 20_000})
	par := NewRunner(Config{Warmup: 5_000, Window: 20_000, Workers: 8, IntraWorkers: 4})
	a, err := serial.CoRun([]string{"vpr", "art"}, "FQ-VFTF")
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.CoRun([]string{"vpr", "art"}, "FQ-VFTF")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("intra-run parallel sweep diverges from serial:\n serial:   %+v\n parallel: %+v", a, b)
	}
}
