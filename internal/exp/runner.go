// Package exp reproduces the paper's evaluation: every figure of
// Section 4 has a driver that assembles the workloads, runs the
// simulator with the appropriate schedulers and baselines, and reports
// the same rows/series the paper plots. DESIGN.md maps each figure to
// its driver; EXPERIMENTS.md records paper-versus-measured values.
package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config controls simulation lengths for all experiments.
type Config struct {
	// Warmup and Window are the per-run warmup and measurement cycles.
	Warmup, Window int64

	// Seed perturbs the trace generators.
	Seed uint64

	// Parallel bounds concurrent simulations (0 = GOMAXPROCS via
	// unbounded goroutines; runs are independent and deterministic).
	Parallel int

	// Workers is the sweep's total worker-goroutine budget, shared
	// between run-level fan-out and intra-run parallelism: with
	// IntraWorkers > 1 the run-level concurrency becomes
	// max(1, Workers/IntraWorkers) so the two dimensions multiply out
	// to at most Workers busy goroutines instead of oversubscribing
	// the machine. 0 leaves Parallel in charge.
	Workers int

	// IntraWorkers is passed to every simulation as sim.Config.Workers
	// (sharded per-channel scheduling plus concurrent core stepping;
	// results stay bit-identical to serial). 0 or 1 runs each
	// simulation serially.
	IntraWorkers int

	// Audit runs every simulation under the runtime invariant auditor
	// (see internal/audit); results are identical, violations panic. The
	// FQMS_AUDIT environment variable also enables it globally.
	Audit bool

	// Interference runs every simulation with delay attribution on
	// (sim.Config.Interference): results stay bit-identical, each run
	// additionally leaves a <key>.interference.json artifact (in
	// CheckpointDir when set, else SeriesDir), and arena rows carry an
	// interference_index column.
	Interference bool

	// SampleInterval > 0 samples every run's metrics on epoch
	// boundaries (cycles); results stay bit-identical. Required for
	// SeriesDir.
	SampleInterval int64

	// SeriesDir, when non-empty and sampling is on, receives a
	// .series.json and .fairness.csv per run, named by memo key.
	SeriesDir string

	// Progress, when non-nil, is credited with each run's simulated
	// cycles (memoized recalls are not re-counted) so a status server
	// can report sweep throughput.
	Progress *telemetry.Progress

	// CheckpointDir, when non-empty, makes every run crash-resilient:
	// the simulator checkpoints its complete state to
	// <dir>/<key>.ckpt every CheckpointEvery cycles (atomically, via
	// temp file + rename), and each completed run's Result is persisted
	// to <dir>/<key>.result.json.
	CheckpointDir string

	// CheckpointEvery is the auto-checkpoint interval in cycles
	// (0 selects DefaultCheckpointEvery). Only meaningful with
	// CheckpointDir.
	CheckpointEvery int64

	// Resume, with CheckpointDir, picks every run up where a previous
	// (killed) sweep left it: completed runs are recalled from their
	// persisted Results without re-simulating, and interrupted runs
	// restore from their checkpoint and simulate only the remaining
	// cycles. Resumed runs are bit-identical to uninterrupted ones —
	// same Results, same series artifacts, byte for byte.
	Resume bool

	// CheckpointSink, when non-nil, observes every checkpoint the
	// runner writes: right after <key>.ckpt lands on disk the sink
	// receives the run's memo key, the checkpointed cycle, and the raw
	// snapshot bytes. A sink error aborts the run with that error. The
	// fabric worker (internal/fabric) uses this to upload each
	// checkpoint to its coordinator inside the same lease heartbeat,
	// so a kill -9'd worker's chunk resumes elsewhere from the last
	// uploaded state.
	CheckpointSink func(key string, cycle int64, data []byte) error
}

// DefaultCheckpointEvery is the auto-checkpoint interval when
// Config.CheckpointEvery is zero: frequent enough that a killed sweep
// loses at most a second or two of simulation per run.
const DefaultCheckpointEvery int64 = 100_000

// DefaultConfig returns measurement windows long enough for stable
// figures (a few seconds per multi-core run).
func DefaultConfig() Config {
	return Config{Warmup: 50_000, Window: 400_000}
}

// QuickConfig returns short windows for tests.
func QuickConfig() Config {
	return Config{Warmup: 20_000, Window: 120_000}
}

// Runner executes experiments, memoizing runs shared between figures
// (solo runs feed Figures 4, 5, 8, and 9).
type Runner struct {
	cfg Config

	mu        sync.Mutex
	memo      map[string]sim.Result
	intfMemo  map[string]InterferenceDoc
	simCycles int64
	limit     chan struct{}
	// runWorkers is the run-level concurrency implied by the worker
	// budget; parallelDo spawns exactly this many worker goroutines.
	runWorkers int

	// stopAfterCheckpoints is a test hook: when > 0, the runner aborts
	// with errStopped after writing that many checkpoint files,
	// emulating a sweep killed mid-run.
	stopAfterCheckpoints int
}

// errStopped is returned when the stopAfterCheckpoints test hook fires.
var errStopped = errors.New("exp: stopped by checkpoint hook")

// SimulatedCycles returns the total cycles actually simulated so far
// (memoized recalls are not double-counted). cmd/experiments uses the
// delta across a figure to report simulated-cycles-per-second.
func (r *Runner) SimulatedCycles() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.simCycles
}

// NewRunner returns a Runner over the given configuration.
func NewRunner(cfg Config) *Runner {
	if cfg.Warmup <= 0 || cfg.Window <= 0 {
		def := DefaultConfig()
		if cfg.Warmup <= 0 {
			cfg.Warmup = def.Warmup
		}
		if cfg.Window <= 0 {
			cfg.Window = def.Window
		}
	}
	n := cfg.Parallel
	if n <= 0 {
		n = 8
	}
	if cfg.Workers > 0 {
		// Divide the budget between run-level and intra-run fan-out.
		intra := cfg.IntraWorkers
		if intra < 1 {
			intra = 1
		}
		n = cfg.Workers / intra
		if n < 1 {
			n = 1
		}
	}
	return &Runner{
		cfg:        cfg,
		memo:       make(map[string]sim.Result),
		intfMemo:   make(map[string]InterferenceDoc),
		limit:      make(chan struct{}, n),
		runWorkers: n,
	}
}

// policies are the schedulers the evaluation compares.
var policies = []struct {
	Name    string
	Factory sim.PolicyFactory
}{
	{"FR-FCFS", sim.FRFCFS},
	{"FR-VFTF", sim.FRVFTF},
	{"FQ-VFTF", sim.FQVFTF},
}

// PolicyNames returns the evaluation's scheduler names in order.
func PolicyNames() []string { return []string{"FR-FCFS", "FR-VFTF", "FQ-VFTF"} }

// run executes (or recalls) one simulation.
func (r *Runner) run(key string, cfg sim.Config) (sim.Result, error) {
	r.mu.Lock()
	if res, ok := r.memo[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	r.limit <- struct{}{}
	defer func() { <-r.limit }()

	// Re-check after acquiring the slot (another goroutine may have
	// computed it meanwhile).
	r.mu.Lock()
	if res, ok := r.memo[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	// A previous sweep may have finished this run already. With
	// attribution on the recall also needs the interference artifact;
	// a run whose result survived but whose matrix did not re-simulates.
	if res, ok := r.loadResult(key); ok {
		doc, docOK := r.loadInterference(key)
		if !r.cfg.Interference || docOK {
			r.mu.Lock()
			r.memo[key] = res
			if docOK {
				r.intfMemo[key] = doc
			}
			r.mu.Unlock()
			return res, nil
		}
	}

	cfg.Seed = r.cfg.Seed
	cfg.Audit = cfg.Audit || r.cfg.Audit
	cfg.Interference = cfg.Interference || r.cfg.Interference
	cfg.SampleInterval = r.cfg.SampleInterval
	cfg.Workers = r.cfg.IntraWorkers
	sys, res, stepped, err := r.runSim(key, cfg)
	if err != nil {
		return sim.Result{}, fmt.Errorf("exp: run %s: %w", key, err)
	}
	defer sys.Close()
	if r.cfg.SampleInterval > 0 && r.cfg.SeriesDir != "" {
		if err := writeSeries(r.cfg.SeriesDir, key, sys); err != nil {
			return sim.Result{}, fmt.Errorf("exp: series %s: %w", key, err)
		}
	}
	var doc InterferenceDoc
	var hasDoc bool
	if snap, ok := sys.Interference(); ok {
		doc = InterferenceDoc{Key: key, Policy: sys.Controller().Policy().Name(), Interference: snap}
		hasDoc = true
		if err := r.saveInterference(key, doc); err != nil {
			return sim.Result{}, fmt.Errorf("exp: interference %s: %w", key, err)
		}
	}
	if err := r.saveResult(key, res); err != nil {
		return sim.Result{}, fmt.Errorf("exp: persist %s: %w", key, err)
	}
	if r.cfg.Progress != nil {
		r.cfg.Progress.AddCycles(stepped)
	}
	r.mu.Lock()
	r.memo[key] = res
	if hasDoc {
		r.intfMemo[key] = doc
	}
	r.simCycles += stepped
	r.mu.Unlock()
	return res, nil
}

// runSim executes one simulation to completion. With CheckpointDir set
// it steps in CheckpointEvery chunks, checkpointing after each; with
// Resume it first tries to restore from an existing checkpoint. It
// returns the cycles actually simulated in this process (less than
// warmup+window for a resumed run).
func (r *Runner) runSim(key string, cfg sim.Config) (*sim.System, sim.Result, int64, error) {
	if r.cfg.CheckpointDir == "" {
		sys, res, err := sim.RunSystem(cfg, r.cfg.Warmup, r.cfg.Window)
		return sys, res, r.cfg.Warmup + r.cfg.Window, err
	}
	every := r.cfg.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	if err := os.MkdirAll(r.cfg.CheckpointDir, 0o755); err != nil {
		return nil, sim.Result{}, 0, err
	}
	ckpt := r.checkpointPath(key)
	var sys *sim.System
	if r.cfg.Resume {
		if _, err := os.Stat(ckpt); err == nil {
			restored, err := sim.RestoreFile(cfg, ckpt)
			if err != nil {
				return nil, sim.Result{}, 0, fmt.Errorf("restore %s: %w", ckpt, err)
			}
			sys = restored
		}
	}
	if sys == nil {
		fresh, err := sim.New(cfg)
		if err != nil {
			return nil, sim.Result{}, 0, err
		}
		sys = fresh
	}
	start := sys.Cycle()
	total := r.cfg.Warmup + r.cfg.Window
	for sys.Cycle() < total {
		next := sys.Cycle() + every
		// Stop at the measurement boundary so BeginMeasurement lands on
		// exactly the same cycle as an uninterrupted run.
		if !sys.MeasurementStarted() && next > r.cfg.Warmup {
			next = r.cfg.Warmup
		}
		if next > total {
			next = total
		}
		sys.Step(next - sys.Cycle())
		if !sys.MeasurementStarted() && sys.Cycle() >= r.cfg.Warmup {
			sys.BeginMeasurement()
		}
		if sys.Cycle() < total {
			if err := r.writeCheckpoint(key, ckpt, sys); err != nil {
				return nil, sim.Result{}, 0, fmt.Errorf("checkpoint %s: %w", ckpt, err)
			}
			if stop := r.noteCheckpoint(); stop {
				return nil, sim.Result{}, 0, errStopped
			}
		}
	}
	sys.FinishAudit()
	return sys, sys.Results(), total - start, nil
}

// writeCheckpoint persists one checkpoint. Without a sink it defers to
// the simulator's atomic CheckpointFile; with one it snapshots through
// a buffer so the sink sees exactly the bytes on disk, then writes the
// file with the same temp+rename atomicity.
func (r *Runner) writeCheckpoint(key, path string, sys *sim.System) error {
	if r.cfg.CheckpointSink == nil {
		return sys.CheckpointFile(path)
	}
	var buf bytes.Buffer
	if err := sys.Checkpoint(&buf); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return r.cfg.CheckpointSink(key, sys.Cycle(), buf.Bytes())
}

// noteCheckpoint implements the stopAfterCheckpoints test hook.
func (r *Runner) noteCheckpoint() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopAfterCheckpoints == 0 {
		return false
	}
	r.stopAfterCheckpoints--
	return r.stopAfterCheckpoints == 0
}

// Checkpoint and result artifacts share writeSeries's sanitizeKey
// naming, so one run's checkpoint, result, and series files all carry
// the same stem.
func (r *Runner) checkpointPath(key string) string {
	return filepath.Join(r.cfg.CheckpointDir, sanitizeKey(key)+".ckpt")
}

func (r *Runner) resultPath(key string) string {
	return filepath.Join(r.cfg.CheckpointDir, sanitizeKey(key)+".result.json")
}

// loadResult recalls a completed run persisted by a previous sweep.
func (r *Runner) loadResult(key string) (sim.Result, bool) {
	if r.cfg.CheckpointDir == "" || !r.cfg.Resume {
		return sim.Result{}, false
	}
	b, err := os.ReadFile(r.resultPath(key))
	if err != nil {
		return sim.Result{}, false
	}
	var res sim.Result
	if err := json.Unmarshal(b, &res); err != nil {
		return sim.Result{}, false
	}
	return res, true
}

// saveResult persists a completed run's Result and retires its
// checkpoint: the result now supersedes it.
func (r *Runner) saveResult(key string, res sim.Result) error {
	if r.cfg.CheckpointDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.cfg.CheckpointDir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	path := r.resultPath(key)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	os.Remove(r.checkpointPath(key))
	return nil
}

// Solo runs one benchmark alone on a system whose memory timing is
// uniformly scaled by the integer factor scale. scale=1 is the physical
// system (Figure 4); scale=N is the paper's private virtual-time
// baseline for an N-processor CMP.
func (r *Runner) Solo(bench string, scale int) (sim.ThreadResult, error) {
	p, err := trace.ByName(bench)
	if err != nil {
		return sim.ThreadResult{}, err
	}
	cfg := sim.Config{Workload: []trace.Profile{p}}
	if scale != 1 {
		cfg.Mem.DRAM = dram.DefaultConfig()
		cfg.Mem.DRAM.Timing = dram.DDR2800().Scale(scale)
	}
	res, err := r.run(fmt.Sprintf("solo/%s/x%d", bench, scale), cfg)
	if err != nil {
		return sim.ThreadResult{}, err
	}
	return res.Threads[0], nil
}

// CoRun runs the benchmarks together under the named policy on the
// physical memory system with equal shares.
func (r *Runner) CoRun(benches []string, policy string) (sim.Result, error) {
	factory, err := sim.PolicyByName(policy)
	if err != nil {
		return sim.Result{}, err
	}
	ps := make([]trace.Profile, len(benches))
	for i, b := range benches {
		p, err := trace.ByName(b)
		if err != nil {
			return sim.Result{}, err
		}
		ps[i] = p
	}
	key := fmt.Sprintf("co/%s/%s", strings.Join(benches, "+"), policy)
	return r.run(key, sim.Config{Workload: ps, Policy: factory})
}

// parallelDo runs fn(i) for i in [0, n) on the runner's run-level
// worker budget. All failures are reported, joined with errors.Join —
// returning only the first would hide independent failures from the
// other workers (distinct workloads can fail for distinct reasons, and
// the caller sees them all at once).
func (r *Runner) parallelDo(n int, fn func(i int) error) error {
	return parallelDo(r.runWorkers, n, fn)
}

// parallelDo runs fn(i) for i in [0, n) on min(width, n) worker
// goroutines pulling indices from a shared counter, so the goroutine
// count — not just the in-flight simulation count — respects the
// worker budget even when each fn fans out intra-run workers of its
// own.
func parallelDo(width, n int, fn func(i int) error) error {
	if width <= 0 || width > n {
		width = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// allBenchmarks returns the suite names in Figure 4 order.
func allBenchmarks() []string { return trace.Names() }

// subjectBenchmarks returns the Figure 5 subjects: every suite
// benchmark except the background thread (art), in Figure 4 order.
func subjectBenchmarks() []string {
	var out []string
	for _, n := range trace.Names() {
		if n != "art" {
			out = append(out, n)
		}
	}
	return out
}

// sortedKeys is a test hook: the memo keys of everything run so far.
func (r *Runner) sortedKeys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.memo))
	for k := range r.memo {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
