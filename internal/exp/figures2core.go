package exp

import (
	"fmt"
	"io"

	"repro/internal/stats"
)

// ---------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------

// Figure1Row is one bar group of Figure 1: vpr's IPC and average memory
// read latency in one co-schedule under FR-FCFS.
type Figure1Row struct {
	Scenario string // "alone", "with crafty", "with art"
	IPC      float64
	RelIPC   float64 // IPC relative to running alone
	ReadLat  float64
	BusUtil  float64
}

// Figure1Result reproduces Figure 1: benchmark vpr alone and co-scheduled
// with crafty and with art on a dual-processor CMP under FR-FCFS.
type Figure1Result struct {
	Rows []Figure1Row
}

// Figure1 runs the Figure 1 experiment.
func (r *Runner) Figure1() (Figure1Result, error) {
	var out Figure1Result
	solo, err := r.Solo("vpr", 1)
	if err != nil {
		return out, err
	}
	out.Rows = append(out.Rows, Figure1Row{
		Scenario: "alone", IPC: solo.IPC, RelIPC: 1,
		ReadLat: solo.AvgReadLatency, BusUtil: solo.BusUtil,
	})
	for _, bg := range []string{"crafty", "art"} {
		res, err := r.CoRun([]string{"vpr", bg}, "FR-FCFS")
		if err != nil {
			return out, err
		}
		v := res.Threads[0]
		out.Rows = append(out.Rows, Figure1Row{
			Scenario: "with " + bg, IPC: v.IPC, RelIPC: v.IPC / solo.IPC,
			ReadLat: v.AvgReadLatency, BusUtil: v.BusUtil,
		})
	}
	return out, nil
}

// Render writes the figure as a text table.
func (f Figure1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 1: vpr with FR-FCFS on a 2-core CMP (shared memory only)\n")
	fmt.Fprintf(w, "%-12s %8s %8s %10s %8s\n", "scenario", "IPC", "relIPC", "readLat", "busUtil")
	for _, row := range f.Rows {
		fmt.Fprintf(w, "%-12s %8.3f %8.2f %10.0f %8.3f\n",
			row.Scenario, row.IPC, row.RelIPC, row.ReadLat, row.BusUtil)
	}
}

// ---------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------

// Figure4Row is one benchmark's solo behavior on the physical system.
type Figure4Row struct {
	Benchmark  string
	BusUtil    float64
	IPC        float64
	ReadLat    float64
	ReadLatP50 float64
	ReadLatP95 float64
	ReadLatP99 float64
}

// Figure4Result reproduces Figure 4: data bus utilization of the twenty
// benchmarks running alone under FR-FCFS, ordered most aggressive first.
type Figure4Result struct {
	Rows []Figure4Row
}

// Figure4 runs the Figure 4 experiment.
func (r *Runner) Figure4() (Figure4Result, error) {
	names := allBenchmarks()
	rows := make([]Figure4Row, len(names))
	err := r.parallelDo(len(names), func(i int) error {
		tr, err := r.Solo(names[i], 1)
		if err != nil {
			return err
		}
		rows[i] = Figure4Row{
			Benchmark: names[i], BusUtil: tr.BusUtil, IPC: tr.IPC, ReadLat: tr.AvgReadLatency,
			ReadLatP50: tr.ReadLatP50, ReadLatP95: tr.ReadLatP95, ReadLatP99: tr.ReadLatP99,
		}
		return nil
	})
	return Figure4Result{Rows: rows}, err
}

// Render writes the figure as a text table.
func (f Figure4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 4: solo data bus utilization (FR-FCFS), most aggressive first\n")
	fmt.Fprintf(w, "%-10s %8s %8s %9s\n", "benchmark", "busUtil", "IPC", "readLat")
	for _, row := range f.Rows {
		fmt.Fprintf(w, "%-10s %8.3f %8.3f %9.0f\n", row.Benchmark, row.BusUtil, row.IPC, row.ReadLat)
	}
}

// ---------------------------------------------------------------------
// Figures 5, 6, 7 (one set of 2-core runs)
// ---------------------------------------------------------------------

// SubjectRow is one subject benchmark's outcome under one scheduler when
// co-scheduled with the art background thread.
type SubjectRow struct {
	Subject string
	Policy  string

	// NormIPC is the subject's IPC normalized to the same benchmark
	// running alone on a private memory system time scaled by 2 (the
	// paper's QoS baseline); >= 1 meets the QoS objective.
	NormIPC float64

	// ReadLat is the subject's average memory read latency (cycles);
	// the P50/P95/P99 fields are the distribution's percentiles (the
	// priority-inversion analysis cares about the tail, not the mean).
	ReadLat    float64
	ReadLatP50 float64
	ReadLatP95 float64
	ReadLatP99 float64

	// BusUtil is the subject's share of peak data bus bandwidth.
	BusUtil float64

	// BgNormIPC is the background (art) thread's normalized IPC
	// (Figure 6).
	BgNormIPC float64

	// AggBusUtil and AggBankUtil are system-wide utilizations
	// (Figure 7, middle and bottom).
	AggBusUtil  float64
	AggBankUtil float64

	// HMNormIPC is the harmonic mean of the two threads' normalized
	// IPCs (Figure 7's performance metric).
	HMNormIPC float64
}

// TwoCoreResult holds the complete Figure 5/6/7 data: 19 subjects x 3
// schedulers, every subject co-scheduled with art.
type TwoCoreResult struct {
	Rows []SubjectRow // ordered by subject (Figure 4 order), then policy
}

// TwoCore runs the Figure 5/6/7 experiment set.
func (r *Runner) TwoCore() (TwoCoreResult, error) {
	subjects := subjectBenchmarks()
	type cell struct {
		rows [3]SubjectRow
	}
	cells := make([]cell, len(subjects))
	err := r.parallelDo(len(subjects), func(i int) error {
		sub := subjects[i]
		subBase, err := r.Solo(sub, 2)
		if err != nil {
			return err
		}
		bgBase, err := r.Solo("art", 2)
		if err != nil {
			return err
		}
		for pi, pol := range policies {
			res, err := r.CoRun([]string{sub, "art"}, pol.Name)
			if err != nil {
				return err
			}
			s, bg := res.Threads[0], res.Threads[1]
			norm := s.IPC / subBase.IPC
			bgNorm := bg.IPC / bgBase.IPC
			cells[i].rows[pi] = SubjectRow{
				Subject:     sub,
				Policy:      pol.Name,
				NormIPC:     norm,
				ReadLat:     s.AvgReadLatency,
				ReadLatP50:  s.ReadLatP50,
				ReadLatP95:  s.ReadLatP95,
				ReadLatP99:  s.ReadLatP99,
				BusUtil:     s.BusUtil,
				BgNormIPC:   bgNorm,
				AggBusUtil:  res.DataBusUtil,
				AggBankUtil: res.BankUtil,
				HMNormIPC:   stats.HarmonicMean([]float64{norm, bgNorm}),
			}
		}
		return nil
	})
	if err != nil {
		return TwoCoreResult{}, err
	}
	var out TwoCoreResult
	for i := range cells {
		out.Rows = append(out.Rows, cells[i].rows[:]...)
	}
	return out, nil
}

// ByPolicy returns the rows for one scheduler, in subject order.
func (t TwoCoreResult) ByPolicy(policy string) []SubjectRow {
	var out []SubjectRow
	for _, row := range t.Rows {
		if row.Policy == policy {
			out = append(out, row)
		}
	}
	return out
}

// QoSCount returns how many of the subjects meet the QoS objective
// (normalized IPC >= threshold) under the given policy. The paper uses
// 1.0 as the objective and reports FQ-VFTF meets it on 18 of 19
// workloads, with vpr at 0.94.
func (t TwoCoreResult) QoSCount(policy string, threshold float64) (met, total int) {
	for _, row := range t.ByPolicy(policy) {
		total++
		if row.NormIPC >= threshold {
			met++
		}
	}
	return met, total
}

// Improvement returns the mean and maximum relative improvement of the
// harmonic-mean performance metric of policy over the baseline policy
// across subjects (Figure 7, top).
func (t TwoCoreResult) Improvement(policy, baseline string) (mean, max float64) {
	p, b := t.ByPolicy(policy), t.ByPolicy(baseline)
	if len(p) == 0 || len(p) != len(b) {
		return 0, 0
	}
	var impr []float64
	for i := range p {
		impr = append(impr, p[i].HMNormIPC/b[i].HMNormIPC-1)
	}
	return stats.Mean(impr), stats.Max(impr)
}

// MeanNormIPC returns the arithmetic mean of the subjects' normalized
// IPCs under the policy (the paper quotes .62 for FR-FCFS, .87 for
// FR-VFTF, and 1.10 for FQ-VFTF -- harmonic/arithmetic per context; we
// report both).
func (t TwoCoreResult) MeanNormIPC(policy string) (arith, harmonic float64) {
	var xs []float64
	for _, row := range t.ByPolicy(policy) {
		xs = append(xs, row.NormIPC)
	}
	return stats.Mean(xs), stats.HarmonicMean(xs)
}

// MeanAggBusUtil returns the mean aggregate data bus utilization across
// subjects under the policy (Figure 7, middle; paper: ~96% FR-FCFS, 94%
// FR-VFTF, 92% FQ-VFTF).
func (t TwoCoreResult) MeanAggBusUtil(policy string) float64 {
	var xs []float64
	for _, row := range t.ByPolicy(policy) {
		xs = append(xs, row.AggBusUtil)
	}
	return stats.Mean(xs)
}

// MeanAggBankUtil returns the mean aggregate bank utilization (Figure 7,
// bottom).
func (t TwoCoreResult) MeanAggBankUtil(policy string) float64 {
	var xs []float64
	for _, row := range t.ByPolicy(policy) {
		xs = append(xs, row.AggBankUtil)
	}
	return stats.Mean(xs)
}

// RenderFigure5 writes the subject-side table (Figure 5).
func (t TwoCoreResult) RenderFigure5(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: subject thread vs art background (2-core, phi=1/2)\n")
	fmt.Fprintf(w, "%-10s", "subject")
	for _, p := range PolicyNames() {
		fmt.Fprintf(w, " | %-8s normIPC lat  util", p)
	}
	fmt.Fprintln(w)
	subjects := subjectBenchmarks()
	for _, sub := range subjects {
		fmt.Fprintf(w, "%-10s", sub)
		for _, p := range PolicyNames() {
			for _, row := range t.Rows {
				if row.Subject == sub && row.Policy == p {
					fmt.Fprintf(w, " | %8s %7.2f %4.0f %5.3f", "", row.NormIPC, row.ReadLat, row.BusUtil)
				}
			}
		}
		fmt.Fprintln(w)
	}
	for _, p := range PolicyNames() {
		a, h := t.MeanNormIPC(p)
		met, total := t.QoSCount(p, 1.0)
		fmt.Fprintf(w, "%s: mean normIPC %.2f (harmonic %.2f), QoS met %d/%d\n", p, a, h, met, total)
	}
}

// RenderFigure6 writes the background-thread table (Figure 6).
func (t TwoCoreResult) RenderFigure6(w io.Writer) {
	fmt.Fprintf(w, "Figure 6: background (art) normalized IPC per subject workload\n")
	fmt.Fprintf(w, "%-10s", "subject")
	for _, p := range PolicyNames() {
		fmt.Fprintf(w, " %9s", p)
	}
	fmt.Fprintln(w)
	for _, sub := range subjectBenchmarks() {
		fmt.Fprintf(w, "%-10s", sub)
		for _, p := range PolicyNames() {
			for _, row := range t.Rows {
				if row.Subject == sub && row.Policy == p {
					fmt.Fprintf(w, " %9.2f", row.BgNormIPC)
				}
			}
		}
		fmt.Fprintln(w)
	}
}

// RenderFigure7 writes the aggregate table (Figure 7).
func (t TwoCoreResult) RenderFigure7(w io.Writer) {
	fmt.Fprintf(w, "Figure 7: aggregate performance and utilization (2-core)\n")
	fmt.Fprintf(w, "%-10s", "subject")
	for _, p := range PolicyNames() {
		fmt.Fprintf(w, " | %-7s HM  bus  bank", p)
	}
	fmt.Fprintln(w)
	for _, sub := range subjectBenchmarks() {
		fmt.Fprintf(w, "%-10s", sub)
		for _, p := range PolicyNames() {
			for _, row := range t.Rows {
				if row.Subject == sub && row.Policy == p {
					fmt.Fprintf(w, " | %7s%.2f %.2f %.2f", "", row.HMNormIPC, row.AggBusUtil, row.AggBankUtil)
				}
			}
		}
		fmt.Fprintln(w)
	}
	for _, p := range []string{"FR-VFTF", "FQ-VFTF"} {
		mean, max := t.Improvement(p, "FR-FCFS")
		fmt.Fprintf(w, "%s vs FR-FCFS: avg improvement %+.0f%%, best %+.0f%%\n", p, mean*100, max*100)
	}
	for _, p := range PolicyNames() {
		fmt.Fprintf(w, "%s: mean aggregate bus util %.2f, bank util %.2f\n",
			p, t.MeanAggBusUtil(p), t.MeanAggBankUtil(p))
	}
}
