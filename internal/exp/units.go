package exp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Sweep units: the arena matrix decomposes into independent,
// serializable work units — one per (mix, policy, share, channels)
// cell plus one per private solo baseline — that a single process
// executes in a parallelDo fan-out and the fabric coordinator
// (internal/fabric) ships to workers over HTTP. A unit carries only
// names and small scalars, never closures, so the same Unit value
// yields the same sim.Config (and therefore the same deterministic
// Result) in any process. ReduceArena then folds per-unit Results back
// into the ArenaResult a monolithic sweep computes, making "sharded
// equals serial" true by construction: both paths run identical unit
// configs and reduce them with identical float arithmetic.

// Unit is one serializable simulation work unit of an arena sweep.
// Policy is empty for a private solo baseline (one benchmark on a
// timing-scaled system); otherwise the unit is a co-run cell.
type Unit struct {
	// Key is the runner memo key; artifacts derive their filenames
	// from it via ArtifactStem.
	Key string `json:"key"`

	// Benches names the workload, one benchmark per core (exactly one
	// for a solo baseline).
	Benches []string `json:"benches"`

	// Policy names the scheduler for a cell unit; empty means solo.
	Policy string `json:"policy,omitempty"`

	// Share0 is thread 0's allocation for a cell unit (zero = equal).
	Share0 core.Share `json:"share0,omitempty"`

	// Channels is the memory-channel count.
	Channels int `json:"channels"`

	// Scale is the solo baseline's uniform memory-timing factor (the
	// co-runner count whose private baseline this unit is).
	Scale int `json:"scale,omitempty"`
}

// Solo reports whether the unit is a private solo baseline.
func (u Unit) Solo() bool { return u.Policy == "" }

// ArenaSoloUnit is the private baseline for one benchmark of an
// n-thread mix on the given channel count: solo occupancy of a system
// whose memory timing is uniformly scaled by n, the same baseline the
// paper's normalized figures use.
func ArenaSoloUnit(bench string, n, channels int) Unit {
	return Unit{
		Key:      fmt.Sprintf("arena/solo/%s/x%d/ch%d", bench, n, channels),
		Benches:  []string{bench},
		Channels: channels,
		Scale:    n,
	}
}

// ArenaCellUnit is one (mix, policy, share, channels) co-run cell.
func ArenaCellUnit(mix []string, policy string, share0 core.Share, channels int) Unit {
	return Unit{
		Key: fmt.Sprintf("arena/%s/%s/s%s/ch%d",
			strings.Join(mix, "+"), policy, shareLabel(share0), channels),
		Benches:  append([]string(nil), mix...),
		Policy:   policy,
		Share0:   share0,
		Channels: channels,
	}
}

// ArenaUnits enumerates a spec's work units in deterministic order:
// the deduplicated solo baselines first (cells share them), then the
// cells cell-major (mixes, then shares, then channels, then policies —
// the same order ArenaResult rows use).
func ArenaUnits(spec ArenaSpec) []Unit {
	var units []Unit
	seen := make(map[string]bool)
	for _, mix := range spec.Mixes {
		for _, ch := range spec.Channels {
			for _, b := range mix {
				u := ArenaSoloUnit(b, len(mix), ch)
				if !seen[u.Key] {
					seen[u.Key] = true
					units = append(units, u)
				}
			}
		}
	}
	for _, mix := range spec.Mixes {
		for _, s0 := range spec.Shares {
			for _, ch := range spec.Channels {
				for _, pol := range arenaPolicies {
					units = append(units, ArenaCellUnit(mix, pol, s0, ch))
				}
			}
		}
	}
	return units
}

// SimConfig materializes the unit's simulator configuration. The
// mapping is pure: equal Units yield equal configs in every process,
// which is what makes sharded execution deterministic.
func (u Unit) SimConfig() (sim.Config, error) {
	if len(u.Benches) == 0 {
		return sim.Config{}, fmt.Errorf("exp: unit %q has no benchmarks", u.Key)
	}
	if u.Solo() {
		if len(u.Benches) != 1 {
			return sim.Config{}, fmt.Errorf("exp: solo unit %q has %d benchmarks", u.Key, len(u.Benches))
		}
		if u.Scale < 1 {
			return sim.Config{}, fmt.Errorf("exp: solo unit %q has scale %d", u.Key, u.Scale)
		}
		p, err := trace.ByName(u.Benches[0])
		if err != nil {
			return sim.Config{}, err
		}
		cfg := sim.Config{Workload: []trace.Profile{p}}
		cfg.Mem.Channels = u.Channels
		cfg.Mem.DRAM = dram.DefaultConfig()
		cfg.Mem.DRAM.Timing = dram.DDR2800().Scale(u.Scale)
		return cfg, nil
	}
	factory, err := sim.PolicyByName(u.Policy)
	if err != nil {
		return sim.Config{}, err
	}
	ps := make([]trace.Profile, len(u.Benches))
	for i, b := range u.Benches {
		p, err := trace.ByName(b)
		if err != nil {
			return sim.Config{}, err
		}
		ps[i] = p
	}
	cfg := sim.Config{Workload: ps, Policy: factory, Shares: arenaShares(u.Share0, len(u.Benches))}
	cfg.Mem.Channels = u.Channels
	return cfg, nil
}

// RunUnit executes (or recalls) one unit under the runner's
// configuration — the same memoized path every figure driver uses, so
// checkpointing, resume, series artifacts, and progress accounting all
// apply.
func (r *Runner) RunUnit(u Unit) (sim.Result, error) {
	cfg, err := u.SimConfig()
	if err != nil {
		return sim.Result{}, err
	}
	return r.run(u.Key, cfg)
}

// ReduceArena folds per-unit Results into the ArenaResult a
// single-process sweep computes. get resolves a unit to its Result
// (from the runner's memo, or from artifacts a fabric merge collected);
// the reduction's float arithmetic visits threads in mix order exactly
// like the monolithic sweep, so equal inputs give bit-equal rows. intf
// (nil when attribution is off) resolves a cell's interference counts;
// the index is a single division, so serial and merged floats agree
// bit for bit.
func ReduceArena(spec ArenaSpec, get func(Unit) (sim.Result, error), intf InterferenceGetter) (ArenaResult, error) {
	out := ArenaResult{Spec: spec}
	var rows []ArenaRow
	for _, mix := range spec.Mixes {
		for _, s0 := range spec.Shares {
			for _, ch := range spec.Channels {
				for _, pol := range arenaPolicies {
					res, err := get(ArenaCellUnit(mix, pol, s0, ch))
					if err != nil {
						return out, err
					}
					row := ArenaRow{
						Policy:   pol,
						Workload: strings.Join(mix, "+"),
						Share0:   shareLabel(s0),
						Channels: ch,
						BusUtil:  res.DataBusUtil,
					}
					if len(res.Threads) != len(mix) {
						return out, fmt.Errorf("exp: cell %s has %d threads, want %d",
							row.Workload, len(res.Threads), len(mix))
					}
					minSd, maxSd := 0.0, 0.0
					for t, th := range res.Threads {
						solo, err := get(ArenaSoloUnit(mix[t], len(mix), ch))
						if err != nil {
							return out, err
						}
						alone := solo.Threads[0]
						row.SumIPC += th.IPC
						sd := alone.IPC / th.IPC
						row.WeightedSpeedup += 1 / sd
						if t == 0 || sd < minSd {
							minSd = sd
						}
						if sd > maxSd {
							maxSd = sd
						}
					}
					row.MaxSlowdown = maxSd
					row.FairnessIndex = minSd / maxSd
					if intf != nil {
						cross, total, ok := intf(ArenaCellUnit(mix, pol, s0, ch))
						row.InterferenceIndex = interferenceIndex(cross, total, ok)
					}
					rows = append(rows, row)
				}
			}
		}
	}
	markParetoFrontiers(rows)
	out.Rows = rows
	return out, nil
}

// markParetoFrontiers stars, within each contiguous len(arenaPolicies)
// cell group, the rows no other policy dominates on the
// fairness-vs-throughput plane.
func markParetoFrontiers(rows []ArenaRow) {
	for g := 0; g < len(rows); g += len(arenaPolicies) {
		group := rows[g : g+len(arenaPolicies)]
		for i := range group {
			dominated := false
			for j := range group {
				if j == i {
					continue
				}
				if group[j].WeightedSpeedup >= group[i].WeightedSpeedup &&
					group[j].FairnessIndex >= group[i].FairnessIndex &&
					(group[j].WeightedSpeedup > group[i].WeightedSpeedup ||
						group[j].FairnessIndex > group[i].FairnessIndex) {
					dominated = true
					break
				}
			}
			group[i].Pareto = !dominated
		}
	}
}

// ArtifactStem maps a memo key to the filename stem its artifacts
// (<stem>.result.json, <stem>.series.json, <stem>.fairness.csv,
// <stem>.ckpt) share, in the runner's directories and in a fabric
// merge alike.
func ArtifactStem(key string) string { return sanitizeKey(key) }

// ParseArenaSpec builds an ArenaSpec from comma-separated flag values:
// mixes like "vpr+art,swim+mcf+vpr+art" ("+" joins the benchmarks of
// one mix), shares like "eq,3-4" (thread 0's fraction, "/" also
// accepted), channels like "1,2". Empty strings keep the corresponding
// DefaultArenaSpec axis, so a single flag narrows one dimension.
func ParseArenaSpec(mixes, shares, channels string) (ArenaSpec, error) {
	spec := DefaultArenaSpec()
	if mixes != "" {
		spec.Mixes = nil
		for _, m := range strings.Split(mixes, ",") {
			mix := strings.Split(m, "+")
			for _, b := range mix {
				if _, err := trace.ByName(b); err != nil {
					return ArenaSpec{}, fmt.Errorf("exp: mix %q: %w", m, err)
				}
			}
			spec.Mixes = append(spec.Mixes, mix)
		}
	}
	if shares != "" {
		spec.Shares = nil
		for _, s := range strings.Split(shares, ",") {
			share, err := parseShare(s)
			if err != nil {
				return ArenaSpec{}, err
			}
			spec.Shares = append(spec.Shares, share)
		}
	}
	if channels != "" {
		spec.Channels = nil
		for _, c := range strings.Split(channels, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil || n < 1 {
				return ArenaSpec{}, fmt.Errorf("exp: bad channel count %q", c)
			}
			spec.Channels = append(spec.Channels, n)
		}
	}
	return spec, nil
}

// parseShare reads "eq" (the equal split) or a fraction "num-den" /
// "num/den" for thread 0's allocation.
func parseShare(s string) (core.Share, error) {
	s = strings.TrimSpace(s)
	if s == "eq" || s == "" {
		return core.Share{}, nil
	}
	sep := "-"
	if strings.Contains(s, "/") {
		sep = "/"
	}
	parts := strings.SplitN(s, sep, 2)
	if len(parts) != 2 {
		return core.Share{}, fmt.Errorf("exp: bad share %q (want \"eq\" or \"num-den\")", s)
	}
	num, err1 := strconv.Atoi(parts[0])
	den, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return core.Share{}, fmt.Errorf("exp: bad share %q (want \"eq\" or \"num-den\")", s)
	}
	share := core.Share{Num: num, Den: den}
	if !share.Valid() || num == den {
		return core.Share{}, fmt.Errorf("exp: share %q must be a proper fraction below 1", s)
	}
	return share, nil
}
