package exp

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Golden-figure regression tests: the figure numbers at QuickConfig are
// frozen into testdata/golden/quick.json. The simulator is fully
// deterministic, so any drift in these values means a behavioral change
// to the DRAM model, the schedulers, or the CPU front end — the test
// fails until the change is either fixed or deliberately blessed with
//
//	go test ./internal/exp -run TestGoldenFigures -update
//
// On mismatch the freshly computed values are written next to the
// golden file as quick.got.json so CI can upload them as an artifact
// and a reviewer can diff golden-vs-got without rerunning anything.

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files from the current simulator")

const (
	goldenFile = "testdata/golden/quick.json"

	// goldenTol is the relative tolerance for comparisons. Runs are
	// bit-deterministic, so this only needs to absorb the float64
	// round-trip through JSON (which encoding/json performs exactly);
	// it is deliberately tight so real drift cannot hide inside it.
	goldenTol = 1e-9
)

// goldenBenches are the Figure 4 solo benchmarks frozen in the golden
// file: the background hog (art), the latency-sensitive victim (vpr),
// and a light compute-bound thread (crafty).
var goldenBenches = []string{"art", "vpr", "crafty"}

// goldenSubjects are the Figure 5/6 subjects, each co-run with art
// under every policy.
var goldenSubjects = []string{"vpr", "crafty"}

// goldenFigures is the frozen snapshot of the QuickConfig figures.
type goldenFigures struct {
	// Fig4 holds solo rows (IPC, bus utilization, latency percentiles)
	// for goldenBenches on the physical system.
	Fig4 []Figure4Row `json:"fig4"`

	// Fig56 holds co-run rows (subject x policy) for goldenSubjects
	// with art, normalized against the scale-2 private baseline.
	Fig56 []SubjectRow `json:"fig56"`

	// Fairness is the paper's fairness index per policy: the harmonic
	// mean of the subjects' normalized IPCs.
	Fairness map[string]float64 `json:"fairness"`

	// CanaryIPC is the raw vpr IPC in the vpr+art FQ-VFTF co-run; the
	// timing-drift canary test perturbs tRAS and demands this moves.
	CanaryIPC float64 `json:"canary_ipc"`
}

// computeGoldenFigures runs the QuickConfig subset of Figures 4/5/6.
func computeGoldenFigures(t *testing.T) goldenFigures {
	t.Helper()
	r := NewRunner(QuickConfig())
	var g goldenFigures

	for _, b := range goldenBenches {
		tr, err := r.Solo(b, 1)
		if err != nil {
			t.Fatal(err)
		}
		g.Fig4 = append(g.Fig4, Figure4Row{
			Benchmark: b, BusUtil: tr.BusUtil, IPC: tr.IPC, ReadLat: tr.AvgReadLatency,
			ReadLatP50: tr.ReadLatP50, ReadLatP95: tr.ReadLatP95, ReadLatP99: tr.ReadLatP99,
		})
	}

	bgBase, err := r.Solo("art", 2)
	if err != nil {
		t.Fatal(err)
	}
	g.Fairness = make(map[string]float64)
	for _, pol := range PolicyNames() {
		var norms []float64
		for _, sub := range goldenSubjects {
			subBase, err := r.Solo(sub, 2)
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.CoRun([]string{sub, "art"}, pol)
			if err != nil {
				t.Fatal(err)
			}
			s, bg := res.Threads[0], res.Threads[1]
			norm := s.IPC / subBase.IPC
			bgNorm := bg.IPC / bgBase.IPC
			g.Fig56 = append(g.Fig56, SubjectRow{
				Subject: sub, Policy: pol, NormIPC: norm,
				ReadLat: s.AvgReadLatency, ReadLatP50: s.ReadLatP50,
				ReadLatP95: s.ReadLatP95, ReadLatP99: s.ReadLatP99,
				BusUtil: s.BusUtil, BgNormIPC: bgNorm,
				AggBusUtil: res.DataBusUtil, AggBankUtil: res.BankUtil,
				HMNormIPC: stats.HarmonicMean([]float64{norm, bgNorm}),
			})
			norms = append(norms, norm)
			if sub == "vpr" && pol == "FQ-VFTF" {
				g.CanaryIPC = s.IPC
			}
		}
		g.Fairness[pol] = stats.HarmonicMean(norms)
	}
	return g
}

func writeGoldenJSON(t *testing.T, path string, g goldenFigures) {
	t.Helper()
	buf, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// closeEnough reports whether got matches want within goldenTol
// (relative, falling back to absolute near zero).
func closeEnough(got, want float64) bool {
	d := math.Abs(got - want)
	return d <= goldenTol*math.Max(1, math.Max(math.Abs(got), math.Abs(want)))
}

// diffFigures returns human-readable mismatch descriptions.
func diffFigures(got, want goldenFigures) []string {
	var diffs []string
	num := func(label string, g, w float64) {
		if !closeEnough(g, w) {
			diffs = append(diffs, fmt.Sprintf("%s: got %v, golden %v", label, g, w))
		}
	}
	if len(got.Fig4) != len(want.Fig4) || len(got.Fig56) != len(want.Fig56) {
		return append(diffs, fmt.Sprintf("row counts: got fig4=%d fig56=%d, golden fig4=%d fig56=%d",
			len(got.Fig4), len(got.Fig56), len(want.Fig4), len(want.Fig56)))
	}
	for i, g := range got.Fig4 {
		w := want.Fig4[i]
		if g.Benchmark != w.Benchmark {
			diffs = append(diffs, fmt.Sprintf("fig4[%d]: benchmark %q vs %q", i, g.Benchmark, w.Benchmark))
			continue
		}
		pre := "fig4/" + g.Benchmark
		num(pre+"/ipc", g.IPC, w.IPC)
		num(pre+"/bus_util", g.BusUtil, w.BusUtil)
		num(pre+"/read_lat", g.ReadLat, w.ReadLat)
		num(pre+"/read_lat_p50", g.ReadLatP50, w.ReadLatP50)
		num(pre+"/read_lat_p95", g.ReadLatP95, w.ReadLatP95)
		num(pre+"/read_lat_p99", g.ReadLatP99, w.ReadLatP99)
	}
	for i, g := range got.Fig56 {
		w := want.Fig56[i]
		if g.Subject != w.Subject || g.Policy != w.Policy {
			diffs = append(diffs, fmt.Sprintf("fig56[%d]: row %s/%s vs %s/%s",
				i, g.Subject, g.Policy, w.Subject, w.Policy))
			continue
		}
		pre := "fig56/" + g.Subject + "/" + g.Policy
		num(pre+"/norm_ipc", g.NormIPC, w.NormIPC)
		num(pre+"/bg_norm_ipc", g.BgNormIPC, w.BgNormIPC)
		num(pre+"/hm_norm_ipc", g.HMNormIPC, w.HMNormIPC)
		num(pre+"/read_lat", g.ReadLat, w.ReadLat)
		num(pre+"/read_lat_p99", g.ReadLatP99, w.ReadLatP99)
		num(pre+"/agg_bus_util", g.AggBusUtil, w.AggBusUtil)
	}
	for _, pol := range PolicyNames() {
		num("fairness/"+pol, got.Fairness[pol], want.Fairness[pol])
	}
	num("canary_ipc", got.CanaryIPC, want.CanaryIPC)
	return diffs
}

// TestGoldenFigures compares the QuickConfig figure subset against the
// frozen golden file and enforces the paper's qualitative result: the
// fairness index ordering FQ-VFTF >= FR-VFTF >= FR-FCFS.
func TestGoldenFigures(t *testing.T) {
	got := computeGoldenFigures(t)

	// The qualitative paper result must hold regardless of the frozen
	// numbers: fair queuing beats FR-VFTF beats FR-FCFS on fairness.
	fq, frv, frf := got.Fairness["FQ-VFTF"], got.Fairness["FR-VFTF"], got.Fairness["FR-FCFS"]
	if !(fq >= frv && frv >= frf) {
		t.Errorf("fairness ordering violated: FQ-VFTF=%.4f FR-VFTF=%.4f FR-FCFS=%.4f", fq, frv, frf)
	}

	if *updateGolden {
		writeGoldenJSON(t, goldenFile, got)
		t.Logf("rewrote %s", goldenFile)
		return
	}

	buf, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	var want goldenFigures
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}

	if diffs := diffFigures(got, want); len(diffs) > 0 {
		gotPath := "testdata/golden/quick.got.json"
		writeGoldenJSON(t, gotPath, got)
		for _, d := range diffs {
			t.Error(d)
		}
		t.Errorf("figures drifted from %s (%d mismatches); wrote %s — inspect the diff, then bless with -update if intended",
			goldenFile, len(diffs), gotPath)
	} else {
		// Stale .got.json from a previous failing run should not linger
		// once the drift is resolved.
		os.Remove("testdata/golden/quick.got.json")
	}
}

// TestGoldenDetectsTimingDrift is the canary for the golden mechanism
// itself: a deliberate +2 cycle tRAS perturbation must shift the canary
// co-run IPC away from the golden value. If this test fails, the golden
// comparison has lost its teeth (e.g. the tolerance grew too loose or
// the canary stopped exercising row-cycle timing).
func TestGoldenDetectsTimingDrift(t *testing.T) {
	buf, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Skipf("no golden file yet: %v", err)
	}
	var want goldenFigures
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}

	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Workload: []trace.Profile{vpr, art}, Policy: sim.FQVFTF}
	cfg.Mem.DRAM = dram.DefaultConfig()
	cfg.Mem.DRAM.Timing.TRAS += 2 // still <= tRC, so the config validates
	qc := QuickConfig()
	res, err := sim.Run(cfg, qc.Warmup, qc.Window)
	if err != nil {
		t.Fatal(err)
	}
	if closeEnough(res.Threads[0].IPC, want.CanaryIPC) {
		t.Errorf("perturbed tRAS produced canary IPC %v within tolerance of golden %v; golden comparison would miss real timing drift",
			res.Threads[0].IPC, want.CanaryIPC)
	}
}
