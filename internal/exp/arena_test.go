package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
)

// Arena golden test: the QuickConfig arena sweep is frozen into
// testdata/golden/arena.json — row identity, the Pareto flags, and the
// fairness/throughput numbers. The simulator is deterministic, so any
// drift means a behavioral change to a scheduler; bless deliberate
// changes with
//
//	go test ./internal/exp -run TestArenaGolden -update
//
// On mismatch the fresh sweep is written as arena.got.json for diffing.

const arenaGoldenFile = "testdata/golden/arena.json"

func computeArena(t *testing.T) ArenaResult {
	t.Helper()
	res, err := NewRunner(QuickConfig()).Arena(DefaultArenaSpec())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// arenaRowID identifies a row for diff messages.
func arenaRowID(r ArenaRow) string {
	return fmt.Sprintf("%s/s%s/ch%d/%s", r.Workload, r.Share0, r.Channels, r.Policy)
}

func diffArena(got, want ArenaResult) []string {
	var diffs []string
	if len(got.Rows) != len(want.Rows) {
		return []string{fmt.Sprintf("row counts: got %d, golden %d", len(got.Rows), len(want.Rows))}
	}
	for i, g := range got.Rows {
		w := want.Rows[i]
		if arenaRowID(g) != arenaRowID(w) {
			diffs = append(diffs, fmt.Sprintf("rows[%d]: %s vs %s", i, arenaRowID(g), arenaRowID(w)))
			continue
		}
		pre := arenaRowID(g)
		num := func(label string, gv, wv float64) {
			if !closeEnough(gv, wv) {
				diffs = append(diffs, fmt.Sprintf("%s/%s: got %v, golden %v", pre, label, gv, wv))
			}
		}
		num("weighted_speedup", g.WeightedSpeedup, w.WeightedSpeedup)
		num("max_slowdown", g.MaxSlowdown, w.MaxSlowdown)
		num("fairness_index", g.FairnessIndex, w.FairnessIndex)
		num("sum_ipc", g.SumIPC, w.SumIPC)
		num("bus_util", g.BusUtil, w.BusUtil)
		if g.Pareto != w.Pareto {
			diffs = append(diffs, fmt.Sprintf("%s/pareto: got %v, golden %v", pre, g.Pareto, w.Pareto))
		}
	}
	return diffs
}

// TestArenaGolden pins the arena's policy ordering at QuickConfig. The
// qualitative lineage results hold regardless of the frozen numbers;
// the golden comparison then locks the exact frontier.
func TestArenaGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("arena sweep is slow")
	}
	got := computeArena(t)

	// Qualitative invariants, independent of the golden numbers. The
	// FQ-beats-FR-FCFS fairness claim is asserted only on the paper's
	// headline pair at equal shares: under a deliberately skewed
	// allocation FQ *enforces* unequal service (so an equality index
	// must drop), and on the four-core mix slowdown balance is not the
	// quantity FQ guarantees — those cells are pinned by the golden
	// numbers instead.
	byPolicy := func(group []ArenaRow, name string) ArenaRow {
		for _, r := range group {
			if r.Policy == name {
				return r
			}
		}
		t.Fatalf("policy %s missing from group %s", name, arenaRowID(group[0]))
		return ArenaRow{}
	}
	for g := 0; g < len(got.Rows); g += len(arenaPolicies) {
		group := got.Rows[g : g+len(arenaPolicies)]
		id := arenaRowID(group[0])
		if group[0].Workload == "vpr+art" && group[0].Share0 == "eq" {
			fq, fr := byPolicy(group, "FQ-VFTF"), byPolicy(group, "FR-FCFS")
			if fq.FairnessIndex < fr.FairnessIndex {
				t.Errorf("%s: FQ-VFTF fairness %.4f below FR-FCFS %.4f",
					id, fq.FairnessIndex, fr.FairnessIndex)
			}
		}
		pareto := 0
		for _, r := range group {
			if r.Pareto {
				pareto++
			}
			if r.FairnessIndex <= 0 || r.FairnessIndex > 1 {
				t.Errorf("%s: fairness index %v outside (0, 1]", arenaRowID(r), r.FairnessIndex)
			}
			// MaxSlowdown below 1 is legitimate (a thread sharing two
			// fast channels can beat its timing-scaled private
			// baseline); it just has to be positive and finite.
			if !(r.MaxSlowdown > 0) {
				t.Errorf("%s: max slowdown %v not positive", arenaRowID(r), r.MaxSlowdown)
			}
		}
		if pareto == 0 {
			t.Errorf("%s: empty Pareto frontier", id)
		}
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(arenaGoldenFile, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", arenaGoldenFile)
		return
	}

	buf, err := os.ReadFile(arenaGoldenFile)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	var want ArenaResult
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if diffs := diffArena(got, want); len(diffs) > 0 {
		gotPath := "testdata/golden/arena.got.json"
		if b, err := json.MarshalIndent(got, "", "  "); err == nil {
			os.WriteFile(gotPath, append(b, '\n'), 0o644)
		}
		for _, d := range diffs {
			t.Error(d)
		}
		t.Errorf("arena drifted from %s (%d mismatches); wrote %s — inspect the diff, then bless with -update if intended",
			arenaGoldenFile, len(diffs), gotPath)
	} else {
		os.Remove("testdata/golden/arena.got.json")
	}
}

// TestArenaArtifacts checks the render and CSV shapes on a minimal
// sweep so the full golden run isn't needed to validate plumbing.
func TestArenaArtifacts(t *testing.T) {
	spec := ArenaSpec{
		Mixes:    [][]string{{"vpr", "art"}},
		Shares:   []core.Share{{}},
		Channels: []int{1},
	}
	res, err := NewRunner(QuickConfig()).Arena(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(arenaPolicies) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(arenaPolicies))
	}

	var txt bytes.Buffer
	res.Render(&txt)
	for _, pol := range arenaPolicies {
		if !strings.Contains(txt.String(), pol) {
			t.Errorf("render omits policy %s", pol)
		}
	}

	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if lines[0] != "workload,share0,channels,policy,weighted_speedup,max_slowdown,fairness_index,sum_ipc,bus_util,interference_index,pareto" {
		t.Errorf("csv header %q", lines[0])
	}
	if want := 1 + len(arenaPolicies); len(lines) != want {
		t.Errorf("csv has %d lines, want %d", len(lines), want)
	}
}
