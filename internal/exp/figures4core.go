package exp

import (
	"fmt"
	"io"

	"repro/internal/stats"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------

// ThreadOutcome is one thread of one four-core workload under one
// scheduler.
type ThreadOutcome struct {
	Benchmark string
	// NormIPC is normalized to the benchmark alone on a private memory
	// system time scaled by 4.
	NormIPC float64
	BusUtil float64
	ReadLat float64
}

// WorkloadOutcome is one four-core workload under one scheduler.
type WorkloadOutcome struct {
	Workload []string
	Policy   string
	Threads  []ThreadOutcome
	// HMNormIPC is the harmonic mean of the threads' normalized IPCs.
	HMNormIPC   float64
	AggBusUtil  float64
	AggBankUtil float64
}

// Figure8Result reproduces Figure 8: the four heterogeneous 4-core
// workloads (every fourth benchmark of the top sixteen) under each
// scheduler.
type Figure8Result struct {
	Outcomes []WorkloadOutcome // workload-major, policy-minor
}

// Figure8 runs the Figure 8 experiment.
func (r *Runner) Figure8() (Figure8Result, error) {
	wls := trace.FourCoreWorkloads()
	out := Figure8Result{Outcomes: make([]WorkloadOutcome, len(wls)*len(policies))}
	err := r.parallelDo(len(wls)*len(policies), func(k int) error {
		wi, pi := k/len(policies), k%len(policies)
		wl, pol := wls[wi], policies[pi]
		res, err := r.CoRun(wl, pol.Name)
		if err != nil {
			return err
		}
		o := WorkloadOutcome{
			Workload:    wl,
			Policy:      pol.Name,
			AggBusUtil:  res.DataBusUtil,
			AggBankUtil: res.BankUtil,
		}
		var norms []float64
		for ti, bench := range wl {
			base, err := r.Solo(bench, 4)
			if err != nil {
				return err
			}
			t := res.Threads[ti]
			norm := t.IPC / base.IPC
			norms = append(norms, norm)
			o.Threads = append(o.Threads, ThreadOutcome{
				Benchmark: bench, NormIPC: norm, BusUtil: t.BusUtil, ReadLat: t.AvgReadLatency,
			})
		}
		o.HMNormIPC = stats.HarmonicMean(norms)
		out.Outcomes[k] = o
		return nil
	})
	return out, err
}

// ByPolicy returns the outcomes for one scheduler, in workload order.
func (f Figure8Result) ByPolicy(policy string) []WorkloadOutcome {
	var out []WorkloadOutcome
	for _, o := range f.Outcomes {
		if o.Policy == policy {
			out = append(out, o)
		}
	}
	return out
}

// Improvements returns the per-workload relative improvement of the
// harmonic-mean metric of policy over baseline, plus mean and max
// (paper: 41%, -2%, -2%, 14% per workload; average 14%, up to 41%).
func (f Figure8Result) Improvements(policy, baseline string) (per []float64, mean, max float64) {
	p, b := f.ByPolicy(policy), f.ByPolicy(baseline)
	for i := range p {
		per = append(per, p[i].HMNormIPC/b[i].HMNormIPC-1)
	}
	return per, stats.Mean(per), stats.Max(per)
}

// QoSCount counts threads meeting normalized IPC >= threshold under the
// policy (paper: FQ-VFTF provides QoS to all threads in all workloads).
func (f Figure8Result) QoSCount(policy string, threshold float64) (met, total int) {
	for _, o := range f.ByPolicy(policy) {
		for _, t := range o.Threads {
			total++
			if t.NormIPC >= threshold {
				met++
			}
		}
	}
	return met, total
}

// Render writes the figure as a text table.
func (f Figure8Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 8: four-core workloads (phi=1/4 each), normalized IPC and bus utilization\n")
	for wi, o := range f.ByPolicy("FR-FCFS") {
		fmt.Fprintf(w, "workload %d: %v\n", wi+1, o.Workload)
		for _, p := range PolicyNames() {
			oo := f.ByPolicy(p)[wi]
			fmt.Fprintf(w, "  %-8s HM=%.2f bus=%.2f bank=%.2f |", p, oo.HMNormIPC, oo.AggBusUtil, oo.AggBankUtil)
			for _, t := range oo.Threads {
				fmt.Fprintf(w, " %s %.2f/%.2f", t.Benchmark, t.NormIPC, t.BusUtil)
			}
			fmt.Fprintln(w)
		}
	}
	for _, p := range []string{"FR-VFTF", "FQ-VFTF"} {
		per, mean, max := f.Improvements(p, "FR-FCFS")
		fmt.Fprintf(w, "%s vs FR-FCFS per workload: ", p)
		for _, x := range per {
			fmt.Fprintf(w, "%+.0f%% ", x*100)
		}
		fmt.Fprintf(w, "(avg %+.0f%%, best %+.0f%%)\n", mean*100, max*100)
	}
}

// ---------------------------------------------------------------------
// Figure 9
// ---------------------------------------------------------------------

// ScatterPoint is one thread of one 4-core workload in Figure 9's
// normalized-latency versus normalized-bus-utilization scatter.
type ScatterPoint struct {
	Benchmark string
	Policy    string

	// NormLatency is the thread's read latency normalized to the same
	// benchmark running alone on the (unscaled) system.
	NormLatency float64

	// NormBusUtil is the thread's data bus utilization normalized to
	// its target bus utilization.
	NormBusUtil float64

	// TargetUtil is min(solo utilization, share + fair share of excess).
	TargetUtil float64
}

// Figure9Result reproduces Figure 9: normalized latency versus
// normalized (target) data bus utilization for all threads of the 4-core
// workloads, and the variance statistic the paper headlines
// (FR-FCFS 0.20 -> FQ-VFTF 0.0058).
type Figure9Result struct {
	Points []ScatterPoint
}

// Figure9 derives the scatter from the Figure 8 runs plus the Figure 4
// solo data.
func (r *Runner) Figure9(f8 Figure8Result) (Figure9Result, error) {
	var out Figure9Result
	for _, o := range f8.Outcomes {
		if o.Policy == "FR-VFTF" {
			continue // the paper plots FR-FCFS and FQ-VFTF
		}
		// Solo utilizations of the workload's threads (Figure 4 data).
		solo := make([]float64, len(o.Workload))
		soloLat := make([]float64, len(o.Workload))
		for i, bench := range o.Workload {
			tr, err := r.Solo(bench, 1)
			if err != nil {
				return out, err
			}
			solo[i] = tr.BusUtil
			soloLat[i] = tr.AvgReadLatency
		}
		targets := TargetUtilizations(solo, 1.0)
		for i, t := range o.Threads {
			p := ScatterPoint{
				Benchmark:  t.Benchmark,
				Policy:     o.Policy,
				TargetUtil: targets[i],
			}
			if soloLat[i] > 0 {
				p.NormLatency = t.ReadLat / soloLat[i]
			}
			if targets[i] > 0 {
				p.NormBusUtil = t.BusUtil / targets[i]
			}
			out.Points = append(out.Points, p)
		}
	}
	return out, nil
}

// TargetUtilizations implements the paper's target data bus utilization:
// each of n threads is allocated an equal share of the capacity; excess
// service is added in equal portions to threads that still demand more
// (below their solo utilization) until all excess is allocated or no
// thread demands more. The result for thread i is
// min(solo_i, share + fair-share-of-excess).
func TargetUtilizations(solo []float64, capacity float64) []float64 {
	n := len(solo)
	if n == 0 {
		return nil
	}
	targets := make([]float64, n)
	share := capacity / float64(n)
	for i := range targets {
		targets[i] = share
		if solo[i] < share {
			targets[i] = solo[i]
		}
	}
	// Iteratively redistribute unused allocation to threads that still
	// demand more.
	for iter := 0; iter < 64; iter++ {
		var excess float64
		var wanting []int
		used := 0.0
		for i := range targets {
			used += targets[i]
		}
		excess = capacity - used
		for i := range targets {
			if solo[i] > targets[i]+1e-12 {
				wanting = append(wanting, i)
			}
		}
		if excess <= 1e-12 || len(wanting) == 0 {
			break
		}
		per := excess / float64(len(wanting))
		for _, i := range wanting {
			add := per
			if targets[i]+add > solo[i] {
				add = solo[i] - targets[i]
			}
			targets[i] += add
		}
	}
	return targets
}

// Variance returns the variance of normalized bus utilization across
// the policy's points (the paper's headline fairness metric).
func (f Figure9Result) Variance(policy string) float64 {
	var xs []float64
	for _, p := range f.Points {
		if p.Policy == policy {
			xs = append(xs, p.NormBusUtil)
		}
	}
	return stats.Variance(xs)
}

// MeanNormUtil returns the mean normalized bus utilization (the paper
// reports .88 for both policies) and its min/max range.
func (f Figure9Result) MeanNormUtil(policy string) (mean, min, max float64) {
	var xs []float64
	for _, p := range f.Points {
		if p.Policy == policy {
			xs = append(xs, p.NormBusUtil)
		}
	}
	return stats.Mean(xs), stats.Min(xs), stats.Max(xs)
}

// Render writes the scatter and summary statistics.
func (f Figure9Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 9: normalized latency vs normalized target bus utilization (4-core threads)\n")
	fmt.Fprintf(w, "%-10s %-8s %8s %8s %8s\n", "benchmark", "policy", "normLat", "normUtil", "target")
	for _, p := range f.Points {
		fmt.Fprintf(w, "%-10s %-8s %8.2f %8.2f %8.3f\n", p.Benchmark, p.Policy, p.NormLatency, p.NormBusUtil, p.TargetUtil)
	}
	for _, pol := range []string{"FR-FCFS", "FQ-VFTF"} {
		mean, min, max := f.MeanNormUtil(pol)
		fmt.Fprintf(w, "%s: mean normalized util %.2f, range [%.2f, %.2f], variance %.4f\n",
			pol, mean, min, max, f.Variance(pol))
	}
}
