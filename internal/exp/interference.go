package exp

import (
	"encoding/json"
	"os"
	"path/filepath"

	"repro/internal/memctrl"
)

// Interference artifacts: with Config.Interference every run leaves a
// <key>.interference.json snapshot of its who-delayed-whom matrix over
// the measurement window, and the arena reduction folds each cell's
// matrix into a single interference_index column — the fraction of all
// attributed wait cycles charged to a *different* thread. The snapshot
// is integers end to end; the index is computed by one float division
// in the shared reducer, so a sweepd-merged arena is byte-identical to
// a serial one.

// InterferenceDoc is the schema of a <key>.interference.json artifact.
type InterferenceDoc struct {
	Key          string                       `json:"key"`
	Policy       string                       `json:"policy"`
	Interference memctrl.InterferenceSnapshot `json:"interference"`
}

// InterferenceGetter resolves an arena cell unit to its attributed
// (cross, total) cycle counts. ok=false means the unit has no matrix
// (attribution off), which renders as interference_index 0.
type InterferenceGetter func(u Unit) (cross, total int64, ok bool)

// interferenceIndex is the shared division both the serial sweep and
// the fabric merge use: Cross/Total, 0 for an empty or absent matrix.
func interferenceIndex(cross, total int64, ok bool) float64 {
	if !ok || total == 0 {
		return 0
	}
	return float64(cross) / float64(total)
}

// interferenceDir is where the runner persists interference artifacts:
// next to the result artifacts when checkpointing (so resumed sweeps
// recall the matrix with the result), else with the series artifacts.
func (r *Runner) interferenceDir() string {
	if r.cfg.CheckpointDir != "" {
		return r.cfg.CheckpointDir
	}
	return r.cfg.SeriesDir
}

func (r *Runner) interferencePath(key string) string {
	return filepath.Join(r.interferenceDir(), sanitizeKey(key)+".interference.json")
}

// saveInterference persists one run's attribution snapshot (a no-op
// without an artifact directory; the in-memory memo still feeds the
// arena reduction).
func (r *Runner) saveInterference(key string, doc InterferenceDoc) error {
	dir := r.interferenceDir()
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	path := r.interferencePath(key)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadInterference recalls a persisted attribution snapshot, mirroring
// loadResult's resume contract.
func (r *Runner) loadInterference(key string) (InterferenceDoc, bool) {
	if r.cfg.CheckpointDir == "" || !r.cfg.Resume {
		return InterferenceDoc{}, false
	}
	b, err := os.ReadFile(r.interferencePath(key))
	if err != nil {
		return InterferenceDoc{}, false
	}
	var doc InterferenceDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return InterferenceDoc{}, false
	}
	return doc, true
}

// UnitInterference resolves a unit's attributed (cross, total) counts
// from the runner's memo — the InterferenceGetter a serial arena sweep
// reduces through.
func (r *Runner) UnitInterference(u Unit) (int64, int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	doc, ok := r.intfMemo[u.Key]
	if !ok {
		return 0, 0, false
	}
	return doc.Interference.Cross, doc.Interference.Total, true
}
