package exp

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestSweepKillAndResume is the crash-resilience acceptance test: a
// sweep killed mid-run (via the stopAfterCheckpoints hook) and resumed
// with Resume must produce exactly what an uninterrupted sweep
// produces — the same Result and byte-identical series/CSV artifacts.
func TestSweepKillAndResume(t *testing.T) {
	const benchA, benchB = "art", "vpr"
	base := Config{
		Warmup:         20_000,
		Window:         60_000,
		Seed:           3,
		SampleInterval: 10_000,
	}

	// Uninterrupted reference sweep.
	refSeries := t.TempDir()
	refCfg := base
	refCfg.SeriesDir = refSeries
	ref := NewRunner(refCfg)
	want, err := ref.CoRun([]string{benchA, benchB}, "FQ-VFTF")
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted sweep: dies after the second checkpoint.
	ckptDir := t.TempDir()
	gotSeries := t.TempDir()
	killedCfg := base
	killedCfg.SeriesDir = gotSeries
	killedCfg.CheckpointDir = ckptDir
	killedCfg.CheckpointEvery = 25_000
	killed := NewRunner(killedCfg)
	killed.stopAfterCheckpoints = 2
	if _, err := killed.CoRun([]string{benchA, benchB}, "FQ-VFTF"); !errors.Is(err, errStopped) {
		t.Fatalf("killed sweep: got error %v, want errStopped", err)
	}
	ckpts, err := filepath.Glob(filepath.Join(ckptDir, "*.ckpt"))
	if err != nil || len(ckpts) != 1 {
		t.Fatalf("killed sweep left %d checkpoints (err %v), want 1", len(ckpts), err)
	}

	// Resumed sweep in a "fresh process" (a fresh Runner).
	resumedCfg := killedCfg
	resumedCfg.Resume = true
	resumed := NewRunner(resumedCfg)
	got, err := resumed.CoRun([]string{benchA, benchB}, "FQ-VFTF")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed Result diverged\n got: %+v\nwant: %+v", got, want)
	}
	// The resumed run simulated only the remainder, not the whole run.
	if c := resumed.SimulatedCycles(); c >= base.Warmup+base.Window {
		t.Errorf("resumed sweep simulated %d cycles; expected less than the full %d", c, base.Warmup+base.Window)
	}
	// Completion retires the checkpoint and persists the result.
	if left, _ := filepath.Glob(filepath.Join(ckptDir, "*.ckpt")); len(left) != 0 {
		t.Errorf("completed run left checkpoints behind: %v", left)
	}
	if res, _ := filepath.Glob(filepath.Join(ckptDir, "*.result.json")); len(res) != 1 {
		t.Errorf("completed run persisted %d results, want 1", len(res))
	}

	// The artifacts must match the uninterrupted sweep byte for byte.
	refFiles, err := filepath.Glob(filepath.Join(refSeries, "*"))
	if err != nil || len(refFiles) == 0 {
		t.Fatalf("reference sweep wrote no artifacts (err %v)", err)
	}
	for _, rf := range refFiles {
		name := filepath.Base(rf)
		wantB, err := os.ReadFile(rf)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := os.ReadFile(filepath.Join(gotSeries, name))
		if err != nil {
			t.Fatalf("resumed sweep missing artifact %s: %v", name, err)
		}
		if string(gotB) != string(wantB) {
			i := 0
			for i < len(gotB) && i < len(wantB) && gotB[i] == wantB[i] {
				i++
			}
			t.Errorf("artifact %s differs at byte %d", name, i)
		}
	}

	// A second resumed sweep recalls the persisted result without
	// simulating anything.
	again := NewRunner(resumedCfg)
	res2, err := again.CoRun([]string{benchA, benchB}, "FQ-VFTF")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2, want) {
		t.Error("recalled persisted result diverged")
	}
	if c := again.SimulatedCycles(); c != 0 {
		t.Errorf("recall simulated %d cycles, want 0", c)
	}
}

// TestCheckpointSweepUninterrupted: checkpointing on but never killed —
// results must match a plain sweep and the run must not leave
// checkpoints behind.
func TestCheckpointSweepUninterrupted(t *testing.T) {
	base := Config{Warmup: 10_000, Window: 30_000, Seed: 9}

	plain := NewRunner(base)
	want, err := plain.CoRun([]string{"art", "vpr"}, "FR-VFTF")
	if err != nil {
		t.Fatal(err)
	}

	ckptDir := t.TempDir()
	cfg := base
	cfg.CheckpointDir = ckptDir
	cfg.CheckpointEvery = 7_000
	ck := NewRunner(cfg)
	got, err := ck.CoRun([]string{"art", "vpr"}, "FR-VFTF")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("checkpointing changed the result\n got: %+v\nwant: %+v", got, want)
	}
	if left, _ := filepath.Glob(filepath.Join(ckptDir, "*.ckpt")); len(left) != 0 {
		t.Errorf("uninterrupted run left checkpoints: %v", left)
	}
}
