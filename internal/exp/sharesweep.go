package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ShareSweepRow is one allocation point of the share sweep.
type ShareSweepRow struct {
	Share0 core.Share // thread 0's allocation (thread 1 gets the rest)

	// Util0 and Util1 are the measured bandwidth fractions.
	Util0, Util1 float64

	// AllocRatio and UtilRatio compare the allocated and delivered
	// bandwidth ratios; proportional service means they track until a
	// thread becomes demand- or MSHR-limited.
	AllocRatio, UtilRatio float64
}

// ShareSweepResult is the QoS-objective validation experiment (an
// extension beyond the paper's figures): two identical copies of the
// most bandwidth-hungry benchmark compete under FQ-VFTF while thread
// 0's allocation sweeps from 1/8 to 7/8. Proportional bandwidth
// delivery is the operational meaning of the paper's virtual time
// framework.
type ShareSweepResult struct {
	Benchmark string
	Rows      []ShareSweepRow
}

// ShareSweep runs the sweep with the given benchmark (empty = art).
func (r *Runner) ShareSweep(bench string) (ShareSweepResult, error) {
	if bench == "" {
		bench = "art"
	}
	p, err := trace.ByName(bench)
	if err != nil {
		return ShareSweepResult{}, err
	}
	out := ShareSweepResult{Benchmark: bench}
	splits := []core.Share{
		{Num: 1, Den: 8}, {Num: 1, Den: 4}, {Num: 3, Den: 8}, {Num: 1, Den: 2},
		{Num: 5, Den: 8}, {Num: 3, Den: 4}, {Num: 7, Den: 8},
	}
	rows := make([]ShareSweepRow, len(splits))
	err = r.parallelDo(len(splits), func(i int) error {
		s0 := splits[i]
		s1 := core.Share{Num: s0.Den - s0.Num, Den: s0.Den}
		key := fmt.Sprintf("sweep/%s/%v", bench, s0)
		res, err := r.run(key, sim.Config{
			Workload: []trace.Profile{p, p},
			Shares:   []core.Share{s0, s1},
			Policy:   sim.FQVFTF,
		})
		if err != nil {
			return err
		}
		row := ShareSweepRow{
			Share0:     s0,
			Util0:      res.Threads[0].BusUtil,
			Util1:      res.Threads[1].BusUtil,
			AllocRatio: float64(s0.Num) / float64(s0.Den-s0.Num),
		}
		if row.Util1 > 0 {
			row.UtilRatio = row.Util0 / row.Util1
		}
		rows[i] = row
		return nil
	})
	out.Rows = rows
	return out, err
}

// Render writes the sweep as a text table.
func (s ShareSweepResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Share sweep (extension): two %s threads under FQ-VFTF\n", s.Benchmark)
	fmt.Fprintf(w, "%-10s %8s %8s %12s %12s\n", "share0", "util0", "util1", "allocRatio", "utilRatio")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-10s %8.3f %8.3f %12.2f %12.2f\n",
			r.Share0, r.Util0, r.Util1, r.AllocRatio, r.UtilRatio)
	}
	fmt.Fprintf(w, "(delivered ratio tracks allocation until the big-share thread\n")
	fmt.Fprintf(w, " saturates its own MSHR-limited demand; leftover bandwidth is\n")
	fmt.Fprintf(w, " redistributed -- the scheduler is work conserving.)\n")
}

// Monotone reports whether the delivered utilization of thread 0 is
// non-decreasing in its allocation, within a small tolerance for
// work-conservation noise at low allocations (when thread 0's share is
// tiny, most of its bandwidth is redistributed excess, which does not
// scale with the allocation).
func (s ShareSweepResult) Monotone() bool {
	const eps = 0.06
	for i := 1; i < len(s.Rows); i++ {
		if s.Rows[i].Util0+eps < s.Rows[i-1].Util0 {
			return false
		}
	}
	return true
}

// makeShare is a test convenience constructor.
func makeShare(num, den int) core.Share { return core.Share{Num: num, Den: den} }
