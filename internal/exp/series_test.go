package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestSeriesExport runs one co-run through a sampling runner with a
// series directory and checks the artifacts and, critically, that
// enabling sampling leaves the figure-facing Result bit-identical to a
// plain runner's.
func TestSeriesExport(t *testing.T) {
	dir := t.TempDir()

	plain := NewRunner(QuickConfig())
	want, err := plain.CoRun([]string{"art", "vpr"}, "FQ-VFTF")
	if err != nil {
		t.Fatal(err)
	}

	cfg := QuickConfig()
	cfg.SampleInterval = 10_000
	cfg.SeriesDir = dir
	sampled := NewRunner(cfg)
	got, err := sampled.CoRun([]string{"art", "vpr"}, "FQ-VFTF")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("sampling changed the Result:\n off: %+v\n on:  %+v", want, got)
	}

	stem := filepath.Join(dir, "co_art+vpr_FQ-VFTF")
	raw, err := os.ReadFile(stem + ".series.json")
	if err != nil {
		t.Fatalf("series artifact missing: %v", err)
	}
	var doc seriesDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("series JSON invalid: %v", err)
	}
	qc := QuickConfig()
	wantEpochs := int((qc.Warmup+qc.Window)/cfg.SampleInterval) + 1
	if doc.Key != "co/art+vpr/FQ-VFTF" || doc.Interval != cfg.SampleInterval || len(doc.Samples) != wantEpochs {
		t.Errorf("series doc key=%q interval=%d samples=%d, want co/art+vpr/FQ-VFTF %d %d",
			doc.Key, doc.Interval, len(doc.Samples), cfg.SampleInterval, wantEpochs)
	}
	if doc.Policy != "FQ-VFTF" {
		t.Errorf("series doc policy %q, want FQ-VFTF", doc.Policy)
	}
	if len(doc.Fairness.Samples) != wantEpochs || doc.Fairness.Summary.Threads != 2 {
		t.Errorf("fairness series %d samples / %d threads, want %d / 2",
			len(doc.Fairness.Samples), doc.Fairness.Summary.Threads, wantEpochs)
	}

	csvRaw, err := os.ReadFile(stem + ".fairness.csv")
	if err != nil {
		t.Fatalf("fairness csv missing: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(csvRaw)), "\n")
	if lines[0] != "policy,epoch,cycle,thread,service,share,phi,excess,backlogged,cum_shortfall,top_aggressor,stolen_cycles" {
		t.Errorf("fairness csv header %q", lines[0])
	}
	if want := 1 + wantEpochs*2; len(lines) != want {
		t.Errorf("fairness csv has %d lines, want %d", len(lines), want)
	}
	for i, line := range lines[1:] {
		if !strings.HasPrefix(line, "FQ-VFTF,") {
			t.Errorf("fairness csv row %d missing policy label: %q", i+1, line)
			break
		}
	}
}

func TestSanitizeKey(t *testing.T) {
	cases := map[string]string{
		"co/art+vpr/FQ-VFTF": "co_art+vpr_FQ-VFTF",
		"solo/mcf/x4":        "solo_mcf_x4",
		"weird key\\here":    "weird_key_here",
	}
	for in, want := range cases {
		if got := sanitizeKey(in); got != want {
			t.Errorf("sanitizeKey(%q) = %q, want %q", in, got, want)
		}
	}
}
