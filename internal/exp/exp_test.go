package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestTargetUtilizationsWaterfill(t *testing.T) {
	cases := []struct {
		name string
		solo []float64
		want []float64
	}{
		{
			// Everyone demands more than 1/4: equal split, no excess.
			name: "saturated",
			solo: []float64{0.9, 0.6, 0.4, 0.3},
			want: []float64{0.25, 0.25, 0.25, 0.25},
		},
		{
			// One light thread frees 0.15; split three ways.
			name: "one light",
			solo: []float64{0.9, 0.6, 0.4, 0.10},
			want: []float64{0.30, 0.30, 0.30, 0.10},
		},
		{
			// Two light threads; excess tops the others up equally.
			name: "two light",
			solo: []float64{0.9, 0.6, 0.05, 0.05},
			want: []float64{0.45, 0.45, 0.05, 0.05},
		},
		{
			// Redistribution must cascade: the third thread saturates at
			// its solo demand, so its leftover goes to the first two.
			name: "cascade",
			solo: []float64{0.9, 0.9, 0.30, 0.02},
			// share 0.25 each; thread 3 leaves 0.23, split 3 ways =
			// +0.0767 -> thread 2 caps at 0.30 (uses 0.05 of 0.0767),
			// leftover cascades to threads 0 and 1: 0.25 + (0.48-0.30-0.02)/2... =>
			// final: t0 = t1 = (1 - 0.30 - 0.02)/2 = 0.34.
			want: []float64{0.34, 0.34, 0.30, 0.02},
		},
		{
			// Total demand below capacity: everyone gets their solo.
			name: "undersubscribed",
			solo: []float64{0.1, 0.1, 0.1, 0.1},
			want: []float64{0.1, 0.1, 0.1, 0.1},
		},
	}
	for _, c := range cases {
		got := TargetUtilizations(c.solo, 1.0)
		for i := range c.want {
			if !almost(got[i], c.want[i], 1e-6) {
				t.Errorf("%s: target[%d] = %v, want %v (all: %v)", c.name, i, got[i], c.want[i], got)
				break
			}
		}
	}
	if TargetUtilizations(nil, 1) != nil {
		t.Error("empty input")
	}
}

func TestTargetUtilizationsInvariants(t *testing.T) {
	solos := [][]float64{
		{0.5, 0.5, 0.5, 0.5},
		{1, 0, 0.2, 0.7},
		{0.33, 0.12, 0.9, 0.01},
	}
	for _, solo := range solos {
		got := TargetUtilizations(solo, 1.0)
		var sum float64
		for i := range got {
			if got[i] > solo[i]+1e-9 {
				t.Errorf("target %v exceeds solo %v", got[i], solo[i])
			}
			sum += got[i]
		}
		if sum > 1+1e-9 {
			t.Errorf("targets %v oversubscribe capacity", got)
		}
	}
}

func makeTwoCore() TwoCoreResult {
	return TwoCoreResult{Rows: []SubjectRow{
		{Subject: "a", Policy: "FR-FCFS", NormIPC: 0.5, BgNormIPC: 1.5, HMNormIPC: 0.75, AggBusUtil: 0.9, AggBankUtil: 0.4},
		{Subject: "a", Policy: "FQ-VFTF", NormIPC: 1.0, BgNormIPC: 1.0, HMNormIPC: 1.0, AggBusUtil: 0.85, AggBankUtil: 0.45},
		{Subject: "b", Policy: "FR-FCFS", NormIPC: 0.8, BgNormIPC: 1.2, HMNormIPC: 0.96, AggBusUtil: 0.8, AggBankUtil: 0.35},
		{Subject: "b", Policy: "FQ-VFTF", NormIPC: 1.2, BgNormIPC: 1.2, HMNormIPC: 1.2, AggBusUtil: 0.8, AggBankUtil: 0.4},
	}}
}

func TestTwoCoreDerivedStats(t *testing.T) {
	tc := makeTwoCore()
	if got := tc.ByPolicy("FQ-VFTF"); len(got) != 2 || got[0].Subject != "a" {
		t.Fatalf("ByPolicy = %+v", got)
	}
	met, total := tc.QoSCount("FQ-VFTF", 0.95)
	if met != 2 || total != 2 {
		t.Errorf("QoS = %d/%d", met, total)
	}
	met, _ = tc.QoSCount("FR-FCFS", 0.95)
	if met != 0 {
		t.Errorf("FR-FCFS QoS met = %d", met)
	}
	mean, max := tc.Improvement("FQ-VFTF", "FR-FCFS")
	// a: 1.0/0.75 - 1 = 1/3; b: 1.2/0.96 - 1 = 0.25; mean = 0.2917.
	if !almost(mean, (1.0/0.75+1.2/0.96)/2-1, 1e-9) {
		t.Errorf("mean improvement = %v", mean)
	}
	if !almost(max, 1.0/0.75-1, 1e-9) {
		t.Errorf("max improvement = %v", max)
	}
	arith, harm := tc.MeanNormIPC("FR-FCFS")
	if !almost(arith, 0.65, 1e-9) || harm >= arith {
		t.Errorf("means = %v, %v", arith, harm)
	}
	if !almost(tc.MeanAggBusUtil("FR-FCFS"), 0.85, 1e-9) {
		t.Errorf("agg bus = %v", tc.MeanAggBusUtil("FR-FCFS"))
	}
	if !almost(tc.MeanAggBankUtil("FQ-VFTF"), 0.425, 1e-9) {
		t.Errorf("agg bank = %v", tc.MeanAggBankUtil("FQ-VFTF"))
	}
}

func TestFigure8DerivedStats(t *testing.T) {
	f8 := Figure8Result{Outcomes: []WorkloadOutcome{
		{Workload: []string{"x", "y"}, Policy: "FR-FCFS", HMNormIPC: 1.0,
			Threads: []ThreadOutcome{{Benchmark: "x", NormIPC: 0.8}, {Benchmark: "y", NormIPC: 1.4}}},
		{Workload: []string{"x", "y"}, Policy: "FQ-VFTF", HMNormIPC: 1.2,
			Threads: []ThreadOutcome{{Benchmark: "x", NormIPC: 1.1}, {Benchmark: "y", NormIPC: 1.3}}},
	}}
	per, mean, max := f8.Improvements("FQ-VFTF", "FR-FCFS")
	if len(per) != 1 || !almost(per[0], 0.2, 1e-9) || !almost(mean, 0.2, 1e-9) || !almost(max, 0.2, 1e-9) {
		t.Errorf("improvements = %v %v %v", per, mean, max)
	}
	met, total := f8.QoSCount("FQ-VFTF", 0.95)
	if met != 2 || total != 2 {
		t.Errorf("QoS = %d/%d", met, total)
	}
	met, _ = f8.QoSCount("FR-FCFS", 0.95)
	if met != 1 {
		t.Errorf("FR-FCFS QoS met = %d", met)
	}
}

func TestFigure9Stats(t *testing.T) {
	f9 := Figure9Result{Points: []ScatterPoint{
		{Policy: "FR-FCFS", NormBusUtil: 0.3},
		{Policy: "FR-FCFS", NormBusUtil: 1.7},
		{Policy: "FQ-VFTF", NormBusUtil: 0.9},
		{Policy: "FQ-VFTF", NormBusUtil: 0.95},
	}}
	if v := f9.Variance("FR-FCFS"); !almost(v, 0.49, 1e-9) {
		t.Errorf("FR-FCFS variance = %v", v)
	}
	if v := f9.Variance("FQ-VFTF"); v > 0.001 {
		t.Errorf("FQ-VFTF variance = %v", v)
	}
	mean, min, max := f9.MeanNormUtil("FQ-VFTF")
	if !almost(mean, 0.925, 1e-9) || min != 0.9 || max != 0.95 {
		t.Errorf("mean/min/max = %v %v %v", mean, min, max)
	}
}

func TestRunnerMemoization(t *testing.T) {
	r := NewRunner(QuickConfig())
	if _, err := r.Solo("crafty", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Solo("crafty", 1); err != nil {
		t.Fatal(err)
	}
	keys := r.sortedKeys()
	if len(keys) != 1 || keys[0] != "solo/crafty/x1" {
		t.Errorf("memo keys = %v", keys)
	}
	if _, err := r.Solo("nonesuch", 1); err == nil {
		t.Error("accepted unknown benchmark")
	}
	if _, err := r.CoRun([]string{"vpr", "art"}, "nonesuch"); err == nil {
		t.Error("accepted unknown policy")
	}
}

func TestFigure1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	r := NewRunner(QuickConfig())
	f1, err := r.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Rows) != 3 {
		t.Fatalf("rows = %d", len(f1.Rows))
	}
	alone, crafty, art := f1.Rows[0], f1.Rows[1], f1.Rows[2]
	// The paper's Figure 1 shape: crafty leaves vpr essentially
	// untouched; art devastates it.
	if crafty.RelIPC < 0.9 {
		t.Errorf("crafty co-schedule dropped vpr to %.2f of solo", crafty.RelIPC)
	}
	if art.RelIPC > 0.55 {
		t.Errorf("art co-schedule left vpr at %.2f of solo; expected < 0.55", art.RelIPC)
	}
	if art.ReadLat < 2*alone.ReadLat {
		t.Errorf("art did not inflate vpr's latency: %v vs %v", art.ReadLat, alone.ReadLat)
	}
	var buf bytes.Buffer
	f1.Render(&buf)
	if !strings.Contains(buf.String(), "with art") {
		t.Error("render missing rows")
	}
}

func TestHeadlineRender(t *testing.T) {
	h := Headline{
		TwoCoreQoSMet: 18, TwoCoreQoSTotal: 19,
		TwoCoreWorstNormIPC:   0.94,
		TwoCoreAvgImprovement: 0.31, TwoCoreMaxImprovement: 0.76,
		TwoCoreFQBusUtil: 0.92,
		FourCoreQoSMet:   16, FourCoreQoSTotal: 16,
		FourCoreAvgImprovement: 0.14, FourCoreMaxImprovement: 0.41,
		VarianceFRFCFS: 0.2, VarianceFQVFTF: 0.0058,
	}
	var buf bytes.Buffer
	h.Render(&buf)
	out := buf.String()
	for _, want := range []string{"18/19", "+31%", "+76%", "16/16", "0.0058"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	names := PolicyNames()
	if len(names) != 3 || names[0] != "FR-FCFS" || names[2] != "FQ-VFTF" {
		t.Errorf("names = %v", names)
	}
}

func TestSubjectBenchmarksExcludeArt(t *testing.T) {
	subs := subjectBenchmarks()
	if len(subs) != 19 {
		t.Fatalf("%d subjects, want 19", len(subs))
	}
	for _, s := range subs {
		if s == "art" {
			t.Fatal("art must not be its own subject")
		}
	}
}

func TestShareSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	r := NewRunner(QuickConfig())
	sw, err := r.ShareSweep("")
	if err != nil {
		t.Fatal(err)
	}
	if sw.Benchmark != "art" || len(sw.Rows) != 7 {
		t.Fatalf("sweep shape: %+v", sw)
	}
	if !sw.Monotone() {
		t.Errorf("delivered bandwidth not monotone in allocation: %+v", sw.Rows)
	}
	// The middle point is the equal split.
	mid := sw.Rows[3]
	if mid.UtilRatio < 0.8 || mid.UtilRatio > 1.25 {
		t.Errorf("equal split delivered ratio %.2f", mid.UtilRatio)
	}
	// The extreme splits deliver clearly asymmetric bandwidth.
	if sw.Rows[6].UtilRatio < 2 {
		t.Errorf("7/8 split delivered ratio %.2f, want >= 2", sw.Rows[6].UtilRatio)
	}
	if sw.Rows[0].UtilRatio > 0.5 {
		t.Errorf("1/8 split delivered ratio %.2f, want <= 0.5", sw.Rows[0].UtilRatio)
	}
	var buf bytes.Buffer
	sw.Render(&buf)
	if !strings.Contains(buf.String(), "Share sweep") {
		t.Error("render output missing")
	}
	if _, err := r.ShareSweep("bogus"); err == nil {
		t.Error("accepted unknown benchmark")
	}
}

// TestTwoCoreShape is the full Figures 5-7 pipeline at test windows,
// asserting the paper's qualitative results.
func TestTwoCoreShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 57 co-schedules")
	}
	r := NewRunner(QuickConfig())
	tc, err := r.TwoCore()
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.Rows) != 19*3 {
		t.Fatalf("rows = %d", len(tc.Rows))
	}
	// FR-FCFS leaves many subjects below QoS; FQ-VFTF rescues nearly all.
	frMet, total := tc.QoSCount("FR-FCFS", 0.9)
	fqMet, _ := tc.QoSCount("FQ-VFTF", 0.9)
	if total != 19 {
		t.Fatalf("total = %d", total)
	}
	if frMet > 10 {
		t.Errorf("FR-FCFS met QoS on %d/19; interference too weak", frMet)
	}
	if fqMet < 16 {
		t.Errorf("FQ-VFTF met QoS on only %d/19", fqMet)
	}
	// Aggregate improvement positive, and each policy keeps the bus busy.
	mean, _ := tc.Improvement("FQ-VFTF", "FR-FCFS")
	if mean < 0.1 {
		t.Errorf("FQ improvement %.2f, want >= 0.10", mean)
	}
	for _, p := range PolicyNames() {
		if u := tc.MeanAggBusUtil(p); u < 0.7 {
			t.Errorf("%s aggregate bus util %.2f; bandwidth wasted", p, u)
		}
	}
	// vpr is among the hardest-hit subjects under FR-FCFS.
	for _, row := range tc.ByPolicy("FR-FCFS") {
		if row.Subject == "vpr" && row.NormIPC > 0.6 {
			t.Errorf("vpr under FR-FCFS at %.2f; expected severe loss", row.NormIPC)
		}
	}
}

// TestFigure8And9Shape runs the 4-core pipeline and checks the paper's
// headline: FQ-VFTF inverts the FR-FCFS favoritism and collapses the
// normalized-utilization variance by an order of magnitude.
func TestFigure8And9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 12 four-core workloads")
	}
	r := NewRunner(QuickConfig())
	f8, err := r.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Outcomes) != 4*3 {
		t.Fatalf("outcomes = %d", len(f8.Outcomes))
	}
	// Workload 1 under FR-FCFS: most aggressive thread (art) on top,
	// least aggressive (ammp) at the bottom; FQ-VFTF flips it.
	fr := f8.ByPolicy("FR-FCFS")[0]
	fq := f8.ByPolicy("FQ-VFTF")[0]
	if !(fr.Threads[0].NormIPC > fr.Threads[3].NormIPC) {
		t.Errorf("FR-FCFS did not favor the aggressor: %+v", fr.Threads)
	}
	if !(fq.Threads[3].NormIPC > fq.Threads[0].NormIPC) {
		t.Errorf("FQ-VFTF did not favor the meek: %+v", fq.Threads)
	}
	met, total := f8.QoSCount("FQ-VFTF", 0.9)
	if met < total-1 {
		t.Errorf("FQ-VFTF QoS %d/%d", met, total)
	}
	f9, err := r.Figure9(f8)
	if err != nil {
		t.Fatal(err)
	}
	vFR, vFQ := f9.Variance("FR-FCFS"), f9.Variance("FQ-VFTF")
	if vFQ*5 > vFR {
		t.Errorf("variance did not collapse: FR-FCFS %.4f vs FQ-VFTF %.4f", vFR, vFQ)
	}
}

func TestCSVExports(t *testing.T) {
	var buf bytes.Buffer
	f1 := Figure1Result{Rows: []Figure1Row{{Scenario: "alone", IPC: 2, RelIPC: 1, ReadLat: 51, BusUtil: 0.18}}}
	if err := f1.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "scenario,ipc") || !strings.Contains(buf.String(), "alone,2,1,51,0.18") {
		t.Errorf("figure1 csv:\n%s", buf.String())
	}

	buf.Reset()
	f4 := Figure4Result{Rows: []Figure4Row{{Benchmark: "art", BusUtil: 0.93, IPC: 0.5, ReadLat: 111}}}
	if err := f4.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "art,0.93,0.5,111") {
		t.Errorf("figure4 csv:\n%s", buf.String())
	}

	buf.Reset()
	if err := makeTwoCore().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a,FR-FCFS,0.5") {
		t.Errorf("twocore csv:\n%s", buf.String())
	}

	buf.Reset()
	f8 := Figure8Result{Outcomes: []WorkloadOutcome{{
		Workload: []string{"x"}, Policy: "FR-FCFS",
		Threads: []ThreadOutcome{{Benchmark: "x", NormIPC: 1.5, BusUtil: 0.4, ReadLat: 100}},
	}}}
	if err := f8.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wl1,FR-FCFS,x,1.5,0.4,100") {
		t.Errorf("figure8 csv:\n%s", buf.String())
	}

	buf.Reset()
	f9 := Figure9Result{Points: []ScatterPoint{{Benchmark: "x", Policy: "FQ-VFTF", NormLatency: 2, NormBusUtil: 0.9, TargetUtil: 0.25}}}
	if err := f9.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x,FQ-VFTF,2,0.9,0.25") {
		t.Errorf("figure9 csv:\n%s", buf.String())
	}

	buf.Reset()
	sw := ShareSweepResult{Benchmark: "art", Rows: []ShareSweepRow{{Share0: makeShare(1, 2), Util0: 0.5, Util1: 0.5, AllocRatio: 1, UtilRatio: 1}}}
	if err := sw.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1/2,0.5,0.5,1,1") {
		t.Errorf("sweep csv:\n%s", buf.String())
	}
}
