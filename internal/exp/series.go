package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/memctrl"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Time-series export: when Config.SampleInterval is set the runner
// samples every simulation's metrics on epoch boundaries, and when
// Config.SeriesDir is also set each run leaves two artifacts named
// after its memo key:
//
//   - <key>.series.json — the full epoch series (per-interval counter
//     deltas, gauge values, histogram-bucket deltas) plus the fairness
//     series and its summary, self-describing for plotting tools;
//   - <key>.fairness.csv — the fairness series flattened to one row
//     per (epoch, thread), plot-ready like the figure CSVs. Every row
//     leads with the run's policy name so fairness series from
//     different schedulers (e.g. an arena sweep) concatenate into one
//     plottable file.

// seriesDoc is the schema of a <key>.series.json artifact.
type seriesDoc struct {
	Key      string           `json:"key"`
	Policy   string           `json:"policy"`
	Interval int64            `json:"interval"`
	Epochs   int64            `json:"epochs"`
	Samples  []metrics.Sample `json:"samples"`

	Fairness struct {
		Summary memctrl.FairnessSummary  `json:"summary"`
		Samples []memctrl.FairnessSample `json:"samples"`
	} `json:"fairness"`
}

// sanitizeKey maps a memo key like "co/art+vpr/FQ-VFTF" to a filename
// stem, replacing path separators and anything else unfriendly.
func sanitizeKey(key string) string {
	out := make([]byte, len(key))
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '+', c == '-', c == '_':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// writeSeries exports one finished run's time series into dir.
func writeSeries(dir, key string, s *sim.System) error {
	stem := filepath.Join(dir, sanitizeKey(key))

	doc := seriesDoc{
		Key:      key,
		Policy:   s.Controller().Policy().Name(),
		Interval: s.Sampler().Interval(),
		Epochs:   s.Sampler().Epochs(),
		Samples:  s.Sampler().Samples(-1),
	}
	doc.Fairness.Summary = s.Fairness().Summary()
	doc.Fairness.Samples = s.Fairness().Samples(-1)

	jf, err := os.Create(stem + ".series.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(jf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}

	cf, err := os.Create(stem + ".fairness.csv")
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(doc.Fairness.Samples)*doc.Fairness.Summary.Threads)
	for _, fs := range doc.Fairness.Samples {
		for t := range fs.Service {
			rows = append(rows, []string{
				doc.Policy,
				strconv.FormatInt(fs.Epoch, 10), strconv.FormatInt(fs.Cycle, 10),
				strconv.Itoa(t), strconv.FormatInt(fs.Service[t], 10),
				f(fs.Share[t]), f(fs.Phi[t]), f(fs.Excess[t]),
				strconv.FormatBool(fs.Backlogged[t]), f(fs.CumShortfall[t]),
				strconv.Itoa(fs.TopAggressor[t]), strconv.FormatInt(fs.StolenCycles[t], 10),
			})
		}
	}
	err = writeCSV(cf, []string{
		"policy", "epoch", "cycle", "thread", "service", "share", "phi", "excess", "backlogged", "cum_shortfall",
		"top_aggressor", "stolen_cycles",
	}, rows)
	if cerr := cf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("exp: fairness csv %s: %w", key, err)
	}
	return nil
}
