package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV export: every figure can emit its data as plot-ready CSV, one row
// per plotted point, matching the paper's axes.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// WriteCSV emits the Figure 1 bars.
func (fig Figure1Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(fig.Rows))
	for _, r := range fig.Rows {
		rows = append(rows, []string{r.Scenario, f(r.IPC), f(r.RelIPC), f(r.ReadLat), f(r.BusUtil)})
	}
	return writeCSV(w, []string{"scenario", "ipc", "rel_ipc", "read_latency", "bus_util"}, rows)
}

// WriteCSV emits the Figure 4 spectrum.
func (fig Figure4Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(fig.Rows))
	for _, r := range fig.Rows {
		rows = append(rows, []string{
			r.Benchmark, f(r.BusUtil), f(r.IPC), f(r.ReadLat),
			f(r.ReadLatP50), f(r.ReadLatP95), f(r.ReadLatP99),
		})
	}
	return writeCSV(w, []string{
		"benchmark", "bus_util", "ipc", "read_latency",
		"read_latency_p50", "read_latency_p95", "read_latency_p99",
	}, rows)
}

// WriteCSV emits the Figure 5/6/7 rows (one per subject x policy).
func (t TwoCoreResult) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Subject, r.Policy, f(r.NormIPC), f(r.ReadLat),
			f(r.ReadLatP50), f(r.ReadLatP95), f(r.ReadLatP99), f(r.BusUtil),
			f(r.BgNormIPC), f(r.HMNormIPC), f(r.AggBusUtil), f(r.AggBankUtil),
		})
	}
	return writeCSV(w, []string{
		"subject", "policy", "norm_ipc", "read_latency",
		"read_latency_p50", "read_latency_p95", "read_latency_p99", "bus_util",
		"bg_norm_ipc", "hm_norm_ipc", "agg_bus_util", "agg_bank_util",
	}, rows)
}

// WriteCSV emits the Figure 8 threads (one per workload x policy x thread).
func (fig Figure8Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for wi, o := range fig.Outcomes {
		for _, th := range o.Threads {
			rows = append(rows, []string{
				fmt.Sprintf("wl%d", wi/len(policies)+1), o.Policy, th.Benchmark,
				f(th.NormIPC), f(th.BusUtil), f(th.ReadLat),
			})
		}
	}
	return writeCSV(w, []string{"workload", "policy", "benchmark", "norm_ipc", "bus_util", "read_latency"}, rows)
}

// WriteCSV emits the Figure 9 scatter points.
func (fig Figure9Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(fig.Points))
	for _, p := range fig.Points {
		rows = append(rows, []string{
			p.Benchmark, p.Policy, f(p.NormLatency), f(p.NormBusUtil), f(p.TargetUtil),
		})
	}
	return writeCSV(w, []string{"benchmark", "policy", "norm_latency", "norm_bus_util", "target_util"}, rows)
}

// WriteCSV emits the share sweep points.
func (s ShareSweepResult) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(s.Rows))
	for _, r := range s.Rows {
		rows = append(rows, []string{
			r.Share0.String(), f(r.Util0), f(r.Util1), f(r.AllocRatio), f(r.UtilRatio),
		})
	}
	return writeCSV(w, []string{"share0", "util0", "util1", "alloc_ratio", "util_ratio"}, rows)
}
