package exp

import (
	"fmt"
	"io"
)

// Report bundles the full evaluation: every figure plus the paper's
// headline statistics.
type Report struct {
	Fig1    Figure1Result
	Fig4    Figure4Result
	TwoCore TwoCoreResult // Figures 5, 6, 7
	Fig8    Figure8Result
	Fig9    Figure9Result
}

// All runs the complete evaluation.
func (r *Runner) All() (Report, error) {
	var rep Report
	var err error
	if rep.Fig4, err = r.Figure4(); err != nil {
		return rep, err
	}
	if rep.Fig1, err = r.Figure1(); err != nil {
		return rep, err
	}
	if rep.TwoCore, err = r.TwoCore(); err != nil {
		return rep, err
	}
	if rep.Fig8, err = r.Figure8(); err != nil {
		return rep, err
	}
	if rep.Fig9, err = r.Figure9(rep.Fig8); err != nil {
		return rep, err
	}
	return rep, nil
}

// Headline summarizes the abstract's claims against the measured run.
type Headline struct {
	// Two-core (Figures 5-7).
	TwoCoreQoSMet, TwoCoreQoSTotal int     // paper: 18 / 19
	TwoCoreWorstNormIPC            float64 // paper: vpr at .94
	TwoCoreAvgImprovement          float64 // paper: +31%
	TwoCoreMaxImprovement          float64 // paper: +76%
	TwoCoreFQBusUtil               float64 // paper: 92%

	// Four-core (Figures 8-9).
	FourCoreQoSMet, FourCoreQoSTotal int     // paper: all threads
	FourCoreAvgImprovement           float64 // paper: +14%
	FourCoreMaxImprovement           float64 // paper: +41%
	VarianceFRFCFS                   float64 // paper: .20
	VarianceFQVFTF                   float64 // paper: .0058
}

// Headline derives the summary statistics from a full report.
func (rep Report) Headline() Headline {
	var h Headline
	h.TwoCoreQoSMet, h.TwoCoreQoSTotal = rep.TwoCore.QoSCount("FQ-VFTF", 0.95)
	worst := 10.0
	for _, row := range rep.TwoCore.ByPolicy("FQ-VFTF") {
		if row.NormIPC < worst {
			worst = row.NormIPC
		}
	}
	h.TwoCoreWorstNormIPC = worst
	h.TwoCoreAvgImprovement, h.TwoCoreMaxImprovement = rep.TwoCore.Improvement("FQ-VFTF", "FR-FCFS")
	h.TwoCoreFQBusUtil = rep.TwoCore.MeanAggBusUtil("FQ-VFTF")
	h.FourCoreQoSMet, h.FourCoreQoSTotal = rep.Fig8.QoSCount("FQ-VFTF", 0.95)
	_, h.FourCoreAvgImprovement, h.FourCoreMaxImprovement = rep.Fig8.Improvements("FQ-VFTF", "FR-FCFS")
	h.VarianceFRFCFS = rep.Fig9.Variance("FR-FCFS")
	h.VarianceFQVFTF = rep.Fig9.Variance("FQ-VFTF")
	return h
}

// Render writes every figure and the headline comparison.
func (rep Report) Render(w io.Writer) {
	rep.Fig1.Render(w)
	fmt.Fprintln(w)
	rep.Fig4.Render(w)
	fmt.Fprintln(w)
	rep.TwoCore.RenderFigure5(w)
	fmt.Fprintln(w)
	rep.TwoCore.RenderFigure6(w)
	fmt.Fprintln(w)
	rep.TwoCore.RenderFigure7(w)
	fmt.Fprintln(w)
	rep.Fig8.Render(w)
	fmt.Fprintln(w)
	rep.Fig9.Render(w)
	fmt.Fprintln(w)
	rep.Headline().Render(w)
}

// Render writes the paper-vs-measured headline table.
func (h Headline) Render(w io.Writer) {
	fmt.Fprintf(w, "Headline: paper vs measured\n")
	fmt.Fprintf(w, "%-46s %10s %10s\n", "metric", "paper", "measured")
	row := func(name, paper, measured string) {
		fmt.Fprintf(w, "%-46s %10s %10s\n", name, paper, measured)
	}
	row("2-core QoS met (normIPC >= ~0.95)", "18/19",
		fmt.Sprintf("%d/%d", h.TwoCoreQoSMet, h.TwoCoreQoSTotal))
	row("2-core worst FQ-VFTF normalized IPC", "0.94", fmt.Sprintf("%.2f", h.TwoCoreWorstNormIPC))
	row("2-core avg FQ improvement vs FR-FCFS", "+31%", fmt.Sprintf("%+.0f%%", h.TwoCoreAvgImprovement*100))
	row("2-core max FQ improvement", "+76%", fmt.Sprintf("%+.0f%%", h.TwoCoreMaxImprovement*100))
	row("2-core FQ aggregate data bus utilization", "92%", fmt.Sprintf("%.0f%%", h.TwoCoreFQBusUtil*100))
	row("4-core QoS met (all threads)", "16/16",
		fmt.Sprintf("%d/%d", h.FourCoreQoSMet, h.FourCoreQoSTotal))
	row("4-core avg FQ improvement vs FR-FCFS", "+14%", fmt.Sprintf("%+.0f%%", h.FourCoreAvgImprovement*100))
	row("4-core max FQ improvement", "+41%", fmt.Sprintf("%+.0f%%", h.FourCoreMaxImprovement*100))
	row("normalized util variance, FR-FCFS", "0.20", fmt.Sprintf("%.4f", h.VarianceFRFCFS))
	row("normalized util variance, FQ-VFTF", "0.0058", fmt.Sprintf("%.4f", h.VarianceFQVFTF))
}
