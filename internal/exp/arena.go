package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/trace"
)

// Policy arena: the paper's FQ-VFTF is the 2006 point in a scheduler
// lineage, and the arena races it against its successors — BLISS
// (interval blacklisting), SLOW-FAIR (slowdown-balancing), BANK-BW
// (per-bank budgets) — plus the FR-FCFS/FR-VFTF baselines, across
// workload mixes, share splits, and channel counts. Each cell reduces
// to the two axes the lineage argues about: system throughput
// (weighted speedup against the paper's scaled private baseline) and
// fairness (max-slowdown balance), with the per-cell Pareto frontier
// marked so the tradeoff reads as a measured frontier rather than a
// single claim.

// arenaPolicies are the contenders. This is deliberately distinct from
// the `policies` list in runner.go, which feeds the paper-figure row
// counts and their golden files and must not grow.
var arenaPolicies = []string{"FR-FCFS", "FR-VFTF", "FQ-VFTF", "BLISS", "SLOW-FAIR", "BANK-BW"}

// ArenaPolicyNames returns the arena contenders in table order.
func ArenaPolicyNames() []string { return append([]string(nil), arenaPolicies...) }

// ArenaSpec describes the sweep axes: every policy runs on every
// (mix, share split, channel count) cell.
type ArenaSpec struct {
	// Mixes are the co-run workloads, one benchmark name per core.
	Mixes [][]string

	// Shares are thread 0's allocations; the remaining threads split
	// the rest evenly. The zero Share means the paper's static equal
	// allocation. Shareless policies (BLISS, SLOW-FAIR, BANK-BW)
	// ignore the split — the arena shows them not moving.
	Shares []core.Share

	// Channels are the memory-channel counts to sweep.
	Channels []int
}

// DefaultArenaSpec sweeps the paper's headline two-core pair, its
// first four-core workload, and two adversarial pairs (vpr against the
// sequential bus hog and against the bank-conflict attacker) over
// equal and 3/4-skewed allocations on one and two channels: 6 policies
// x 4 mixes x 2 shares x 2 channels. The antagonist mixes put the
// isolation property on the arena's fairness axis: FQ-VFTF holds the
// victim's slowdown bounded where the lineage's interval heuristics
// only soften the attack.
func DefaultArenaSpec() ArenaSpec {
	return ArenaSpec{
		Mixes: [][]string{
			{"vpr", "art"},
			trace.FourCoreWorkloads()[0],
			{"vpr", "bushog"},
			{"vpr", "bankhammer"},
		},
		Shares:   []core.Share{{}, {Num: 3, Den: 4}},
		Channels: []int{1, 2},
	}
}

// ArenaRow is one (policy, mix, share, channels) cell of the arena.
type ArenaRow struct {
	Policy   string `json:"policy"`
	Workload string `json:"workload"` // "+"-joined benchmark names
	Share0   string `json:"share0"`   // thread 0's allocation ("eq" = equal)
	Channels int    `json:"channels"`

	// WeightedSpeedup is the throughput axis: the sum over threads of
	// IPC_shared / IPC_alone, where alone is the paper's private
	// baseline (the benchmark solo on the same channel count with
	// memory timing scaled by the thread count).
	WeightedSpeedup float64 `json:"weighted_speedup"`

	// MaxSlowdown and FairnessIndex are the fairness axis: slowdown_i
	// = IPC_alone / IPC_shared, MaxSlowdown its maximum, and
	// FairnessIndex = min slowdown / max slowdown in (0, 1] (1 means
	// every thread suffers equally).
	MaxSlowdown   float64 `json:"max_slowdown"`
	FairnessIndex float64 `json:"fairness_index"`

	// SumIPC and BusUtil are the raw aggregate throughput of the cell.
	SumIPC  float64 `json:"sum_ipc"`
	BusUtil float64 `json:"bus_util"`

	// InterferenceIndex is the fraction of the cell's attributed wait
	// cycles charged to a different thread (delay attribution's Cross /
	// Total); 0 when the sweep ran without Config.Interference.
	InterferenceIndex float64 `json:"interference_index"`

	// Pareto marks the rows on the fairness-vs-throughput frontier of
	// their (mix, share, channels) cell group: no other policy in the
	// group is at least as good on both axes and better on one.
	Pareto bool `json:"pareto"`
}

// ArenaResult is the full sweep, grouped cell-major: rows iterate
// mixes, then shares, then channels, then policies, so each contiguous
// len(arenaPolicies) block is one frontier group.
type ArenaResult struct {
	Spec ArenaSpec  `json:"spec"`
	Rows []ArenaRow `json:"rows"`
}

// shareLabel renders thread 0's allocation for keys and tables.
func shareLabel(s core.Share) string {
	if s == (core.Share{}) {
		return "eq"
	}
	return fmt.Sprintf("%d-%d", s.Num, s.Den)
}

// arenaShares expands thread 0's allocation to a full share vector
// (nil for the equal split, which sim defaults to 1/N).
func arenaShares(s0 core.Share, n int) []core.Share {
	if s0 == (core.Share{}) {
		return nil
	}
	shares := make([]core.Share, n)
	shares[0] = s0
	for i := 1; i < n; i++ {
		shares[i] = core.Share{Num: s0.Den - s0.Num, Den: s0.Den * (n - 1)}
	}
	return shares
}

// Arena runs the sweep: the spec's units (solo baselines first — cells
// share them, and memoizing them up front keeps the parallel cell
// fan-out from simulating the same solo twice) execute on the runner's
// worker budget, then ReduceArena folds the memoized Results into
// cell-major rows (see ArenaResult) with each group's Pareto frontier
// marked. The fabric coordinator runs the same units on remote workers
// and the same reduction over their uploaded results, which is why a
// sharded sweep's arena artifacts are byte-identical to this path's.
func (r *Runner) Arena(spec ArenaSpec) (ArenaResult, error) {
	var solos, cells []Unit
	for _, u := range ArenaUnits(spec) {
		if u.Solo() {
			solos = append(solos, u)
		} else {
			cells = append(cells, u)
		}
	}
	if err := r.parallelDo(len(solos), func(i int) error {
		_, err := r.RunUnit(solos[i])
		return err
	}); err != nil {
		return ArenaResult{Spec: spec}, err
	}
	if err := r.parallelDo(len(cells), func(i int) error {
		_, err := r.RunUnit(cells[i])
		return err
	}); err != nil {
		return ArenaResult{Spec: spec}, err
	}
	// Every unit is memoized now; the reduction just recalls them.
	var intf InterferenceGetter
	if r.cfg.Interference {
		intf = r.UnitInterference
	}
	return ReduceArena(spec, r.RunUnit, intf)
}

// Render writes the arena as a text table, one frontier group per
// block, Pareto rows starred.
func (a ArenaResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Policy arena (extension): post-2006 scheduler lineage\n")
	fmt.Fprintf(w, "throughput = weighted speedup vs the scaled private baseline;\n")
	fmt.Fprintf(w, "fairness = min/max slowdown; * = on the cell's Pareto frontier\n\n")
	for g := 0; g < len(a.Rows); g += len(arenaPolicies) {
		group := a.Rows[g : g+len(arenaPolicies)]
		h := group[0]
		fmt.Fprintf(w, "%s  share0=%s  channels=%d\n", h.Workload, h.Share0, h.Channels)
		fmt.Fprintf(w, "  %-10s %9s %9s %9s %8s %8s\n",
			"policy", "wspeedup", "maxslow", "fairness", "sumIPC", "busUtil")
		for _, r := range group {
			star := " "
			if r.Pareto {
				star = "*"
			}
			fmt.Fprintf(w, "%s %-10s %9.3f %9.3f %9.3f %8.3f %8.3f\n",
				star, r.Policy, r.WeightedSpeedup, r.MaxSlowdown, r.FairnessIndex,
				r.SumIPC, r.BusUtil)
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV emits the arena scatter points, one row per cell.
func (a ArenaResult) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(a.Rows))
	for _, r := range a.Rows {
		pareto := "0"
		if r.Pareto {
			pareto = "1"
		}
		rows = append(rows, []string{
			r.Workload, r.Share0, fmt.Sprint(r.Channels), r.Policy,
			f(r.WeightedSpeedup), f(r.MaxSlowdown), f(r.FairnessIndex),
			f(r.SumIPC), f(r.BusUtil), f(r.InterferenceIndex), pareto,
		})
	}
	return writeCSV(w, []string{
		"workload", "share0", "channels", "policy",
		"weighted_speedup", "max_slowdown", "fairness_index",
		"sum_ipc", "bus_util", "interference_index", "pareto",
	}, rows)
}

// ArtifactCSV renders the arena.csv artifact bytes. cmd/experiments
// and the fabric merge both emit through here, so the two paths'
// artifacts can only agree or both be wrong.
func (a ArenaResult) ArtifactCSV() ([]byte, error) {
	var buf bytes.Buffer
	if err := a.WriteCSV(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ArtifactJSON renders the arena.json artifact bytes.
func (a ArenaResult) ArtifactJSON() ([]byte, error) {
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
