package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Antagonist golden figures: the adversarial-isolation headline numbers
// at QuickConfig, frozen into testdata/golden/antagonist.json. One row
// per antagonist profile: its solo signature (IPC, bus utilization,
// row-hit rate on the physical system), the vpr victim's slowdown
// against the scale-2 private-φ baseline under FQ-VFTF and FR-FCFS,
// and the share of the victim's attributed wait cycles charged to the
// attacker under FR-FCFS. Bless deliberate changes with
//
//	go test ./internal/exp -run TestAntagonistGolden -update
//
// On mismatch the fresh rows land in antagonist.got.json for diffing.

const antagonistGoldenFile = "testdata/golden/antagonist.json"

// AntagonistRow is one antagonist's frozen headline numbers.
type AntagonistRow struct {
	Attacker    string  `json:"attacker"`
	SoloIPC     float64 `json:"solo_ipc"`
	SoloBusUtil float64 `json:"solo_bus_util"`
	SoloRowHit  float64 `json:"solo_row_hit"`

	// Victim (vpr) slowdown = private-φ IPC / shared IPC.
	SlowdownFQ float64 `json:"slowdown_fq_vftf"`
	SlowdownFR float64 `json:"slowdown_fr_fcfs"`

	// StolenShareFR is Matrix[victim][attacker] / sum(Matrix[victim])
	// from the interference cube of the FR-FCFS co-run.
	StolenShareFR float64 `json:"stolen_share_fr_fcfs"`
}

type antagonistGolden struct {
	Rows []AntagonistRow `json:"rows"`
}

func computeAntagonistGolden(t *testing.T) antagonistGolden {
	t.Helper()
	cfg := QuickConfig()
	r := NewRunner(cfg)
	base, err := r.Solo("vpr", 2)
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	var g antagonistGolden
	for _, name := range trace.AntagonistNames() {
		solo, err := r.Solo(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		row := AntagonistRow{
			Attacker:    name,
			SoloIPC:     solo.IPC,
			SoloBusUtil: solo.BusUtil,
			SoloRowHit:  solo.RowHitRate,
		}
		atk, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []string{"FQ-VFTF", "FR-FCFS"} {
			factory, err := sim.PolicyByName(pol)
			if err != nil {
				t.Fatal(err)
			}
			s, res, err := sim.RunSystem(sim.Config{
				Workload:     []trace.Profile{vpr, atk},
				Policy:       factory,
				Interference: true,
			}, cfg.Warmup, cfg.Window)
			if err != nil {
				t.Fatal(err)
			}
			sd := base.IPC / res.Threads[0].IPC
			switch pol {
			case "FQ-VFTF":
				row.SlowdownFQ = sd
			case "FR-FCFS":
				row.SlowdownFR = sd
				snap, ok := s.Interference()
				if !ok {
					t.Fatal("interference attribution not enabled")
				}
				var total int64
				for _, c := range snap.Matrix[0] {
					total += c
				}
				if total > 0 {
					row.StolenShareFR = float64(snap.Matrix[0][1]) / float64(total)
				}
			}
		}
		g.Rows = append(g.Rows, row)
	}
	return g
}

func diffAntagonist(got, want antagonistGolden) []string {
	var diffs []string
	if len(got.Rows) != len(want.Rows) {
		return []string{fmt.Sprintf("row counts: got %d, golden %d", len(got.Rows), len(want.Rows))}
	}
	for i, g := range got.Rows {
		w := want.Rows[i]
		if g.Attacker != w.Attacker {
			diffs = append(diffs, fmt.Sprintf("rows[%d]: attacker %q vs %q", i, g.Attacker, w.Attacker))
			continue
		}
		num := func(label string, gv, wv float64) {
			if !closeEnough(gv, wv) {
				diffs = append(diffs, fmt.Sprintf("%s/%s: got %v, golden %v", g.Attacker, label, gv, wv))
			}
		}
		num("solo_ipc", g.SoloIPC, w.SoloIPC)
		num("solo_bus_util", g.SoloBusUtil, w.SoloBusUtil)
		num("solo_row_hit", g.SoloRowHit, w.SoloRowHit)
		num("slowdown_fq_vftf", g.SlowdownFQ, w.SlowdownFQ)
		num("slowdown_fr_fcfs", g.SlowdownFR, w.SlowdownFR)
		num("stolen_share_fr_fcfs", g.StolenShareFR, w.StolenShareFR)
	}
	return diffs
}

// TestAntagonistGolden freezes the adversarial headline numbers and
// enforces the qualitative isolation result independent of them: under
// every attacker, FQ-VFTF bounds the victim at its private-φ baseline
// while FR-FCFS does not, and the FR-FCFS victim's waits are majority-
// attributed to the attacker.
func TestAntagonistGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("antagonist sweep is slow")
	}
	got := computeAntagonistGolden(t)

	for _, row := range got.Rows {
		if row.SlowdownFQ > 1.0 {
			t.Errorf("%s: FQ-VFTF slowdown %.3f exceeds the private-φ bound", row.Attacker, row.SlowdownFQ)
		}
		if row.SlowdownFR <= row.SlowdownFQ {
			t.Errorf("%s: FR-FCFS slowdown %.3f not above FQ-VFTF's %.3f", row.Attacker, row.SlowdownFR, row.SlowdownFQ)
		}
		if row.StolenShareFR <= 0.5 {
			t.Errorf("%s: only %.0f%% of the FR-FCFS victim's waits attributed to the attacker", row.Attacker, 100*row.StolenShareFR)
		}
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(antagonistGoldenFile, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", antagonistGoldenFile)
		return
	}

	buf, err := os.ReadFile(antagonistGoldenFile)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	var want antagonistGolden
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if diffs := diffAntagonist(got, want); len(diffs) > 0 {
		gotPath := "testdata/golden/antagonist.got.json"
		if b, err := json.MarshalIndent(got, "", "  "); err == nil {
			os.WriteFile(gotPath, append(b, '\n'), 0o644)
		}
		for _, d := range diffs {
			t.Error(d)
		}
		t.Errorf("antagonist figures drifted from %s (%d mismatches); wrote %s — inspect the diff, then bless with -update if intended",
			antagonistGoldenFile, len(diffs), gotPath)
	} else {
		os.Remove("testdata/golden/antagonist.got.json")
	}
}
