package trace

import (
	"bytes"
	"testing"
)

// FuzzReadExternal feeds arbitrary bytes to the external-trace parser.
// The invariants: never panic, never hang; a successful parse yields a
// usable Source (Next and CodeLine run without panicking) and parsing
// is deterministic (same bytes, same records).
func FuzzReadExternal(f *testing.F) {
	f.Add([]byte("ld 0x40\nst 0x80 3\nint\nfp 0 2 9\nbr\n"))
	f.Add([]byte("name t\ncodekb 8\nld,64,0,0\n"))
	f.Add([]byte("# comment\n\nld 0xffffffffffffffff 255 0\n"))
	f.Add([]byte("int 0 256 4\nload 9999999999\n"))
	f.Add([]byte("ld"))
	f.Add([]byte("name\n"))
	f.Add([]byte("codekb 1048577\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r1, err1 := ReadExternal(bytes.NewReader(data))
		r2, err2 := ReadExternal(bytes.NewReader(data))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic outcome: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if r1.Len() == 0 {
			t.Fatal("successful parse with zero instructions")
		}
		if r1.Len() != r2.Len() || r1.Name() != r2.Name() {
			t.Fatalf("nondeterministic parse: %d/%q vs %d/%q", r1.Len(), r1.Name(), r2.Len(), r2.Name())
		}
		// Drive the reader past one wrap; every yielded instruction must
		// be well formed enough for the CPU model.
		var a, b Instr
		n := r1.Len() + 3
		for i := 0; i < n; i++ {
			r1.Next(&a)
			r2.Next(&b)
			if a != b {
				t.Fatalf("nondeterministic record %d: %+v vs %+v", i, a, b)
			}
			if a.Dep < 0 || a.Dep > maxExternalDep {
				t.Fatalf("record %d: dep %d out of range", i, a.Dep)
			}
			if a.Lat < 0 || a.Lat > maxExternalLat {
				t.Fatalf("record %d: lat %d out of range", i, a.Lat)
			}
			r1.CodeLine()
			r2.CodeLine()
		}
	})
}
