package trace

import (
	"bytes"
	"testing"
)

// FuzzReadTrace throws arbitrary bytes at the trace parser. Two
// properties must hold for every input:
//
//  1. ReadTrace never panics and never allocates proportionally to a
//     hostile header (the record loop grows the slice as data arrives).
//  2. Any input ReadTrace accepts must survive a write/read round trip
//     bit-identically: the Reader is itself a Source, so re-recording
//     it and re-parsing must reproduce the same name, code footprint,
//     and instruction stream.
//
// The seed corpus covers real recorded traces (with and without an
// I-fetch stream), plus headers that historically needed care. Run with
// `go test -fuzz=FuzzReadTrace ./internal/trace` to explore further;
// plain `go test` replays the seeds deterministically.
func FuzzReadTrace(f *testing.F) {
	for _, seed := range []struct {
		bench string
		n     uint64
	}{
		{"ammp", 300},   // loads+stores, no code stream
		{"crafty", 200}, // CodeKB > 0: exercises the footprint field
		{"art", 100},    // heavy memory traffic
	} {
		p, err := ByName(seed.bench)
		if err != nil {
			f.Fatal(err)
		}
		g, err := NewGenerator(p, 0, 1)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, g, seed.n); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add(fileMagic[:])
	// Valid header claiming one instruction, then a bad kind byte.
	f.Add(append(append([]byte{}, fileMagic[:]...),
		1, 0, 'x', 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 99, 0, 1))
	// Valid header claiming 2^27 instructions with no data: must fail
	// on the first record read, not allocate gigabytes.
	f.Add(append(append([]byte{}, fileMagic[:]...),
		1, 0, 'x', 0, 0, 0, 0, 0, 0, 0, 8, 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking or OOM is not
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, r, uint64(r.Len())); err != nil {
			t.Fatalf("re-recording an accepted trace failed: %v", err)
		}
		// Exactly Len() Next calls wrap the reader back to position 0,
		// so r replays from the start again below.
		r2, err := ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading a re-recorded trace failed: %v", err)
		}
		if r2.Name() != r.Name() {
			t.Fatalf("name drifted: %q -> %q", r.Name(), r2.Name())
		}
		if r2.codeKB != r.codeKB {
			t.Fatalf("code footprint drifted: %d -> %d KB", r.codeKB, r2.codeKB)
		}
		if r2.Len() != r.Len() {
			t.Fatalf("length drifted: %d -> %d", r.Len(), r2.Len())
		}
		var a, b Instr
		for i := 0; i < r.Len(); i++ {
			r.Next(&a)
			r2.Next(&b)
			if a != b {
				t.Fatalf("record %d drifted: %+v -> %+v", i, a, b)
			}
		}
	})
}

// TestReadTraceHostileCount pins the allocation fix: a 23-byte file
// whose header claims 2^27 instructions must fail fast on the missing
// first record rather than allocating a multi-gigabyte slice.
func TestReadTraceHostileCount(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(fileMagic[:])
	buf.Write([]byte{1, 0})
	buf.WriteString("x")
	buf.Write([]byte{0, 0, 0, 0})             // codeKB
	buf.Write([]byte{0, 0, 0, 8, 0, 0, 0, 0}) // count = 1<<27
	if _, err := ReadTrace(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("accepted a truncated trace with a hostile count")
	}
	// Over the hard cap: rejected from the header alone.
	buf.Truncate(buf.Len() - 8)
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 1}) // count = 1<<56
	if _, err := ReadTrace(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("accepted a count beyond the cap")
	}
}

// TestWriteTracePreservesReaderCodeKB pins the re-record fix: writing a
// trace from a *Reader source must carry the I-fetch footprint through,
// not zero it (only *Generator sources used to be recognized).
func TestWriteTracePreservesReaderCodeKB(t *testing.T) {
	p, err := ByName("crafty") // CodeKB 32
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := WriteTrace(&first, g, 500); err != nil {
		t.Fatal(err)
	}
	r, err := ReadTrace(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteTrace(&second, r, uint64(r.Len())); err != nil {
		t.Fatal(err)
	}
	r2, err := ReadTrace(bytes.NewReader(second.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r2.CodeLine(); !ok {
		t.Fatal("code footprint lost when re-recording from a Reader")
	}
	if r2.codeKB != r.codeKB {
		t.Fatalf("codeKB %d -> %d across re-record", r.codeKB, r2.codeKB)
	}
}
