package trace

import "fmt"

// Suite returns the twenty synthetic benchmark profiles standing in for
// the paper's SPEC 2000 traces, ordered by decreasing solo data-bus
// utilization exactly as the paper orders its Figure 4 (most aggressive
// first). The ordering fixes the paper's workload construction: the
// four-processor workloads combine every fourth benchmark of the top
// sixteen, and the last four (very low utilization) are excluded.
func Suite() []Profile {
	return []Profile{
		{
			// Streaming image recognition; the paper's most aggressive
			// benchmark and the Figure 5/6 background thread.
			Name: "art", MemFrac: 0.3342, StoreFrac: 0.50,
			SeqFrac: 0.92, ChaseFrac: 0, Streams: 1, BurstLen: 128,
			WorkingSetKB: 4096, FpFrac: 0.6, DepFrac: 0.15,
			SoloUtilTarget: 0.9,
		},
		{
			// Shallow-water stencil: streaming reads and writes.
			Name: "swim", MemFrac: 0.1124, StoreFrac: 0.40,
			SeqFrac: 0.93, ChaseFrac: 0, Streams: 6, BurstLen: 24,
			WorkingSetKB: 4096, FpFrac: 0.7, DepFrac: 0.2,
			SoloUtilTarget: 0.75,
		},
		{
			// Sparse graph optimization: huge working set, mostly random
			// reads with good memory-level parallelism.
			Name: "mcf", MemFrac: 0.2249, StoreFrac: 0.12,
			SeqFrac: 0.10, ChaseFrac: 0.12, Streams: 2, BurstLen: 8,
			WorkingSetKB: 16384, FpFrac: 0.0, DepFrac: 0.25,
			SoloUtilTarget: 0.68,
		},
		{
			// Earthquake FEM: streaming with irregular gather.
			Name: "equake", MemFrac: 0.1014, StoreFrac: 0.25,
			SeqFrac: 0.70, ChaseFrac: 0.03, Streams: 5, BurstLen: 16,
			WorkingSetKB: 8192, FpFrac: 0.6, DepFrac: 0.2,
			SoloUtilTarget: 0.62,
		},
		{
			// FFT over large arrays: streaming, write-heavy phases.
			Name: "lucas", MemFrac: 0.0568, StoreFrac: 0.35,
			SeqFrac: 0.90, ChaseFrac: 0, Streams: 4, BurstLen: 16,
			WorkingSetKB: 8192, FpFrac: 0.8, DepFrac: 0.25,
			SoloUtilTarget: 0.57,
		},
		{
			// CFD solver: blocked streaming.
			Name: "applu", MemFrac: 0.05411, StoreFrac: 0.30,
			SeqFrac: 0.85, ChaseFrac: 0, Streams: 5, BurstLen: 16,
			WorkingSetKB: 8192, FpFrac: 0.8, DepFrac: 0.25,
			SoloUtilTarget: 0.53,
		},
		{
			// Galerkin FEM: dense linear algebra with large panels.
			Name: "galgel", MemFrac: 0.04963, StoreFrac: 0.25,
			SeqFrac: 0.75, ChaseFrac: 0, Streams: 4, BurstLen: 12,
			WorkingSetKB: 4096, FpFrac: 0.8, DepFrac: 0.3,
			SoloUtilTarget: 0.48,
		},
		{
			// Face recognition: streaming correlation over images.
			Name: "facerec", MemFrac: 0.04322, StoreFrac: 0.20,
			SeqFrac: 0.78, ChaseFrac: 0, Streams: 4, BurstLen: 12,
			WorkingSetKB: 4096, FpFrac: 0.7, DepFrac: 0.3,
			SoloUtilTarget: 0.44,
		},
		{
			// Pollutant-distribution code: mixed streaming/random.
			Name: "apsi", MemFrac: 0.03958, StoreFrac: 0.30,
			SeqFrac: 0.65, ChaseFrac: 0, Streams: 4, BurstLen: 8,
			WorkingSetKB: 2048, FpFrac: 0.7, DepFrac: 0.3,
			SoloUtilTarget: 0.4,
		},
		{
			// Quantum chromodynamics: strided streaming.
			Name: "wupwise", MemFrac: 0.03018, StoreFrac: 0.25,
			SeqFrac: 0.70, ChaseFrac: 0, Streams: 3, BurstLen: 8,
			WorkingSetKB: 4096, FpFrac: 0.8, DepFrac: 0.3,
			SoloUtilTarget: 0.36,
		},
		{
			// Multigrid solver: streaming with reuse between levels.
			Name: "mgrid", MemFrac: 0.0292, StoreFrac: 0.30,
			SeqFrac: 0.80, ChaseFrac: 0, Streams: 3, BurstLen: 12,
			WorkingSetKB: 2048, FpFrac: 0.8, DepFrac: 0.3,
			SoloUtilTarget: 0.32,
		},
		{
			// 3D graphics: moderate streaming, good cache behavior.
			Name: "mesa", MemFrac: 0.02733, StoreFrac: 0.25,
			SeqFrac: 0.55, ChaseFrac: 0, Streams: 3, BurstLen: 8,
			WorkingSetKB: 1536, FpFrac: 0.5, DepFrac: 0.3,
			SoloUtilTarget: 0.29,
		},
		{
			// Molecular dynamics: neighbor lists, mixed random/chase.
			Name: "ammp", MemFrac: 0.02832, StoreFrac: 0.20,
			SeqFrac: 0.35, ChaseFrac: 0.15, Streams: 2, BurstLen: 6,
			WorkingSetKB: 2048, FpFrac: 0.6, DepFrac: 0.3,
			SoloUtilTarget: 0.26,
		},
		{
			// Compression: small working set, bursty.
			Name: "gzip", MemFrac: 0.03584, StoreFrac: 0.30,
			SeqFrac: 0.55, ChaseFrac: 0, Streams: 2, BurstLen: 8,
			WorkingSetKB: 768, FpFrac: 0.0, DepFrac: 0.35,
			SoloUtilTarget: 0.22,
		},
		{
			// Dictionary parsing: pointer-heavy, moderate footprint.
			Name: "parser", MemFrac: 0.02838, StoreFrac: 0.20,
			SeqFrac: 0.25, ChaseFrac: 0.25, Streams: 2, BurstLen: 4,
			WorkingSetKB: 1024, FpFrac: 0.0, DepFrac: 0.35,
			SoloUtilTarget: 0.18,
		},
		{
			// Place-and-route: dependent pointer chasing with little
			// memory parallelism; the paper's latency-sensitive subject
			// (Figure 1) and the one benchmark FQ misses QoS on.
			Name: "vpr", MemFrac: 0.036, StoreFrac: 0.12,
			SeqFrac: 0.05, ChaseFrac: 0.65, Streams: 1, BurstLen: 1,
			WorkingSetKB: 1024, FpFrac: 0.1, DepFrac: 0.4,
			SoloUtilTarget: 0.14,
		},
		{
			// Standard-cell place-and-route: like vpr, lighter.
			Name: "twolf", MemFrac: 0.017, StoreFrac: 0.12,
			SeqFrac: 0.05, ChaseFrac: 0.55, Streams: 1, BurstLen: 1,
			WorkingSetKB: 768, FpFrac: 0.1, DepFrac: 0.4,
			SoloUtilTarget: 0.09,
		},
		{
			// Particle accelerator simulation: tiny working set.
			Name: "sixtrack", MemFrac: 0.07912, StoreFrac: 0.25,
			SeqFrac: 0.30, ChaseFrac: 0, Streams: 2, BurstLen: 8,
			WorkingSetKB: 512, FpFrac: 0.7, DepFrac: 0.35,
			SoloUtilTarget: 0.025,
		},
		{
			// Perl interpreter: cache-resident, code-heavy.
			Name: "perlbmk", MemFrac: 0.1101, StoreFrac: 0.30,
			SeqFrac: 0.10, ChaseFrac: 0.15, Streams: 1, BurstLen: 4,
			WorkingSetKB: 160, FpFrac: 0.0, DepFrac: 0.4,
			CodeKB:         48,
			SoloUtilTarget: 0.005,
		},
		{
			// Chess: compute bound, fits in L2.
			Name: "crafty", MemFrac: 0.09524, StoreFrac: 0.20,
			SeqFrac: 0.05, ChaseFrac: 0.10, Streams: 1, BurstLen: 2,
			WorkingSetKB: 128, FpFrac: 0.0, DepFrac: 0.45,
			CodeKB:         32,
			SoloUtilTarget: 0.002,
		},
	}
}

// ByName returns the suite or antagonist profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range Suite() {
		if p.Name == name {
			return p, nil
		}
	}
	for _, p := range Antagonists() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// Names returns the suite benchmark names in Figure 4 order.
func Names() []string {
	s := Suite()
	out := make([]string, len(s))
	for i, p := range s {
		out[i] = p.Name
	}
	return out
}

// FourCoreWorkloads returns the paper's four-processor workloads: every
// fourth benchmark of the sixteen most aggressive (the last four are
// excluded for very low memory utilization). Workload i combines
// benchmarks i, i+4, i+8, i+12 (1-based), ordered most demanding first.
func FourCoreWorkloads() [][]string {
	names := Names()
	wls := make([][]string, 4)
	for i := 0; i < 4; i++ {
		wls[i] = []string{names[i], names[i+4], names[i+8], names[i+12]}
	}
	return wls
}
