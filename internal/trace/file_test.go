package trace

import (
	"bytes"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	p, _ := ByName("ammp")
	g, err := NewGenerator(p, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const n = 50_000
	if err := WriteTrace(&buf, g, n); err != nil {
		t.Fatal(err)
	}

	r, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "ammp" || r.Len() != n {
		t.Fatalf("name=%q len=%d", r.Name(), r.Len())
	}

	// Replay must equal a fresh generation with the same seed.
	g2, _ := NewGenerator(p, 0, 5)
	var a, b Instr
	for i := 0; i < n; i++ {
		g2.Next(&a)
		r.Next(&b)
		if a.Dep > 255 {
			a.Dep = 0 // the format saturates deep deps
		}
		if a != b {
			t.Fatalf("instruction %d: recorded %+v, replayed %+v", i, a, b)
		}
	}
	// The reader loops past the end.
	r.Next(&b)
	g3, _ := NewGenerator(p, 0, 5)
	g3.Next(&a)
	if a.Kind != b.Kind {
		t.Fatal("reader did not wrap to the start")
	}
}

func TestTraceReaderCodeLine(t *testing.T) {
	p, _ := ByName("crafty") // CodeKB 32
	g, _ := NewGenerator(p, 0, 1)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g, 1000); err != nil {
		t.Fatal(err)
	}
	r, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.CodeLine(); !ok {
		t.Fatal("code footprint lost in round trip")
	}
	// art has no code stream.
	p2, _ := ByName("art")
	g2, _ := NewGenerator(p2, 0, 1)
	buf.Reset()
	WriteTrace(&buf, g2, 100)
	r2, _ := ReadTrace(bytes.NewReader(buf.Bytes()))
	if _, ok := r2.CodeLine(); ok {
		t.Fatal("phantom code stream after round trip")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC________________"),
		append(fileMagic[:], 0xFF), // truncated after magic
	}
	for i, c := range cases {
		if _, err := ReadTrace(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: accepted garbage", i)
		}
	}
	// Valid header but bad instruction kind.
	var buf bytes.Buffer
	buf.Write(fileMagic[:])
	buf.Write([]byte{1, 0})                   // name length 1
	buf.WriteString("x")                      // name
	buf.Write([]byte{0, 0, 0, 0})             // codeKB
	buf.Write([]byte{1, 0, 0, 0, 0, 0, 0, 0}) // count = 1
	buf.Write([]byte{99, 0, 1})               // kind 99: invalid
	if _, err := ReadTrace(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("accepted invalid instruction kind")
	}
	// Empty trace.
	buf.Reset()
	buf.Write(fileMagic[:])
	buf.Write([]byte{1, 0})
	buf.WriteString("x")
	buf.Write([]byte{0, 0, 0, 0})
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	if _, err := ReadTrace(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("accepted empty trace")
	}
}
