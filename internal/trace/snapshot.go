package trace

import "repro/internal/snapshot"

// SaveState serializes the generator's mutable cursor: the rng state
// and the stream/burst/code positions. Everything else (thresholds,
// working-set geometry, the address base) is derived from the profile,
// thread id, and seed at construction, so a restored generator only
// needs the cursor to continue the identical instruction stream.
func (g *Generator) SaveState(w *snapshot.Writer) {
	w.Section("trace.Generator")
	w.U64(g.r.s)
	w.U64s(g.streamPos)
	w.Ints(g.streamLeft)
	w.Int(g.nextStream)
	w.Int(g.lastLoadAgo)
	w.Int(g.burstLeft)
	w.Int(g.burstStream)
	w.U64(g.codePos)
	w.U64(g.count)
	w.U64(g.attackStep)
}

// LoadState restores a cursor saved by SaveState into a generator
// constructed with the same profile, thread, and seed.
func (g *Generator) LoadState(r *snapshot.Reader) error {
	r.Section("trace.Generator")
	s := r.U64()
	pos := r.U64s(len(g.streamPos))
	left := r.Ints(len(g.streamLeft))
	nextStream := r.Int()
	lastLoadAgo := r.Int()
	burstLeft := r.Int()
	burstStream := r.Int()
	codePos := r.U64()
	count := r.U64()
	attackStep := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if len(pos) != len(g.streamPos) || len(left) != len(g.streamLeft) {
		r.Fail("trace.Generator: %d/%d streams, generator has %d", len(pos), len(left), len(g.streamPos))
		return r.Err()
	}
	// nextStream and burstStream index streamPos on the dispatch path;
	// reject out-of-range values rather than storing a latent panic.
	if nextStream < 0 || nextStream >= len(pos) {
		r.Fail("trace.Generator: nextStream %d out of range", nextStream)
		return r.Err()
	}
	if burstStream < -1 || burstStream >= len(pos) {
		r.Fail("trace.Generator: burstStream %d out of range", burstStream)
		return r.Err()
	}
	g.r.s = s
	copy(g.streamPos, pos)
	copy(g.streamLeft, left)
	g.nextStream = nextStream
	g.lastLoadAgo = lastLoadAgo
	g.burstLeft = burstLeft
	g.burstStream = burstStream
	g.codePos = codePos
	g.count = count
	g.attackStep = attackStep
	return nil
}

// SaveState serializes the replay reader's cursor (the records
// themselves live in the trace file, not the snapshot).
func (t *Reader) SaveState(w *snapshot.Writer) {
	w.Section("trace.Reader")
	w.Int(t.pos)
	w.U64(t.codePos)
}

// LoadState restores a cursor saved by SaveState into a reader over
// the same trace file.
func (t *Reader) LoadState(r *snapshot.Reader) error {
	r.Section("trace.Reader")
	pos := r.Int()
	codePos := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if pos < 0 || (len(t.records) > 0 && pos >= len(t.records)) || (len(t.records) == 0 && pos != 0) {
		r.Fail("trace.Reader: position %d outside %d records", pos, len(t.records))
		return r.Err()
	}
	t.pos = pos
	t.codePos = codePos
	return nil
}
