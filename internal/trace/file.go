package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The paper drives its simulator with "100 million instruction SPEC
// benchmark sampled traces". This file implements that workflow for the
// synthetic suite: a compact binary trace format so instruction streams
// can be recorded once (cmd/tracegen), archived, diffed, and replayed
// bit-exactly -- or replaced with externally captured traces that use
// the same format.
//
// Format (little endian):
//
//	magic   [8]byte  "FQMSTRC1"
//	name    uint16-prefixed UTF-8 benchmark name
//	codeKB  uint32   I-fetch footprint (0 = no I-fetch stream)
//	count   uint64   number of instructions
//	records count x {
//	    kind uint8
//	    dep  uint8   (producer distance, 0 = none; saturates at 255)
//	    lat  uint8
//	    addr uint64  (loads/stores only)
//	}

var fileMagic = [8]byte{'F', 'Q', 'M', 'S', 'T', 'R', 'C', '1'}

// Source produces the instruction stream for one thread. Generator
// (synthesis) and Reader (replay) both implement it; the CPU model
// consumes either.
type Source interface {
	// Next fills in the next instruction.
	Next(ins *Instr)
	// CodeLine returns the current instruction-fetch line address; ok
	// is false when I-fetch is not modeled.
	CodeLine() (addr uint64, ok bool)
	// Name identifies the workload.
	Name() string
}

var (
	_ Source = (*Generator)(nil)
	_ Source = (*Reader)(nil)
)

// Writer records an instruction stream to a trace file.
type Writer struct {
	w     *bufio.Writer
	count uint64
	// countPos patching requires a seeker; instead the count is written
	// on Close by buffering the header... simplest: caller states the
	// count up front via NewWriter.
}

// WriteTrace records n instructions from the source to w.
func WriteTrace(w io.Writer, src Source, n uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	name := src.Name()
	if len(name) > 1<<16-1 {
		return fmt.Errorf("trace: name too long")
	}
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(name)))
	bw.Write(u16[:])
	bw.WriteString(name)
	var u32 [4]byte
	codeKB := uint32(0)
	switch s := src.(type) {
	case *Generator:
		codeKB = uint32(s.p.CodeKB)
	case *Reader:
		// Re-recording a replayed trace must preserve the I-fetch
		// footprint, or the second generation silently loses its code
		// stream.
		codeKB = uint32(s.codeKB)
	}
	binary.LittleEndian.PutUint32(u32[:], codeKB)
	bw.Write(u32[:])
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], n)
	bw.Write(u64[:])

	var ins Instr
	for i := uint64(0); i < n; i++ {
		src.Next(&ins)
		dep := ins.Dep
		if dep > 255 {
			dep = 0 // beyond any ROB; drop the edge
		}
		rec := [3]byte{byte(ins.Kind), byte(dep), byte(ins.Lat)}
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		if ins.Kind == KindLoad || ins.Kind == KindStore {
			binary.LittleEndian.PutUint64(u64[:], ins.Addr)
			if _, err := bw.Write(u64[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Reader replays a recorded trace, looping when it reaches the end (the
// measurement window decides how much is consumed, mirroring Generator
// semantics).
type Reader struct {
	name    string
	codeKB  int
	records []Instr

	pos       int
	codeLines int
	codePos   uint64
}

// ReadTrace loads an entire trace into memory for replay.
func ReadTrace(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var u16 [2]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, err
	}
	nameLen := binary.LittleEndian.Uint16(u16[:])
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, err
	}
	var u32 [4]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, err
	}
	codeKB := binary.LittleEndian.Uint32(u32[:])
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(u64[:])
	if count == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	const maxTrace = 1 << 28 // 256M instructions
	if count > maxTrace {
		return nil, fmt.Errorf("trace: %d instructions exceeds the %d cap", count, maxTrace)
	}
	// The header's count is untrusted: grow the slice as records
	// actually arrive so a tiny file claiming 256M instructions fails on
	// its first short read instead of allocating gigabytes up front.
	const allocChunk = 1 << 16
	records := make([]Instr, 0, min(count, allocChunk))
	var rec [3]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		ins := Instr{Kind: Kind(rec[0]), Dep: int(rec[1]), Lat: int(rec[2])}
		if ins.Kind > KindBranch {
			return nil, fmt.Errorf("trace: record %d: bad kind %d", i, rec[0])
		}
		if ins.Kind == KindLoad || ins.Kind == KindStore {
			if _, err := io.ReadFull(br, u64[:]); err != nil {
				return nil, fmt.Errorf("trace: record %d addr: %w", i, err)
			}
			ins.Addr = binary.LittleEndian.Uint64(u64[:])
		}
		records = append(records, ins)
	}
	return &Reader{
		name:      string(nameBuf),
		codeKB:    int(codeKB),
		codeLines: int(codeKB) * 1024 / lineBytes,
		records:   records,
	}, nil
}

// Name implements Source.
func (r *Reader) Name() string { return r.name }

// Len returns the number of recorded instructions.
func (r *Reader) Len() int { return len(r.records) }

// Next implements Source, looping over the recorded window.
func (r *Reader) Next(ins *Instr) {
	*ins = r.records[r.pos]
	r.pos++
	if r.pos == len(r.records) {
		r.pos = 0
	}
}

// CodeLine implements Source, mirroring Generator's cyclic code walk.
func (r *Reader) CodeLine() (uint64, bool) {
	if r.codeLines == 0 {
		return 0, false
	}
	a := uint64(regionLines/4) + r.codePos
	r.codePos++
	if r.codePos >= uint64(r.codeLines) {
		r.codePos = 0
	}
	return a, true
}
