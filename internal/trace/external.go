package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// External text trace format. Captured traces (from a real-machine
// pintool, another simulator, or a hand-written regression case) can
// drive the simulator without converting to the binary FQMSTRC1 format
// first; cmd/tracegen -convert turns external text into the compact
// binary form for archival.
//
// The format is line oriented:
//
//	# comments and blank lines are ignored
//	name <benchmark-name>      (directive, optional, once)
//	codekb <int>               (directive, optional: I-fetch footprint)
//	<kind>[ <addr>[ <dep>[ <lat>]]]
//
// Fields are separated by spaces, tabs, or commas (so plain CSV rows
// "ld,0x12,0,0" parse too). kind is one of ld/load, st/store, int,
// fp, br/branch. addr is the cache-line address of a load or store,
// decimal or 0x-prefixed hex. dep is the producer distance in
// instructions (0 = none; values beyond 255 drop the edge, matching
// the binary format's saturation rule). lat is the execution latency
// in cycles for compute instructions; it defaults to 1 (int, br) or
// 4 (fp).

// Parser limits. A hostile input may claim anything; these caps bound
// what ReadExternal will allocate before failing.
const (
	maxExternalLine = 1 << 20 // a line longer than 1MB is rejected
	maxExternalDep  = 255
	maxExternalLat  = 1 << 20
)

// ReadExternal parses the external text/CSV trace format into a replay
// Reader (the same looping Source the binary format produces).
// Hostile inputs — truncated lines, huge fields, absurd counts — fail
// with an error; they never panic and never allocate beyond the
// instruction cap.
func ReadExternal(r io.Reader) (*Reader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxExternalLine)
	name := "external"
	codeKB := 0
	var records []Instr
	lineNo := 0
	const maxTrace = 1 << 28
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		})
		if len(fields) == 0 {
			continue
		}
		switch strings.ToLower(fields[0]) {
		case "name":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: external line %d: name directive wants one value", lineNo)
			}
			if len(fields[1]) > 1<<16-1 {
				return nil, fmt.Errorf("trace: external line %d: name too long", lineNo)
			}
			name = fields[1]
			continue
		case "codekb":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: external line %d: codekb directive wants one value", lineNo)
			}
			v, err := strconv.ParseUint(fields[1], 0, 32)
			if err != nil || v > 1<<20 {
				return nil, fmt.Errorf("trace: external line %d: bad codekb %q", lineNo, fields[1])
			}
			codeKB = int(v)
			continue
		}
		ins, err := parseExternalInstr(fields)
		if err != nil {
			return nil, fmt.Errorf("trace: external line %d: %w", lineNo, err)
		}
		if uint64(len(records)) >= maxTrace {
			return nil, fmt.Errorf("trace: external trace exceeds the %d-instruction cap", maxTrace)
		}
		records = append(records, ins)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: external line %d: %w", lineNo+1, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("trace: external trace has no instructions")
	}
	return &Reader{
		name:      name,
		codeKB:    codeKB,
		codeLines: codeKB * 1024 / lineBytes,
		records:   records,
	}, nil
}

// parseExternalInstr decodes one instruction line's fields.
func parseExternalInstr(fields []string) (Instr, error) {
	var ins Instr
	mem := false
	switch strings.ToLower(fields[0]) {
	case "ld", "load":
		ins.Kind = KindLoad
		mem = true
	case "st", "store":
		ins.Kind = KindStore
		mem = true
	case "int":
		ins.Kind = KindInt
		ins.Lat = 1
	case "fp":
		ins.Kind = KindFp
		ins.Lat = 4
	case "br", "branch":
		ins.Kind = KindBranch
		ins.Lat = 1
	default:
		return ins, fmt.Errorf("unknown kind %q", fields[0])
	}
	if len(fields) > 4 {
		return ins, fmt.Errorf("too many fields (%d)", len(fields))
	}
	if mem {
		if len(fields) < 2 {
			return ins, fmt.Errorf("%s needs an address", fields[0])
		}
		addr, err := strconv.ParseUint(fields[1], 0, 64)
		if err != nil {
			return ins, fmt.Errorf("bad address %q", fields[1])
		}
		ins.Addr = addr
	} else if len(fields) >= 2 && fields[1] != "0" && fields[1] != "" {
		return ins, fmt.Errorf("%s takes no address (got %q)", fields[0], fields[1])
	}
	if len(fields) >= 3 {
		dep, err := strconv.ParseUint(fields[2], 0, 32)
		if err != nil {
			return ins, fmt.Errorf("bad dep %q", fields[2])
		}
		if dep > maxExternalDep {
			dep = 0 // beyond any ROB; drop the edge (binary-format rule)
		}
		ins.Dep = int(dep)
	}
	if len(fields) == 4 {
		lat, err := strconv.ParseUint(fields[3], 0, 32)
		if err != nil || lat > maxExternalLat {
			return ins, fmt.Errorf("bad lat %q", fields[3])
		}
		if !mem {
			ins.Lat = int(lat)
		}
	}
	return ins, nil
}
