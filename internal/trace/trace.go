// Package trace generates deterministic synthetic instruction traces
// standing in for the paper's twenty 100M-instruction SPEC 2000 sampled
// traces. Each benchmark is a Profile: a parameterized mixture of
// sequential streaming, random access within a working set, and
// dependent pointer chasing, plus compute instruction mix. Profiles are
// calibrated so that the solo data-bus utilizations reproduce the
// paper's Figure 4 spectrum (art most aggressive ... crafty least) and
// the qualitative characters the evaluation leans on (art = streaming
// with high memory-level parallelism, vpr = latency-sensitive pointer
// chasing with little memory parallelism, crafty = compute bound).
package trace

import "fmt"

// Kind is an instruction class.
type Kind uint8

const (
	// KindInt is a 1-cycle integer operation.
	KindInt Kind = iota
	// KindFp is a multi-cycle floating-point operation.
	KindFp
	// KindLoad is a data load.
	KindLoad
	// KindStore is a data store.
	KindStore
	// KindBranch is a 1-cycle branch.
	KindBranch
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFp:
		return "fp"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "branch"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Instr is one generated instruction.
type Instr struct {
	Kind Kind

	// Addr is the line address for loads and stores.
	Addr uint64

	// Dep is the distance (in instructions, >= 1) back to the producer
	// this instruction waits on; 0 means no register dependence. A load
	// whose Dep names an earlier load models address dependence
	// (pointer chasing): it cannot issue until that load completes.
	Dep int

	// Lat is the execution latency in cycles once operands are ready
	// (loads/stores use the memory system instead).
	Lat int
}

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string

	// MemFrac is the fraction of instructions that touch memory (at
	// line granularity; intra-line spatial hits are abstracted away).
	MemFrac float64
	// StoreFrac is the fraction of memory instructions that are stores.
	StoreFrac float64

	// Access pattern mixture (must sum to <= 1; the remainder is random
	// access within the working set):
	// SeqFrac streams sequentially (high row-buffer locality),
	// ChaseFrac performs dependent pointer chasing (no memory
	// parallelism).
	SeqFrac   float64
	ChaseFrac float64

	// Streams is the number of concurrent sequential streams (bank-level
	// parallelism of the streaming portion).
	Streams int

	// BurstLen makes memory accesses arrive in back-to-back bursts of
	// this many line touches (1 = uniform arrivals). Sequential bursts
	// stay within one stream, producing the long same-row runs whose
	// FCFS slot capture and row-hit priority chaining the paper blames
	// for FR-FCFS unfairness. The average memory intensity remains
	// MemFrac regardless of BurstLen.
	BurstLen int

	// WorkingSetKB bounds the random and pointer-chase footprint; sets
	// the L2 miss ratio of the non-streaming portion.
	WorkingSetKB int

	// FpFrac is the fraction of compute instructions that are FP.
	FpFrac float64
	// DepFrac is the probability a compute instruction depends on its
	// immediate predecessor (longer chains lower compute ILP).
	DepFrac float64

	// CodeKB is the instruction footprint; 0 disables I-fetch modeling.
	CodeKB int

	// SoloUtilTarget documents the paper-Figure-4-like solo data bus
	// utilization this profile was calibrated toward (fraction of peak).
	SoloUtilTarget float64

	// Agent selects the core model that executes the profile: the
	// default latency-sensitive OoO core, or the latency-tolerant
	// accelerator-style streaming core (see antagonist.go).
	Agent AgentKind

	// Attack, when non-zero, replaces the mixture model's address
	// selection with a targeted antagonist pattern aimed at TargetBank
	// (see antagonist.go). AttackRows bounds the distinct rows the
	// pattern cycles through (0 selects a cache-defeating default).
	Attack     AttackKind
	TargetBank int
	AttackRows int

	// PhasePeriod > 0 modulates memory intensity with a diurnal on/off
	// envelope: of every PhasePeriod instructions, the first
	// PhaseDutyPct percent run at MemFrac and the rest at
	// PhaseLowMemFrac. The phase is a pure function of the instruction
	// count, so checkpoints taken mid-burst restore bit-identically.
	PhasePeriod     uint64
	PhaseDutyPct    int
	PhaseLowMemFrac float64
}

// Validate checks profile consistency.
func (p Profile) Validate() error {
	switch {
	case p.MemFrac < 0 || p.MemFrac > 1:
		return fmt.Errorf("trace: %s: MemFrac %v out of range", p.Name, p.MemFrac)
	case p.StoreFrac < 0 || p.StoreFrac > 1:
		return fmt.Errorf("trace: %s: StoreFrac %v out of range", p.Name, p.StoreFrac)
	case p.SeqFrac < 0 || p.ChaseFrac < 0 || p.SeqFrac+p.ChaseFrac > 1:
		return fmt.Errorf("trace: %s: pattern mixture invalid (seq %v chase %v)", p.Name, p.SeqFrac, p.ChaseFrac)
	case p.MemFrac > 0 && p.WorkingSetKB < 64:
		return fmt.Errorf("trace: %s: working set %dKB too small", p.Name, p.WorkingSetKB)
	case p.MemFrac > 0 && p.SeqFrac > 0 && p.Streams < 1:
		return fmt.Errorf("trace: %s: streaming profile needs Streams >= 1", p.Name)
	case p.Agent > AgentStream:
		return fmt.Errorf("trace: %s: unknown agent kind %d", p.Name, p.Agent)
	case p.Attack > AttackBusHog:
		return fmt.Errorf("trace: %s: unknown attack kind %d", p.Name, p.Attack)
	case p.TargetBank < 0 || p.AttackRows < 0:
		return fmt.Errorf("trace: %s: negative attack parameter", p.Name)
	case p.PhaseDutyPct < 0 || p.PhaseDutyPct > 100:
		return fmt.Errorf("trace: %s: PhaseDutyPct %d out of range", p.Name, p.PhaseDutyPct)
	case p.PhaseLowMemFrac < 0 || p.PhaseLowMemFrac > 1:
		return fmt.Errorf("trace: %s: PhaseLowMemFrac %v out of range", p.Name, p.PhaseLowMemFrac)
	case p.PhasePeriod > 0 && p.PhaseDutyPct == 0:
		return fmt.Errorf("trace: %s: diurnal profile needs PhaseDutyPct >= 1", p.Name)
	}
	return nil
}

const lineBytes = 64

// rng is a xorshift64* PRNG: fast, deterministic, and good enough for
// workload synthesis.
type rng struct{ s uint64 }

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// float returns a uniform float64 in [0, 1). Multiplying by the exact
// reciprocal of 2^53 is bit-identical to dividing and avoids a DIVSD on
// this per-instruction path.
func (r *rng) float() float64 { return float64(r.next()>>11) * (1.0 / (1 << 53)) }

// draw returns the raw 53-bit uniform underlying float, for comparison
// against thresh(q) values: draw() < thresh(q) is bit-identical to
// float() < q without the integer-to-float conversion.
func (r *rng) draw() uint64 { return r.next() >> 11 }

// thresh converts a probability to the integer threshold t such that
// draw() < t exactly when float() < q: float() is v * 2^-53 for integer
// v, so v*2^-53 < q iff v < ceil(q * 2^53) (q*2^53 is an exact float64
// operation — the scale is a power of two).
func thresh(q float64) uint64 {
	t := q * (1 << 53)
	if t <= 0 {
		return 0
	}
	if t >= 1<<53 {
		return 1 << 53
	}
	u := uint64(t)
	if float64(u) < t {
		u++ // ceil
	}
	return u
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Generator produces the instruction stream for one thread running one
// profile. It never terminates: the synthetic program loops forever, so
// callers decide the measurement window.
type Generator struct {
	p    Profile
	r    rng
	base uint64 // thread-private line-address base

	wsLines     int
	streamPos   []uint64 // per-stream current line
	streamLeft  []int    // lines left before the stream jumps
	nextStream  int
	lastLoadAgo int // instructions since the last load (for chase deps)
	burstLeft   int
	burstStream int // pinned stream during a sequential burst, -1 otherwise

	codeLines int
	codePos   uint64

	// Integer draw thresholds (see thresh), precomputed from the
	// profile's probabilities so the per-instruction path compares raw
	// rng draws instead of converting to float64. burstProbT encodes
	// the per-instruction burst start probability solved from MemFrac
	// and BurstLen (see NewGenerator); burstLen is the clamped
	// BurstLen.
	burstProbT uint64
	seqFracT   uint64
	seqChaseT  uint64
	storeFracT uint64
	fpFracT    uint64
	depFracT   uint64
	burstLen   int

	// Diurnal envelope (phasePeriod == 0 means steady): the burst start
	// threshold drops to burstProbLowT outside the first phaseHigh
	// instructions of each period. Both are pure functions of count.
	phasePeriod   uint64
	phaseHigh     uint64
	burstProbLowT uint64

	// Attack encoder state (Attack != AttackNone only): a monotone
	// cursor plus the precomputed address-geometry bit layout
	// (see antagonist.go).
	attackStep  uint64
	atkChanBits uint
	atkColBits  uint
	atkBankBits uint
	atkRankBits uint
	atkBankMask uint64
	atkChans    uint64
	atkCols     uint64
	atkRows     uint64
	atkBank     uint64
	atkRowBase  uint64

	count uint64
}

// Fixed thresholds of Next's compute-instruction mix.
var (
	branchT = thresh(0.15)
	halfT   = thresh(0.5)
)

// regionLines is the span of line addresses private to each thread
// (4M lines = 256MB), so threads never share cache lines while still
// sharing DRAM banks.
const regionLines = 1 << 22

// NewGenerator returns a generator for the profile, seeded
// deterministically from the profile name, thread id, and seed, with
// attack patterns (if any) targeting the paper's default Table 5
// geometry.
func NewGenerator(p Profile, thread int, seed uint64) (*Generator, error) {
	return NewGeneratorGeom(p, thread, seed, DefaultGeom())
}

// NewGeneratorGeom is NewGenerator with an explicit DRAM address
// geometry for the attack encoders. Profiles without an attack pattern
// produce streams independent of the geometry, so NewGenerator remains
// bit-identical to every earlier release for the SPEC suite.
func NewGeneratorGeom(p Profile, thread int, seed uint64, geom Geom) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	h := seed*0x100000001b3 + uint64(thread+1)*0xcbf29ce484222325
	for _, c := range p.Name {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	g := &Generator{
		p:    p,
		r:    newRNG(h),
		base: uint64(thread) * regionLines,
	}
	g.wsLines = p.WorkingSetKB * 1024 / lineBytes
	if g.wsLines < 1 {
		g.wsLines = 1
	}
	if g.wsLines > regionLines/2 {
		g.wsLines = regionLines / 2
	}
	n := p.Streams
	if n < 1 {
		n = 1
	}
	g.streamPos = make([]uint64, n)
	g.streamLeft = make([]int, n)
	for i := range g.streamPos {
		g.resetStream(i)
	}
	g.codeLines = p.CodeKB * 1024 / lineBytes
	// A burst of length B started with probability q per non-burst
	// instruction yields a memory-instruction fraction qB/(qB + 1 - q);
	// solve for q so the average intensity is exactly MemFrac.
	bl := p.BurstLen
	if bl < 1 {
		bl = 1
	}
	f := p.MemFrac
	g.burstLen = bl
	g.burstProbT = thresh(f / (float64(bl)*(1-f) + f))
	g.seqFracT = thresh(p.SeqFrac)
	g.seqChaseT = thresh(p.SeqFrac + p.ChaseFrac)
	g.storeFracT = thresh(p.StoreFrac)
	g.fpFracT = thresh(p.FpFrac)
	g.depFracT = thresh(p.DepFrac)
	if p.PhasePeriod > 0 {
		g.phasePeriod = p.PhasePeriod
		g.phaseHigh = p.PhasePeriod * uint64(p.PhaseDutyPct) / 100
		lo := p.PhaseLowMemFrac
		g.burstProbLowT = thresh(lo / (float64(bl)*(1-lo) + lo))
	}
	if err := g.initAttack(geom); err != nil {
		return nil, err
	}
	return g, nil
}

// resetStream points stream i at a random offset inside the working
// set. Streams sweep the working set in long sequential runs, so their
// row-buffer locality is high; whether they miss is decided by the
// working set size relative to the cache hierarchy (a 4MB array streams
// through a 512KB L2, a 128KB one is cache resident).
func (g *Generator) resetStream(i int) {
	g.streamPos[i] = uint64(g.r.intn(g.wsLines))
	g.streamLeft[i] = 512 + g.r.intn(1024)
}

// Name returns the profile name.
func (g *Generator) Name() string { return g.p.Name }

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// Count returns how many instructions have been generated.
func (g *Generator) Count() uint64 { return g.count }

// CodeLine returns the current instruction-fetch line address, advancing
// through the code working set; ok is false when I-fetch modeling is
// disabled for this profile.
func (g *Generator) CodeLine() (uint64, bool) {
	if g.codeLines == 0 {
		return 0, false
	}
	a := g.base + uint64(regionLines/4) + g.codePos
	g.codePos++
	if g.codePos >= uint64(g.codeLines) {
		g.codePos = 0
	}
	return a, true
}

// Next fills in the next instruction of the synthetic program.
func (g *Generator) Next(ins *Instr) {
	g.count++
	g.lastLoadAgo++
	*ins = Instr{}
	if g.burstLeft > 0 {
		g.burstLeft--
		g.memInstr(ins, g.burstStream)
		return
	}
	t := g.burstProbT
	if g.phasePeriod != 0 && (g.count-1)%g.phasePeriod >= g.phaseHigh {
		t = g.burstProbLowT
	}
	if g.r.draw() < t {
		g.burstLeft = g.burstLen - 1
		g.burstStream = -1
		if g.burstLen > 1 && g.r.draw() < g.seqFracT {
			// Stream-coherent burst: a long run of consecutive lines
			// from a single stream (one or two DRAM rows).
			g.burstStream = g.r.intn(len(g.streamPos))
		}
		g.memInstr(ins, g.burstStream)
		return
	}
	// Compute instruction.
	x := g.r.draw()
	switch {
	case x < branchT:
		ins.Kind = KindBranch
		ins.Lat = 1
	case g.r.draw() < g.fpFracT:
		ins.Kind = KindFp
		ins.Lat = 4
	default:
		ins.Kind = KindInt
		ins.Lat = 1
	}
	if g.r.draw() < g.depFracT {
		ins.Dep = 1
	} else if g.r.draw() < halfT {
		ins.Dep = 4 + g.r.intn(12)
	}
}

// memInstr emits one memory instruction. stream >= 0 pins the access to
// that sequential stream (a stream-coherent burst); -1 selects the
// profile's pattern mixture.
func (g *Generator) memInstr(ins *Instr, stream int) {
	isStore := g.r.draw() < g.storeFracT
	if isStore {
		ins.Kind = KindStore
	} else {
		ins.Kind = KindLoad
	}
	if g.p.Attack != AttackNone {
		ins.Addr = g.attackAddr()
		if ins.Kind == KindLoad {
			g.lastLoadAgo = 0
		}
		return
	}
	x := g.r.draw()
	if stream >= 0 {
		x = 0 // force the sequential arm onto the pinned stream
	}
	switch {
	case x < g.seqFracT:
		// Streaming: round-robin across streams (or the burst's pinned
		// stream), wrapping within the working set.
		i := stream
		if i < 0 {
			i = g.nextStream
			g.nextStream = (g.nextStream + 1) % len(g.streamPos)
		}
		ins.Addr = g.base + g.streamPos[i]%uint64(g.wsLines)
		g.streamPos[i]++
		g.streamLeft[i]--
		if g.streamLeft[i] <= 0 {
			g.resetStream(i)
		}
	case x < g.seqChaseT:
		// Pointer chase: a random line in the working set whose address
		// depends on the previous load.
		ins.Addr = g.base + uint64(g.r.intn(g.wsLines))
		if ins.Kind == KindLoad {
			if g.lastLoadAgo < 64 && g.count > 1 {
				ins.Dep = g.lastLoadAgo
			}
		}
	default:
		// Independent random access in the working set.
		ins.Addr = g.base + uint64(g.r.intn(g.wsLines))
	}
	if ins.Kind == KindLoad {
		g.lastLoadAgo = 0
	}
}
