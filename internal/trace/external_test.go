package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadExternalFormat(t *testing.T) {
	src := `# captured on some machine
name  mytrace
codekb 32

ld 0x40 0 0
st,0x80,3
int
fp 0 2 9
br
load 128
int 0 300
`
	r, err := ReadExternal(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "mytrace" {
		t.Errorf("name = %q, want mytrace", r.Name())
	}
	if r.Len() != 7 {
		t.Fatalf("Len = %d, want 7", r.Len())
	}
	want := []Instr{
		{Kind: KindLoad, Addr: 0x40},
		{Kind: KindStore, Addr: 0x80, Dep: 3},
		{Kind: KindInt, Lat: 1},
		{Kind: KindFp, Dep: 2, Lat: 9},
		{Kind: KindBranch, Lat: 1},
		{Kind: KindLoad, Addr: 128},
		{Kind: KindInt, Lat: 1}, // dep 300 > 255: edge dropped
	}
	var ins Instr
	for i, w := range want {
		r.Next(&ins)
		if ins != w {
			t.Errorf("instr %d = %+v, want %+v", i, ins, w)
		}
	}
	// The reader loops like the binary replay reader.
	r.Next(&ins)
	if ins != want[0] {
		t.Errorf("after wrap: %+v, want %+v", ins, want[0])
	}
	// codekb 32 enables the I-fetch stream.
	if _, ok := r.CodeLine(); !ok {
		t.Error("codekb directive did not enable the code stream")
	}
}

func TestReadExternalDefaults(t *testing.T) {
	r, err := ReadExternal(strings.NewReader("int\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "external" {
		t.Errorf("default name = %q", r.Name())
	}
	if _, ok := r.CodeLine(); ok {
		t.Error("code stream enabled without codekb")
	}
}

func TestReadExternalErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"comments only", "# nothing\n\n"},
		{"unknown kind", "mul 0x40\n"},
		{"load without address", "ld\n"},
		{"bad address", "ld zzz\n"},
		{"address on compute", "int 0x40\n"},
		{"too many fields", "ld 0x40 0 1 9\n"},
		{"bad dep", "ld 0x40 -1\n"},
		{"bad lat", "fp 0 0 huge\n"},
		{"lat too large", "int 0 0 99999999\n"},
		{"bad name directive", "name\n"},
		{"bad codekb", "codekb lots\n"},
		{"codekb too large", "codekb 9999999\n"},
		{"giant line", "ld " + strings.Repeat("9", maxExternalLine+2) + "\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadExternal(strings.NewReader(c.src)); err == nil {
				t.Errorf("%q parsed without error", c.name)
			}
		})
	}
}

// TestExternalConvertRoundTrip drives the external reader through the
// binary format (what cmd/tracegen -convert does) and back, checking
// the instruction stream and metadata survive.
func TestExternalConvertRoundTrip(t *testing.T) {
	src := `name rt
codekb 16
ld 0x1234 0 0
st 0x5678 1
fp 0 2 7
br
int 0 0 3
`
	ext, err := ReadExternal(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ext, uint64(ext.Len())); err != nil {
		t.Fatal(err)
	}
	bin, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if bin.Name() != "rt" || bin.Len() != 5 {
		t.Fatalf("round trip: name %q len %d", bin.Name(), bin.Len())
	}
	if _, ok := bin.CodeLine(); !ok {
		t.Error("round trip lost the codekb footprint")
	}
	var a, b Instr
	ext.pos = 0 // rewind after WriteTrace consumed one pass
	for i := 0; i < 5; i++ {
		ext.Next(&a)
		bin.Next(&b)
		if a != b {
			t.Errorf("instr %d: external %+v, binary %+v", i, a, b)
		}
	}
}
