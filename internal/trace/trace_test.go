package trace

import (
	"testing"
	"testing/quick"
)

func TestSuiteHasTwentyOrderedBenchmarks(t *testing.T) {
	s := Suite()
	if len(s) != 20 {
		t.Fatalf("suite has %d benchmarks, want 20", len(s))
	}
	prev := 2.0
	seen := map[string]bool{}
	for _, p := range s {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.SoloUtilTarget > prev {
			t.Errorf("%s breaks Figure 4 ordering (%v after %v)", p.Name, p.SoloUtilTarget, prev)
		}
		prev = p.SoloUtilTarget
		if seen[p.Name] {
			t.Errorf("duplicate benchmark %s", p.Name)
		}
		seen[p.Name] = true
	}
	// The benchmarks the paper's text names must be present.
	for _, n := range []string{"art", "vpr", "crafty", "lucas", "apsi", "ammp", "gzip", "swim", "mgrid", "twolf", "sixtrack", "perlbmk"} {
		if !seen[n] {
			t.Errorf("suite missing %s", n)
		}
	}
	// art leads, and the paper's "less than 2%" trio trails.
	if s[0].Name != "art" {
		t.Errorf("most aggressive benchmark is %s, want art", s[0].Name)
	}
	for _, p := range s[17:] {
		if p.SoloUtilTarget >= 0.04 {
			t.Errorf("%s: excluded tail benchmark with target %v", p.Name, p.SoloUtilTarget)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("vpr")
	if err != nil || p.Name != "vpr" {
		t.Fatalf("ByName(vpr) = %v, %v", p.Name, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("ByName accepted unknown benchmark")
	}
}

func TestFourCoreWorkloads(t *testing.T) {
	wls := FourCoreWorkloads()
	if len(wls) != 4 {
		t.Fatalf("%d workloads", len(wls))
	}
	// The paper names the first workload: art, lucas, apsi, ammp.
	want := []string{"art", "lucas", "apsi", "ammp"}
	for i, n := range want {
		if wls[0][i] != n {
			t.Fatalf("workload 1 = %v, want %v", wls[0], want)
		}
	}
	// All sixteen distinct, none from the excluded tail.
	seen := map[string]bool{}
	excluded := map[string]bool{}
	for _, p := range Suite()[16:] {
		excluded[p.Name] = true
	}
	for _, wl := range wls {
		if len(wl) != 4 {
			t.Fatalf("workload size %d", len(wl))
		}
		for _, n := range wl {
			if seen[n] {
				t.Errorf("%s in two workloads", n)
			}
			if excluded[n] {
				t.Errorf("%s is an excluded benchmark", n)
			}
			seen[n] = true
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("art")
	g1, _ := NewGenerator(p, 0, 7)
	g2, _ := NewGenerator(p, 0, 7)
	var a, b Instr
	for i := 0; i < 10000; i++ {
		g1.Next(&a)
		g2.Next(&b)
		if a != b {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a, b)
		}
	}
	// Different seed or thread changes the stream.
	g3, _ := NewGenerator(p, 1, 7)
	diff := false
	for i := 0; i < 100; i++ {
		g1.Next(&a)
		g3.Next(&b)
		if a != b {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different threads generated identical streams")
	}
}

func TestGeneratorAddressesStayInThreadRegion(t *testing.T) {
	p, _ := ByName("mcf")
	for _, thread := range []int{0, 3} {
		g, _ := NewGenerator(p, thread, 1)
		lo := uint64(thread) * regionLines
		hi := lo + regionLines
		var ins Instr
		for i := 0; i < 20000; i++ {
			g.Next(&ins)
			if ins.Kind == KindLoad || ins.Kind == KindStore {
				if ins.Addr < lo || ins.Addr >= hi {
					t.Fatalf("thread %d address %d outside [%d, %d)", thread, ins.Addr, lo, hi)
				}
			}
		}
	}
}

func TestGeneratorMemFraction(t *testing.T) {
	for _, name := range []string{"art", "vpr", "crafty"} {
		p, _ := ByName(name)
		g, _ := NewGenerator(p, 0, 3)
		var ins Instr
		mem := 0
		const n = 200000
		for i := 0; i < n; i++ {
			g.Next(&ins)
			if ins.Kind == KindLoad || ins.Kind == KindStore {
				mem++
			}
		}
		got := float64(mem) / n
		if got < p.MemFrac*0.85 || got > p.MemFrac*1.15 {
			t.Errorf("%s: memory fraction %.4f, want about %.4f", name, got, p.MemFrac)
		}
	}
}

func TestGeneratorStoreFraction(t *testing.T) {
	p, _ := ByName("swim")
	g, _ := NewGenerator(p, 0, 3)
	var ins Instr
	loads, stores := 0, 0
	for i := 0; i < 200000; i++ {
		g.Next(&ins)
		switch ins.Kind {
		case KindLoad:
			loads++
		case KindStore:
			stores++
		}
	}
	got := float64(stores) / float64(loads+stores)
	if got < p.StoreFrac*0.8 || got > p.StoreFrac*1.2 {
		t.Errorf("store fraction %.3f, want about %.3f", got, p.StoreFrac)
	}
}

func TestChaseLoadsCarryDependences(t *testing.T) {
	p, _ := ByName("vpr") // chase-dominated
	g, _ := NewGenerator(p, 0, 3)
	var ins Instr
	loads, deps := 0, 0
	for i := 0; i < 100000; i++ {
		g.Next(&ins)
		if ins.Kind == KindLoad {
			loads++
			if ins.Dep > 0 {
				deps++
			}
		}
	}
	if loads == 0 {
		t.Fatal("no loads")
	}
	if frac := float64(deps) / float64(loads); frac < 0.4 {
		t.Errorf("only %.2f of vpr loads carry dependences; chase broken", frac)
	}
}

func TestBurstsAreSequentialRuns(t *testing.T) {
	p, _ := ByName("art") // BurstLen 128, stream-coherent
	g, _ := NewGenerator(p, 0, 3)
	var ins Instr
	var run, maxRun int
	var last uint64
	for i := 0; i < 100000; i++ {
		g.Next(&ins)
		if ins.Kind == KindLoad || ins.Kind == KindStore {
			if ins.Addr == last+1 {
				run++
				if run > maxRun {
					maxRun = run
				}
			} else {
				run = 0
			}
			last = ins.Addr
		}
	}
	if maxRun < 32 {
		t.Errorf("longest sequential run %d, want long bursts (>= 32)", maxRun)
	}
}

func TestCodeLine(t *testing.T) {
	p, _ := ByName("crafty") // CodeKB 32
	g, _ := NewGenerator(p, 0, 1)
	a1, ok := g.CodeLine()
	if !ok {
		t.Fatal("crafty should model I-fetch")
	}
	seen := map[uint64]bool{a1: true}
	for i := 0; i < 10000; i++ {
		a, _ := g.CodeLine()
		seen[a] = true
	}
	want := 32 * 1024 / 64
	if len(seen) != want {
		t.Errorf("code footprint %d lines, want %d", len(seen), want)
	}
	// Benchmarks without CodeKB report no I-fetch stream.
	p2, _ := ByName("art")
	g2, _ := NewGenerator(p2, 0, 1)
	if _, ok := g2.CodeLine(); ok {
		t.Error("art should not model I-fetch")
	}
}

func TestProfileValidation(t *testing.T) {
	bad := []Profile{
		{Name: "x", MemFrac: -0.1, WorkingSetKB: 1024},
		{Name: "x", MemFrac: 1.5, WorkingSetKB: 1024},
		{Name: "x", MemFrac: 0.1, StoreFrac: 2, WorkingSetKB: 1024},
		{Name: "x", MemFrac: 0.1, SeqFrac: 0.8, ChaseFrac: 0.5, WorkingSetKB: 1024},
		{Name: "x", MemFrac: 0.1, WorkingSetKB: 8},
		{Name: "x", MemFrac: 0.1, SeqFrac: 0.5, Streams: 0, WorkingSetKB: 1024},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: accepted %+v", i, p)
		}
		if _, err := NewGenerator(p, 0, 1); err == nil {
			t.Errorf("case %d: NewGenerator accepted %+v", i, p)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindInt: "int", KindFp: "fp", KindLoad: "load", KindStore: "store", KindBranch: "branch",
	} {
		if k.String() != want {
			t.Errorf("%v", k)
		}
	}
}

// TestRNGUniformity is a sanity property: the embedded xorshift
// generator's intn output covers its range without gross bias.
func TestRNGUniformity(t *testing.T) {
	f := func(seed uint64) bool {
		r := newRNG(seed)
		counts := make([]int, 8)
		for i := 0; i < 8000; i++ {
			counts[r.intn(8)]++
		}
		for _, c := range counts {
			if c < 700 || c > 1300 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
