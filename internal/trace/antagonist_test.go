package trace

import (
	"bytes"
	"testing"

	"repro/internal/addrmap"
	"repro/internal/snapshot"
)

// memAddrs generates instructions until n memory accesses have been
// collected and returns their line addresses.
func memAddrs(t *testing.T, g *Generator, n int) []uint64 {
	t.Helper()
	var addrs []uint64
	var ins Instr
	for guard := 0; len(addrs) < n; guard++ {
		if guard > 100*n+1_000_000 {
			t.Fatalf("only %d memory accesses in %d instructions", len(addrs), guard)
		}
		g.Next(&ins)
		if ins.Kind == KindLoad || ins.Kind == KindStore {
			addrs = append(addrs, ins.Addr)
		}
	}
	return addrs
}

func TestAntagonistProfilesValidate(t *testing.T) {
	suite := map[string]bool{}
	for _, p := range Suite() {
		suite[p.Name] = true
	}
	for _, p := range Antagonists() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if suite[p.Name] {
			t.Errorf("%s: antagonist name collides with the SPEC suite", p.Name)
		}
		got, err := ByName(p.Name)
		if err != nil {
			t.Errorf("ByName(%s): %v", p.Name, err)
		} else if got.Name != p.Name {
			t.Errorf("ByName(%s) returned %s", p.Name, got.Name)
		}
	}
	if len(AntagonistNames()) != len(Antagonists()) {
		t.Error("AntagonistNames length mismatch")
	}
}

// TestAttackBankTargeting decodes attack addresses with the
// controller's actual XOR mapper and demands exact bank aim: every
// access lands in TargetBank, rowthrash alternates rows on every
// access, bankhammer changes row on every access, and neither pattern
// revisits a line within a cache-sized window.
func TestAttackBankTargeting(t *testing.T) {
	geom := DefaultGeom()
	mapper, err := addrmap.NewXOR(addrmap.Geometry{
		Channels:     geom.Channels,
		Ranks:        geom.Ranks,
		BanksPerRank: geom.Banks,
		RowsPerBank:  geom.Rows,
		ColsPerRow:   geom.Cols,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"rowthrash", "bankhammer"} {
		t.Run(name, func(t *testing.T) {
			p, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p.TargetBank = 3 // aim away from the default to prove targeting
			g, err := NewGenerator(p, 1, 7)
			if err != nil {
				t.Fatal(err)
			}
			addrs := memAddrs(t, g, 4096)
			seen := map[uint64]bool{}
			lastRow := -1
			rowSwitches := 0
			for i, a := range addrs {
				c := mapper.Decode(a)
				if c.Bank != p.TargetBank {
					t.Fatalf("access %d: bank %d, want %d (addr %#x row %d)", i, c.Bank, p.TargetBank, a, c.Row)
				}
				if c.Row != lastRow {
					rowSwitches++
				}
				lastRow = c.Row
				if seen[a] {
					t.Fatalf("access %d: line %#x reused within a cache-sized window", i, a)
				}
				seen[a] = true
			}
			// Both patterns must conflict constantly: rowthrash flips
			// row on every access by construction; bankhammer never
			// repeats a row back to back.
			if rowSwitches < len(addrs)-1 {
				t.Errorf("%d row switches in %d accesses; attack is not thrashing", rowSwitches, len(addrs))
			}
		})
	}
}

// TestAttackMultiChannelTargeting re-aims the encoders at a two-channel
// geometry and checks both that the bank aim survives and that the
// pressure rotates across both channels.
func TestAttackMultiChannelTargeting(t *testing.T) {
	geom := DefaultGeom()
	geom.Channels = 2
	mapper, err := addrmap.NewXOR(addrmap.Geometry{
		Channels:     geom.Channels,
		Ranks:        geom.Ranks,
		BanksPerRank: geom.Banks,
		RowsPerBank:  geom.Rows,
		ColsPerRow:   geom.Cols,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ByName("bankhammer")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGeneratorGeom(p, 2, 5, geom)
	if err != nil {
		t.Fatal(err)
	}
	channels := map[int]int{}
	for i, a := range memAddrs(t, g, 2048) {
		c := mapper.Decode(a)
		if c.Bank != p.TargetBank {
			t.Fatalf("access %d: bank %d, want %d", i, c.Bank, p.TargetBank)
		}
		channels[c.Channel]++
	}
	if len(channels) != 2 {
		t.Fatalf("attack touched channels %v, want both", channels)
	}
}

// TestAttackGeometryErrors pins the construction-time validation.
func TestAttackGeometryErrors(t *testing.T) {
	p, err := ByName("bankhammer")
	if err != nil {
		t.Fatal(err)
	}
	p.TargetBank = 8 // outside the default 8-bank geometry
	if _, err := NewGenerator(p, 0, 1); err == nil {
		t.Error("out-of-range TargetBank accepted")
	}
	p.TargetBank = 0
	if _, err := NewGeneratorGeom(p, 0, 1, Geom{Channels: 3, Ranks: 1, Banks: 8, Rows: 16384, Cols: 128}); err == nil {
		t.Error("non-power-of-two channel count accepted")
	}
}

// TestAntagonistDeterminism: identical (profile, thread, seed) yields
// bit-identical streams; a different seed diverges.
func TestAntagonistDeterminism(t *testing.T) {
	for _, name := range AntagonistNames() {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := NewGenerator(p, 0, 11)
		b, _ := NewGenerator(p, 0, 11)
		c, _ := NewGenerator(p, 0, 12)
		var ia, ib, ic Instr
		diverged := false
		for i := 0; i < 50_000; i++ {
			a.Next(&ia)
			b.Next(&ib)
			c.Next(&ic)
			if ia != ib {
				t.Fatalf("%s: same seed diverged at instruction %d", name, i)
			}
			if ia != ic {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("%s: seed change did not perturb the stream", name)
		}
	}
}

// TestDiurnalEnvelope counts memory accesses per phase of the diurnal
// profile's period: the duty window must carry almost all of the
// traffic, and the envelope must repeat across periods.
func TestDiurnalEnvelope(t *testing.T) {
	p, err := ByName("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(p, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	periods := 4
	high := make([]int, periods)
	low := make([]int, periods)
	duty := p.PhasePeriod * uint64(p.PhaseDutyPct) / 100
	var ins Instr
	for i := uint64(0); i < p.PhasePeriod*uint64(periods); i++ {
		g.Next(&ins)
		if ins.Kind != KindLoad && ins.Kind != KindStore {
			continue
		}
		period := int(i / p.PhasePeriod)
		if i%p.PhasePeriod < duty {
			high[period]++
		} else {
			low[period]++
		}
	}
	for k := 0; k < periods; k++ {
		// The duty window covers 40% of the period at MemFrac 0.50; the
		// off phase runs at 0.005. Demand a 20x intensity contrast
		// (the configured contrast is 100x).
		hiRate := float64(high[k]) / float64(duty)
		loRate := float64(low[k]) / float64(p.PhasePeriod-duty)
		if hiRate < 20*loRate {
			t.Errorf("period %d: high-phase rate %.4f not >> low-phase rate %.4f", k, hiRate, loRate)
		}
		if hiRate < 0.3 {
			t.Errorf("period %d: high-phase rate %.4f too low for MemFrac %.2f", k, hiRate, p.MemFrac)
		}
	}
}

// TestAntagonistSnapshotMidStream checkpoints every antagonist
// generator mid-stream — for the diurnal profile, inside the duty
// burst — and demands the restored generator continue bit-identically.
func TestAntagonistSnapshotMidStream(t *testing.T) {
	for _, name := range AntagonistNames() {
		t.Run(name, func(t *testing.T) {
			p, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			g, err := NewGenerator(p, 1, 9)
			if err != nil {
				t.Fatal(err)
			}
			// An odd cutover instruction count, inside the diurnal
			// profile's duty burst (10_007 < 24_000 of the 60_000
			// period) so the restored envelope phase is exercised too.
			var ins Instr
			for i := 0; i < 10_007; i++ {
				g.Next(&ins)
			}
			var buf bytes.Buffer
			w := snapshot.NewWriter(&buf)
			g.SaveState(w)
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			h, err := NewGenerator(p, 1, 9)
			if err != nil {
				t.Fatal(err)
			}
			r, err := snapshot.NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if err := h.LoadState(r); err != nil {
				t.Fatal(err)
			}
			var a, b Instr
			for i := 0; i < 200_000; i++ {
				g.Next(&a)
				h.Next(&b)
				if a != b {
					t.Fatalf("restored stream diverged at instruction %d: %+v vs %+v", i, a, b)
				}
			}
		})
	}
}
