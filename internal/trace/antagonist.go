package trace

import "fmt"

// Adversarial and heterogeneous agents. The paper's QoS claim — a
// thread with share phi performs at least as well as on a private
// phi-fraction memory system *regardless of what the other threads
// do* — is only testable against workloads engineered to break it.
// This file defines those workloads: targeted antagonist address
// patterns that concentrate fire on a victim's banks and rows (the
// streak-y row-hit hogs that motivate Blacklisting-style schedulers),
// a latency-tolerant accelerator-style streaming agent in the
// heterogeneous-systems tradition, and a diurnal multi-tenant arrival
// envelope. The isolation property suite (internal/sim) points the
// interference-attribution cube at them and pins the paper's Section 5
// bound as a regression test.

// AgentKind selects the core model that executes a profile.
type AgentKind uint8

const (
	// AgentOoO is the default latency-sensitive out-of-order core
	// (the paper's Table 5 processor).
	AgentOoO AgentKind = iota
	// AgentStream is a latency-tolerant accelerator-style core: deep
	// request queues, wide dispatch, and no sensitivity to individual
	// load latency (cpu.StreamConfig / cache.StreamHierarchyConfig).
	AgentStream
)

func (k AgentKind) String() string {
	switch k {
	case AgentOoO:
		return "ooo"
	case AgentStream:
		return "stream"
	}
	return fmt.Sprintf("agent(%d)", uint8(k))
}

// AttackKind selects a targeted antagonist address pattern. A non-zero
// Attack replaces the profile's mixture-model address selection with a
// deterministic geometry-aware walk; instruction mix, burst shaping,
// and memory intensity still follow the profile's other fields.
type AttackKind uint8

const (
	// AttackNone is the ordinary mixture model.
	AttackNone AttackKind = iota
	// AttackRowThrash alternates between two rows of the target bank
	// column by column, so every access closes the row the previous
	// one opened: a worst-case row-buffer conflict stream inside the
	// victim's bank.
	AttackRowThrash
	// AttackBankHammer walks a fresh row of the target bank on every
	// access: the bank serializes on its row-cycle time and the
	// victim's requests to it queue behind the attacker's.
	AttackBankHammer
	// AttackBusHog streams consecutive lines with maximal burst
	// length: near-perfect row locality across every bank and channel,
	// saturating the data bus (and FR-FCFS's row-hit priority).
	AttackBusHog
)

func (k AttackKind) String() string {
	switch k {
	case AttackNone:
		return "none"
	case AttackRowThrash:
		return "rowthrash"
	case AttackBankHammer:
		return "bankhammer"
	case AttackBusHog:
		return "bushog"
	}
	return fmt.Sprintf("attack(%d)", uint8(k))
}

// Geom mirrors the DRAM address geometry (addrmap.Geometry) so attack
// generators can construct line addresses with known coordinates
// without importing the mapper. All dimensions must be powers of two.
type Geom struct {
	Channels, Ranks, Banks, Rows, Cols int
}

// DefaultGeom is the paper's Table 5 memory system shape: one channel,
// one rank, eight banks, 16384 rows of 128 cache lines.
func DefaultGeom() Geom {
	return Geom{Channels: 1, Ranks: 1, Banks: 8, Rows: 16384, Cols: 128}
}

func (g Geom) validate() error {
	for _, d := range [...]struct {
		name string
		v    int
	}{
		{"channels", g.Channels},
		{"ranks", g.Ranks},
		{"banks", g.Banks},
		{"rows", g.Rows},
		{"cols", g.Cols},
	} {
		if d.v < 1 || d.v&(d.v-1) != 0 {
			return fmt.Errorf("trace: geometry %s must be a positive power of two, got %d", d.name, d.v)
		}
	}
	return nil
}

// Antagonists returns the adversarial and heterogeneous agent
// profiles. They resolve through ByName like the SPEC suite but are
// deliberately kept out of Suite(), Names(), and the Figure 4
// calibration ordering.
func Antagonists() []Profile {
	return []Profile{
		{
			// Accelerator-style streaming agent: bandwidth-hungry,
			// latency-tolerant (AgentStream selects the deep-queue core
			// model), eight concurrent streams over a 16MB footprint.
			Name: "stream", Agent: AgentStream,
			MemFrac: 0.40, StoreFrac: 0.30,
			SeqFrac: 0.95, ChaseFrac: 0, Streams: 8, BurstLen: 64,
			WorkingSetKB: 16384, FpFrac: 0.3, DepFrac: 0.05,
			SoloUtilTarget: 0.90,
		},
		{
			// Row-buffer thrasher aimed at bank 0: every access forces
			// the bank to close the row its predecessor opened.
			Name: "rowthrash", Attack: AttackRowThrash, TargetBank: 0,
			MemFrac: 0.45, StoreFrac: 0, BurstLen: 32,
			WorkingSetKB: 4096, FpFrac: 0, DepFrac: 0.05,
			SoloUtilTarget: 0.30,
		},
		{
			// Bank-conflict attacker aimed at bank 0: a fresh row every
			// access, serializing the bank on tRC.
			Name: "bankhammer", Attack: AttackBankHammer, TargetBank: 0,
			MemFrac: 0.45, StoreFrac: 0, BurstLen: 32,
			WorkingSetKB: 4096, FpFrac: 0, DepFrac: 0.05,
			SoloUtilTarget: 0.30,
		},
		{
			// Bus hog: maximal-burst-length streaming, the pattern
			// FR-FCFS's row-hit priority rewards the most.
			Name: "bushog", Attack: AttackBusHog,
			MemFrac: 0.92, StoreFrac: 0.35, BurstLen: 256,
			WorkingSetKB: 32768, FpFrac: 0, DepFrac: 0.05,
			SoloUtilTarget: 0.95,
		},
		{
			// Diurnal multi-tenant streamer: 40% of every 60k-instruction
			// period at full intensity, near-idle in between. Models the
			// bursty arrival process of a consolidated tenant.
			Name: "diurnal", Agent: AgentStream,
			PhasePeriod: 60_000, PhaseDutyPct: 40, PhaseLowMemFrac: 0.005,
			MemFrac: 0.50, StoreFrac: 0.25,
			SeqFrac: 0.90, ChaseFrac: 0, Streams: 4, BurstLen: 48,
			WorkingSetKB: 16384, FpFrac: 0.3, DepFrac: 0.05,
			SoloUtilTarget: 0.50,
		},
	}
}

// AntagonistNames returns the antagonist profile names.
func AntagonistNames() []string {
	as := Antagonists()
	out := make([]string, len(as))
	for i, p := range as {
		out[i] = p.Name
	}
	return out
}

// initAttack precomputes the attack encoder for the generator's thread
// region under the geometry. The encoder builds linear line addresses
// bit-compatible with addrmap.Linear (row | rank | bank | col |
// channel) and pre-compensates the controller's default XOR bank
// permutation (bank ^= row & bankMask), so the decoded physical bank is
// exactly the profile's TargetBank. A non-default linear mapper
// scrambles the targeting (the pattern degrades into a multi-bank
// conflict stream) but never breaks determinism.
func (g *Generator) initAttack(geom Geom) error {
	if err := geom.validate(); err != nil {
		return err
	}
	p := g.p
	if p.Attack == AttackNone {
		return nil
	}
	if p.TargetBank < 0 || p.TargetBank >= geom.Ranks*geom.Banks {
		return fmt.Errorf("trace: %s: target bank %d outside %d banks", p.Name, p.TargetBank, geom.Ranks*geom.Banks)
	}
	g.atkChanBits = log2u(geom.Channels)
	g.atkColBits = log2u(geom.Cols)
	g.atkBankBits = log2u(geom.Banks)
	g.atkRankBits = log2u(geom.Ranks)
	g.atkBankMask = uint64(geom.Banks - 1)
	g.atkChans = uint64(geom.Channels)
	g.atkCols = uint64(geom.Cols)
	g.atkBank = uint64(p.TargetBank) & g.atkBankMask

	// The thread's private row stripe: regionLines line addresses span
	// regionLines / (channels*ranks*banks*cols) consecutive rows.
	stripe := uint64(geom.Channels) * uint64(geom.Ranks) * uint64(geom.Banks) * uint64(geom.Cols)
	rowsPerThread := uint64(regionLines) / stripe
	if rowsPerThread < 2 {
		rowsPerThread = 2
	}
	rows := uint64(p.AttackRows)
	if rows == 0 || rows > rowsPerThread {
		rows = rowsPerThread
	}
	if rows > uint64(geom.Rows) {
		rows = uint64(geom.Rows)
	}
	if rows < 2 {
		rows = 2
	}
	g.atkRows = rows
	g.atkRowBase = (g.base / stripe) % uint64(geom.Rows)
	return nil
}

func log2u(v int) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// atkEncode builds the linear line address for (row, col, channel) in
// the target bank, pre-compensating the XOR bank permutation.
func (g *Generator) atkEncode(row, col, ch uint64) uint64 {
	bank := (g.atkBank ^ (row & g.atkBankMask)) & g.atkBankMask
	a := row
	a = a << g.atkRankBits // rank 0
	a = a<<g.atkBankBits | bank
	a = a<<g.atkColBits | col
	a = a<<g.atkChanBits | ch&(g.atkChans-1)
	return a
}

// attackAddr emits the next line address of the profile's attack
// pattern. Every pattern is a pure function of the monotone attackStep
// cursor (checkpointed alongside the rng), visits each line at most
// once per full cycle of at least atkRows*cols lines — far beyond the
// cache hierarchy, so the stream always reaches DRAM — and rotates
// across channels so multi-channel systems see the same per-bank
// pressure.
func (g *Generator) attackAddr() uint64 {
	k := g.attackStep
	g.attackStep++
	switch g.p.Attack {
	case AttackRowThrash:
		// Column-interleaved alternation between the two rows of the
		// current pair: A0 B0 A1 B1 ... A127 B127, then the next pair.
		ch := k % g.atkChans
		j := k / g.atkChans
		episode := 2 * g.atkCols
		within := j % episode
		col := within / 2
		pair := (j / episode) % (g.atkRows / 2)
		row := g.atkRowBase + 2*pair + within&1
		return g.atkEncode(row, col, ch)
	case AttackBankHammer:
		// A fresh row on every access; the column advances once per
		// full row sweep so lines are never reused within the sweep.
		ch := k % g.atkChans
		j := k / g.atkChans
		row := g.atkRowBase + j%g.atkRows
		col := (j / g.atkRows) % g.atkCols
		return g.atkEncode(row, col, ch)
	default: // AttackBusHog
		// Plain sequential walk over the working set: consecutive line
		// addresses interleave channels and columns first, giving
		// maximal-burst-length row hits that round-robin every bank.
		return g.base + k%uint64(g.wsLines)
	}
}
