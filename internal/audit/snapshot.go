package audit

import (
	"sort"

	"repro/internal/core"
	"repro/internal/snapshot"
)

// maxHistWhat caps decoded history-entry labels (they are short
// command mnemonics like "ACT" or "accept").
const maxHistWhat = 64

// SaveState serializes the auditor: the shadow device model, the
// conservation/starvation ledgers, the frozen-key map, and the command
// history ring. The pending mirror is not written — it aliases the
// controller's live request pointers and is rebuilt from the restored
// queues on load. preBankR/preChanR are transient within a single
// command issue and checkpoints land between cycles, so they are not
// written either.
func (a *Auditor) SaveState(w *snapshot.Writer) {
	w.Section("audit.Auditor")
	w.Int(len(a.banks))
	for i := range a.banks {
		b := &a.banks[i]
		w.Bool(b.open)
		w.Int(b.row)
		w.I64(b.lastAct)
		w.I64(b.lastRead)
		w.I64(b.lastWrite)
		w.I64(b.lastPre)
		w.I64(b.writeEnd)
	}
	w.Int(len(a.chans))
	for i := range a.chans {
		sc := &a.chans[i]
		w.I64(sc.lastCAS)
		w.I64(sc.lastWriteEnd)
		w.I64(sc.busFreeAt)
		w.I64(sc.refreshUntil)
		w.I64(sc.lastRefresh)
		w.I64(sc.lastCmd)
		w.I64s(sc.rankLastAct)
		w.Int(len(sc.rankActHist))
		for _, h := range sc.rankActHist {
			for _, t := range h {
				w.I64(t)
			}
		}
		w.Ints(sc.rankActN)
	}
	w.U64(a.lastID)
	w.I64(a.lastArrival)
	// Outstanding-request ledger, in FIFO order. Entries are (id, done);
	// the request pointer of a live entry is re-linked by ID on load.
	live := a.fifo[a.head:]
	w.Len(len(live))
	for _, id := range live {
		e := a.out[id]
		w.U64(id)
		w.Bool(e == nil || e.done)
	}
	w.Int(len(a.acc))
	for i := range a.acc {
		t := &a.acc[i]
		w.I64(t.readsAcc)
		w.I64(t.readsDone)
		w.I64(t.writesAcc)
		w.I64(t.writesDone)
	}
	ids := make([]uint64, 0, len(a.frozen))
	for id := range a.frozen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Len(len(ids))
	for _, id := range ids {
		w.U64(id)
		w.I64(a.frozen[id])
	}
	// Command history, oldest-first so the restored ring re-serializes
	// identically regardless of where the original wrap point was.
	w.Int(len(a.hist))
	w.Int(a.histLen)
	for i := 0; i < a.histLen; i++ {
		e := &a.hist[(a.histNext-a.histLen+i+2*len(a.hist))%len(a.hist)]
		w.I64(e.cycle)
		w.String(e.what)
		w.Int(e.bank)
		w.Int(e.row)
		w.Int(e.thread)
		w.U64(e.id)
		w.I64(e.key)
	}
	w.I64(a.cmds)
	w.I64(a.maxInvWindow)
	// Interval-policy tracking. Present exactly when the audited policy
	// provides the corresponding contract surface; the restore side
	// derives presence from the same policy (the controller refuses
	// cross-policy restores), so the layouts always agree.
	if a.bliss != nil {
		w.Bools(a.blShadow)
	}
	if a.slow != nil {
		w.Int(a.boostShadow)
	}
	if a.budget != nil {
		w.I64(a.winStart)
		w.I64s(a.casCount)
	}
}

// LoadState restores an auditor saved by SaveState. reqByID maps every
// live request (pending or in flight) by ID so the outstanding ledger
// can re-link its pointers; pending is the controller's restored
// per-bank queues, which the auditor mirrors.
func (a *Auditor) LoadState(r *snapshot.Reader, reqByID map[uint64]*core.Request, pending [][]*core.Request) error {
	r.Section("audit.Auditor")
	nb := r.Int()
	if r.Err() == nil && nb != len(a.banks) {
		r.Fail("audit.Auditor: %d banks, auditor has %d", nb, len(a.banks))
	}
	if err := r.Err(); err != nil {
		return err
	}
	banks := make([]shBank, nb)
	for i := range banks {
		b := &banks[i]
		b.open = r.Bool()
		b.row = r.Int()
		b.lastAct = r.I64()
		b.lastRead = r.I64()
		b.lastWrite = r.I64()
		b.lastPre = r.I64()
		b.writeEnd = r.I64()
	}
	nc := r.Int()
	if r.Err() == nil && nc != len(a.chans) {
		r.Fail("audit.Auditor: %d channels, auditor has %d", nc, len(a.chans))
	}
	if err := r.Err(); err != nil {
		return err
	}
	chans := make([]shChan, nc)
	for i := range chans {
		sc := &chans[i]
		ref := &a.chans[i]
		sc.lastCAS = r.I64()
		sc.lastWriteEnd = r.I64()
		sc.busFreeAt = r.I64()
		sc.refreshUntil = r.I64()
		sc.lastRefresh = r.I64()
		sc.lastCmd = r.I64()
		sc.rankLastAct = r.I64s(len(ref.rankLastAct))
		nr := r.Int()
		if r.Err() == nil && (len(sc.rankLastAct) != len(ref.rankLastAct) || nr != len(ref.rankActHist)) {
			r.Fail("audit.Auditor: channel %d rank state mismatch", i)
		}
		if err := r.Err(); err != nil {
			return err
		}
		sc.rankActHist = make([][4]int64, nr)
		for j := range sc.rankActHist {
			for k := range sc.rankActHist[j] {
				sc.rankActHist[j][k] = r.I64()
			}
		}
		sc.rankActN = r.Ints(len(ref.rankActN))
		if r.Err() == nil && len(sc.rankActN) != len(ref.rankActN) {
			r.Fail("audit.Auditor: channel %d rankActN mismatch", i)
		}
		if err := r.Err(); err != nil {
			return err
		}
	}
	lastID := r.U64()
	lastArrival := r.I64()
	nOut := r.Len(snapshot.MaxSlice)
	fifo := make([]uint64, nOut)
	out := make(map[uint64]*outReq, nOut)
	for i := 0; i < nOut; i++ {
		id := r.U64()
		done := r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		if _, dup := out[id]; dup {
			r.Fail("audit.Auditor: duplicate outstanding id %d", id)
			return r.Err()
		}
		req := reqByID[id]
		if !done && req == nil {
			r.Fail("audit.Auditor: outstanding request %d not in any restored queue", id)
			return r.Err()
		}
		fifo[i] = id
		out[id] = &outReq{r: req, done: done}
	}
	nAcc := r.Int()
	if r.Err() == nil && nAcc != len(a.acc) {
		r.Fail("audit.Auditor: %d threads, auditor has %d", nAcc, len(a.acc))
	}
	if err := r.Err(); err != nil {
		return err
	}
	acc := make([]threadAcc, nAcc)
	for i := range acc {
		t := &acc[i]
		t.readsAcc = r.I64()
		t.readsDone = r.I64()
		t.writesAcc = r.I64()
		t.writesDone = r.I64()
	}
	nFrozen := r.Len(snapshot.MaxSlice)
	frozen := make(map[uint64]int64, nFrozen)
	for i := 0; i < nFrozen && r.Err() == nil; i++ {
		id := r.U64()
		frozen[id] = r.I64()
	}
	histCap := r.Int()
	histLen := r.Int()
	if r.Err() == nil && histCap != len(a.hist) {
		r.Fail("audit.Auditor: history of %d entries, auditor has %d", histCap, len(a.hist))
	}
	if r.Err() == nil && (histLen < 0 || histLen > histCap) {
		r.Fail("audit.Auditor: history length %d exceeds capacity %d", histLen, histCap)
	}
	if err := r.Err(); err != nil {
		return err
	}
	hist := make([]histEntry, histCap)
	for i := 0; i < histLen; i++ {
		e := &hist[i]
		e.cycle = r.I64()
		e.what = r.String(maxHistWhat)
		e.bank = r.Int()
		e.row = r.Int()
		e.thread = r.Int()
		e.id = r.U64()
		e.key = r.I64()
	}
	cmds := r.I64()
	maxInvWindow := r.I64()
	var blShadow []bool
	boostShadow := a.boostShadow
	var winStart int64
	var casCount []int64
	if a.bliss != nil {
		blShadow = r.Bools(len(a.blShadow))
		if r.Err() == nil && len(blShadow) != len(a.blShadow) {
			r.Fail("audit.Auditor: blacklist shadow of %d threads, auditor has %d", len(blShadow), len(a.blShadow))
		}
	}
	if a.slow != nil {
		boostShadow = r.Int()
		if r.Err() == nil && (boostShadow < -1 || boostShadow >= len(a.acc)) {
			r.Fail("audit.Auditor: boost shadow %d out of range for %d threads", boostShadow, len(a.acc))
		}
	}
	if a.budget != nil {
		winStart = r.I64()
		casCount = r.I64s(len(a.casCount))
		if r.Err() == nil && len(casCount) != len(a.casCount) {
			r.Fail("audit.Auditor: CAS ledger of %d slots, auditor has %d", len(casCount), len(a.casCount))
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	copy(a.banks, banks)
	copy(a.chans, chans)
	a.lastID = lastID
	a.lastArrival = lastArrival
	a.out = out
	a.fifo = fifo
	a.head = 0
	copy(a.acc, acc)
	a.frozen = frozen
	a.hist = hist
	a.histLen = histLen
	a.histNext = 0
	if len(hist) > 0 {
		a.histNext = histLen % len(hist)
	}
	a.cmds = cmds
	a.maxInvWindow = maxInvWindow
	copy(a.blShadow, blShadow)
	a.boostShadow = boostShadow
	a.winStart = winStart
	copy(a.casCount, casCount)
	a.preBankR, a.preChanR = 0, 0
	// The pending mirror must alias the controller's live pointers:
	// the auditor's minimum-key and membership checks compare by
	// pointer identity.
	for i := range a.pend {
		a.pend[i] = a.pend[i][:0]
		if i < len(pending) {
			a.pend[i] = append(a.pend[i], pending[i]...)
		}
	}
	if len(pending) != len(a.pend) {
		r.Fail("audit.Auditor: %d pending banks, auditor has %d", len(pending), len(a.pend))
		return r.Err()
	}
	return nil
}
