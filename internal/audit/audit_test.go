package audit_test

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/dram"
)

func twoShares() []core.Share { return []core.Share{{Num: 1, Den: 2}, {Num: 1, Den: 2}} }

// newAuditor builds an auditor over a real single-channel device model;
// mutate may adjust the target before construction.
func newAuditor(t *testing.T, pol core.Policy, cfg audit.Config, mutate func(*audit.Target)) (*audit.Auditor, *dram.Channel) {
	t.Helper()
	dcfg := dram.DefaultConfig()
	ch, err := dram.NewChannel(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt := audit.Target{
		Timing:          dcfg.Timing,
		Channels:        1,
		Ranks:           1,
		BanksPerRank:    8,
		Threads:         2,
		ReadEntries:     16,
		WriteEntries:    8,
		RefreshDisabled: true,
		Policy:          pol,
		Chans:           []*dram.Channel{ch},
	}
	if mutate != nil {
		mutate(&tgt)
	}
	return audit.New(cfg, tgt), ch
}

// accept registers a request with the auditor the way the controller
// stamps one.
func accept(a *audit.Auditor, id uint64, thread, bank, row int, now int64) *core.Request {
	r := &core.Request{
		ID: id, Thread: thread, Arrival: now, ArrivalReal: now,
		Bank: bank, Row: row, GlobalBank: bank,
	}
	a.OnAccept(r, now)
	return r
}

// bankState mirrors the controller's Table 3 classification against the
// live device.
func bankState(ch *dram.Channel, r *core.Request) core.BankState {
	row, open := ch.BankOpen(r.GlobalBank)
	switch {
	case !open:
		return core.BankClosed
	case row == r.Row:
		return core.BankHit
	default:
		return core.BankConflict
	}
}

// issueCmd emulates the controller's issue sequence: audit BeforeIssue,
// device issue, policy update, audit AfterIssue. It returns the read's
// data-burst end for KindRead.
func issueCmd(a *audit.Auditor, ch *dram.Channel, pol core.Policy, kind dram.Kind, r *core.Request, now int64) int64 {
	cmd := audit.Cmd{
		Kind: kind, FlatBank: r.GlobalBank, Row: r.Row,
		Key: pol.Key(r, bankState(ch, r)), Req: r,
	}
	a.BeforeIssue(cmd, now)
	end := ch.Issue(kind, r.GlobalBank, r.Row, now)
	pol.OnIssue(r, core.CmdKind(kind))
	r.Issued++
	a.AfterIssue(cmd, now)
	return end
}

// expectViolation asserts fn panics with a *Violation mentioning substr.
func expectViolation(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatalf("no violation (want one mentioning %q)", substr)
		}
		viol, ok := v.(*audit.Violation)
		if !ok {
			panic(v)
		}
		if !strings.Contains(viol.Msg, substr) {
			t.Fatalf("violation %q does not mention %q", viol.Msg, substr)
		}
		if viol.Error() == "" || viol.Dump == "" {
			t.Error("violation carries no history dump")
		}
	}()
	fn()
}

func TestAuditCleanReadLifecycle(t *testing.T) {
	pol := core.NewFRFCFS()
	a, ch := newAuditor(t, pol, audit.Config{}, nil)
	r := accept(a, 1, 0, 0, 3, 0)
	issueCmd(a, ch, pol, dram.KindActivate, r, 0)
	end := issueCmd(a, ch, pol, dram.KindRead, r, 5)
	a.OnReadDone(r, end, end)
	a.Finish(end)
	if a.Commands() != 2 {
		t.Fatalf("Commands = %d, want 2", a.Commands())
	}
}

func TestAuditCatchesTimingViolation(t *testing.T) {
	pol := core.NewFRFCFS()
	a, ch := newAuditor(t, pol, audit.Config{}, nil)
	r := accept(a, 1, 0, 0, 3, 0)
	issueCmd(a, ch, pol, dram.KindActivate, r, 0)
	// tRCD is 5: a read at cycle 2 violates it.
	expectViolation(t, "violates timing", func() {
		issueCmd(a, ch, pol, dram.KindRead, r, 2)
	})
}

func TestAuditCatchesNonMonotoneID(t *testing.T) {
	a, _ := newAuditor(t, core.NewFRFCFS(), audit.Config{}, nil)
	accept(a, 1, 0, 0, 0, 0)
	expectViolation(t, "not monotone", func() {
		accept(a, 3, 0, 1, 0, 1)
	})
}

func TestAuditCatchesStarvation(t *testing.T) {
	a, _ := newAuditor(t, core.NewFRFCFS(), audit.Config{MaxAge: 100}, nil)
	accept(a, 1, 0, 0, 0, 0)
	expectViolation(t, "starved", func() {
		a.OnTick(200)
	})
}

func TestAuditCatchesOccupancyOverflow(t *testing.T) {
	a, _ := newAuditor(t, core.NewFRFCFS(), audit.Config{}, func(tg *audit.Target) {
		tg.ReadEntries = 1
	})
	accept(a, 1, 0, 0, 0, 0)
	expectViolation(t, "occupancy", func() {
		accept(a, 2, 0, 1, 0, 1)
	})
}

func TestAuditCatchesConservationMismatch(t *testing.T) {
	pol := core.NewFRFCFS()
	a, ch := newAuditor(t, pol, audit.Config{}, func(tg *audit.Target) {
		// A controller whose accounting always reads zero.
		tg.Totals = func(int) audit.Totals { return audit.Totals{} }
	})
	r := accept(a, 1, 0, 0, 3, 0)
	issueCmd(a, ch, pol, dram.KindActivate, r, 0)
	end := issueCmd(a, ch, pol, dram.KindRead, r, 5)
	expectViolation(t, "accounting diverged", func() {
		a.OnReadDone(r, end, end)
	})
}

func TestAuditCatchesFrozenKeyChange(t *testing.T) {
	pol := core.NewFRVFTF(twoShares(), 8, dram.DDR2800())
	a, ch := newAuditor(t, pol, audit.Config{}, nil)
	r := accept(a, 1, 0, 0, 3, 0)
	issueCmd(a, ch, pol, dram.KindActivate, r, 0)
	if !r.KeyFrozen {
		t.Fatal("first command did not freeze the key")
	}
	// Simulate a corrupted frozen key: the stored value drifts after the
	// first command issued.
	r.Key += 12345
	expectViolation(t, "frozen key", func() {
		issueCmd(a, ch, pol, dram.KindRead, r, 5)
	})
}

func TestAuditCatchesMinKeyViolation(t *testing.T) {
	pol := core.NewFCFS() // RuleStrict: smallest arrival must win
	a, ch := newAuditor(t, pol, audit.Config{}, nil)
	accept(a, 1, 0, 0, 3, 0)
	r2 := accept(a, 2, 1, 0, 7, 1)
	expectViolation(t, "minimum-key", func() {
		issueCmd(a, ch, pol, dram.KindActivate, r2, 2)
	})
}

func TestAuditCatchesRefreshWithOpenBank(t *testing.T) {
	pol := core.NewFRFCFS()
	a, ch := newAuditor(t, pol, audit.Config{}, nil)
	r := accept(a, 1, 0, 0, 3, 0)
	issueCmd(a, ch, pol, dram.KindActivate, r, 0)
	expectViolation(t, "open", func() {
		a.OnRefresh(0, 10)
	})
}

func TestAuditCatchesOverdueRefresh(t *testing.T) {
	a, _ := newAuditor(t, core.NewFRFCFS(), audit.Config{}, func(tg *audit.Target) {
		tg.RefreshDisabled = false
	})
	tref := int64(dram.DDR2800().TREF)
	a.OnTick(tref) // within slack: fine
	expectViolation(t, "refresh overdue", func() {
		a.OnTick(tref + 26_000)
	})
}

func TestAuditCatchesWrongNextCommand(t *testing.T) {
	pol := core.NewFRFCFS()
	a, ch := newAuditor(t, pol, audit.Config{}, nil)
	r := accept(a, 1, 0, 0, 3, 0)
	// The bank is closed: a read is illegal at the device level.
	expectViolation(t, "shadow", func() {
		issueCmd(a, ch, pol, dram.KindRead, r, 0)
	})
}

func TestAuditCatchesWrongServiceStep(t *testing.T) {
	pol := core.NewFRFCFS()
	a, ch := newAuditor(t, pol, audit.Config{}, nil)
	r := accept(a, 1, 0, 0, 3, 0)
	issueCmd(a, ch, pol, dram.KindActivate, r, 0)
	// Row 3 is open for this request: it needs its CAS, not a precharge
	// (which is device-legal at tRAS but wrong for the request).
	expectViolation(t, "needs", func() {
		issueCmd(a, ch, pol, dram.KindPrecharge, r, 18)
	})
}

// fakeInterval is a scriptable interval policy: it exposes the full
// tickerProvider/blissProvider/slowdownProvider/budgetProvider surface
// with directly settable state, so tests can plant contract faults the
// real policies cannot produce.
type fakeInterval struct {
	last, next, iv int64
	black          [2]bool
	boost          int
	budget         int64
	quota          int64
}

func (f *fakeInterval) Name() string                                { return "FAKE-INTERVAL" }
func (f *fakeInterval) Key(r *core.Request, _ core.BankState) int64 { return r.Arrival }
func (f *fakeInterval) OnIssue(*core.Request, core.CmdKind)         {}
func (f *fakeInterval) BankRule() (core.BankRule, int64)            { return core.RuleFirstReady, 0 }
func (f *fakeInterval) LastTickAt() int64                           { return f.last }
func (f *fakeInterval) NextTickAt() int64                           { return f.next }
func (f *fakeInterval) TickInterval() int64                         { return f.iv }
func (f *fakeInterval) Blacklisted(t int) bool                      { return f.black[t] }
func (f *fakeInterval) BoostedThread() int                          { return f.boost }
func (f *fakeInterval) BankBudget(_, _ int) int64                   { return f.budget }
func (f *fakeInterval) BudgetQuota() int64                          { return f.quota }

func newFakeInterval() *fakeInterval {
	return &fakeInterval{next: 1_000, iv: 1_000, boost: -1, budget: 8, quota: 8}
}

func TestAuditCatchesOutOfBandTick(t *testing.T) {
	pol := core.NewBLISS(2)
	a, _ := newAuditor(t, pol, audit.Config{}, nil)
	a.OnTick(10) // clean mid-window
	// An out-of-band Tick (the controller fired mid-window): the window
	// bookkeeping no longer satisfies next = last + interval.
	pol.Tick(500)
	expectViolation(t, "window inconsistent", func() { a.OnTick(600) })
}

func TestAuditCatchesMissedTickBoundary(t *testing.T) {
	pol := core.NewBLISS(2) // 1k-cycle window
	a, _ := newAuditor(t, pol, audit.Config{}, nil)
	expectViolation(t, "no Tick fired", func() { a.OnTick(1_500) })
}

func TestAuditCatchesBlacklistFlipOutsideTick(t *testing.T) {
	f := newFakeInterval()
	a, _ := newAuditor(t, f, audit.Config{}, nil)
	a.OnTick(10)
	// A flip observed on the boundary cycle its tick fired is legal...
	f.last, f.next = 1_000, 2_000
	f.black[0] = true
	a.OnTick(1_000)
	// ...the same flip mid-window is a violation.
	f.black[1] = true
	expectViolation(t, "blacklist bit flipped", func() { a.OnTick(1_200) })
}

func TestAuditCatchesBoostMoveOutsideTick(t *testing.T) {
	f := newFakeInterval()
	a, _ := newAuditor(t, f, audit.Config{}, nil)
	f.last, f.next = 1_000, 2_000
	f.boost = 1
	a.OnTick(1_000) // boundary retarget: legal
	f.boost = 0
	expectViolation(t, "boost target moved", func() { a.OnTick(1_500) })
}

func TestAuditCatchesBudgetAccountingDivergence(t *testing.T) {
	f := newFakeInterval()
	a, ch := newAuditor(t, f, audit.Config{}, nil)
	r := accept(a, 1, 0, 0, 3, 0)
	issueCmd(a, ch, f, dram.KindActivate, r, 0)
	// The fake never spends budget, so after the CAS the auditor's own
	// ledger expects quota - 1 and the reported quota is a divergence.
	expectViolation(t, "budget accounting diverged", func() {
		issueCmd(a, ch, f, dram.KindRead, r, 5)
	})
}

func TestAuditBankBWCleanAccounting(t *testing.T) {
	pol := core.NewBankBW(2, 8)
	a, ch := newAuditor(t, pol, audit.Config{}, nil)
	r := accept(a, 1, 0, 0, 3, 0)
	issueCmd(a, ch, pol, dram.KindActivate, r, 0)
	end := issueCmd(a, ch, pol, dram.KindRead, r, 5)
	a.OnReadDone(r, end, end)
	a.Finish(end)
	if got := pol.BankBudget(0, 0); got != pol.BudgetQuota()-1 {
		t.Fatalf("budget after one CAS = %d, want %d", got, pol.BudgetQuota()-1)
	}
}

func TestAuditCatchesDoubleCompletion(t *testing.T) {
	pol := core.NewFRFCFS()
	a, ch := newAuditor(t, pol, audit.Config{}, nil)
	// An older still-pending request keeps the completion ledger from
	// garbage-collecting r after its first completion.
	accept(a, 1, 0, 1, 0, 0)
	r := accept(a, 2, 0, 0, 3, 0)
	issueCmd(a, ch, pol, dram.KindActivate, r, 0)
	end := issueCmd(a, ch, pol, dram.KindRead, r, 5)
	a.OnReadDone(r, end, end)
	expectViolation(t, "twice", func() {
		a.OnReadDone(r, end, end+1)
	})
}
