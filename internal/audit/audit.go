// Package audit implements an opt-in runtime invariant auditor for the
// DRAM/scheduler stack. It shadows the memory controller's observable
// behavior with its own independent bookkeeping and validates, on every
// issued SDRAM command and every completed request:
//
//  1. DDR2 timing: every Table 6 constraint (tRCD, tRAS, tRP, tRC, tRRD,
//     tCCD, tWTR, tWR, tRTP, CAS-to-CAS data-bus occupancy, refresh
//     windows, and optionally a four-activate window tFAW) is recomputed
//     from the auditor's own shadow device state, never from the channel
//     model's bookkeeping, and cross-checked against the device after
//     every command.
//  2. Request conservation: accepted = completed + in-flight per thread,
//     occupancy never exceeds the buffer partitions, request IDs and
//     arrival stamps are monotone, and no request is starved past a
//     configurable age.
//  3. VTMS contract: the per-thread virtual-time registers follow
//     Equations 8 and 9 exactly (recomputed here from Table 4) and never
//     decrease; a request's policy key never changes once its first
//     command has issued (the frozen-key purity rule the event-driven
//     controller's caching depends on).
//  4. The FQ bank-scheduler's priority-inversion bound: a request that is
//     not the bank's minimum-key request may be serviced only while the
//     bank has been open for strictly less than x cycles (Section 3.3);
//     once the bank has been open x cycles or longer — or whenever the
//     bank is closed, where every candidate needs an activate — the
//     issued command must belong to the smallest-key pending request.
//     RuleStrict policies are held to smallest-key selection always.
//
// The auditor is deliberately redundant: it re-derives everything it
// checks from first principles (its own shadow banks, its own Table 4
// arithmetic) so that a bug in the controller's caching or the channel
// model's bookkeeping cannot hide itself. A violation panics with a
// *Violation carrying the recent command history and shadow state, since
// it indicates a simulator bug, never a recoverable condition.
package audit

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/dram"
)

// minTime is "minus infinity" for last-issue timestamps, matching the
// device model's sentinel.
const minTime = math.MinInt64 / 4

// Config holds the auditor's tunable thresholds. The zero value selects
// the defaults; set a threshold negative to disable that check.
type Config struct {
	// History is the command-history ring size included in violation
	// dumps (default 64).
	History int

	// MaxAge is the starvation bound: the oldest outstanding request may
	// not exceed this age in real cycles (default 200000; negative
	// disables). The default is far beyond any legitimate queueing delay
	// of the Table 5 system (24 entries/thread, tRC = 22, tRFC = 510)
	// but small enough to catch true starvation quickly.
	MaxAge int64

	// RefreshSlack is how far past the nominal tREF interval a refresh
	// may be delayed by draining in-progress rows (default 25000;
	// negative disables the refresh-deadline check).
	RefreshSlack int64

	// TFAW optionally enforces a four-activate window per rank, in
	// cycles. The paper's Table 6 defines no tFAW, and the device model
	// does not enforce one, so the default 0 disables the check; it
	// exists for auditing experimental timing sets that include it.
	TFAW int
}

func (c Config) withDefaults() Config {
	if c.History == 0 {
		c.History = 64
	}
	if c.MaxAge == 0 {
		c.MaxAge = 200_000
	}
	if c.RefreshSlack == 0 {
		c.RefreshSlack = 25_000
	}
	return c
}

// Totals is the controller's own view of one thread's accounting, used
// for the conservation cross-check.
type Totals struct {
	ReadsAccepted, ReadsDone   int64
	WritesAccepted, WritesDone int64
	ReadOcc, WriteOcc          int
}

// Target describes the audited system. The Chans and Totals accessors
// give the auditor a read-only window into the live controller for
// cross-checking its shadow state; everything else is static geometry.
type Target struct {
	Timing       dram.Timing
	Channels     int
	Ranks        int
	BanksPerRank int
	Threads      int

	// ReadEntries and WriteEntries are the per-thread buffer partitions;
	// with SharedBuffers they pool to entries x Threads.
	ReadEntries, WriteEntries int
	SharedBuffers             bool

	// RefreshDisabled suppresses the refresh-deadline check.
	RefreshDisabled bool

	Policy core.Policy

	// Chans exposes the live device channels for state cross-checks.
	Chans []*dram.Channel

	// Totals reports the controller's accounting for one thread.
	Totals func(thread int) Totals
}

// Violation is the panic payload of a failed invariant.
type Violation struct {
	Cycle int64
	Msg   string
	Dump  string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("audit: cycle %d: %s\n%s", v.Cycle, v.Msg, v.Dump)
}

// Cmd describes one SDRAM command offered to the auditor. Req is nil for
// idle-close precharges (which belong to no request).
type Cmd struct {
	Kind     dram.Kind
	FlatBank int
	Row      int
	Key      int64
	Req      *core.Request
}

// shBank is the auditor's shadow of one DRAM bank.
type shBank struct {
	open                                            bool
	row                                             int
	lastAct, lastRead, lastWrite, lastPre, writeEnd int64
}

// shChan is the auditor's shadow of one channel's shared state.
type shChan struct {
	lastCAS, lastWriteEnd, busFreeAt int64
	refreshUntil, lastRefresh        int64
	lastCmd                          int64 // at most one command per channel per cycle
	rankLastAct                      []int64
	rankActHist                      [][4]int64 // recent activates per rank, for tFAW
	rankActN                         []int
}

// outReq tracks one outstanding request for conservation and starvation.
type outReq struct {
	r    *core.Request
	done bool
}

type threadAcc struct {
	readsAcc, readsDone, writesAcc, writesDone int64
}

type histEntry struct {
	cycle  int64
	what   string
	bank   int
	row    int
	thread int
	id     uint64
	key    int64
}

// vtmsProvider is satisfied by the VTMS-register policy family
// (FR-VFTF, FQ-VFTF, FR-VSTF, FR-VFTF-arrival).
type vtmsProvider interface{ ThreadVTMS(int) *core.VTMS }

// tickerProvider is satisfied by the interval-based arena policies
// (BLISS, SLOW-FAIR, BANK-BW): window bookkeeping the auditor holds to
// the PolicyTicker contract — next boundary = last + interval, and the
// controller never lets a boundary slip past unfired.
type tickerProvider interface {
	LastTickAt() int64
	NextTickAt() int64
	TickInterval() int64
}

// blissProvider exposes BLISS's Key-feeding blacklist, which may change
// only at a tick boundary.
type blissProvider interface{ Blacklisted(thread int) bool }

// slowdownProvider exposes SLOW-FAIR's Key-feeding boost target, which
// may change only at a tick boundary.
type slowdownProvider interface{ BoostedThread() int }

// budgetProvider exposes BANK-BW's per-(thread, bank) budgets. The
// auditor counts CAS commands per window itself and demands
// budget == quota - count exactly, after every request command.
type budgetProvider interface {
	BankBudget(thread, bank int) int64
	BudgetQuota() int64
}

// Auditor validates the invariants; see the package comment. It is not
// safe for concurrent use (each controller owns one).
type Auditor struct {
	cfg Config
	tgt Target

	banksPerChan int
	banks        []shBank
	chans        []shChan
	pend         [][]*core.Request

	lastID      uint64
	lastArrival int64
	out         map[uint64]*outReq
	fifo        []uint64
	head        int
	acc         []threadAcc

	frozen map[uint64]int64

	vtms               vtmsProvider
	preBankR, preChanR core.VTime

	// Interval-policy tracking: shadows of the Key-feeding state the
	// tickerProvider policies may move only at tick boundaries, and the
	// auditor's own CAS-per-window ledger for exact budget accounting.
	tick        tickerProvider
	bliss       blissProvider
	slow        slowdownProvider
	budget      budgetProvider
	blShadow    []bool
	boostShadow int
	casCount    []int64 // thread*nbanks + flat bank
	winStart    int64   // LastTickAt value casCount counts from

	hist     []histEntry
	histLen  int
	histNext int

	cmds         int64
	maxInvWindow int64
}

// New returns an auditor over the target system.
func New(cfg Config, tgt Target) *Auditor {
	cfg = cfg.withDefaults()
	nbanks := tgt.Channels * tgt.Ranks * tgt.BanksPerRank
	a := &Auditor{
		cfg:          cfg,
		tgt:          tgt,
		banksPerChan: tgt.Ranks * tgt.BanksPerRank,
		banks:        make([]shBank, nbanks),
		chans:        make([]shChan, tgt.Channels),
		pend:         make([][]*core.Request, nbanks),
		out:          make(map[uint64]*outReq),
		acc:          make([]threadAcc, tgt.Threads),
		frozen:       make(map[uint64]int64),
		hist:         make([]histEntry, cfg.History),
		lastArrival:  minTime,
	}
	for i := range a.banks {
		b := &a.banks[i]
		b.lastAct, b.lastRead, b.lastWrite, b.lastPre, b.writeEnd = minTime, minTime, minTime, minTime, minTime
	}
	for i := range a.chans {
		sc := &a.chans[i]
		sc.lastCAS, sc.lastWriteEnd, sc.busFreeAt = minTime, minTime, minTime
		sc.refreshUntil, sc.lastRefresh, sc.lastCmd = minTime, minTime, minTime
		sc.rankLastAct = make([]int64, tgt.Ranks)
		sc.rankActHist = make([][4]int64, tgt.Ranks)
		sc.rankActN = make([]int, tgt.Ranks)
		for r := range sc.rankLastAct {
			sc.rankLastAct[r] = minTime
			sc.rankActHist[r] = [4]int64{minTime, minTime, minTime, minTime}
		}
	}
	a.vtms, _ = tgt.Policy.(vtmsProvider)
	a.tick, _ = tgt.Policy.(tickerProvider)
	a.bliss, _ = tgt.Policy.(blissProvider)
	a.slow, _ = tgt.Policy.(slowdownProvider)
	a.budget, _ = tgt.Policy.(budgetProvider)
	if a.bliss != nil {
		a.blShadow = make([]bool, tgt.Threads)
	}
	if a.slow != nil {
		a.boostShadow = a.slow.BoostedThread()
	}
	if a.budget != nil {
		a.casCount = make([]int64, tgt.Threads*nbanks)
	}
	return a
}

// Commands returns how many SDRAM commands the auditor has validated.
func (a *Auditor) Commands() int64 { return a.cmds }

// MaxInversionWindow returns the largest observed bank-open age at which
// a non-minimum-key request was serviced under RuleFQ; the Section 3.3
// bound guarantees it stays strictly below x.
func (a *Auditor) MaxInversionWindow() int64 { return a.maxInvWindow }

// fail raises a Violation with the recent history and shadow state.
func (a *Auditor) fail(now int64, format string, args ...interface{}) {
	panic(&Violation{Cycle: now, Msg: fmt.Sprintf(format, args...), Dump: a.dump()})
}

// record appends one event to the history ring.
func (a *Auditor) record(e histEntry) {
	a.hist[a.histNext] = e
	a.histNext = (a.histNext + 1) % len(a.hist)
	if a.histLen < len(a.hist) {
		a.histLen++
	}
}

// dump renders the command history and shadow state for a violation.
func (a *Auditor) dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "last %d events (oldest first):\n", a.histLen)
	start := a.histNext - a.histLen
	if start < 0 {
		start += len(a.hist)
	}
	for i := 0; i < a.histLen; i++ {
		e := &a.hist[(start+i)%len(a.hist)]
		fmt.Fprintf(&sb, "  @%-8d %-4s bank=%-3d row=%-6d thread=%d id=%d key=%d\n",
			e.cycle, e.what, e.bank, e.row, e.thread, e.id, e.key)
	}
	sb.WriteString("shadow banks (open only):\n")
	for i := range a.banks {
		b := &a.banks[i]
		if b.open {
			fmt.Fprintf(&sb, "  bank %d: row=%d lastAct=%d\n", i, b.row, b.lastAct)
		}
	}
	sb.WriteString("pending per bank (non-empty):\n")
	for i, q := range a.pend {
		if len(q) > 0 {
			fmt.Fprintf(&sb, "  bank %d:", i)
			for _, r := range q {
				fmt.Fprintf(&sb, " id=%d/t%d@%d", r.ID, r.Thread, r.Arrival)
			}
			sb.WriteByte('\n')
		}
	}
	for t := range a.acc {
		ac := &a.acc[t]
		fmt.Fprintf(&sb, "thread %d: reads %d/%d writes %d/%d\n",
			t, ac.readsDone, ac.readsAcc, ac.writesDone, ac.writesAcc)
	}
	return sb.String()
}

// chanOf returns the shadow channel and local bank of a flat bank index.
func (a *Auditor) chanOf(flatBank int) (int, int) {
	return flatBank / a.banksPerChan, flatBank % a.banksPerChan
}

// stateFor returns the Table 3 bank state request r would see now,
// derived from the shadow bank.
func (a *Auditor) stateFor(r *core.Request) core.BankState {
	b := &a.banks[r.GlobalBank]
	switch {
	case !b.open:
		return core.BankClosed
	case b.row == r.Row:
		return core.BankHit
	default:
		return core.BankConflict
	}
}

// ---------------------------------------------------------------------
// Hooks
// ---------------------------------------------------------------------

// OnAccept validates and registers a newly accepted request.
// OnAttributed enforces the interference-attribution conservation
// invariant at the moment a request begins service (its CAS issues):
// the delay-accounting layer must have charged every cycle between the
// request's real arrival and now to some cause — no more, no fewer.
// Anything else means the attribution matrix double-counts or leaks
// wait cycles.
func (a *Auditor) OnAttributed(r *core.Request, cycles, now int64) {
	if want := now - r.ArrivalReal; cycles != want {
		a.fail(now, "request %d (thread %d) attributed %d wait cycles, queued %d (arrival %d, service %d)",
			r.ID, r.Thread, cycles, want, r.ArrivalReal, now)
	}
}

func (a *Auditor) OnAccept(r *core.Request, now int64) {
	if r.ID != a.lastID+1 {
		a.fail(now, "request ID %d not monotone (previous %d)", r.ID, a.lastID)
	}
	a.lastID = r.ID
	if r.Arrival < a.lastArrival {
		a.fail(now, "request %d arrival %d precedes previous arrival %d (virtual clock ran backwards)",
			r.ID, r.Arrival, a.lastArrival)
	}
	a.lastArrival = r.Arrival
	if r.ArrivalReal != now {
		a.fail(now, "request %d real arrival %d != accept cycle %d", r.ID, r.ArrivalReal, now)
	}
	// The virtual clock is incremented during Tick(now) before same-cycle
	// accepts, so it may legitimately read now+1; anything beyond that
	// means it outran the real clock.
	if r.Arrival > now+1 {
		a.fail(now, "request %d virtual arrival %d ahead of real clock %d", r.ID, r.Arrival, now)
	}
	gb := (r.Channel*a.tgt.Ranks+r.Rank)*a.tgt.BanksPerRank + r.Bank
	if gb != r.GlobalBank || gb < 0 || gb >= len(a.banks) {
		a.fail(now, "request %d bank coordinates (ch %d, rank %d, bank %d) decode to flat %d, stamped %d",
			r.ID, r.Channel, r.Rank, r.Bank, gb, r.GlobalBank)
	}
	if r.Thread < 0 || r.Thread >= a.tgt.Threads {
		a.fail(now, "request %d from unknown thread %d", r.ID, r.Thread)
	}

	ac := &a.acc[r.Thread]
	if r.IsWrite {
		ac.writesAcc++
	} else {
		ac.readsAcc++
	}
	a.checkOccupancy(r.Thread, now)

	a.pend[gb] = append(a.pend[gb], r)
	a.out[r.ID] = &outReq{r: r}
	a.fifo = append(a.fifo, r.ID)
	a.record(histEntry{cycle: now, what: "ACC", bank: gb, row: r.Row, thread: r.Thread, id: r.ID})
	a.checkAge(now)
}

// checkOccupancy bounds in-flight requests by the buffer partitions.
func (a *Auditor) checkOccupancy(thread int, now int64) {
	if a.tgt.SharedBuffers {
		var reads, writes int64
		for t := range a.acc {
			reads += a.acc[t].readsAcc - a.acc[t].readsDone
			writes += a.acc[t].writesAcc - a.acc[t].writesDone
		}
		if reads > int64(a.tgt.ReadEntries*a.tgt.Threads) {
			a.fail(now, "pooled read occupancy %d exceeds %d", reads, a.tgt.ReadEntries*a.tgt.Threads)
		}
		if writes > int64(a.tgt.WriteEntries*a.tgt.Threads) {
			a.fail(now, "pooled write occupancy %d exceeds %d", writes, a.tgt.WriteEntries*a.tgt.Threads)
		}
		return
	}
	ac := &a.acc[thread]
	if n := ac.readsAcc - ac.readsDone; n > int64(a.tgt.ReadEntries) {
		a.fail(now, "thread %d read occupancy %d exceeds partition %d", thread, n, a.tgt.ReadEntries)
	}
	if n := ac.writesAcc - ac.writesDone; n > int64(a.tgt.WriteEntries) {
		a.fail(now, "thread %d write occupancy %d exceeds partition %d", thread, n, a.tgt.WriteEntries)
	}
}

// checkAge enforces the starvation bound on the oldest outstanding
// request.
func (a *Auditor) checkAge(now int64) {
	for a.head < len(a.fifo) {
		e := a.out[a.fifo[a.head]]
		if e == nil || e.done {
			delete(a.out, a.fifo[a.head])
			a.head++
			if a.head > 1024 && a.head*2 > len(a.fifo) {
				a.fifo = append(a.fifo[:0], a.fifo[a.head:]...)
				a.head = 0
			}
			continue
		}
		if a.cfg.MaxAge >= 0 {
			if age := now - e.r.ArrivalReal; age > a.cfg.MaxAge {
				a.fail(now, "request %d (thread %d, bank %d) starved: age %d exceeds bound %d",
					e.r.ID, e.r.Thread, e.r.GlobalBank, age, a.cfg.MaxAge)
			}
		}
		return
	}
}

// OnTick runs the per-cycle checks that need no triggering command:
// starvation age and refresh deadlines. The controller calls it on every
// fully simulated cycle.
func (a *Auditor) OnTick(now int64) {
	a.checkAge(now)
	a.checkIntervalPolicy(now)
	if a.tgt.RefreshDisabled || a.cfg.RefreshSlack < 0 {
		return
	}
	tref := int64(a.tgt.Timing.TREF)
	for i := range a.chans {
		last := a.chans[i].lastRefresh
		if last == minTime {
			last = 0 // the first interval is measured from cycle zero
		}
		if now-last > tref+a.cfg.RefreshSlack {
			a.fail(now, "channel %d refresh overdue: %d cycles since last refresh (tREF %d + slack %d)",
				i, now-last, tref, a.cfg.RefreshSlack)
		}
	}
}

// checkIntervalPolicy holds a tickerProvider policy to its contract:
// the window bookkeeping stays consistent (next = last + interval with
// the boundary never slipping past unfired), and the Key-feeding
// interval state — blacklist bits, the boost target — changes only on
// a cycle whose tick just fired. Runs on every tick and after every
// command.
func (a *Auditor) checkIntervalPolicy(now int64) {
	if a.tick == nil {
		return
	}
	last, next, iv := a.tick.LastTickAt(), a.tick.NextTickAt(), a.tick.TickInterval()
	if iv <= 0 {
		a.fail(now, "interval policy reports non-positive tick interval %d", iv)
	}
	if next != last+iv {
		a.fail(now, "interval policy window inconsistent: next tick %d != last tick %d + interval %d", next, last, iv)
	}
	if last > now {
		a.fail(now, "interval policy last tick %d is in the future", last)
	}
	if next <= now {
		a.fail(now, "interval policy tick boundary %d missed: cycle %d reached with no Tick fired", next, now)
	}
	if a.bliss != nil {
		for t := range a.blShadow {
			if b := a.bliss.Blacklisted(t); b != a.blShadow[t] {
				if last != now {
					a.fail(now, "thread %d blacklist bit flipped outside a tick boundary (last tick %d)", t, last)
				}
				a.blShadow[t] = b
			}
		}
	}
	if a.slow != nil {
		if b := a.slow.BoostedThread(); b != a.boostShadow {
			if last != now {
				a.fail(now, "boost target moved %d -> %d outside a tick boundary (last tick %d)", a.boostShadow, b, last)
			}
			if b < -1 || b >= a.tgt.Threads {
				a.fail(now, "boost target %d out of range", b)
			}
			a.boostShadow = b
		}
	}
	if a.budget != nil && a.winStart != last {
		// A refill boundary fired: the CAS ledger starts a fresh window.
		a.winStart = last
		for i := range a.casCount {
			a.casCount[i] = 0
		}
	}
}

// earliest recomputes, from shadow state only, the first cycle at or
// after which the command satisfies every DDR2 constraint. It is the
// auditor's independent reimplementation of the device model's rule.
func (a *Auditor) earliest(kind dram.Kind, flatBank int) int64 {
	t := &a.tgt.Timing
	cIdx, lb := a.chanOf(flatBank)
	sc := &a.chans[cIdx]
	b := &a.banks[flatBank]
	rank := lb / a.tgt.BanksPerRank
	e := sc.refreshUntil
	switch kind {
	case dram.KindActivate:
		e = maxi(e, b.lastPre+int64(t.TRP))
		e = maxi(e, b.lastAct+int64(t.TRC))
		e = maxi(e, sc.rankLastAct[rank]+int64(t.TRRD))
		if a.cfg.TFAW > 0 && sc.rankActN[rank] >= 4 {
			e = maxi(e, sc.rankActHist[rank][sc.rankActN[rank]%4]+int64(a.cfg.TFAW))
		}
	case dram.KindRead:
		e = maxi(e, b.lastAct+int64(t.TRCD))
		e = maxi(e, sc.lastCAS+int64(t.TCCD))
		e = maxi(e, sc.lastWriteEnd+int64(t.TWTR))
		e = maxi(e, sc.busFreeAt-int64(t.TCL))
	case dram.KindWrite:
		e = maxi(e, b.lastAct+int64(t.TRCD))
		e = maxi(e, sc.lastCAS+int64(t.TCCD))
		e = maxi(e, sc.busFreeAt-int64(t.TWL))
	case dram.KindPrecharge:
		e = maxi(e, b.lastAct+int64(t.TRAS))
		e = maxi(e, b.lastRead+int64(t.TRTP))
		e = maxi(e, b.writeEnd+int64(t.TWR))
	case dram.KindRefresh:
		lo := cIdx * a.banksPerChan
		for i := lo; i < lo+a.banksPerChan; i++ {
			bb := &a.banks[i]
			e = maxi(e, bb.lastPre+int64(t.TRP))
			e = maxi(e, bb.lastAct+int64(t.TRC))
		}
	}
	return e
}

// BeforeIssue validates one SDRAM command against every invariant, then
// applies it to the shadow state. The controller calls it immediately
// before the device issue and the policy update.
func (a *Auditor) BeforeIssue(cmd Cmd, now int64) {
	a.cmds++
	t := &a.tgt.Timing
	cIdx, lb := a.chanOf(cmd.FlatBank)
	sc := &a.chans[cIdx]
	b := &a.banks[cmd.FlatBank]
	r := cmd.Req

	th, id := -1, uint64(0)
	if r != nil {
		th, id = r.Thread, r.ID
	}
	a.record(histEntry{cycle: now, what: cmd.Kind.String(), bank: cmd.FlatBank, row: cmd.Row, thread: th, id: id, key: cmd.Key})

	// One command per channel per cycle (the shared command bus).
	if sc.lastCmd == now {
		a.fail(now, "second command (%v bank %d) on channel %d in one cycle", cmd.Kind, cmd.FlatBank, cIdx)
	}
	sc.lastCmd = now

	// Bank-state legality.
	switch cmd.Kind {
	case dram.KindActivate:
		if b.open {
			a.fail(now, "activate to open bank %d (row %d)", cmd.FlatBank, b.row)
		}
	case dram.KindRead, dram.KindWrite:
		if !b.open || b.row != cmd.Row {
			a.fail(now, "%v bank %d row %d but shadow open=%v row=%d", cmd.Kind, cmd.FlatBank, cmd.Row, b.open, b.row)
		}
	case dram.KindPrecharge:
		if !b.open {
			a.fail(now, "precharge of closed bank %d", cmd.FlatBank)
		}
	default:
		a.fail(now, "unexpected command kind %v", cmd.Kind)
	}

	// Independent timing validation.
	if e := a.earliest(cmd.Kind, cmd.FlatBank); now < e {
		a.fail(now, "%v bank %d violates timing: issued at %d, shadow-earliest %d", cmd.Kind, cmd.FlatBank, now, e)
	}
	if now < sc.refreshUntil {
		a.fail(now, "%v bank %d inside refresh window ending %d", cmd.Kind, cmd.FlatBank, sc.refreshUntil)
	}

	if r != nil {
		a.checkRequestCmd(cmd, now)
	}

	// Apply to shadow state.
	switch cmd.Kind {
	case dram.KindActivate:
		b.open, b.row, b.lastAct = true, cmd.Row, now
		rank := lb / a.tgt.BanksPerRank
		sc.rankLastAct[rank] = now
		sc.rankActHist[rank][sc.rankActN[rank]%4] = now
		sc.rankActN[rank]++
	case dram.KindRead:
		b.lastRead, sc.lastCAS = now, now
		end := now + int64(t.TCL) + int64(t.BL2)
		if now+int64(t.TCL) < sc.busFreeAt {
			a.fail(now, "read burst [%d,%d) overlaps busy data bus (free at %d)", now+int64(t.TCL), end, sc.busFreeAt)
		}
		sc.busFreeAt = end
	case dram.KindWrite:
		b.lastWrite, sc.lastCAS = now, now
		end := now + int64(t.TWL) + int64(t.BL2)
		if now+int64(t.TWL) < sc.busFreeAt {
			a.fail(now, "write burst [%d,%d) overlaps busy data bus (free at %d)", now+int64(t.TWL), end, sc.busFreeAt)
		}
		b.writeEnd, sc.lastWriteEnd, sc.busFreeAt = end, end, end
	case dram.KindPrecharge:
		b.open = false
		b.lastPre = now
	}

	// Pending-set maintenance: a CAS retires the request from the bank
	// queue. Write completion accounting waits for AfterIssue, when the
	// controller's own counters have been updated too.
	if r != nil && (cmd.Kind == dram.KindRead || cmd.Kind == dram.KindWrite) {
		a.removePending(cmd.FlatBank, r, now)
	}
	a.checkAge(now)

	// Capture pre-update VTMS registers for AfterIssue's Eq 8/9 check.
	if r != nil && a.vtms != nil {
		v := a.vtms.ThreadVTMS(r.Thread)
		a.preBankR = v.BankR(r.GlobalBank)
		a.preChanR = v.ChanRAt(r.Channel)
	}
}

// checkRequestCmd validates the scheduling decision for a request
// command: the candidate key is fresh, the frozen-key contract holds,
// the command is the request's legal next step, and the bank-scheduler
// selection respects the policy's rule (strict smallest-key, or the FQ
// priority-inversion bound).
func (a *Auditor) checkRequestCmd(cmd Cmd, now int64) {
	r := cmd.Req
	b := &a.banks[cmd.FlatBank]
	if r.GlobalBank != cmd.FlatBank {
		a.fail(now, "request %d (bank %d) issued on bank %d", r.ID, r.GlobalBank, cmd.FlatBank)
	}
	if e := a.out[r.ID]; e == nil {
		a.fail(now, "command for request %d that was never accepted", r.ID)
	} else if e.done {
		a.fail(now, "command for request %d after completion", r.ID)
	}
	if !a.inPending(cmd.FlatBank, r) {
		a.fail(now, "command for request %d not pending on bank %d", r.ID, cmd.FlatBank)
	}

	// The command must be the correct next step for the shadow state.
	state := a.stateFor(r)
	var want dram.Kind
	switch state {
	case core.BankConflict:
		want = dram.KindPrecharge
	case core.BankClosed:
		want = dram.KindActivate
	default:
		if r.IsWrite {
			want = dram.KindWrite
		} else {
			want = dram.KindRead
		}
	}
	if cmd.Kind != want {
		a.fail(now, "request %d in bank state %v needs %v, controller issued %v", r.ID, state, want, cmd.Kind)
	}

	// The candidate key the channel scheduler ranked must match a fresh
	// evaluation — a mismatch means a cached decision went stale.
	if k := a.tgt.Policy.Key(r, state); k != cmd.Key {
		a.fail(now, "stale candidate key for request %d: scheduler used %d, fresh Key is %d", r.ID, cmd.Key, k)
	}

	// Frozen-key contract: after the first command, the key is immutable.
	if fk, ok := a.frozen[r.ID]; ok {
		if k := a.tgt.Policy.Key(r, state); k != fk {
			a.fail(now, "frozen key of request %d changed: %d -> %d", r.ID, fk, k)
		}
	}

	// Bank-scheduler selection rule.
	rule, x := a.tgt.Policy.BankRule()
	strict := rule == core.RuleStrict
	openAge := int64(-1)
	if rule == core.RuleFQ {
		if !b.open {
			// Every candidate of a closed bank needs an activate, so
			// first-ready ordering degenerates to smallest-key selection.
			strict = true
		} else if openAge = now - b.lastAct; openAge >= x {
			strict = true
		}
	}
	if rule == core.RuleStrict || rule == core.RuleFQ {
		min := a.minKeyReq(cmd.FlatBank)
		if strict {
			if min != r {
				a.fail(now, "rule %d bank %d: issued request %d (key %d) but minimum-key pending is %d (key %d); bank open %v for %d cycles, bound x=%d",
					rule, cmd.FlatBank, r.ID, cmd.Key, min.ID, a.tgt.Policy.Key(min, a.stateFor(min)), b.open, openAge, x)
			}
		} else if min != r {
			// A legal FQ bypass: record the measured inversion window.
			if openAge > a.maxInvWindow {
				a.maxInvWindow = openAge
			}
		}
	}
}

// inPending reports whether r is in the auditor's pending set of bank.
func (a *Auditor) inPending(bank int, r *core.Request) bool {
	for _, x := range a.pend[bank] {
		if x == r {
			return true
		}
	}
	return false
}

// minKeyReq returns the bank's smallest-key pending request under the
// controller's tie-break order (key, arrival, ID).
func (a *Auditor) minKeyReq(bank int) *core.Request {
	var best *core.Request
	var bestKey int64
	for _, r := range a.pend[bank] {
		k := a.tgt.Policy.Key(r, a.stateFor(r))
		if best == nil || k < bestKey ||
			(k == bestKey && (r.Arrival < best.Arrival ||
				(r.Arrival == best.Arrival && r.ID < best.ID))) {
			best, bestKey = r, k
		}
	}
	return best
}

// removePending deletes r from the bank's shadow queue.
func (a *Auditor) removePending(bank int, r *core.Request, now int64) {
	q := a.pend[bank]
	for i, x := range q {
		if x == r {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			a.pend[bank] = q[:len(q)-1]
			return
		}
	}
	a.fail(now, "request %d not in shadow pending of bank %d", r.ID, bank)
}

// AfterIssue runs after the device and the policy have applied the
// command: it records the frozen key, recomputes the Equations 8/9 VTMS
// register updates, and cross-checks the shadow bank against the device.
func (a *Auditor) AfterIssue(cmd Cmd, now int64) {
	r := cmd.Req
	if r != nil {
		// The first command freezes the key; record and spot-check it.
		if _, ok := a.frozen[r.ID]; !ok {
			k := a.tgt.Policy.Key(r, core.BankClosed) // frozen keys ignore state
			a.frozen[r.ID] = k
			if r.KeyFrozen && int64(r.Key) != k {
				a.fail(now, "request %d observability key %d disagrees with frozen policy key %d", r.ID, int64(r.Key), k)
			}
		}
		if cmd.Kind == dram.KindRead || cmd.Kind == dram.KindWrite {
			delete(a.frozen, r.ID)
		}
		a.checkVTMSUpdate(cmd, now)
		if a.budget != nil {
			a.checkBudget(cmd, now)
		}
		if cmd.Kind == dram.KindWrite {
			// Writes complete when the CAS issues (posted writes).
			e := a.out[r.ID]
			if e == nil || e.done {
				a.fail(now, "write %d completed twice or never accepted", r.ID)
			}
			e.done = true
			a.acc[r.Thread].writesDone++
			a.checkConservation(r.Thread, now)
		}
	}

	a.checkIntervalPolicy(now)

	// Cross-check the shadow bank against the live device model.
	cIdx, lb := a.chanOf(cmd.FlatBank)
	ch := a.tgt.Chans[cIdx]
	b := &a.banks[cmd.FlatBank]
	row, open := ch.BankOpen(lb)
	if open != b.open || (open && row != b.row) {
		a.fail(now, "shadow bank %d (open=%v row=%d) diverged from device (open=%v row=%d)",
			cmd.FlatBank, b.open, b.row, open, row)
	}
	la, lr, lw, lp := ch.BankTimestamps(lb)
	if la != b.lastAct || lr != b.lastRead || lw != b.lastWrite || lp != b.lastPre {
		a.fail(now, "shadow bank %d timestamps (act %d rd %d wr %d pre %d) diverged from device (act %d rd %d wr %d pre %d)",
			cmd.FlatBank, b.lastAct, b.lastRead, b.lastWrite, b.lastPre, la, lr, lw, lp)
	}
	if free := ch.DataBusFreeAt(); free != a.chans[cIdx].busFreeAt {
		a.fail(now, "shadow data bus free-at %d diverged from device %d", a.chans[cIdx].busFreeAt, free)
	}
}

// checkBudget holds a budgetProvider policy to exact accounting: after
// every request command, the (thread, bank) budget must equal the
// window quota minus the CAS commands the auditor itself counted since
// the last refill boundary — negative when the work-conserving
// scheduler let the thread overdraw, never anything else.
func (a *Auditor) checkBudget(cmd Cmd, now int64) {
	r := cmd.Req
	// Roll the CAS ledger first: a command issuing on the boundary cycle
	// itself spends from the freshly refilled window.
	if last := a.tick.LastTickAt(); a.winStart != last {
		a.winStart = last
		for i := range a.casCount {
			a.casCount[i] = 0
		}
	}
	slot := r.Thread*len(a.banks) + cmd.FlatBank
	if cmd.Kind == dram.KindRead || cmd.Kind == dram.KindWrite {
		a.casCount[slot]++
	}
	got := a.budget.BankBudget(r.Thread, cmd.FlatBank)
	want := a.budget.BudgetQuota() - a.casCount[slot]
	if got != want {
		a.fail(now, "thread %d bank %d budget accounting diverged after %v: policy reports %d, quota %d - %d CAS this window = %d",
			r.Thread, cmd.FlatBank, cmd.Kind, got, a.budget.BudgetQuota(), a.casCount[slot], want)
	}
}

// checkVTMSUpdate recomputes the Table 4 / Equations 8-9 register
// updates from the auditor's own arithmetic and demands the policy's
// registers match exactly (and never decreased).
func (a *Auditor) checkVTMSUpdate(cmd Cmd, now int64) {
	if a.vtms == nil {
		return
	}
	r := cmd.Req
	v := a.vtms.ThreadVTMS(r.Thread)
	inv := v.Share().Reciprocal()
	t := &a.tgt.Timing
	var bankL int
	switch cmd.Kind {
	case dram.KindPrecharge:
		bankL = t.TRP + t.TRAS - t.TRCD - t.TCL
	case dram.KindActivate:
		bankL = t.TRCD
	case dram.KindRead:
		bankL = t.TCL
	case dram.KindWrite:
		bankL = t.TWL
	}
	expBank := maxVT(core.FromCycles(r.Arrival), a.preBankR) + core.VTime(int64(bankL)*inv)
	gotBank := v.BankR(r.GlobalBank)
	if gotBank < a.preBankR {
		a.fail(now, "thread %d bank %d register decreased: %d -> %d", r.Thread, r.GlobalBank, a.preBankR, gotBank)
	}
	if gotBank != expBank {
		a.fail(now, "thread %d bank %d register after %v: got %d, Eq. 8 expects %d (pre %d, arrival %d, L=%d, 1/phi=%d)",
			r.Thread, r.GlobalBank, cmd.Kind, gotBank, expBank, a.preBankR, r.Arrival, bankL, inv)
	}
	if cmd.Kind == dram.KindRead || cmd.Kind == dram.KindWrite {
		expChan := maxVT(expBank, a.preChanR) + core.VTime(int64(t.BL2)*inv)
		gotChan := v.ChanRAt(r.Channel)
		if gotChan < a.preChanR {
			a.fail(now, "thread %d channel %d register decreased: %d -> %d", r.Thread, r.Channel, a.preChanR, gotChan)
		}
		if gotChan != expChan {
			a.fail(now, "thread %d channel %d register after %v: got %d, Eq. 9 expects %d",
				r.Thread, r.Channel, cmd.Kind, gotChan, expChan)
		}
	}
}

// OnRefresh validates a refresh command on the channel.
func (a *Auditor) OnRefresh(chIdx int, now int64) {
	a.cmds++
	sc := &a.chans[chIdx]
	a.record(histEntry{cycle: now, what: "REF", bank: chIdx * a.banksPerChan})
	if sc.lastCmd == now {
		a.fail(now, "refresh and another command on channel %d in one cycle", chIdx)
	}
	sc.lastCmd = now
	lo := chIdx * a.banksPerChan
	for i := lo; i < lo+a.banksPerChan; i++ {
		if a.banks[i].open {
			a.fail(now, "refresh on channel %d with bank %d open", chIdx, i)
		}
	}
	if e := a.earliest(dram.KindRefresh, lo); now < e {
		a.fail(now, "refresh on channel %d at %d violates timing, shadow-earliest %d", chIdx, now, e)
	}
	if !a.tgt.RefreshDisabled && a.cfg.RefreshSlack >= 0 {
		last := sc.lastRefresh
		if last == minTime {
			last = 0
		}
		if gap := now - last; gap > int64(a.tgt.Timing.TREF)+a.cfg.RefreshSlack {
			a.fail(now, "channel %d refresh interval %d exceeds tREF %d + slack %d", chIdx, gap, a.tgt.Timing.TREF, a.cfg.RefreshSlack)
		}
	}
	sc.lastRefresh = now
	sc.refreshUntil = now + int64(a.tgt.Timing.TRFC)
}

// OnReadDone validates a completed read's data burst and accounting.
func (a *Auditor) OnReadDone(r *core.Request, doneAt, now int64) {
	a.record(histEntry{cycle: now, what: "DONE", bank: r.GlobalBank, row: r.Row, thread: r.Thread, id: r.ID})
	if doneAt > now {
		a.fail(now, "read %d delivered before its burst completes (%d)", r.ID, doneAt)
	}
	e := a.out[r.ID]
	if e == nil {
		a.fail(now, "completion of unknown request %d", r.ID)
	}
	if e.done {
		a.fail(now, "request %d completed twice", r.ID)
	}
	if r.IsWrite {
		a.fail(now, "write %d delivered through the read-completion path", r.ID)
	}
	if a.inPending(r.GlobalBank, r) {
		a.fail(now, "read %d completed while still pending (no CAS issued)", r.ID)
	}
	e.done = true
	a.acc[r.Thread].readsDone++
	a.checkConservation(r.Thread, now)
	a.checkAge(now)
}

// checkConservation cross-checks the auditor's per-thread accounting
// against the controller's: accepted = completed + in-flight, with
// matching occupancy counters.
func (a *Auditor) checkConservation(thread int, now int64) {
	if a.tgt.Totals == nil {
		return
	}
	ac := &a.acc[thread]
	tt := a.tgt.Totals(thread)
	if tt.ReadsAccepted != ac.readsAcc || tt.ReadsDone != ac.readsDone ||
		tt.WritesAccepted != ac.writesAcc || tt.WritesDone != ac.writesDone {
		a.fail(now, "thread %d accounting diverged: controller reads %d/%d writes %d/%d, audit reads %d/%d writes %d/%d",
			thread, tt.ReadsDone, tt.ReadsAccepted, tt.WritesDone, tt.WritesAccepted,
			ac.readsDone, ac.readsAcc, ac.writesDone, ac.writesAcc)
	}
	if int64(tt.ReadOcc) != ac.readsAcc-ac.readsDone {
		a.fail(now, "thread %d read occupancy %d != accepted-completed %d (request leak)",
			thread, tt.ReadOcc, ac.readsAcc-ac.readsDone)
	}
	if int64(tt.WriteOcc) != ac.writesAcc-ac.writesDone {
		a.fail(now, "thread %d write occupancy %d != accepted-completed %d (request leak)",
			thread, tt.WriteOcc, ac.writesAcc-ac.writesDone)
	}
}

// Finish runs the end-of-simulation checks: final conservation for
// every thread and the starvation bound at the final cycle.
func (a *Auditor) Finish(now int64) {
	for t := 0; t < a.tgt.Threads; t++ {
		a.checkConservation(t, now)
	}
	a.checkAge(now)
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxVT(a, b core.VTime) core.VTime {
	if a > b {
		return a
	}
	return b
}
