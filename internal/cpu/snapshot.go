package cpu

import (
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Source type tags in the snapshot stream.
const (
	srcGenerator = 0
	srcReader    = 1
)

// SaveState serializes the core: cache hierarchy, ROB ring and wake
// lists, load issue queue, store buffer, MSHR token waiters, I-fetch
// latches, retirement counters, and the instruction source's cursor.
// It fails for instruction sources other than the synthetic generator
// and the trace-file reader — an arbitrary Source has no serializable
// cursor.
func (c *Core) SaveState(w *snapshot.Writer) {
	w.Section("cpu.Core")
	c.hier.SaveState(w)
	switch g := c.gen.(type) {
	case *trace.Generator:
		w.U8(srcGenerator)
		g.SaveState(w)
	case *trace.Reader:
		w.U8(srcReader)
		g.SaveState(w)
	default:
		w.Fail("cpu.Core: unserializable instruction source %T", c.gen)
		return
	}
	w.Int(len(c.rob))
	for i := range c.rob {
		e := &c.rob[i]
		w.U8(uint8(e.kind))
		w.U64(e.addr)
		w.I64(int64(e.lat))
		w.I64(e.completeAt)
		w.I64(int64(e.wakeHead))
		w.I64(int64(e.wakeNext))
		w.Bool(e.inIssueQ)
	}
	w.I64(int64(c.head))
	w.I64(int64(c.count))
	w.U32(uint32(len(c.issueQ)))
	for i := range c.issueQ {
		w.I64(int64(c.issueQ[i]))
	}
	w.I64s(c.issueRdy)
	w.Bools(c.issueNACK)
	w.Int(c.inFlight)
	w.U64s(c.storeBuf)
	w.Bool(c.storeNACK)
	w.Len(len(c.tokenWaiters))
	for _, ws := range c.tokenWaiters {
		w.U32(uint32(len(ws)))
		for _, s := range ws {
			w.I64(int64(s))
		}
	}
	w.Int(c.tokenStall)
	w.Bool(c.ifetchNACK)
	w.Bool(c.ifetchRetry)
	w.U64(c.ifetchLine)
	w.Int(c.sinceIFetch)
	w.I64(c.Retired)
	w.I64(c.LoadsRetired)
	w.I64(c.StoresRetired)
	w.I64(c.StallCycles)
}

// LoadState restores a core saved by SaveState. The core must have
// been constructed with the same configuration and an instruction
// source of the same type over the same workload.
func (c *Core) LoadState(r *snapshot.Reader) error {
	r.Section("cpu.Core")
	if err := c.hier.LoadState(r); err != nil {
		return err
	}
	switch tag := r.U8(); {
	case r.Err() != nil:
		return r.Err()
	case tag == srcGenerator:
		g, ok := c.gen.(*trace.Generator)
		if !ok {
			r.Fail("cpu.Core: snapshot has a generator source, core has %T", c.gen)
			return r.Err()
		}
		if err := g.LoadState(r); err != nil {
			return err
		}
	case tag == srcReader:
		t, ok := c.gen.(*trace.Reader)
		if !ok {
			r.Fail("cpu.Core: snapshot has a trace-file source, core has %T", c.gen)
			return r.Err()
		}
		if err := t.LoadState(r); err != nil {
			return err
		}
	default:
		r.Fail("cpu.Core: unknown source tag %d", tag)
		return r.Err()
	}
	robN := r.Int()
	if r.Err() == nil && robN != len(c.rob) {
		r.Fail("cpu.Core: ROB of %d entries, core has %d", robN, len(c.rob))
	}
	if err := r.Err(); err != nil {
		return err
	}
	slotOK := func(s int32) bool { return s == nilIdx || (s >= 0 && int(s) < robN) }
	rob := make([]entry, robN)
	for i := range rob {
		e := &rob[i]
		e.kind = trace.Kind(r.U8())
		e.addr = r.U64()
		e.lat = int32(r.I64())
		e.completeAt = r.I64()
		e.wakeHead = int32(r.I64())
		e.wakeNext = int32(r.I64())
		e.inIssueQ = r.Bool()
		if r.Err() == nil && (!slotOK(e.wakeHead) || !slotOK(e.wakeNext)) {
			r.Fail("cpu.Core: ROB entry %d has invalid wake links", i)
		}
	}
	head := int32(r.I64())
	count := int32(r.I64())
	nIssue := r.Len(robN)
	issueQ := make([]int32, nIssue)
	for i := range issueQ {
		issueQ[i] = int32(r.I64())
		if r.Err() == nil && (issueQ[i] < 0 || int(issueQ[i]) >= robN) {
			r.Fail("cpu.Core: issueQ slot %d out of range", issueQ[i])
		}
	}
	issueRdy := r.I64s(robN)
	issueNACK := r.Bools(robN)
	inFlight := r.Int()
	storeBuf := r.U64s(snapshot.MaxSlice)
	storeNACK := r.Bool()
	nTokens := r.Len(snapshot.MaxSlice)
	tokenWaiters := make([][]int32, nTokens)
	for i := range tokenWaiters {
		nw := r.Len(robN)
		ws := make([]int32, nw)
		for j := range ws {
			ws[j] = int32(r.I64())
			if r.Err() == nil && (ws[j] < 0 || int(ws[j]) >= robN) {
				r.Fail("cpu.Core: token waiter slot %d out of range", ws[j])
			}
		}
		tokenWaiters[i] = ws
	}
	tokenStall := r.Int()
	ifetchNACK := r.Bool()
	ifetchRetry := r.Bool()
	ifetchLine := r.U64()
	sinceIFetch := r.Int()
	retired := r.I64()
	loadsRetired := r.I64()
	storesRetired := r.I64()
	stallCycles := r.I64()
	if err := r.Err(); err != nil {
		return err
	}
	if head < 0 || int(head) >= robN || count < 0 || int(count) > robN {
		r.Fail("cpu.Core: head %d / count %d outside ROB of %d", head, count, robN)
		return r.Err()
	}
	if len(issueRdy) != nIssue || len(issueNACK) != nIssue {
		r.Fail("cpu.Core: issue queue arrays disagree (%d/%d/%d)", nIssue, len(issueRdy), len(issueNACK))
		return r.Err()
	}
	if tokenStall < -1 || tokenStall >= nTokens {
		r.Fail("cpu.Core: tokenStall %d out of range", tokenStall)
		return r.Err()
	}
	copy(c.rob, rob)
	c.head = head
	c.count = count
	c.issueQ = issueQ
	c.issueRdy = issueRdy
	c.issueNACK = issueNACK
	c.inFlight = inFlight
	c.storeBuf = storeBuf
	c.storeNACK = storeNACK
	c.tokenWaiters = tokenWaiters
	c.tokenStall = tokenStall
	c.ifetchNACK = ifetchNACK
	c.ifetchRetry = ifetchRetry
	c.ifetchLine = ifetchLine
	c.sinceIFetch = sinceIFetch
	c.Retired = retired
	c.LoadsRetired = loadsRetired
	c.StoresRetired = storesRetired
	c.StallCycles = stallCycles
	return nil
}
