package cpu

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
)

// fixedGen builds a generator-compatible profile that emits only compute
// instructions (for pure-pipeline tests) or specific patterns.
func computeProfile() trace.Profile {
	return trace.Profile{
		Name: "compute", MemFrac: 0, StoreFrac: 0,
		WorkingSetKB: 64, Streams: 1, FpFrac: 0, DepFrac: 0,
	}
}

func newCore(t *testing.T, p trace.Profile) *Core {
	t.Helper()
	hier, err := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(0, DefaultConfig(), gen, hier)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cfg.ROB = 0
	if err := cfg.Validate(); err == nil {
		t.Error("accepted 0 ROB")
	}
	hier, _ := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	gen, _ := trace.NewGenerator(computeProfile(), 0, 1)
	if _, err := New(0, cfg, gen, hier); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestComputeIPCBoundedByDispatchWidth(t *testing.T) {
	c := newCore(t, computeProfile())
	for now := int64(0); now < 10000; now++ {
		c.Tick(now)
	}
	ipc := float64(c.Retired) / 10000
	if ipc > 4.0 {
		t.Fatalf("IPC %v exceeds dispatch width 4", ipc)
	}
	if ipc < 2.0 {
		t.Fatalf("IPC %v too low for a dependence-free compute stream", ipc)
	}
}

func TestDependenceChainsLowerIPC(t *testing.T) {
	free := computeProfile()
	chained := computeProfile()
	chained.Name = "chained"
	chained.DepFrac = 1.0
	chained.FpFrac = 1.0 // 4-cycle ops, fully serialized
	cf, cc := newCore(t, free), newCore(t, chained)
	for now := int64(0); now < 10000; now++ {
		cf.Tick(now)
		cc.Tick(now)
	}
	if cc.Retired*2 >= cf.Retired {
		t.Fatalf("chained IPC (%d) not well below free IPC (%d)", cc.Retired, cf.Retired)
	}
	// A fully serialized 4-cycle chain retires about one per 4 cycles.
	got := float64(cc.Retired) / 10000
	if got > 0.35 {
		t.Errorf("serialized FP chain IPC = %v, want about 0.25", got)
	}
}

func TestCacheResidentLoadsRetire(t *testing.T) {
	p := trace.Profile{
		Name: "smallws", MemFrac: 0.3, StoreFrac: 0.2,
		SeqFrac: 0.5, Streams: 2, WorkingSetKB: 64, // fits in the 512KB L2
		FpFrac: 0, DepFrac: 0.1,
	}
	c := newCore(t, p)
	// Without a memory system, all misses would deadlock; a 64KB
	// working set stays resident in the L2 after warmup fills.
	pendingFills := func() {
		h := c.Hierarchy()
		for {
			_, tok, ok := h.NextFetch()
			if !ok {
				break
			}
			h.FetchAccepted()
			h.Fill(tok)
			c.OnFill(tok, 0)
		}
	}
	for now := int64(0); now < 20000; now++ {
		c.Tick(now)
		pendingFills()
	}
	if c.Retired < 20000 {
		t.Fatalf("retired only %d instructions", c.Retired)
	}
	if c.LoadsRetired == 0 || c.StoresRetired == 0 {
		t.Fatalf("loads/stores = %d/%d", c.LoadsRetired, c.StoresRetired)
	}
}

func TestLoadMissBlocksRetirement(t *testing.T) {
	p := trace.Profile{
		Name: "missy", MemFrac: 1.0, StoreFrac: 0,
		SeqFrac: 1.0, Streams: 1, WorkingSetKB: 65536,
		FpFrac: 0, DepFrac: 0,
	}
	c := newCore(t, p)
	// Never deliver fills: the core must stall once the ROB fills with
	// pending loads (bounded by MSHRs for distinct lines).
	for now := int64(0); now < 5000; now++ {
		c.Tick(now)
	}
	if c.Retired > int64(DefaultConfig().ROB) {
		t.Fatalf("retired %d instructions with no memory responses", c.Retired)
	}
	if c.Drained() {
		t.Fatal("core claims drained with outstanding misses")
	}
}

func TestOnFillWakesLoads(t *testing.T) {
	p := trace.Profile{
		Name: "missy2", MemFrac: 1.0, StoreFrac: 0,
		SeqFrac: 1.0, Streams: 1, WorkingSetKB: 65536,
		FpFrac: 0, DepFrac: 0,
	}
	c := newCore(t, p)
	served := 0
	for now := int64(0); now < 20000; now++ {
		c.Tick(now)
		h := c.Hierarchy()
		for {
			_, tok, ok := h.NextFetch()
			if !ok {
				break
			}
			h.FetchAccepted()
			h.Fill(tok)
			c.OnFill(tok, now)
			served++
		}
	}
	if served == 0 {
		t.Fatal("no misses generated")
	}
	if c.Retired < 10000 {
		t.Fatalf("retired %d with immediate fills; pipeline is stuck", c.Retired)
	}
}

func TestPointerChaseSerializesMisses(t *testing.T) {
	chase := trace.Profile{
		Name: "chaser", MemFrac: 0.5, StoreFrac: 0,
		ChaseFrac: 1.0, Streams: 1, WorkingSetKB: 65536,
		FpFrac: 0, DepFrac: 0,
	}
	streamy := chase
	streamy.Name = "streamy"
	streamy.ChaseFrac = 0
	streamy.SeqFrac = 1.0

	run := func(p trace.Profile) (retired int64, maxOut int) {
		c := newCore(t, p)
		const lat = 50
		type fill struct {
			tok int
			at  int64
		}
		var fills []fill
		for now := int64(0); now < 30000; now++ {
			c.Tick(now)
			h := c.Hierarchy()
			for {
				_, tok, ok := h.NextFetch()
				if !ok {
					break
				}
				h.FetchAccepted()
				fills = append(fills, fill{tok, now + lat})
			}
			for len(fills) > 0 && fills[0].at <= now {
				h.Fill(fills[0].tok)
				c.OnFill(fills[0].tok, now)
				fills = fills[1:]
			}
			if o := c.Hierarchy().OutstandingMisses(); o > maxOut {
				maxOut = o
			}
		}
		return c.Retired, maxOut
	}
	rc, mc := run(chase)
	rs, ms := run(streamy)
	if mc > 4 {
		t.Errorf("pointer chase reached MLP %d, want near 1", mc)
	}
	if ms < 8 {
		t.Errorf("streaming reached MLP %d, want near MSHR count", ms)
	}
	if rc*2 > rs {
		t.Errorf("chase retired %d vs stream %d; serialization too weak", rc, rs)
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	p := trace.Profile{
		Name: "storer", MemFrac: 1.0, StoreFrac: 1.0,
		SeqFrac: 1.0, Streams: 1, WorkingSetKB: 65536,
		FpFrac: 0, DepFrac: 0,
	}
	c := newCore(t, p)
	// No fills: store misses allocate MSHRs; once MSHRs and the store
	// buffer fill, retirement stalls.
	for now := int64(0); now < 5000; now++ {
		c.Tick(now)
	}
	cfg := DefaultConfig()
	bound := int64(cfg.ROB + cfg.StoreBuffer + 64)
	if c.Retired > bound {
		t.Fatalf("retired %d stores without memory; want <= %d", c.Retired, bound)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		c := newCore(t, computeProfile())
		for now := int64(0); now < 5000; now++ {
			c.Tick(now)
		}
		return c.Retired
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

// TestIFetchStall: a code working set far beyond the cache hierarchy
// forces instruction-fetch misses to memory; dispatch must stall on the
// fetch and resume on the fill.
func TestIFetchStall(t *testing.T) {
	p := trace.Profile{
		Name: "bigcode", MemFrac: 0, WorkingSetKB: 64,
		Streams: 1, CodeKB: 2048, // 2MB of code >> 512KB L2
	}
	c := newCore(t, p)
	// Phase 1: never serve fills; dispatch must wedge on an I-miss.
	for now := int64(0); now < 3000; now++ {
		c.Tick(now)
	}
	stalled := c.Retired
	if stalled > 2000 {
		t.Fatalf("retired %d with unserved I-fetch misses", stalled)
	}
	// Phase 2: start serving fills; the core must make progress again.
	for now := int64(3000); now < 9000; now++ {
		c.Tick(now)
		h := c.Hierarchy()
		for {
			_, tok, ok := h.NextFetch()
			if !ok {
				break
			}
			h.FetchAccepted()
			h.Fill(tok)
			c.OnFill(tok, now)
		}
	}
	if c.Retired <= stalled+1000 {
		t.Fatalf("core did not resume after I-fetch fills: %d -> %d", stalled, c.Retired)
	}
}

// TestLoadDependenceOnStore: an instruction depending on a store (not a
// load) must still resolve.
func TestMixedDependences(t *testing.T) {
	p := trace.Profile{
		Name: "mixed", MemFrac: 0.4, StoreFrac: 0.5,
		SeqFrac: 0.3, ChaseFrac: 0.3, Streams: 1,
		WorkingSetKB: 64, DepFrac: 0.6,
	}
	c := newCore(t, p)
	for now := int64(0); now < 20000; now++ {
		c.Tick(now)
		h := c.Hierarchy()
		for {
			_, tok, ok := h.NextFetch()
			if !ok {
				break
			}
			h.FetchAccepted()
			h.Fill(tok)
			c.OnFill(tok, now)
		}
	}
	if c.Retired < 15000 {
		t.Fatalf("mixed-dependence stream wedged: retired %d", c.Retired)
	}
}
