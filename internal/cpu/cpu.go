// Package cpu implements the trace-driven out-of-order core model that
// stands in for the paper's IBM-Research structural simulator. It keeps
// the Table 5 structures that shape the memory request process — a
// 128-entry reorder buffer, dispatch/retire width, load/store queues,
// and the L1/L2 MSHR path — while abstracting functional-unit detail.
// Register dependences come from the trace generator; address
// dependences between loads model pointer chasing and bound a thread's
// memory-level parallelism, which is what the paper's latency-sensitive
// benchmarks (vpr) stress.
package cpu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/trace"
)

// Config sizes the core (Table 5 defaults via DefaultConfig).
type Config struct {
	ROB            int
	DispatchWidth  int
	RetireWidth    int
	LoadQueue      int // in-flight loads (issued, not completed)
	StoreBuffer    int // retired stores awaiting cache write
	LoadsPerCycle  int // cache load ports
	StoresPerCycle int // cache store ports
	IFetchEvery    int // instructions per I-fetch probe (line granularity)
}

// DefaultConfig returns the paper's Table 5 core parameters.
func DefaultConfig() Config {
	return Config{
		ROB:            128,
		DispatchWidth:  4,
		RetireWidth:    4,
		LoadQueue:      32,
		StoreBuffer:    16,
		LoadsPerCycle:  2,
		StoresPerCycle: 1,
		IFetchEvery:    16,
	}
}

// StreamConfig returns the accelerator-style streaming agent's core
// (trace.AgentStream): a deep reorder buffer and load/store queues with
// wide dispatch, so the agent's throughput depends on bandwidth, not on
// any individual load's latency — the latency-tolerant heterogeneous
// co-runner of the adversarial-isolation suite.
func StreamConfig() Config {
	return Config{
		ROB:            512,
		DispatchWidth:  8,
		RetireWidth:    8,
		LoadQueue:      128,
		StoreBuffer:    64,
		LoadsPerCycle:  4,
		StoresPerCycle: 2,
		IFetchEvery:    16,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ROB < 1 || c.DispatchWidth < 1 || c.RetireWidth < 1 ||
		c.LoadQueue < 1 || c.StoreBuffer < 1 || c.LoadsPerCycle < 1 ||
		c.StoresPerCycle < 1 || c.IFetchEvery < 1 {
		return fmt.Errorf("cpu: invalid config %+v", c)
	}
	return nil
}

const unresolved = int64(-1)
const nilIdx = int32(-1)

// entry is one reorder-buffer slot.
type entry struct {
	kind       trace.Kind
	addr       uint64
	lat        int32
	completeAt int64 // unresolved until known
	wakeHead   int32 // dependents waiting for this entry to resolve
	wakeNext   int32 // link in the producer's wake list
	inIssueQ   bool  // loads: queued for cache access
}

// Core is one hardware thread's processor model.
type Core struct {
	id      int
	cfg     Config
	gen     trace.Source
	genFast *trace.Generator // non-nil when gen is the synthetic generator (devirtualized hot path)
	hier    *cache.Hierarchy

	rob   []entry
	head  int32
	count int32

	issueQ    []int32 // rob slots of loads awaiting cache access
	issueRdy  []int64 // readyAt per issueQ entry
	issueNACK []bool  // entry NACKed (MSHR full); retry only after a fill
	inFlight  int     // loads issued, not completed

	storeBuf  []uint64 // retired store line addresses awaiting cache write
	storeNACK bool     // head store NACKed; retry only after a fill

	tokenWaiters [][]int32 // MSHR token -> rob slots awaiting fill
	tokenStall   int       // MSHR token stalling dispatch (ifetch), -1 none
	ifetchNACK   bool      // ifetch NACKed (MSHR full); parked until a fill
	ifetchRetry  bool      // retry the latched ifetchLine instead of CodeLine
	ifetchLine   uint64    // latched line address of a parked ifetch

	sinceIFetch int

	ins trace.Instr // dispatch scratch (avoids a per-instruction heap allocation)

	// Retired counts committed instructions.
	Retired int64
	// LoadsRetired and StoresRetired break down commits.
	LoadsRetired, StoresRetired int64
	// StallCycles counts cycles on which the ROB held instructions but
	// none retired (the classic ROB-stall / commit-stall measure). The
	// event-driven fast path credits skipped spans via CreditStall, so
	// the count is identical in fast and strict modes.
	StallCycles int64
}

// New returns a core running the given instruction source (a synthetic
// generator or a replayed trace) against the given private cache
// hierarchy.
func New(id int, cfg Config, gen trace.Source, hier *cache.Hierarchy) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		id:           id,
		cfg:          cfg,
		gen:          gen,
		hier:         hier,
		rob:          make([]entry, cfg.ROB),
		tokenWaiters: make([][]int32, 64),
		tokenStall:   -1,
	}
	c.genFast, _ = gen.(*trace.Generator)
	return c, nil
}

// ID returns the core's hardware thread id.
func (c *Core) ID() int { return c.id }

// Hierarchy returns the core's private cache hierarchy.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// Generator returns the core's instruction source.
func (c *Core) Generator() trace.Source { return c.gen }

// slot converts a logical ROB position (0 = oldest) to a ring index.
// head and pos are both below the ROB size, so one conditional subtract
// replaces the (much slower) integer modulo on this per-instruction path.
func (c *Core) slot(pos int32) int32 {
	s := c.head + pos
	if n := int32(len(c.rob)); s >= n {
		s -= n
	}
	return s
}

// resolve sets an entry's completion time and cascades to dependents
// whose times become computable.
func (c *Core) resolve(idx int32, at int64) {
	var stack [8]int32
	work := stack[:0]
	c.rob[idx].completeAt = at
	work = append(work, idx)
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		t := c.rob[p].completeAt
		w := c.rob[p].wakeHead
		c.rob[p].wakeHead = nilIdx
		for w != nilIdx {
			next := c.rob[w].wakeNext
			c.rob[w].wakeNext = nilIdx
			e := &c.rob[w]
			switch e.kind {
			case trace.KindLoad:
				// Address now computable: queue for cache access.
				c.pushIssue(w, t)
			default:
				// ALU/branch/store: completes lat cycles after operands.
				e.completeAt = t + int64(e.lat)
				work = append(work, w)
			}
			w = next
		}
	}
}

func (c *Core) pushIssue(idx int32, readyAt int64) {
	c.rob[idx].inIssueQ = true
	c.issueQ = append(c.issueQ, idx)
	c.issueRdy = append(c.issueRdy, readyAt)
	c.issueNACK = append(c.issueNACK, false)
}

// attachWaiter links waiter onto producer's wake list.
func (c *Core) attachWaiter(producer, waiter int32) {
	c.rob[waiter].wakeNext = c.rob[producer].wakeHead
	c.rob[producer].wakeHead = waiter
}

// Tick advances the core one cycle: retire, drain stores, issue loads,
// dispatch.
func (c *Core) Tick(now int64) {
	stalled := c.count > 0
	r0 := c.Retired
	c.retire(now)
	if stalled && c.Retired == r0 {
		c.StallCycles++
	}
	c.drainStores()
	c.issueLoads(now)
	c.dispatch(now)
}

// CreditStall accounts n skipped cycles as ROB stalls when the ROB is
// non-empty. The event-driven system simulator calls it for the span it
// skips past a core: a skipped cycle is by construction one on which
// Tick would have made no progress, so a non-empty ROB retires nothing.
func (c *Core) CreditStall(n int64) {
	if c.count > 0 {
		c.StallCycles += n
	}
}

func (c *Core) retire(now int64) {
	for n := 0; n < c.cfg.RetireWidth && c.count > 0; n++ {
		idx := c.head
		e := &c.rob[idx]
		if e.completeAt == unresolved || e.completeAt > now {
			return
		}
		if e.kind == trace.KindStore {
			if len(c.storeBuf) >= c.cfg.StoreBuffer {
				return // store buffer full: stall retirement
			}
			c.storeBuf = append(c.storeBuf, e.addr)
			c.StoresRetired++
		} else if e.kind == trace.KindLoad {
			c.LoadsRetired++
		}
		c.Retired++
		c.head++
		if c.head == int32(len(c.rob)) {
			c.head = 0
		}
		c.count--
	}
}

// drainStores performs the cache write for retired stores. Stores are
// posted: a store miss allocates an MSHR (write-allocate fetch) but
// wakes nothing; MSHR-full NACKs retry. A NACK can only clear when a
// fill frees an MSHR (the private hierarchy changes in no other way), so
// the retry is deferred until OnFill instead of re-probing the caches
// every cycle.
func (c *Core) drainStores() {
	if c.storeNACK {
		return
	}
	for n := 0; n < c.cfg.StoresPerCycle && len(c.storeBuf) > 0; n++ {
		res := c.hier.Access(cache.ClassStore, c.storeBuf[0])
		if res.NACK {
			c.storeNACK = true
			return
		}
		c.storeBuf = c.storeBuf[:copy(c.storeBuf, c.storeBuf[1:])]
	}
}

func (c *Core) issueLoads(now int64) {
	issued := 0
	for i := 0; i < len(c.issueQ) && issued < c.cfg.LoadsPerCycle; i++ {
		if c.issueNACK[i] || c.issueRdy[i] > now || c.inFlight >= c.cfg.LoadQueue {
			continue
		}
		idx := c.issueQ[i]
		e := &c.rob[idx]
		res := c.hier.Access(cache.ClassLoad, e.addr)
		if res.NACK {
			// MSHR full: the outcome cannot change until a fill frees
			// one, so park the entry instead of re-probing every cycle.
			c.issueNACK[i] = true
			continue
		}
		issued++
		e.inIssueQ = false
		c.inFlight++
		// Remove from queue (order need not be preserved, but keep it
		// for FIFO fairness among ready loads).
		c.issueQ = append(c.issueQ[:i], c.issueQ[i+1:]...)
		c.issueRdy = append(c.issueRdy[:i], c.issueRdy[i+1:]...)
		c.issueNACK = append(c.issueNACK[:i], c.issueNACK[i+1:]...)
		i--
		if res.Hit {
			c.resolve(idx, now+int64(res.Latency))
			c.inFlight--
			continue
		}
		c.addTokenWaiter(res.Token, idx)
	}
}

func (c *Core) addTokenWaiter(token int, idx int32) {
	for token >= len(c.tokenWaiters) {
		c.tokenWaiters = append(c.tokenWaiters, nil)
	}
	c.tokenWaiters[token] = append(c.tokenWaiters[token], idx)
}

// OnFill delivers a memory fill for an MSHR token: all loads waiting on
// it complete and the hierarchy installs the line. The system simulator
// calls this from the controller's read-completion callback.
func (c *Core) OnFill(token int, now int64) {
	if c.tokenStall == token {
		c.tokenStall = -1
	}
	// The hierarchy changed (an MSHR freed and a line was installed):
	// every parked MSHR-full NACK may now succeed.
	c.storeNACK = false
	c.ifetchNACK = false
	for i := range c.issueNACK {
		c.issueNACK[i] = false
	}
	if token < len(c.tokenWaiters) {
		ws := c.tokenWaiters[token]
		c.tokenWaiters[token] = ws[:0]
		for _, idx := range ws {
			c.resolve(idx, now+1)
			c.inFlight--
		}
	}
}

func (c *Core) dispatch(now int64) {
	if c.tokenStall >= 0 || c.ifetchNACK {
		return // waiting for an instruction-fetch fill or a free MSHR
	}
	for n := 0; n < c.cfg.DispatchWidth && int(c.count) < c.cfg.ROB; n++ {
		if c.ifetchRetry || c.sinceIFetch >= c.cfg.IFetchEvery {
			line, ok := c.ifetchLine, true
			if !c.ifetchRetry {
				if c.genFast != nil {
					line, ok = c.genFast.CodeLine()
				} else {
					line, ok = c.gen.CodeLine()
				}
			}
			if ok {
				res := c.hier.Access(cache.ClassIFetch, line)
				switch {
				case res.NACK:
					// MSHR full: park the fetch and retry the same line
					// once a fill frees an entry (OnFill clears the NACK).
					c.ifetchLine = line
					c.ifetchRetry = true
					c.ifetchNACK = true
					return
				case !res.Hit:
					c.ifetchRetry = false
					c.sinceIFetch = 0
					c.tokenStall = res.Token
					return
				}
			}
			c.ifetchRetry = false
			c.sinceIFetch = 0
		}
		c.sinceIFetch++

		ins := &c.ins
		if c.genFast != nil {
			c.genFast.Next(ins)
		} else {
			c.gen.Next(ins)
		}
		pos := c.count
		idx := c.slot(pos)
		e := &c.rob[idx]
		*e = entry{
			kind:       ins.Kind,
			addr:       ins.Addr,
			lat:        int32(ins.Lat),
			completeAt: unresolved,
			wakeHead:   nilIdx,
			wakeNext:   nilIdx,
		}
		if e.kind == trace.KindStore {
			e.lat = 1
		}
		c.count++

		// Resolve the register/address dependence.
		depAt := now // operands ready now if no in-ROB producer
		depPending := int32(nilIdx)
		if ins.Dep > 0 && int32(ins.Dep) <= pos {
			pIdx := c.slot(pos - int32(ins.Dep))
			p := &c.rob[pIdx]
			if p.completeAt == unresolved {
				depPending = pIdx
			} else if p.completeAt > depAt {
				depAt = p.completeAt
			}
		}
		switch {
		case depPending != nilIdx:
			c.attachWaiter(depPending, idx)
		case e.kind == trace.KindLoad:
			c.pushIssue(idx, depAt)
		default:
			e.completeAt = depAt + int64(e.lat)
		}
	}
}

// Forever is the NextWork sentinel for "blocked until a memory fill":
// no amount of waiting will make Tick progress without external input.
const Forever = int64(1) << 62

// NextWork returns a conservative bound on the earliest cycle >= from at
// which Tick can make progress: `from` itself when the core is busy, a
// later cycle when every pipeline stage is waiting on a known time, and
// Forever when all stages are blocked on a memory fill. The bound is
// safe to cache until the next OnFill: between fills the core's inputs
// change only with its own ticks.
func (c *Core) NextWork(from int64) int64 {
	// Dispatch: runs every cycle unless stalled on an ifetch fill, an
	// MSHR-full ifetch NACK, or a full ROB.
	if c.tokenStall < 0 && !c.ifetchNACK && int(c.count) < c.cfg.ROB {
		return from
	}
	// Stores: the drain probes the cache every cycle while unparked.
	if len(c.storeBuf) > 0 && !c.storeNACK {
		return from
	}
	next := Forever
	// Retire: the oldest instruction completes at a known cycle, unless
	// it is unresolved (waiting on a fill) or a store stalled on a full
	// store buffer (which drains only after a fill, handled above).
	if c.count > 0 {
		e := &c.rob[c.head]
		if e.completeAt != unresolved &&
			!(e.kind == trace.KindStore && len(c.storeBuf) >= c.cfg.StoreBuffer) {
			if e.completeAt <= from {
				return from
			}
			next = e.completeAt
		}
	}
	// Loads: queued entries become issuable at known ready times; parked
	// NACKs and a full load queue clear only on a fill.
	if c.inFlight < c.cfg.LoadQueue {
		for i, r := range c.issueRdy {
			if c.issueNACK[i] {
				continue
			}
			if r <= from {
				return from
			}
			if r < next {
				next = r
			}
		}
	}
	return next
}

// Drained reports whether the core has no in-flight memory activity
// (used by tests to settle the system).
func (c *Core) Drained() bool {
	return c.inFlight == 0 && len(c.storeBuf) == 0 && c.hier.OutstandingMisses() == 0
}
