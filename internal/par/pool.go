// Package par provides a low-latency fork/join worker pool for
// cycle-granular simulation work. The unit of work is tiny — one
// channel's bank scan or one core's cycle, on the order of a
// microsecond — so a naive channel-per-task handoff would cost more
// than the work itself. Workers instead spin briefly on a generation
// counter between fork points and park on a channel only after the
// pool has been idle for a while, giving sub-microsecond dispatch in
// the hot loop and zero CPU burn when the pool is idle.
//
// The pool is deliberately not a general-purpose scheduler: one
// goroutine (the owner) calls Run, the body must not call Run
// reentrantly, and every Run is a full barrier — when Run returns,
// every invocation of the body has returned and its effects are
// visible to the owner.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// spinRounds bounds how long a worker spins on the generation counter
// before parking. Each round includes a Gosched yield, so the wall time
// depends on scheduler load; the figure is chosen so workers stay hot
// across the serial gaps between simulation phases (a few microseconds)
// but park during genuinely idle periods.
const spinRounds = 4096

// Pool is a fixed-size fork/join pool. The zero value is not usable;
// call New. A nil *Pool is valid and means "no parallelism": callers
// are expected to fall back to a serial loop.
type Pool struct {
	fn   func(int)    // body of the current generation
	n    int32        // task count of the current generation
	next atomic.Int32 // next unclaimed task index
	gen  atomic.Uint32
	acks atomic.Int32 // workers that finished the current generation
	stop atomic.Bool

	workers []*worker
	wg      sync.WaitGroup
}

type worker struct {
	parked atomic.Bool
	wake   chan struct{}
}

// New returns a pool with the given total parallelism (the owner
// goroutine plus size-1 background workers), capped at GOMAXPROCS.
// size <= 1 returns nil: the serial fallback needs no pool.
func New(size int) *Pool {
	if max := runtime.GOMAXPROCS(0); size > max {
		size = max
	}
	if size <= 1 {
		return nil
	}
	p := &Pool{workers: make([]*worker, size-1)}
	for i := range p.workers {
		w := &worker{wake: make(chan struct{}, 1)}
		p.workers[i] = w
		p.wg.Add(1)
		go p.loop(w)
	}
	return p
}

// Size returns the total parallelism (owner + workers); 1 for nil.
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return len(p.workers) + 1
}

// Run invokes fn(i) for every i in [0, n), distributing indices across
// the owner goroutine and the pool workers, and returns once every
// invocation has completed. fn must not call Run on the same pool.
func (p *Pool) Run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	p.fn = fn
	p.n = int32(n)
	p.next.Store(0)
	p.acks.Store(0)
	p.gen.Add(1)
	for _, w := range p.workers {
		if w.parked.Load() {
			select {
			case w.wake <- struct{}{}:
			default:
			}
		}
	}
	// The owner participates, then waits for every worker to finish the
	// generation. Waiting for worker acks (not just task completions)
	// guarantees no worker still holds a reference to fn or the claim
	// state when Run returns, so the next Run can reuse them.
	p.claim(fn)
	for p.acks.Load() != int32(len(p.workers)) {
		runtime.Gosched()
	}
}

// claim executes tasks until the current generation's index space is
// exhausted.
func (p *Pool) claim(fn func(int)) {
	n := p.n
	for {
		i := p.next.Add(1) - 1
		if i >= n {
			return
		}
		fn(int(i))
	}
}

// Close stops the workers and waits for them to exit. The pool must
// not be used afterwards. Close on a nil pool is a no-op.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.stop.Store(true)
	for _, w := range p.workers {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	p.wg.Wait()
}

// loop is one worker's life: wait for a new generation, drain the task
// index space, acknowledge, repeat.
func (p *Pool) loop(w *worker) {
	defer p.wg.Done()
	last := uint32(0)
	for {
		spins := 0
		for p.gen.Load() == last {
			if p.stop.Load() {
				return
			}
			spins++
			if spins < spinRounds {
				runtime.Gosched()
				continue
			}
			// Park. Re-check the generation after publishing the parked
			// flag: Run may have bumped it between our last load and the
			// flag store, in which case its wake token may already be in
			// the channel (consumed by a later park; spurious wakes are
			// benign) or not coming at all.
			w.parked.Store(true)
			if p.gen.Load() != last || p.stop.Load() {
				w.parked.Store(false)
				continue
			}
			<-w.wake
			w.parked.Store(false)
		}
		last = p.gen.Load()
		if p.stop.Load() {
			return
		}
		p.claim(p.fn)
		p.acks.Add(1)
	}
}
