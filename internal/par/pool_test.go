package par

import (
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestMain raises GOMAXPROCS so the pool is real even on single-CPU
// machines (New caps at GOMAXPROCS and degrades to nil below 2): the
// runtime multiplexes the workers on however many cores exist, which
// is exactly what the correctness and race coverage here needs.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

// TestPoolRunsEveryTaskOnce drives many generations of varying widths
// and checks every index is executed exactly once per Run, including
// widths above and below the worker count.
func TestPoolRunsEveryTaskOnce(t *testing.T) {
	p := New(4)
	if p == nil {
		t.Skip("GOMAXPROCS too small for a pool")
	}
	defer p.Close()
	var hits [64]atomic.Int32
	for gen := 0; gen < 500; gen++ {
		n := gen%len(hits) + 1
		p.Run(n, func(i int) { hits[i].Add(1) })
		for i := 0; i < n; i++ {
			if got := hits[i].Swap(0); got != 1 {
				t.Fatalf("gen %d: index %d ran %d times, want 1", gen, i, got)
			}
		}
		for i := n; i < len(hits); i++ {
			if got := hits[i].Load(); got != 0 {
				t.Fatalf("gen %d: index %d beyond n=%d ran %d times", gen, i, n, got)
			}
		}
	}
}

// TestPoolBarrier checks Run is a full barrier: effects of every task
// are visible to the owner when Run returns, across rapid-fire
// generations from plain (non-atomic) writes.
func TestPoolBarrier(t *testing.T) {
	p := New(runtime.GOMAXPROCS(0))
	if p == nil {
		t.Skip("GOMAXPROCS too small for a pool")
	}
	defer p.Close()
	vals := make([]int64, 128)
	for gen := 1; gen <= 2000; gen++ {
		g := int64(gen)
		p.Run(len(vals), func(i int) { vals[i] = g })
		for i, v := range vals {
			if v != g {
				t.Fatalf("gen %d: vals[%d] = %d not visible after Run", gen, i, v)
			}
		}
	}
}

// TestPoolParkAndWake forces the workers to park (idle beyond the spin
// budget) and checks the next Run still completes.
func TestPoolParkAndWake(t *testing.T) {
	p := New(4)
	if p == nil {
		t.Skip("GOMAXPROCS too small for a pool")
	}
	defer p.Close()
	var count atomic.Int32
	p.Run(8, func(int) { count.Add(1) })
	if got := count.Swap(0); got != 8 {
		t.Fatalf("first Run executed %d tasks, want 8", got)
	}
	// Workers spin a bounded number of Gosched rounds, then park.
	time.Sleep(100 * time.Millisecond)
	p.Run(8, func(int) { count.Add(1) })
	if got := count.Load(); got != 8 {
		t.Fatalf("post-park Run executed %d tasks, want 8", got)
	}
}

// TestPoolNil checks the serial-fallback contract of a nil pool.
func TestPoolNil(t *testing.T) {
	var p *Pool
	if got := p.Size(); got != 1 {
		t.Fatalf("nil pool Size() = %d, want 1", got)
	}
	p.Close() // must not panic
	if q := New(1); q != nil {
		t.Fatalf("New(1) = %v, want nil", q)
	}
}
