package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/memctrl"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// startSim builds a small instrumented two-thread system with epoch
// sampling enabled and steps it through its warmup so the sampler and
// fairness monitor hold real data.
func startSim(t *testing.T, cycles int64) *sim.System {
	t.Helper()
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		Workload:       []trace.Profile{vpr, art},
		Policy:         sim.FQVFTF,
		Seed:           11,
		SampleInterval: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Step(cycles)
	return s
}

func get(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestServerEndpoints scrapes every endpoint of a server backed by a
// real simulation and checks each payload is well-formed and consistent
// with the simulation's state.
func TestServerEndpoints(t *testing.T) {
	s := startSim(t, 30_000)
	progress := NewProgress(3)
	progress.Start("fig5")
	progress.AddCycles(30_000)

	srv, err := Start(Config{
		Addr:     "127.0.0.1:0",
		Sampler:  s.Sampler(),
		Fairness: s.Fairness(),
		Progress: progress,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	client := &http.Client{}
	defer client.CloseIdleConnections()

	code, body := get(t, client, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"fqms_sim_cycle 30000",
		"# TYPE fqms_memctrl_cmd_ACT gauge",
		"fqms_progress_sim_cycles 30000",
		"fqms_fairness_thread0_cum_shortfall",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get(t, client, srv.URL()+"/series")
	if code != http.StatusOK {
		t.Fatalf("/series: status %d", code)
	}
	var series struct {
		Interval int64            `json:"interval"`
		Epochs   int64            `json:"epochs"`
		Samples  []metrics.Sample `json:"samples"`
	}
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("/series: invalid JSON: %v", err)
	}
	if series.Interval != 5_000 || series.Epochs != 7 || len(series.Samples) != 7 {
		t.Errorf("/series: interval=%d epochs=%d samples=%d, want 5000/7/7",
			series.Interval, series.Epochs, len(series.Samples))
	}
	// ?since= filters by boundary cycle.
	code, body = get(t, client, srv.URL()+"/series?since=20000")
	if code != http.StatusOK {
		t.Fatalf("/series?since: status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("/series?since: invalid JSON: %v", err)
	}
	if len(series.Samples) != 2 {
		t.Errorf("/series?since=20000 returned %d samples, want 2", len(series.Samples))
	}

	code, body = get(t, client, srv.URL()+"/fairness")
	if code != http.StatusOK {
		t.Fatalf("/fairness: status %d", code)
	}
	var fair struct {
		Summary memctrl.FairnessSummary  `json:"summary"`
		Samples []memctrl.FairnessSample `json:"samples"`
	}
	if err := json.Unmarshal([]byte(body), &fair); err != nil {
		t.Fatalf("/fairness: invalid JSON: %v", err)
	}
	if fair.Summary.Threads != 2 || len(fair.Samples) != 7 {
		t.Errorf("/fairness: threads=%d samples=%d, want 2/7", fair.Summary.Threads, len(fair.Samples))
	}

	code, body = get(t, client, srv.URL()+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress: status %d", code)
	}
	var prog ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress: invalid JSON: %v", err)
	}
	if prog.Total != 3 || prog.Current != "fig5" || prog.SimCycles != 30_000 {
		t.Errorf("/progress: %+v", prog)
	}

	if code, _ = get(t, client, srv.URL()+"/"); code != http.StatusOK {
		t.Errorf("index: status %d", code)
	}
	if code, _ = get(t, client, srv.URL()+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof: status %d", code)
	}
	if code, _ = get(t, client, srv.URL()+"/no-such-page"); code != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", code)
	}
}

// TestServerConcurrentScrape hammers the server from several clients
// while the simulation keeps stepping on its own goroutine — the
// publication contract under test is that scrapes only ever touch
// mutex-guarded copies, never the live registry. Run with -race this
// is the Func-gauge safety test the observability layer promises.
func TestServerConcurrentScrape(t *testing.T) {
	s := startSim(t, 10_000)
	srv, err := Start(Config{
		Addr:     "127.0.0.1:0",
		Sampler:  s.Sampler(),
		Fairness: s.Fairness(),
		Progress: NewProgress(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	stop := make(chan struct{})
	var simDone sync.WaitGroup
	simDone.Add(1)
	go func() {
		defer simDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Step(2_000)
			}
		}
	}()

	var scrapers sync.WaitGroup
	for i := 0; i < 4; i++ {
		scrapers.Add(1)
		go func(i int) {
			defer scrapers.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			paths := []string{"/metrics", "/series", "/fairness", "/progress"}
			for n := 0; n < 25; n++ {
				path := paths[(i+n)%len(paths)]
				resp, err := client.Get(srv.URL() + path)
				if err != nil {
					t.Errorf("scrape %s: %v", path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("scrape %s: read: %v", path, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape %s: status %d", path, resp.StatusCode)
				}
				if len(body) == 0 {
					t.Errorf("scrape %s: empty body", path)
				}
			}
		}(i)
	}
	scrapers.Wait()
	close(stop)
	simDone.Wait()
}

// TestServerShutdown checks the server exits cleanly: Shutdown returns
// without error, the port stops accepting, and no goroutines leak.
func TestServerShutdown(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, err := Start(Config{Addr: "127.0.0.1:0", Progress: NewProgress(0)})
	if err != nil {
		t.Fatal(err)
	}
	url := srv.URL()
	client := &http.Client{Timeout: 2 * time.Second}
	if code, body := get(t, client, url+"/metrics"); code != http.StatusOK || !strings.Contains(body, "fqms_progress_done") {
		t.Fatalf("pre-shutdown scrape failed: status %d body %q", code, body)
	}
	client.CloseIdleConnections()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := client.Get(url + "/metrics"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}

	// The serve goroutine and any per-connection goroutines must wind
	// down; poll because connection teardown is asynchronous.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Shutting down twice is harmless.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestServerBindFailure: a bad address reports an error instead of
// panicking or leaking a goroutine.
func TestServerBindFailure(t *testing.T) {
	if _, err := Start(Config{Addr: "256.0.0.1:bogus"}); err == nil {
		t.Fatal("expected bind error")
	}
}
