package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/memctrl"
	"repro/internal/metrics"
)

// Config wires the status server's data sources. Every field except
// Addr is optional: a nil source just leaves its endpoints empty (or
// returning 404 for /series and /fairness, whose payloads have no
// meaningful empty form).
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:0" for an ephemeral
	// port or ":9300" to expose the server.
	Addr string

	// Sampler feeds /metrics (latest cumulative snapshot, Prometheus
	// text) and /series (per-epoch deltas, JSON).
	Sampler *metrics.Sampler

	// Fairness feeds /fairness (per-thread service-share series).
	Fairness *memctrl.FairnessMonitor

	// Interference feeds /interference (the latest published
	// who-delayed-whom attribution snapshot, JSON) and appends the
	// fqms_interference_cycles_total family to /metrics. Nil, or a
	// controller running without attribution, leaves the endpoint 404.
	Interference *memctrl.Controller

	// Progress feeds /progress and the fqms_progress_* gauges.
	Progress *Progress

	// Checkpoint feeds POST /checkpoint: each request triggers an
	// on-demand snapshot at the simulation loop's next safe point and
	// returns once the file is on disk. Nil leaves the endpoint 404.
	Checkpoint *CheckpointTrigger
}

// Server is a running status server. Start it with Start, stop it with
// Shutdown.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Start binds cfg.Addr synchronously — the returned server's URL is
// immediately scrapeable — and serves on a background goroutine until
// Shutdown.
func Start(cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: newMux(cfg)},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		// Serve returns ErrServerClosed after Shutdown; anything else
		// is a listener failure with nobody to report it to, and the
		// sweep must not die for its status page, so it is dropped.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// URL returns the server's base URL, e.g. "http://127.0.0.1:43211".
func (s *Server) URL() string { return "http://" + s.ln.Addr().String() }

// Shutdown gracefully stops the server: no new connections, in-flight
// requests drained (subject to ctx), serve goroutine exited.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// newMux builds the endpoint map.
func newMux(cfg Config) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "fqms status server\n\n"+
			"/metrics        Prometheus text exposition (latest epoch snapshot)\n"+
			"/series         JSON per-epoch metric deltas (?since=<cycle>)\n"+
			"/fairness       JSON per-thread service-share series (?since=<cycle>)\n"+
			"/interference   JSON who-delayed-whom attribution matrix\n"+
			"/progress       JSON sweep progress\n"+
			"/checkpoint     POST: write a checkpoint at the next safe point\n"+
			"/debug/pprof/   Go profiling\n")
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var snap metrics.Snapshot
		if cfg.Sampler != nil {
			snap, _ = cfg.Sampler.Latest()
		}
		if err := WritePrometheus(w, snap); err != nil {
			return
		}
		if cfg.Interference != nil {
			if isnap, ok := cfg.Interference.PublishedInterference(); ok {
				writeInterferenceCounters(w, isnap)
			}
		}
		if cfg.Progress != nil {
			writeProgressGauges(w, cfg.Progress.Snapshot())
		}
	})

	mux.HandleFunc("/interference", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Interference == nil || !cfg.Interference.InterferenceEnabled() {
			http.Error(w, "interference attribution not enabled", http.StatusNotFound)
			return
		}
		// Before the first epoch boundary the published snapshot is the
		// zero value: a valid, empty matrix.
		snap, _ := cfg.Interference.PublishedInterference()
		writeJSON(w, snap)
	})

	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Sampler == nil {
			http.Error(w, "no sampler attached", http.StatusNotFound)
			return
		}
		writeJSON(w, struct {
			Interval int64            `json:"interval"`
			Epochs   int64            `json:"epochs"`
			Samples  []metrics.Sample `json:"samples"`
		}{cfg.Sampler.Interval(), cfg.Sampler.Epochs(), cfg.Sampler.Samples(sinceParam(r))})
	})

	mux.HandleFunc("/fairness", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Fairness == nil {
			http.Error(w, "no fairness monitor attached", http.StatusNotFound)
			return
		}
		writeJSON(w, struct {
			Summary memctrl.FairnessSummary  `json:"summary"`
			Samples []memctrl.FairnessSample `json:"samples"`
		}{cfg.Fairness.Summary(), cfg.Fairness.Samples(sinceParam(r))})
	})

	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		var snap ProgressSnapshot
		if cfg.Progress != nil {
			snap = cfg.Progress.Snapshot()
		}
		writeJSON(w, snap)
	})

	mux.HandleFunc("/checkpoint", handleCheckpoint(cfg.Checkpoint))

	// pprof is wired explicitly because the server uses its own mux
	// (importing net/http/pprof only registers on the default one).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// sinceParam parses ?since=<cycle>; absent or malformed means all.
func sinceParam(r *http.Request) int64 {
	v := r.URL.Query().Get("since")
	if v == "" {
		return -1
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return -1
	}
	return n
}

// writeInterferenceCounters appends the who-delayed-whom matrix to a
// Prometheus exposition as one labelled counter family. Only non-zero
// cells are emitted (the matrix is quadratic in threads and mostly
// sparse); the aggressor label "none" is the no-aggressor bucket.
func writeInterferenceCounters(w http.ResponseWriter, s memctrl.InterferenceSnapshot) {
	const pn = MetricPrefix + "interference_cycles"
	fmt.Fprintf(w, "# TYPE %s counter\n", pn)
	for v, row := range s.Cube {
		for a, cells := range row {
			aggr := "none"
			if a < s.Threads {
				aggr = strconv.Itoa(a)
			}
			for c, n := range cells {
				if n == 0 {
					continue
				}
				fmt.Fprintf(w, "%s_total{victim=\"%d\",aggressor=\"%s\",cause=\"%s\"} %d\n",
					pn, v, aggr, s.Causes[c], n)
			}
		}
	}
}

// writeProgressGauges appends the sweep-progress family to a
// Prometheus exposition.
func writeProgressGauges(w http.ResponseWriter, p ProgressSnapshot) {
	fmt.Fprintf(w, "# TYPE fqms_progress_done gauge\nfqms_progress_done %d\n", p.Done)
	fmt.Fprintf(w, "# TYPE fqms_progress_total gauge\nfqms_progress_total %d\n", p.Total)
	fmt.Fprintf(w, "# TYPE fqms_progress_sim_cycles gauge\nfqms_progress_sim_cycles %d\n", p.SimCycles)
	fmt.Fprintf(w, "# TYPE fqms_progress_cycles_per_sec gauge\nfqms_progress_cycles_per_sec %g\n", p.CyclesPerSec)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
