// Package telemetry serves a running simulation's observability
// surfaces over HTTP: Prometheus text exposition of the live metrics
// snapshot, JSON time series from the epoch sampler and the fairness
// monitor, sweep progress, and net/http/pprof.
//
// The package never touches a live registry. Everything it reads —
// sampler snapshots, fairness rings, progress counters — is published
// under a mutex by the producing goroutine, so scraping is safe while
// the simulation runs flat out (see metrics.Sampler's concurrency
// contract).
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// MetricPrefix namespaces every exposed metric. Internal dotted names
// like "memctrl.fq.inversions" become "fqms_memctrl_fq_inversions".
const MetricPrefix = "fqms_"

// PromName converts an internal metric name to a valid Prometheus
// metric name: the fqms_ prefix plus the name with every character
// outside [a-zA-Z0-9_:] replaced by an underscore. Distinct internal
// names that sanitize identically would collide; registrants keep
// names unambiguous under this mapping (ours differ by more than
// punctuation).
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(MetricPrefix) + len(name))
	b.WriteString(MetricPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as <name>_total, gauges as-is, and
// log2 histograms as cumulative le-bucketed series with _sum and
// _count. Families are emitted in sorted name order so the output is
// deterministic and diffable.
func WritePrometheus(w io.Writer, snap metrics.Snapshot) error {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, snap.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writeHistogram(w, PromName(name), snap.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits one histogram family. The snapshot's buckets are
// per-bucket counts at increasing right edges; Prometheus buckets are
// cumulative, so a running sum converts between the two. The +Inf
// bucket always equals the total count.
func writeHistogram(w io.Writer, pn string, h metrics.HistogramStats) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b[1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b[0], cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		pn, h.Count, pn, h.Sum, pn, h.Count)
	return err
}
