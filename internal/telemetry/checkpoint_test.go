package telemetry

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestCheckpointTriggerPoll covers the trigger's rendezvous: Poll is a
// no-op when idle, services every blocked requester at once, and fans
// the checkpoint's error out to all of them.
func TestCheckpointTriggerPoll(t *testing.T) {
	trig := NewCheckpointTrigger()

	var calls atomic.Int64
	trig.Poll(func() error { calls.Add(1); return nil })
	if calls.Load() != 0 {
		t.Fatal("idle Poll ran the checkpoint function")
	}

	// Three concurrent requesters, one Poll, one checkpoint write.
	const n = 3
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { errs <- trig.Request(context.Background()) }()
	}
	// Poll until all requesters have registered; the loop mirrors the
	// simulation loop calling Poll between step chunks.
	deadline := time.After(5 * time.Second)
	for calls.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("Poll never saw the requests")
		default:
		}
		trig.Poll(func() error { calls.Add(1); return nil })
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("requester %d: %v", i, err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("checkpoint function ran %d times for one batch, want 1", calls.Load())
	}

	// Errors propagate to the requester.
	boom := errors.New("disk full")
	done := make(chan error, 1)
	go func() { done <- trig.Request(context.Background()) }()
	for {
		served := false
		trig.Poll(func() error { served = true; return boom })
		if served {
			break
		}
	}
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("got %v, want the checkpoint error", err)
	}

	// A cancelled context unblocks the requester without a Poll.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := trig.Request(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request returned %v", err)
	}
}

// TestCheckpointEndpoint exercises POST /checkpoint through a real
// server: method filtering, the 404 when no trigger is wired, and a
// full round trip with a polling loop standing in for the simulator.
func TestCheckpointEndpoint(t *testing.T) {
	// No trigger wired: 404.
	bare, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Shutdown(context.Background())
	resp, err := http.Post(bare.URL()+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no trigger: status %d, want 404", resp.StatusCode)
	}

	trig := NewCheckpointTrigger()
	srv, err := Start(Config{Addr: "127.0.0.1:0", Checkpoint: trig})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	// Wrong method: 405.
	status, _ := get(t, http.DefaultClient, srv.URL()+"/checkpoint")
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("GET /checkpoint: status %d, want 405", status)
	}

	// Simulated stepping loop servicing on-demand checkpoints.
	var wrote atomic.Int64
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				trig.Poll(func() error { wrote.Add(1); return nil })
			}
		}
	}()

	resp, err = http.Post(srv.URL()+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 64)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /checkpoint: status %d, body %q", resp.StatusCode, body[:n])
	}
	if !strings.Contains(string(body[:n]), "checkpoint written") {
		t.Fatalf("POST /checkpoint body %q", body[:n])
	}
	if wrote.Load() == 0 {
		t.Fatal("endpoint returned OK but no checkpoint was written")
	}
}
