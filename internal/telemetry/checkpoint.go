package telemetry

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
)

// CheckpointTrigger bridges an HTTP "checkpoint now" request into the
// simulation loop. The simulator cannot be checkpointed mid-cycle from
// another goroutine, so the handler enqueues a request and blocks while
// the loop — which calls Poll between step chunks — performs the
// checkpoint on its own goroutine and reports back.
type CheckpointTrigger struct {
	mu      sync.Mutex
	waiters []chan error
}

// NewCheckpointTrigger returns an idle trigger.
func NewCheckpointTrigger() *CheckpointTrigger {
	return &CheckpointTrigger{}
}

// Request asks the simulation loop for a checkpoint and blocks until
// the loop services it (returning the checkpoint's outcome) or ctx
// expires. Safe for concurrent use; concurrent requests are all
// answered by the next Poll.
func (t *CheckpointTrigger) Request(ctx context.Context) error {
	ch := make(chan error, 1)
	t.mu.Lock()
	t.waiters = append(t.waiters, ch)
	t.mu.Unlock()
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Poll runs fn if any checkpoint requests are pending and delivers its
// outcome to every blocked requester. The simulation loop calls it at
// safe points (between step chunks); it is cheap when idle.
func (t *CheckpointTrigger) Poll(fn func() error) {
	t.mu.Lock()
	waiters := t.waiters
	t.waiters = nil
	t.mu.Unlock()
	if len(waiters) == 0 {
		return
	}
	err := fn()
	for _, ch := range waiters {
		ch <- err
	}
}

// errNoCheckpoint is returned on /checkpoint when no trigger is wired.
var errNoCheckpoint = errors.New("checkpointing not enabled")

// handleCheckpoint serves POST /checkpoint: it triggers an on-demand
// checkpoint at the simulator's next safe point and returns once the
// snapshot file is durably on disk.
func handleCheckpoint(t *CheckpointTrigger) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if t == nil {
			http.Error(w, errNoCheckpoint.Error(), http.StatusNotFound)
			return
		}
		if err := t.Request(r.Context()); err != nil {
			http.Error(w, fmt.Sprintf("checkpoint failed: %v", err), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "checkpoint written")
	}
}
