package telemetry

import (
	"sync"
	"time"
)

// Progress tracks a sweep's position for the status server: how many
// units (figures, runs) are done, which one is in flight, and the
// aggregate simulated-cycle throughput. All methods are safe for
// concurrent use; the sweep goroutines write, HTTP handlers read.
type Progress struct {
	mu      sync.Mutex
	total   int
	done    int
	current string
	cycles  int64
	started time.Time
}

// NewProgress returns a tracker expecting total units of work (0 when
// the total is unknown up front). The throughput clock starts now.
func NewProgress(total int) *Progress {
	return &Progress{total: total, started: time.Now()}
}

// Start records that the named unit is now in flight.
func (p *Progress) Start(name string) {
	p.mu.Lock()
	p.current = name
	p.mu.Unlock()
}

// Finish records one completed unit; the current marker clears if it
// still names that unit.
func (p *Progress) Finish(name string) {
	p.mu.Lock()
	p.done++
	if p.current == name {
		p.current = ""
	}
	p.mu.Unlock()
}

// AddCycles credits n simulated cycles toward the throughput figure.
func (p *Progress) AddCycles(n int64) {
	p.mu.Lock()
	p.cycles += n
	p.mu.Unlock()
}

// ProgressSnapshot is a point-in-time view for /progress and the
// progress gauges on /metrics.
type ProgressSnapshot struct {
	Total   int    `json:"total"`
	Done    int    `json:"done"`
	Current string `json:"current,omitempty"`

	// SimCycles is the cumulative simulated cycles across all units;
	// CyclesPerSec divides it by wall-clock elapsed seconds.
	SimCycles    int64   `json:"sim_cycles"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// Snapshot returns the current state.
func (p *Progress) Snapshot() ProgressSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Total:      p.total,
		Done:       p.done,
		Current:    p.current,
		SimCycles:  p.cycles,
		ElapsedSec: time.Since(p.started).Seconds(),
	}
	if s.ElapsedSec > 0 {
		s.CyclesPerSec = float64(s.SimCycles) / s.ElapsedSec
	}
	return s
}
