package telemetry

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"memctrl.fq.inversions":      "fqms_memctrl_fq_inversions",
		"dram.chan0.bank3.activates": "fqms_dram_chan0_bank3_activates",
		"a.b-c/d e%f":                "fqms_a_b_c_d_e_f",
		"already_fine:name":          "fqms_already_fine:name",
		"UPPER.Case9":                "fqms_UPPER_Case9",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPrometheusExposition checks the exposition against a registry
// with known contents: counters get the _total suffix and a counter
// TYPE line, gauges a gauge TYPE line, and histograms cumulative
// le-buckets whose final +Inf bucket equals _count.
func TestPrometheusExposition(t *testing.T) {
	reg := metrics.New()
	reg.Counter("memctrl.fq.inversions").Add(7)
	reg.Gauge("sim.cycle").Set(42)
	reg.Func("fairness.thread0.cum_shortfall", func() int64 { return 13 })
	h := reg.Histogram("sim.thread0.read_latency")
	// Observations 0,1,3,3,8 land in log2 buckets with right edges
	// 0 (x1), 2 (x1), 4 (x2), 16 (x1): cumulative 1,2,4,5.
	for _, v := range []int64{0, 1, 3, 3, 8} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	wantLines := []string{
		"# TYPE fqms_memctrl_fq_inversions_total counter",
		"fqms_memctrl_fq_inversions_total 7",
		"# TYPE fqms_sim_cycle gauge",
		"fqms_sim_cycle 42",
		"# TYPE fqms_fairness_thread0_cum_shortfall gauge",
		"fqms_fairness_thread0_cum_shortfall 13",
		"# TYPE fqms_sim_thread0_read_latency histogram",
		`fqms_sim_thread0_read_latency_bucket{le="0"} 1`,
		`fqms_sim_thread0_read_latency_bucket{le="2"} 2`,
		`fqms_sim_thread0_read_latency_bucket{le="4"} 4`,
		`fqms_sim_thread0_read_latency_bucket{le="16"} 5`,
		`fqms_sim_thread0_read_latency_bucket{le="+Inf"} 5`,
		"fqms_sim_thread0_read_latency_sum 15",
		"fqms_sim_thread0_read_latency_count 5",
	}
	lines := make(map[string]bool)
	for _, ln := range strings.Split(out, "\n") {
		lines[ln] = true
	}
	for _, want := range wantLines {
		if !lines[want] {
			t.Errorf("exposition missing line %q\nfull output:\n%s", want, out)
		}
	}

	// Cumulative bucket counts must be non-decreasing within a family
	// (the defining property Prometheus clients rely on).
	var prev int64 = -1
	for _, ln := range strings.Split(out, "\n") {
		if !strings.HasPrefix(ln, "fqms_sim_thread0_read_latency_bucket") {
			continue
		}
		v, err := strconv.ParseInt(ln[strings.LastIndexByte(ln, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", ln, err)
		}
		if v < prev {
			t.Errorf("bucket counts decreased: %q after %d", ln, prev)
		}
		prev = v
	}

	// Every family name is a valid Prometheus identifier.
	for _, ln := range strings.Split(out, "\n") {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		name := ln[:strings.IndexAny(ln, "{ ")]
		for i := 0; i < len(name); i++ {
			c := name[i]
			ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':'
			if !ok {
				t.Errorf("invalid character %q in metric name %q", c, name)
			}
		}
	}
}

// TestPrometheusEmptySnapshot: a zero snapshot (no sampler attached
// yet) renders to an empty, valid exposition rather than panicking.
func TestPrometheusEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, metrics.Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty snapshot produced output: %q", buf.String())
	}
}
