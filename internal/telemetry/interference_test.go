package telemetry

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestInterferenceEndpoint scrapes /interference and the
// fqms_interference_cycles_total family on /metrics from a server
// backed by a real attribution-enabled simulation, and checks the 404
// contract when the controller runs without attribution.
func TestInterferenceEndpoint(t *testing.T) {
	art, err := trace.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := trace.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		Workload:       []trace.Profile{vpr, art},
		Policy:         sim.FQVFTF,
		Seed:           11,
		SampleInterval: 5_000,
		Interference:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Step(30_000) // several epochs: the sampler publishes the matrix

	srv, err := Start(Config{
		Addr:         "127.0.0.1:0",
		Sampler:      s.Sampler(),
		Fairness:     s.Fairness(),
		Interference: s.Controller(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	client := &http.Client{}
	defer client.CloseIdleConnections()

	code, body := get(t, client, srv.URL()+"/interference")
	if code != http.StatusOK {
		t.Fatalf("/interference: status %d", code)
	}
	var snap memctrl.InterferenceSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/interference: invalid JSON: %v", err)
	}
	if snap.Threads != 2 || len(snap.Matrix) != 2 || len(snap.Cube) != 2 {
		t.Errorf("/interference: threads=%d matrix=%d cube=%d, want 2/2/2",
			snap.Threads, len(snap.Matrix), len(snap.Cube))
	}
	if snap.Total <= 0 || snap.Cross <= 0 {
		t.Errorf("/interference: total=%d cross=%d on a contended co-run, want both > 0",
			snap.Total, snap.Cross)
	}
	if len(snap.Causes) == 0 || len(snap.Matrix[0]) != snap.Threads+1 {
		t.Errorf("/interference: causes=%v row width=%d", snap.Causes, len(snap.Matrix[0]))
	}

	code, body = get(t, client, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"# TYPE fqms_interference_cycles counter",
		`fqms_interference_cycles_total{victim="0",aggressor="1",cause="`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The index advertises the endpoint.
	if code, body = get(t, client, srv.URL()+"/"); code != http.StatusOK || !strings.Contains(body, "/interference") {
		t.Errorf("index (status %d) does not mention /interference", code)
	}
}

// TestInterferenceEndpointDisabled: without an attribution-enabled
// controller the endpoint 404s and /metrics carries no interference
// family — both for a nil Config.Interference and for a controller
// whose attribution is off.
func TestInterferenceEndpointDisabled(t *testing.T) {
	s := startSim(t, 10_000) // attribution off

	for _, ctrl := range []*memctrl.Controller{nil, s.Controller()} {
		srv, err := Start(Config{
			Addr:         "127.0.0.1:0",
			Sampler:      s.Sampler(),
			Fairness:     s.Fairness(),
			Interference: ctrl,
		})
		if err != nil {
			t.Fatal(err)
		}
		client := &http.Client{}
		if code, _ := get(t, client, srv.URL()+"/interference"); code != http.StatusNotFound {
			t.Errorf("ctrl=%v: /interference status %d, want 404", ctrl != nil, code)
		}
		code, body := get(t, client, srv.URL()+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics: status %d", code)
		}
		if strings.Contains(body, "fqms_interference_cycles") {
			t.Errorf("ctrl=%v: /metrics exposes interference counters without attribution", ctrl != nil)
		}
		client.CloseIdleConnections()
		srv.Shutdown(context.Background())
	}
}
