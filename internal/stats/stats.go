// Package stats provides the small statistical toolkit the evaluation
// uses: means, the harmonic mean (the paper's multi-thread performance
// metric, after Luo et al.), variance (the paper's Figure 9 fairness
// metric), and simple histograms for latency distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// HarmonicMean returns the harmonic mean of xs. It is the paper's
// aggregate performance metric over co-scheduled threads' normalized
// IPCs ("the harmonic mean of the co-scheduled threads' normalized
// IPCs"). Non-positive entries make the result 0.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += 1 / x
	}
	return float64(len(xs)) / s
}

// Variance returns the population variance of xs (0 for fewer than one
// element). The paper reports the variance of normalized target data
// bus utilizations: 0.20 under FR-FCFS versus 0.0058 under FQ-VFTF.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Min returns the minimum of xs (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (-Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of xs (0 if any entry is
// non-positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs using nearest-
// rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 1 {
		return c[len(c)-1]
	}
	i := int(math.Ceil(p*float64(len(c)))) - 1
	if i < 0 {
		i = 0
	}
	return c[i]
}

// Histogram is a fixed-bucket histogram over [0, BucketWidth*len(Counts)).
type Histogram struct {
	BucketWidth float64
	Counts      []int64
	Overflow    int64
	N           int64
	Sum         float64
}

// NewHistogram returns a histogram with n buckets of the given width.
func NewHistogram(bucketWidth float64, n int) *Histogram {
	if bucketWidth <= 0 || n <= 0 {
		panic(fmt.Sprintf("stats: invalid histogram (%v, %d)", bucketWidth, n))
	}
	return &Histogram{BucketWidth: bucketWidth, Counts: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.N++
	h.Sum += x
	i := int(x / h.BucketWidth)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		h.Overflow++
		return
	}
	h.Counts[i]++
}

// Mean returns the mean of recorded observations.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Quantile returns an upper bound on the q-quantile from the bucket
// boundaries (the right edge of the bucket containing the quantile).
func (h *Histogram) Quantile(q float64) float64 {
	if h.N == 0 {
		return 0
	}
	target := int64(q * float64(h.N))
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			return float64(i+1) * h.BucketWidth
		}
	}
	return float64(len(h.Counts)) * h.BucketWidth
}
