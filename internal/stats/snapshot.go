package stats

import "repro/internal/snapshot"

// SaveState serializes the histogram's counts and moments. The bucket
// width is written for verification: it is construction state, and a
// mismatch means the snapshot belongs to a different configuration.
func (h *Histogram) SaveState(w *snapshot.Writer) {
	w.Section("stats.Histogram")
	w.F64(h.BucketWidth)
	w.I64s(h.Counts)
	w.I64(h.Overflow)
	w.I64(h.N)
	w.F64(h.Sum)
}

// LoadState restores a histogram saved by SaveState into one
// constructed with the same bucket width and count.
func (h *Histogram) LoadState(r *snapshot.Reader) error {
	r.Section("stats.Histogram")
	width := r.F64()
	counts := r.I64s(len(h.Counts))
	overflow := r.I64()
	n := r.I64()
	sum := r.F64()
	if err := r.Err(); err != nil {
		return err
	}
	if width != h.BucketWidth || len(counts) != len(h.Counts) {
		r.Fail("stats.Histogram: %v x %d buckets, histogram has %v x %d",
			width, len(counts), h.BucketWidth, len(h.Counts))
		return r.Err()
	}
	copy(h.Counts, counts)
	h.Overflow = overflow
	h.N = n
	h.Sum = sum
	return nil
}
