package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean 1..3")
	}
}

func TestHarmonicMean(t *testing.T) {
	if HarmonicMean(nil) != 0 {
		t.Error("HM(nil)")
	}
	if !almost(HarmonicMean([]float64{1, 1}), 1) {
		t.Error("HM(1,1)")
	}
	// Classic: HM(2, 6) = 3.
	if !almost(HarmonicMean([]float64{2, 6}), 3) {
		t.Error("HM(2,6)")
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Error("HM with zero")
	}
	if HarmonicMean([]float64{1, -1}) != 0 {
		t.Error("HM with negative")
	}
}

func TestVariance(t *testing.T) {
	if Variance(nil) != 0 {
		t.Error("Var(nil)")
	}
	if !almost(Variance([]float64{5, 5, 5}), 0) {
		t.Error("Var constant")
	}
	// Population variance of {1, 3} is 1.
	if !almost(Variance([]float64{1, 3}), 1) {
		t.Error("Var(1,3)")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	if Min(xs) != -2 || Max(xs) != 7 {
		t.Errorf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty min/max should be infinities")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{2, 8}), 4) {
		t.Errorf("GM(2,8) = %v", GeoMean([]float64{2, 8}))
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GM with zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 1) != 5 {
		t.Error("extremes")
	}
	if Percentile(xs, 0.5) != 3 {
		t.Errorf("median = %v", Percentile(xs, 0.5))
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, x := range []float64{5, 15, 15, 95} {
		h.Add(x)
	}
	if h.N != 4 || h.Overflow != 1 {
		t.Errorf("N=%d overflow=%d", h.N, h.Overflow)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if !almost(h.Mean(), 32.5) {
		t.Errorf("mean = %v", h.Mean())
	}
	if q := h.Quantile(0.5); q != 20 {
		t.Errorf("median bound = %v, want 20", q)
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(0, 5)
}

// Properties: HM <= GM <= AM for positive inputs; variance >= 0.
func TestMeanInequalities(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
		}
		hm, gm, am := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		return hm <= gm+1e-9 && gm <= am+1e-9 && Variance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
