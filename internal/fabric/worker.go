package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/exp"
)

// errLeaseLost marks a chunk abandoned because the coordinator no
// longer honors our lease: it expired (we were too slow) or the chunk
// completed elsewhere. The worker drops the chunk silently and leases
// the next one; the coordinator's side already moved on.
var errLeaseLost = errors.New("fabric: lease lost")

// Worker leases chunks from a coordinator and executes them through
// the exp runner: each chunk steps in checkpoint-bounded epochs, and
// every checkpoint is uploaded inside the heartbeat that renews the
// lease — so the coordinator always holds a resume point at most one
// epoch old, and a kill -9 at any instant loses at most that epoch.
type Worker struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string

	// Dir is the worker's scratch root; each chunk attempt gets a
	// fresh subdirectory so a reassigned chunk can never see another
	// attempt's files.
	Dir string

	// Name identifies the worker in leases and /status.
	Name string

	// Poll is the idle re-lease interval (0 = 100ms).
	Poll time.Duration

	// Client is the HTTP client (nil = a fresh default client).
	Client *http.Client

	// EpochDelay artificially stretches every chunk epoch before its
	// heartbeat. Zero in production; the fault-injection tests use it
	// to widen the window in which a kill -9 lands mid-chunk.
	EpochDelay time.Duration
}

// Run leases and executes chunks until the coordinator reports the job
// done (nil), the job fails, or ctx ends.
func (w *Worker) Run(ctx context.Context) error {
	if w.Dir == "" {
		return errors.New("fabric: worker needs a scratch Dir")
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	var job JobSpec
	if _, err := w.getJSON(ctx, "/job", &job); err != nil {
		return fmt.Errorf("fabric: fetch job: %w", err)
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease leaseResponse
		if _, err := w.postJSON(ctx, "/lease", leaseRequest{Worker: w.Name}, &lease); err != nil {
			return fmt.Errorf("fabric: lease: %w", err)
		}
		switch lease.Status {
		case statusDone:
			return nil
		case statusFailed:
			return fmt.Errorf("fabric: job failed: %s", lease.Error)
		case statusWait:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
		case statusLease:
			if err := w.runChunk(ctx, job, lease); err != nil && !errors.Is(err, errLeaseLost) {
				return fmt.Errorf("fabric: chunk %d (%s): %w", lease.Chunk, lease.Unit.Key, err)
			}
		default:
			return fmt.Errorf("fabric: coordinator answered lease with status %q", lease.Status)
		}
	}
}

// runChunk executes one leased chunk to completion: seed the resume
// checkpoint if the coordinator holds one, run the unit through the
// exp runner (heartbeating + uploading at every checkpoint epoch via
// CheckpointSink), then upload the finished artifacts.
func (w *Worker) runChunk(ctx context.Context, job JobSpec, lease leaseResponse) error {
	dir := filepath.Join(w.Dir, fmt.Sprintf("chunk%03d-try%d", lease.Chunk, lease.Attempt))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	stem := exp.ArtifactStem(lease.Unit.Key)
	if lease.Checkpoint != "" {
		ckpt, err := w.getBlob(ctx, lease.Checkpoint)
		if err != nil {
			return fmt.Errorf("fetch resume checkpoint: %w", err)
		}
		if err := os.WriteFile(filepath.Join(dir, stem+".ckpt"), ckpt, 0o644); err != nil {
			return err
		}
	}
	cfg := job.ExpConfig(dir)
	cfg.Resume = true
	cfg.Parallel = 1
	cfg.CheckpointSink = func(key string, cycle int64, data []byte) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if w.EpochDelay > 0 {
			time.Sleep(w.EpochDelay)
		}
		return w.heartbeat(ctx, lease.Lease, cycle, data)
	}
	res, err := exp.NewRunner(cfg).RunUnit(lease.Unit)
	if err != nil {
		return err
	}
	_ = res // the persisted artifact below is the Result's canonical form

	read := func(name string) ([]byte, error) { return os.ReadFile(filepath.Join(dir, name)) }
	result, err := read(stem + ".result.json")
	if err != nil {
		return fmt.Errorf("chunk finished without a result artifact: %w", err)
	}
	req := completeRequest{Lease: lease.Lease, Cycle: job.TotalCycles(), Result: result}
	if job.SampleInterval > 0 {
		if req.Series, err = read(stem + ".series.json"); err != nil {
			return fmt.Errorf("chunk finished without a series artifact: %w", err)
		}
		if req.Fairness, err = read(stem + ".fairness.csv"); err != nil {
			return fmt.Errorf("chunk finished without a fairness artifact: %w", err)
		}
	}
	if job.Interference {
		if req.Interference, err = read(stem + ".interference.json"); err != nil {
			return fmt.Errorf("chunk finished without an interference artifact: %w", err)
		}
	}
	var reply statusReply
	code, err := w.postJSON(ctx, "/complete", req, &reply)
	if code == http.StatusConflict {
		return errLeaseLost
	}
	if err != nil {
		return fmt.Errorf("complete: %w", err)
	}
	return nil
}

// heartbeat renews the lease and uploads the freshest checkpoint. A
// 409 means the lease expired underneath us: surface errLeaseLost so
// the runner aborts the chunk instead of wasting cycles a successor is
// already re-simulating.
func (w *Worker) heartbeat(ctx context.Context, lease string, cycle int64, ckpt []byte) error {
	var reply statusReply
	code, err := w.postJSON(ctx, "/heartbeat", heartbeatRequest{Lease: lease, Cycle: cycle, Checkpoint: ckpt}, &reply)
	if code == http.StatusConflict {
		return errLeaseLost
	}
	return err
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{}
}

// postJSON posts body and decodes the JSON reply, returning the HTTP
// status code so callers can branch on protocol-level conflicts.
func (w *Worker) postJSON(ctx context.Context, path string, body, reply any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(io.LimitReader(resp.Body, maxRequestBody))
	if err := dec.Decode(reply); err != nil {
		return resp.StatusCode, fmt.Errorf("%s: decode %s reply: %w", path, resp.Status, err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		return resp.StatusCode, fmt.Errorf("%s: %s", path, resp.Status)
	}
	return resp.StatusCode, nil
}

// getJSON fetches path into reply.
func (w *Worker) getJSON(ctx context.Context, path string, reply any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.Coordinator+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("%s: %s", path, resp.Status)
	}
	dec := json.NewDecoder(io.LimitReader(resp.Body, maxRequestBody))
	if err := dec.Decode(reply); err != nil {
		return resp.StatusCode, fmt.Errorf("%s: decode reply: %w", path, err)
	}
	return resp.StatusCode, nil
}

// getBlob fetches a raw blob from the coordinator's store.
func (w *Worker) getBlob(ctx context.Context, hash string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.Coordinator+"/blob/"+hash, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("blob %s: %s", hash, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxRequestBody))
}
