package fabric

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestShardedSweepInterference runs the determinism battery with delay
// attribution on: workers must upload each chunk's .interference.json,
// the merge must place it beside the other artifacts byte-identical to
// the serial sweep, and the reduced arena.csv/arena.json must carry
// the interference_index column computed through the same shared
// reducer the serial path uses.
func TestShardedSweepInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep twice")
	}
	job := quickJob()
	job.Interference = true
	want := serialArtifacts(t, job)
	wantIntf := 0
	for name := range want {
		if strings.HasSuffix(name, ".interference.json") {
			wantIntf++
		}
	}
	if wantIntf == 0 {
		t.Fatal("serial reference sweep left no .interference.json artifacts")
	}
	if !strings.Contains(string(want["arena.csv"]), "interference_index") {
		t.Fatal("serial arena.csv is missing the interference_index column")
	}

	c, err := NewCoordinator(CoordinatorConfig{Job: job, LeaseSeed: 41})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	runWorkers(t, srv.URL, 3)

	if !c.Done() {
		t.Fatal("workers exited but the coordinator is not done")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatalf("queue invariants violated: %v", err)
	}
	merged := t.TempDir()
	if err := c.WriteMerged(merged); err != nil {
		t.Fatal(err)
	}
	compareDirs(t, want, merged)
}

// TestCoordinatorMetricsEndpoint scrapes the coordinator's Prometheus
// endpoint before, during, and after a sweep: the queue gauges must
// track the chunk lifecycle and the scrape itself must never disturb
// the protocol (the final merge still matches the serial run).
func TestCoordinatorMetricsEndpoint(t *testing.T) {
	job := quickJob()
	job.SampleInterval = 0
	c, err := NewCoordinator(CoordinatorConfig{Job: job, LeaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics: status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("/metrics: content type %q", ct)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	before := scrape()
	for _, want := range []string{
		"fqms_sweepd_chunks_pending 8",
		"fqms_sweepd_chunks_done 0",
		"fqms_sweepd_workers_active 0",
		"fqms_sweepd_job_failed 0",
		"fqms_sweepd_leases_granted_total 0",
	} {
		if !strings.Contains(before, want) {
			t.Errorf("/metrics before the sweep missing %q", want)
		}
	}

	runWorkers(t, srv.URL, 2)

	after := scrape()
	for _, want := range []string{
		"fqms_sweepd_chunks_pending 0",
		"fqms_sweepd_chunks_leased 0",
		"fqms_sweepd_chunks_done 8",
		"fqms_sweepd_leases_granted_total 8",
		"fqms_sweepd_attempts_total 8",
		"fqms_sweepd_store_blobs",
	} {
		if !strings.Contains(after, want) {
			t.Errorf("/metrics after the sweep missing %q\n%s", want, after)
		}
	}
}
