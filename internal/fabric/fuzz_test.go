package fabric

import (
	"bytes"
	"fmt"
	"net/http"
	"testing"
)

// fuzzCoordinator builds a small coordinator and walks it into an
// interesting state before the hostile request lands: chunk 0 is done
// (lease l1 spent — a replayable token), chunk 1 is live under lease
// l2, everything else is pending.
func fuzzCoordinator(t *testing.T) (*Coordinator, http.Handler) {
	t.Helper()
	job := quickJob()
	job.SampleInterval = 0
	c, err := NewCoordinator(CoordinatorConfig{Job: job})
	if err != nil {
		t.Fatal(err)
	}
	h := c.Handler()
	l1 := decodeLease(t, request(t, h, http.MethodPost, "/lease", `{"worker":"w1"}`))
	if l1.Status != statusLease || l1.Lease != "l1" {
		t.Fatalf("prelude lease: %+v", l1)
	}
	if rec := request(t, h, http.MethodPost, "/heartbeat", `{"lease":"l1","cycle":10000,"checkpoint":"Y2twdA=="}`); rec.Code != http.StatusOK {
		t.Fatalf("prelude heartbeat: %d %s", rec.Code, rec.Body)
	}
	if rec := request(t, h, http.MethodPost, "/complete", `{"lease":"l1","result":"e30="}`); rec.Code != http.StatusOK {
		t.Fatalf("prelude complete: %d %s", rec.Code, rec.Body)
	}
	l2 := decodeLease(t, request(t, h, http.MethodPost, "/lease", `{"worker":"w2"}`))
	if l2.Status != statusLease || l2.Lease != "l2" {
		t.Fatalf("prelude second lease: %+v", l2)
	}
	return c, h
}

// FuzzFabricRequest throws arbitrary bodies at every coordinator
// endpoint — oversized, truncated, wrong-typed, and replayed/duplicate
// lease completions included. The contract under fire: error cleanly
// (never panic), hold every queue invariant, and never let a hostile
// request cause a chunk to be double-assigned or a done chunk to be
// reassigned. The committed corpus under testdata/fuzz replays in CI
// via the ordinary test runner.
func FuzzFabricRequest(f *testing.F) {
	// Endpoint selector 0..7; see the table in the fuzz body.
	f.Add(byte(0), []byte(`{"worker":"w-fuzz"}`))
	f.Add(byte(0), []byte(``))
	f.Add(byte(1), []byte(`{"lease":"l2","cycle":20000,"checkpoint":"YWJj"}`)) // valid renewal
	f.Add(byte(1), []byte(`{"lease":"l1","cycle":20000}`))                    // late heartbeat, dead lease
	f.Add(byte(1), []byte(`{"lease":"l2","cycle":-7}`))
	f.Add(byte(1), []byte(`{"lease":"l2","cycle":"many"}`)) // wrong-typed field
	f.Add(byte(1), bytes.Repeat([]byte("A"), 1<<20))        // oversized garbage
	f.Add(byte(2), []byte(`{"lease":"l1","result":"e30="}`)) // replayed duplicate completion
	f.Add(byte(2), []byte(`{"lease":"l2","result":"e30="}`)) // legitimate completion
	f.Add(byte(2), []byte(`{"lease":"l2","result":"!!!"}`))  // result not base64
	f.Add(byte(2), []byte(`{"lease":"l2","res`))             // truncated mid-body
	f.Add(byte(2), []byte(`{"lease":"l2","result":"e30="} trailing`))
	f.Add(byte(2), []byte(`{"lease":"l2","result":"WyJub3QiLCJhIiwicmVzdWx0Il0="}`)) // result decodes but isn't a sim.Result
	f.Add(byte(3), []byte("not-a-hash"))
	f.Add(byte(4), []byte{})
	f.Add(byte(5), []byte{0xff, 0xfe})
	f.Add(byte(6), []byte(`{}`))
	f.Add(byte(7), []byte(`GET me`))

	f.Fuzz(func(t *testing.T, ep byte, body []byte) {
		c, h := fuzzCoordinator(t)

		switch ep % 8 {
		case 0:
			request(t, h, http.MethodPost, "/lease", string(body))
		case 1:
			request(t, h, http.MethodPost, "/heartbeat", string(body))
		case 2:
			request(t, h, http.MethodPost, "/complete", string(body))
		case 3:
			// Hash paths come from the body but must stay URL-safe.
			n := len(body)
			if n > 8 {
				n = 8
			}
			request(t, h, http.MethodGet, fmt.Sprintf("/blob/%x", body[:n]), "")
		case 4:
			request(t, h, http.MethodGet, "/progress", "")
		case 5:
			request(t, h, http.MethodGet, "/status", "")
		case 6:
			request(t, h, http.MethodGet, "/job", "")
		case 7:
			request(t, h, http.MethodGet, "/", string(body))
		}

		if err := c.checkInvariants(); err != nil {
			t.Fatalf("invariants violated by %q on endpoint %d: %v", body, ep%8, err)
		}

		// Drain the queue: whatever the hostile request did, no chunk
		// may be handed out twice and chunk 0 (done since the prelude)
		// may never be reassigned.
		doneBefore := make(map[int]bool)
		for _, ch := range c.Status().Chunks {
			if ch.State == "done" {
				doneBefore[ch.Chunk] = true
			}
		}
		granted := make(map[int]bool)
		for i := 0; i < len(c.chunks)+2; i++ {
			lr := decodeLease(t, request(t, h, http.MethodPost, "/lease", `{"worker":"drain"}`))
			if lr.Status != statusLease {
				break
			}
			if granted[lr.Chunk] {
				t.Fatalf("chunk %d double-assigned during drain", lr.Chunk)
			}
			if doneBefore[lr.Chunk] {
				t.Fatalf("done chunk %d was reassigned", lr.Chunk)
			}
			granted[lr.Chunk] = true
		}
		if err := c.checkInvariants(); err != nil {
			t.Fatalf("invariants violated after drain: %v", err)
		}
	})
}

// TestOversizedBodyRejected pins the request-body cap: a body past
// maxRequestBody errors as a clean 400, it does not balloon memory or
// panic.
func TestOversizedBodyRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a >64MiB request body")
	}
	_, h := fuzzCoordinator(t)
	body := bytes.Repeat([]byte("A"), maxRequestBody+1024)
	rec := request(t, h, http.MethodPost, "/heartbeat", string(body))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized heartbeat: code %d, want 400", rec.Code)
	}
}
