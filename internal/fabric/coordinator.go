package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// DefaultLeaseExpiry is how long a lease survives without a heartbeat
// before its chunk is reassigned.
const DefaultLeaseExpiry = 30 * time.Second

// DefaultRetryBudget is how many lease grants a chunk gets before the
// job fails: the first assignment plus two retries.
const DefaultRetryBudget = 3

// maxRequestBody bounds every request body the coordinator decodes,
// checkpoint uploads included; anything larger errors cleanly instead
// of ballooning memory.
const maxRequestBody = 64 << 20

// CoordinatorConfig configures a sweep coordinator.
type CoordinatorConfig struct {
	// Job is the sweep to shard.
	Job JobSpec

	// LeaseExpiry is the heartbeat deadline (0 = DefaultLeaseExpiry).
	LeaseExpiry time.Duration

	// RetryBudget is the lease grants allowed per chunk before the job
	// fails (0 = DefaultRetryBudget).
	RetryBudget int

	// LeaseSeed, when nonzero, hands out pending chunks in a seeded
	// pseudo-random order instead of lowest-index-first. The
	// determinism tests use it to prove chunk order cannot matter.
	LeaseSeed uint64

	// Now is the coordinator's clock (nil = time.Now). Tests inject a
	// fake clock to drive lease expiry deterministically.
	Now func() time.Time
}

// chunk states.
type chunkState int

const (
	chunkPending chunkState = iota
	chunkLeased
	chunkDone
)

func (s chunkState) String() string {
	switch s {
	case chunkPending:
		return "pending"
	case chunkLeased:
		return "leased"
	case chunkDone:
		return "done"
	}
	return fmt.Sprintf("chunkState(%d)", int(s))
}

// chunk is one work unit's queue entry.
type chunk struct {
	unit     exp.Unit
	state    chunkState
	attempts int // lease grants so far
	lease    string
	worker   string
	expiry   time.Time

	ckpt        string // blob hash of the latest uploaded checkpoint
	ckptCycle   int64
	resumedFrom int64 // cycle the latest attempt restored from
	credited    int64 // cycles already credited to progress

	artifacts map[string]string // artifact kind -> blob hash
}

// Coordinator owns the work queue, the lease table, and the artifact
// store for one job. All state sits behind one mutex; handlers expire
// stale leases on entry, so a dead worker's chunk returns to the queue
// the next time anyone talks to the coordinator (or Wait polls it).
type Coordinator struct {
	cfg   CoordinatorConfig
	job   JobSpec
	store *Store
	prog  *telemetry.Progress
	rng   *rand.Rand
	now   func() time.Time

	mu       sync.Mutex
	chunks   []*chunk
	leases   map[string]int // live lease token -> chunk index
	leaseSeq int
	done     int
	expired  int64 // leases lost to heartbeat timeouts, ever
	failed   error
}

// NewCoordinator shards the job into chunks (one per arena unit) and
// returns a coordinator ready to Serve.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	job := cfg.Job.withDefaults()
	units := exp.ArenaUnits(job.Spec)
	if len(units) == 0 {
		return nil, errors.New("fabric: job spec expands to zero chunks")
	}
	// Every unit must materialize before any worker burns time on it.
	for _, u := range units {
		if _, err := u.SimConfig(); err != nil {
			return nil, fmt.Errorf("fabric: invalid unit %s: %w", u.Key, err)
		}
	}
	if cfg.LeaseExpiry <= 0 {
		cfg.LeaseExpiry = DefaultLeaseExpiry
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = DefaultRetryBudget
	}
	c := &Coordinator{
		cfg:    cfg,
		job:    job,
		store:  NewStore(),
		prog:   telemetry.NewProgress(len(units)),
		now:    cfg.Now,
		leases: make(map[string]int),
	}
	if c.now == nil {
		c.now = time.Now
	}
	if cfg.LeaseSeed != 0 {
		c.rng = rand.New(rand.NewSource(int64(cfg.LeaseSeed)))
	}
	for _, u := range units {
		c.chunks = append(c.chunks, &chunk{unit: u, artifacts: make(map[string]string)})
	}
	return c, nil
}

// Progress exposes the aggregated sweep progress (chunks done,
// simulated cycles credited by worker heartbeats and completions) that
// /progress serves; telemetry's ProgressSnapshot is the shared schema
// with the single-process status server.
func (c *Coordinator) Progress() *telemetry.Progress { return c.prog }

// Store exposes the artifact store (tests and sweepd's summary line).
func (c *Coordinator) Store() *Store { return c.store }

// Done reports whether every chunk completed.
func (c *Coordinator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	return c.done == len(c.chunks)
}

// Err returns the job failure, if any (retry budget exhausted).
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	return c.failed
}

// Wait blocks until the job completes, fails, or ctx ends. Its polling
// also drives lease expiry while every worker is busy or dead.
func (c *Coordinator) Wait(ctx context.Context) error {
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		c.mu.Lock()
		c.expireLocked()
		done, failed := c.done == len(c.chunks), c.failed
		c.mu.Unlock()
		if failed != nil {
			return failed
		}
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// expireLocked returns timed-out leases to the queue. A chunk that has
// exhausted its retry budget fails the whole job: something is
// systematically killing its workers, and silent infinite retry would
// hide it. Called under c.mu from every entry point.
func (c *Coordinator) expireLocked() {
	now := c.now()
	for i, ch := range c.chunks {
		if ch.state != chunkLeased || now.Before(ch.expiry) {
			continue
		}
		delete(c.leases, ch.lease)
		ch.lease = ""
		ch.worker = ""
		ch.state = chunkPending
		c.expired++
		if ch.attempts >= c.cfg.RetryBudget && c.failed == nil {
			c.failed = fmt.Errorf("fabric: chunk %d (%s) exhausted its retry budget (%d leases)",
				i, ch.unit.Key, ch.attempts)
		}
	}
}

// pickPendingLocked selects the next chunk to lease: lowest index, or
// a seeded random pending chunk when LeaseSeed scrambles the order.
func (c *Coordinator) pickPendingLocked() int {
	var pending []int
	for i, ch := range c.chunks {
		if ch.state == chunkPending {
			if c.rng == nil {
				return i
			}
			pending = append(pending, i)
		}
	}
	if len(pending) == 0 {
		return -1
	}
	return pending[c.rng.Intn(len(pending))]
}

// Handler returns the coordinator's HTTP endpoint map.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "fqms sweep coordinator\n\n"+
			"/job          GET: the job spec every chunk shares\n"+
			"/lease        POST {worker}: lease the next chunk\n"+
			"/heartbeat    POST {lease,cycle,checkpoint}: renew + upload checkpoint\n"+
			"/complete     POST {lease,cycle,result,series,fairness}: finish a chunk\n"+
			"/blob/<hash>  GET: fetch a stored blob (e.g. a resume checkpoint)\n"+
			"/progress     GET: aggregated sweep progress\n"+
			"/status       GET: per-chunk queue state\n"+
			"/metrics      GET: coordinator queue gauges, Prometheus text\n")
	})
	mux.HandleFunc("/job", c.handleJob)
	mux.HandleFunc("/lease", c.handleLease)
	mux.HandleFunc("/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/complete", c.handleComplete)
	mux.HandleFunc("/blob/", c.handleBlob)
	mux.HandleFunc("/progress", c.handleProgress)
	mux.HandleFunc("/status", c.handleStatus)
	mux.HandleFunc("/metrics", c.handleMetrics)
	return mux
}

// decodeBody reads a bounded JSON body into v, rejecting trailing
// garbage. Every decode error surfaces as a clean 400.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(v); err != nil {
		writeStatus(w, http.StatusBadRequest, statusReply{Status: "error", Error: "bad request body: " + err.Error()})
		return false
	}
	if dec.More() {
		writeStatus(w, http.StatusBadRequest, statusReply{Status: "error", Error: "trailing data after JSON body"})
		return false
	}
	return true
}

func writeStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		writeStatus(w, http.StatusMethodNotAllowed, statusReply{Status: "error", Error: "POST only"})
		return false
	}
	return true
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	writeStatus(w, http.StatusOK, c.job)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req leaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	if c.failed != nil {
		writeStatus(w, http.StatusOK, leaseResponse{Status: statusFailed, Error: c.failed.Error()})
		return
	}
	if c.done == len(c.chunks) {
		writeStatus(w, http.StatusOK, leaseResponse{Status: statusDone})
		return
	}
	i := c.pickPendingLocked()
	if i < 0 {
		writeStatus(w, http.StatusOK, leaseResponse{Status: statusWait})
		return
	}
	ch := c.chunks[i]
	c.leaseSeq++
	ch.lease = fmt.Sprintf("l%d", c.leaseSeq)
	ch.worker = req.Worker
	ch.state = chunkLeased
	ch.attempts++
	ch.expiry = c.now().Add(c.cfg.LeaseExpiry)
	ch.resumedFrom = ch.ckptCycle
	c.leases[ch.lease] = i
	c.prog.Start(ch.unit.Key)
	writeStatus(w, http.StatusOK, leaseResponse{
		Status:          statusLease,
		Chunk:           i,
		Attempt:         ch.attempts,
		Lease:           ch.lease,
		Unit:            ch.unit,
		Checkpoint:      ch.ckpt,
		CheckpointCycle: ch.ckptCycle,
	})
}

// resolveLease maps a lease token to its chunk, under c.mu. A missing
// token means the lease expired (and was possibly reassigned) or never
// existed — either way the worker must abandon the chunk, so both get
// the same 409.
func (c *Coordinator) resolveLeaseLocked(token string) (*chunk, bool) {
	i, ok := c.leases[token]
	if !ok {
		return nil, false
	}
	return c.chunks[i], true
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req heartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	ch, ok := c.resolveLeaseLocked(req.Lease)
	if !ok {
		writeStatus(w, http.StatusConflict, statusReply{Status: "expired", Error: "unknown or expired lease"})
		return
	}
	if req.Cycle < 0 || req.Cycle > c.job.TotalCycles() {
		writeStatus(w, http.StatusBadRequest, statusReply{Status: "error", Error: "cycle out of range"})
		return
	}
	ch.expiry = c.now().Add(c.cfg.LeaseExpiry)
	if len(req.Checkpoint) > 0 {
		ch.ckpt = c.store.Put(req.Checkpoint)
		ch.ckptCycle = req.Cycle
	}
	c.creditLocked(ch, req.Cycle)
	writeStatus(w, http.StatusOK, statusReply{Status: statusOK})
}

// creditLocked advances the chunk's progress high-water mark; cycles
// are credited once however many times a region is re-led after
// restores.
func (c *Coordinator) creditLocked(ch *chunk, cycle int64) {
	if cycle > ch.credited {
		c.prog.AddCycles(cycle - ch.credited)
		ch.credited = cycle
	}
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req completeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	ch, ok := c.resolveLeaseLocked(req.Lease)
	if !ok {
		// Duplicate, late, or replayed completion: the chunk is done
		// (or re-leased elsewhere); nothing may be overwritten or
		// reassigned on its account.
		writeStatus(w, http.StatusConflict, statusReply{Status: "expired", Error: "unknown or expired lease"})
		return
	}
	var res sim.Result
	if err := json.Unmarshal(req.Result, &res); err != nil {
		writeStatus(w, http.StatusBadRequest, statusReply{Status: "error", Error: "result is not a sim.Result: " + err.Error()})
		return
	}
	if c.job.SampleInterval > 0 && (len(req.Series) == 0 || len(req.Fairness) == 0) {
		writeStatus(w, http.StatusBadRequest, statusReply{Status: "error", Error: "sampled job completion missing series artifacts"})
		return
	}
	if c.job.Interference {
		var doc exp.InterferenceDoc
		if err := json.Unmarshal(req.Interference, &doc); err != nil {
			writeStatus(w, http.StatusBadRequest, statusReply{Status: "error", Error: "interference artifact is not an exp.InterferenceDoc: " + err.Error()})
			return
		}
	}
	ch.artifacts["result"] = c.store.Put(req.Result)
	if len(req.Series) > 0 {
		ch.artifacts["series"] = c.store.Put(req.Series)
	}
	if len(req.Fairness) > 0 {
		ch.artifacts["fairness"] = c.store.Put(req.Fairness)
	}
	if len(req.Interference) > 0 {
		ch.artifacts["interference"] = c.store.Put(req.Interference)
	}
	delete(c.leases, req.Lease)
	ch.lease = ""
	ch.state = chunkDone
	c.done++
	c.creditLocked(ch, c.job.TotalCycles())
	c.prog.Finish(ch.unit.Key)
	writeStatus(w, http.StatusOK, statusReply{Status: statusOK})
}

func (c *Coordinator) handleBlob(w http.ResponseWriter, r *http.Request) {
	hash := strings.TrimPrefix(r.URL.Path, "/blob/")
	b, ok := c.store.Get(hash)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(b)
}

func (c *Coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.expireLocked()
	c.mu.Unlock()
	writeStatus(w, http.StatusOK, c.prog.Snapshot())
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeStatus(w, http.StatusOK, c.Status())
}

// handleMetrics exposes the coordinator's own health as a Prometheus
// scrape — the queue by state, worker liveness, retry-budget
// consumption, and the artifact store — through the same exposition
// writer the simulation status server uses.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.expireLocked()
	snap := metrics.Snapshot{
		Counters: map[string]int64{
			"sweepd.leases.granted": int64(c.leaseSeq),
			"sweepd.leases.expired": c.expired,
		},
		Gauges: map[string]int64{
			"sweepd.chunks.total":   int64(len(c.chunks)),
			"sweepd.retry.budget":   int64(c.cfg.RetryBudget),
			"sweepd.workers.active": 0,
			"sweepd.job.failed":     0,
		},
	}
	workers := make(map[string]bool)
	var pending, leased, done, attempts, maxAttempts int64
	for _, ch := range c.chunks {
		switch ch.state {
		case chunkPending:
			pending++
		case chunkLeased:
			leased++
			workers[ch.worker] = true
		case chunkDone:
			done++
		}
		attempts += int64(ch.attempts)
		if int64(ch.attempts) > maxAttempts {
			maxAttempts = int64(ch.attempts)
		}
	}
	snap.Gauges["sweepd.chunks.pending"] = pending
	snap.Gauges["sweepd.chunks.leased"] = leased
	snap.Gauges["sweepd.chunks.done"] = done
	snap.Gauges["sweepd.workers.active"] = int64(len(workers))
	snap.Gauges["sweepd.attempts.max"] = maxAttempts
	snap.Counters["sweepd.attempts"] = attempts
	if c.failed != nil {
		snap.Gauges["sweepd.job.failed"] = 1
	}
	blobs, bytes, dedup := c.store.Stats()
	snap.Gauges["sweepd.store.blobs"] = int64(blobs)
	snap.Gauges["sweepd.store.bytes"] = bytes
	snap.Counters["sweepd.store.dedup"] = dedup
	c.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = telemetry.WritePrometheus(w, snap)
}

// Status snapshots the queue.
func (c *Coordinator) Status() StatusReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	rep := StatusReport{Total: len(c.chunks)}
	if c.failed != nil {
		rep.Failed = c.failed.Error()
	}
	rep.StoreBlobs, rep.StoreBytes, rep.StoreDedup = c.store.Stats()
	for i, ch := range c.chunks {
		switch ch.state {
		case chunkPending:
			rep.Pending++
		case chunkLeased:
			rep.Leased++
		case chunkDone:
			rep.Done++
		}
		rep.Chunks = append(rep.Chunks, ChunkStatus{
			Chunk:           i,
			Key:             ch.unit.Key,
			State:           ch.state.String(),
			Worker:          ch.worker,
			Attempts:        ch.attempts,
			CheckpointCycle: ch.ckptCycle,
			ResumedFrom:     ch.resumedFrom,
		})
	}
	return rep
}

// results rebuilds the per-unit Result map from uploaded artifacts.
func (c *Coordinator) results() (map[string]sim.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done != len(c.chunks) {
		return nil, fmt.Errorf("fabric: job incomplete (%d/%d chunks)", c.done, len(c.chunks))
	}
	out := make(map[string]sim.Result, len(c.chunks))
	for _, ch := range c.chunks {
		b, ok := c.store.Get(ch.artifacts["result"])
		if !ok {
			return nil, fmt.Errorf("fabric: chunk %s lost its result blob", ch.unit.Key)
		}
		var res sim.Result
		if err := json.Unmarshal(b, &res); err != nil {
			return nil, fmt.Errorf("fabric: chunk %s result: %w", ch.unit.Key, err)
		}
		out[ch.unit.Key] = res
	}
	return out, nil
}

// Arena reduces the completed job's uploaded results into the same
// ArenaResult a single-process sweep computes — identical float
// arithmetic via exp.ReduceArena, so identical rows.
func (c *Coordinator) Arena() (exp.ArenaResult, error) {
	results, err := c.results()
	if err != nil {
		return exp.ArenaResult{}, err
	}
	var intf exp.InterferenceGetter
	if c.job.Interference {
		docs, err := c.interferenceDocs()
		if err != nil {
			return exp.ArenaResult{}, err
		}
		intf = func(u exp.Unit) (int64, int64, bool) {
			doc, ok := docs[u.Key]
			if !ok {
				return 0, 0, false
			}
			return doc.Interference.Cross, doc.Interference.Total, true
		}
	}
	return exp.ReduceArena(c.job.Spec, func(u exp.Unit) (sim.Result, error) {
		res, ok := results[u.Key]
		if !ok {
			return sim.Result{}, fmt.Errorf("fabric: no result for unit %s", u.Key)
		}
		return res, nil
	}, intf)
}

// interferenceDocs rebuilds the per-unit attribution snapshots from
// uploaded artifacts, the merged reduction's InterferenceGetter source.
func (c *Coordinator) interferenceDocs() (map[string]exp.InterferenceDoc, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]exp.InterferenceDoc, len(c.chunks))
	for _, ch := range c.chunks {
		b, ok := c.store.Get(ch.artifacts["interference"])
		if !ok {
			return nil, fmt.Errorf("fabric: chunk %s lost its interference blob", ch.unit.Key)
		}
		var doc exp.InterferenceDoc
		if err := json.Unmarshal(b, &doc); err != nil {
			return nil, fmt.Errorf("fabric: chunk %s interference: %w", ch.unit.Key, err)
		}
		out[ch.unit.Key] = doc
	}
	return out, nil
}

// WriteMerged materializes the completed job into dir: every chunk's
// .result.json / .series.json / .fairness.csv verbatim as uploaded,
// plus arena.csv and arena.json from the deterministic reduction — the
// same file set, names, and bytes a single-process sweep with
// CheckpointDir/SeriesDir/arena-out all pointed at one directory
// leaves behind.
func (c *Coordinator) WriteMerged(dir string) error {
	arena, err := c.Arena()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c.mu.Lock()
	type file struct {
		name string
		hash string
	}
	var files []file
	for _, ch := range c.chunks {
		stem := exp.ArtifactStem(ch.unit.Key)
		files = append(files, file{stem + ".result.json", ch.artifacts["result"]})
		if h, ok := ch.artifacts["series"]; ok {
			files = append(files, file{stem + ".series.json", h})
		}
		if h, ok := ch.artifacts["fairness"]; ok {
			files = append(files, file{stem + ".fairness.csv", h})
		}
		if h, ok := ch.artifacts["interference"]; ok {
			files = append(files, file{stem + ".interference.json", h})
		}
	}
	c.mu.Unlock()
	for _, f := range files {
		b, ok := c.store.Get(f.hash)
		if !ok {
			return fmt.Errorf("fabric: merge lost blob for %s", f.name)
		}
		if err := os.WriteFile(filepath.Join(dir, f.name), b, 0o644); err != nil {
			return err
		}
	}
	csvB, err := arena.ArtifactCSV()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "arena.csv"), csvB, 0o644); err != nil {
		return err
	}
	jsonB, err := arena.ArtifactJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "arena.json"), jsonB, 0o644)
}

// checkInvariants audits the queue's concurrency contract; the fuzz
// and race tests call it after every hostile request. It must hold at
// every instant the mutex is free:
//
//   - chunk states partition the queue and agree with the done count;
//   - every live lease token maps to exactly one leased chunk and
//     every leased chunk holds exactly one live token;
//   - a done chunk has a result artifact and no lease — once done it
//     can never be leased (assigned) again;
//   - attempts never exceed the retry budget without failing the job.
func (c *Coordinator) checkInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	done := 0
	leased := make(map[string]int)
	for i, ch := range c.chunks {
		switch ch.state {
		case chunkDone:
			done++
			if ch.lease != "" {
				return fmt.Errorf("chunk %d done but holds lease %s", i, ch.lease)
			}
			if ch.artifacts["result"] == "" {
				return fmt.Errorf("chunk %d done without a result artifact", i)
			}
			if c.job.Interference && ch.artifacts["interference"] == "" {
				return fmt.Errorf("chunk %d done without an interference artifact", i)
			}
		case chunkLeased:
			if ch.lease == "" {
				return fmt.Errorf("chunk %d leased without a token", i)
			}
			if prev, dup := leased[ch.lease]; dup {
				return fmt.Errorf("lease %s held by chunks %d and %d", ch.lease, prev, i)
			}
			leased[ch.lease] = i
			if j, ok := c.leases[ch.lease]; !ok || j != i {
				return fmt.Errorf("chunk %d lease %s not in the lease table", i, ch.lease)
			}
		case chunkPending:
			if ch.lease != "" {
				return fmt.Errorf("chunk %d pending but holds lease %s", i, ch.lease)
			}
		default:
			return fmt.Errorf("chunk %d in unknown state %d", i, ch.state)
		}
		if ch.attempts > c.cfg.RetryBudget {
			return fmt.Errorf("chunk %d has %d attempts, budget %d", i, ch.attempts, c.cfg.RetryBudget)
		}
	}
	if done != c.done {
		return fmt.Errorf("done count %d disagrees with chunk states (%d)", c.done, done)
	}
	if len(leased) != len(c.leases) {
		return fmt.Errorf("lease table has %d entries, chunks hold %d", len(c.leases), len(leased))
	}
	return nil
}

// Server is a running coordinator endpoint, telemetry.Server-shaped:
// synchronous bind, background serve, graceful Shutdown.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve binds addr synchronously and serves the coordinator's handler
// until Shutdown.
func (c *Coordinator) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: c.Handler()},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.ln.Addr().String() }

// Shutdown gracefully stops the server.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}
