package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
)

// quickJob is the test battery's sweep: the paper's headline pair on
// one channel — 6 policy cells plus 2 solo baselines = 8 chunks —
// small enough to run twice (serial reference + sharded) in a test.
func quickJob() JobSpec {
	return JobSpec{
		Spec: exp.ArenaSpec{
			Mixes:    [][]string{{"vpr", "art"}},
			Shares:   []core.Share{{}},
			Channels: []int{1},
		},
		Warmup:          10_000,
		Window:          40_000,
		Seed:            3,
		SampleInterval:  10_000,
		CheckpointEvery: 20_000,
	}
}

// serialArtifacts runs the job in one process — the exp.Runner path a
// non-distributed sweep uses — and returns every artifact it leaves
// behind (per-run .result.json/.series.json/.fairness.csv plus the
// arena.csv/arena.json a -arena-out sweep writes), keyed by filename.
func serialArtifacts(t *testing.T, job JobSpec) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	r := exp.NewRunner(job.ExpConfig(dir))
	arena, err := r.Arena(job.Spec)
	if err != nil {
		t.Fatalf("serial reference sweep: %v", err)
	}
	out := make(map[string][]byte)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	if out["arena.csv"], err = arena.ArtifactCSV(); err != nil {
		t.Fatal(err)
	}
	if out["arena.json"], err = arena.ArtifactJSON(); err != nil {
		t.Fatal(err)
	}
	return out
}

// compareDirs demands dir hold exactly the reference artifacts, byte
// for byte.
func compareDirs(t *testing.T, want map[string][]byte, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, e := range entries {
		got[e.Name()] = true
		wantB, ok := want[e.Name()]
		if !ok {
			t.Errorf("merged output has extra file %s", e.Name())
			continue
		}
		gotB, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotB, wantB) {
			i := 0
			for i < len(gotB) && i < len(wantB) && gotB[i] == wantB[i] {
				i++
			}
			t.Errorf("artifact %s differs from the serial sweep at byte %d", e.Name(), i)
		}
	}
	for name := range want {
		if !got[name] {
			t.Errorf("merged output missing artifact %s", name)
		}
	}
}

// runWorkers drives n concurrent in-process workers to completion and
// fails the test on any worker error.
func runWorkers(t *testing.T, url string, n int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				Coordinator: url,
				Dir:         t.TempDir(),
				Name:        fmt.Sprintf("w%d", i),
				Poll:        5 * time.Millisecond,
			}
			errs[i] = w.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

// TestShardedSweepDeterminism is the fabric's headline acceptance
// test: a sweep sharded over 3 workers leasing chunks in a scrambled
// order must merge into artifacts byte-identical to the single-process
// exp.Runner sweep on the same spec — every per-run artifact and the
// reduced arena.csv/arena.json alike.
func TestShardedSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep twice")
	}
	job := quickJob()
	want := serialArtifacts(t, job)

	c, err := NewCoordinator(CoordinatorConfig{Job: job, LeaseSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	runWorkers(t, srv.URL, 3)

	if !c.Done() {
		t.Fatal("workers exited but the coordinator is not done")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatalf("queue invariants violated: %v", err)
	}
	merged := t.TempDir()
	if err := c.WriteMerged(merged); err != nil {
		t.Fatal(err)
	}
	compareDirs(t, want, merged)

	// Progress aggregated the whole matrix: every chunk's full cycle
	// count was credited exactly once across heartbeats + completions.
	snap := c.Progress().Snapshot()
	wantCycles := int64(len(exp.ArenaUnits(job.Spec))) * job.TotalCycles()
	if snap.SimCycles != wantCycles {
		t.Errorf("progress credited %d cycles, want %d", snap.SimCycles, wantCycles)
	}
	if snap.Done != snap.Total || snap.Done != len(exp.ArenaUnits(job.Spec)) {
		t.Errorf("progress done/total = %d/%d, want %d/%d", snap.Done, snap.Total, len(exp.ArenaUnits(job.Spec)), len(exp.ArenaUnits(job.Spec)))
	}
}

// fakeClock is a hand-cranked coordinator clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// request is a test-side raw HTTP call against the handler.
func request(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeLease(t *testing.T, rec *httptest.ResponseRecorder) leaseResponse {
	t.Helper()
	var l leaseResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &l); err != nil {
		t.Fatalf("lease reply %q: %v", rec.Body.String(), err)
	}
	return l
}

// TestLeaseProtocolInvariants walks the lease lifecycle with a fake
// clock: expiry reassigns a chunk to a new lease resuming from the
// last uploaded checkpoint, late heartbeats and duplicate/replayed
// completions 409 without disturbing state, and an exhausted retry
// budget fails the job instead of looping forever.
func TestLeaseProtocolInvariants(t *testing.T) {
	job := quickJob()
	job.SampleInterval = 0 // protocol-only test: completions carry just results
	clock := &fakeClock{now: time.Unix(1000, 0)}
	c, err := NewCoordinator(CoordinatorConfig{
		Job:         job,
		LeaseExpiry: 10 * time.Second,
		RetryBudget: 3,
		Now:         clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := c.Handler()
	check := func(step string) {
		t.Helper()
		if err := c.checkInvariants(); err != nil {
			t.Fatalf("%s: invariants violated: %v", step, err)
		}
	}

	// Method and body hygiene.
	if rec := request(t, h, http.MethodGet, "/lease", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /lease: code %d, want 405", rec.Code)
	}
	if rec := request(t, h, http.MethodPost, "/lease", "{not json"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON lease: code %d, want 400", rec.Code)
	}
	if rec := request(t, h, http.MethodPost, "/lease", `{"worker":"w"} trailing`); rec.Code != http.StatusBadRequest {
		t.Errorf("trailing garbage: code %d, want 400", rec.Code)
	}
	check("hygiene")

	// Grant, heartbeat with a checkpoint, let the lease expire.
	l1 := decodeLease(t, request(t, h, http.MethodPost, "/lease", `{"worker":"w1"}`))
	if l1.Status != statusLease || l1.Lease != "l1" || l1.Attempt != 1 || l1.Checkpoint != "" {
		t.Fatalf("first lease: %+v", l1)
	}
	hbJSON, _ := json.Marshal(heartbeatRequest{Lease: "l1", Cycle: 20_000, Checkpoint: []byte("snapshot-epoch-2")})
	hb := string(hbJSON)
	if rec := request(t, h, http.MethodPost, "/heartbeat", hb); rec.Code != http.StatusOK {
		t.Fatalf("heartbeat: code %d body %s", rec.Code, rec.Body)
	}
	if rec := request(t, h, http.MethodPost, "/heartbeat", `{"lease":"l1","cycle":-4}`); rec.Code != http.StatusBadRequest {
		t.Errorf("negative cycle: code %d, want 400", rec.Code)
	}
	if rec := request(t, h, http.MethodPost, "/heartbeat", `{"lease":"l1","cycle":"many"}`); rec.Code != http.StatusBadRequest {
		t.Errorf("wrong-typed cycle: code %d, want 400", rec.Code)
	}
	check("heartbeat")

	clock.Advance(11 * time.Second)

	// The expired chunk is reassigned — same chunk, new lease, resume
	// checkpoint attached.
	l2 := decodeLease(t, request(t, h, http.MethodPost, "/lease", `{"worker":"w2"}`))
	if l2.Status != statusLease || l2.Chunk != l1.Chunk || l2.Lease == l1.Lease || l2.Attempt != 2 {
		t.Fatalf("reassigned lease: %+v", l2)
	}
	if l2.Checkpoint == "" || l2.CheckpointCycle != 20_000 {
		t.Fatalf("reassignment lost the uploaded checkpoint: %+v", l2)
	}
	if rec := request(t, h, http.MethodGet, "/blob/"+l2.Checkpoint, ""); rec.Body.String() != "snapshot-epoch-2" {
		t.Errorf("resume blob = %q", rec.Body.String())
	}
	check("reassign")

	// The dead lease is dead: late heartbeat and late completion 409.
	if rec := request(t, h, http.MethodPost, "/heartbeat", hb); rec.Code != http.StatusConflict {
		t.Errorf("late heartbeat: code %d, want 409", rec.Code)
	}
	comp, _ := json.Marshal(completeRequest{Lease: l1.Lease, Cycle: 50_000, Result: []byte("{}")})
	if rec := request(t, h, http.MethodPost, "/complete", string(comp)); rec.Code != http.StatusConflict {
		t.Errorf("late completion: code %d, want 409", rec.Code)
	}
	check("late messages")

	// Legitimate completion; then a replay of the same body must 409
	// and must not double-count or reassign.
	comp2, _ := json.Marshal(completeRequest{Lease: l2.Lease, Cycle: 50_000, Result: []byte("{}")})
	if rec := request(t, h, http.MethodPost, "/complete", string(comp2)); rec.Code != http.StatusOK {
		t.Fatalf("completion: code %d body %s", rec.Code, rec.Body)
	}
	if rec := request(t, h, http.MethodPost, "/complete", string(comp2)); rec.Code != http.StatusConflict {
		t.Errorf("duplicate completion: code %d, want 409", rec.Code)
	}
	st := c.Status()
	if st.Done != 1 || st.Chunks[l2.Chunk].State != "done" {
		t.Fatalf("after duplicate completion: %+v", st)
	}
	// Hostile completion with a non-Result body is a clean 400.
	l3 := decodeLease(t, request(t, h, http.MethodPost, "/lease", `{"worker":"w3"}`))
	if l3.Chunk == l2.Chunk {
		t.Fatalf("done chunk %d was reassigned", l2.Chunk)
	}
	badComp, _ := json.Marshal(completeRequest{Lease: l3.Lease, Cycle: 50_000, Result: []byte(`["not","a","result"]`)})
	if rec := request(t, h, http.MethodPost, "/complete", string(badComp)); rec.Code != http.StatusBadRequest {
		t.Errorf("garbage result: code %d, want 400", rec.Code)
	}
	check("completion")

	// Retry budget: expire l3's chunk twice more; the third expiry
	// exhausts the budget and fails the job for everyone.
	clock.Advance(11 * time.Second)
	l4 := decodeLease(t, request(t, h, http.MethodPost, "/lease", `{"worker":"w4"}`))
	if l4.Chunk != l3.Chunk || l4.Attempt != 2 {
		t.Fatalf("expected chunk %d attempt 2, got %+v", l3.Chunk, l4)
	}
	clock.Advance(11 * time.Second)
	l5 := decodeLease(t, request(t, h, http.MethodPost, "/lease", `{"worker":"w5"}`))
	if l5.Chunk != l3.Chunk || l5.Attempt != 3 {
		t.Fatalf("expected chunk %d attempt 3, got %+v", l3.Chunk, l5)
	}
	clock.Advance(11 * time.Second)
	lFail := decodeLease(t, request(t, h, http.MethodPost, "/lease", `{"worker":"w6"}`))
	if lFail.Status != statusFailed {
		t.Fatalf("after exhausting the retry budget: %+v", lFail)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Errorf("job error = %v", err)
	}
	check("retry budget")
}

// TestConcurrentWorkersAndHostileReplays is the -race workout: real
// concurrent workers contend for leases over live HTTP while a hostile
// goroutine fires never-granted lease tokens at /heartbeat and
// /complete; afterwards, every token that was ever granted is replayed
// concurrently — pure duplicate completions and late heartbeats — and
// the queue must hold its invariants with nothing double-assigned or
// double-counted.
func TestConcurrentWorkersAndHostileReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full sharded sweep")
	}
	job := quickJob()
	c, err := NewCoordinator(CoordinatorConfig{Job: job, LeaseSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	stopHostile := make(chan struct{})
	var hostileWG sync.WaitGroup
	hostileWG.Add(1)
	go func() {
		defer hostileWG.Done()
		client := srv.Client()
		for i := 0; ; i++ {
			select {
			case <-stopHostile:
				return
			default:
			}
			token := fmt.Sprintf("l9%03d", i%50) // far beyond any granted token
			hb, _ := json.Marshal(heartbeatRequest{Lease: token, Cycle: 1})
			resp, err := client.Post(srv.URL+"/heartbeat", "application/json", bytes.NewReader(hb))
			if err == nil {
				if resp.StatusCode != http.StatusConflict {
					t.Errorf("hostile heartbeat %s: code %d, want 409", token, resp.StatusCode)
				}
				resp.Body.Close()
			}
			comp, _ := json.Marshal(completeRequest{Lease: token, Result: []byte("{}")})
			resp, err = client.Post(srv.URL+"/complete", "application/json", bytes.NewReader(comp))
			if err == nil {
				if resp.StatusCode != http.StatusConflict {
					t.Errorf("hostile completion %s: code %d, want 409", token, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}
	}()

	runWorkers(t, srv.URL, 6) // 6 workers, 8 chunks: real lease contention
	close(stopHostile)
	hostileWG.Wait()

	if !c.Done() {
		t.Fatal("sweep did not complete")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatalf("invariants after contention: %v", err)
	}
	doneBefore := c.Status().Done

	// Replay every token ever granted, concurrently: all dead now.
	c.mu.Lock()
	granted := c.leaseSeq
	c.mu.Unlock()
	var wg sync.WaitGroup
	client := srv.Client()
	for i := 1; i <= granted; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			token := fmt.Sprintf("l%d", i)
			hb, _ := json.Marshal(heartbeatRequest{Lease: token, Cycle: 1})
			if resp, err := client.Post(srv.URL+"/heartbeat", "application/json", bytes.NewReader(hb)); err == nil {
				if resp.StatusCode != http.StatusConflict {
					t.Errorf("late heartbeat %s: code %d, want 409", token, resp.StatusCode)
				}
				resp.Body.Close()
			}
			comp, _ := json.Marshal(completeRequest{Lease: token, Result: []byte("{}")})
			if resp, err := client.Post(srv.URL+"/complete", "application/json", bytes.NewReader(comp)); err == nil {
				if resp.StatusCode != http.StatusConflict {
					t.Errorf("duplicate completion %s: code %d, want 409", token, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	if err := c.checkInvariants(); err != nil {
		t.Fatalf("invariants after replay storm: %v", err)
	}
	if got := c.Status().Done; got != doneBefore {
		t.Errorf("replay storm changed done count: %d -> %d", doneBefore, got)
	}
	if err := c.WriteMerged(t.TempDir()); err != nil {
		t.Errorf("merge after replay storm: %v", err)
	}
}

// TestStoreContentAddressing pins the store's dedup semantics.
func TestStoreContentAddressing(t *testing.T) {
	s := NewStore()
	h1 := s.Put([]byte("artifact"))
	h2 := s.Put([]byte("artifact"))
	h3 := s.Put([]byte("other"))
	if h1 != h2 {
		t.Errorf("identical blobs got different addresses %s / %s", h1, h2)
	}
	if h1 == h3 {
		t.Error("distinct blobs collided")
	}
	blobs, size, dedup := s.Stats()
	if blobs != 2 || size != int64(len("artifact")+len("other")) || dedup != 1 {
		t.Errorf("stats = %d blobs, %d bytes, %d dedup", blobs, size, dedup)
	}
	if b, ok := s.Get(h1); !ok || string(b) != "artifact" {
		t.Errorf("Get(%s) = %q, %v", h1, b, ok)
	}
	if _, ok := s.Get("no-such-hash"); ok {
		t.Error("Get of a bogus hash succeeded")
	}
}
