// Package fabric shards a sweep across workers: a coordinator serves
// an HTTP/JSON work queue of simulation chunks (one per arena unit —
// policy x workload x share x channels cell, plus the shared solo
// baselines), workers lease chunks, step them in checkpoint-bounded
// epochs through the exp runner, heartbeat progress with each epoch's
// checkpoint attached, and upload the finished .result.json /
// .series.json / .fairness.csv artifacts into the coordinator's
// content-addressed store. A lease that stops heartbeating expires and
// its chunk is reassigned — resuming from the last uploaded checkpoint,
// not from scratch — within a bounded retry budget. When every chunk
// completes, the coordinator merges the per-chunk artifacts into
// exactly the files a single-process sweep emits: the per-run
// artifacts verbatim, and arena.csv / arena.json recomputed through
// exp.ReduceArena over the uploaded results.
//
// Determinism argument: a chunk is a pure function of (JobSpec, Unit) —
// exp.Unit carries only names and scalars, the simulator is
// deterministic, and checkpoint/restore is bit-identical (PR 5's
// equivalence suite) — so whichever worker runs a chunk, however many
// times its lease bounces, the uploaded artifacts are the bytes a
// monolithic sweep writes. The merge step adds nothing of its own: it
// copies those bytes and re-runs the same float reduction the serial
// path uses. The fabric test battery pins this end to end, including
// through a kill -9'd worker.
package fabric

import (
	"repro/internal/exp"
)

// JobSpec describes one sharded sweep: the arena matrix plus the run
// configuration every chunk shares. It travels to workers over GET
// /job, so the coordinator is the single source of truth for what a
// chunk means.
type JobSpec struct {
	// Spec is the arena matrix to shard.
	Spec exp.ArenaSpec `json:"spec"`

	// Warmup and Window are the per-run warmup and measurement cycles
	// (zero selects exp.DefaultConfig's values).
	Warmup int64 `json:"warmup"`
	Window int64 `json:"window"`

	// Seed perturbs the trace generators.
	Seed uint64 `json:"seed"`

	// SampleInterval > 0 makes every chunk emit .series.json and
	// .fairness.csv time-series artifacts alongside its result.
	SampleInterval int64 `json:"sample_interval"`

	// Interference runs every chunk with delay attribution on: each
	// chunk additionally uploads a .interference.json artifact and the
	// merged arena carries an interference_index column. Simulated
	// results are bit-identical either way.
	Interference bool `json:"interference,omitempty"`

	// CheckpointEvery is the chunk epoch in cycles: workers checkpoint,
	// upload, and heartbeat every such interval (zero selects
	// exp.DefaultCheckpointEvery). The lease expiry must comfortably
	// exceed the wall-clock cost of one epoch.
	CheckpointEvery int64 `json:"checkpoint_every"`
}

// withDefaults fills zero fields like the exp runner would.
func (j JobSpec) withDefaults() JobSpec {
	def := exp.DefaultConfig()
	if j.Warmup <= 0 {
		j.Warmup = def.Warmup
	}
	if j.Window <= 0 {
		j.Window = def.Window
	}
	if j.CheckpointEvery <= 0 {
		j.CheckpointEvery = exp.DefaultCheckpointEvery
	}
	return j
}

// ExpConfig is the runner configuration a single process executing
// this job's runs uses, with every artifact rooted at dir. The serial
// reference sweep and each worker's chunk execution both build their
// runner from here, which is what makes their artifact bytes
// comparable in the first place.
func (j JobSpec) ExpConfig(dir string) exp.Config {
	j = j.withDefaults()
	cfg := exp.Config{
		Warmup:          j.Warmup,
		Window:          j.Window,
		Seed:            j.Seed,
		SampleInterval:  j.SampleInterval,
		Interference:    j.Interference,
		CheckpointDir:   dir,
		CheckpointEvery: j.CheckpointEvery,
	}
	if j.SampleInterval > 0 {
		cfg.SeriesDir = dir
	}
	return cfg
}

// TotalCycles is one chunk's full simulation length.
func (j JobSpec) TotalCycles() int64 {
	j = j.withDefaults()
	return j.Warmup + j.Window
}

// Wire protocol bodies. []byte fields ride as base64 inside JSON.

// leaseRequest asks for a chunk to work on.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// Lease statuses.
const (
	statusLease  = "lease"  // a chunk is attached; go run it
	statusWait   = "wait"   // nothing leasable now, poll again
	statusDone   = "done"   // every chunk is complete; exit
	statusFailed = "failed" // the job failed (retry budget exhausted)
	statusOK     = "ok"     // heartbeat/completion accepted
)

// leaseResponse grants (or declines) a chunk.
type leaseResponse struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	Chunk   int      `json:"chunk"`
	Attempt int      `json:"attempt,omitempty"`
	Lease   string   `json:"lease,omitempty"`
	Unit    exp.Unit `json:"unit"`

	// Checkpoint names the blob (GET /blob/<hash>) of the chunk's last
	// uploaded checkpoint; empty means start from scratch.
	Checkpoint      string `json:"checkpoint,omitempty"`
	CheckpointCycle int64  `json:"checkpoint_cycle,omitempty"`
}

// heartbeatRequest renews a lease and, when the worker just
// checkpointed, uploads the snapshot so a successor can resume.
type heartbeatRequest struct {
	Lease      string `json:"lease"`
	Cycle      int64  `json:"cycle"`
	Checkpoint []byte `json:"checkpoint,omitempty"`
}

// completeRequest delivers a finished chunk's artifacts.
type completeRequest struct {
	Lease        string `json:"lease"`
	Cycle        int64  `json:"cycle"`
	Result       []byte `json:"result"`
	Series       []byte `json:"series,omitempty"`
	Fairness     []byte `json:"fairness,omitempty"`
	Interference []byte `json:"interference,omitempty"`
}

// statusReply is the ack for heartbeats and completions.
type statusReply struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// ChunkStatus is one chunk's row in GET /status.
type ChunkStatus struct {
	Chunk    int    `json:"chunk"`
	Key      string `json:"key"`
	State    string `json:"state"` // "pending", "leased", "done"
	Worker   string `json:"worker,omitempty"`
	Attempts int    `json:"attempts"`

	// CheckpointCycle is the cycle of the last uploaded checkpoint;
	// ResumedFrom is the cycle the current/last attempt restored from
	// (0 = started from scratch).
	CheckpointCycle int64 `json:"checkpoint_cycle,omitempty"`
	ResumedFrom     int64 `json:"resumed_from,omitempty"`
}

// StatusReport is GET /status: the queue at a glance.
type StatusReport struct {
	Total   int    `json:"total"`
	Pending int    `json:"pending"`
	Leased  int    `json:"leased"`
	Done    int    `json:"done"`
	Failed  string `json:"failed,omitempty"`

	StoreBlobs int   `json:"store_blobs"`
	StoreBytes int64 `json:"store_bytes"`
	StoreDedup int64 `json:"store_dedup"`

	Chunks []ChunkStatus `json:"chunks"`
}
