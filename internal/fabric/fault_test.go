package fabric

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"syscall"
	"testing"
	"time"
)

// TestFabricWorkerProcess is not a test of its own: it is the worker
// body the fault-injection test re-executes this test binary to run,
// gated on the coordinator URL arriving via the environment. Running
// the package's tests normally just skips it.
func TestFabricWorkerProcess(t *testing.T) {
	coord := os.Getenv("FABRIC_WORKER_COORD")
	if coord == "" {
		t.Skip("helper process for TestFaultInjectionKillWorker")
	}
	delayMS, _ := strconv.Atoi(os.Getenv("FABRIC_WORKER_DELAY_MS"))
	w := &Worker{
		Coordinator: coord,
		Dir:         os.Getenv("FABRIC_WORKER_DIR"),
		Name:        os.Getenv("FABRIC_WORKER_NAME"),
		Poll:        20 * time.Millisecond,
		EpochDelay:  time.Duration(delayMS) * time.Millisecond,
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker %s: %v", w.Name, err)
	}
}

// TestFaultInjectionKillWorker is the fabric's crash-resilience proof:
// three real worker processes shard a sweep, one is kill -9'd mid-chunk
// (after it has uploaded at least one checkpoint), and the sweep must
// still finish — the dead worker's lease expires, its chunk is
// reassigned to a survivor, the survivor resumes from the uploaded
// checkpoint rather than from scratch, and the merged artifacts are
// byte-identical to a single-process sweep that was never disturbed.
func TestFaultInjectionKillWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes and runs the sweep twice")
	}

	job := quickJob()
	job.Window = 70_000        // 7 checkpoint epochs per chunk
	job.CheckpointEvery = 10_000
	want := serialArtifacts(t, job)

	const epochDelayMS = 120 // stretch epochs so the kill lands mid-chunk
	c, err := NewCoordinator(CoordinatorConfig{
		Job:         job,
		LeaseExpiry: 2 * time.Second,
		RetryBudget: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := c.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	// Spawn three workers as real OS processes (this test binary
	// re-executed into TestFabricWorkerProcess) so one can be SIGKILLed
	// with no chance to clean up.
	workers := make(map[string]*exec.Cmd, 3)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("victim-pool-%d", i)
		cmd := exec.Command(os.Args[0], "-test.run=^TestFabricWorkerProcess$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			"FABRIC_WORKER_COORD="+srv.URL(),
			"FABRIC_WORKER_DIR="+t.TempDir(),
			"FABRIC_WORKER_NAME="+name,
			"FABRIC_WORKER_DELAY_MS="+strconv.Itoa(epochDelayMS),
		)
		cmd.Stdout = io.Discard
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start worker %s: %v", name, err)
		}
		workers[name] = cmd
		defer cmd.Process.Kill()
	}

	// Wait for a chunk that is leased and already has an uploaded
	// checkpoint, but is still early in its run — then kill its worker
	// mid-chunk.
	var victimName string
	victimChunk := -1
	deadline := time.Now().Add(60 * time.Second)
	for victimChunk < 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no worker uploaded a mid-chunk checkpoint in time; status %+v", c.Status())
		}
		for _, ch := range c.Status().Chunks {
			if ch.State == "leased" && ch.CheckpointCycle > 0 && ch.CheckpointCycle <= 40_000 {
				victimName, victimChunk = ch.Worker, ch.Chunk
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim, ok := workers[victimName]
	if !ok {
		t.Fatalf("leased chunk %d held by unknown worker %q", victimChunk, victimName)
	}
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill -9 %s: %v", victimName, err)
	}
	if err := victim.Wait(); err == nil {
		t.Error("SIGKILLed worker exited cleanly")
	}
	t.Logf("killed %s mid-chunk %d", victimName, victimChunk)

	// The survivors must finish the whole sweep, the victim's chunk
	// included.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("sweep did not recover from the kill: %v (status %+v)", err, c.Status())
	}
	for name, cmd := range workers {
		if name == victimName {
			continue
		}
		if err := cmd.Wait(); err != nil {
			t.Errorf("surviving worker %s: %v", name, err)
		}
	}

	// The victim's chunk was reassigned and resumed, not restarted.
	st := c.Status()
	vc := st.Chunks[victimChunk]
	if vc.State != "done" {
		t.Fatalf("victim chunk %d ended %s", victimChunk, vc.State)
	}
	if vc.Attempts < 2 {
		t.Errorf("victim chunk %d completed with %d attempts; the kill never forced a reassignment", victimChunk, vc.Attempts)
	}
	if vc.ResumedFrom <= 0 {
		t.Errorf("victim chunk %d restarted from scratch instead of resuming from its checkpoint", victimChunk)
	}
	if vc.Worker == victimName {
		t.Errorf("victim chunk %d still attributed to the dead worker", victimChunk)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatalf("invariants after recovery: %v", err)
	}

	// And none of it shows in the output: byte-identical to the serial,
	// never-killed sweep.
	merged := t.TempDir()
	if err := c.WriteMerged(merged); err != nil {
		t.Fatal(err)
	}
	compareDirs(t, want, merged)
}
