package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Store is the coordinator's content-addressed artifact store: blobs
// (checkpoints, results, series files) are keyed by their SHA-256, so
// identical uploads — a worker retrying a heartbeat, or two chunks of
// the same memoized solo baseline — deduplicate to one copy, and a
// blob reference in the lease protocol is self-verifying.
type Store struct {
	mu    sync.Mutex
	blobs map[string][]byte
	size  int64
	dedup int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{blobs: make(map[string][]byte)}
}

// Put stores b (copied) and returns its hex SHA-256 address.
func (s *Store) Put(b []byte) string {
	sum := sha256.Sum256(b)
	hash := hex.EncodeToString(sum[:])
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[hash]; ok {
		s.dedup++
		return hash
	}
	s.blobs[hash] = append([]byte(nil), b...)
	s.size += int64(len(b))
	return hash
}

// Get returns the blob at hash.
func (s *Store) Get(hash string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[hash]
	return b, ok
}

// Stats reports distinct blobs, stored bytes, and how many puts
// deduplicated against an existing blob.
func (s *Store) Stats() (blobs int, size int64, dedup int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blobs), s.size, s.dedup
}
