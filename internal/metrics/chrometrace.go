package metrics

import (
	"bufio"
	"io"
	"strconv"
)

// TraceWriter streams Chrome trace-event JSON (the chrome://tracing /
// Perfetto "JSON Array Format"): one "X" (complete) event per SDRAM
// command or request lifetime, with process rows for channels and
// threads and thread rows for banks. The simulated cycle is written as
// the microsecond timestamp, so one display microsecond is one memory
// cycle.
//
// Events are appended to an internal byte buffer with strconv.Append*
// (no allocation per event once the buffer has grown) and flushed
// through a bufio.Writer, so tracing a multi-million-cycle run streams
// instead of accumulating.
type TraceWriter struct {
	w      *bufio.Writer
	buf    []byte
	events int64
	err    error
	closed bool
}

// NewTraceWriter starts a trace document on w. The caller must Close
// the writer to produce valid JSON.
func NewTraceWriter(w io.Writer) *TraceWriter {
	t := &TraceWriter{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
	_, t.err = t.w.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	return t
}

// Events returns the number of events emitted so far.
func (t *TraceWriter) Events() int64 { return t.events }

// Err returns the first write error, if any.
func (t *TraceWriter) Err() error { return t.err }

// sep writes the inter-event comma.
func (t *TraceWriter) sep() {
	if t.events > 0 {
		t.buf = append(t.buf, ',', '\n')
	}
	t.events++
}

// flush hands the scratch buffer to the underlying writer.
func (t *TraceWriter) flush() {
	if t.err == nil {
		_, t.err = t.w.Write(t.buf)
	}
	t.buf = t.buf[:0]
}

// appendQuoted appends a JSON string. Metric and event names are
// simulator-chosen identifiers (no quotes or control characters), so a
// plain quote wrap suffices.
func (t *TraceWriter) appendQuoted(s string) {
	t.buf = append(t.buf, '"')
	t.buf = append(t.buf, s...)
	t.buf = append(t.buf, '"')
}

func (t *TraceWriter) appendKV(key string, v int64) {
	t.appendQuoted(key)
	t.buf = append(t.buf, ':')
	t.buf = strconv.AppendInt(t.buf, v, 10)
}

// head begins an event with the common fields.
func (t *TraceWriter) head(ph byte, name string, pid, tid int, ts int64) {
	t.sep()
	t.buf = append(t.buf, `{"ph":"`...)
	t.buf = append(t.buf, ph)
	t.buf = append(t.buf, `","name":`...)
	t.appendQuoted(name)
	t.buf = append(t.buf, ',')
	t.appendKV("pid", int64(pid))
	t.buf = append(t.buf, ',')
	t.appendKV("tid", int64(tid))
	t.buf = append(t.buf, ',')
	t.appendKV("ts", ts)
}

// Complete emits a complete ("X") event spanning [start, start+dur).
func (t *TraceWriter) Complete(name string, pid, tid int, start, dur int64) {
	t.head('X', name, pid, tid, start)
	t.buf = append(t.buf, ',')
	t.appendKV("dur", dur)
	t.buf = append(t.buf, '}')
	t.flush()
}

// CompleteArgs emits a complete event with integer args (addresses,
// rows, latencies). Keys and values alternate in kv.
func (t *TraceWriter) CompleteArgs(name string, pid, tid int, start, dur int64, keys []string, vals []int64) {
	t.head('X', name, pid, tid, start)
	t.buf = append(t.buf, ',')
	t.appendKV("dur", dur)
	t.buf = append(t.buf, `,"args":{`...)
	for i, k := range keys {
		if i > 0 {
			t.buf = append(t.buf, ',')
		}
		t.appendKV(k, vals[i])
	}
	t.buf = append(t.buf, '}', '}')
	t.flush()
}

// Instant emits an instant ("i") event.
func (t *TraceWriter) Instant(name string, pid, tid int, ts int64) {
	t.head('i', name, pid, tid, ts)
	t.buf = append(t.buf, `,"s":"t"}`...)
	t.flush()
}

// meta emits a metadata event naming a process or thread row.
func (t *TraceWriter) meta(kind string, pid, tid int, name string) {
	t.sep()
	t.buf = append(t.buf, `{"ph":"M","name":`...)
	t.appendQuoted(kind)
	t.buf = append(t.buf, ',')
	t.appendKV("pid", int64(pid))
	if tid >= 0 {
		t.buf = append(t.buf, ',')
		t.appendKV("tid", int64(tid))
	}
	t.buf = append(t.buf, `,"args":{"name":`...)
	t.appendQuoted(name)
	t.buf = append(t.buf, '}', '}')
	t.flush()
}

// ProcessName names a process row in the viewer.
func (t *TraceWriter) ProcessName(pid int, name string) { t.meta("process_name", pid, -1, name) }

// ThreadName names a thread row in the viewer.
func (t *TraceWriter) ThreadName(pid, tid int, name string) { t.meta("thread_name", pid, tid, name) }

// Close terminates the JSON document and flushes. The TraceWriter must
// not be used afterwards.
func (t *TraceWriter) Close() error {
	if t.closed {
		return t.err
	}
	t.closed = true
	t.buf = append(t.buf, "\n]}\n"...)
	t.flush()
	if err := t.w.Flush(); t.err == nil {
		t.err = err
	}
	return t.err
}
