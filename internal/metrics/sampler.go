package metrics

import "sync"

// The epoch sampler turns the registry's cumulative metrics into a
// bounded time series. The simulator calls Sample on epoch boundaries
// (exact multiples of the configured cycle interval — sim.Step clamps
// its event-driven skip-ahead to the next boundary, so no per-cycle
// work is reintroduced); each call snapshots the registry, differences
// it against the previous epoch, and appends one Sample to a ring.
//
// Concurrency contract: Sample and NextSampleAt are called only from
// the simulation goroutine, which is also the only mutator of the
// registry — so Func metrics are always evaluated on the goroutine
// that owns the state they read. Everything a concurrent reader (the
// telemetry HTTP server) can touch — the ring, the published latest
// snapshot, the epoch count — is guarded by a mutex. A scrape never
// reads the live registry.

// DefaultSampleInterval is the default epoch length in cycles. At
// simulator throughputs of tens of Msimcycles/s this is thousands of
// snapshots per second, cheap next to simulating the epoch itself.
const DefaultSampleInterval = 10_000

// DefaultSampleCapacity is the default ring size: the most recent
// epochs retained for the /series endpoint and timeline exports.
const DefaultSampleCapacity = 4096

// SamplerConfig configures an epoch sampler.
type SamplerConfig struct {
	// Interval is the epoch length in cycles (<= 0 selects
	// DefaultSampleInterval). Samples land on exact multiples.
	Interval int64

	// Capacity bounds the retained samples; the ring keeps the most
	// recent Capacity epochs (<= 0 selects DefaultSampleCapacity).
	Capacity int
}

// HistogramDelta is one histogram's per-epoch activity: the
// observations recorded during the epoch, as count/sum plus the
// non-empty log2 buckets ([right-edge, count] pairs, like
// HistogramStats.Buckets but covering only this epoch).
type HistogramDelta struct {
	Count   int64      `json:"count"`
	Sum     int64      `json:"sum"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// Sample is one epoch of registry activity. Counters hold per-epoch
// deltas (rates once divided by the interval); Gauges hold
// point-in-time values at the boundary (Func metrics included);
// Histograms hold per-epoch observation deltas.
type Sample struct {
	// Epoch is the 0-based sample index (epoch 0 is the baseline
	// sample at cycle 0 when the caller takes one).
	Epoch int64 `json:"epoch"`

	// Cycle is the boundary this sample was taken at: the sample
	// covers activity in (prevCycle, Cycle].
	Cycle int64 `json:"cycle"`

	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramDelta `json:"histograms,omitempty"`
}

// histPrev is the cumulative state of one histogram at the previous
// epoch boundary.
type histPrev struct {
	counts [histBuckets]int64
	n, sum int64
}

// Sampler snapshots a Registry on epoch boundaries and retains the
// per-epoch deltas in a bounded ring.
type Sampler struct {
	reg      *Registry
	interval int64
	nextAt   int64

	// Previous-boundary cumulative values, indexed by registry item
	// position (items register at construction time, before sampling
	// starts; late registrations difference against zero).
	prevCounter []int64
	prevHist    []histPrev

	mu     sync.Mutex
	ring   []Sample
	start  int   // index of the oldest retained sample
	count  int   // retained samples
	epochs int64 // samples taken ever
	latest Snapshot
	has    bool
}

// NewSampler returns a sampler over the registry. It takes no sample
// until the caller does; callers that want an immediately scrapeable
// exposition take a baseline sample at cycle 0.
func NewSampler(reg *Registry, cfg SamplerConfig) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultSampleInterval
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultSampleCapacity
	}
	return &Sampler{
		reg:      reg,
		interval: cfg.Interval,
		nextAt:   cfg.Interval,
		ring:     make([]Sample, 0, cfg.Capacity),
	}
}

// Interval returns the epoch length in cycles.
func (s *Sampler) Interval() int64 { return s.interval }

// NextSampleAt returns the next epoch boundary. The simulation clamps
// its skip-ahead to it so Sample is invoked at exactly that cycle.
func (s *Sampler) NextSampleAt() int64 { return s.nextAt }

// Sample snapshots the registry at the given cycle and appends the
// epoch's deltas to the ring. It must be called from the simulation
// goroutine (Func metrics are evaluated here and only here).
func (s *Sampler) Sample(cycle int64) {
	items := s.reg.items
	for len(s.prevCounter) < len(items) {
		s.prevCounter = append(s.prevCounter, 0)
		s.prevHist = append(s.prevHist, histPrev{})
	}
	sm := Sample{
		Cycle:      cycle,
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramDelta),
	}
	latest := Snapshot{
		Counters:   make(map[string]int64, len(items)),
		Gauges:     make(map[string]int64, len(items)),
		Histograms: make(map[string]HistogramStats, len(items)),
	}
	for i, it := range items {
		switch it.kind {
		case kindCounter:
			v := it.c.Value()
			sm.Counters[it.name] = v - s.prevCounter[i]
			s.prevCounter[i] = v
			latest.Counters[it.name] = v
		case kindGauge:
			v := it.g.Value()
			sm.Gauges[it.name] = v
			latest.Gauges[it.name] = v
		case kindFunc:
			v := it.fn()
			sm.Gauges[it.name] = v
			latest.Gauges[it.name] = v
		case kindHistogram:
			h := it.h
			prev := &s.prevHist[i]
			d := HistogramDelta{Count: h.n - prev.n, Sum: h.sum - prev.sum}
			for b := 0; b < histBuckets; b++ {
				if dc := h.counts[b] - prev.counts[b]; dc != 0 {
					edge := int64(0)
					if b > 0 {
						edge = int64(1) << uint(b)
					}
					d.Buckets = append(d.Buckets, [2]int64{edge, dc})
				}
			}
			prev.counts = h.counts
			prev.n, prev.sum = h.n, h.sum
			sm.Histograms[it.name] = d
			latest.Histograms[it.name] = histStats(h)
		}
	}
	for s.nextAt <= cycle {
		s.nextAt += s.interval
	}

	s.mu.Lock()
	sm.Epoch = s.epochs
	s.epochs++
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, sm)
	} else {
		// Ring full: overwrite the oldest.
		s.ring[s.start] = sm
		s.start = (s.start + 1) % len(s.ring)
	}
	s.count = len(s.ring)
	s.latest = latest
	s.has = true
	s.mu.Unlock()
}

// Epochs returns how many samples have been taken ever (including any
// that have since been evicted from the ring).
func (s *Sampler) Epochs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochs
}

// Latest returns the most recent cumulative snapshot (the published
// copy, safe to read while the simulation runs). ok is false until the
// first sample is taken.
func (s *Sampler) Latest() (snap Snapshot, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest, s.has
}

// Samples returns the retained samples at boundary cycles strictly
// greater than sinceCycle, oldest first (pass a negative value for
// all). The result is a copy and safe to use concurrently with
// sampling.
func (s *Sampler) Samples(sinceCycle int64) []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, s.count)
	for i := 0; i < s.count; i++ {
		sm := s.ring[(s.start+i)%len(s.ring)]
		if sm.Cycle > sinceCycle {
			out = append(out, sm)
		}
	}
	return out
}
