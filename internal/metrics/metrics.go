// Package metrics is the simulator's observability substrate: a
// metrics registry (counters, gauges, log2-bucketed latency histograms)
// and a Chrome trace-event exporter (chrometrace.go). It is designed
// for a cycle-accurate hot loop:
//
//   - Updating a metric never allocates. Counter/Gauge/Histogram
//     handles are plain structs obtained at registration time; Inc,
//     Add, Set, and Observe are branch-light field updates.
//   - Instrumented components hold a nil-able handle struct and guard
//     hot-path updates with a single pointer test, so a run with
//     metrics disabled costs one predicted branch per site and is
//     bit-identical to an uninstrumented build (the simulation never
//     reads a metric).
//   - Anything a component already tracks for its simulation results
//     (controller ThreadStats, DRAM busy cycles, core retirement) is
//     exported by registering a read function, which costs nothing
//     until a snapshot is taken.
//
// A Registry belongs to one simulated system and is not synchronized
// for concurrent mutation; parallel sweeps give each system its own
// registry (matching how internal/exp runs independent simulations).
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing count.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds d (d must be non-negative for the value to stay monotone).
func (c *Counter) Add(d int64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is an instantaneous value.
type Gauge struct{ v int64 }

// Set records the current value.
func (g *Gauge) Set(v int64) { g.v = v }

// Value returns the last recorded value.
func (g *Gauge) Value() int64 { return g.v }

// histBuckets is the bucket count of a log2 histogram: bucket i holds
// observations v with bits.Len64(v) == i, i.e. bucket 0 is {0}, bucket
// i covers [2^(i-1), 2^i). 65 buckets cover every int64.
const histBuckets = 65

// Histogram is a log2-bucketed histogram of non-negative integer
// observations (cycle counts, queue depths). Observe is O(1) with no
// allocation; quantiles are upper bounds (the right edge of the bucket
// containing the quantile), which is the right fidelity for latency
// tails spanning decades.
type Histogram struct {
	counts [histBuckets]int64
	n      int64
	sum    int64
	max    int64
}

// Observe records one observation; negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an upper bound on the q-quantile: the right edge of
// the bucket containing it, clamped to the observed maximum (so p99 of
// a tight distribution does not report a power of two far above any
// real observation). Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			edge := float64(int64(1) << uint(i)) // right edge of bucket i
			if i == 0 {
				edge = 0
			}
			if m := float64(h.max); edge > m {
				edge = m
			}
			return edge
		}
	}
	return float64(h.max)
}

// kind tags a registered metric.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindFunc
)

// item is one registered metric.
type item struct {
	name string
	kind kind
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   func() int64
}

// Registry holds one simulated system's metrics. The zero value is not
// usable; call New.
type Registry struct {
	items  []item
	byName map[string]int
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// register adds an item, panicking on duplicate names (metric names are
// chosen by the instrumented components at construction time, so a
// collision is a programming error, not runtime input).
func (r *Registry) register(it item) {
	if _, dup := r.byName[it.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", it.name))
	}
	r.byName[it.name] = len(r.items)
	r.items = append(r.items, it)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.register(item{name: name, kind: kindCounter, c: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.register(item{name: name, kind: kindGauge, g: g})
	return g
}

// Histogram registers and returns a log2-bucketed histogram.
func (r *Registry) Histogram(name string) *Histogram {
	h := &Histogram{}
	r.register(item{name: name, kind: kindHistogram, h: h})
	return h
}

// Func registers a read-on-snapshot gauge: fn is invoked only when a
// snapshot is taken, so mirroring an existing simulation statistic into
// the registry costs nothing on the hot path.
func (r *Registry) Func(name string, fn func() int64) {
	r.register(item{name: name, kind: kindFunc, fn: fn})
}

// HistogramStats is a histogram's exported summary.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets lists the non-empty log2 buckets as [right-edge, count]
	// pairs, smallest edge first.
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// histStats summarizes a histogram.
func histStats(h *Histogram) HistogramStats {
	s := HistogramStats{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		edge := int64(0)
		if i > 0 {
			edge = int64(1) << uint(i)
		}
		s.Buckets = append(s.Buckets, [2]int64{edge, c})
	}
	return s
}

// Snapshot is a point-in-time export of every registered metric,
// JSON-serializable for `fqsim -metrics` and cmd/benchjson.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot exports the current value of every metric. Func metrics are
// read here (and only here).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramStats),
	}
	for _, it := range r.items {
		switch it.kind {
		case kindCounter:
			s.Counters[it.name] = it.c.Value()
		case kindGauge:
			s.Gauges[it.name] = it.g.Value()
		case kindHistogram:
			s.Histograms[it.name] = histStats(it.h)
		case kindFunc:
			s.Gauges[it.name] = it.fn()
		}
	}
	return s
}

// Names returns the registered metric names in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.items))
	for _, it := range r.items {
		names = append(names, it.name)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes an indented JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
