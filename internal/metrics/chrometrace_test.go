package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
)

// traceDoc mirrors the Chrome trace JSON shape for decoding in tests.
type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Ph   string          `json:"ph"`
	Name string          `json:"name"`
	PID  int             `json:"pid"`
	TID  int             `json:"tid"`
	TS   int64           `json:"ts"`
	Dur  int64           `json:"dur"`
	Args json.RawMessage `json:"args"`
}

// intArgs decodes an event's args as integer key/values.
func intArgs(t *testing.T, ev traceEvent) map[string]int64 {
	t.Helper()
	m := map[string]int64{}
	if err := json.Unmarshal(ev.Args, &m); err != nil {
		t.Fatalf("args %s: %v", ev.Args, err)
	}
	return m
}

func TestTraceWriterProducesValidChromeJSON(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.ProcessName(1, "channel 0")
	tw.ThreadName(1, 3, "bank 3")
	tw.Complete("ACT", 1, 3, 100, 4)
	tw.CompleteArgs("RD", 1, 3, 104, 6, []string{"row", "addr"}, []int64{17, 0x1234})
	tw.Instant("refresh", 1, 3, 200)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5:\n%s", len(doc.TraceEvents), buf.String())
	}
	if tw.Events() != 5 {
		t.Errorf("Events() = %d, want 5", tw.Events())
	}
	meta := doc.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "process_name" {
		t.Errorf("meta event = %+v", meta)
	}
	act := doc.TraceEvents[2]
	if act.Ph != "X" || act.Name != "ACT" || act.TS != 100 || act.Dur != 4 || act.PID != 1 || act.TID != 3 {
		t.Errorf("ACT event = %+v", act)
	}
	rd := intArgs(t, doc.TraceEvents[3])
	if rd["row"] != 17 || rd["addr"] != 0x1234 {
		t.Errorf("RD args = %+v", rd)
	}
	inst := doc.TraceEvents[4]
	if inst.Ph != "i" || inst.TS != 200 {
		t.Errorf("instant event = %+v", inst)
	}
}

func TestTraceWriterEmptyDocument(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Errorf("events = %+v, want none", doc.TraceEvents)
	}
}

func TestTraceWriterDoubleCloseIsIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.Complete("RD", 1, 0, 0, 1)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Error("second Close wrote more bytes")
	}
}

func TestTraceEventSteadyStateDoesNotAllocate(t *testing.T) {
	var buf bytes.Buffer
	buf.Grow(1 << 20)
	tw := NewTraceWriter(&buf)
	keys := []string{"row", "addr"}
	vals := []int64{1, 2}
	// Warm the scratch buffer, then demand allocation-free emission.
	tw.CompleteArgs("RD", 1, 2, 3, 4, keys, vals)
	allocs := testing.AllocsPerRun(500, func() {
		tw.Complete("ACT", 1, 2, 10, 4)
		tw.CompleteArgs("RD", 1, 2, 14, 6, keys, vals)
	})
	// bytes.Buffer growth inside bufio flushes can allocate; the event
	// construction itself must not. Allow a tiny amortized budget.
	if allocs > 0.5 {
		t.Errorf("event emission allocates %v per run, want ~0", allocs)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
}
