package metrics

import (
	"sync"
	"testing"
)

// TestSamplerDeltas drives a registry through three epochs and checks
// that counter deltas, gauge point values, Func evaluation, and
// histogram bucket deltas all difference correctly.
func TestSamplerDeltas(t *testing.T) {
	reg := New()
	c := reg.Counter("reqs")
	g := reg.Gauge("occ")
	h := reg.Histogram("lat")
	fnVal := int64(0)
	reg.Func("cycle", func() int64 { return fnVal })

	s := NewSampler(reg, SamplerConfig{Interval: 100, Capacity: 8})
	if s.NextSampleAt() != 100 {
		t.Fatalf("NextSampleAt = %d, want 100", s.NextSampleAt())
	}

	// Baseline at cycle 0.
	s.Sample(0)

	c.Add(5)
	g.Set(3)
	h.Observe(0) // bucket edge 0
	h.Observe(3) // bucket [2,4) edge 4
	fnVal = 100
	s.Sample(100)

	c.Add(2)
	g.Set(1)
	h.Observe(3)
	h.Observe(900) // bucket [512,1024) edge 1024
	fnVal = 200
	s.Sample(200)

	got := s.Samples(-1)
	if len(got) != 3 {
		t.Fatalf("got %d samples, want 3", len(got))
	}
	if got[0].Cycle != 0 || got[1].Cycle != 100 || got[2].Cycle != 200 {
		t.Errorf("cycles = %d,%d,%d", got[0].Cycle, got[1].Cycle, got[2].Cycle)
	}
	if got[0].Epoch != 0 || got[2].Epoch != 2 {
		t.Errorf("epochs = %d,%d", got[0].Epoch, got[2].Epoch)
	}
	if d := got[1].Counters["reqs"]; d != 5 {
		t.Errorf("epoch 1 reqs delta = %d, want 5", d)
	}
	if d := got[2].Counters["reqs"]; d != 2 {
		t.Errorf("epoch 2 reqs delta = %d, want 2", d)
	}
	if v := got[2].Gauges["occ"]; v != 1 {
		t.Errorf("epoch 2 occ = %d, want 1", v)
	}
	if v := got[1].Gauges["cycle"]; v != 100 {
		t.Errorf("epoch 1 cycle func = %d, want 100", v)
	}
	hd := got[1].Histograms["lat"]
	if hd.Count != 2 || hd.Sum != 3 {
		t.Errorf("epoch 1 lat delta = %+v, want count 2 sum 3", hd)
	}
	wantBuckets := [][2]int64{{0, 1}, {4, 1}}
	if len(hd.Buckets) != 2 || hd.Buckets[0] != wantBuckets[0] || hd.Buckets[1] != wantBuckets[1] {
		t.Errorf("epoch 1 lat buckets = %v, want %v", hd.Buckets, wantBuckets)
	}
	hd = got[2].Histograms["lat"]
	if hd.Count != 2 || hd.Sum != 903 {
		t.Errorf("epoch 2 lat delta = %+v, want count 2 sum 903", hd)
	}
	if len(hd.Buckets) != 2 || hd.Buckets[0] != [2]int64{4, 1} || hd.Buckets[1] != [2]int64{1024, 1} {
		t.Errorf("epoch 2 lat buckets = %v", hd.Buckets)
	}

	// Deltas must sum to the cumulative totals.
	var sum int64
	for _, sm := range got {
		sum += sm.Counters["reqs"]
	}
	if sum != c.Value() {
		t.Errorf("counter deltas sum to %d, cumulative is %d", sum, c.Value())
	}

	// The published latest snapshot matches a direct registry snapshot.
	latest, ok := s.Latest()
	if !ok {
		t.Fatal("Latest not available after sampling")
	}
	if latest.Counters["reqs"] != 7 || latest.Gauges["cycle"] != 200 {
		t.Errorf("latest snapshot wrong: %+v", latest)
	}
	if latest.Histograms["lat"].Count != 4 {
		t.Errorf("latest histogram count = %d, want 4", latest.Histograms["lat"].Count)
	}

	// NextSampleAt advanced past the last boundary.
	if s.NextSampleAt() != 300 {
		t.Errorf("NextSampleAt = %d, want 300", s.NextSampleAt())
	}
}

// TestSamplerRingBounded fills the ring past capacity and checks the
// oldest samples are evicted while the epoch count keeps counting.
func TestSamplerRingBounded(t *testing.T) {
	reg := New()
	c := reg.Counter("n")
	s := NewSampler(reg, SamplerConfig{Interval: 10, Capacity: 4})
	for i := int64(1); i <= 10; i++ {
		c.Inc()
		s.Sample(i * 10)
	}
	got := s.Samples(-1)
	if len(got) != 4 {
		t.Fatalf("ring holds %d samples, want 4", len(got))
	}
	if got[0].Cycle != 70 || got[3].Cycle != 100 {
		t.Errorf("ring cycles %d..%d, want 70..100", got[0].Cycle, got[3].Cycle)
	}
	if s.Epochs() != 10 {
		t.Errorf("Epochs = %d, want 10", s.Epochs())
	}
	// since filter
	if got := s.Samples(85); len(got) != 2 || got[0].Cycle != 90 {
		t.Errorf("Samples(85) = %+v, want cycles 90,100", got)
	}
}

// TestSamplerConcurrentReaders hammers the ring and latest snapshot
// from reader goroutines while the owning goroutine samples; run under
// -race this is the sampler's publication-safety test.
func TestSamplerConcurrentReaders(t *testing.T) {
	reg := New()
	c := reg.Counter("n")
	v := int64(0)
	reg.Func("f", func() int64 { return v })
	h := reg.Histogram("h")
	s := NewSampler(reg, SamplerConfig{Interval: 1, Capacity: 16})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Samples(-1)
				s.Latest()
				s.Epochs()
			}
		}()
	}
	for i := int64(0); i < 2000; i++ {
		c.Inc()
		v++
		h.Observe(i)
		s.Sample(i)
	}
	close(stop)
	wg.Wait()
}
