package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("reqs")
	g := r.Gauge("depth")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Set(3)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 3 {
		t.Errorf("gauge = %d, want 3", g.Value())
	}
	s := r.Snapshot()
	if s.Counters["reqs"] != 5 || s.Gauges["depth"] != 3 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestFuncMetricReadOnlyAtSnapshot(t *testing.T) {
	r := New()
	calls := 0
	r.Func("derived", func() int64 { calls++; return 42 })
	if calls != 0 {
		t.Fatalf("Func read %d times before snapshot", calls)
	}
	s := r.Snapshot()
	if calls != 1 || s.Gauges["derived"] != 42 {
		t.Errorf("calls=%d snapshot=%+v", calls, s)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	// 100 observations: 50 at 10 cycles, 45 at 100, 5 at 1000.
	for i := 0; i < 50; i++ {
		h.Observe(10)
	}
	for i := 0; i < 45; i++ {
		h.Observe(100)
	}
	for i := 0; i < 5; i++ {
		h.Observe(1000)
	}
	if h.Count() != 100 || h.Sum() != 50*10+45*100+5*1000 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if got := h.Mean(); math.Abs(got-100) > 1e-9 {
		t.Errorf("mean = %v, want 100", got)
	}
	// p50 lands in the bucket of 10 ([8,16) -> edge 16); p95 in the
	// bucket of 100 ([64,128) -> 128); p99 in the bucket of 1000
	// ([512,1024) -> 1024, clamped to max 1000).
	if got := h.Quantile(0.50); got != 16 {
		t.Errorf("p50 = %v, want 16", got)
	}
	if got := h.Quantile(0.95); got != 128 {
		t.Errorf("p95 = %v, want 128", got)
	}
	if got := h.Quantile(0.99); got != 1000 {
		t.Errorf("p99 = %v, want 1000 (clamped to max)", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("p100 = %v, want 1000", got)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5) // clamps to 0
	if h.Count() != 2 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("p99 = %v, want 0", got)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestObserveDoesNotAllocate(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	c := r.Counter("n")
	g := r.Gauge("v")
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(123)
		c.Inc()
		c.Add(2)
		g.Set(9)
	})
	if allocs != 0 {
		t.Errorf("hot-path updates allocate %v per run, want 0", allocs)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := New()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Gauge("x")
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := New()
	r.Counter("a").Add(3)
	r.Histogram("h").Observe(40)
	r.Func("f", func() int64 { return -1 })
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["a"] != 3 || s.Gauges["f"] != -1 {
		t.Errorf("round-trip = %+v", s)
	}
	hs := s.Histograms["h"]
	if hs.Count != 1 || hs.Sum != 40 || len(hs.Buckets) != 1 || hs.Buckets[0][0] != 64 {
		t.Errorf("histogram stats = %+v", hs)
	}
}

func TestNamesSorted(t *testing.T) {
	r := New()
	r.Counter("b")
	r.Counter("a")
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}
