package metrics

import (
	"sort"

	"repro/internal/snapshot"
)

// SaveState serializes every registered metric's current value, in
// registration order. Registration order is deterministic (components
// register at construction time), so values are written positionally
// with the name and kind alongside for verification. Func metrics
// carry no state — they read the live components, which restore
// separately — so only their identity is written.
func (r *Registry) SaveState(w *snapshot.Writer) {
	w.Section("metrics.Registry")
	w.Int(len(r.items))
	for _, it := range r.items {
		w.String(it.name)
		w.U8(uint8(it.kind))
		switch it.kind {
		case kindCounter:
			w.I64(it.c.v)
		case kindGauge:
			w.I64(it.g.v)
		case kindHistogram:
			for _, c := range it.h.counts {
				w.I64(c)
			}
			w.I64(it.h.n)
			w.I64(it.h.sum)
			w.I64(it.h.max)
		}
	}
}

// LoadState restores values saved by SaveState into a registry whose
// components registered the same metrics in the same order.
func (r *Registry) LoadState(rd *snapshot.Reader) error {
	rd.Section("metrics.Registry")
	n := rd.Int()
	if rd.Err() == nil && n != len(r.items) {
		rd.Fail("metrics.Registry: %d items, registry has %d", n, len(r.items))
	}
	if err := rd.Err(); err != nil {
		return err
	}
	for i := range r.items {
		it := &r.items[i]
		name := rd.String(snapshot.MaxString)
		k := kind(rd.U8())
		if rd.Err() == nil && (name != it.name || k != it.kind) {
			rd.Fail("metrics.Registry: item %d is %q kind %d, registry has %q kind %d",
				i, name, k, it.name, it.kind)
		}
		if err := rd.Err(); err != nil {
			return err
		}
		switch it.kind {
		case kindCounter:
			it.c.v = rd.I64()
		case kindGauge:
			it.g.v = rd.I64()
		case kindHistogram:
			for b := range it.h.counts {
				it.h.counts[b] = rd.I64()
			}
			it.h.n = rd.I64()
			it.h.sum = rd.I64()
			it.h.max = rd.I64()
		}
	}
	return rd.Err()
}

// maxMapEntries caps decoded sample-map sizes; real samples hold one
// entry per registered metric.
const maxMapEntries = 1 << 16

func saveI64Map(w *snapshot.Writer, m map[string]int64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.I64(m[k])
	}
}

func loadI64Map(r *snapshot.Reader) map[string]int64 {
	n := r.Len(maxMapEntries)
	m := make(map[string]int64, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.String(snapshot.MaxString)
		m[k] = r.I64()
	}
	return m
}

func saveBuckets(w *snapshot.Writer, b [][2]int64) {
	w.U32(uint32(len(b)))
	for _, p := range b {
		w.I64(p[0])
		w.I64(p[1])
	}
}

func loadBuckets(r *snapshot.Reader) [][2]int64 {
	n := r.Len(histBuckets)
	if n == 0 {
		return nil
	}
	b := make([][2]int64, n)
	for i := range b {
		b[i][0] = r.I64()
		b[i][1] = r.I64()
	}
	return b
}

func saveSample(w *snapshot.Writer, sm *Sample) {
	w.I64(sm.Epoch)
	w.I64(sm.Cycle)
	saveI64Map(w, sm.Counters)
	saveI64Map(w, sm.Gauges)
	keys := make([]string, 0, len(sm.Histograms))
	for k := range sm.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		d := sm.Histograms[k]
		w.String(k)
		w.I64(d.Count)
		w.I64(d.Sum)
		saveBuckets(w, d.Buckets)
	}
}

func loadSample(r *snapshot.Reader) Sample {
	sm := Sample{Epoch: r.I64(), Cycle: r.I64()}
	sm.Counters = loadI64Map(r)
	sm.Gauges = loadI64Map(r)
	n := r.Len(maxMapEntries)
	sm.Histograms = make(map[string]HistogramDelta, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.String(snapshot.MaxString)
		d := HistogramDelta{Count: r.I64(), Sum: r.I64()}
		d.Buckets = loadBuckets(r)
		sm.Histograms[k] = d
	}
	return sm
}

func saveSnapshotDoc(w *snapshot.Writer, s *Snapshot) {
	saveI64Map(w, s.Counters)
	saveI64Map(w, s.Gauges)
	keys := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		h := s.Histograms[k]
		w.String(k)
		w.I64(h.Count)
		w.I64(h.Sum)
		w.F64(h.Mean)
		w.I64(h.Max)
		w.F64(h.P50)
		w.F64(h.P95)
		w.F64(h.P99)
		saveBuckets(w, h.Buckets)
	}
}

func loadSnapshotDoc(r *snapshot.Reader) Snapshot {
	var s Snapshot
	s.Counters = loadI64Map(r)
	s.Gauges = loadI64Map(r)
	n := r.Len(maxMapEntries)
	s.Histograms = make(map[string]HistogramStats, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.String(snapshot.MaxString)
		h := HistogramStats{
			Count: r.I64(),
			Sum:   r.I64(),
			Mean:  r.F64(),
			Max:   r.I64(),
			P50:   r.F64(),
			P95:   r.F64(),
			P99:   r.F64(),
		}
		h.Buckets = loadBuckets(r)
		s.Histograms[k] = h
	}
	return s
}

// SaveState serializes the sampler: the previous-boundary cumulative
// values the next delta will difference against, the retained sample
// ring (in logical oldest-first order), and the published latest
// snapshot. Restoring all of it makes post-resume series artifacts
// byte-identical to an uninterrupted run's.
func (s *Sampler) SaveState(w *snapshot.Writer) {
	w.Section("metrics.Sampler")
	w.I64(s.interval)
	w.I64(s.nextAt)
	w.I64s(s.prevCounter)
	w.Len(len(s.prevHist))
	for i := range s.prevHist {
		p := &s.prevHist[i]
		for _, c := range p.counts {
			w.I64(c)
		}
		w.I64(p.n)
		w.I64(p.sum)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Int(cap(s.ring))
	w.Len(s.count)
	for i := 0; i < s.count; i++ {
		sm := s.ring[(s.start+i)%len(s.ring)]
		saveSample(w, &sm)
	}
	w.I64(s.epochs)
	w.Bool(s.has)
	if s.has {
		saveSnapshotDoc(w, &s.latest)
	}
}

// LoadState restores a sampler saved by SaveState into one constructed
// with the same interval and capacity.
func (s *Sampler) LoadState(r *snapshot.Reader) error {
	r.Section("metrics.Sampler")
	interval := r.I64()
	nextAt := r.I64()
	prevCounter := r.I64s(maxMapEntries)
	nHist := r.Len(maxMapEntries)
	prevHist := make([]histPrev, nHist)
	for i := range prevHist {
		p := &prevHist[i]
		for b := range p.counts {
			p.counts[b] = r.I64()
		}
		p.n = r.I64()
		p.sum = r.I64()
	}
	capacity := r.Int()
	count := r.Len(maxMapEntries)
	if r.Err() == nil && interval != s.interval {
		r.Fail("metrics.Sampler: interval %d, sampler has %d", interval, s.interval)
	}
	if r.Err() == nil && capacity != cap(s.ring) {
		r.Fail("metrics.Sampler: ring capacity %d, sampler has %d", capacity, cap(s.ring))
	}
	if r.Err() == nil && count > capacity {
		r.Fail("metrics.Sampler: %d retained samples exceed capacity %d", count, capacity)
	}
	if err := r.Err(); err != nil {
		return err
	}
	ring := make([]Sample, 0, cap(s.ring))
	for i := 0; i < count; i++ {
		ring = append(ring, loadSample(r))
	}
	epochs := r.I64()
	has := r.Bool()
	var latest Snapshot
	if r.Err() == nil && has {
		latest = loadSnapshotDoc(r)
	}
	if err := r.Err(); err != nil {
		return err
	}
	if len(prevCounter) != nHist {
		r.Fail("metrics.Sampler: prev arrays disagree (%d/%d)", len(prevCounter), nHist)
		return r.Err()
	}
	s.nextAt = nextAt
	s.prevCounter = prevCounter
	s.prevHist = prevHist
	s.mu.Lock()
	s.ring = ring
	s.start = 0
	s.count = len(ring)
	s.epochs = epochs
	s.latest = latest
	s.has = has
	s.mu.Unlock()
	return nil
}
