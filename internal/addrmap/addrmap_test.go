package addrmap

import (
	"testing"
	"testing/quick"
)

func testGeometry() Geometry {
	return Geometry{Ranks: 1, BanksPerRank: 8, RowsPerBank: 16384, ColsPerRow: 128}
}

func TestGeometryValidate(t *testing.T) {
	if err := testGeometry().Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	bad := []Geometry{
		{Ranks: 0, BanksPerRank: 8, RowsPerBank: 16, ColsPerRow: 16},
		{Ranks: 1, BanksPerRank: 6, RowsPerBank: 16, ColsPerRow: 16}, // not power of two
		{Ranks: 1, BanksPerRank: 8, RowsPerBank: 0, ColsPerRow: 16},
		{Ranks: 3, BanksPerRank: 8, RowsPerBank: 16, ColsPerRow: 16},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid geometry %+v", i, g)
		}
	}
}

func TestLinearRoundTrip(t *testing.T) {
	m, err := NewLinear(testGeometry())
	if err != nil {
		t.Fatal(err)
	}
	f := func(a uint64) bool {
		a %= testGeometry().Lines()
		c := m.Decode(a)
		return m.Encode(c) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeWithinBounds(t *testing.T) {
	g := testGeometry()
	lin, _ := NewLinear(g)
	xor, _ := NewXOR(g)
	for _, m := range []Mapper{lin, xor} {
		f := func(a uint64) bool {
			c := m.Decode(a)
			return c.Rank >= 0 && c.Rank < g.Ranks &&
				c.Bank >= 0 && c.Bank < g.BanksPerRank &&
				c.Row >= 0 && c.Row < g.RowsPerBank &&
				c.Col >= 0 && c.Col < g.ColsPerRow
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
	}
}

func TestLinearSequentialStreamsWithinRow(t *testing.T) {
	m, _ := NewLinear(testGeometry())
	// Consecutive lines share rank/bank/row until the column wraps.
	c0 := m.Decode(0)
	for a := uint64(1); a < 128; a++ {
		c := m.Decode(a)
		if c.Rank != c0.Rank || c.Bank != c0.Bank || c.Row != c0.Row {
			t.Fatalf("line %d left the row: %+v vs %+v", a, c, c0)
		}
		if c.Col != int(a) {
			t.Fatalf("line %d col = %d", a, c.Col)
		}
	}
	if c := m.Decode(128); c.Bank == c0.Bank && c.Row == c0.Row {
		t.Fatal("line 128 did not advance bank/row")
	}
}

func TestXORPreservesAllButBank(t *testing.T) {
	g := testGeometry()
	lin, _ := NewLinear(g)
	xor, _ := NewXOR(g)
	f := func(a uint64) bool {
		cl, cx := lin.Decode(a), xor.Decode(a)
		return cl.Rank == cx.Rank && cl.Row == cx.Row && cl.Col == cx.Col
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXORSpreadsConflictingRows(t *testing.T) {
	g := testGeometry()
	lin, _ := NewLinear(g)
	xor, _ := NewXOR(g)
	// Addresses that alias to the same bank under the linear map (same
	// bank bits, consecutive rows) spread across banks under XOR.
	banks := map[int]bool{}
	for row := 0; row < 8; row++ {
		a := lin.Encode(Coord{Rank: 0, Bank: 3, Row: row, Col: 0})
		banks[xor.Decode(a).Bank] = true
	}
	if len(banks) != 8 {
		t.Fatalf("XOR spread 8 conflicting rows over %d banks, want 8", len(banks))
	}
}

func TestXORIsPermutationPerRow(t *testing.T) {
	g := testGeometry()
	xor, _ := NewXOR(g)
	lin, _ := NewLinear(g)
	// For a fixed row, the bank mapping is a bijection.
	for row := 0; row < 4; row++ {
		seen := map[int]bool{}
		for b := 0; b < g.BanksPerRank; b++ {
			a := lin.Encode(Coord{Rank: 0, Bank: b, Row: row, Col: 0})
			nb := xor.Decode(a).Bank
			if seen[nb] {
				t.Fatalf("row %d: bank %d mapped twice", row, nb)
			}
			seen[nb] = true
		}
	}
}

func TestMapperNames(t *testing.T) {
	lin, _ := NewLinear(testGeometry())
	xor, _ := NewXOR(testGeometry())
	if lin.Name() != "linear" || xor.Name() != "xor" {
		t.Errorf("names = %q, %q", lin.Name(), xor.Name())
	}
	if lin.Banks() != 8 || xor.Banks() != 8 {
		t.Errorf("banks = %d, %d, want 8", lin.Banks(), xor.Banks())
	}
}

func TestMultiRankGeometry(t *testing.T) {
	g := Geometry{Ranks: 2, BanksPerRank: 4, RowsPerBank: 1024, ColsPerRow: 64}
	m, err := NewXOR(g)
	if err != nil {
		t.Fatal(err)
	}
	ranks := map[int]bool{}
	for a := uint64(0); a < g.Lines(); a += 997 {
		c := m.Decode(a)
		ranks[c.Rank] = true
		if c.Rank < 0 || c.Rank >= 2 || c.Bank < 0 || c.Bank >= 4 {
			t.Fatalf("out of bounds: %+v", c)
		}
	}
	if len(ranks) != 2 {
		t.Fatalf("addresses touched %d ranks, want 2", len(ranks))
	}
}
