package addrmap

import (
	"fmt"
	"testing"
	"testing/quick"
)

func testGeometry() Geometry {
	return Geometry{Ranks: 1, BanksPerRank: 8, RowsPerBank: 16384, ColsPerRow: 128}
}

func TestGeometryValidate(t *testing.T) {
	if err := testGeometry().Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	bad := []Geometry{
		{Ranks: 0, BanksPerRank: 8, RowsPerBank: 16, ColsPerRow: 16},
		{Ranks: 1, BanksPerRank: 6, RowsPerBank: 16, ColsPerRow: 16}, // not power of two
		{Ranks: 1, BanksPerRank: 8, RowsPerBank: 0, ColsPerRow: 16},
		{Ranks: 3, BanksPerRank: 8, RowsPerBank: 16, ColsPerRow: 16},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid geometry %+v", i, g)
		}
	}
}

func TestLinearRoundTrip(t *testing.T) {
	m, err := NewLinear(testGeometry())
	if err != nil {
		t.Fatal(err)
	}
	f := func(a uint64) bool {
		a %= testGeometry().Lines()
		c := m.Decode(a)
		return m.Encode(c) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeWithinBounds(t *testing.T) {
	g := testGeometry()
	lin, _ := NewLinear(g)
	xor, _ := NewXOR(g)
	for _, m := range []Mapper{lin, xor} {
		f := func(a uint64) bool {
			c := m.Decode(a)
			return c.Rank >= 0 && c.Rank < g.Ranks &&
				c.Bank >= 0 && c.Bank < g.BanksPerRank &&
				c.Row >= 0 && c.Row < g.RowsPerBank &&
				c.Col >= 0 && c.Col < g.ColsPerRow
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
	}
}

func TestLinearSequentialStreamsWithinRow(t *testing.T) {
	m, _ := NewLinear(testGeometry())
	// Consecutive lines share rank/bank/row until the column wraps.
	c0 := m.Decode(0)
	for a := uint64(1); a < 128; a++ {
		c := m.Decode(a)
		if c.Rank != c0.Rank || c.Bank != c0.Bank || c.Row != c0.Row {
			t.Fatalf("line %d left the row: %+v vs %+v", a, c, c0)
		}
		if c.Col != int(a) {
			t.Fatalf("line %d col = %d", a, c.Col)
		}
	}
	if c := m.Decode(128); c.Bank == c0.Bank && c.Row == c0.Row {
		t.Fatal("line 128 did not advance bank/row")
	}
}

func TestXORPreservesAllButBank(t *testing.T) {
	g := testGeometry()
	lin, _ := NewLinear(g)
	xor, _ := NewXOR(g)
	f := func(a uint64) bool {
		cl, cx := lin.Decode(a), xor.Decode(a)
		return cl.Rank == cx.Rank && cl.Row == cx.Row && cl.Col == cx.Col
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXORSpreadsConflictingRows(t *testing.T) {
	g := testGeometry()
	lin, _ := NewLinear(g)
	xor, _ := NewXOR(g)
	// Addresses that alias to the same bank under the linear map (same
	// bank bits, consecutive rows) spread across banks under XOR.
	banks := map[int]bool{}
	for row := 0; row < 8; row++ {
		a := lin.Encode(Coord{Rank: 0, Bank: 3, Row: row, Col: 0})
		banks[xor.Decode(a).Bank] = true
	}
	if len(banks) != 8 {
		t.Fatalf("XOR spread 8 conflicting rows over %d banks, want 8", len(banks))
	}
}

func TestXORIsPermutationPerRow(t *testing.T) {
	g := testGeometry()
	xor, _ := NewXOR(g)
	lin, _ := NewLinear(g)
	// For a fixed row, the bank mapping is a bijection.
	for row := 0; row < 4; row++ {
		seen := map[int]bool{}
		for b := 0; b < g.BanksPerRank; b++ {
			a := lin.Encode(Coord{Rank: 0, Bank: b, Row: row, Col: 0})
			nb := xor.Decode(a).Bank
			if seen[nb] {
				t.Fatalf("row %d: bank %d mapped twice", row, nb)
			}
			seen[nb] = true
		}
	}
}

func TestMapperNames(t *testing.T) {
	lin, _ := NewLinear(testGeometry())
	xor, _ := NewXOR(testGeometry())
	if lin.Name() != "linear" || xor.Name() != "xor" {
		t.Errorf("names = %q, %q", lin.Name(), xor.Name())
	}
	if lin.Banks() != 8 || xor.Banks() != 8 {
		t.Errorf("banks = %d, %d, want 8", lin.Banks(), xor.Banks())
	}
}

// TestMapperBijectivity exhaustively decodes a small geometry's full
// address space for every mapping mode at 1, 2, and 4 channels and
// asserts the map is a bijection: every (channel, rank, bank, row, col)
// coordinate is produced by exactly one line address. A mapper that
// aliased two addresses onto one DRAM location (or left holes) would
// silently corrupt every experiment built on it.
func TestMapperBijectivity(t *testing.T) {
	for _, channels := range []int{1, 2, 4} {
		g := Geometry{
			Channels:     channels,
			Ranks:        2,
			BanksPerRank: 4,
			RowsPerBank:  16,
			ColsPerRow:   8,
		}
		for _, mode := range []struct {
			name string
			make func(Geometry) (Mapper, error)
		}{
			{"linear", func(g Geometry) (Mapper, error) { return NewLinear(g) }},
			{"xor", func(g Geometry) (Mapper, error) { return NewXOR(g) }},
		} {
			t.Run(fmt.Sprintf("%s/ch%d", mode.name, channels), func(t *testing.T) {
				m, err := mode.make(g)
				if err != nil {
					t.Fatal(err)
				}
				lines := g.Lines()
				index := func(c Coord) uint64 {
					// Flatten with explicit bounds checking so an
					// out-of-range coordinate fails loudly rather than
					// aliasing into a neighbor's slot.
					if c.Channel < 0 || c.Channel >= channels ||
						c.Rank < 0 || c.Rank >= g.Ranks ||
						c.Bank < 0 || c.Bank >= g.BanksPerRank ||
						c.Row < 0 || c.Row >= g.RowsPerBank ||
						c.Col < 0 || c.Col >= g.ColsPerRow {
						t.Fatalf("coordinate out of bounds: %+v", c)
					}
					i := uint64(c.Channel)
					i = i*uint64(g.Ranks) + uint64(c.Rank)
					i = i*uint64(g.BanksPerRank) + uint64(c.Bank)
					i = i*uint64(g.RowsPerBank) + uint64(c.Row)
					i = i*uint64(g.ColsPerRow) + uint64(c.Col)
					return i
				}
				hitBy := make(map[uint64]uint64, lines)
				for a := uint64(0); a < lines; a++ {
					c := m.Decode(a)
					i := index(c)
					if prev, dup := hitBy[i]; dup {
						t.Fatalf("addresses %d and %d both decode to %+v", prev, a, c)
					}
					hitBy[i] = a
				}
				// Injective over a domain the same size as the codomain
				// implies surjective; double-check the count anyway.
				if uint64(len(hitBy)) != lines {
					t.Fatalf("decoded %d distinct coordinates, want %d", len(hitBy), lines)
				}
			})
		}
	}
}

// TestLinearEncodeInverseAllChannels pins Encode as the exact inverse of
// Linear.Decode across the full small-geometry address space at every
// channel count (the quick.Check round trip above only samples).
func TestLinearEncodeInverseAllChannels(t *testing.T) {
	for _, channels := range []int{1, 2, 4} {
		g := Geometry{Channels: channels, Ranks: 2, BanksPerRank: 4, RowsPerBank: 16, ColsPerRow: 8}
		m, err := NewLinear(g)
		if err != nil {
			t.Fatal(err)
		}
		for a := uint64(0); a < g.Lines(); a++ {
			if got := m.Encode(m.Decode(a)); got != a {
				t.Fatalf("ch%d: Encode(Decode(%d)) = %d", channels, a, got)
			}
		}
	}
}

func TestMultiRankGeometry(t *testing.T) {
	g := Geometry{Ranks: 2, BanksPerRank: 4, RowsPerBank: 1024, ColsPerRow: 64}
	m, err := NewXOR(g)
	if err != nil {
		t.Fatal(err)
	}
	ranks := map[int]bool{}
	for a := uint64(0); a < g.Lines(); a += 997 {
		c := m.Decode(a)
		ranks[c.Rank] = true
		if c.Rank < 0 || c.Rank >= 2 || c.Bank < 0 || c.Bank >= 4 {
			t.Fatalf("out of bounds: %+v", c)
		}
	}
	if len(ranks) != 2 {
		t.Fatalf("addresses touched %d ranks, want 2", len(ranks))
	}
}
