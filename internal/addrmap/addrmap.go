// Package addrmap decodes physical line addresses into DRAM coordinates
// (rank, bank, row, column). It implements the XOR bank mapping of Lin
// et al. (HPCA '01), which the paper's memory controller uses to spread
// row-conflicting streams across banks, plus a plain linear mapping for
// ablation.
package addrmap

import "fmt"

// Coord is a decoded DRAM coordinate.
type Coord struct {
	Channel, Rank, Bank, Row, Col int
}

// Mapper decodes a physical line address (an address already divided by
// the cache line size) into DRAM coordinates.
type Mapper interface {
	// Decode maps a line address to its DRAM coordinate.
	Decode(lineAddr uint64) Coord
	// Banks returns the total number of banks addressed.
	Banks() int
	// Name identifies the mapping for reports.
	Name() string
}

// Geometry describes the address space shape shared by both mappers.
// All fields must be powers of two. Channels == 0 means one channel.
type Geometry struct {
	Channels     int // memory channels, interleaved at line granularity
	Ranks        int
	BanksPerRank int
	RowsPerBank  int
	ColsPerRow   int // cache lines per row
}

// Validate checks that every dimension is a positive power of two.
func (g Geometry) Validate() error {
	if g.Channels == 0 {
		g.Channels = 1
	}
	for _, d := range [...]struct {
		name string
		v    int
	}{
		{"channels", g.Channels},
		{"ranks", g.Ranks},
		{"banks per rank", g.BanksPerRank},
		{"rows per bank", g.RowsPerBank},
		{"cols per row", g.ColsPerRow},
	} {
		if d.v < 1 || d.v&(d.v-1) != 0 {
			return fmt.Errorf("addrmap: %s must be a positive power of two, got %d", d.name, d.v)
		}
	}
	return nil
}

// Banks returns the bank count per channel.
func (g Geometry) Banks() int { return g.Ranks * g.BanksPerRank }

// Lines returns the total number of cache lines the geometry addresses.
func (g Geometry) Lines() uint64 {
	ch := g.Channels
	if ch == 0 {
		ch = 1
	}
	return uint64(ch) * uint64(g.Ranks) * uint64(g.BanksPerRank) * uint64(g.RowsPerBank) * uint64(g.ColsPerRow)
}

func log2(v int) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Linear maps address bits as row | rank | bank | column | channel
// (channels interleave at line granularity; within a channel, low bits
// are the column, so consecutive lines stream within one row of one
// bank).
type Linear struct {
	g                                     Geometry
	chanBits, colBits, bankBits, rankBits uint
	chanMask, colMask, bankMask, rankMask uint64
	rowMask                               uint64
}

// NewLinear returns a linear mapper over the geometry.
func NewLinear(g Geometry) (*Linear, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.Channels == 0 {
		g.Channels = 1
	}
	m := &Linear{g: g}
	m.chanBits = log2(g.Channels)
	m.colBits = log2(g.ColsPerRow)
	m.bankBits = log2(g.BanksPerRank)
	m.rankBits = log2(g.Ranks)
	m.chanMask = uint64(g.Channels - 1)
	m.colMask = uint64(g.ColsPerRow - 1)
	m.bankMask = uint64(g.BanksPerRank - 1)
	m.rankMask = uint64(g.Ranks - 1)
	m.rowMask = uint64(g.RowsPerBank - 1)
	return m, nil
}

// Decode implements Mapper.
func (m *Linear) Decode(lineAddr uint64) Coord {
	ch := lineAddr & m.chanMask
	lineAddr >>= m.chanBits
	col := lineAddr & m.colMask
	lineAddr >>= m.colBits
	bank := lineAddr & m.bankMask
	lineAddr >>= m.bankBits
	rank := lineAddr & m.rankMask
	lineAddr >>= m.rankBits
	row := lineAddr & m.rowMask
	return Coord{Channel: int(ch), Rank: int(rank), Bank: int(bank), Row: int(row), Col: int(col)}
}

// Banks implements Mapper.
func (m *Linear) Banks() int { return m.g.Banks() }

// Name implements Mapper.
func (m *Linear) Name() string { return "linear" }

// XOR is the Lin et al. permutation-based mapping: the bank index is the
// linear bank bits XORed with the low row bits, so that streams that
// would conflict in one bank under the linear map instead spread across
// banks while preserving row locality.
type XOR struct {
	Linear
}

// NewXOR returns an XOR-permuted mapper over the geometry.
func NewXOR(g Geometry) (*XOR, error) {
	lin, err := NewLinear(g)
	if err != nil {
		return nil, err
	}
	return &XOR{Linear: *lin}, nil
}

// Decode implements Mapper.
func (m *XOR) Decode(lineAddr uint64) Coord {
	c := m.Linear.Decode(lineAddr)
	c.Bank = int((uint64(c.Bank) ^ (uint64(c.Row) & m.bankMask)))
	return c
}

// Name implements Mapper.
func (m *XOR) Name() string { return "xor" }

// Encode is the inverse of Linear.Decode; it is used by tests and by the
// workload generators to construct addresses with known coordinates.
func (m *Linear) Encode(c Coord) uint64 {
	a := uint64(c.Row) & m.rowMask
	a = a<<m.rankBits | uint64(c.Rank)&m.rankMask
	a = a<<m.bankBits | uint64(c.Bank)&m.bankMask
	a = a<<m.colBits | uint64(c.Col)&m.colMask
	a = a<<m.chanBits | uint64(c.Channel)&m.chanMask
	return a
}
