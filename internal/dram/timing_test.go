package dram

import (
	"testing"
	"testing/quick"
)

func TestDDR2800MatchesTable6(t *testing.T) {
	// The constants of the paper's Table 6, verbatim.
	got := DDR2800()
	want := Timing{
		TRCD: 5, TCL: 5, TWL: 4, TCCD: 2, TWTR: 3, TWR: 6, TRTP: 3,
		TRP: 5, TRRD: 3, TRAS: 18, TRC: 22, BL2: 4, TRFC: 510, TREF: 280000,
	}
	if got != want {
		t.Fatalf("DDR2800() = %+v, want Table 6 values %+v", got, want)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Table 6 constants do not validate: %v", err)
	}
}

func TestTimingScale(t *testing.T) {
	base := DDR2800()
	for _, k := range []int{1, 2, 4, 7} {
		s := base.Scale(k)
		if s.TCL != base.TCL*k || s.TRCD != base.TRCD*k || s.TRAS != base.TRAS*k ||
			s.BL2 != base.BL2*k || s.TRFC != base.TRFC*k {
			t.Errorf("Scale(%d) did not scale core constraints: %+v", k, s)
		}
		if s.TREF != base.TREF {
			t.Errorf("Scale(%d) scaled the refresh interval: %d", k, s.TREF)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("Scale(%d) invalid: %v", k, err)
		}
	}
}

func TestTimingScalePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(0) did not panic")
		}
	}()
	DDR2800().Scale(0)
}

func TestTimingValidateRejectsBadConstants(t *testing.T) {
	cases := []func(*Timing){
		func(tt *Timing) { tt.TCL = 0 },
		func(tt *Timing) { tt.TRCD = -1 },
		func(tt *Timing) { tt.BL2 = 0 },
		func(tt *Timing) { tt.TRAS = tt.TRCD - 1 },
		func(tt *Timing) { tt.TRC = tt.TRAS - 1 },
		func(tt *Timing) { tt.TRFC = 0 },
		func(tt *Timing) { tt.TREF = 0 },
	}
	for i, mutate := range cases {
		tt := DDR2800()
		mutate(&tt)
		if err := tt.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid timing %+v", i, tt)
		}
	}
}

func TestBankServiceTable3(t *testing.T) {
	// Table 3: conflict = tRP+tRCD+tCL, closed = tRCD+tCL, hit = tCL.
	tt := DDR2800()
	if got, want := tt.BankServiceRead(0), 5+5+5; got != want {
		t.Errorf("conflict read service = %d, want %d", got, want)
	}
	if got, want := tt.BankServiceRead(1), 5+5; got != want {
		t.Errorf("closed read service = %d, want %d", got, want)
	}
	if got, want := tt.BankServiceRead(2), 5; got != want {
		t.Errorf("hit read service = %d, want %d", got, want)
	}
	// Writes substitute tWL for tCL.
	if got, want := tt.BankServiceWrite(0), 5+5+4; got != want {
		t.Errorf("conflict write service = %d, want %d", got, want)
	}
	if got, want := tt.BankServiceWrite(2), 4; got != want {
		t.Errorf("hit write service = %d, want %d", got, want)
	}
}

func TestCmdBankServiceTable4(t *testing.T) {
	// Table 4: precharge = tRP + (tRAS - tRCD - tCL), activate = tRCD,
	// read = tCL, write = tWL; channel service = BL/2.
	tt := DDR2800()
	pre, act, rd := tt.CmdBankService(false)
	if want := 5 + (18 - 5 - 5); pre != want {
		t.Errorf("precharge service = %d, want %d", pre, want)
	}
	if act != 5 {
		t.Errorf("activate service = %d, want 5", act)
	}
	if rd != 5 {
		t.Errorf("read service = %d, want 5", rd)
	}
	_, _, wr := tt.CmdBankService(true)
	if wr != 4 {
		t.Errorf("write service = %d, want 4", wr)
	}
	if tt.ChannelService() != 4 {
		t.Errorf("channel service = %d, want BL/2 = 4", tt.ChannelService())
	}
}

func TestScaleLinearity(t *testing.T) {
	// Property: Scale(a).Scale(b) == Scale(a*b) for the core constraints.
	f := func(a, b uint8) bool {
		ka, kb := int(a%5)+1, int(b%5)+1
		x := DDR2800().Scale(ka).Scale(kb)
		y := DDR2800().Scale(ka * kb)
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
