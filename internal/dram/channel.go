package dram

import (
	"fmt"
	"math"
)

// Kind identifies an SDRAM command at the device level. The values match
// core.CmdKind so the controller can convert freely.
type Kind uint8

const (
	KindNone Kind = iota
	KindActivate
	KindRead
	KindWrite
	KindPrecharge
	KindRefresh
)

func (k Kind) String() string {
	switch k {
	case KindActivate:
		return "ACT"
	case KindRead:
		return "RD"
	case KindWrite:
		return "WR"
	case KindPrecharge:
		return "PRE"
	case KindRefresh:
		return "REF"
	}
	return "NOP"
}

// minTime is "minus infinity" for last-issue timestamps.
const minTime = math.MinInt64 / 4

// Config describes the geometry of one memory channel.
type Config struct {
	Timing       Timing
	Ranks        int
	BanksPerRank int
	RowsPerBank  int
	ColsPerRow   int // cache lines per row
}

// DefaultConfig is the paper's Table 5 memory system: one channel, one
// rank, eight banks. Rows hold 8KB (128 64-byte lines), a typical DDR2
// page size.
func DefaultConfig() Config {
	return Config{
		Timing:       DDR2800(),
		Ranks:        1,
		BanksPerRank: 8,
		RowsPerBank:  16384,
		ColsPerRow:   128,
	}
}

// Banks returns the total number of banks on the channel.
func (c Config) Banks() int { return c.Ranks * c.BanksPerRank }

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	switch {
	case c.Ranks < 1:
		return fmt.Errorf("dram: ranks must be >= 1, got %d", c.Ranks)
	case c.BanksPerRank < 1:
		return fmt.Errorf("dram: banks per rank must be >= 1, got %d", c.BanksPerRank)
	case c.RowsPerBank < 1 || c.ColsPerRow < 1:
		return fmt.Errorf("dram: rows/cols must be >= 1, got %d/%d", c.RowsPerBank, c.ColsPerRow)
	}
	return nil
}

// bank is the state machine for one DRAM bank.
type bank struct {
	open bool
	row  int

	lastActivate  int64
	lastRead      int64
	lastWrite     int64
	lastPrecharge int64
	writeDataEnd  int64 // end of the most recent write burst to this bank

	// busyCycles accumulates cycles the bank spent with a row open or
	// precharging (activate issue through precharge completion), the
	// paper's Figure 7 "bank utilization" numerator.
	busyCycles int64

	// Per-bank command counts for the observability layer (metrics
	// registry snapshots read them; the simulation never does).
	activates, precharges, reads, writes int64

	// Occupant identity: the thread whose command set each timestamp
	// (-1 before any command, and for commands issued on no thread's
	// behalf). BlockingCause reads these to name the aggressor behind a
	// binding timing constraint; the simulation never does.
	actThread, readThread, writeThread, preThread int
}

// Channel is a cycle-accurate model of a single DDR2 channel: all banks,
// rank-level activate spacing, the shared command bus (one command per
// cycle, enforced by the caller issuing at most one Issue per cycle), the
// shared bidirectional data bus, and refresh.
type Channel struct {
	cfg   Config
	banks []bank

	// Per-rank timestamp of the most recent activate, for tRRD.
	rankLastActivate []int64

	// Channel-global CAS bookkeeping.
	lastCAS        int64 // most recent read or write issue
	lastWriteData  int64 // end of most recent write burst (any bank), for tWTR
	dataBusFreeAt  int64 // first cycle the data bus is free (exclusive end)
	dataBusBusy    int64 // total data-bus busy cycles
	refreshUntil   int64 // banks unavailable until this cycle after REF
	refreshedCount int64

	// Occupant identity mirroring the channel-global timestamps (-1
	// before any command). See bank's occupant fields.
	lastCASThread       int
	lastWriteDataThread int
	dataBusThread       int
	rankLastActThread   []int
}

// NewChannel returns a channel with all banks precharged.
func NewChannel(cfg Config) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ch := &Channel{
		cfg:               cfg,
		banks:             make([]bank, cfg.Banks()),
		rankLastActivate:  make([]int64, cfg.Ranks),
		rankLastActThread: make([]int, cfg.Ranks),
	}
	for i := range ch.banks {
		b := &ch.banks[i]
		b.lastActivate = minTime
		b.lastRead = minTime
		b.lastWrite = minTime
		b.lastPrecharge = minTime
		b.writeDataEnd = minTime
		b.actThread, b.readThread, b.writeThread, b.preThread = -1, -1, -1, -1
	}
	for i := range ch.rankLastActivate {
		ch.rankLastActivate[i] = minTime
		ch.rankLastActThread[i] = -1
	}
	ch.lastCAS = minTime
	ch.lastWriteData = minTime
	ch.dataBusFreeAt = minTime
	ch.refreshUntil = minTime
	ch.lastCASThread = -1
	ch.lastWriteDataThread = -1
	ch.dataBusThread = -1
	return ch, nil
}

// Config returns the channel's configuration.
func (ch *Channel) Config() Config { return ch.cfg }

// BankOpen reports whether the bank has an open row, and which.
func (ch *Channel) BankOpen(bankIdx int) (row int, open bool) {
	b := &ch.banks[bankIdx]
	return b.row, b.open
}

// LastActivate returns the cycle of the bank's most recent activate
// command (a large negative value if it was never activated). The FQ
// bank scheduler uses it to apply the priority-inversion bound.
func (ch *Channel) LastActivate(bankIdx int) int64 {
	return ch.banks[bankIdx].lastActivate
}

// BankTimestamps returns the bank's last command-issue cycles (large
// negative values for commands never issued). The audit layer uses them
// to cross-check its shadow bank state against the device.
func (ch *Channel) BankTimestamps(bankIdx int) (lastActivate, lastRead, lastWrite, lastPrecharge int64) {
	b := &ch.banks[bankIdx]
	return b.lastActivate, b.lastRead, b.lastWrite, b.lastPrecharge
}

// DataBusFreeAt returns the first cycle the shared data bus is free (a
// large negative value before any CAS); an audit cross-check accessor.
func (ch *Channel) DataBusFreeAt() int64 { return ch.dataBusFreeAt }

// rankOf returns the rank index of a flat bank index.
func (ch *Channel) rankOf(bankIdx int) int { return bankIdx / ch.cfg.BanksPerRank }

// EarliestIssue returns the first cycle at or after which the given
// command to the given bank satisfies every DDR2 constraint: the bank's
// own timing, rank-level tRRD, channel-level tCCD and tWTR, data-bus
// occupancy, and refresh.
func (ch *Channel) EarliestIssue(kind Kind, bankIdx int) int64 {
	t := &ch.cfg.Timing
	b := &ch.banks[bankIdx]
	e := ch.refreshUntil
	switch kind {
	case KindActivate:
		e = maxi64(e, b.lastPrecharge+int64(t.TRP))
		e = maxi64(e, b.lastActivate+int64(t.TRC))
		e = maxi64(e, ch.rankLastActivate[ch.rankOf(bankIdx)]+int64(t.TRRD))
	case KindRead:
		e = maxi64(e, b.lastActivate+int64(t.TRCD))
		e = maxi64(e, ch.lastCAS+int64(t.TCCD))
		e = maxi64(e, ch.lastWriteData+int64(t.TWTR))
		e = maxi64(e, ch.dataBusFreeAt-int64(t.TCL))
	case KindWrite:
		e = maxi64(e, b.lastActivate+int64(t.TRCD))
		e = maxi64(e, ch.lastCAS+int64(t.TCCD))
		e = maxi64(e, ch.dataBusFreeAt-int64(t.TWL))
	case KindPrecharge:
		e = maxi64(e, b.lastActivate+int64(t.TRAS))
		e = maxi64(e, b.lastRead+int64(t.TRTP))
		e = maxi64(e, b.writeDataEnd+int64(t.TWR))
	case KindRefresh:
		// All banks must be precharged; refresh may start tRP after the
		// latest precharge and tRC after the latest activate. An open
		// bank pushes the earliest time to "never" (the bank must be
		// precharged first, at an unknown future cycle).
		for i := range ch.banks {
			bb := &ch.banks[i]
			if bb.open {
				return 1 << 62
			}
			e = maxi64(e, bb.lastPrecharge+int64(t.TRP))
			e = maxi64(e, bb.lastActivate+int64(t.TRC))
		}
	default:
		panic(fmt.Sprintf("dram: EarliestIssue of %v", kind))
	}
	return e
}

// Ready reports whether the command can issue at cycle now.
func (ch *Channel) Ready(kind Kind, bankIdx int, now int64) bool {
	return ch.EarliestIssue(kind, bankIdx) <= now
}

// BlockCause classifies which resource a binding DDR2 constraint is
// guarding: the bank itself, the shared data bus, a channel-global CAS
// constraint, rank-level activate spacing, or a refresh window.
type BlockCause uint8

const (
	BlockNone BlockCause = iota
	BlockRefresh
	BlockBank
	BlockBus
	BlockChan
	BlockRank
)

func (c BlockCause) String() string {
	switch c {
	case BlockRefresh:
		return "refresh"
	case BlockBank:
		return "bank"
	case BlockBus:
		return "bus"
	case BlockChan:
		return "chan"
	case BlockRank:
		return "rank"
	}
	return "none"
}

// BlockingCause recomputes EarliestIssue term by term and reports the
// binding constraint: the first cycle the command may issue, the
// resource class guarding it, and the thread whose earlier command set
// it (-1 when no thread is responsible — refresh, rank/chan spacing, or
// a timestamp predating any attributed command). Ties resolve in
// precedence order refresh > bank > bus > chan > rank, so attribution
// is deterministic. Observation-only: the scheduler never calls it.
func (ch *Channel) BlockingCause(kind Kind, bankIdx int) (until int64, cause BlockCause, thread int) {
	t := &ch.cfg.Timing
	b := &ch.banks[bankIdx]
	until, cause, thread = ch.refreshUntil, BlockRefresh, -1
	// bind replaces the current answer only on a strictly later term, so
	// among equal maxima the earliest call (highest precedence) wins.
	bind := func(e int64, c BlockCause, th int) {
		if e > until {
			until, cause, thread = e, c, th
		}
	}
	switch kind {
	case KindActivate:
		bind(b.lastPrecharge+int64(t.TRP), BlockBank, b.preThread)
		bind(b.lastActivate+int64(t.TRC), BlockBank, b.actThread)
		rank := ch.rankOf(bankIdx)
		bind(ch.rankLastActivate[rank]+int64(t.TRRD), BlockRank, ch.rankLastActThread[rank])
	case KindRead:
		bind(b.lastActivate+int64(t.TRCD), BlockBank, b.actThread)
		bind(ch.dataBusFreeAt-int64(t.TCL), BlockBus, ch.dataBusThread)
		bind(ch.lastCAS+int64(t.TCCD), BlockChan, ch.lastCASThread)
		bind(ch.lastWriteData+int64(t.TWTR), BlockChan, ch.lastWriteDataThread)
	case KindWrite:
		bind(b.lastActivate+int64(t.TRCD), BlockBank, b.actThread)
		bind(ch.dataBusFreeAt-int64(t.TWL), BlockBus, ch.dataBusThread)
		bind(ch.lastCAS+int64(t.TCCD), BlockChan, ch.lastCASThread)
	case KindPrecharge:
		bind(b.lastActivate+int64(t.TRAS), BlockBank, b.actThread)
		bind(b.lastRead+int64(t.TRTP), BlockBank, b.readThread)
		bind(b.writeDataEnd+int64(t.TWR), BlockBank, b.writeThread)
	default:
		panic(fmt.Sprintf("dram: BlockingCause of %v", kind))
	}
	if until == ch.refreshUntil && cause == BlockRefresh && ch.refreshUntil == minTime {
		// Nothing constrains the command: it was ready from minus
		// infinity.
		return minTime, BlockNone, -1
	}
	return until, cause, thread
}

// Issue applies the command to the device state at cycle now. It panics
// if the command violates a timing constraint or the bank state (these
// indicate controller bugs, not recoverable conditions). For reads it
// returns the cycle at which the data burst completes (the load-to-use
// response time at the controller); for other commands it returns 0.
func (ch *Channel) Issue(kind Kind, bankIdx, row int, now int64) int64 {
	return ch.IssueFrom(kind, bankIdx, row, now, -1)
}

// IssueFrom is Issue with the issuing thread attached: occupant-identity
// fields record who set each timestamp so BlockingCause can name the
// aggressor behind a later wait. thread < 0 means "no thread" (the
// controller's idle-close precharges inherit the thread whose activate
// opened the row — it is that thread's occupancy being drained).
func (ch *Channel) IssueFrom(kind Kind, bankIdx, row int, now int64, thread int) int64 {
	if e := ch.EarliestIssue(kind, bankIdx); e > now {
		panic(fmt.Sprintf("dram: %v bank %d issued at %d, earliest legal %d", kind, bankIdx, now, e))
	}
	t := &ch.cfg.Timing
	b := &ch.banks[bankIdx]
	switch kind {
	case KindActivate:
		if b.open {
			panic(fmt.Sprintf("dram: activate to open bank %d", bankIdx))
		}
		b.open = true
		b.row = row
		b.lastActivate = now
		b.activates++
		b.actThread = thread
		rank := ch.rankOf(bankIdx)
		ch.rankLastActivate[rank] = now
		ch.rankLastActThread[rank] = thread
	case KindRead:
		if !b.open || b.row != row {
			panic(fmt.Sprintf("dram: read bank %d row %d, open=%v row=%d", bankIdx, row, b.open, b.row))
		}
		b.lastRead = now
		b.reads++
		b.readThread = thread
		ch.lastCAS = now
		ch.lastCASThread = thread
		end := now + int64(t.TCL) + int64(t.BL2)
		ch.dataBusFreeAt = end
		ch.dataBusThread = thread
		ch.dataBusBusy += int64(t.BL2)
		return end
	case KindWrite:
		if !b.open || b.row != row {
			panic(fmt.Sprintf("dram: write bank %d row %d, open=%v row=%d", bankIdx, row, b.open, b.row))
		}
		b.lastWrite = now
		b.writes++
		b.writeThread = thread
		ch.lastCAS = now
		ch.lastCASThread = thread
		end := now + int64(t.TWL) + int64(t.BL2)
		b.writeDataEnd = end
		ch.lastWriteData = end
		ch.lastWriteDataThread = thread
		ch.dataBusFreeAt = end
		ch.dataBusThread = thread
		ch.dataBusBusy += int64(t.BL2)
		return end
	case KindPrecharge:
		if !b.open {
			panic(fmt.Sprintf("dram: precharge closed bank %d", bankIdx))
		}
		if thread < 0 {
			thread = b.actThread
		}
		b.open = false
		b.lastPrecharge = now
		b.precharges++
		b.preThread = thread
		// The bank was busy from its activate until the precharge
		// completes tRP cycles from now.
		b.busyCycles += now + int64(t.TRP) - b.lastActivate
	case KindRefresh:
		for i := range ch.banks {
			if ch.banks[i].open {
				panic(fmt.Sprintf("dram: refresh with bank %d open", i))
			}
		}
		ch.refreshUntil = now + int64(t.TRFC)
		ch.refreshedCount++
	default:
		panic(fmt.Sprintf("dram: Issue of %v", kind))
	}
	return 0
}

// AllBanksClosed reports whether every bank is precharged.
func (ch *Channel) AllBanksClosed() bool {
	for i := range ch.banks {
		if ch.banks[i].open {
			return false
		}
	}
	return true
}

// InRefresh reports whether a refresh is in progress at cycle now.
func (ch *Channel) InRefresh(now int64) bool { return now < ch.refreshUntil }

// RefreshEndsAt returns the first cycle after the most recent refresh
// completes (a large negative value if no refresh was ever issued). The
// event-driven controller uses it as the channel's wake time while a
// refresh is in progress.
func (ch *Channel) RefreshEndsAt() int64 { return ch.refreshUntil }

// Refreshes returns the number of refresh commands issued.
func (ch *Channel) Refreshes() int64 { return ch.refreshedCount }

// DataBusBusyCycles returns the cumulative data bus occupancy, the
// numerator of the paper's data bus utilization metric.
func (ch *Channel) DataBusBusyCycles() int64 { return ch.dataBusBusy }

// BankCommandCounts returns the cumulative per-bank command counts
// (activate, precharge, read, write). The observability layer exports
// them; they never feed back into scheduling.
func (ch *Channel) BankCommandCounts(bankIdx int) (act, pre, rd, wr int64) {
	b := &ch.banks[bankIdx]
	return b.activates, b.precharges, b.reads, b.writes
}

// BankBusyCycles returns the cumulative busy cycles summed over all
// banks as of cycle now; banks still open contribute their open time so
// far. This is the numerator of the paper's Figure 7 bank utilization.
func (ch *Channel) BankBusyCycles(now int64) int64 {
	var sum int64
	for i := range ch.banks {
		b := &ch.banks[i]
		sum += b.busyCycles
		if b.open {
			sum += now - b.lastActivate
		}
	}
	return sum
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
