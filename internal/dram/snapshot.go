package dram

import "repro/internal/snapshot"

// SaveState serializes the channel's timing state: every bank's row
// status, last-command timestamps, and command/busy counters, plus the
// channel-global CAS/bus/refresh bookkeeping. Geometry is written for
// verification only.
func (c *Channel) SaveState(w *snapshot.Writer) {
	w.Section("dram.Channel")
	w.Int(len(c.banks))
	for i := range c.banks {
		b := &c.banks[i]
		w.Bool(b.open)
		w.Int(b.row)
		w.I64(b.lastActivate)
		w.I64(b.lastRead)
		w.I64(b.lastWrite)
		w.I64(b.lastPrecharge)
		w.I64(b.writeDataEnd)
		w.I64(b.busyCycles)
		w.I64(b.activates)
		w.I64(b.precharges)
		w.I64(b.reads)
		w.I64(b.writes)
		w.Int(b.actThread)
		w.Int(b.readThread)
		w.Int(b.writeThread)
		w.Int(b.preThread)
	}
	w.I64s(c.rankLastActivate)
	for _, th := range c.rankLastActThread {
		w.Int(th)
	}
	w.I64(c.lastCAS)
	w.I64(c.lastWriteData)
	w.I64(c.dataBusFreeAt)
	w.I64(c.dataBusBusy)
	w.I64(c.refreshUntil)
	w.I64(c.refreshedCount)
	w.Int(c.lastCASThread)
	w.Int(c.lastWriteDataThread)
	w.Int(c.dataBusThread)
}

// LoadState restores a channel saved by SaveState into a channel
// constructed with the same configuration.
func (c *Channel) LoadState(r *snapshot.Reader) error {
	r.Section("dram.Channel")
	n := r.Int()
	if r.Err() == nil && n != len(c.banks) {
		r.Fail("dram.Channel: %d banks, channel has %d", n, len(c.banks))
	}
	if err := r.Err(); err != nil {
		return err
	}
	banks := make([]bank, n)
	for i := range banks {
		b := &banks[i]
		b.open = r.Bool()
		b.row = r.Int()
		b.lastActivate = r.I64()
		b.lastRead = r.I64()
		b.lastWrite = r.I64()
		b.lastPrecharge = r.I64()
		b.writeDataEnd = r.I64()
		b.busyCycles = r.I64()
		b.activates = r.I64()
		b.precharges = r.I64()
		b.reads = r.I64()
		b.writes = r.I64()
		b.actThread = r.Int()
		b.readThread = r.Int()
		b.writeThread = r.Int()
		b.preThread = r.Int()
	}
	rankLast := r.I64s(len(c.rankLastActivate))
	rankLastTh := make([]int, len(c.rankLastActThread))
	for i := range rankLastTh {
		rankLastTh[i] = r.Int()
	}
	lastCAS := r.I64()
	lastWriteData := r.I64()
	dataBusFreeAt := r.I64()
	dataBusBusy := r.I64()
	refreshUntil := r.I64()
	refreshedCount := r.I64()
	lastCASThread := r.Int()
	lastWriteDataThread := r.Int()
	dataBusThread := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if len(rankLast) != len(c.rankLastActivate) {
		r.Fail("dram.Channel: %d ranks, channel has %d", len(rankLast), len(c.rankLastActivate))
		return r.Err()
	}
	copy(c.banks, banks)
	copy(c.rankLastActivate, rankLast)
	copy(c.rankLastActThread, rankLastTh)
	c.lastCAS = lastCAS
	c.lastWriteData = lastWriteData
	c.dataBusFreeAt = dataBusFreeAt
	c.dataBusBusy = dataBusBusy
	c.refreshUntil = refreshUntil
	c.refreshedCount = refreshedCount
	c.lastCASThread = lastCASThread
	c.lastWriteDataThread = lastWriteDataThread
	c.dataBusThread = dataBusThread
	return nil
}
