package dram

import (
	"math/rand"
	"testing"
)

func testChannel(t *testing.T) *Channel {
	t.Helper()
	ch, err := NewChannel(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestChannelBasicReadSequence(t *testing.T) {
	ch := testChannel(t)
	tt := DDR2800()

	if !ch.Ready(KindActivate, 0, 0) {
		t.Fatal("fresh bank not ready for activate")
	}
	ch.Issue(KindActivate, 0, 42, 0)
	if row, open := ch.BankOpen(0); !open || row != 42 {
		t.Fatalf("after activate: open=%v row=%d", open, row)
	}

	// Read must wait tRCD after the activate.
	if ch.Ready(KindRead, 0, int64(tt.TRCD)-1) {
		t.Error("read ready before tRCD")
	}
	if !ch.Ready(KindRead, 0, int64(tt.TRCD)) {
		t.Error("read not ready at tRCD")
	}
	end := ch.Issue(KindRead, 0, 42, int64(tt.TRCD))
	if want := int64(tt.TRCD + tt.TCL + tt.BL2); end != want {
		t.Errorf("read data end = %d, want %d", end, want)
	}
	if got := ch.DataBusBusyCycles(); got != int64(tt.BL2) {
		t.Errorf("data bus busy = %d, want %d", got, int64(tt.BL2))
	}

	// Precharge must wait tRAS after activate and tRTP after the read.
	if ch.Ready(KindPrecharge, 0, int64(tt.TRAS)-1) {
		t.Error("precharge ready before tRAS")
	}
	if !ch.Ready(KindPrecharge, 0, int64(tt.TRAS)) {
		t.Error("precharge not ready at tRAS")
	}
	ch.Issue(KindPrecharge, 0, 0, int64(tt.TRAS))
	if _, open := ch.BankOpen(0); open {
		t.Error("bank still open after precharge")
	}

	// Re-activate must wait tRP after precharge and tRC after activate.
	at := int64(tt.TRAS + tt.TRP)
	if tRC := int64(tt.TRC); tRC > at {
		at = tRC
	}
	if ch.Ready(KindActivate, 0, at-1) {
		t.Error("activate ready before tRP/tRC")
	}
	if !ch.Ready(KindActivate, 0, at) {
		t.Error("activate not ready at tRP/tRC")
	}
}

func TestChannelRowMismatchPanics(t *testing.T) {
	ch := testChannel(t)
	ch.Issue(KindActivate, 0, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("read of wrong row did not panic")
		}
	}()
	ch.Issue(KindRead, 0, 2, 10)
}

func TestChannelEarlyIssuePanics(t *testing.T) {
	ch := testChannel(t)
	ch.Issue(KindActivate, 0, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("read before tRCD did not panic")
		}
	}()
	ch.Issue(KindRead, 0, 1, 1)
}

func TestChannelTRRDAcrossBanks(t *testing.T) {
	ch := testChannel(t)
	tt := DDR2800()
	ch.Issue(KindActivate, 0, 1, 0)
	if ch.Ready(KindActivate, 1, int64(tt.TRRD)-1) {
		t.Error("second activate ready before tRRD")
	}
	if !ch.Ready(KindActivate, 1, int64(tt.TRRD)) {
		t.Error("second activate not ready at tRRD")
	}
}

func TestChannelTCCDBetweenCAS(t *testing.T) {
	ch := testChannel(t)
	tt := DDR2800()
	ch.Issue(KindActivate, 0, 1, 0)
	ch.Issue(KindActivate, 1, 1, int64(tt.TRRD))
	rdAt := int64(tt.TRRD + tt.TRCD)
	ch.Issue(KindRead, 0, 1, rdAt)
	if ch.Ready(KindRead, 1, rdAt+int64(tt.TCCD)-1) {
		t.Error("second read ready before tCCD")
	}
	// At rdAt+tCCD, also check the data bus: second burst would start at
	// +tCL and the first ends at rdAt+tCL+BL2, so tCCD < BL2 delays it.
	earliest := ch.EarliestIssue(KindRead, 1)
	wantBus := rdAt + int64(tt.BL2) // back-to-back bursts
	if earliest != wantBus {
		t.Errorf("second read earliest = %d, want %d (data bus limited)", earliest, wantBus)
	}
}

func TestChannelWriteToReadTurnaround(t *testing.T) {
	ch := testChannel(t)
	tt := DDR2800()
	ch.Issue(KindActivate, 0, 1, 0)
	wrAt := int64(tt.TRCD)
	ch.Issue(KindWrite, 0, 1, wrAt)
	wrEnd := wrAt + int64(tt.TWL+tt.BL2)
	want := wrEnd + int64(tt.TWTR)
	if got := ch.EarliestIssue(KindRead, 0); got != want {
		t.Errorf("read after write earliest = %d, want %d (tWTR after write burst)", got, want)
	}
	// Write recovery: precharge waits tWR after the write burst.
	if got, want := ch.EarliestIssue(KindPrecharge, 0), wrEnd+int64(tt.TWR); got != want {
		t.Errorf("precharge after write earliest = %d, want %d", got, want)
	}
}

func TestChannelRefresh(t *testing.T) {
	ch := testChannel(t)
	tt := DDR2800()
	ch.Issue(KindActivate, 0, 1, 0)
	if ch.Ready(KindRefresh, 0, int64(tt.TRAS)+int64(tt.TRP)) {
		t.Error("refresh ready with a bank open")
	}
	ch.Issue(KindPrecharge, 0, 0, int64(tt.TRAS))
	at := int64(tt.TRAS + tt.TRP)
	if tRC := int64(tt.TRC); tRC > at {
		at = tRC
	}
	if !ch.Ready(KindRefresh, 0, at) {
		t.Fatalf("refresh not ready at %d with all banks closed", at)
	}
	ch.Issue(KindRefresh, 0, 0, at)
	if !ch.InRefresh(at + 1) {
		t.Error("not in refresh after REF issue")
	}
	if ch.Ready(KindActivate, 3, at+int64(tt.TRFC)-1) {
		t.Error("activate ready during tRFC")
	}
	if !ch.Ready(KindActivate, 3, at+int64(tt.TRFC)) {
		t.Error("activate not ready after tRFC")
	}
	if ch.Refreshes() != 1 {
		t.Errorf("refresh count = %d, want 1", ch.Refreshes())
	}
}

func TestChannelBankBusyAccounting(t *testing.T) {
	ch := testChannel(t)
	tt := DDR2800()
	ch.Issue(KindActivate, 2, 7, 100)
	// Open bank contributes its open time so far.
	if got := ch.BankBusyCycles(150); got != 50 {
		t.Errorf("busy at 150 = %d, want 50", got)
	}
	ch.Issue(KindRead, 2, 7, 100+int64(tt.TRCD))
	preAt := 100 + int64(tt.TRAS)
	ch.Issue(KindPrecharge, 2, 0, preAt)
	// After precharge: busy = (preAt + tRP) - actAt.
	want := preAt + int64(tt.TRP) - 100
	if got := ch.BankBusyCycles(1000); got != want {
		t.Errorf("busy after precharge = %d, want %d", got, want)
	}
}

func TestChannelConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Ranks = 0
	if _, err := NewChannel(bad); err == nil {
		t.Error("NewChannel accepted 0 ranks")
	}
	bad = DefaultConfig()
	bad.BanksPerRank = 0
	if _, err := NewChannel(bad); err == nil {
		t.Error("NewChannel accepted 0 banks")
	}
	bad = DefaultConfig()
	bad.Timing.TCL = 0
	if _, err := NewChannel(bad); err == nil {
		t.Error("NewChannel accepted invalid timing")
	}
}

// TestChannelRandomLegalScheduleInvariants drives the channel with a
// random but legality-respecting command stream and checks global
// invariants with a shadow model: data bursts never overlap, rows open
// and close consistently, and EarliestIssue never lies (issuing at the
// reported earliest time never panics).
func TestChannelRandomLegalScheduleInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		ch := testChannel(t)
		nbanks := ch.Config().Banks()
		now := int64(0)
		type burst struct{ start, end int64 }
		var bursts []burst
		openRows := make(map[int]int)
		for step := 0; step < 400; step++ {
			bank := rng.Intn(nbanks)
			var kind Kind
			if _, open := ch.BankOpen(bank); open {
				kind = []Kind{KindRead, KindWrite, KindPrecharge}[rng.Intn(3)]
			} else {
				kind = KindActivate
			}
			earliest := ch.EarliestIssue(kind, bank)
			if earliest > now {
				// Sometimes jump straight to the earliest legal cycle,
				// sometimes beyond it.
				now = earliest + int64(rng.Intn(3))
			}
			row := rng.Intn(64)
			if r, open := ch.BankOpen(bank); open {
				row = r
			}
			end := ch.Issue(kind, bank, row, now)
			switch kind {
			case KindActivate:
				openRows[bank] = row
			case KindPrecharge:
				delete(openRows, bank)
			case KindRead:
				bursts = append(bursts, burst{end - int64(ch.Config().Timing.BL2), end})
			case KindWrite:
				start := now + int64(ch.Config().Timing.TWL)
				bursts = append(bursts, burst{start, start + int64(ch.Config().Timing.BL2)})
			}
			now++ // one command per cycle
		}
		// Invariant: data bursts are disjoint and ordered.
		for i := 1; i < len(bursts); i++ {
			if bursts[i].start < bursts[i-1].end {
				t.Fatalf("trial %d: data bursts overlap: %v then %v", trial, bursts[i-1], bursts[i])
			}
		}
		// Invariant: shadow row state agrees with the model.
		for b := 0; b < nbanks; b++ {
			row, open := ch.BankOpen(b)
			wantRow, wantOpen := openRows[b]
			if open != wantOpen || (open && row != wantRow) {
				t.Fatalf("trial %d: bank %d state open=%v row=%d, want open=%v row=%d",
					trial, b, open, row, wantOpen, wantRow)
			}
		}
	}
}

func TestMultiRankTRRDIndependence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ranks = 2
	cfg.BanksPerRank = 4
	ch, err := NewChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Banks 0-3 are rank 0, banks 4-7 are rank 1. An activate on rank 0
	// does not impose tRRD on rank 1.
	ch.Issue(KindActivate, 0, 1, 0)
	if !ch.Ready(KindActivate, 4, 1) {
		t.Error("cross-rank activate blocked by tRRD")
	}
	if ch.Ready(KindActivate, 1, 1) {
		t.Error("same-rank activate ignored tRRD")
	}
}

func TestBankCountAcrossRanks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ranks = 2
	if cfg.Banks() != 16 {
		t.Fatalf("banks = %d", cfg.Banks())
	}
	ch, err := NewChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All 16 banks are independently addressable.
	now := int64(0)
	for b := 0; b < 16; b++ {
		now = ch.EarliestIssue(KindActivate, b)
		ch.Issue(KindActivate, b, b, now)
	}
	for b := 0; b < 16; b++ {
		if row, open := ch.BankOpen(b); !open || row != b {
			t.Fatalf("bank %d: open=%v row=%d", b, open, row)
		}
	}
}
