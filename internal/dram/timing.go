// Package dram implements a cycle-accurate DDR2 SDRAM device model: the
// timing constraints of Table 6 of the paper, per-bank state machines,
// rank-level constraints, the shared command/data channel, and refresh.
//
// All times are measured in processor cycles, matching the paper's
// Table 6 ("Micron DDR2-800 timing constraints (measured in processor
// cycles)"). The model supports uniform time scaling, which is how the
// paper constructs the private virtual-time baseline systems ("a private
// memory system running at phi of the frequency of the shared physical
// memory system").
package dram

import "fmt"

// Timing holds the DDR2 timing constraints of the paper's Table 6, in
// processor cycles.
type Timing struct {
	TRCD int // activate to read
	TCL  int // read to data bus valid (CAS latency)
	TWL  int // write to data bus valid (write latency)
	TCCD int // CAS to CAS (a CAS is a read or a write)
	TWTR int // write to read turnaround
	TWR  int // internal write to precharge (write recovery)
	TRTP int // internal read to precharge
	TRP  int // precharge to activate
	TRRD int // activate to activate, different banks (same rank)
	TRAS int // activate to precharge
	TRC  int // activate to activate, same bank
	BL2  int // burst length / 2: data bus cycles per cache line
	TRFC int // refresh to activate
	TREF int // maximum refresh-to-refresh interval
}

// DDR2800 returns the Micron DDR2-800 constraints of Table 6.
func DDR2800() Timing {
	return Timing{
		TRCD: 5,
		TCL:  5,
		TWL:  4,
		TCCD: 2,
		TWTR: 3,
		TWR:  6,
		TRTP: 3,
		TRP:  5,
		TRRD: 3,
		TRAS: 18,
		TRC:  22,
		BL2:  4,
		TRFC: 510,
		TREF: 280000,
	}
}

// Scale returns the timing constraints uniformly time scaled by the
// integer factor k, i.e. the constraints of a private memory system
// running at 1/k of the physical frequency. The paper's two- and
// four-processor baselines are Scale(2) and Scale(4).
func (t Timing) Scale(k int) Timing {
	if k < 1 {
		panic(fmt.Sprintf("dram: invalid scale factor %d", k))
	}
	return Timing{
		TRCD: t.TRCD * k,
		TCL:  t.TCL * k,
		TWL:  t.TWL * k,
		TCCD: t.TCCD * k,
		TWTR: t.TWTR * k,
		TWR:  t.TWR * k,
		TRTP: t.TRTP * k,
		TRP:  t.TRP * k,
		TRRD: t.TRRD * k,
		TRAS: t.TRAS * k,
		TRC:  t.TRC * k,
		BL2:  t.BL2 * k,
		TRFC: t.TRFC * k,
		TREF: t.TREF, // the refresh *interval* is wall-clock, not device speed
	}
}

// Validate reports an error when the constraints are internally
// inconsistent (e.g. a row cannot be precharged before its restore time).
func (t Timing) Validate() error {
	switch {
	case t.TRCD <= 0 || t.TCL <= 0 || t.TWL <= 0 || t.BL2 <= 0:
		return fmt.Errorf("dram: non-positive core latency in %+v", t)
	case t.TRAS < t.TRCD:
		return fmt.Errorf("dram: tRAS (%d) < tRCD (%d)", t.TRAS, t.TRCD)
	// Note: the paper's Table 6 itself has tRC (22) < tRAS+tRP (23), so
	// only the weaker tRC >= tRAS is enforced; the per-command checks
	// still respect both constraints independently.
	case t.TRC < t.TRAS:
		return fmt.Errorf("dram: tRC (%d) < tRAS (%d)", t.TRC, t.TRAS)
	case t.TRFC <= 0 || t.TREF <= 0:
		return fmt.Errorf("dram: non-positive refresh timing in %+v", t)
	}
	return nil
}

// BankServiceRead returns the Table 3 bank service requirement of a read
// request that begins service with the bank in the given state: the time
// to (precharge,) (activate,) and read the data out of the row buffer.
// state is 0=conflict, 1=closed, 2=hit, matching core.BankState.
func (t Timing) BankServiceRead(state int) int {
	switch state {
	case 0:
		return t.TRP + t.TRCD + t.TCL
	case 1:
		return t.TRCD + t.TCL
	default:
		return t.TCL
	}
}

// BankServiceWrite is the write analogue of BankServiceRead, using the
// write latency tWL for the column access (Table 4 uses tWL for writes).
func (t Timing) BankServiceWrite(state int) int {
	switch state {
	case 0:
		return t.TRP + t.TRCD + t.TWL
	case 1:
		return t.TRCD + t.TWL
	default:
		return t.TWL
	}
}

// CmdBankService returns the Table 4 per-command VTMS bank service times.
// Precharge accounts for the extra bank occupancy between an activate
// and a precharge not covered by the activate/read/write commands.
func (t Timing) CmdBankService(isWrite bool) (precharge, activate, cas int) {
	precharge = t.TRP + (t.TRAS - t.TRCD - t.TCL)
	activate = t.TRCD
	if isWrite {
		cas = t.TWL
	} else {
		cas = t.TCL
	}
	return precharge, activate, cas
}

// ChannelService returns the Table 4 channel service of a CAS command:
// BL/2 data bus cycles. RAS commands consume no channel service.
func (t Timing) ChannelService() int { return t.BL2 }
