// Package fqms is a Go reproduction of "Fair Queuing Memory Systems"
// (Nesbit, Aggarwal, Laudon, Smith — MICRO 2006): a cycle-accurate
// DDR2 memory-system simulator with the paper's Fair Queuing memory
// scheduler, the FR-FCFS baseline, trace-driven out-of-order cores with
// private cache hierarchies, twenty synthetic SPEC-2000-like workloads,
// and drivers that regenerate every figure of the paper's evaluation.
//
// Quick start:
//
//	res, err := fqms.Run(fqms.SystemConfig{
//		Workload:  []string{"vpr", "art"},
//		Scheduler: fqms.FQVFTF,
//	})
//
// The scheduler models each hardware thread as running on a private
// "virtual time memory system" whose DDR2 timing is scaled by the
// reciprocal of the thread's bandwidth share, and services requests
// earliest-virtual-finish-time first with a bound on priority-inversion
// blocking time. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results.
package fqms

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Scheduler names a memory scheduling policy.
type Scheduler string

// The available schedulers.
const (
	// FCFS services requests strictly in arrival order.
	FCFS Scheduler = "FCFS"
	// FRFCFS is first-ready first-come-first-serve, the paper's
	// single-thread-optimal baseline (Rixner et al.).
	FRFCFS Scheduler = "FR-FCFS"
	// FRVFTF prioritizes earliest virtual finish-time first without the
	// FQ bank rule (the paper's intermediate design point).
	FRVFTF Scheduler = "FR-VFTF"
	// FQVFTF is the paper's Fair Queuing memory scheduler.
	FQVFTF Scheduler = "FQ-VFTF"
	// FRVSTF is the earliest virtual start-time ablation.
	FRVSTF Scheduler = "FR-VSTF"
)

// Share is a thread's allocated fraction of memory system bandwidth,
// as the rational Num/Den.
type Share = core.Share

// EqualShare returns 1/n, the static equal allocation for an n-core CMP.
func EqualShare(n int) Share { return core.EqualShare(n) }

// Benchmark is a synthetic workload profile standing in for one of the
// paper's SPEC 2000 traces.
type Benchmark = trace.Profile

// Benchmarks returns the twenty-benchmark suite in the paper's Figure 4
// order (most memory-aggressive first).
func Benchmarks() []Benchmark { return trace.Suite() }

// BenchmarkNames returns the suite names in Figure 4 order.
func BenchmarkNames() []string { return trace.Names() }

// BenchmarkByName looks a profile up by name.
func BenchmarkByName(name string) (Benchmark, error) { return trace.ByName(name) }

// FourCoreWorkloads returns the paper's four heterogeneous 4-core
// workloads.
func FourCoreWorkloads() [][]string { return trace.FourCoreWorkloads() }

// Antagonists returns the adversarial and heterogeneous agent profiles
// (streaming accelerator-style agents, row-buffer/bank/bus attackers,
// and the diurnal bursty arrival process). They resolve through
// BenchmarkByName like the SPEC suite.
func Antagonists() []Benchmark { return trace.Antagonists() }

// AntagonistNames returns the antagonist profile names.
func AntagonistNames() []string { return trace.AntagonistNames() }

// DDR2Timing is the DDR2 timing-constraint set (Table 6).
type DDR2Timing = dram.Timing

// DDR2800 returns the paper's Micron DDR2-800 constraints.
func DDR2800() DDR2Timing { return dram.DDR2800() }

// Result is the outcome of one simulation's measurement window.
type Result = sim.Result

// ThreadResult is one thread's measured behavior.
type ThreadResult = sim.ThreadResult

// SystemConfig describes one simulation.
type SystemConfig struct {
	// Workload names one benchmark per core (see BenchmarkNames).
	Workload []string

	// Scheduler selects the memory scheduling policy (default FR-FCFS).
	Scheduler Scheduler

	// Shares allocates memory bandwidth per thread; nil means the
	// paper's static equal allocation 1/N.
	Shares []Share

	// MemoryScale >= 2 time scales the DDR2 constraints, modeling the
	// paper's private virtual-time baseline systems (0 or 1 = physical).
	MemoryScale int

	// Channels selects the number of line-interleaved memory channels
	// (0 or 1 = the paper's single-channel system; more is this
	// implementation's future-work extension).
	Channels int

	// Warmup and Window are simulation lengths in cycles; zero selects
	// 50k/400k.
	Warmup, Window int64

	// Seed perturbs the deterministic trace generators.
	Seed uint64

	// Audit attaches the runtime invariant auditor: every SDRAM command
	// and completed request is re-validated against independently
	// recomputed timing, conservation, VTMS, and FQ scheduling
	// invariants; a violation panics. Results are identical either way.
	// The FQMS_AUDIT environment variable also enables it globally.
	Audit bool

	// Interference enables per-request delay attribution: the live
	// System's Interference method then reports the who-delayed-whom
	// matrix and its per-cause breakdown. Observation-only — results
	// are bit-identical with it on or off.
	Interference bool
}

// Run simulates the configured system and reports per-thread and
// aggregate results.
func Run(cfg SystemConfig) (Result, error) {
	if len(cfg.Workload) == 0 {
		return Result{}, fmt.Errorf("fqms: empty workload")
	}
	sched := cfg.Scheduler
	if sched == "" {
		sched = FRFCFS
	}
	factory, err := sim.PolicyByName(string(sched))
	if err != nil {
		return Result{}, err
	}
	profiles := make([]trace.Profile, len(cfg.Workload))
	for i, n := range cfg.Workload {
		p, err := trace.ByName(n)
		if err != nil {
			return Result{}, err
		}
		profiles[i] = p
	}
	scfg := sim.Config{
		Workload:     profiles,
		Shares:       cfg.Shares,
		Policy:       factory,
		Seed:         cfg.Seed,
		Audit:        cfg.Audit,
		Interference: cfg.Interference,
	}
	if cfg.MemoryScale > 1 {
		scfg.Mem.DRAM = dram.DefaultConfig()
		scfg.Mem.DRAM.Timing = dram.DDR2800().Scale(cfg.MemoryScale)
	}
	scfg.Mem.Channels = cfg.Channels
	warmup, window := cfg.Warmup, cfg.Window
	if warmup <= 0 {
		warmup = 50_000
	}
	if window <= 0 {
		window = 400_000
	}
	return sim.Run(scfg, warmup, window)
}

// System is a live simulation that can be stepped, measured, and
// reconfigured (dynamic share reassignment) between steps.
type System = sim.System

// NewSystem constructs a system from the same configuration Run uses,
// but leaves stepping to the caller: use Step, BeginMeasurement,
// Results, and SetShare.
func NewSystem(cfg SystemConfig) (*System, error) {
	if len(cfg.Workload) == 0 {
		return nil, fmt.Errorf("fqms: empty workload")
	}
	sched := cfg.Scheduler
	if sched == "" {
		sched = FRFCFS
	}
	factory, err := sim.PolicyByName(string(sched))
	if err != nil {
		return nil, err
	}
	profiles := make([]trace.Profile, len(cfg.Workload))
	for i, n := range cfg.Workload {
		p, err := trace.ByName(n)
		if err != nil {
			return nil, err
		}
		profiles[i] = p
	}
	scfg := sim.Config{
		Workload:     profiles,
		Shares:       cfg.Shares,
		Policy:       factory,
		Seed:         cfg.Seed,
		Audit:        cfg.Audit,
		Interference: cfg.Interference,
	}
	if cfg.MemoryScale > 1 {
		scfg.Mem.DRAM = dram.DefaultConfig()
		scfg.Mem.DRAM.Timing = dram.DDR2800().Scale(cfg.MemoryScale)
	}
	scfg.Mem.Channels = cfg.Channels
	return sim.New(scfg)
}

// ExperimentRunner regenerates the paper's figures; see the Figure1,
// Figure4, TwoCore (Figures 5-7), Figure8, and Figure9 methods, and All
// for the complete report.
type ExperimentRunner = exp.Runner

// ExperimentConfig sizes the experiment simulations.
type ExperimentConfig = exp.Config

// NewExperimentRunner returns a runner; zero-valued config selects the
// default measurement windows.
func NewExperimentRunner(cfg ExperimentConfig) *ExperimentRunner {
	return exp.NewRunner(cfg)
}
