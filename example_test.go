package fqms_test

import (
	"fmt"

	fqms "repro"
)

// Example runs the paper's headline scenario: the latency-sensitive vpr
// benchmark next to the memory-streaming art benchmark, under the
// FR-FCFS baseline and under the Fair Queuing scheduler. Short windows
// keep the example fast; the direction of every comparison is stable.
func Example() {
	base, err := fqms.Run(fqms.SystemConfig{
		Workload:    []string{"vpr"},
		MemoryScale: 2, // vpr's QoS baseline: a private half-speed memory
		Warmup:      20_000,
		Window:      150_000,
	})
	if err != nil {
		panic(err)
	}
	for _, sched := range []fqms.Scheduler{fqms.FRFCFS, fqms.FQVFTF} {
		res, err := fqms.Run(fqms.SystemConfig{
			Workload:  []string{"vpr", "art"},
			Scheduler: sched,
			Warmup:    20_000,
			Window:    150_000,
		})
		if err != nil {
			panic(err)
		}
		norm := res.Threads[0].IPC / base.Threads[0].IPC
		if norm >= 1 {
			fmt.Printf("%s: vpr meets its QoS objective\n", sched)
		} else {
			fmt.Printf("%s: vpr misses its QoS objective\n", sched)
		}
	}
	// Output:
	// FR-FCFS: vpr misses its QoS objective
	// FQ-VFTF: vpr meets its QoS objective
}
