package fqms

import (
	"testing"
)

func TestBenchmarksSuite(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 20 {
		t.Fatalf("suite size %d", len(bs))
	}
	names := BenchmarkNames()
	if names[0] != "art" {
		t.Errorf("first benchmark %q", names[0])
	}
	if _, err := BenchmarkByName("vpr"); err != nil {
		t.Error(err)
	}
	if _, err := BenchmarkByName("bogus"); err == nil {
		t.Error("accepted unknown benchmark")
	}
}

func TestFourCoreWorkloadsShape(t *testing.T) {
	wls := FourCoreWorkloads()
	if len(wls) != 4 || len(wls[0]) != 4 {
		t.Fatalf("workloads = %v", wls)
	}
}

func TestDDR2800Exposed(t *testing.T) {
	tt := DDR2800()
	if tt.TCL != 5 || tt.TRAS != 18 || tt.BL2 != 4 {
		t.Errorf("Table 6 constants: %+v", tt)
	}
}

func TestEqualShare(t *testing.T) {
	s := EqualShare(4)
	if s.Num != 1 || s.Den != 4 {
		t.Errorf("EqualShare(4) = %+v", s)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(SystemConfig{}); err == nil {
		t.Error("accepted empty workload")
	}
	if _, err := Run(SystemConfig{Workload: []string{"bogus"}}); err == nil {
		t.Error("accepted unknown benchmark")
	}
	if _, err := Run(SystemConfig{Workload: []string{"vpr"}, Scheduler: "bogus"}); err == nil {
		t.Error("accepted unknown scheduler")
	}
}

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(SystemConfig{
		Workload:  []string{"vpr", "art"},
		Scheduler: FQVFTF,
		Warmup:    5_000,
		Window:    40_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "FQ-VFTF" {
		t.Errorf("policy = %q", res.PolicyName)
	}
	if len(res.Threads) != 2 {
		t.Fatalf("threads = %d", len(res.Threads))
	}
	for _, tr := range res.Threads {
		if tr.IPC <= 0 || tr.BusUtil <= 0 {
			t.Errorf("thread %s: %+v", tr.Benchmark, tr)
		}
	}
}

func TestRunMemoryScaleSlowsSystem(t *testing.T) {
	fast, err := Run(SystemConfig{Workload: []string{"ammp"}, Warmup: 5_000, Window: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(SystemConfig{Workload: []string{"ammp"}, MemoryScale: 4, Warmup: 5_000, Window: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Threads[0].IPC >= fast.Threads[0].IPC {
		t.Errorf("4x scaled memory did not slow ammp: %.3f vs %.3f",
			slow.Threads[0].IPC, fast.Threads[0].IPC)
	}
	if slow.Threads[0].AvgReadLatency <= fast.Threads[0].AvgReadLatency {
		t.Error("scaled memory did not raise latency")
	}
}

func TestNewExperimentRunner(t *testing.T) {
	r := NewExperimentRunner(ExperimentConfig{Warmup: 5_000, Window: 30_000})
	if r == nil {
		t.Fatal("nil runner")
	}
	tr, err := r.Solo("crafty", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.IPC <= 0 {
		t.Errorf("solo crafty IPC = %v", tr.IPC)
	}
}
